package netmodel

import (
	"runtime"
	"testing"

	"netmodel/internal/econ"
	"netmodel/internal/gen"
	"netmodel/internal/rng"
)

// The generator benchmarks pit the sharded growth kernels against their
// sequential references — the acceptance surface of the sharded-
// generation work:
//
//	go test -bench Gen -benchmem            # or: make bench-gen
//
// The sharded path wins twice: frozen-round alias sampling replaces
// per-attachment Fenwick updates (a single-core win), and candidate
// planning plus graph construction shard across the pool (a multi-core
// win). The 10k cases are the CI smoke; the 100k cases measure the
// scale the acceptance criterion names (run them with -benchtime raised
// on real hardware). workers=8 rows also report the pool actually
// available, since speedup is bounded by physical cores.
const genBenchN = 10000

// genBenchWorkers is the sharded pool width under benchmark; capped by
// cores at runtime, reported per run.
const genBenchWorkers = 8

func genFamilies(n int) []gen.ShardedGenerator {
	return []gen.ShardedGenerator{
		gen.BA{N: n, M: 2},
		gen.GLP{N: n, M: 1, P: 0.45, Beta: 0.64},
		gen.DefaultPFP(n),
	}
}

func benchGenerate(b *testing.B, m gen.ShardedGenerator, workers int) {
	b.Helper()
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		top, err := m.GenerateSharded(rng.New(uint64(i+1)), workers)
		if err != nil {
			b.Fatal(err)
		}
		if top.G.N() == 0 {
			b.Fatal("empty topology")
		}
	}
}

func BenchmarkGenBA10kSequential(b *testing.B) { benchGenerate(b, genFamilies(genBenchN)[0], 1) }
func BenchmarkGenBA10kSharded(b *testing.B) {
	benchGenerate(b, genFamilies(genBenchN)[0], genBenchWorkers)
}
func BenchmarkGenGLP10kSequential(b *testing.B) { benchGenerate(b, genFamilies(genBenchN)[1], 1) }
func BenchmarkGenGLP10kSharded(b *testing.B) {
	benchGenerate(b, genFamilies(genBenchN)[1], genBenchWorkers)
}
func BenchmarkGenPFP10kSequential(b *testing.B) { benchGenerate(b, genFamilies(genBenchN)[2], 1) }
func BenchmarkGenPFP10kSharded(b *testing.B) {
	benchGenerate(b, genFamilies(genBenchN)[2], genBenchWorkers)
}

// The 100k-node rows are the acceptance-criterion scale: sharded
// BA/GLP/PFP at 8 workers versus the sequential reference.
func BenchmarkGenBA100kSequential(b *testing.B) { benchGenerate(b, genFamilies(100000)[0], 1) }
func BenchmarkGenBA100kSharded(b *testing.B) {
	benchGenerate(b, genFamilies(100000)[0], genBenchWorkers)
}
func BenchmarkGenGLP100kSequential(b *testing.B) { benchGenerate(b, genFamilies(100000)[1], 1) }
func BenchmarkGenGLP100kSharded(b *testing.B) {
	benchGenerate(b, genFamilies(100000)[1], genBenchWorkers)
}
func BenchmarkGenPFP100kSequential(b *testing.B) { benchGenerate(b, genFamilies(100000)[2], 1) }
func BenchmarkGenPFP100kSharded(b *testing.B) {
	benchGenerate(b, genFamilies(100000)[2], genBenchWorkers)
}

// BenchmarkGenEconSharded measures the sharded market rounds against
// the sequential engine at the published calibration.
func BenchmarkGenEconSequential(b *testing.B) { benchEcon(b, 1) }
func BenchmarkGenEconSharded(b *testing.B)    { benchEcon(b, genBenchWorkers) }

func benchEcon(b *testing.B, workers int) {
	b.Helper()
	m := econ.Default(2000)
	m.Workers = workers
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(rng.New(uint64(i + 1))); err != nil {
			b.Fatal(err)
		}
	}
}
