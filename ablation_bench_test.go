package netmodel

// Ablation benchmarks for the design choices DESIGN.md calls out: the
// data structure behind preferential sampling, the betweenness
// estimator, and the geographic constraint in the econ model.

import (
	"fmt"
	"testing"

	"netmodel/internal/compare"
	"netmodel/internal/econ"
	"netmodel/internal/metrics"
	"netmodel/internal/rng"
)

// BenchmarkAblationFenwickSampling measures one preferential-attachment
// draw + update with the Fenwick tree (O(log n)) — the design used by
// every growth generator in this repository.
func BenchmarkAblationFenwickSampling(b *testing.B) {
	const n = 100000
	r := rng.New(1)
	f := rng.NewFenwick(r, n)
	for i := 0; i < n; i++ {
		f.Set(i, float64(1+i%17))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := f.Sample()
		f.Add(j, 1)
	}
}

// BenchmarkAblationLinearSampling is the naive alternative: a linear
// roulette scan over the weight array, O(n) per draw. At n = 10⁵ the
// Fenwick tree wins by three orders of magnitude, which is what makes
// full-scale growth simulation tractable.
func BenchmarkAblationLinearSampling(b *testing.B) {
	const n = 100000
	r := rng.New(1)
	w := make([]float64, n)
	total := 0.0
	for i := range w {
		w[i] = float64(1 + i%17)
		total += w[i]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := r.Float64() * total
		j := 0
		for ; j < n-1; j++ {
			x -= w[j]
			if x <= 0 {
				break
			}
		}
		w[j]++
		total++
	}
}

// BenchmarkAblationBetweennessExact measures full Brandes betweenness.
func BenchmarkAblationBetweennessExact(b *testing.B) {
	g := build(b, "pfp", 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.Betweenness(g)
	}
}

// BenchmarkAblationBetweennessSampled measures the 10%-source
// estimator; accuracy is verified in internal/metrics tests (rank
// correlation > 0.95 at these rates).
func BenchmarkAblationBetweennessSampled(b *testing.B) {
	g := build(b, "pfp", 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.BetweennessSampled(g, rng.New(uint64(i)), 100); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDistanceConstraint contrasts the econ model with and
// without geographic link costs — the published effect: distance
// inhibits small-AS long-haul peering, deepening disassortativity and
// hierarchy.
func BenchmarkAblationDistanceConstraint(b *testing.B) {
	res, err := econ.Default(2000).Run(rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	resD, err := econ.DefaultDistance(2000).Run(rng.New(7))
	if err != nil {
		b.Fatal(err)
	}
	once("AblationDistance", func() {
		spec := compare.MeasureSpectra(res.G)
		specD := compare.MeasureSpectra(resD.G)
		fmt.Printf("\nAblation: econ distance constraint at N=2000\n")
		fmt.Printf("%-14s %14s %14s %12s\n", "variant", "assortativity", "knn slope", "⟨c⟩")
		fmt.Printf("%-14s %+14.3f %14.2f %12.4f\n", "no distance",
			metrics.Assortativity(res.G), spec.KnnSlope, metrics.AvgClustering(res.G))
		fmt.Printf("%-14s %+14.3f %14.2f %12.4f\n", "distance",
			metrics.Assortativity(resD.G), specD.KnnSlope, metrics.AvgClustering(resD.G))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := econ.DefaultDistance(500).Run(rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationReinforcement sweeps the multi-edge reinforcement
// probability R and prints its effect on degree vs bandwidth — the knob
// that controls the k ∝ b^μ split.
func BenchmarkAblationReinforcement(b *testing.B) {
	once("AblationR", func() {
		fmt.Printf("\nAblation: econ reinforcement R at N=1500\n")
		fmt.Printf("%-6s %8s %10s %10s %12s\n", "R", "edges", "bandwidth", "B/M", "max multi")
		for _, R := range []float64{0, 0.4, 0.8, 0.95} {
			m := econ.Default(1500)
			m.R = R
			res, err := m.Run(rng.New(23))
			if err != nil {
				b.Fatal(err)
			}
			maxW := 0
			res.G.Edges(func(u, v, w int) bool {
				if w > maxW {
					maxW = w
				}
				return true
			})
			fmt.Printf("%-6.2f %8d %10d %10.3f %12d\n", R, res.G.M(),
				res.G.TotalStrength(),
				float64(res.G.TotalStrength())/float64(res.G.M()), maxW)
		}
	})
	m := econ.Default(500)
	m.R = 0.8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run(rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
