package netmodel

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"netmodel/internal/benchutil"
	"netmodel/internal/core"
	"netmodel/internal/engine"
	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/rng"
	"netmodel/internal/traffic"
)

// The trajectory benchmarks are the acceptance surface of incremental
// freeze: the same BA growth run observed at every epoch, measured
// either by delta-refreshing the previous CSR snapshot and advancing
// one version-aware engine (refresh), or by a full Freeze and a cold
// engine per epoch (refreeze — what every trajectory study cost before
// this change). The measured vector is engine.MeasureGrowth: degree
// histogram and tail fit, clustering from triangle counts, k-core
// depth. The 10k rows are the CI smoke; the 100k × 100-epoch rows are
// the acceptance scale (target ≥ 5x):
//
//	make bench-trajectory          # writes BENCH_trajectory.json
//	go test -bench Trajectory .    # standard benchmark rows
var (
	trajBenchOut    = flag.String("trajectory-bench-out", "", "write refresh-vs-refreeze trajectory timings to this JSON file")
	trajBenchN      = flag.Int("trajectory-bench-n", 100000, "trajectory benchmark map size")
	trajBenchEpochs = flag.Int("trajectory-bench-epochs", 100, "trajectory benchmark observation epochs")
	trajBenchPivots = flag.Int("trajectory-bench-pivots", 64, "pivot sample size of the path-metric benchmark rows")
)

// runTrajectory drives one BA growth run of n nodes observed every
// n/epochs arrivals and returns the number of epochs measured. With
// refresh, epochs ride the incremental path; without, every epoch pays
// a full freeze and a cold engine, metrics recomputed from scratch.
func runTrajectory(tb testing.TB, n, epochs, workers int, refresh bool) int {
	tb.Helper()
	every := n / epochs
	if every < 1 {
		every = 1
	}
	measured := 0
	var observe func(g *graph.Graph, nn int) error
	if refresh {
		obs := core.NewTrajectoryObserver(workers)
		observe = func(g *graph.Graph, nn int) error {
			if err := obs.Observe(g, nn); err != nil {
				return err
			}
			measured++
			return nil
		}
	} else {
		observe = func(g *graph.Graph, nn int) error {
			snap, err := g.FreezeChecked()
			if err != nil {
				return err
			}
			eng := engine.New(snap, engine.WithWorkers(workers))
			if st := eng.MeasureGrowth(); st.N != nn {
				return fmt.Errorf("measured %d nodes, want %d", st.N, nn)
			}
			measured++
			return nil
		}
	}
	_, err := gen.BA{N: n, M: 2}.GenerateTrajectory(rng.New(1), workers, gen.Trajectory{
		Every:   every,
		Observe: observe,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return measured
}

// runTrajectoryPaths is runTrajectory with the distance family on: the
// refresh arm observes through a path-enabled TrajectoryObserver (the
// engine's distance map is repaired across Advance), the recompute arm
// pays a full freeze, a cold engine and cold pivot BFS per epoch. Both
// arms measure the same pivot sample, drawn once on the first epoch.
func runTrajectoryPaths(tb testing.TB, n, epochs, workers, pivots int, refresh bool) int {
	tb.Helper()
	every := n / epochs
	if every < 1 {
		every = 1
	}
	measured := 0
	var observe func(g *graph.Graph, nn int) error
	if refresh {
		obs := core.NewTrajectoryObserver(workers)
		obs.EnablePathMetrics(pivots, 1)
		observe = func(g *graph.Graph, nn int) error {
			if err := obs.Observe(g, nn); err != nil {
				return err
			}
			measured++
			return nil
		}
	} else {
		var pivotList []int32
		first := true
		observe = func(g *graph.Graph, nn int) error {
			snap, err := g.FreezeChecked()
			if err != nil {
				return err
			}
			if first {
				first = false
				pivotList = metrics.PivotSources(rng.New(1), snap.N(), pivots)
			}
			eng := engine.New(snap, engine.WithWorkers(workers))
			if st := eng.MeasureGrowthPaths(pivotList); st.N != nn {
				return fmt.Errorf("measured %d nodes, want %d", st.N, nn)
			}
			measured++
			return nil
		}
	}
	_, err := gen.BA{N: n, M: 2}.GenerateTrajectory(rng.New(1), workers, gen.Trajectory{
		Every:   every,
		Observe: observe,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return measured
}

// routingBenchSources is the warm tree set of the routing rows: enough
// trees that repair work dominates bookkeeping, few enough to stay
// under the cache budget at 100k nodes.
const routingBenchSources = 24

// runRoutingBench replays one BA map as a growth trajectory and keeps a
// set of shortest-path trees warm at every epoch — by Routing.Refresh
// on a shared state (refresh) or a cold NewRouting + Ensure per epoch
// (rebuild). Only the routing maintenance is timed and alloc-counted;
// the replay and Refreeze cost is common to both arms and excluded, so
// the row is a clean attribution of tree repair vs tree rebuild.
func runRoutingBench(tb testing.TB, n, epochs, workers int, refresh bool) (time.Duration, uint64, uint64) {
	tb.Helper()
	top, err := gen.BA{N: n, M: 2}.Generate(rng.New(1))
	if err != nil {
		tb.Fatal(err)
	}
	edges := top.G.EdgeList()
	every := len(edges) / epochs
	if every < 1 {
		every = 1
	}
	sources := make([]int, routingBenchSources)
	for i := range sources {
		sources[i] = i
	}
	g := graph.New(0)
	prev, err := g.FreezeChecked()
	if err != nil {
		tb.Fatal(err)
	}
	var rt *traffic.Routing
	var spent time.Duration
	var allocs, bytes uint64
	for i, e := range edges {
		for g.N() <= e.V || g.N() <= e.U {
			g.AddNode()
		}
		for w := 0; w < e.W; w++ {
			g.MustAddEdge(e.U, e.V)
		}
		if (i+1)%every != 0 && i != len(edges)-1 {
			continue
		}
		next, d, err := g.Refreeze(prev)
		if err != nil {
			tb.Fatal(err)
		}
		prev = next
		if next.N() <= routingBenchSources {
			continue
		}
		a, b := benchutil.CountAllocs(func() {
			start := time.Now()
			if refresh {
				if rt == nil {
					rt = traffic.NewRouting(next)
				} else {
					rt.Refresh(next, d, workers)
				}
				rt.Ensure(sources, workers)
			} else {
				cold := traffic.NewRouting(next)
				cold.Ensure(sources, workers)
			}
			spent += time.Since(start)
		})
		allocs += a
		bytes += b
	}
	return spent, allocs, bytes
}

func benchTrajectory(b *testing.B, n, epochs int, refresh bool) {
	b.Helper()
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := runTrajectory(b, n, epochs, genBenchWorkers, refresh); got < epochs {
			b.Fatalf("measured %d epochs, want >= %d", got, epochs)
		}
	}
}

func BenchmarkTrajectoryRefresh10k(b *testing.B)  { benchTrajectory(b, 10000, 20, true) }
func BenchmarkTrajectoryRefreeze10k(b *testing.B) { benchTrajectory(b, 10000, 20, false) }

// The 100k-node, 100-epoch rows are the acceptance-criterion scale.
func BenchmarkTrajectoryRefresh100k(b *testing.B)  { benchTrajectory(b, 100000, 100, true) }
func BenchmarkTrajectoryRefreeze100k(b *testing.B) { benchTrajectory(b, 100000, 100, false) }

func benchTrajectoryPaths(b *testing.B, n, epochs int, refresh bool) {
	b.Helper()
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := runTrajectoryPaths(b, n, epochs, genBenchWorkers, *trajBenchPivots, refresh); got < epochs {
			b.Fatalf("measured %d epochs, want >= %d", got, epochs)
		}
	}
}

func BenchmarkTrajectoryPathsRefresh10k(b *testing.B)   { benchTrajectoryPaths(b, 10000, 20, true) }
func BenchmarkTrajectoryPathsRecompute10k(b *testing.B) { benchTrajectoryPaths(b, 10000, 20, false) }

func benchRouting(b *testing.B, n, epochs int, refresh bool) {
	b.Helper()
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runRoutingBench(b, n, epochs, genBenchWorkers, refresh)
	}
}

func BenchmarkRoutingRefresh10k(b *testing.B) { benchRouting(b, 10000, 20, true) }
func BenchmarkRoutingRebuild10k(b *testing.B) { benchRouting(b, 10000, 20, false) }

// TestTrajectoryBenchJSON times both arms once and records the rows in
// the JSON file named by -trajectory-bench-out (BENCH_trajectory.json
// via `make bench-trajectory`). Disabled unless the flag is set; the CI
// smoke runs the 10k variant under -race, so the file also documents
// that the incremental path is race-clean.
func TestTrajectoryBenchJSON(t *testing.T) {
	if *trajBenchOut == "" {
		t.Skip("enable with -trajectory-bench-out <file>")
	}
	n, epochs := *trajBenchN, *trajBenchEpochs
	workers := genBenchWorkers

	// Each whole-run timing doubles as an allocation window (the
	// settling GC runs before the timer starts, so ns_per_op is clean).
	time1 := func(refresh bool) (time.Duration, uint64, uint64) {
		var spent time.Duration
		allocs, bytes := benchutil.MeasureAllocs(func() {
			start := time.Now()
			if got := runTrajectory(t, n, epochs, workers, refresh); got < epochs {
				t.Fatalf("measured %d epochs, want >= %d", got, epochs)
			}
			spent = time.Since(start)
		})
		return spent, allocs, bytes
	}
	refreeze, refreezeAllocs, refreezeBytes := time1(false)
	refresh, refreshAllocs, refreshBytes := time1(true)
	speedup := float64(refreeze) / float64(refresh)

	pivots := *trajBenchPivots
	timePaths := func(refresh bool) (time.Duration, uint64, uint64) {
		var spent time.Duration
		allocs, bytes := benchutil.MeasureAllocs(func() {
			start := time.Now()
			if got := runTrajectoryPaths(t, n, epochs, workers, pivots, refresh); got < epochs {
				t.Fatalf("measured %d path epochs, want >= %d", got, epochs)
			}
			spent = time.Since(start)
		})
		return spent, allocs, bytes
	}
	pathsRecompute, pathsRecomputeAllocs, pathsRecomputeBytes := timePaths(false)
	pathsRefresh, pathsRefreshAllocs, pathsRefreshBytes := timePaths(true)
	pathsSpeedup := float64(pathsRecompute) / float64(pathsRefresh)

	routRebuild, routRebuildAllocs, routRebuildBytes := runRoutingBench(t, n, epochs, workers, false)
	routRefresh, routRefreshAllocs, routRefreshBytes := runRoutingBench(t, n, epochs, workers, true)
	routSpeedup := float64(routRebuild) / float64(routRefresh)

	type row struct {
		Name        string  `json:"name"`
		Model       string  `json:"model"`
		N           int     `json:"n"`
		Epochs      int     `json:"epochs"`
		Workers     int     `json:"workers"`
		Pivots      int     `json:"pivots,omitempty"`
		Cores       int     `json:"cores"`
		NumCPU      int     `json:"num_cpu"`
		NsPerOp     int64   `json:"ns_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
		BytesPerOp  float64 `json:"bytes_per_op"`
		Speedup     float64 `json:"speedup,omitempty"`
		// SpeedupVs names the row the speedup is measured against, so
		// every attribution in the file is explicit.
		SpeedupVs string `json:"speedup_vs,omitempty"`
	}
	cores, ncpu := runtime.GOMAXPROCS(0), runtime.NumCPU()
	rows := []row{
		{Name: "trajectory-refreeze", Model: "ba", N: n, Epochs: epochs, Workers: workers,
			Cores: cores, NumCPU: ncpu, NsPerOp: refreeze.Nanoseconds(),
			AllocsPerOp: float64(refreezeAllocs), BytesPerOp: float64(refreezeBytes)},
		{Name: "trajectory-refresh", Model: "ba", N: n, Epochs: epochs, Workers: workers,
			Cores: cores, NumCPU: ncpu, NsPerOp: refresh.Nanoseconds(),
			AllocsPerOp: float64(refreshAllocs), BytesPerOp: float64(refreshBytes),
			Speedup: speedup, SpeedupVs: "trajectory-refreeze"},
		{Name: "trajectory-paths-recompute", Model: "ba", N: n, Epochs: epochs, Workers: workers,
			Pivots: pivots, Cores: cores, NumCPU: ncpu, NsPerOp: pathsRecompute.Nanoseconds(),
			AllocsPerOp: float64(pathsRecomputeAllocs), BytesPerOp: float64(pathsRecomputeBytes)},
		{Name: "trajectory-paths-refresh", Model: "ba", N: n, Epochs: epochs, Workers: workers,
			Pivots: pivots, Cores: cores, NumCPU: ncpu, NsPerOp: pathsRefresh.Nanoseconds(),
			AllocsPerOp: float64(pathsRefreshAllocs), BytesPerOp: float64(pathsRefreshBytes),
			Speedup: pathsSpeedup, SpeedupVs: "trajectory-paths-recompute"},
		{Name: "routing-rebuild", Model: "ba", N: n, Epochs: epochs, Workers: workers,
			Cores: cores, NumCPU: ncpu, NsPerOp: routRebuild.Nanoseconds(),
			AllocsPerOp: float64(routRebuildAllocs), BytesPerOp: float64(routRebuildBytes)},
		{Name: "routing-refresh", Model: "ba", N: n, Epochs: epochs, Workers: workers,
			Cores: cores, NumCPU: ncpu, NsPerOp: routRefresh.Nanoseconds(),
			AllocsPerOp: float64(routRefreshAllocs), BytesPerOp: float64(routRefreshBytes),
			Speedup: routSpeedup, SpeedupVs: "routing-rebuild"},
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*trajBenchOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("n=%d epochs=%d workers=%d: refreeze %v, refresh %v, speedup %.2fx",
		n, epochs, workers, refreeze, refresh, speedup)
	t.Logf("paths (pivots=%d): recompute %v, refresh %v, speedup %.2fx",
		pivots, pathsRecompute, pathsRefresh, pathsSpeedup)
	t.Logf("routing (%d trees): rebuild %v, refresh %v, speedup %.2fx",
		routingBenchSources, routRebuild, routRefresh, routSpeedup)
}
