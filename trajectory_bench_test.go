package netmodel

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"netmodel/internal/core"
	"netmodel/internal/engine"
	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// The trajectory benchmarks are the acceptance surface of incremental
// freeze: the same BA growth run observed at every epoch, measured
// either by delta-refreshing the previous CSR snapshot and advancing
// one version-aware engine (refresh), or by a full Freeze and a cold
// engine per epoch (refreeze — what every trajectory study cost before
// this change). The measured vector is engine.MeasureGrowth: degree
// histogram and tail fit, clustering from triangle counts, k-core
// depth. The 10k rows are the CI smoke; the 100k × 100-epoch rows are
// the acceptance scale (target ≥ 5x):
//
//	make bench-trajectory          # writes BENCH_trajectory.json
//	go test -bench Trajectory .    # standard benchmark rows
var (
	trajBenchOut    = flag.String("trajectory-bench-out", "", "write refresh-vs-refreeze trajectory timings to this JSON file")
	trajBenchN      = flag.Int("trajectory-bench-n", 100000, "trajectory benchmark map size")
	trajBenchEpochs = flag.Int("trajectory-bench-epochs", 100, "trajectory benchmark observation epochs")
)

// runTrajectory drives one BA growth run of n nodes observed every
// n/epochs arrivals and returns the number of epochs measured. With
// refresh, epochs ride the incremental path; without, every epoch pays
// a full freeze and a cold engine, metrics recomputed from scratch.
func runTrajectory(tb testing.TB, n, epochs, workers int, refresh bool) int {
	tb.Helper()
	every := n / epochs
	if every < 1 {
		every = 1
	}
	measured := 0
	var observe func(g *graph.Graph, nn int) error
	if refresh {
		obs := core.NewTrajectoryObserver(workers)
		observe = func(g *graph.Graph, nn int) error {
			if err := obs.Observe(g, nn); err != nil {
				return err
			}
			measured++
			return nil
		}
	} else {
		observe = func(g *graph.Graph, nn int) error {
			snap, err := g.FreezeChecked()
			if err != nil {
				return err
			}
			eng := engine.New(snap, engine.WithWorkers(workers))
			if st := eng.MeasureGrowth(); st.N != nn {
				return fmt.Errorf("measured %d nodes, want %d", st.N, nn)
			}
			measured++
			return nil
		}
	}
	_, err := gen.BA{N: n, M: 2}.GenerateTrajectory(rng.New(1), workers, gen.Trajectory{
		Every:   every,
		Observe: observe,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return measured
}

func benchTrajectory(b *testing.B, n, epochs int, refresh bool) {
	b.Helper()
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "cores")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := runTrajectory(b, n, epochs, genBenchWorkers, refresh); got < epochs {
			b.Fatalf("measured %d epochs, want >= %d", got, epochs)
		}
	}
}

func BenchmarkTrajectoryRefresh10k(b *testing.B)  { benchTrajectory(b, 10000, 20, true) }
func BenchmarkTrajectoryRefreeze10k(b *testing.B) { benchTrajectory(b, 10000, 20, false) }

// The 100k-node, 100-epoch rows are the acceptance-criterion scale.
func BenchmarkTrajectoryRefresh100k(b *testing.B)  { benchTrajectory(b, 100000, 100, true) }
func BenchmarkTrajectoryRefreeze100k(b *testing.B) { benchTrajectory(b, 100000, 100, false) }

// TestTrajectoryBenchJSON times both arms once and records the rows in
// the JSON file named by -trajectory-bench-out (BENCH_trajectory.json
// via `make bench-trajectory`). Disabled unless the flag is set; the CI
// smoke runs the 10k variant under -race, so the file also documents
// that the incremental path is race-clean.
func TestTrajectoryBenchJSON(t *testing.T) {
	if *trajBenchOut == "" {
		t.Skip("enable with -trajectory-bench-out <file>")
	}
	n, epochs := *trajBenchN, *trajBenchEpochs
	workers := genBenchWorkers

	time1 := func(refresh bool) time.Duration {
		start := time.Now()
		if got := runTrajectory(t, n, epochs, workers, refresh); got < epochs {
			t.Fatalf("measured %d epochs, want >= %d", got, epochs)
		}
		return time.Since(start)
	}
	refreeze := time1(false)
	refresh := time1(true)
	speedup := float64(refreeze) / float64(refresh)

	type row struct {
		Name    string  `json:"name"`
		Model   string  `json:"model"`
		N       int     `json:"n"`
		Epochs  int     `json:"epochs"`
		Workers int     `json:"workers"`
		Cores   int     `json:"cores"`
		NumCPU  int     `json:"num_cpu"`
		NsPerOp int64   `json:"ns_per_op"`
		Speedup float64 `json:"speedup,omitempty"`
	}
	rows := []row{
		{Name: "trajectory-refreeze", Model: "ba", N: n, Epochs: epochs, Workers: workers,
			Cores: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), NsPerOp: refreeze.Nanoseconds()},
		{Name: "trajectory-refresh", Model: "ba", N: n, Epochs: epochs, Workers: workers,
			Cores: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(), NsPerOp: refresh.Nanoseconds(), Speedup: speedup},
	}
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*trajBenchOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("n=%d epochs=%d workers=%d: refreeze %v, refresh %v, speedup %.2fx",
		n, epochs, workers, refreeze, refresh, speedup)
}
