package netmodel

import (
	"bytes"
	"flag"
	"fmt"
	"runtime"
	"testing"
	"time"

	"netmodel/internal/artifact"
	"netmodel/internal/benchutil"
	"netmodel/internal/core"
	"netmodel/internal/graphio"
	"netmodel/internal/sweep"
	"netmodel/internal/traffic"
)

// The cache benchmark measures the artifact-reuse speedup: one topology
// fanned out to eight workload variants, swept cold (cache disabled,
// the pre-cache baseline) and then warm (every stage served from a
// primed cache). The cold sweep pays generation + whole-graph metrics
// once per invocation; the warm sweep pays only the workload stage, so
// the ratio is the amortization a repeated sweep — the toposerve-style
// usage — actually sees:
//
//	make bench-cache   # merges cold/warm rows into BENCH_sweep.json
var (
	cacheBenchOut = flag.String("cache-bench-out", "", "merge cold-vs-warm cached-sweep timings into this JSON file")
	cacheBenchN   = flag.Int("cache-bench-n", 100000, "cached-sweep benchmark topology size (also runs a 10k smoke tier when larger)")
)

// cacheBenchGrid fans one BA topology out to a 4 load × 2 tail workload
// grid. MeanSize scales with n so the flow population stays small and
// the workload stage stays cheap relative to the topology stage — the
// regime the cache is for (many variants, one expensive map).
func cacheBenchGrid(n int) sweep.Grid {
	return sweep.Grid{
		Models:      []string{"ba"},
		Sizes:       []int{n},
		Seeds:       []uint64{1},
		PathSources: 100,
		Workload: &sweep.WorkloadAxes{
			Spec:        traffic.WorkloadSpec{Epochs: 3, MeanSize: 4 * float64(n)},
			LoadFactors: []float64{0.3, 0.6, 0.9, 1.2},
			TailIndexes: []float64{1.3, 2.5},
		},
	}
}

// TestCacheBenchJSON times the workload grid three ways — cold with the
// cache disabled, a priming pass that fills a fresh unbounded cache,
// and a warm pass served from it — asserts all three summaries are
// byte-identical (the tentpole contract at benchmark scale), and merges
// sweep-cache-cold / sweep-cache-warm rows into the file named by
// -cache-bench-out (BENCH_sweep.json via `make bench-cache`), next to
// the sweep scaling rows.
func TestCacheBenchJSON(t *testing.T) {
	if *cacheBenchOut == "" {
		t.Skip("enable with -cache-bench-out <file>")
	}
	sizes := []int{*cacheBenchN}
	if *cacheBenchN > 10000 {
		sizes = []int{10000, *cacheBenchN}
	}
	type row struct {
		Name        string  `json:"name"`
		Models      string  `json:"models"`
		N           int     `json:"n"`
		Seeds       int     `json:"seeds"`
		Cells       int     `json:"cells"`
		Workers     int     `json:"workers"`
		Cores       int     `json:"cores"`
		NumCPU      int     `json:"num_cpu"`
		NsPerOp     int64   `json:"ns_per_op"`
		AllocsPerOp float64 `json:"allocs_per_op"`
		BytesPerOp  float64 `json:"bytes_per_op"`
		Speedup     float64 `json:"speedup,omitempty"`
	}
	var rows []row
	for _, n := range sizes {
		g := cacheBenchGrid(n)
		encode := func(s *sweep.Summary) []byte {
			var buf bytes.Buffer
			if err := graphio.WriteSweepJSON(&buf, s); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()
		}
		run := func(ac *artifact.Cache) (*sweep.Summary, time.Duration, uint64, uint64) {
			var s *sweep.Summary
			var err error
			var elapsed time.Duration
			allocs, bytes := benchutil.MeasureAllocs(func() {
				start := time.Now()
				s, err = sweep.RunWith(g, sweep.Options{Workers: 1, Cache: ac})
				elapsed = time.Since(start)
			})
			if err != nil {
				t.Fatal(err)
			}
			return s, elapsed, allocs, bytes
		}
		cold, coldTime, coldAllocs, coldBytes := run(nil)
		ac := core.NewArtifactCache(-1)
		primed, _, _, _ := run(ac)
		want := encode(cold)
		if !bytes.Equal(want, encode(primed)) {
			t.Fatalf("n=%d: priming pass diverged from cache-disabled baseline", n)
		}
		// The warm pass is short enough that a stray GC or scheduler
		// hiccup can halve the measured ratio, so time it best-of-3 —
		// every repetition replays identical work from identical streams
		// and must keep reproducing the baseline bytes.
		var warm *sweep.Summary
		var warmTime time.Duration
		var warmAllocs, warmBytes uint64
		for rep := 0; rep < 3; rep++ {
			s, elapsed, al, by := run(ac)
			if rep == 0 || elapsed < warmTime {
				warm, warmTime, warmAllocs, warmBytes = s, elapsed, al, by
			}
			if !bytes.Equal(want, encode(s)) {
				t.Fatalf("n=%d: warm pass %d diverged from cache-disabled baseline", n, rep)
			}
		}
		for _, stage := range ac.Stats().Stages {
			if stage.Hits == 0 {
				t.Fatalf("n=%d: stage %s never hit across the warm pass", n, stage.Stage)
			}
		}
		speedup := float64(coldTime) / float64(warmTime)
		models := fmt.Sprintf("%v", g.Models)
		rows = append(rows,
			row{Name: "sweep-cache-cold", Models: models, N: n, Seeds: len(g.Seeds),
				Cells: len(cold.Cells), Workers: 1, Cores: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
				NsPerOp:     coldTime.Nanoseconds(),
				AllocsPerOp: float64(coldAllocs), BytesPerOp: float64(coldBytes)},
			row{Name: "sweep-cache-warm", Models: models, N: n, Seeds: len(g.Seeds),
				Cells: len(warm.Cells), Workers: 1, Cores: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU(),
				NsPerOp:     warmTime.Nanoseconds(),
				AllocsPerOp: float64(warmAllocs), BytesPerOp: float64(warmBytes), Speedup: speedup})
		t.Logf("n=%d cells=%d: cold %v, warm %v, speedup %.2fx",
			n, len(cold.Cells), coldTime, warmTime, speedup)
	}
	if err := benchutil.MergeBenchRows(*cacheBenchOut, rows); err != nil {
		t.Fatal(err)
	}
}
