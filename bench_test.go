// Package netmodel's benchmark harness regenerates every experiment in
// the DESIGN.md matrix (E1-E12): each benchmark prints the table or
// series the corresponding figure in the topology-modeling literature
// reports, and times the computation that produces it. Run with
//
//	go test -bench=. -benchmem
//
// The printed values are recorded against their published counterparts
// in EXPERIMENTS.md.
package netmodel

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	"netmodel/internal/aspolicy"
	"netmodel/internal/compare"
	"netmodel/internal/core"
	"netmodel/internal/econ"
	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/refdata"
	"netmodel/internal/rng"
	"netmodel/internal/stats"
	"netmodel/internal/traffic"
)

// build generates a registry model at size n with a fixed seed, caching
// the result so repeated benchmark iterations measure analysis cost, not
// generation cost, and the printed tables are stable.
var topoCache sync.Map

func build(b *testing.B, model string, n int) *graph.Graph {
	b.Helper()
	key := fmt.Sprintf("%s/%d", model, n)
	if g, ok := topoCache.Load(key); ok {
		return g.(*graph.Graph)
	}
	m, err := core.Lookup(model)
	if err != nil {
		b.Fatal(err)
	}
	top, err := m.Build(n).Generate(rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	topoCache.Store(key, top.G)
	return top.G
}

var printOnce sync.Map

// once prints a table exactly once per benchmark name across -benchtime
// re-runs.
func once(name string, f func()) {
	if _, done := printOnce.LoadOrStore(name, true); !done {
		f()
	}
}

// E1: the AS degree distribution is a power law with γ ≈ 2.1-2.2
// (Faloutsos-Faloutsos-Faloutsos 1999). The heavy-tail models must land
// in that band; Waxman must fail to produce any heavy tail.
func BenchmarkE1DegreeDistribution(b *testing.B) {
	const n = 8000
	models := []string{"ba", "gba", "glp", "pfp", "econ", "waxman"}
	type row struct {
		model       string
		gamma, hill float64
		maxDeg      int
	}
	var rows []row
	for _, m := range models {
		g := build(b, m, n)
		degs := metrics.DegreesAsFloats(g)
		var gamma float64
		if fit, err := stats.FitPowerLawDiscrete(degs); err == nil {
			gamma = fit.Alpha
		}
		hill, _ := stats.Hill(degs, 300)
		rows = append(rows, row{m, gamma, hill, g.MaxDegree()})
	}
	once("E1", func() {
		fmt.Printf("\nE1: degree-distribution exponents at N=%d (AS map: γ≈2.2)\n", n)
		fmt.Printf("%-8s %8s %8s %8s\n", "model", "MLE γ", "Hill", "k_max")
		for _, r := range rows {
			fmt.Printf("%-8s %8.2f %8.2f %8d\n", r.model, r.gamma, r.hill, r.maxDeg)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := build(b, "glp", n)
		if _, err := stats.FitPowerLawDiscrete(metrics.DegreesAsFloats(g)); err != nil {
			b.Fatal(err)
		}
	}
}

// E2: the clustering spectrum c(k) of the AS map decays roughly as
// k^-0.75 and the mean clustering is orders of magnitude above random
// (Ravasz-Barabási hierarchy).
func BenchmarkE2ClusteringSpectrum(b *testing.B) {
	const n = 8000
	once("E2", func() {
		fmt.Printf("\nE2: clustering at N=%d (AS map: ⟨c⟩≈0.30, slope≈-0.75)\n", n)
		fmt.Printf("%-8s %10s %10s %12s\n", "model", "⟨c⟩", "c(k)slope", "⟨c⟩/⟨c_ER⟩")
		er := build(b, "gnp", n)
		cer := metrics.AvgClustering(er)
		for _, m := range []string{"glp", "pfp", "econ", "gnp"} {
			g := build(b, m, n)
			c := metrics.AvgClustering(g)
			sp := compare.MeasureSpectra(g)
			ratio := math.Inf(1)
			if cer > 0 {
				ratio = c / cer
			}
			fmt.Printf("%-8s %10.4f %10.2f %12.1f\n", m, c, sp.CkSlope, ratio)
		}
	})
	g := build(b, "pfp", n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.ClusteringSpectrum(g)
	}
}

// E3: the average-neighbor-degree spectrum knn(k) decays (disassortative
// mixing, Pastor-Satorras-Vázquez-Vespignani 2001): slope ≈ -0.5 and
// Newman's r ≈ -0.19 for the AS map, flat for random graphs.
func BenchmarkE3Knn(b *testing.B) {
	const n = 8000
	once("E3", func() {
		fmt.Printf("\nE3: degree correlations at N=%d (AS map: slope≈-0.55, r≈-0.19)\n", n)
		fmt.Printf("%-8s %10s %10s\n", "model", "knn slope", "r")
		for _, m := range []string{"pfp", "glp", "econ", "ba", "gnp"} {
			g := build(b, m, n)
			sp := compare.MeasureSpectra(g)
			fmt.Printf("%-8s %10.2f %+10.3f\n", m, sp.KnnSlope, metrics.Assortativity(g))
		}
	})
	g := build(b, "pfp", n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.Knn(g)
	}
}

// E4: the k-core decomposition of the AS map is deep (coreness ≈ 18 at
// N≈11k) with shell populations decaying outward; trees and random
// graphs collapse to 1-2 shells.
func BenchmarkE4KCore(b *testing.B) {
	const n = 8000
	once("E4", func() {
		fmt.Printf("\nE4: k-core depth at N=%d (AS map: max core 18)\n", n)
		fmt.Printf("%-12s %8s %14s\n", "model", "maxcore", "innermost size")
		for _, m := range []string{"pfp", "glp", "econ", "gnp", "fkp", "transitstub"} {
			g := build(b, m, n)
			kc := metrics.KCore(g)
			fmt.Printf("%-12s %8d %14d\n", m, kc.MaxCore, kc.ShellSizes()[kc.MaxCore])
		}
	})
	g := build(b, "pfp", n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.KCore(g)
	}
}

// E5: betweenness centrality is heavy-tailed (Goh et al.): the
// cumulative distribution falls roughly as b^-1 over the scaling
// region, and the per-node triangle distribution P(T) is broad.
func BenchmarkE5Betweenness(b *testing.B) {
	const n = 2000
	g := build(b, "pfp", n)
	bc := metrics.Betweenness(g)
	once("E5", func() {
		var pos []float64
		for _, v := range bc {
			if v > 0 {
				pos = append(pos, v)
			}
		}
		sort.Float64s(pos)
		fmt.Printf("\nE5: betweenness distribution, pfp N=%d (AS map: cumulative slope≈-1)\n", n)
		fmt.Printf("%-12s %12s\n", "b", "Pcum(>b)")
		for i := 0; i < len(pos); i += max(1, len(pos)/8) {
			fmt.Printf("%-12.3g %12.4f\n", pos[i], float64(len(pos)-i)/float64(len(pos)))
		}
		var lx, ly []float64
		for i, v := range pos {
			lx = append(lx, v)
			ly = append(ly, float64(len(pos)-i)/float64(len(pos)))
		}
		if f, err := stats.LogLogFit(lx, ly); err == nil {
			fmt.Printf("cumulative log-log slope: %.2f\n", f.Slope)
		}
		tri := metrics.TrianglesPerNode(g)
		maxT := 0
		for _, t := range tri {
			if t > maxT {
				maxT = t
			}
		}
		fmt.Printf("triangles per node: max %d (broad P(T))\n", maxT)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.BetweennessSampled(g, rng.New(uint64(i)), 64); err != nil {
			b.Fatal(err)
		}
	}
}

// E6: the small world — AS-level average distance ≈ 3.6 hops with the
// distribution peaked at 3-4, diameter ≈ 10.
func BenchmarkE6PathLengths(b *testing.B) {
	const n = 8000
	once("E6", func() {
		fmt.Printf("\nE6: path lengths at N=%d (AS map: ⟨d⟩≈3.6, diameter≈10)\n", n)
		fmt.Printf("%-8s %8s %8s  distribution d:P(d)\n", "model", "⟨d⟩", "diam")
		for _, m := range []string{"pfp", "glp", "econ", "waxman", "transitstub"} {
			g := build(b, m, n)
			giant, _ := g.GiantComponent()
			ps, err := metrics.PathLengths(giant, rng.New(3), 400)
			if err != nil {
				b.Fatal(err)
			}
			var ds []int
			for d := range ps.Distribution {
				ds = append(ds, d)
			}
			sort.Ints(ds)
			line := ""
			for _, d := range ds {
				if ps.Distribution[d] >= 0.01 {
					line += fmt.Sprintf(" %d:%.2f", d, ps.Distribution[d])
				}
			}
			fmt.Printf("%-8s %8.2f %8d %s\n", m, ps.Avg, ps.Diameter, line)
		}
	})
	g := build(b, "pfp", n)
	giant, _ := g.GiantComponent()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.PathLengths(giant, rng.New(uint64(i)), 100); err != nil {
			b.Fatal(err)
		}
	}
}

// E7: loop scaling N_h(N) ∝ N^ξ(h) (Bianconi-Caldarelli-Capocci 2005).
// AS-map exponents: ξ(3)=1.45±0.07, ξ(4)=2.07±0.01, ξ(5)=2.45±0.08.
func BenchmarkE7LoopScaling(b *testing.B) {
	sizes := []int{500, 1000, 2000, 4000}
	once("E7", func() {
		fmt.Printf("\nE7: loop scaling (AS map: ξ(3)=1.45, ξ(4)=2.07, ξ(5)=2.45)\n")
		for _, model := range []string{"pfp", "econ"} {
			var lx, l3, l4, l5 []float64
			fmt.Printf("%-6s %8s %12s %14s %16s\n", model, "N", "N3", "N4", "N5")
			for _, n := range sizes {
				g := build(b, model, n)
				cc := metrics.CountCycles(g)
				fmt.Printf("%-6s %8d %12d %14d %16d\n", "", n, cc.C3, cc.C4, cc.C5)
				lx = append(lx, float64(n))
				l3 = append(l3, float64(cc.C3))
				l4 = append(l4, float64(cc.C4))
				l5 = append(l5, float64(cc.C5))
			}
			xi := func(ys []float64) float64 {
				f, err := stats.LogLogFit(lx, ys)
				if err != nil {
					return math.NaN()
				}
				return f.Slope
			}
			fmt.Printf("%-6s exponents: ξ(3)=%.2f ξ(4)=%.2f ξ(5)=%.2f\n",
				model, xi(l3), xi(l4), xi(l5))
		}
	})
	g := build(b, "pfp", 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.CountCycles(g)
	}
}

// E8: the generator shoot-out (Bu-Towsley style comparison table): every
// registered family scored against the AS-map statistics. Expected
// ordering: degree-driven Internet models (pfp/glp/gba/econ/inet) beat
// BA, which beats the structural and random baselines.
func BenchmarkE8GeneratorComparison(b *testing.B) {
	const n = 2000
	p := core.Pipeline{N: n, Seed: 1, Target: refdata.ASMap2001, PathSources: 200}
	results, err := p.RunAll()
	if err != nil {
		b.Fatal(err)
	}
	once("E8", func() {
		reports := make(map[string]*compare.Report, len(results))
		for name, res := range results {
			reports[name] = res.Report
		}
		fmt.Printf("\nE8: generator shoot-out at N=%d (aggregate relative error vs AS map)\n", n)
		for rank, name := range compare.RankModels(reports) {
			fmt.Printf("%2d. %-12s %6.1f%%\n", rank+1, name, 100*reports[name].Score)
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run("glp"); err != nil {
			b.Fatal(err)
		}
	}
}

// E9: valley-free policy routing inflates AS paths by a few percent on
// average (Gao-Wang): ratio in the 1.0-1.25 band, small fraction of
// policy-unreachable pairs under complete annotations.
func BenchmarkE9PathInflation(b *testing.B) {
	const n = 3000
	g := build(b, "gba", n)
	ann, err := asAnnotate(g)
	if err != nil {
		b.Fatal(err)
	}
	once("E9", func() {
		inf, err := ann.MeasureInflation(rng.New(5), 200)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\nE9: valley-free inflation, gba N=%d (published band %.2f-%.2f)\n",
			n, refdata.PolicyInflation.MeanRatioLo, refdata.PolicyInflation.MeanRatioHi)
		fmt.Printf("shortest %.3f  policy %.3f  ratio %.3f  unreachable %.2f%%  max stretch %d\n",
			inf.AvgShortest, inf.AvgPolicy, inf.Ratio,
			100*float64(inf.Unreachable)/float64(inf.Pairs), inf.MaxStretch)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ann.MeasureInflation(rng.New(uint64(i)), 50); err != nil {
			b.Fatal(err)
		}
	}
}

// E10: Internet growth 1997-2002 was exponential with α ≳ δ ≳ β
// (users, links, nodes) — the demand/supply consistency condition. The
// econ engine must realize its configured rates.
func BenchmarkE10Growth(b *testing.B) {
	model := econ.Default(3000)
	res, err := model.Run(rng.New(9))
	if err != nil {
		b.Fatal(err)
	}
	once("E10", func() {
		alpha, beta, delta, err := econ.GrowthRates(res.History)
		if err != nil {
			b.Fatal(err)
		}
		g := refdata.GrowthRates
		fmt.Printf("\nE10: growth rates per month (measured Internet: α=%.4f δ=%.4f β=%.4f)\n",
			g.Alpha, g.Delta, g.Beta)
		fmt.Printf("econ engine realizes: α=%.4f δ=%.4f β=%.4f (configured %.3f/%.3f)\n",
			alpha, delta, beta, model.Alpha, model.Beta)
		last := res.History[len(res.History)-1]
		fmt.Printf("final month %d: W=%.3g N=%d E=%d ⟨k⟩=%.2f\n",
			last.Month, last.Users, last.Nodes, last.Edges,
			2*float64(last.Edges)/float64(last.Nodes))
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := econ.Default(800).Run(rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// E11: rich-club connectivity (Zhou-Mondragón): φ rises toward 1 for
// the top-degree club in AS-like maps, stays low in BA and ER.
func BenchmarkE11RichClub(b *testing.B) {
	const n = 8000
	once("E11", func() {
		fmt.Printf("\nE11: rich-club φ of the smallest club with ≥16 members at N=%d\n", n)
		fmt.Printf("%-8s %8s %8s\n", "model", "club", "φ")
		for _, m := range []string{"pfp", "econ", "glp", "ba", "gnp"} {
			g := build(b, m, n)
			rc := metrics.RichClub(g)
			for i := len(rc) - 1; i >= 0; i-- {
				if rc[i].N >= 16 {
					fmt.Printf("%-8s %8d %8.3f\n", m, rc[i].N, rc[i].Phi)
					break
				}
			}
		}
	})
	g := build(b, "pfp", n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.RichClub(g)
	}
}

// E12: ISP economics — revenue follows the customer base, so profit
// inequality exceeds customer inequality and the profitable fraction
// quantifies "can you make a living?". Traffic concentrates on the
// provider core.
func BenchmarkE12Economics(b *testing.B) {
	model := econ.Default(2000)
	res, err := model.Run(rng.New(1971))
	if err != nil {
		b.Fatal(err)
	}
	rep, err := econ.Market(res, econ.DefaultPricing())
	if err != nil {
		b.Fatal(err)
	}
	once("E12", func() {
		n := len(rep.Accounts)
		fmt.Printf("\nE12: the AS market at N=%d\n", n)
		fmt.Printf("profitable: %.1f%%  median margin: %.1f%%  Gini users %.3f  Gini profit %.3f\n",
			100*float64(rep.Profitable)/float64(n), 100*rep.MedianMargin,
			rep.GiniUsers, rep.GiniProfit)
		masses := make([]float64, res.G.N())
		for u := range masses {
			masses[u] = res.Users[u]
		}
		tm, err := traffic.Gravity(masses, 1e6)
		if err != nil {
			b.Fatal(err)
		}
		lr, err := traffic.Route(res.G, tm, true)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("traffic: max/mean link load %.1f, max utilization %.3g\n",
			lr.MaxLoad/lr.MeanLoad, lr.MaxUtilization)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := econ.Market(res, econ.DefaultPricing()); err != nil {
			b.Fatal(err)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// asAnnotate applies the standard degree-hierarchy relationship
// annotation used by the routing experiments.
func asAnnotate(g *graph.Graph) (*aspolicy.Annotated, error) {
	return aspolicy.AnnotateByDegree(g, 1.3)
}
