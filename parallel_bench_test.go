package netmodel

import (
	"testing"

	"netmodel/internal/engine"
	"netmodel/internal/metrics"
	"netmodel/internal/rng"
)

// The engine benchmarks pit the parallel CSR metrics engine against the
// sequential map-based implementations on a 10k-node heavy-tailed
// topology — the acceptance surface of the snapshot/engine work:
//
//	go test -bench 'Betweenness|Closeness' -benchmem
//
// The engine path wins twice: flat sorted arrays replace map chasing
// per traversal step (a single-core win), and sources shard across
// GOMAXPROCS workers (a multi-core win).
const benchN = 10000

// benchSources keeps one sampled-betweenness iteration subsecond at
// n=10k while exercising exactly the sharded per-source path.
const benchSources = 64

func BenchmarkBetweennessSequential(b *testing.B) {
	g := build(b, "gba", benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.BetweennessSampled(g, rng.New(uint64(i)), benchSources); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBetweennessEngine(b *testing.B) {
	g := build(b, "gba", benchN)
	eng := engine.New(g.Freeze())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.BetweennessSampled(rng.New(uint64(i)), benchSources); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClosenessSequential(b *testing.B) {
	g := build(b, "gba", benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		metrics.Closeness(g)
	}
}

func BenchmarkClosenessEngine(b *testing.B) {
	g := build(b, "gba", benchN)
	s := g.Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh engine per iteration defeats memoization, so the
		// measurement is the full parallel computation.
		engine.New(s).Closeness()
	}
}

func BenchmarkFreeze(b *testing.B) {
	g := build(b, "gba", benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Freeze()
	}
}

func BenchmarkMeasureSequential(b *testing.B) {
	g := build(b, "gba", benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metrics.Measure(g, rng.New(uint64(i)), 200); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMeasureEngine(b *testing.B) {
	g := build(b, "gba", benchN)
	s := g.Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.New(s).Measure(rng.New(uint64(i)), 200); err != nil {
			b.Fatal(err)
		}
	}
}
