// sweep demonstrates the parameter-sweep subsystem on the paper's
// model shoot-out: the three degree-driven growth families (BA, GLP,
// PFP) at one size across three seeds, every cell validated against
// the 2001 AS map, and the cross-seed moments ranked — the many-maps
// protocol under which the literature compares generator families,
// where no ranking rests on a single lucky seed.
//
// The grid fans out across -workers; the printed summary is
// bit-identical at every pool width, and any cell of it can be re-run
// alone from its (model, n, seed) row.
package main

import (
	"flag"
	"fmt"
	"log"

	"netmodel/internal/sweep"
)

func main() {
	workers := flag.Int("workers", 0, "cell pool width; 0 = GOMAXPROCS (never changes results)")
	n := flag.Int("n", 1500, "cell size")
	flag.Parse()

	grid := sweep.Grid{
		Models:      []string{"ba", "glp", "pfp"},
		Sizes:       []int{*n},
		Seeds:       []uint64{1, 2, 3},
		PathSources: 150,
	}
	s, err := sweep.Run(grid, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(s.String())

	// The winner's cross-seed metric moments: how stable each measured
	// statistic is across replicas, the detail the score aggregates.
	best := s.Rankings[0].Models[0]
	for _, a := range s.Aggregates {
		if a.Model != best {
			continue
		}
		fmt.Printf("\n%s at n=%d, per-metric across %d seeds\n", best, a.N, a.Seeds)
		fmt.Printf("%-18s %12s %10s %12s %12s\n", "metric", "mean", "std", "min", "max")
		for _, m := range a.Metrics {
			fmt.Printf("%-18s %12.4g %10.3g %12.4g %12.4g\n", m.Name, m.Mean, m.Std, m.Min, m.Max)
		}
	}
}
