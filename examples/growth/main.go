// growth replays the 1997-2002 Internet growth measurements inside the
// demand/supply engine: exponential expansion of users, ASs and links,
// the rate ordering α > δ ≳ β, the scaling relations they imply
// (E ∝ N^{δ/β}, drifting ⟨k⟩), and the emergence of the k ∝ b^μ
// degree-bandwidth split. It closes with a topology-side trajectory:
// a BA map observed every few thousand arrivals through
// delta-refreshed snapshots, showing how clustering decays and the
// degree tail settles as the map accretes.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"netmodel/internal/core"
	"netmodel/internal/econ"
	"netmodel/internal/gen"
	"netmodel/internal/metrics"
	"netmodel/internal/refdata"
	"netmodel/internal/rng"
	"netmodel/internal/stats"
)

func main() {
	workers := flag.Int("workers", 1, "shard the monthly competition rounds; 1 = sequential reference")
	flag.Parse()
	model := econ.Default(4000)
	model.Workers = *workers
	res, err := model.Run(rng.New(1997))
	if err != nil {
		log.Fatal(err)
	}
	hist := res.History

	fmt.Println("month        users      ASs     links  bandwidth   ⟨k⟩")
	for _, h := range hist {
		if h.Month%24 == 0 || h.Month == hist[len(hist)-1].Month {
			fmt.Printf("%5d %12.0f %8d %9d %10d %5.2f\n",
				h.Month, h.Users, h.Nodes, h.Edges, h.Bandwidth,
				2*float64(h.Edges)/float64(h.Nodes))
		}
	}

	alpha, beta, delta, err := econ.GrowthRates(hist)
	if err != nil {
		log.Fatal(err)
	}
	g := refdata.GrowthRates
	fmt.Printf("\nrealized rates (month⁻¹):  α=%.4f  δ=%.4f  β=%.4f\n", alpha, delta, beta)
	fmt.Printf("measured 1997-2002:        α=%.4f  δ=%.4f  β=%.4f\n", g.Alpha, g.Delta, g.Beta)

	// Scaling relation E ∝ N^{δ/β}: fit it directly from the history.
	var lx, ly []float64
	for _, h := range hist {
		if h.Nodes > 10 && h.Edges > 10 {
			lx = append(lx, float64(h.Nodes))
			ly = append(ly, float64(h.Edges))
		}
	}
	f, err := stats.LogLogFit(lx, ly)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nE ∝ N^x: fitted x = %.3f, predicted δ/β = %.3f (R²=%.3f)\n",
		f.Slope, delta/beta, f.R2)

	// Degree-bandwidth scaling k ∝ b^μ.
	ks, bs := metrics.DegreeStrengthPairs(res.G)
	var kb, bb []float64
	for i := range ks {
		if bs[i] >= 4 { // the scaling regime is the upper range
			kb = append(kb, math.Log(ks[i]))
			bb = append(bb, math.Log(bs[i]))
		}
	}
	mu, err := stats.LinearFit(bb, kb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k ∝ b^μ: fitted μ = %.3f (weighted maps require μ < 1)\n", mu.Slope)

	// Growth-trajectory measurement: the same map observed at many
	// epochs as it accretes. Each epoch refreshes the previous CSR
	// snapshot from the mutation delta and advances one metrics engine,
	// so the whole trajectory costs little more than one final freeze.
	fmt.Println("\nBA growth trajectory (delta-refreshed measurement every 2500 arrivals):")
	obs := core.NewTrajectoryObserver(*workers)
	if _, err := gen.GenerateTrajectoryWith(gen.BA{N: 20000, M: 2}, rng.New(2002), *workers,
		gen.Trajectory{Every: 2500, Observe: obs.Observe}); err != nil {
		log.Fatal(err)
	}
	if err := core.WriteTrajectory(os.Stdout, obs.Points()); err != nil {
		log.Fatal(err)
	}
}
