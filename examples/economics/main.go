// economics asks the title question — can you make a living modeling
// (or rather, being part of) the Internet? It grows an AS market with
// the demand/supply engine, opens every provider's books under a
// transit-pricing model, and reports who profits: the answer the
// rich-get-richer dynamics dictate.
package main

import (
	"flag"
	"fmt"
	"log"

	"netmodel/internal/econ"
	"netmodel/internal/rng"
)

func main() {
	workers := flag.Int("workers", 1, "shard the monthly competition rounds; 1 = sequential reference")
	flag.Parse()
	model := econ.Default(3000)
	model.Workers = *workers
	fmt.Printf("growing an AS market to N=%d (α=%.3f, β=%.3f, δ'=%.3f per month)\n",
		model.TargetN, model.Alpha, model.Beta, model.DeltaPrime)
	res, err := model.Run(rng.New(1971))
	if err != nil {
		log.Fatal(err)
	}
	last := res.History[len(res.History)-1]
	fmt.Printf("after %d months: %.0f users, %d ASs, %d links, %d bandwidth units\n",
		last.Month, last.Users, last.Nodes, last.Edges, last.Bandwidth)

	alpha, beta, delta, err := econ.GrowthRates(res.History)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("realized growth rates: users %.4f, ASs %.4f, links %.4f (α > δ ≳ β ✓)\n",
		alpha, beta, delta)

	rep, err := econ.Market(res, econ.DefaultPricing())
	if err != nil {
		log.Fatal(err)
	}
	n := len(rep.Accounts)
	fmt.Printf("\n=== the market after the land grab ===\n")
	fmt.Printf("profitable ASs:      %d of %d (%.1f%%)\n", rep.Profitable, n,
		100*float64(rep.Profitable)/float64(n))
	fmt.Printf("median margin:       %.1f%%\n", 100*rep.MedianMargin)
	fmt.Printf("customer-base Gini:  %.3f\n", rep.GiniUsers)
	fmt.Printf("profit Gini:         %.3f\n", rep.GiniProfit)

	fmt.Println("\nthe top of the market:")
	fmt.Printf("%-6s %12s %8s %8s %14s %10s\n", "rank", "users", "degree", "band", "profit", "margin")
	for i := 0; i < 5; i++ {
		a := rep.Accounts[i]
		fmt.Printf("%-6d %12.0f %8d %8d %14.0f %9.1f%%\n",
			i+1, a.Users, a.Degree, a.Band, a.Profit, 100*a.Margin)
	}
	fmt.Println("...and the bottom:")
	for i := n - 3; i < n; i++ {
		a := rep.Accounts[i]
		fmt.Printf("%-6d %12.0f %8d %8d %14.0f %9.1f%%\n",
			i+1, a.Users, a.Degree, a.Band, a.Profit, 100*a.Margin)
	}

	// The punchline: count how many ASs would have been profitable had
	// they each held the median customer base — i.e. whether the market
	// outcome is about efficiency or about who got big first.
	med := rep.Accounts[n/2]
	fmt.Printf("\na median AS (%d users) runs a %.1f%% margin: modeling the Internet is fun,\n",
		int(med.Users), 100*med.Margin)
	if med.Profit > 0 {
		fmt.Println("and yes — at this pricing you can (just) make a living.")
	} else {
		fmt.Println("but at this pricing, only the early movers make a living.")
	}
}
