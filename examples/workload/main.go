// workload demonstrates the flow-level traffic subsystem: a BA-family
// AS map under a Poisson session workload with heavy-tailed (Pareto)
// flow sizes, simulated across a sweep of load factors. Flows arrive on
// gravity-weighted origin-destination pairs, follow shortest paths, and
// share link bandwidth max-min fairly; the printout tracks how flow
// completion times stretch and links saturate as offered load crosses
// the network's capacity region — the flow-level stability picture of
// the Garg-Young and Feuillet lines of work.
//
// Everything is seeded: the same run reproduces bit for bit at any
// -workers width (workers only shard shortest-path tree construction).
package main

import (
	"flag"
	"fmt"
	"log"

	"netmodel/internal/engine"
	"netmodel/internal/gen"
	"netmodel/internal/rng"
	"netmodel/internal/traffic"
)

func main() {
	workers := flag.Int("workers", 0, "tree-build pool; 0 = GOMAXPROCS (never changes results)")
	n := flag.Int("n", 2000, "map size")
	flag.Parse()

	top, err := gen.BA{N: *n, M: 2, A: -1.2}.Generate(rng.New(7))
	if err != nil {
		log.Fatal(err)
	}
	snap, err := top.G.FreezeChecked()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology: %d ASs, %d links\n", snap.N(), snap.M())

	// One engine per snapshot: the workload simulations below share its
	// memoized routing state (shortest-path trees) across load levels.
	eng := engine.New(snap, engine.WithWorkers(*workers))
	masses := make([]float64, snap.N())
	for u := range masses {
		masses[u] = float64(snap.Degree(u))
	}

	fmt.Println("\nPoisson arrivals, Pareto sizes (tail 1.5), 30 epochs:")
	fmt.Printf("%6s %9s %9s %9s %8s %8s\n", "load", "arrived", "done", "fct", "util", "overload")
	for _, load := range []float64{0.1, 0.3, 0.6, 1.0, 1.5} {
		spec := traffic.WorkloadSpec{LoadFactor: load, Epochs: 30}
		rep, err := traffic.SimulateWith(eng, masses, spec, rng.New(11))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6.2f %9d %9d %9.3f %7.1f%% %7.1f%%\n",
			load, rep.Arrived, rep.Completed, rep.MeanFCT, 100*rep.MeanUtil, 100*rep.OverloadFrac)
	}

	// The same offered load, bursty: on-off (Markov-modulated) sources
	// concentrate arrivals into on-periods and stretch completions.
	fmt.Println("\nsmooth vs bursty at load 0.6:")
	for _, arrivals := range []string{"poisson", "onoff"} {
		spec := traffic.WorkloadSpec{LoadFactor: 0.6, Epochs: 30, Arrivals: arrivals}
		rep, err := traffic.SimulateWith(eng, masses, spec, rng.New(11))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s mean FCT %7.3f, overload %5.1f%%, util p-tail:", arrivals, rep.MeanFCT, 100*rep.OverloadFrac)
		for _, b := range rep.UtilCCDF {
			if b.Util >= 0.9 {
				fmt.Printf(" P[u>=%.2f]=%.3f", b.Util, b.Frac)
			}
		}
		fmt.Println()
	}

	// Both engines simulate the same semantics from the same streams:
	// the event engine replaces the per-epoch full re-waterfill with an
	// arrival/departure calendar and incremental per-component
	// re-solves — same flows, same completion times, faster at scale.
	fmt.Println("\nepoch engine vs event engine at load 1.0:")
	for _, engineName := range []string{traffic.EngineEpoch, traffic.EngineEvent} {
		spec := traffic.WorkloadSpec{Engine: engineName, LoadFactor: 1.0, Epochs: 30}
		rep, err := traffic.SimulateWith(eng, masses, spec, rng.New(11))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-6s arrived %6d, done %6d, mean FCT %7.3f, overload %5.1f%%\n",
			engineName, rep.Arrived, rep.Completed, rep.MeanFCT, 100*rep.OverloadFrac)
	}
}
