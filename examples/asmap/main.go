// asmap synthesizes a full-size AS-level Internet map (N ≈ 11000, the
// May-2001 benchmark scale), runs the complete measurement battery —
// degree CCDF, correlation spectra, k-core shells, rich club, cycle
// counts — and prints each alongside the published reference values.
//
// This is the "validation figure" workflow of a generator paper,
// end to end.
package main

import (
	"fmt"
	"log"

	"netmodel/internal/compare"
	"netmodel/internal/core"
	"netmodel/internal/metrics"
	"netmodel/internal/refdata"
)

func main() {
	const n = 11000
	model := "pfp"
	fmt.Printf("=== synthesizing %s map at N=%d ===\n", model, n)
	p := core.Pipeline{N: n, Seed: 2001, Target: refdata.ASMap2001, PathSources: 400}
	res, err := p.Run(model)
	if err != nil {
		log.Fatal(err)
	}
	g := res.Topology.G

	fmt.Println("\n--- headline comparison ---")
	fmt.Print(res.Report)

	fmt.Println("\n--- degree CCDF (log-binned) ---")
	ks, pc := metrics.DegreeCCDF(g)
	fmt.Println("k      Pc(k)")
	for i := 0; i < len(ks); i += max(1, len(ks)/12) {
		fmt.Printf("%-6d %.5f\n", ks[i], pc[i])
	}

	fmt.Println("\n--- correlation spectra ---")
	sp := compare.MeasureSpectra(g)
	fmt.Printf("knn(k) slope: measured %.2f, AS map %.2f\n", sp.KnnSlope, refdata.ASMap2001.KnnSlope)
	fmt.Printf("c(k)  slope: measured %.2f, AS map %.2f\n", sp.CkSlope, refdata.ASMap2001.CkSlope)

	fmt.Println("\n--- k-core decomposition ---")
	kc := metrics.KCore(g)
	shells := kc.ShellSizes()
	fmt.Printf("coreness: measured %d, AS map %d\n", kc.MaxCore, refdata.ASMap2001.MaxCore)
	fmt.Println("shell  nodes")
	for k, size := range shells {
		if size > 0 && (k <= 3 || k == kc.MaxCore || k%5 == 0) {
			fmt.Printf("%-6d %d\n", k, size)
		}
	}

	fmt.Println("\n--- rich club ---")
	rc := metrics.RichClub(g)
	for _, pt := range rc {
		if pt.N <= 64 && pt.N >= 2 {
			fmt.Printf("top %-4d ASs (k>%d): φ = %.3f\n", pt.N, pt.K, pt.Phi)
		}
	}

	fmt.Println("\n--- short cycles (on a 4000-node subsample scale) ---")
	sub, err := core.Pipeline{N: 4000, Seed: 2001, Target: refdata.ASMap2001, PathSources: 1}.Run(model)
	if err != nil {
		log.Fatal(err)
	}
	cc := metrics.CountCycles(sub.Topology.G)
	fmt.Printf("N=4000: triangles %d, 4-cycles %d, 5-cycles %d\n", cc.C3, cc.C4, cc.C5)
}
