// Quickstart: generate an Internet-like topology, measure it, and
// validate it against the published AS-map statistics — the three calls
// every netmodel program is built from.
package main

import (
	"fmt"
	"log"

	"netmodel/internal/compare"
	"netmodel/internal/gen"
	"netmodel/internal/metrics"
	"netmodel/internal/refdata"
	"netmodel/internal/rng"
)

func main() {
	// 1. Generate: a GLP map with the Bu-Towsley calibration.
	r := rng.New(42)
	top, err := gen.GLP{N: 5000, M: 1, P: 0.45, Beta: 0.64}.Generate(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d ASs, %d links\n", top.G.N(), top.G.M())

	// 2. Measure: the canonical metric snapshot.
	snap, err := metrics.Measure(top.G, rng.New(1), 500)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degree exponent γ = %.2f, clustering = %.3f, ⟨d⟩ = %.2f hops\n",
		snap.Gamma, snap.AvgClustering, snap.AvgPathLen)

	// 3. Validate: score against the May-2001 AS map.
	rep, err := compare.Against(top.G, refdata.ASMap2001,
		compare.Options{PathSources: 500, Rand: rng.New(2)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)
}
