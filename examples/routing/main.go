// routing demonstrates the policy layer: build a synthetic AS topology,
// annotate it with provider/customer/peer relationships, and measure
// how much valley-free routing inflates paths over pure shortest paths
// — then routes a gravity traffic matrix to find the hot links.
package main

import (
	"fmt"
	"log"

	"netmodel/internal/aspolicy"
	"netmodel/internal/engine"
	"netmodel/internal/gen"
	"netmodel/internal/refdata"
	"netmodel/internal/rng"
	"netmodel/internal/traffic"
)

func main() {
	// A BA-family map gives a clean degree hierarchy to annotate.
	top, err := gen.BA{N: 3000, M: 2, A: -1.2}.Generate(rng.New(7))
	if err != nil {
		log.Fatal(err)
	}
	g := top.G
	fmt.Printf("topology: %d ASs, %d links\n", g.N(), g.M())

	// Degree-hierarchy annotation: bigger AS is the provider; near-equal
	// degrees peer.
	ann, err := aspolicy.AnnotateByDegree(g, 1.3)
	if err != nil {
		log.Fatal(err)
	}
	p2c, peer := ann.Counts()
	fmt.Printf("relationships: %d provider-customer, %d peer (%.1f%% peering)\n",
		p2c, peer, 100*float64(peer)/float64(p2c+peer))
	fmt.Printf("tier-1 ASs (no providers): %v\n", ann.Tier1s())

	// Freeze once, analyze everywhere: one engine holds the immutable
	// CSR snapshot and its per-snapshot cache; binding the annotation to
	// it puts the policy metrics (cones, exact inflation) in the same
	// memo as the topology metrics, and the traffic router below shares
	// the same snapshot.
	eng := engine.New(g.Freeze())
	frozen, err := ann.FreezeWith(eng)
	if err != nil {
		log.Fatal(err)
	}
	cones := frozen.CustomerCone()
	maxCone := 0
	for _, c := range cones {
		if c > maxCone {
			maxCone = c
		}
	}
	fmt.Printf("largest customer cone: %d of %d ASs (clustering %.4f, same snapshot)\n",
		maxCone, g.N(), eng.AvgClustering())

	// Policy inflation, the Gao-Wang measurement.
	inf, err := frozen.MeasureInflation(rng.New(9), 300)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvalley-free inflation over %d pairs:\n", inf.Pairs)
	fmt.Printf("  shortest   %.3f hops\n", inf.AvgShortest)
	fmt.Printf("  policy     %.3f hops (ratio %.3f, published band %.2f-%.2f)\n",
		inf.AvgPolicy, inf.Ratio,
		refdata.PolicyInflation.MeanRatioLo, refdata.PolicyInflation.MeanRatioHi)
	fmt.Printf("  policy-unreachable pairs: %.2f%%\n", 100*float64(inf.Unreachable)/float64(inf.Pairs))
	fmt.Printf("  worst additive stretch: %d hops\n", inf.MaxStretch)

	// Traffic: gravity demand with degree masses, routed on shortest
	// paths; where does the load concentrate? The demand streams row by
	// row — the dense N×N matrix is never materialized.
	masses := make([]float64, g.N())
	for u := range masses {
		masses[u] = float64(g.Degree(u))
	}
	tm, err := traffic.NewGravityDemand(masses, 1e6)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := traffic.RouteFrozenDemand(frozen.S, tm, false, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntraffic: mean link load %.0f, max %.0f (%.1fx mean)\n",
		rep.MeanLoad, rep.MaxLoad, rep.MaxLoad/rep.MeanLoad)
	fmt.Println("hottest links (u, v, load, provider side):")
	for _, i := range rep.HotSpots(5) {
		l := rep.Links[i]
		fmt.Printf("  %5d -- %-5d %12.0f  %s\n", l.U, l.V, l.Load, ann.RelOf(l.U, l.V))
	}
}
