// Package refdata encodes the published reference statistics of the
// measured AS-level Internet that this toolkit validates against.
//
// The original artifacts — Oregon RouteViews BGP table dumps and the
// extended AS+ maps — are not redistributable inside this repository,
// and more importantly are not what the validation literature actually
// compares against: every generator paper reduces the maps to a small
// vector of summary statistics. This package records those published
// numbers (May-2001 era maps, the standard benchmark snapshot) as Go
// values, so a synthetic topology can be scored against the measured
// Internet without the raw data. Each field cites the measurement it
// comes from in the field comment.
package refdata

// Target is a reference statistic vector for a measured map.
type Target struct {
	Name          string
	N             int     // number of ASs
	M             int     // number of inter-AS links
	AvgDegree     float64 // 2M/N
	Gamma         float64 // degree-distribution power-law exponent
	MaxDegreeFrac float64 // max degree / N (linear scaling observed)
	AvgClustering float64 // mean local clustering
	Assortativity float64 // Newman's r
	AvgPathLen    float64 // mean AS hop distance
	Diameter      int     // maximum hop distance
	MaxCore       int     // depth of the k-core decomposition
	KnnSlope      float64 // log-log slope of knn(k)
	CkSlope       float64 // log-log slope of the clustering spectrum c(k)
}

// ASMap2001 is the Oregon RouteViews AS map, May 2001 snapshot: the
// benchmark map of the 2001-2005 validation literature.
//
// Sources: N, M and γ from Pastor-Satorras & Vespignani (2004), ch. 4;
// γ also Faloutsos³ (1999) and Vázquez et al. (2002); clustering,
// knn slope and assortativity from Vázquez-Pastor-Satorras-Vespignani
// (2002); path statistics from the same; coreness from the LANET-VI
// k-core analyses (Alvarez-Hamelin et al. 2005).
var ASMap2001 = Target{
	Name:          "AS map (RouteViews, May 2001)",
	N:             11174,
	M:             23409,
	AvgDegree:     4.19,
	Gamma:         2.2,
	MaxDegreeFrac: 0.21, // k_max ≈ 2390 of 11174
	AvgClustering: 0.30,
	Assortativity: -0.19,
	AvgPathLen:    3.62,
	Diameter:      10,
	MaxCore:       18,
	KnnSlope:      -0.55,
	CkSlope:       -0.75,
}

// ASPlusMap2001 is the extended AS+ map (Chen et al. 2002), which adds
// non-RouteViews vantage points and uncovers roughly 40% more links,
// mostly peering edges low in the hierarchy.
var ASPlusMap2001 = Target{
	Name:          "AS+ extended map (2001)",
	N:             11461,
	M:             32730,
	AvgDegree:     5.71,
	Gamma:         2.2,
	MaxDegreeFrac: 0.23,
	AvgClustering: 0.35,
	Assortativity: -0.19,
	AvgPathLen:    3.56,
	Diameter:      9,
	MaxCore:       20,
	KnnSlope:      -0.55,
	CkSlope:       -0.75,
}

// GrowthRates are the measured exponential growth rates of the Internet
// between November 1997 and May 2002 (units: month⁻¹): hosts from the
// Hobbes Internet Timeline, ASs and links from daily RouteViews
// snapshots. The ordering Alpha ≳ Delta ≳ Beta is the demand/supply
// consistency condition of the growth analysis.
var GrowthRates = struct {
	Alpha      float64 // hosts (users)
	Beta       float64 // ASs (nodes)
	Delta      float64 // inter-AS links (edges)
	AlphaError float64
	BetaError  float64
	DeltaError float64
}{
	Alpha: 0.036, Beta: 0.0304, Delta: 0.0330,
	AlphaError: 0.001, BetaError: 0.0003, DeltaError: 0.0002,
}

// LoopExponents are the measured scaling exponents ξ(h) of the number
// of h-cycles with system size, N_h(N) ∝ N^ξ(h) (Bianconi-Caldarelli-
// Capocci 2005), with the values reported for the growing AS maps.
var LoopExponents = struct {
	Xi3, Xi4, Xi5          float64
	Xi3Err, Xi4Err, Xi5Err float64
}{
	Xi3: 1.45, Xi4: 2.07, Xi5: 2.45,
	Xi3Err: 0.07, Xi4Err: 0.01, Xi5Err: 0.08,
}

// PolicyInflation is the measured AS-path stretch of valley-free policy
// routing over hypothetical shortest paths (Gao-Wang 2002 era analyses):
// roughly 10-20% of pairs are inflated, with mean stretch well under one
// hop.
var PolicyInflation = struct {
	MeanRatioLo, MeanRatioHi float64
}{MeanRatioLo: 1.0, MeanRatioHi: 1.25}
