package refdata

import (
	"math"
	"testing"
)

func TestTargetsInternallyConsistent(t *testing.T) {
	for _, tgt := range []Target{ASMap2001, ASPlusMap2001} {
		if tgt.N <= 0 || tgt.M <= 0 {
			t.Fatalf("%s: empty target", tgt.Name)
		}
		want := 2 * float64(tgt.M) / float64(tgt.N)
		if math.Abs(want-tgt.AvgDegree) > 0.05 {
			t.Fatalf("%s: AvgDegree %v inconsistent with N,M (%v)", tgt.Name, tgt.AvgDegree, want)
		}
		if tgt.Gamma < 2 || tgt.Gamma > 2.5 {
			t.Fatalf("%s: Gamma %v outside the published AS range", tgt.Name, tgt.Gamma)
		}
		if tgt.Assortativity >= 0 {
			t.Fatalf("%s: AS maps are disassortative", tgt.Name)
		}
		if tgt.AvgPathLen < 2 || tgt.AvgPathLen > 6 {
			t.Fatalf("%s: implausible path length %v", tgt.Name, tgt.AvgPathLen)
		}
		if tgt.MaxDegreeFrac <= 0 || tgt.MaxDegreeFrac >= 1 {
			t.Fatalf("%s: MaxDegreeFrac %v out of (0,1)", tgt.Name, tgt.MaxDegreeFrac)
		}
	}
}

func TestASPlusSupersetOfAS(t *testing.T) {
	// The extended map adds links, not (many) nodes.
	if ASPlusMap2001.M <= ASMap2001.M {
		t.Fatal("AS+ must contain more links than the RouteViews map")
	}
	if ASPlusMap2001.N < ASMap2001.N {
		t.Fatal("AS+ cannot have fewer ASs")
	}
	if ASPlusMap2001.AvgClustering <= ASMap2001.AvgClustering {
		t.Fatal("extra peering links must raise clustering")
	}
}

func TestGrowthRateOrdering(t *testing.T) {
	g := GrowthRates
	if !(g.Alpha > g.Delta && g.Delta > g.Beta) {
		t.Fatalf("rate ordering alpha > delta > beta violated: %+v", g)
	}
	if g.AlphaError <= 0 || g.BetaError <= 0 || g.DeltaError <= 0 {
		t.Fatal("missing error bars")
	}
}

func TestLoopExponentOrdering(t *testing.T) {
	l := LoopExponents
	if !(l.Xi3 < l.Xi4 && l.Xi4 < l.Xi5) {
		t.Fatalf("loop exponents must increase with cycle length: %+v", l)
	}
	// Higher loops cannot outgrow the h-th power of edges: xi(h) < h.
	if l.Xi3 >= 3 || l.Xi4 >= 4 || l.Xi5 >= 5 {
		t.Fatalf("loop exponents exceed combinatorial bounds: %+v", l)
	}
}

func TestPolicyInflationBand(t *testing.T) {
	p := PolicyInflation
	if p.MeanRatioLo < 1 || p.MeanRatioHi <= p.MeanRatioLo {
		t.Fatalf("bad inflation band %+v", p)
	}
}
