// Package geom provides the geographic substrate for topology generation:
// 2-D points, distance metrics on the plane and on the torus, point
// processes (uniform Poisson and box-fractal with tunable fractal
// dimension), and a uniform-grid spatial index.
//
// Internet modeling needs geography because link formation costs grow
// with distance: Waxman-family generators and distance-constrained
// preferential attachment both take per-pair distances as input. Router
// locations are known to be fractally distributed with dimension ≈ 1.5
// (Yook-Jeong-Barabási), which the Fractal point process reproduces.
package geom

import (
	"errors"
	"math"

	"netmodel/internal/rng"
)

// Point is a location on the unit square [0,1)².
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// TorusDist returns the distance between p and q on the unit torus, i.e.
// with wraparound on both axes. It is never larger than Dist and bounded
// by sqrt(2)/2.
func (p Point) TorusDist(q Point) float64 {
	dx := math.Abs(p.X - q.X)
	dy := math.Abs(p.Y - q.Y)
	if dx > 0.5 {
		dx = 1 - dx
	}
	if dy > 0.5 {
		dy = 1 - dy
	}
	return math.Sqrt(dx*dx + dy*dy)
}

// MaxDist is the largest possible Euclidean distance on the unit square.
var MaxDist = math.Sqrt2

// Uniform places n points independently and uniformly on the unit square.
func Uniform(r *rng.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: r.Float64(), Y: r.Float64()}
	}
	return pts
}

// Fractal places n points on a box fractal of dimension df in (0,2].
//
// The construction recursively subdivides the unit square into a b×b grid
// (b=3) and retains m ≈ b^df cells chosen at random at each level — a
// single shared random Cantor-like set of dimension log(m)/log(b). Points
// are placed by descending the retained-cell hierarchy to a fixed depth
// and jittering uniformly inside the final cell. df=2 degenerates to the
// uniform process; df≈1.5 reproduces the measured router distribution.
func Fractal(r *rng.Rand, n int, df float64) ([]Point, error) {
	if df <= 0 || df > 2 {
		return nil, errors.New("geom: fractal dimension must be in (0,2]")
	}
	if df == 2 {
		return Uniform(r, n), nil
	}
	const b = 3
	const depth = 5
	// Number of retained cells per level: df = log(m)/log(b) -> m = b^df.
	// m is fractional; realize it stochastically per node so the expected
	// dimension matches df.
	mExact := math.Pow(b, df)
	mLow := int(math.Floor(mExact))
	frac := mExact - float64(mLow)
	drawM := func() int {
		m := mLow
		if r.Float64() < frac {
			m++
		}
		if m < 1 {
			m = 1
		}
		if m > b*b {
			m = b * b
		}
		return m
	}
	// Build the shared retained-cell tree once. Each node stores the grid
	// slots of its retained children; the tree is identical for every
	// sampled point, which is what makes the union fractal rather than
	// space filling.
	type node struct {
		slots    []int
		children []int // indices into the node arena, -1 below max depth
	}
	arena := []node{}
	var build func(level int) int
	build = func(level int) int {
		m := drawM()
		perm := r.Perm(b * b)
		nd := node{slots: perm[:m]}
		if level < depth-1 {
			nd.children = make([]int, m)
			idx := len(arena)
			arena = append(arena, nd)
			for i := 0; i < m; i++ {
				arena[idx].children = append([]int{}, arena[idx].children...)
				arena[idx].children[i] = build(level + 1)
			}
			return idx
		}
		arena = append(arena, nd)
		return len(arena) - 1
	}
	root := build(0)
	pts := make([]Point, n)
	for i := range pts {
		x, y := 0.0, 0.0
		size := 1.0
		cur := root
		for d := 0; d < depth; d++ {
			nd := arena[cur]
			c := r.Intn(len(nd.slots))
			slot := nd.slots[c]
			size /= b
			x += float64(slot%b) * size
			y += float64(slot/b) * size
			if nd.children != nil {
				cur = nd.children[c]
			}
		}
		pts[i] = Point{X: x + r.Float64()*size, Y: y + r.Float64()*size}
	}
	return pts, nil
}

// BoxCountDimension estimates the fractal (box-counting) dimension of a
// point set by regressing log N(ε) on log 1/ε over a ladder of grid sizes.
// It needs at least a few hundred points for a stable estimate.
func BoxCountDimension(pts []Point) float64 {
	if len(pts) < 2 {
		return 0
	}
	var logs, counts []float64
	for _, g := range []int{4, 8, 16, 32, 64} {
		occ := make(map[int]struct{})
		for _, p := range pts {
			cx := int(p.X * float64(g))
			cy := int(p.Y * float64(g))
			if cx >= g {
				cx = g - 1
			}
			if cy >= g {
				cy = g - 1
			}
			occ[cy*g+cx] = struct{}{}
		}
		logs = append(logs, math.Log(float64(g)))
		counts = append(counts, math.Log(float64(len(occ))))
	}
	// least squares slope
	n := float64(len(logs))
	var sx, sy, sxx, sxy float64
	for i := range logs {
		sx += logs[i]
		sy += counts[i]
		sxx += logs[i] * logs[i]
		sxy += logs[i] * counts[i]
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// Grid is a uniform-grid spatial index over points on the unit square,
// supporting range queries used by distance-constrained generators.
type Grid struct {
	cells map[int][]int
	pts   []Point
	g     int
}

// NewGrid indexes pts with roughly sqrt(n) cells per axis.
func NewGrid(pts []Point) *Grid {
	g := int(math.Sqrt(float64(len(pts)))) + 1
	if g < 1 {
		g = 1
	}
	grid := &Grid{cells: make(map[int][]int), pts: pts, g: g}
	for i, p := range pts {
		grid.cells[grid.key(p)] = append(grid.cells[grid.key(p)], i)
	}
	return grid
}

func (gr *Grid) key(p Point) int {
	cx := int(p.X * float64(gr.g))
	cy := int(p.Y * float64(gr.g))
	if cx >= gr.g {
		cx = gr.g - 1
	}
	if cy >= gr.g {
		cy = gr.g - 1
	}
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	return cy*gr.g + cx
}

// Within returns the indices of all points at Euclidean distance <= d
// from p, excluding any index in skip.
func (gr *Grid) Within(p Point, d float64, skip int) []int {
	var out []int
	reach := int(d*float64(gr.g)) + 1
	pcx := int(p.X * float64(gr.g))
	pcy := int(p.Y * float64(gr.g))
	for cy := pcy - reach; cy <= pcy+reach; cy++ {
		if cy < 0 || cy >= gr.g {
			continue
		}
		for cx := pcx - reach; cx <= pcx+reach; cx++ {
			if cx < 0 || cx >= gr.g {
				continue
			}
			for _, i := range gr.cells[cy*gr.g+cx] {
				if i == skip {
					continue
				}
				if p.Dist(gr.pts[i]) <= d {
					out = append(out, i)
				}
			}
		}
	}
	return out
}

// Nearest returns the index of the point closest to p, excluding skip.
// It returns -1 if the index holds no other point.
func (gr *Grid) Nearest(p Point, skip int) int {
	best, bestD := -1, math.Inf(1)
	// Expand ring by ring until a hit is found, then one extra ring to be
	// sure nothing closer hides in a diagonal cell.
	pcx := int(p.X * float64(gr.g))
	pcy := int(p.Y * float64(gr.g))
	for radius := 0; radius <= gr.g; radius++ {
		found := best >= 0
		for cy := pcy - radius; cy <= pcy+radius; cy++ {
			if cy < 0 || cy >= gr.g {
				continue
			}
			for cx := pcx - radius; cx <= pcx+radius; cx++ {
				if cx < 0 || cx >= gr.g {
					continue
				}
				// only the boundary of the ring
				if radius > 0 && cx != pcx-radius && cx != pcx+radius && cy != pcy-radius && cy != pcy+radius {
					continue
				}
				for _, i := range gr.cells[cy*gr.g+cx] {
					if i == skip {
						continue
					}
					if d := p.Dist(gr.pts[i]); d < bestD {
						best, bestD = i, d
					}
				}
			}
		}
		if found {
			break
		}
	}
	return best
}
