package geom

import (
	"math"
	"testing"
	"testing/quick"

	"netmodel/internal/rng"
)

func TestDistSymmetricNonNegative(t *testing.T) {
	prop := func(a, b, c, d float64) bool {
		p := Point{math.Mod(math.Abs(a), 1), math.Mod(math.Abs(b), 1)}
		q := Point{math.Mod(math.Abs(c), 1), math.Mod(math.Abs(d), 1)}
		return p.Dist(q) >= 0 && math.Abs(p.Dist(q)-q.Dist(p)) < 1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDistKnownValues(t *testing.T) {
	p := Point{0, 0}
	q := Point{3.0 / 5, 4.0 / 5}
	if d := p.Dist(q); math.Abs(d-1) > 1e-12 {
		t.Fatalf("Dist = %v, want 1", d)
	}
	if d := p.Dist(p); d != 0 {
		t.Fatalf("self-distance = %v", d)
	}
}

func TestTorusDistWraps(t *testing.T) {
	p := Point{0.05, 0.5}
	q := Point{0.95, 0.5}
	if d := p.TorusDist(q); math.Abs(d-0.1) > 1e-12 {
		t.Fatalf("TorusDist = %v, want 0.1", d)
	}
}

func TestTorusDistBounded(t *testing.T) {
	r := rng.New(5)
	max := math.Sqrt(0.5)
	for i := 0; i < 10000; i++ {
		p := Point{r.Float64(), r.Float64()}
		q := Point{r.Float64(), r.Float64()}
		d := p.TorusDist(q)
		if d > max+1e-12 {
			t.Fatalf("TorusDist %v exceeds bound %v", d, max)
		}
		if d > p.Dist(q)+1e-12 {
			t.Fatal("TorusDist exceeds planar Dist")
		}
	}
}

func TestUniformInSquare(t *testing.T) {
	pts := Uniform(rng.New(1), 5000)
	if len(pts) != 5000 {
		t.Fatalf("got %d points", len(pts))
	}
	var sx, sy float64
	for _, p := range pts {
		if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 {
			t.Fatalf("point outside unit square: %+v", p)
		}
		sx += p.X
		sy += p.Y
	}
	if math.Abs(sx/5000-0.5) > 0.02 || math.Abs(sy/5000-0.5) > 0.02 {
		t.Fatal("uniform points not centered")
	}
}

func TestUniformDimensionIsTwo(t *testing.T) {
	pts := Uniform(rng.New(2), 20000)
	d := BoxCountDimension(pts)
	if d < 1.8 || d > 2.1 {
		t.Fatalf("uniform box-count dimension %v, want ~2", d)
	}
}

func TestFractalDimension(t *testing.T) {
	pts, err := Fractal(rng.New(3), 20000, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.X < 0 || p.X >= 1.0001 || p.Y < 0 || p.Y >= 1.0001 {
			t.Fatalf("fractal point outside unit square: %+v", p)
		}
	}
	d := BoxCountDimension(pts)
	// The stochastic construction gives dimension near the target; accept
	// a generous band since box counting on finite samples is noisy.
	if d < 1.2 || d > 1.8 {
		t.Fatalf("fractal box-count dimension %v, want ~1.5", d)
	}
}

func TestFractalLowerDimensionIsSparser(t *testing.T) {
	hi, _ := Fractal(rng.New(4), 20000, 1.9)
	lo, _ := Fractal(rng.New(4), 20000, 1.1)
	if BoxCountDimension(lo) >= BoxCountDimension(hi) {
		t.Fatalf("dimension ordering violated: d(1.1)=%v >= d(1.9)=%v",
			BoxCountDimension(lo), BoxCountDimension(hi))
	}
}

func TestFractalErrors(t *testing.T) {
	if _, err := Fractal(rng.New(1), 10, 0); err == nil {
		t.Fatal("df=0 should fail")
	}
	if _, err := Fractal(rng.New(1), 10, 2.5); err == nil {
		t.Fatal("df>2 should fail")
	}
}

func TestFractalDfTwoIsUniform(t *testing.T) {
	pts, err := Fractal(rng.New(6), 10000, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := BoxCountDimension(pts)
	if d < 1.8 {
		t.Fatalf("df=2 dimension %v, want ~2", d)
	}
}

func TestGridWithinMatchesBruteForce(t *testing.T) {
	r := rng.New(7)
	pts := Uniform(r, 500)
	g := NewGrid(pts)
	for trial := 0; trial < 50; trial++ {
		p := Point{r.Float64(), r.Float64()}
		d := 0.05 + 0.2*r.Float64()
		got := map[int]bool{}
		for _, i := range g.Within(p, d, -1) {
			got[i] = true
		}
		for i, q := range pts {
			want := p.Dist(q) <= d
			if got[i] != want {
				t.Fatalf("Within mismatch at point %d: got %v want %v", i, got[i], want)
			}
		}
	}
}

func TestGridWithinSkips(t *testing.T) {
	pts := []Point{{0.5, 0.5}, {0.51, 0.5}}
	g := NewGrid(pts)
	res := g.Within(pts[0], 0.1, 0)
	for _, i := range res {
		if i == 0 {
			t.Fatal("Within returned skipped index")
		}
	}
	if len(res) != 1 || res[0] != 1 {
		t.Fatalf("Within = %v, want [1]", res)
	}
}

func TestGridNearestMatchesBruteForce(t *testing.T) {
	r := rng.New(9)
	pts := Uniform(r, 300)
	g := NewGrid(pts)
	for trial := 0; trial < 100; trial++ {
		p := Point{r.Float64(), r.Float64()}
		got := g.Nearest(p, -1)
		best, bestD := -1, math.Inf(1)
		for i, q := range pts {
			if d := p.Dist(q); d < bestD {
				best, bestD = i, d
			}
		}
		if got != best && math.Abs(p.Dist(pts[got])-bestD) > 1e-12 {
			t.Fatalf("Nearest = %d (d=%v), brute force = %d (d=%v)",
				got, p.Dist(pts[got]), best, bestD)
		}
	}
}

func TestGridNearestEmpty(t *testing.T) {
	g := NewGrid([]Point{{0.5, 0.5}})
	if got := g.Nearest(Point{0.1, 0.1}, 0); got != -1 {
		t.Fatalf("Nearest with all points skipped = %d, want -1", got)
	}
}
