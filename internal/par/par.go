// Package par is the shared static-chunk scheduler of netmodel. It was
// extracted from the metrics engine so that every parallel layer —
// metrics sweeps, graph construction, sharded topology generation, the
// econ market rounds — shards work the same way: fixed-size chunks
// assigned round-robin by worker index, a schedule that is a pure
// function of (n, workers). Determinism flows from that purity: results
// merged in worker order reproduce bit for bit between runs at the same
// worker count, and loops whose bodies write only index-private state
// are reproducible at any worker count.
//
// The package sits below graph, gen, econ and engine in the dependency
// order and imports nothing but the runtime.
package par

import (
	"runtime"
	"sync"
)

// Chunk is the sharding grain: small enough that round-robin
// interleaving spreads skewed per-index costs (hub-heavy triangle
// ranges, heavy-tailed candidate scans) evenly across workers.
const Chunk = 16

// Workers normalizes a worker-count request: values <= 0 mean
// GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(worker, i) for every i in [0, n) across the given number
// of workers (<= 0 means GOMAXPROCS). Chunks of indices are assigned
// round-robin by worker index — a static schedule, so which worker
// processes which index is a pure function of (n, workers). fn
// invocations within one worker are ordered; across workers they race,
// so fn must only write worker-private or index-private state. For
// returns when all indices are done.
func For(n, workers int, fn func(worker, i int)) {
	workers = Workers(workers)
	if workers > (n+Chunk-1)/Chunk {
		workers = (n + Chunk - 1) / Chunk
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	stride := workers * Chunk
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for start := w * Chunk; start < n; start += stride {
				end := start + Chunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(w, i)
				}
			}
		}(w)
	}
	wg.Wait()
}

// ForEach is For with a grain of one index — index i runs on worker
// i % workers. Use it when each index already does chunk-sized work (a
// whole scan pass, a 512-candidate block): For's 16-index grain would
// otherwise collapse such loops onto a single worker. The schedule is
// equally static, so the same determinism contract applies.
func ForEach(n, workers int, fn func(worker, i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	// The goroutines stride by a local that is never reassigned: capturing
	// the mutated workers parameter would capture it by reference, forcing
	// a heap allocation at function entry — on every call, including the
	// single-worker inline path above that per-epoch hot loops rely on
	// being allocation-free.
	stride := workers
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += stride {
				fn(w, i)
			}
		}(w)
	}
	wg.Wait()
}
