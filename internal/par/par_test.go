package par

import (
	"sync/atomic"
	"testing"
)

// TestForCoversAllIndices: every index runs exactly once at any width.
func TestForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		n := 1000
		hits := make([]int32, n)
		For(n, workers, func(_, i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

// TestForStaticSchedule: the worker that owns an index is a pure
// function of (n, workers) — the property every deterministic merge in
// the toolkit rests on.
func TestForStaticSchedule(t *testing.T) {
	n, workers := 500, 4
	owner1 := make([]int32, n)
	owner2 := make([]int32, n)
	For(n, workers, func(w, i int) { owner1[i] = int32(w) })
	For(n, workers, func(w, i int) { owner2[i] = int32(w) })
	for i := range owner1 {
		if owner1[i] != owner2[i] {
			t.Fatalf("index %d owned by %d then %d", i, owner1[i], owner2[i])
		}
	}
	// Chunked round-robin: index i sits in chunk i/Chunk, assigned mod
	// workers.
	for i := range owner1 {
		if want := (i / Chunk) % workers; owner1[i] != int32(want) {
			t.Fatalf("index %d owned by %d, want %d", i, owner1[i], want)
		}
	}
}

// TestForInOrderWithinWorker: one worker processes its indices in
// ascending order.
func TestForInOrderWithinWorker(t *testing.T) {
	n := 300
	var last [4]int
	for w := range last {
		last[w] = -1
	}
	For(n, 4, func(w, i int) {
		if i <= last[w] {
			t.Errorf("worker %d saw %d after %d", w, i, last[w])
		}
		last[w] = i
	})
}

// TestWorkersNormalization: non-positive requests mean GOMAXPROCS.
func TestWorkersNormalization(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("positive request must pass through")
	}
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Fatal("non-positive request must normalize to >= 1")
	}
}

// TestForEachCoversAllIndices: grain-one scheduling runs every index
// exactly once and actually fans out across workers (the failure mode
// it exists for: For's 16-index grain collapsing coarse loops onto one
// worker).
func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		n := 100
		hits := make([]int32, n)
		used := make([]int32, workers)
		ForEach(n, workers, func(w, i int) {
			atomic.AddInt32(&hits[i], 1)
			atomic.StoreInt32(&used[w], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
		for w := 0; w < workers; w++ {
			if used[w] != 1 {
				t.Fatalf("workers=%d: worker %d never ran", workers, w)
			}
		}
	}
}

// TestForEachStaticSchedule: index i belongs to worker i % workers.
func TestForEachStaticSchedule(t *testing.T) {
	n, workers := 97, 4
	owner := make([]int32, n)
	ForEach(n, workers, func(w, i int) { owner[i] = int32(w) })
	for i := range owner {
		if owner[i] != int32(i%workers) {
			t.Fatalf("index %d owned by %d, want %d", i, owner[i], i%workers)
		}
	}
}
