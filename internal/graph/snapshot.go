package graph

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Snapshot is an immutable compressed-sparse-row (CSR) view of a Graph,
// built with Freeze and advanced along a growth trajectory with Refresh.
// The adjacency of node u is the slice neighbors[offsets[u]:ends[u]],
// sorted ascending, with parallel edge multiplicities in weights. Flat
// arrays turn the per-source traversals of the analysis packages (BFS,
// Brandes, triangle counting) from pointer-chasing over maps into
// sequential cache-friendly scans, and, being immutable, a Snapshot is
// safe to share across goroutines without locking — the substrate of
// the parallel metrics engine.
//
// Snapshots produced by Freeze are tight: ends aliases offsets[1:], so
// rows tile the arc arrays exactly. Snapshots produced by Refresh may
// carry slack — rows with storage capacity beyond their length, and
// relocated rows leaving gaps — so arc indices are only meaningful
// inside a row's [offsets[u], ends[u]) range. Every snapshot carries a
// process-unique monotonically increasing version (see Version), the
// identity the engine's memoization keys on.
//
// The mutable map-backed Graph remains the API for generation and
// rewiring; analysis freezes once and reads the snapshot, refreshing
// from the graph's mutation delta at each later observation epoch.
type Snapshot struct {
	offsets   []int32 // len N+1; row of node u starts at offsets[u]
	ends      []int32 // len N; row of node u ends at ends[u]; tight snapshots alias offsets[1:]
	caps      []int32 // len N or nil; per-row storage capacity (nil = rows are tight)
	neighbors []int32 // arc arena; sorted ascending within each row
	weights   []int32 // arc arena; multiplicity of each arc
	m         int     // number of simple edges
	strength  int     // total multiplicity over simple edges
	maxDeg    int
	version   uint64
	arena     *arena // growth rights over the shared arc arena (see delta.go)

	edgeOnce sync.Once
	arcEdge  []int32 // lazy: arc index -> simple-edge index in [0, M)
}

// snapshotVersions hands out process-unique snapshot versions, so any
// two snapshots ever built — across graphs, chains and compactions —
// carry distinct identities.
var snapshotVersions atomic.Uint64

func nextSnapshotVersion() uint64 { return snapshotVersions.Add(1) }

// Freeze builds the CSR snapshot of g and starts the graph's mutation
// delta log, so a later Refreeze against the returned snapshot costs
// time proportional to the changes rather than the graph. Neighbor
// lists are sorted ascending, so the snapshot is deterministic for a
// given topology. Freeze panics if the arc count overflows int32; CLI
// entry points use FreezeChecked to turn that into an error.
func (g *Graph) Freeze() *Snapshot {
	s, err := g.FreezeChecked()
	if err != nil {
		panic(err.Error())
	}
	return s
}

// FreezeChecked is Freeze returning an error instead of panicking when
// the node or arc count overflows the snapshot's int32 design envelope
// (~1 billion arcs). Oversized maps fail with a message; the tools
// route through this variant.
func (g *Graph) FreezeChecked() (*Snapshot, error) {
	n := g.N()
	arcs := 2 * g.m
	if arcs > math.MaxInt32 || n >= math.MaxInt32 {
		return nil, fmt.Errorf("graph: snapshot overflow: %d nodes, %d arcs exceed the int32 CSR envelope", n, arcs)
	}
	s := &Snapshot{
		offsets:   make([]int32, n+1),
		neighbors: make([]int32, arcs),
		weights:   make([]int32, arcs),
		m:         g.m,
		strength:  g.strength,
		version:   nextSnapshotVersion(),
	}
	s.ends = s.offsets[1:]
	s.arena = &arena{tip: s.version}
	for u := 0; u < n; u++ {
		d := len(g.adj[u])
		s.offsets[u+1] = s.offsets[u] + int32(d)
		if d > s.maxDeg {
			s.maxDeg = d
		}
	}
	for u := 0; u < n; u++ {
		base := s.offsets[u]
		row := s.neighbors[base:s.ends[u]]
		i := 0
		for v := range g.adj[u] {
			row[i] = int32(v)
			i++
		}
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
		for j, v := range row {
			s.weights[base+int32(j)] = int32(g.adj[u][int(v)])
		}
	}
	g.startLog(s)
	return s, nil
}

// Version returns the snapshot's process-unique identity. Versions
// increase monotonically along a Freeze/Refresh lineage, so caches
// keyed by version can never serve a stale entry after a refresh.
func (s *Snapshot) Version() uint64 { return s.version }

// N returns the number of nodes.
func (s *Snapshot) N() int { return len(s.offsets) - 1 }

// MemBytes returns the heap bytes held by the snapshot's arrays — the
// cost an artifact cache should charge for keeping it resident. The
// ends row is skipped when it aliases offsets (tight snapshots), and
// the lazy arc→edge cache is charged as materialized (routing
// materializes it on first use) without touching its once-guard, so
// the accounting is race-free against concurrent readers.
func (s *Snapshot) MemBytes() int64 {
	b := int64(cap(s.offsets)) * 4
	if len(s.offsets) < 2 || len(s.ends) == 0 || &s.ends[0] != &s.offsets[1] {
		b += int64(cap(s.ends)) * 4
	}
	b += int64(cap(s.caps)) * 4
	b += int64(cap(s.neighbors)) * 4
	b += int64(cap(s.weights)) * 4
	b += int64(len(s.neighbors)) * 4 // arc→edge cache
	return b
}

// M returns the number of simple edges.
func (s *Snapshot) M() int { return s.m }

// TotalStrength returns the sum of multiplicities over all simple edges.
func (s *Snapshot) TotalStrength() int { return s.strength }

// Degree returns the topological degree of u.
func (s *Snapshot) Degree(u int) int {
	return int(s.ends[u] - s.offsets[u])
}

// Neighbors returns the sorted neighbor slice of u. The slice aliases
// the snapshot and must not be modified.
func (s *Snapshot) Neighbors(u int) []int32 {
	return s.neighbors[s.offsets[u]:s.ends[u]]
}

// Weights returns the multiplicities parallel to Neighbors(u). The
// slice aliases the snapshot and must not be modified.
func (s *Snapshot) Weights(u int) []int32 {
	return s.weights[s.offsets[u]:s.ends[u]]
}

// CSR exposes the raw row arrays backing Neighbors — offsets, ends,
// and the arc-level neighbor arena — so traversal kernels can hold the
// slice headers in locals across a whole sweep instead of re-deriving
// them per node through the accessor methods. Row u spans
// neighbors[offsets[u]:ends[u]]. All three slices alias the snapshot
// and must not be modified.
func (s *Snapshot) CSR() (offsets, ends, neighbors []int32) {
	return s.offsets, s.ends, s.neighbors
}

// ArcRange returns the half-open arc index range of node u, for callers
// indexing per-arc data (see ArcEdgeIDs). In refreshed snapshots rows
// need not tile the arena, so arc indices are only valid within a row.
func (s *Snapshot) ArcRange(u int) (lo, hi int32) {
	return s.offsets[u], s.ends[u]
}

// ArcSpace returns the size of the arc index space: every arc index
// handed out by ArcRange is below it. Parallel per-arc arrays must be
// allocated with this length, not 2M — in refreshed snapshots rows
// carry slack and relocation gaps, so live arcs need not tile the
// space.
func (s *Snapshot) ArcSpace() int { return len(s.neighbors) }

// arcOf returns the arc index of (u,v), or -1 when the edge is absent.
func (s *Snapshot) arcOf(u, v int) int32 {
	lo, hi := s.offsets[u], s.ends[u]
	row := s.neighbors[lo:hi]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= int32(v) })
	if i < len(row) && row[i] == int32(v) {
		return lo + int32(i)
	}
	return -1
}

// HasEdge reports whether the simple edge (u,v) exists, by binary search
// over the sorted neighbor row.
func (s *Snapshot) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= s.N() || v >= s.N() {
		return false
	}
	return s.arcOf(u, v) >= 0
}

// EdgeWeight returns the multiplicity of (u,v), zero if absent.
func (s *Snapshot) EdgeWeight(u, v int) int {
	if u < 0 || v < 0 || u >= s.N() || v >= s.N() {
		return 0
	}
	if a := s.arcOf(u, v); a >= 0 {
		return int(s.weights[a])
	}
	return 0
}

// AvgDegree returns the mean topological degree 2M/N, zero for an empty
// snapshot.
func (s *Snapshot) AvgDegree() float64 {
	if s.N() == 0 {
		return 0
	}
	return 2 * float64(s.m) / float64(s.N())
}

// MaxDegree returns the largest topological degree.
func (s *Snapshot) MaxDegree() int { return s.maxDeg }

// DegreeSequence returns the topological degree of every node.
func (s *Snapshot) DegreeSequence() []int {
	out := make([]int, s.N())
	for u := range out {
		out[u] = s.Degree(u)
	}
	return out
}

// Edges calls fn for every simple edge with u < v and multiplicity w, in
// (u, v) sorted order, stopping early if fn returns false.
func (s *Snapshot) Edges(fn func(u, v, w int) bool) {
	n := s.N()
	for u := 0; u < n; u++ {
		lo, hi := s.offsets[u], s.ends[u]
		for a := lo; a < hi; a++ {
			v := int(s.neighbors[a])
			if v > u {
				if !fn(u, v, int(s.weights[a])) {
					return
				}
			}
		}
	}
}

// EdgeList returns all simple edges sorted by (U,V). The edge at index i
// is the simple edge with id i as assigned by ArcEdgeIDs.
func (s *Snapshot) EdgeList() []Edge {
	return s.AppendEdges(make([]Edge, 0, s.m))
}

// AppendEdges appends the snapshot's edges to buf in the same (u, v)
// sorted order as EdgeList and returns the extended slice — EdgeList
// without the fresh allocation, for refresh paths that walk the edge
// list every epoch through a reusable buffer.
func (s *Snapshot) AppendEdges(buf []Edge) []Edge {
	s.Edges(func(u, v, w int) bool {
		buf = append(buf, Edge{U: u, V: v, W: w})
		return true
	})
	return buf
}

// ArcEdgeIDs returns, for every arc index, the id of its simple edge in
// [0, M). Both arcs of an edge map to the same id, and ids follow the
// (u, v) sorted order of EdgeList, so EdgeList()[id] is the edge. The
// mapping is computed once and cached; the returned slice must not be
// modified. Entries outside live row ranges are meaningless.
func (s *Snapshot) ArcEdgeIDs() []int32 {
	s.edgeOnce.Do(func() {
		s.arcEdge = s.FillArcEdgeIDs(nil)
	})
	return s.arcEdge
}

// FillArcEdgeIDs computes the ArcEdgeIDs mapping into buf — grown when
// too small, contents overwritten — without touching the snapshot's
// lazy cache. Refresh paths that rebuild the mapping for every epoch's
// new snapshot use it to cycle one buffer instead of leaving a cached
// copy on each dead snapshot. The same caveat applies: entries outside
// live row ranges are meaningless (here: stale).
func (s *Snapshot) FillArcEdgeIDs(buf []int32) []int32 {
	if cap(buf) < len(s.neighbors) {
		// An eighth of headroom: churn refreezes let the arcs slab creep
		// a few entries per epoch (removal holes are not compacted), and
		// an exact-size buffer would re-allocate on every refresh.
		buf = make([]int32, len(s.neighbors), len(s.neighbors)+len(s.neighbors)/8+64)
	}
	buf = buf[:len(s.neighbors)]
	next := int32(0)
	n := s.N()
	for u := 0; u < n; u++ {
		lo, hi := s.offsets[u], s.ends[u]
		for a := lo; a < hi; a++ {
			v := int(s.neighbors[a])
			if v > u {
				buf[a] = next
				next++
			} else {
				buf[a] = buf[s.arcOf(v, u)]
			}
		}
	}
	return buf
}

// Components returns the connected components as sorted slices of node
// indices, largest first with ties broken by smallest contained index —
// the same ordering contract as Graph.Components.
func (s *Snapshot) Components() [][]int {
	n := s.N()
	seen := make([]bool, n)
	var comps [][]int
	queue := make([]int32, 0, n)
	for src := 0; src < n; src++ {
		if seen[src] {
			continue
		}
		queue = queue[:0]
		queue = append(queue, int32(src))
		seen[src] = true
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range s.Neighbors(int(u)) {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		comp := make([]int, len(queue))
		for i, u := range queue {
			comp[i] = int(u)
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// Induced returns the sub-snapshot induced by the given nodes and the
// new-to-old index mapping, mirroring Graph.InducedSubgraph. The node
// list must contain no duplicates or out-of-range indices.
func (s *Snapshot) Induced(nodes []int) (*Snapshot, []int, error) {
	n := s.N()
	toNew := make([]int32, n)
	for i := range toNew {
		toNew[i] = -1
	}
	toOld := make([]int, len(nodes))
	for i, u := range nodes {
		if u < 0 || u >= n {
			return nil, nil, fmt.Errorf("graph: node %d out of range", u)
		}
		if toNew[u] >= 0 {
			return nil, nil, fmt.Errorf("graph: duplicate node %d", u)
		}
		toNew[u] = int32(i)
		toOld[i] = u
	}
	sub := &Snapshot{offsets: make([]int32, len(nodes)+1), version: nextSnapshotVersion()}
	sub.ends = sub.offsets[1:]
	arcs := int32(0)
	for i, u := range toOld {
		for _, v := range s.Neighbors(u) {
			if toNew[v] >= 0 {
				arcs++
			}
		}
		sub.offsets[i+1] = arcs
	}
	sub.neighbors = make([]int32, arcs)
	sub.weights = make([]int32, arcs)
	sub.arena = &arena{tip: sub.version}
	for i, u := range toOld {
		a := sub.offsets[i]
		lo, hi := s.offsets[u], s.ends[u]
		for arc := lo; arc < hi; arc++ {
			j := toNew[s.neighbors[arc]]
			if j < 0 {
				continue
			}
			sub.neighbors[a] = j
			sub.weights[a] = s.weights[arc]
			a++
		}
		// Old rows are sorted but the remapping need not be monotone;
		// restore the sorted-row invariant.
		row := sub.neighbors[sub.offsets[i]:a]
		ws := sub.weights[sub.offsets[i]:a]
		sort.Sort(&arcRow{row, ws})
		if d := len(row); d > sub.maxDeg {
			sub.maxDeg = d
		}
	}
	for i := range toOld {
		for j, v := range sub.Neighbors(i) {
			if int(v) > i {
				sub.m++
				sub.strength += int(sub.Weights(i)[j])
			}
		}
	}
	return sub, toOld, nil
}

type arcRow struct {
	nb []int32
	w  []int32
}

func (r *arcRow) Len() int           { return len(r.nb) }
func (r *arcRow) Less(i, j int) bool { return r.nb[i] < r.nb[j] }
func (r *arcRow) Swap(i, j int) {
	r.nb[i], r.nb[j] = r.nb[j], r.nb[i]
	r.w[i], r.w[j] = r.w[j], r.w[i]
}

// GiantComponent returns the sub-snapshot induced by the largest
// connected component with the new-to-old mapping, mirroring
// Graph.GiantComponent.
func (s *Snapshot) GiantComponent() (*Snapshot, []int) {
	comps := s.Components()
	if len(comps) == 0 {
		empty := &Snapshot{offsets: make([]int32, 1), version: nextSnapshotVersion()}
		empty.ends = empty.offsets[1:]
		return empty, nil
	}
	sub, mapping, err := s.Induced(comps[0])
	if err != nil {
		panic("graph: internal error extracting giant component: " + err.Error())
	}
	return sub, mapping
}
