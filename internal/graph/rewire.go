package graph

import (
	"errors"

	"netmodel/internal/rng"
)

// DoubleEdgeSwap performs up to nswaps degree-preserving edge swaps: two
// simple edges (a,b) and (c,d) are replaced by (a,d) and (c,b) when
// neither replacement creates a self-loop or an existing edge. The swap
// randomizes the wiring while keeping every node's topological degree
// fixed — the 1K-randomization of the dK-series framework, used as the
// null model for correlation and rich-club measurements.
//
// Multiplicities are collapsed to 1 on swapped edges, so the method is
// intended for simple graphs (multigraphs lose bandwidth information).
// It returns the number of successful swaps.
func DoubleEdgeSwap(g *Graph, r *rng.Rand, nswaps int) (int, error) {
	edges := g.EdgeList()
	if len(edges) < 2 {
		return 0, errors.New("graph: need at least two edges to swap")
	}
	done := 0
	attempts := 0
	maxAttempts := nswaps * 20
	for done < nswaps && attempts < maxAttempts {
		attempts++
		i := r.Intn(len(edges))
		j := r.Intn(len(edges))
		if i == j {
			continue
		}
		a, b := edges[i].U, edges[i].V
		c, d := edges[j].U, edges[j].V
		// Randomize orientation of the second edge so both pairings occur.
		if r.Float64() < 0.5 {
			c, d = d, c
		}
		if a == d || c == b || a == c || b == d {
			continue
		}
		if g.HasEdge(a, d) || g.HasEdge(c, b) {
			continue
		}
		if err := g.RemoveEdge(a, b); err != nil {
			return done, err
		}
		if err := g.RemoveEdge(c, d); err != nil {
			return done, err
		}
		g.MustAddEdge(a, d)
		g.MustAddEdge(c, b)
		edges[i] = ordered(a, d)
		edges[j] = ordered(c, b)
		done++
	}
	return done, nil
}

func ordered(u, v int) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v, W: 1}
}

// FromDegreeSequence builds a random simple graph with (approximately)
// the given degree sequence via the configuration model with rejection
// of self-loops and multi-edges: stubs are paired uniformly at random;
// forbidden pairings are retried a bounded number of times and finally
// dropped, so high-degree heads may end slightly below their target.
// The sum of degrees must be even.
func FromDegreeSequence(r *rng.Rand, degrees []int) (*Graph, error) {
	total := 0
	for _, d := range degrees {
		if d < 0 {
			return nil, errors.New("graph: negative degree")
		}
		total += d
	}
	if total%2 != 0 {
		return nil, errors.New("graph: degree sum must be even")
	}
	g := New(len(degrees))
	stubs := make([]int, 0, total)
	for u, d := range degrees {
		for i := 0; i < d; i++ {
			stubs = append(stubs, u)
		}
	}
	r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	// Pair consecutive stubs; on a forbidden pairing, swap in a stub from
	// a random later position and retry a few times.
	for i := 0; i+1 < len(stubs); i += 2 {
		ok := false
		for try := 0; try < 50; try++ {
			u, v := stubs[i], stubs[i+1]
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
				ok = true
				break
			}
			if i+2 >= len(stubs) {
				break
			}
			j := i + 2 + r.Intn(len(stubs)-i-2)
			stubs[i+1], stubs[j] = stubs[j], stubs[i+1]
		}
		_ = ok // unconnectable stub pairs are dropped
	}
	return g, nil
}
