package graph

import (
	"reflect"
	"testing"

	"netmodel/internal/rng"
)

// randomMultigraph builds a graph with random simple edges and random
// extra multiplicity, plus a few isolated nodes, so snapshots cover
// weights > 1 and disconnected pieces.
func randomMultigraph(t *testing.T, seed uint64, n, edges int) *Graph {
	t.Helper()
	r := rng.New(seed)
	g := New(n)
	for i := 0; i < edges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		g.MustAddEdge(u, v)
		if r.Float64() < 0.2 {
			g.MustAddEdge(u, v) // bump multiplicity
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestSnapshotMirrorsGraph(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g := randomMultigraph(t, seed, 60, 150)
		s := g.Freeze()
		if s.N() != g.N() || s.M() != g.M() || s.TotalStrength() != g.TotalStrength() {
			t.Fatalf("seed %d: size mismatch: snapshot (%d,%d,%d) vs graph (%d,%d,%d)",
				seed, s.N(), s.M(), s.TotalStrength(), g.N(), g.M(), g.TotalStrength())
		}
		if s.MaxDegree() != g.MaxDegree() {
			t.Fatalf("seed %d: max degree %d vs %d", seed, s.MaxDegree(), g.MaxDegree())
		}
		if s.AvgDegree() != g.AvgDegree() {
			t.Fatalf("seed %d: avg degree %v vs %v", seed, s.AvgDegree(), g.AvgDegree())
		}
		for u := 0; u < g.N(); u++ {
			if s.Degree(u) != g.Degree(u) {
				t.Fatalf("seed %d: degree(%d) %d vs %d", seed, u, s.Degree(u), g.Degree(u))
			}
			want := g.NeighborList(u)
			got := s.Neighbors(u)
			if len(got) != len(want) {
				t.Fatalf("seed %d: neighbors(%d) length %d vs %d", seed, u, len(got), len(want))
			}
			for i, v := range got {
				if int(v) != want[i] {
					t.Fatalf("seed %d: neighbors(%d)[%d] = %d, want %d (sorted)", seed, u, i, v, want[i])
				}
				if w := s.Weights(u)[i]; int(w) != g.EdgeWeight(u, int(v)) {
					t.Fatalf("seed %d: weight(%d,%d) = %d, want %d", seed, u, v, w, g.EdgeWeight(u, int(v)))
				}
			}
		}
		if !reflect.DeepEqual(s.EdgeList(), g.EdgeList()) {
			t.Fatalf("seed %d: edge lists differ", seed)
		}
		if !reflect.DeepEqual(s.DegreeSequence(), g.DegreeSequence()) {
			t.Fatalf("seed %d: degree sequences differ", seed)
		}
	}
}

func TestSnapshotHasEdge(t *testing.T) {
	g := randomMultigraph(t, 7, 40, 100)
	s := g.Freeze()
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if s.HasEdge(u, v) != g.HasEdge(u, v) {
				t.Fatalf("HasEdge(%d,%d) disagrees", u, v)
			}
			if s.EdgeWeight(u, v) != g.EdgeWeight(u, v) {
				t.Fatalf("EdgeWeight(%d,%d) disagrees", u, v)
			}
		}
	}
	if s.HasEdge(-1, 0) || s.HasEdge(0, g.N()) {
		t.Fatal("out-of-range HasEdge must be false")
	}
	if s.EdgeWeight(-1, 0) != 0 {
		t.Fatal("out-of-range EdgeWeight must be 0")
	}
}

func TestSnapshotComponents(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		// Sparse: guaranteed disconnected pieces.
		g := randomMultigraph(t, seed, 80, 40)
		s := g.Freeze()
		if !reflect.DeepEqual(s.Components(), g.Components()) {
			t.Fatalf("seed %d: components differ", seed)
		}
		gs, gmap := g.GiantComponent()
		ss, smap := s.GiantComponent()
		if !reflect.DeepEqual(gmap, smap) {
			t.Fatalf("seed %d: giant mappings differ", seed)
		}
		if !reflect.DeepEqual(gs.EdgeList(), ss.EdgeList()) {
			t.Fatalf("seed %d: giant edge lists differ", seed)
		}
	}
}

func TestSnapshotInduced(t *testing.T) {
	g := randomMultigraph(t, 11, 50, 120)
	s := g.Freeze()
	nodes := []int{3, 7, 8, 12, 20, 33, 41, 49}
	gSub, gMap, err := g.InducedSubgraph(nodes)
	if err != nil {
		t.Fatal(err)
	}
	sSub, sMap, err := s.Induced(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gMap, sMap) {
		t.Fatal("induced mappings differ")
	}
	if !reflect.DeepEqual(gSub.EdgeList(), sSub.EdgeList()) {
		t.Fatal("induced edge lists differ")
	}
	if sSub.M() != gSub.M() || sSub.TotalStrength() != gSub.TotalStrength() {
		t.Fatalf("induced counters differ: (%d,%d) vs (%d,%d)",
			sSub.M(), sSub.TotalStrength(), gSub.M(), gSub.TotalStrength())
	}
	if _, _, err := s.Induced([]int{0, 0}); err == nil {
		t.Fatal("duplicate node must error")
	}
	if _, _, err := s.Induced([]int{-1}); err == nil {
		t.Fatal("out-of-range node must error")
	}
}

// TestSnapshotInducedEdgeCases covers the degenerate inputs: an empty
// node list, a singleton graph, and a giant component that is the whole
// graph.
func TestSnapshotInducedEdgeCases(t *testing.T) {
	g := randomMultigraph(t, 19, 30, 70)
	s := g.Freeze()

	empty, mapping, err := s.Induced(nil)
	if err != nil {
		t.Fatalf("empty node list: %v", err)
	}
	if empty.N() != 0 || empty.M() != 0 || len(mapping) != 0 {
		t.Fatalf("empty induced snapshot: N=%d M=%d mapping=%v", empty.N(), empty.M(), mapping)
	}
	if comps := empty.Components(); len(comps) != 0 {
		t.Fatalf("empty induced snapshot has %d components", len(comps))
	}

	single := New(1).Freeze()
	sub, mapping, err := single.Induced([]int{0})
	if err != nil {
		t.Fatalf("singleton: %v", err)
	}
	if sub.N() != 1 || sub.M() != 0 || sub.Degree(0) != 0 || mapping[0] != 0 {
		t.Fatal("singleton induced snapshot malformed")
	}
	giant, gm := single.GiantComponent()
	if giant.N() != 1 || gm[0] != 0 {
		t.Fatal("singleton giant component malformed")
	}

	// A connected graph's giant component is the whole graph.
	conn := New(6)
	for u := 1; u < 6; u++ {
		conn.MustAddEdge(u-1, u)
	}
	conn.MustAddEdge(0, 5)
	cs := conn.Freeze()
	whole, wm, err := cs.Induced([]int{0, 1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	assertSnapshotsEqual(t, "whole-induced", whole, cs)
	for i, u := range wm {
		if i != u {
			t.Fatalf("identity mapping broken at %d -> %d", i, u)
		}
	}
	gsub, gmap := cs.GiantComponent()
	assertSnapshotsEqual(t, "whole-giant", gsub, cs)
	if len(gmap) != 6 {
		t.Fatalf("giant mapping %v", gmap)
	}
}

func TestSnapshotArcEdgeIDs(t *testing.T) {
	g := randomMultigraph(t, 13, 40, 90)
	s := g.Freeze()
	ids := s.ArcEdgeIDs()
	edges := s.EdgeList()
	seen := make([]bool, s.M())
	for u := 0; u < s.N(); u++ {
		lo, _ := s.ArcRange(u)
		for j, v := range s.Neighbors(u) {
			id := ids[int(lo)+j]
			if id < 0 || int(id) >= s.M() {
				t.Fatalf("arc (%d,%d): id %d out of range", u, v, id)
			}
			e := edges[id]
			lo2, hi2 := u, int(v)
			if lo2 > hi2 {
				lo2, hi2 = hi2, lo2
			}
			if e.U != lo2 || e.V != hi2 {
				t.Fatalf("arc (%d,%d) mapped to edge %+v", u, v, e)
			}
			seen[id] = true
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("edge id %d never referenced", id)
		}
	}
}

func TestSnapshotEmptyAndTiny(t *testing.T) {
	s := New(0).Freeze()
	if s.N() != 0 || s.M() != 0 || s.AvgDegree() != 0 {
		t.Fatal("empty snapshot malformed")
	}
	if comps := s.Components(); len(comps) != 0 {
		t.Fatalf("empty snapshot has %d components", len(comps))
	}
	giant, mapping := s.GiantComponent()
	if giant.N() != 0 || mapping != nil {
		t.Fatal("empty giant component malformed")
	}
	one := New(1).Freeze()
	if one.N() != 1 || one.Degree(0) != 0 || len(one.Neighbors(0)) != 0 {
		t.Fatal("single-node snapshot malformed")
	}
}
