package graph

import (
	"testing"

	"netmodel/internal/rng"
)

// randomEdges draws a reproducible multiset of edges, some repeated and
// some with explicit multiplicities.
func randomEdges(n, m int, seed uint64) []Edge {
	r := rng.New(seed)
	out := make([]Edge, 0, m)
	for len(out) < m {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		w := 0
		if r.Float64() < 0.3 {
			w = 1 + r.Intn(3)
		}
		out = append(out, Edge{U: u, V: v, W: w})
	}
	return out
}

// TestBuildMatchesSequentialInsert: Build at any worker count equals
// inserting the same edges one by one.
func TestBuildMatchesSequentialInsert(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		edges := randomEdges(200, 1500, seed)
		want := New(200)
		for _, e := range edges {
			w := e.W
			if w < 1 {
				w = 1
			}
			for k := 0; k < w; k++ {
				want.MustAddEdge(e.U, e.V)
			}
		}
		for _, workers := range []int{1, 2, 4, 7} {
			got, err := Build(200, edges, workers)
			if err != nil {
				t.Fatal(err)
			}
			if err := got.CheckInvariants(); err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if got.M() != want.M() || got.TotalStrength() != want.TotalStrength() {
				t.Fatalf("workers=%d: M=%d/%d strength=%d/%d", workers,
					got.M(), want.M(), got.TotalStrength(), want.TotalStrength())
			}
			ge, we := got.EdgeList(), want.EdgeList()
			for i := range we {
				if ge[i] != we[i] {
					t.Fatalf("workers=%d: edge %d = %+v, want %+v", workers, i, ge[i], we[i])
				}
			}
		}
	}
}

// TestBuildRejectsBadEdges: range and self-loop validation.
func TestBuildRejectsBadEdges(t *testing.T) {
	if _, err := Build(5, []Edge{{U: 0, V: 5}}, 2); err == nil {
		t.Fatal("out-of-range endpoint must error")
	}
	if _, err := Build(5, []Edge{{U: 2, V: 2}}, 2); err == nil {
		t.Fatal("self-loop must error")
	}
}

// TestBuildEmpty: degenerate inputs.
func TestBuildEmpty(t *testing.T) {
	g, err := Build(0, nil, 4)
	if err != nil || g.N() != 0 {
		t.Fatalf("empty build: %v, N=%d", err, g.N())
	}
	g, err = Build(3, nil, 4)
	if err != nil || g.N() != 3 || g.M() != 0 {
		t.Fatalf("edgeless build: %v, N=%d M=%d", err, g.N(), g.M())
	}
}
