package graph

import (
	"testing"

	"netmodel/internal/rng"
)

// assertSnapshotsEqual verifies two snapshots describe the same
// topology — same counts, same sorted rows, same weights — regardless
// of their physical layout (tight vs slack/relocated arenas).
func assertSnapshotsEqual(t *testing.T, tag string, got, want *Snapshot) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() || got.TotalStrength() != want.TotalStrength() {
		t.Fatalf("%s: size (%d,%d,%d) vs (%d,%d,%d)", tag,
			got.N(), got.M(), got.TotalStrength(), want.N(), want.M(), want.TotalStrength())
	}
	if got.MaxDegree() != want.MaxDegree() {
		t.Fatalf("%s: max degree %d vs %d", tag, got.MaxDegree(), want.MaxDegree())
	}
	for u := 0; u < want.N(); u++ {
		gn, wn := got.Neighbors(u), want.Neighbors(u)
		gw, ww := got.Weights(u), want.Weights(u)
		if len(gn) != len(wn) {
			t.Fatalf("%s: row %d length %d vs %d", tag, u, len(gn), len(wn))
		}
		for i := range gn {
			if gn[i] != wn[i] || gw[i] != ww[i] {
				t.Fatalf("%s: row %d arc %d: (%d,%d) vs (%d,%d)", tag, u, i, gn[i], gw[i], wn[i], ww[i])
			}
		}
	}
}

// mutateEpoch applies one epoch of random growth to g: a few new nodes,
// edges biased toward fresh ids (the growth-model pattern that exercises
// the pure-append fast path), plus interleaving edges, multiplicity
// bumps and occasional removals (the relocation and merge paths).
func mutateEpoch(t *testing.T, g *Graph, r *rng.Rand, newNodes, newEdges int) {
	t.Helper()
	for i := 0; i < newNodes; i++ {
		g.AddNode()
	}
	for i := 0; i < newEdges; i++ {
		n := g.N()
		u := r.Intn(n)
		v := r.Intn(n)
		if r.Float64() < 0.5 {
			// Growth-style: one endpoint among the most recent arrivals.
			u = n - 1 - r.Intn(newNodes+1)
		}
		if u == v {
			continue
		}
		switch x := r.Float64(); {
		case x < 0.15 && g.HasEdge(u, v):
			if err := g.RemoveEdge(u, v); err != nil {
				t.Fatal(err)
			}
		case x < 0.3 && g.HasEdge(u, v):
			g.MustAddEdge(u, v) // multiplicity bump
		default:
			g.MustAddEdge(u, v)
		}
	}
}

// TestRefreshMatchesFreezeTrajectory is the core equivalence property:
// along a randomized growth trajectory, every refreshed snapshot must
// be logically identical to a from-scratch freeze of the same graph
// state, and earlier snapshots in the lineage must stay intact while
// later refreshes extend the shared arena.
func TestRefreshMatchesFreezeTrajectory(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		r := rng.New(seed)
		g := New(4)
		g.MustAddEdge(0, 1)
		g.MustAddEdge(1, 2)
		prev := g.Freeze()

		type epochPair struct{ refreshed, fresh *Snapshot }
		var chain []epochPair
		lastVersion := prev.Version()
		for epoch := 0; epoch < 25; epoch++ {
			mutateEpoch(t, g, r, 3+r.Intn(5), 8+r.Intn(12))
			next, d, err := g.Refreeze(prev)
			if err != nil {
				t.Fatalf("seed %d epoch %d: %v", seed, epoch, err)
			}
			if d == nil {
				t.Fatalf("seed %d epoch %d: expected a delta refresh, got full freeze", seed, epoch)
			}
			if next.Version() <= lastVersion {
				t.Fatalf("seed %d epoch %d: version %d not after %d", seed, epoch, next.Version(), lastVersion)
			}
			lastVersion = next.Version()
			fresh := g.Copy().Freeze()
			assertSnapshotsEqual(t, "epoch", next, fresh)
			if err := g.CheckInvariants(); err != nil {
				t.Fatalf("seed %d epoch %d: %v", seed, epoch, err)
			}
			chain = append(chain, epochPair{next, fresh})
			prev = next
		}
		// Immutability: every snapshot in the lineage must still match
		// the tight freeze taken at its epoch, despite all the slack
		// appends and relocations that happened afterwards.
		for i, p := range chain {
			assertSnapshotsEqual(t, "lineage", p.refreshed, p.fresh)
			_ = i
		}
	}
}

// TestRefreshRemovalOnly covers shrink-only deltas, including rows
// emptied entirely and the max-degree recount.
func TestRefreshRemovalOnly(t *testing.T) {
	g := New(6)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}, {3, 4}} {
		g.MustAddEdge(e[0], e[1])
	}
	base := g.Freeze()
	for _, e := range [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}} {
		if err := g.RemoveEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	next, d, err := g.Refreeze(base)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("expected delta refresh")
	}
	if ins, rem := d.Counts(); ins != 0 || rem != 4 {
		t.Fatalf("counts = (%d,%d), want (0,4)", ins, rem)
	}
	assertSnapshotsEqual(t, "removal", next, g.Copy().Freeze())
	if next.MaxDegree() != 1 {
		t.Fatalf("max degree %d after hub removal, want 1", next.MaxDegree())
	}
	if base.Degree(0) != 4 {
		t.Fatal("base snapshot mutated by refresh")
	}
}

// TestRefreshTwiceFromSameBase pins the arena-claim rule: a second
// refresh off the same base cannot extend the shared arena in place and
// must fall back to the compacting copy, leaving both results and the
// base correct.
func TestRefreshTwiceFromSameBase(t *testing.T) {
	r := rng.New(9)
	g := New(5)
	g.MustAddEdge(0, 1)
	base := g.Freeze()
	mutateEpoch(t, g, r, 4, 12)
	first, d, err := g.Refreeze(base)
	if err != nil || d == nil {
		t.Fatalf("refreeze: %v (delta %v)", err, d)
	}
	second, err := base.Refresh(d)
	if err != nil {
		t.Fatalf("second refresh: %v", err)
	}
	fresh := g.Copy().Freeze()
	assertSnapshotsEqual(t, "first", first, fresh)
	assertSnapshotsEqual(t, "second", second, fresh)
	if base.N() != 5 || base.M() != 1 {
		t.Fatal("base snapshot mutated")
	}
}

// TestRefreshCompaction drives a long removal-heavy trajectory so
// relocation garbage outgrows the live arcs and the compaction path
// runs; correctness is pinned against fresh freezes throughout.
func TestRefreshCompaction(t *testing.T) {
	r := rng.New(17)
	g := New(40)
	for i := 0; i < 400; i++ {
		u, v := r.Intn(40), r.Intn(40)
		if u != v {
			g.MustAddEdge(u, v)
		}
	}
	prev := g.Freeze()
	for epoch := 0; epoch < 60; epoch++ {
		// Heavy churn: remove and re-add so rows relocate repeatedly.
		for i := 0; i < 60; i++ {
			u, v := r.Intn(g.N()), r.Intn(g.N())
			if u == v {
				continue
			}
			if g.HasEdge(u, v) && r.Float64() < 0.5 {
				if err := g.RemoveEdge(u, v); err != nil {
					t.Fatal(err)
				}
			} else {
				g.MustAddEdge(u, v)
			}
		}
		next, _, err := g.Refreeze(prev)
		if err != nil {
			t.Fatal(err)
		}
		assertSnapshotsEqual(t, "churn", next, g.Copy().Freeze())
		prev = next
	}
}

// TestRefreezeFallsBackToFullFreeze covers the degraded paths: nil
// base, a foreign snapshot, and a lost (overflowing) log all yield a
// correct full freeze with a nil delta.
func TestRefreezeFallsBackToFullFreeze(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1)

	s, d, err := g.Refreeze(nil)
	if err != nil || d != nil {
		t.Fatalf("nil base: snapshot err %v, delta %v", err, d)
	}
	assertSnapshotsEqual(t, "nil base", s, g.Copy().Freeze())

	foreign := New(4).Freeze()
	g.MustAddEdge(1, 2)
	s2, d2, err := g.Refreeze(foreign)
	if err != nil || d2 != nil {
		t.Fatalf("foreign base: err %v, delta %v", err, d2)
	}
	assertSnapshotsEqual(t, "foreign base", s2, g.Copy().Freeze())

	// Overflow the log: far more touches than 2m+4096 on a tiny graph.
	base := g.Freeze()
	for i := 0; i < 6000; i++ {
		g.MustAddEdge(2, 3)
		if err := g.RemoveEdge(2, 3); err != nil {
			t.Fatal(err)
		}
	}
	g.MustAddEdge(0, 3)
	s3, d3, err := g.Refreeze(base)
	if err != nil {
		t.Fatal(err)
	}
	if d3 != nil {
		t.Fatal("lost log must fall back to a full freeze")
	}
	assertSnapshotsEqual(t, "lost log", s3, g.Copy().Freeze())
}

// TestRefreshErrors pins the validation surface of the public Refresh.
func TestRefreshErrors(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1)
	s := g.Freeze()
	if _, err := s.Refresh(nil); err == nil {
		t.Fatal("nil delta must error")
	}
	if _, err := s.Refresh(&Delta{baseVersion: s.Version() + 999, baseN: 3, n: 3}); err == nil {
		t.Fatal("version mismatch must error")
	}
	if _, err := s.Refresh(&Delta{baseVersion: s.Version(), baseN: 2, n: 3}); err == nil {
		t.Fatal("baseN mismatch must error")
	}
	if _, err := s.Refresh(&Delta{baseVersion: s.Version(), baseN: 3, n: 3,
		edges: []DeltaEdge{{U: 0, V: 1, OldW: 5, NewW: 6}}}); err == nil {
		t.Fatal("stale old weight must error")
	}
	if _, err := s.Refresh(&Delta{baseVersion: s.Version(), baseN: 3, n: 3,
		edges: []DeltaEdge{{U: 1, V: 0, OldW: 0, NewW: 1}}}); err == nil {
		t.Fatal("unordered endpoints must error")
	}
}

// TestFreezeCheckedMatchesFreeze: the checked variant is the same build
// with the panic turned into an error.
func TestFreezeCheckedMatchesFreeze(t *testing.T) {
	g := randomMultigraph(t, 23, 30, 80)
	s, err := g.FreezeChecked()
	if err != nil {
		t.Fatal(err)
	}
	assertSnapshotsEqual(t, "checked", s, g.Copy().Freeze())
}

// TestRefreshNodeOnlyDelta: epochs that only add isolated nodes still
// refresh correctly.
func TestRefreshNodeOnlyDelta(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1)
	base := g.Freeze()
	g.AddNode()
	g.AddNode()
	next, d, err := g.Refreeze(base)
	if err != nil || d == nil {
		t.Fatalf("err %v delta %v", err, d)
	}
	if len(d.Edges()) != 0 || d.N() != 4 || d.BaseN() != 2 {
		t.Fatalf("delta %+v malformed", d)
	}
	assertSnapshotsEqual(t, "node-only", next, g.Copy().Freeze())
	if next.Degree(3) != 0 {
		t.Fatal("isolated new node must have empty row")
	}
}
