package graph

import (
	"testing"
	"testing/quick"

	"netmodel/internal/rng"
)

func mustEdge(t *testing.T, g *Graph, u, v int) {
	t.Helper()
	if _, err := g.AddEdge(u, v); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if g.N() != 0 || g.M() != 0 || g.AvgDegree() != 0 || g.MaxDegree() != 0 {
		t.Fatal("empty graph has non-zero counters")
	}
	if !g.IsConnected() {
		t.Fatal("empty graph should count as connected")
	}
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(3)
	created, err := g.AddEdge(0, 1)
	if err != nil || !created {
		t.Fatalf("first AddEdge: created=%v err=%v", created, err)
	}
	created, err = g.AddEdge(1, 0)
	if err != nil || created {
		t.Fatalf("reinforcing AddEdge should not create: created=%v err=%v", created, err)
	}
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
	if g.EdgeWeight(0, 1) != 2 || g.EdgeWeight(1, 0) != 2 {
		t.Fatalf("multiplicity = %d, want 2", g.EdgeWeight(0, 1))
	}
	if g.TotalStrength() != 2 {
		t.Fatalf("TotalStrength = %d, want 2", g.TotalStrength())
	}
	if g.Degree(0) != 1 || g.Strength(0) != 2 {
		t.Fatalf("degree/strength = %d/%d, want 1/2", g.Degree(0), g.Strength(0))
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(2)
	if _, err := g.AddEdge(0, 0); err == nil {
		t.Fatal("self-loop should fail")
	}
	if _, err := g.AddEdge(0, 2); err == nil {
		t.Fatal("out-of-range should fail")
	}
	if _, err := g.AddEdge(-1, 0); err == nil {
		t.Fatal("negative index should fail")
	}
}

func TestRemoveEdge(t *testing.T) {
	g := New(2)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 1)
	if err := g.RemoveEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if g.M() != 1 || g.EdgeWeight(0, 1) != 1 {
		t.Fatal("removing one unit should keep the simple edge")
	}
	if err := g.RemoveEdge(1, 0); err != nil {
		t.Fatal(err)
	}
	if g.M() != 0 || g.HasEdge(0, 1) {
		t.Fatal("edge should be gone")
	}
	if err := g.RemoveEdge(0, 1); err == nil {
		t.Fatal("removing absent edge should fail")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAddNode(t *testing.T) {
	g := New(1)
	id := g.AddNode()
	if id != 1 || g.N() != 2 {
		t.Fatalf("AddNode returned %d, N=%d", id, g.N())
	}
	mustEdge(t, g, 0, 1)
	if g.Degree(1) != 1 {
		t.Fatal("new node unusable")
	}
}

func TestNeighborListSorted(t *testing.T) {
	g := New(5)
	mustEdge(t, g, 2, 4)
	mustEdge(t, g, 2, 0)
	mustEdge(t, g, 2, 3)
	nl := g.NeighborList(2)
	want := []int{0, 3, 4}
	if len(nl) != 3 {
		t.Fatalf("NeighborList = %v", nl)
	}
	for i := range want {
		if nl[i] != want[i] {
			t.Fatalf("NeighborList = %v, want %v", nl, want)
		}
	}
}

func TestNeighborsEarlyStop(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 0, 3)
	count := 0
	g.Neighbors(0, func(v, w int) bool {
		count++
		return false
	})
	if count != 1 {
		t.Fatalf("early stop visited %d neighbors", count)
	}
}

func TestEdgeListDeterministicSorted(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 3, 1)
	mustEdge(t, g, 0, 2)
	mustEdge(t, g, 1, 0)
	el := g.EdgeList()
	if len(el) != 3 {
		t.Fatalf("EdgeList length %d", len(el))
	}
	for i := 1; i < len(el); i++ {
		if el[i-1].U > el[i].U || (el[i-1].U == el[i].U && el[i-1].V >= el[i].V) {
			t.Fatalf("EdgeList unsorted: %v", el)
		}
	}
	for _, e := range el {
		if e.U >= e.V {
			t.Fatalf("edge not normalized: %+v", e)
		}
	}
}

func TestDegreeSequenceAndAvg(t *testing.T) {
	g := New(4)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 2, 3)
	ds := g.DegreeSequence()
	want := []int{1, 2, 2, 1}
	for i := range want {
		if ds[i] != want[i] {
			t.Fatalf("DegreeSequence = %v", ds)
		}
	}
	if g.AvgDegree() != 1.5 {
		t.Fatalf("AvgDegree = %v", g.AvgDegree())
	}
	if g.MaxDegree() != 2 {
		t.Fatalf("MaxDegree = %v", g.MaxDegree())
	}
}

func TestCopyIndependent(t *testing.T) {
	g := New(3)
	mustEdge(t, g, 0, 1)
	c := g.Copy()
	mustEdge(t, c, 1, 2)
	if g.M() != 1 || c.M() != 2 {
		t.Fatal("copy is not independent")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(5)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 1, 2) // multiplicity 2
	mustEdge(t, g, 3, 4)
	sub, mapping, err := g.InducedSubgraph([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.N() != 3 || sub.M() != 1 {
		t.Fatalf("subgraph N=%d M=%d", sub.N(), sub.M())
	}
	// edge (1,2) must survive with multiplicity 2
	i1, i2 := -1, -1
	for newIdx, old := range mapping {
		if old == 1 {
			i1 = newIdx
		}
		if old == 2 {
			i2 = newIdx
		}
	}
	if sub.EdgeWeight(i1, i2) != 2 {
		t.Fatalf("subgraph lost multiplicity: %d", sub.EdgeWeight(i1, i2))
	}
	if err := sub.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := New(3)
	if _, _, err := g.InducedSubgraph([]int{0, 0}); err == nil {
		t.Fatal("duplicate nodes should fail")
	}
	if _, _, err := g.InducedSubgraph([]int{5}); err == nil {
		t.Fatal("out-of-range should fail")
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 3, 4)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 3 || comps[0][0] != 0 {
		t.Fatalf("largest component = %v", comps[0])
	}
	if len(comps[2]) != 1 || comps[2][0] != 5 {
		t.Fatalf("isolated node component = %v", comps[2])
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestGiantComponent(t *testing.T) {
	g := New(5)
	mustEdge(t, g, 0, 1)
	mustEdge(t, g, 1, 2)
	mustEdge(t, g, 3, 4)
	giant, mapping := g.GiantComponent()
	if giant.N() != 3 || giant.M() != 2 {
		t.Fatalf("giant N=%d M=%d", giant.N(), giant.M())
	}
	if len(mapping) != 3 {
		t.Fatalf("mapping = %v", mapping)
	}
	if !giant.IsConnected() {
		t.Fatal("giant component not connected")
	}
}

func TestInvariantsUnderRandomOps(t *testing.T) {
	r := rng.New(99)
	prop := func(seed uint32) bool {
		r.Seed(uint64(seed))
		g := New(10)
		type pair struct{ u, v int }
		var present []pair
		for op := 0; op < 200; op++ {
			u, v := r.Intn(10), r.Intn(10)
			if r.Float64() < 0.7 {
				if u != v {
					g.MustAddEdge(u, v)
					present = append(present, pair{u, v})
				}
			} else if len(present) > 0 {
				i := r.Intn(len(present))
				p := present[i]
				if err := g.RemoveEdge(p.u, p.v); err != nil {
					return false
				}
				present = append(present[:i], present[i+1:]...)
			}
		}
		return g.CheckInvariants() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHandshakeLemma(t *testing.T) {
	r := rng.New(7)
	g := New(50)
	for i := 0; i < 200; i++ {
		u, v := r.Intn(50), r.Intn(50)
		if u != v {
			g.MustAddEdge(u, v)
		}
	}
	sumDeg, sumStr := 0, 0
	for u := 0; u < g.N(); u++ {
		sumDeg += g.Degree(u)
		sumStr += g.Strength(u)
	}
	if sumDeg != 2*g.M() {
		t.Fatalf("sum of degrees %d != 2M %d", sumDeg, 2*g.M())
	}
	if sumStr != 2*g.TotalStrength() {
		t.Fatalf("sum of strengths %d != 2B %d", sumStr, 2*g.TotalStrength())
	}
}
