package graph

import (
	"fmt"

	"netmodel/internal/par"
)

// Build constructs a graph over n nodes from an edge multiset, sharding
// adjacency construction across workers (<= 0 means GOMAXPROCS). Each
// entry contributes max(1, W) units of multiplicity between U and V;
// repeated pairs accumulate. Self-loops and out-of-range endpoints are
// rejected.
//
// Nodes are assigned to workers by index (u % workers), every worker
// scans the full edge slice and fills only the adjacency rows it owns,
// and the edge/strength counters reduce over nodes — all integer
// arithmetic on a static schedule, so the result is identical for every
// worker count and equal to adding the edges sequentially. This is the
// back end of the sharded generators: plan shards produce edges, Build
// turns them into a Graph without a serial insertion pass.
func Build(n int, edges []Edge, workers int) (*Graph, error) {
	if n < 0 {
		n = 0
	}
	for _, e := range edges {
		if e.U < 0 || e.U >= n || e.V < 0 || e.V >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		if e.U == e.V {
			return nil, fmt.Errorf("graph: self-loop on %d", e.U)
		}
	}
	g := New(n)
	workers = par.Workers(workers)
	if workers <= 1 || n == 0 || len(edges) < 4*par.Chunk {
		for _, e := range edges {
			w := e.W
			if w < 1 {
				w = 1
			}
			for k := 0; k < w; k++ {
				g.MustAddEdge(e.U, e.V)
			}
		}
		return g, nil
	}
	if workers > n {
		workers = n
	}
	// Fill phase: worker w owns every node u with u % workers == w and
	// inserts both directions it owns; an edge is visited by exactly the
	// owners of its two endpoints. Each owner pass is one coarse item,
	// so the grain-one scheduler keeps all passes genuinely concurrent.
	par.ForEach(workers, workers, func(_, w int) {
		for _, e := range edges {
			mult := e.W
			if mult < 1 {
				mult = 1
			}
			if e.U%workers == w {
				g.adj[e.U][e.V] += mult
			}
			if e.V%workers == w {
				g.adj[e.V][e.U] += mult
			}
		}
	})
	// Reduce phase: recount simple edges and strength from the rows.
	type tally struct{ m, s int }
	tallies := make([]tally, workers)
	par.For(n, workers, func(w, u int) {
		for v, mult := range g.adj[u] {
			if u < v {
				tallies[w].m++
				tallies[w].s += mult
			}
		}
	})
	for _, t := range tallies {
		g.m += t.m
		g.strength += t.s
	}
	return g, nil
}
