package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
)

// This file implements incremental freeze: instead of rebuilding the
// whole CSR at every observation epoch of a growth trajectory, the
// graph records an append-only log of the edges touched since its last
// freeze, and Snapshot.Refresh merges that delta into the previous
// snapshot in time proportional to the change.
//
// Immutability is preserved by construction. Rows whose update is a
// pure append of larger neighbor ids — the common case in growth
// models, where arrivals take the next dense id — are written into the
// row's slack capacity, beyond every earlier snapshot's ends marker;
// rows that shrink, reweight or interleave are relocated to fresh
// space at the arena tail with new slack. Untouched rows keep their
// storage. Relocation leaves garbage behind, so when the arena grows
// past twice the live arc count the refresh compacts into a fresh
// arena instead. Only the tip snapshot of a lineage may extend the
// shared arena (see arena.claim); refreshing twice from the same base
// silently degrades to the compacting copy, never to corruption.

// DeltaEdge is one simple edge whose multiplicity changed between a
// base snapshot and its refreshed successor. OldW == 0 means the edge
// was inserted, NewW == 0 that it was removed; both non-zero is a pure
// multiplicity (bandwidth) change. U < V always holds.
type DeltaEdge struct {
	U, V       int32
	OldW, NewW int32
}

// Delta is the net change between a base snapshot and the graph state a
// refreshed snapshot will capture: the new node count plus the deduped,
// (U,V)-sorted list of edges whose multiplicity changed. Deltas are
// produced by Graph.Refreeze and consumed by Snapshot.Refresh and the
// incremental metric kernels; treat them as immutable.
type Delta struct {
	baseVersion uint64
	baseN, n    int
	edges       []DeltaEdge
}

// BaseVersion returns the version of the snapshot the delta extends.
func (d *Delta) BaseVersion() uint64 { return d.baseVersion }

// BaseN returns the node count of the base snapshot.
func (d *Delta) BaseN() int { return d.baseN }

// N returns the node count after the delta; nodes are only ever added.
func (d *Delta) N() int { return d.n }

// Edges returns the changed simple edges sorted by (U, V). The slice
// aliases the delta and must not be modified.
func (d *Delta) Edges() []DeltaEdge { return d.edges }

// Counts returns how many simple edges the delta inserts and removes
// (multiplicity-only changes are in neither count).
func (d *Delta) Counts() (inserted, removed int) {
	for _, e := range d.edges {
		if e.OldW == 0 {
			inserted++
		} else if e.NewW == 0 {
			removed++
		}
	}
	return inserted, removed
}

// arena guards extension rights over a lineage's shared arc arrays.
// Many snapshots alias the same backing; only the lineage tip may
// append to it or write into row slack, because everything it writes
// lies beyond every earlier snapshot's visible row ends.
type arena struct {
	mu  sync.Mutex
	tip uint64
}

// claim transfers extension rights from the snapshot version `from` to
// `to`; it fails when `from` is no longer the tip (a second refresh off
// the same base), in which case the caller must copy instead of extend.
func (a *arena) claim(from, to uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tip != from {
		return false
	}
	a.tip = to
	return true
}

// mutLog is the graph-side delta log: the edges touched since the last
// freeze, relative to that snapshot's version. The log caps its own
// length — once the mutation volume rivals the graph itself a refresh
// would not beat a rebuild, so the log marks itself lost and Refreeze
// falls back to a full freeze.
type mutLog struct {
	active      bool
	lost        bool
	baseVersion uint64
	baseN       int
	touched     [][2]int32
}

// startLog begins logging mutations relative to the snapshot s.
func (g *Graph) startLog(s *Snapshot) {
	g.log = mutLog{active: true, baseVersion: s.version, baseN: g.N()}
}

// logTouch records that the simple edge (u,v) changed. Out-of-envelope
// ids or a log outgrowing the graph mark the log lost.
func (g *Graph) logTouch(u, v int) {
	if !g.log.active || g.log.lost {
		return
	}
	if u > v {
		u, v = v, u
	}
	if v > math.MaxInt32 || len(g.log.touched) > 2*g.m+4096 {
		g.log.lost = true
		g.log.touched = nil
		return
	}
	g.log.touched = append(g.log.touched, [2]int32{int32(u), int32(v)})
}

// Refreeze returns an up-to-date snapshot of g. When base is the
// snapshot g most recently froze or refreshed and the mutation log is
// intact, the result is produced by base.Refresh in time proportional
// to the delta, which is also returned so version-aware caches (the
// metrics engine) can maintain their values incrementally. Otherwise —
// nil base, foreign snapshot, lost or overflowing log — it falls back
// to a full FreezeChecked and the returned delta is nil.
func (g *Graph) Refreeze(base *Snapshot) (*Snapshot, *Delta, error) {
	if base != nil && g.log.active && !g.log.lost && g.log.baseVersion == base.version {
		d := g.buildDelta(base)
		next, err := base.Refresh(d)
		if err == nil {
			g.startLog(next)
			return next, d, nil
		}
		// Refresh only fails on arena overflow; the full rebuild below
		// re-checks the envelope and reports its own error.
	}
	s, err := g.FreezeChecked()
	return s, nil, err
}

// buildDelta materializes the net change between base and g's current
// adjacency from the touch log: dedupe the touched pairs, read old
// multiplicities from the snapshot and new ones from the graph, and
// drop pairs that changed and changed back.
func (g *Graph) buildDelta(base *Snapshot) *Delta {
	d := &Delta{baseVersion: base.version, baseN: g.log.baseN, n: g.N()}
	touched := g.log.touched
	sort.Slice(touched, func(i, j int) bool {
		if touched[i][0] != touched[j][0] {
			return touched[i][0] < touched[j][0]
		}
		return touched[i][1] < touched[j][1]
	})
	for i, p := range touched {
		if i > 0 && p == touched[i-1] {
			continue
		}
		u, v := int(p[0]), int(p[1])
		oldW := base.EdgeWeight(u, v)
		newW := g.adj[u][v]
		if oldW == newW {
			continue
		}
		d.edges = append(d.edges, DeltaEdge{U: p[0], V: p[1], OldW: int32(oldW), NewW: int32(newW)})
	}
	return d
}

// rowChange is one endpoint's view of a DeltaEdge, grouped per row
// during a refresh.
type rowChange struct {
	node, nbr  int32
	oldW, newW int32
}

// slackFor returns the extra capacity granted to a relocated row of the
// given length, trading ~25% memory on hot rows for fewer relocations
// as the trajectory grows.
func slackFor(rowLen int) int { return rowLen/4 + 4 }

// Refresh produces the next immutable snapshot by merging the delta
// into this one: touched rows are appended in place (when the change is
// a pure append into remaining slack), relocated to the arena tail with
// fresh slack, or — when garbage from past relocations exceeds the
// live arcs — compacted into a fresh arena. Untouched rows share their
// storage with the base snapshot. The result is logically identical to
// freezing the mutated graph from scratch: same rows, same counts, same
// metrics. The delta must extend exactly this snapshot (by version);
// drive refreshes through Graph.Refreeze to get that pairing for free.
func (s *Snapshot) Refresh(d *Delta) (*Snapshot, error) {
	if d == nil {
		return nil, errors.New("graph: Refresh needs a non-nil delta")
	}
	if d.baseVersion != s.version {
		return nil, fmt.Errorf("graph: delta extends snapshot v%d, not v%d", d.baseVersion, s.version)
	}
	if d.baseN != s.N() || d.n < d.baseN {
		return nil, fmt.Errorf("graph: delta node counts %d -> %d do not extend a %d-node snapshot", d.baseN, d.n, s.N())
	}
	if d.n >= math.MaxInt32 {
		return nil, fmt.Errorf("graph: snapshot overflow: %d nodes", d.n)
	}
	oldN, n := d.baseN, d.n

	next := &Snapshot{
		offsets:  make([]int32, n+1),
		ends:     make([]int32, n),
		caps:     make([]int32, n),
		m:        s.m,
		strength: s.strength,
		version:  nextSnapshotVersion(),
	}
	copy(next.offsets, s.offsets[:oldN])
	copy(next.ends, s.ends[:oldN])
	if s.caps != nil {
		copy(next.caps, s.caps[:oldN])
	} else {
		for u := 0; u < oldN; u++ {
			next.caps[u] = s.ends[u] - s.offsets[u]
		}
	}

	// Split each changed edge into its two row views and validate the
	// delta against this snapshot as we go.
	changes := make([]rowChange, 0, 2*len(d.edges))
	for _, e := range d.edges {
		if e.U < 0 || e.U >= e.V || int(e.V) >= n {
			return nil, fmt.Errorf("graph: delta edge (%d,%d) out of range", e.U, e.V)
		}
		if e.OldW == e.NewW || e.OldW < 0 || e.NewW < 0 {
			return nil, fmt.Errorf("graph: delta edge (%d,%d) weight %d -> %d is not a change", e.U, e.V, e.OldW, e.NewW)
		}
		if got := int32(s.EdgeWeight(int(e.U), int(e.V))); got != e.OldW {
			return nil, fmt.Errorf("graph: delta edge (%d,%d) claims old weight %d, snapshot has %d", e.U, e.V, e.OldW, got)
		}
		changes = append(changes,
			rowChange{node: e.U, nbr: e.V, oldW: e.OldW, newW: e.NewW},
			rowChange{node: e.V, nbr: e.U, oldW: e.OldW, newW: e.NewW})
		if e.OldW == 0 {
			next.m++
		} else if e.NewW == 0 {
			next.m--
		}
		next.strength += int(e.NewW - e.OldW)
	}
	sort.Slice(changes, func(i, j int) bool {
		if changes[i].node != changes[j].node {
			return changes[i].node < changes[j].node
		}
		return changes[i].nbr < changes[j].nbr
	})

	liveArcs := 2 * next.m
	// Compact when relocation garbage dominates, or when this snapshot
	// is no longer the lineage tip (someone else extended the arena).
	if len(s.neighbors) > 2*liveArcs+4096 || s.arena == nil || !s.arena.claim(s.version, next.version) {
		if err := s.rebuildInto(next, changes, liveArcs); err != nil {
			return nil, err
		}
		return next, nil
	}

	nb, wt := s.neighbors, s.weights
	for i := 0; i < len(changes); {
		j := i
		for j < len(changes) && changes[j].node == changes[i].node {
			j++
		}
		u := int(changes[i].node)
		cs := changes[i:j]
		i = j

		off := next.offsets[u]
		oldLen := int(next.ends[u] - off)
		// Pure append: every change inserts a neighbor id above the
		// current row tail, and the row's slack holds them all. The
		// written region lies beyond every earlier snapshot's ends[u],
		// so sharing the row storage stays safe.
		pure := oldLen+len(cs) <= int(next.caps[u])
		for _, c := range cs {
			if c.oldW != 0 || (oldLen > 0 && c.nbr <= nb[off+int32(oldLen)-1]) {
				pure = false
				break
			}
		}
		if pure {
			for k, c := range cs {
				nb[off+int32(oldLen+k)] = c.nbr
				wt[off+int32(oldLen+k)] = c.newW
			}
			next.ends[u] = off + int32(oldLen+len(cs))
			continue
		}

		// Relocate: merge the old row with the changes into fresh space
		// at the arena tail, with new slack.
		newLen := mergedLen(oldLen, cs)
		newCap := newLen + slackFor(newLen)
		if int64(len(nb))+int64(newCap) > math.MaxInt32 {
			return nil, fmt.Errorf("graph: snapshot overflow: arena beyond int32 at node %d", u)
		}
		start := int32(len(nb))
		nb, wt = mergeRow(nb, wt, s.neighbors[off:off+int32(oldLen)], s.weights[off:off+int32(oldLen)], cs)
		for len(nb) < int(start)+newCap {
			nb = append(nb, 0)
			wt = append(wt, 0)
		}
		next.offsets[u] = start
		next.ends[u] = start + int32(newLen)
		next.caps[u] = int32(newCap)
	}
	next.offsets[n] = int32(len(nb))
	next.neighbors, next.weights = nb, wt
	next.arena = s.arena
	next.recountMaxDeg()
	return next, nil
}

// mergedLen returns the row length after applying the changes: old
// entries minus removals plus insertions.
func mergedLen(oldLen int, cs []rowChange) int {
	n := oldLen
	for _, c := range cs {
		if c.oldW == 0 {
			n++
		} else if c.newW == 0 {
			n--
		}
	}
	return n
}

// mergeRow appends the merge of a sorted row with its sorted change
// list onto the arena slices, applying insertions, removals and weight
// updates in one pass.
func mergeRow(nb, wt, rowNb, rowWt []int32, cs []rowChange) ([]int32, []int32) {
	i, j := 0, 0
	for i < len(rowNb) || j < len(cs) {
		switch {
		case j >= len(cs) || (i < len(rowNb) && rowNb[i] < cs[j].nbr):
			nb = append(nb, rowNb[i])
			wt = append(wt, rowWt[i])
			i++
		case i >= len(rowNb) || rowNb[i] > cs[j].nbr:
			// Insertion; a removal of an absent edge cannot pass the
			// old-weight validation, so newW > 0 here.
			nb = append(nb, cs[j].nbr)
			wt = append(wt, cs[j].newW)
			j++
		default: // same neighbor: removal or weight change
			if cs[j].newW > 0 {
				nb = append(nb, rowNb[i])
				wt = append(wt, cs[j].newW)
			}
			i++
			j++
		}
	}
	return nb, wt
}

// rebuildInto compacts the refreshed topology into a fresh arena:
// every row is copied (touched rows merged with their changes) with
// fresh slack, dropping all relocation garbage. next already carries
// offsets/ends/caps copies and updated counters.
func (s *Snapshot) rebuildInto(next *Snapshot, changes []rowChange, liveArcs int) error {
	n := next.N()
	budget := int64(liveArcs) + int64(liveArcs)/8 + 2*int64(n)
	if budget > math.MaxInt32 {
		budget = math.MaxInt32
	}
	nb := make([]int32, 0, budget)
	wt := make([]int32, 0, budget)
	oldN := s.N()
	ci := 0
	for u := 0; u < n; u++ {
		cj := ci
		for cj < len(changes) && int(changes[cj].node) == u {
			cj++
		}
		cs := changes[ci:cj]
		ci = cj
		var rowNb, rowWt []int32
		if u < oldN {
			rowNb, rowWt = s.Neighbors(u), s.Weights(u)
		}
		newLen := mergedLen(len(rowNb), cs)
		newCap := newLen + newLen/8 + 2
		if int64(len(nb))+int64(newCap) > math.MaxInt32 {
			return fmt.Errorf("graph: snapshot overflow: compaction beyond int32 at node %d", u)
		}
		start := int32(len(nb))
		if len(cs) == 0 {
			nb = append(nb, rowNb...)
			wt = append(wt, rowWt...)
		} else {
			nb, wt = mergeRow(nb, wt, rowNb, rowWt, cs)
		}
		for len(nb) < int(start)+newCap {
			nb = append(nb, 0)
			wt = append(wt, 0)
		}
		next.offsets[u] = start
		next.ends[u] = start + int32(newLen)
		next.caps[u] = int32(newCap)
	}
	next.offsets[n] = int32(len(nb))
	next.neighbors, next.weights = nb, wt
	next.arena = &arena{tip: next.version}
	next.recountMaxDeg()
	return nil
}

// recountMaxDeg rescans row lengths; removals can shrink the old
// maximum, so the O(N) recount keeps MaxDegree exact.
func (s *Snapshot) recountMaxDeg() {
	maxDeg := 0
	for u := range s.ends {
		if d := int(s.ends[u] - s.offsets[u]); d > maxDeg {
			maxDeg = d
		}
	}
	s.maxDeg = maxDeg
}
