// Package graph implements the topology substrate of netmodel: an
// undirected weighted multigraph over densely numbered nodes.
//
// The representation follows the conventions of the AS-level modeling
// literature: nodes are autonomous systems (or routers), simple edges are
// adjacencies, and an integer edge multiplicity models link bandwidth —
// a single high-capacity connection is equivalent to multiple parallel
// unit connections. The "degree" of a node counts distinct neighbors
// (the topological degree k); its "strength" sums multiplicities (the
// weighted degree, bandwidth b).
//
// Self-loops are rejected: neither AS adjacencies nor router links are
// self-referential at this level of abstraction.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Graph is an undirected weighted multigraph. The zero value is not
// usable; create instances with New.
type Graph struct {
	adj      []map[int]int // neighbor -> multiplicity
	m        int           // number of simple edges
	strength int           // total multiplicity over simple edges (counted once per edge)
	log      mutLog        // edges touched since the last freeze (see delta.go)
}

// Edge is a simple edge with its multiplicity; U < V always holds for
// edges returned by this package.
type Edge struct {
	U, V, W int
}

// New returns a graph with n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		n = 0
	}
	g := &Graph{adj: make([]map[int]int, n)}
	for i := range g.adj {
		g.adj[i] = make(map[int]int)
	}
	return g
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of simple edges (distinct adjacent pairs).
func (g *Graph) M() int { return g.m }

// TotalStrength returns the sum of multiplicities over all simple edges —
// the total bandwidth B of the network. TotalStrength >= M always.
func (g *Graph) TotalStrength() int { return g.strength }

// MemEstimate approximates the heap bytes the mutable graph holds: the
// per-node adjacency maps dominate, at roughly a map header per node
// plus bucket storage for each of the 2m directed arcs. An estimate for
// cache accounting, not an exact census — Go map internals are not
// introspectable.
func (g *Graph) MemEstimate() int64 {
	return int64(len(g.adj))*56 + int64(2*g.m)*40
}

// AddNode appends an isolated node and returns its index.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, make(map[int]int))
	return len(g.adj) - 1
}

// valid reports whether u is an existing node index.
func (g *Graph) valid(u int) bool { return u >= 0 && u < len(g.adj) }

// AddEdge adds one unit of multiplicity between u and v, creating the
// simple edge if absent. It returns true when the simple edge is new.
func (g *Graph) AddEdge(u, v int) (created bool, err error) {
	if !g.valid(u) || !g.valid(v) {
		return false, fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, len(g.adj))
	}
	if u == v {
		return false, errors.New("graph: self-loops are not allowed")
	}
	_, existed := g.adj[u][v]
	g.adj[u][v]++
	g.adj[v][u]++
	g.strength++
	if !existed {
		g.m++
	}
	g.logTouch(u, v)
	return !existed, nil
}

// MustAddEdge is AddEdge for callers that have already validated their
// indices (generators on their own nodes); it panics on error.
func (g *Graph) MustAddEdge(u, v int) bool {
	created, err := g.AddEdge(u, v)
	if err != nil {
		panic(err)
	}
	return created
}

// RemoveEdge removes one unit of multiplicity between u and v, deleting
// the simple edge when the multiplicity reaches zero. It returns an error
// if the edge does not exist.
func (g *Graph) RemoveEdge(u, v int) error {
	if !g.valid(u) || !g.valid(v) || g.adj[u][v] == 0 {
		return fmt.Errorf("graph: edge (%d,%d) does not exist", u, v)
	}
	g.adj[u][v]--
	g.adj[v][u]--
	g.strength--
	if g.adj[u][v] == 0 {
		delete(g.adj[u], v)
		delete(g.adj[v], u)
		g.m--
	}
	g.logTouch(u, v)
	return nil
}

// HasEdge reports whether the simple edge (u,v) exists.
func (g *Graph) HasEdge(u, v int) bool {
	if !g.valid(u) || !g.valid(v) {
		return false
	}
	return g.adj[u][v] > 0
}

// EdgeWeight returns the multiplicity of (u,v), zero if absent.
func (g *Graph) EdgeWeight(u, v int) int {
	if !g.valid(u) || !g.valid(v) {
		return 0
	}
	return g.adj[u][v]
}

// Degree returns the topological degree of u: its number of distinct
// neighbors.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Strength returns the weighted degree (bandwidth) of u: the sum of
// multiplicities of its incident edges.
func (g *Graph) Strength(u int) int {
	s := 0
	for _, w := range g.adj[u] {
		s += w
	}
	return s
}

// Neighbors calls fn for every neighbor v of u with the edge multiplicity
// w, stopping early if fn returns false. Iteration order is unspecified;
// use NeighborList when deterministic order matters.
func (g *Graph) Neighbors(u int, fn func(v, w int) bool) {
	for v, w := range g.adj[u] {
		if !fn(v, w) {
			return
		}
	}
}

// NeighborList returns the neighbors of u sorted ascending.
func (g *Graph) NeighborList(u int) []int {
	out := make([]int, 0, len(g.adj[u]))
	for v := range g.adj[u] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Edges calls fn for every simple edge with u < v and multiplicity w,
// stopping early if fn returns false. Order is unspecified.
func (g *Graph) Edges(fn func(u, v, w int) bool) {
	for u := range g.adj {
		for v, w := range g.adj[u] {
			if u < v {
				if !fn(u, v, w) {
					return
				}
			}
		}
	}
}

// EdgeList returns all simple edges sorted by (U,V), deterministic for a
// given topology.
func (g *Graph) EdgeList() []Edge {
	out := make([]Edge, 0, g.m)
	g.Edges(func(u, v, w int) bool {
		out = append(out, Edge{U: u, V: v, W: w})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].U != out[j].U {
			return out[i].U < out[j].U
		}
		return out[i].V < out[j].V
	})
	return out
}

// DegreeSequence returns the topological degree of every node.
func (g *Graph) DegreeSequence() []int {
	out := make([]int, len(g.adj))
	for u := range g.adj {
		out[u] = len(g.adj[u])
	}
	return out
}

// AvgDegree returns the mean topological degree 2M/N, zero for an empty
// graph.
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(len(g.adj))
}

// MaxDegree returns the largest topological degree, zero for an empty
// graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for u := range g.adj {
		if d := len(g.adj[u]); d > max {
			max = d
		}
	}
	return max
}

// Copy returns a deep copy of g. The copy starts with no mutation log;
// its first Refreeze after a Freeze of its own pays a full rebuild.
func (g *Graph) Copy() *Graph {
	c := &Graph{adj: make([]map[int]int, len(g.adj)), m: g.m, strength: g.strength}
	for u, nb := range g.adj {
		c.adj[u] = make(map[int]int, len(nb))
		for v, w := range nb {
			c.adj[u][v] = w
		}
	}
	return c
}

// InducedSubgraph returns the subgraph induced by the given nodes and a
// mapping from new indices to original ones. Duplicate or invalid node
// indices yield an error.
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int, error) {
	toNew := make(map[int]int, len(nodes))
	toOld := make([]int, len(nodes))
	for i, u := range nodes {
		if !g.valid(u) {
			return nil, nil, fmt.Errorf("graph: node %d out of range", u)
		}
		if _, dup := toNew[u]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate node %d", u)
		}
		toNew[u] = i
		toOld[i] = u
	}
	sub := New(len(nodes))
	for i, u := range toOld {
		for v, w := range g.adj[u] {
			j, ok := toNew[v]
			if !ok || j <= i {
				continue
			}
			for x := 0; x < w; x++ {
				sub.MustAddEdge(i, j)
			}
		}
	}
	return sub, toOld, nil
}

// Components returns the connected components as slices of node indices,
// largest first; ties broken by smallest contained index. Each component
// slice is sorted.
func (g *Graph) Components() [][]int {
	seen := make([]bool, len(g.adj))
	var comps [][]int
	queue := make([]int, 0, len(g.adj))
	for s := range g.adj {
		if seen[s] {
			continue
		}
		queue = queue[:0]
		queue = append(queue, s)
		seen[s] = true
		var comp []int
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for v := range g.adj[u] {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// GiantComponent returns the subgraph induced by the largest connected
// component together with the new-to-old index mapping. An empty graph
// returns an empty graph.
func (g *Graph) GiantComponent() (*Graph, []int) {
	comps := g.Components()
	if len(comps) == 0 {
		return New(0), nil
	}
	sub, mapping, err := g.InducedSubgraph(comps[0])
	if err != nil {
		panic("graph: internal error extracting giant component: " + err.Error())
	}
	return sub, mapping
}

// IsConnected reports whether the graph has exactly one connected
// component (the empty graph is considered connected).
func (g *Graph) IsConnected() bool {
	return len(g.adj) == 0 || len(g.Components()) == 1
}

// CheckInvariants verifies internal consistency (symmetry of the
// adjacency structure, edge and strength counters). It is intended for
// tests and returns the first violation found.
func (g *Graph) CheckInvariants() error {
	m, s := 0, 0
	for u := range g.adj {
		for v, w := range g.adj[u] {
			if w <= 0 {
				return fmt.Errorf("graph: non-positive multiplicity on (%d,%d)", u, v)
			}
			if u == v {
				return fmt.Errorf("graph: self-loop on %d", u)
			}
			if g.adj[v][u] != w {
				return fmt.Errorf("graph: asymmetric edge (%d,%d): %d vs %d", u, v, w, g.adj[v][u])
			}
			if u < v {
				m++
				s += w
			}
		}
	}
	if m != g.m {
		return fmt.Errorf("graph: edge counter %d, recount %d", g.m, m)
	}
	if s != g.strength {
		return fmt.Errorf("graph: strength counter %d, recount %d", g.strength, s)
	}
	return nil
}
