package graph

import (
	"testing"

	"netmodel/internal/rng"
)

// ring builds a cycle graph on n nodes.
func ring(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
	}
	return g
}

func TestDoubleEdgeSwapPreservesDegrees(t *testing.T) {
	r := rng.New(5)
	g := ring(50)
	before := g.DegreeSequence()
	done, err := DoubleEdgeSwap(g, r, 100)
	if err != nil {
		t.Fatal(err)
	}
	if done == 0 {
		t.Fatal("no swaps performed on a ring")
	}
	after := g.DegreeSequence()
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("degree of %d changed: %d -> %d", i, before[i], after[i])
		}
	}
	if g.M() != 50 {
		t.Fatalf("edge count changed to %d", g.M())
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleEdgeSwapChangesWiring(t *testing.T) {
	r := rng.New(9)
	g := ring(100)
	orig := g.Copy()
	if _, err := DoubleEdgeSwap(g, r, 200); err != nil {
		t.Fatal(err)
	}
	differs := false
	g.Edges(func(u, v, w int) bool {
		if !orig.HasEdge(u, v) {
			differs = true
			return false
		}
		return true
	})
	if !differs {
		t.Fatal("rewiring left the graph identical")
	}
}

func TestDoubleEdgeSwapTooFewEdges(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1)
	if _, err := DoubleEdgeSwap(g, rng.New(1), 10); err == nil {
		t.Fatal("single edge should fail")
	}
}

func TestFromDegreeSequenceRegular(t *testing.T) {
	r := rng.New(11)
	deg := make([]int, 100)
	for i := range deg {
		deg[i] = 4
	}
	g, err := FromDegreeSequence(r, deg)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 100 {
		t.Fatalf("N = %d", g.N())
	}
	// Rejection may drop a few stubs; degrees must not exceed targets and
	// nearly all should hit them.
	low := 0
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) > 4 {
			t.Fatalf("node %d exceeded target degree: %d", u, g.Degree(u))
		}
		if g.Degree(u) < 4 {
			low++
		}
	}
	if low > 5 {
		t.Fatalf("%d nodes fell below target degree", low)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFromDegreeSequenceErrors(t *testing.T) {
	r := rng.New(1)
	if _, err := FromDegreeSequence(r, []int{1, 1, 1}); err == nil {
		t.Fatal("odd degree sum should fail")
	}
	if _, err := FromDegreeSequence(r, []int{-1, 1}); err == nil {
		t.Fatal("negative degree should fail")
	}
}

func TestFromDegreeSequenceSimpleGraph(t *testing.T) {
	r := rng.New(13)
	deg := []int{5, 3, 3, 2, 2, 2, 2, 1}
	g, err := FromDegreeSequence(r, deg)
	if err != nil {
		t.Fatal(err)
	}
	g.Edges(func(u, v, w int) bool {
		if w != 1 {
			t.Fatalf("multi-edge (%d,%d) weight %d in configuration model", u, v, w)
		}
		return true
	})
}
