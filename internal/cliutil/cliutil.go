// Package cliutil holds the flag-handling conventions shared by the
// netmodel command-line tools: comma-separated axis lists, flag-value
// validation with clear one-line errors, the two -workers resolution
// policies, -o output redirection, and the -cpuprofile / -memprofile
// pair. Extracting them keeps the seven CLIs (topogen, topostat,
// topocmp, topofit, toposweep, topoload, benchcheck) answering the
// same flags the same way.
package cliutil

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
)

// SplitList splits a comma-separated flag value into trimmed non-empty
// items.
func SplitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

// ParseInts parses a comma-separated list of integers.
func ParseInts(s string) ([]int, error) {
	var out []int
	for _, item := range SplitList(s) {
		v, err := strconv.Atoi(item)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseSeeds parses a comma-separated list of uint64 seeds.
func ParseSeeds(s string) ([]uint64, error) {
	var out []uint64
	for _, item := range SplitList(s) {
		v, err := strconv.ParseUint(item, 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseFloats parses a comma-separated list of floats.
func ParseFloats(s string) ([]float64, error) {
	var out []float64
	for _, item := range SplitList(s) {
		v, err := strconv.ParseFloat(item, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// The validators below are the shared flag-checking vocabulary of the
// CLIs: each returns a clear one-line error naming the flag, so a typo
// like "-load -1" or "-engine evnt" fails at the flag layer with an
// actionable message instead of deep inside a subsystem.

// PositiveInt rejects values that are not strictly positive.
func PositiveInt(name string, v int) error {
	if v <= 0 {
		return fmt.Errorf("%s must be positive, got %d", name, v)
	}
	return nil
}

// NonNegativeInt rejects negative values.
func NonNegativeInt(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("%s must not be negative, got %d", name, v)
	}
	return nil
}

// NonNegativeFloat rejects negative, NaN and infinite values.
func NonNegativeFloat(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return fmt.Errorf("%s must be a non-negative finite number, got %v", name, v)
	}
	return nil
}

// PositiveFloats rejects any list entry that is not strictly positive
// and finite — the shape of the swept -load and -tail axes.
func PositiveFloats(name string, vs []float64) error {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return fmt.Errorf("%s entries must be positive finite numbers, got %v", name, v)
		}
	}
	return nil
}

// ParseByteSize parses a byte-size flag value: a plain integer counts
// bytes, an integer or decimal with a K/M/G/T suffix (case-insensitive,
// optional trailing "B" or "iB") scales by powers of 1024, and "-1"
// means unbounded. "0" disables whatever the size budgets. The name is
// echoed in errors so the caller can pass the flag name directly.
func ParseByteSize(name, s string) (int64, error) {
	v := strings.TrimSpace(s)
	if v == "" {
		return 0, fmt.Errorf("%s: empty size", name)
	}
	if v == "-1" {
		return -1, nil
	}
	num, shift := v, 0
	upper := strings.ToUpper(v)
	upper = strings.TrimSuffix(upper, "IB")
	upper = strings.TrimSuffix(upper, "B")
	if n := len(upper); n > 0 {
		switch upper[n-1] {
		case 'K':
			shift = 10
		case 'M':
			shift = 20
		case 'G':
			shift = 30
		case 'T':
			shift = 40
		}
		if shift > 0 {
			num = upper[:n-1]
		} else {
			num = upper
		}
	}
	f, err := strconv.ParseFloat(num, 64)
	if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
		return 0, fmt.Errorf("%s: invalid size %q (want e.g. 65536, 64K, 1.5G, or -1 for unbounded)", name, s)
	}
	b := f * float64(int64(1)<<shift)
	if b > math.MaxInt64 {
		return 0, fmt.Errorf("%s: size %q overflows", name, s)
	}
	return int64(b), nil
}

// OneOf rejects values outside the allowed set, echoing the choices.
func OneOf(name, v string, allowed ...string) error {
	for _, a := range allowed {
		if v == a {
			return nil
		}
	}
	return fmt.Errorf("%s: unknown value %q (have %s)", name, v, strings.Join(allowed, ", "))
}

// FirstError returns the first non-nil error, so a CLI can stack its
// flag validations in one readable call.
func FirstError(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ResolveWorkers is the topogen policy: an explicit value stands, and
// anything <= 0 means every core.
func ResolveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// VisitedWorkers is the topocmp/topofit policy: -workers left unset
// keeps the historical default of 0 (sequential reference generation
// with an all-core metrics engine), while an explicit value sizes both
// pools, with <= 0 resolved to every core so generation shards too.
func VisitedWorkers(fs *flag.FlagSet, name string, value int) int {
	pool := 0
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			pool = ResolveWorkers(value)
		}
	})
	return pool
}

// Output returns the writer the tool should emit to: the file named by
// path when non-empty (created fresh), stdout otherwise. The returned
// close function is a no-op in the stdout case; call it before relying
// on the file's contents. Most tools should use WriteOutput, which
// never loses the close error.
func Output(path string, stdout io.Writer) (io.Writer, func() error, error) {
	if path == "" {
		return stdout, func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, f.Close, nil
}

// Profiler carries the shared -cpuprofile / -memprofile flags and the
// in-flight CPU profile. Every CLI registers the pair via ProfileFlags,
// starts it after flag validation, and stops it on the way out:
//
//	prof := cliutil.ProfileFlags(fs)
//	...
//	if err := prof.Start(); err != nil { return err }
//	defer prof.Stop()
//	...
//	return prof.Stop()
//
// Stop is idempotent, so the deferred call covers error returns while
// the explicit final call surfaces profile-write failures (full disk,
// unwritable path) as command errors on the success path.
type Profiler struct {
	cpu, mem string
	cpuFile  *os.File
	stopped  bool
}

// ProfileFlags registers the -cpuprofile and -memprofile flags on fs.
func ProfileFlags(fs *flag.FlagSet) *Profiler {
	p := &Profiler{}
	fs.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile of the run to this file")
	fs.StringVar(&p.mem, "memprofile", "", "write an allocation profile to this file at exit")
	return p
}

// Start begins CPU profiling when -cpuprofile was given; with neither
// flag set it is a no-op.
func (p *Profiler) Start() error {
	p.stopped = false
	if p.cpu == "" {
		return nil
	}
	f, err := os.Create(p.cpu)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.cpuFile = f
	return nil
}

// Stop flushes the CPU profile and, when -memprofile was given, writes
// the allocation profile after a final GC (so the live-heap samples
// reflect reachable memory, while alloc_objects/alloc_space still
// carry every allocation). Safe to call more than once; only the first
// call does the work.
func (p *Profiler) Stop() error {
	if p.stopped {
		return nil
	}
	p.stopped = true
	var first error
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			first = err
		}
		p.cpuFile = nil
	}
	if p.mem != "" {
		f, err := os.Create(p.mem)
		if err == nil {
			runtime.GC()
			err = pprof.Lookup("allocs").WriteTo(f, 0)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil && first == nil {
			first = err
		}
	}
	return first
}

// WriteOutput resolves the tool's output (Output), runs emit against
// it, and closes it, reporting the first failure — so a failed flush or
// close (full disk, remote filesystem) surfaces as a command error
// instead of a silently truncated file.
func WriteOutput(path string, stdout io.Writer, emit func(io.Writer) error) error {
	w, closeOut, err := Output(path, stdout)
	if err != nil {
		return err
	}
	if err := emit(w); err != nil {
		closeOut()
		return err
	}
	return closeOut()
}
