package cliutil

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

func TestSplitList(t *testing.T) {
	if got := SplitList(" a, b ,,c ,"); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("SplitList = %v", got)
	}
	if got := SplitList(""); got != nil {
		t.Fatalf("SplitList(\"\") = %v, want nil", got)
	}
}

func TestParseLists(t *testing.T) {
	ints, err := ParseInts("1, 2,30")
	if err != nil || !reflect.DeepEqual(ints, []int{1, 2, 30}) {
		t.Fatalf("ParseInts = %v, %v", ints, err)
	}
	if _, err := ParseInts("1,x"); err == nil {
		t.Fatal("ParseInts should reject junk")
	}
	seeds, err := ParseSeeds("1,18446744073709551615")
	if err != nil || seeds[1] != 18446744073709551615 {
		t.Fatalf("ParseSeeds = %v, %v", seeds, err)
	}
	if _, err := ParseSeeds("-1"); err == nil {
		t.Fatal("ParseSeeds should reject negatives")
	}
	floats, err := ParseFloats("0.5, 1.25")
	if err != nil || !reflect.DeepEqual(floats, []float64{0.5, 1.25}) {
		t.Fatalf("ParseFloats = %v, %v", floats, err)
	}
	if _, err := ParseFloats("0.5,nope"); err == nil {
		t.Fatal("ParseFloats should reject junk")
	}
}

func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(3); got != 3 {
		t.Fatalf("ResolveWorkers(3) = %d", got)
	}
	if got := ResolveWorkers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("ResolveWorkers(0) = %d, want GOMAXPROCS", got)
	}
	if got := ResolveWorkers(-5); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("ResolveWorkers(-5) = %d, want GOMAXPROCS", got)
	}
}

func TestVisitedWorkers(t *testing.T) {
	newSet := func(args ...string) (*flag.FlagSet, *int) {
		fs := flag.NewFlagSet("t", flag.ContinueOnError)
		w := fs.Int("workers", 1, "")
		if err := fs.Parse(args); err != nil {
			t.Fatal(err)
		}
		return fs, w
	}
	fs, w := newSet()
	if got := VisitedWorkers(fs, "workers", *w); got != 0 {
		t.Fatalf("unset -workers resolved to %d, want 0", got)
	}
	fs, w = newSet("-workers", "4")
	if got := VisitedWorkers(fs, "workers", *w); got != 4 {
		t.Fatalf("-workers 4 resolved to %d", got)
	}
	fs, w = newSet("-workers", "0")
	if got := VisitedWorkers(fs, "workers", *w); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("-workers 0 resolved to %d, want GOMAXPROCS", got)
	}
}

func TestOutput(t *testing.T) {
	var buf bytes.Buffer
	w, closeFn, err := Output("", &buf)
	if err != nil || w != &buf {
		t.Fatalf("Output(\"\") = %v, %v", w, err)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.txt")
	w, closeFn, err = Output(path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := closeFn(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "hello" {
		t.Fatalf("file contents %q, %v", data, err)
	}
	if buf.Len() != 0 {
		t.Fatal("file output leaked to stdout")
	}
	if _, _, err := Output(filepath.Join(path, "nested", "x"), &buf); err == nil {
		t.Fatal("uncreatable path should error")
	}
}

func TestWriteOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.txt")
	var buf bytes.Buffer
	err := WriteOutput(path, &buf, func(w io.Writer) error {
		_, err := w.Write([]byte("payload"))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "payload" {
		t.Fatalf("file contents %q, %v", data, err)
	}
	// Emit errors surface and win over close errors.
	sentinel := errors.New("emit failed")
	if err := WriteOutput(filepath.Join(t.TempDir(), "e.txt"), &buf, func(io.Writer) error {
		return sentinel
	}); !errors.Is(err, sentinel) {
		t.Fatalf("emit error lost: %v", err)
	}
	if err := WriteOutput(filepath.Join(path, "nested", "x"), &buf, func(io.Writer) error {
		t.Fatal("emit must not run when the output cannot be created")
		return nil
	}); err == nil {
		t.Fatal("uncreatable path should error")
	}
	if err := WriteOutput("", &buf, func(w io.Writer) error {
		_, err := w.Write([]byte("to stdout"))
		return err
	}); err != nil || buf.String() != "to stdout" {
		t.Fatalf("stdout path: %q, %v", buf.String(), err)
	}
}

// TestValidators pins the flag-validation helpers: each rejection is a
// one-line error naming the flag, and every valid value passes.
func TestValidators(t *testing.T) {
	valid := []error{
		PositiveInt("-n", 1),
		NonNegativeInt("-epochs", 0),
		NonNegativeFloat("-mtbf", 0),
		NonNegativeFloat("-mttr", 2.5),
		PositiveFloats("-load", []float64{0.3, 1.5}),
		PositiveFloats("-load", nil),
		OneOf("-engine", "epoch", "epoch", "event"),
		FirstError(nil, nil),
	}
	for i, err := range valid {
		if err != nil {
			t.Fatalf("valid case %d rejected: %v", i, err)
		}
	}
	nan := math.NaN()
	invalid := map[string]error{
		"zero positive int":  PositiveInt("-n", 0),
		"negative int":       NonNegativeInt("-epochs", -1),
		"negative float":     NonNegativeFloat("-mtbf", -0.5),
		"nan float":          NonNegativeFloat("-mtbf", nan),
		"inf float":          NonNegativeFloat("-mttr", math.Inf(1)),
		"zero float entry":   PositiveFloats("-load", []float64{0.5, 0}),
		"nan float entry":    PositiveFloats("-tail", []float64{nan}),
		"unknown enum value": OneOf("-engine", "quantum", "epoch", "event"),
	}
	for name, err := range invalid {
		if err == nil {
			t.Fatalf("%s: want error", name)
		}
		if msg := err.Error(); !strings.Contains(msg, "-") || strings.ContainsRune(msg, '\n') {
			t.Fatalf("%s: want one-line error naming the flag, got %q", name, msg)
		}
	}
	first := FirstError(nil, PositiveInt("-a", 0), PositiveInt("-b", 0))
	if first == nil || !strings.Contains(first.Error(), "-a") {
		t.Fatalf("FirstError should surface the first violation, got %v", first)
	}
}

func TestProfiler(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := ProfileFlags(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	// Give the CPU profiler something to sample and the heap profiler
	// something to record before the profiles are flushed.
	sink := make([]byte, 1<<16)
	for i := range sink {
		sink[i] = byte(i)
	}
	runtime.KeepAlive(sink)
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem} {
		info, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s: empty profile", path)
		}
	}
	// Stop is idempotent: the deferred second call must not rewrite or
	// truncate the already-flushed profiles.
	if err := os.Truncate(mem, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	if info, _ := os.Stat(mem); info.Size() != 1 {
		t.Fatalf("second Stop rewrote the memory profile (size %d)", info.Size())
	}
}

func TestProfilerNoFlags(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := ProfileFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestProfilerBadPath(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	p := ProfileFlags(fs)
	missing := filepath.Join(t.TempDir(), "no", "such", "dir", "x.pprof")
	if err := fs.Parse([]string{"-cpuprofile", missing}); err != nil {
		t.Fatal(err)
	}
	if err := p.Start(); err == nil {
		p.Stop()
		t.Fatal("Start should fail for an uncreatable -cpuprofile path")
	}
	fs2 := flag.NewFlagSet("t", flag.ContinueOnError)
	p2 := ProfileFlags(fs2)
	if err := fs2.Parse([]string{"-memprofile", missing}); err != nil {
		t.Fatal(err)
	}
	if err := p2.Start(); err != nil {
		t.Fatal(err)
	}
	if err := p2.Stop(); err == nil {
		t.Fatal("Stop should surface an uncreatable -memprofile path")
	}
}
