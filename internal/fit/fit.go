// Package fit calibrates generator parameters against reference
// statistics: given a one- or two-dimensional parameter space and an
// objective (usually the compare.Report score against a measured map),
// it finds the best parameterization by coarse grid scan refined with
// golden-section search. Derivative-free search is the right tool here —
// objectives are stochastic simulator outputs, noisy and non-smooth.
package fit

import (
	"errors"
	"math"
)

// Objective maps a parameter value to a cost; lower is better. Errors
// mark infeasible points, which the search skips.
type Objective func(x float64) (float64, error)

// Result of a 1-D calibration.
type Result struct {
	X     float64 // best parameter value
	Cost  float64
	Evals int
}

// Minimize1D searches [lo, hi] with a gridPoints-point coarse scan
// followed by refine golden-section iterations around the best cell.
func Minimize1D(f Objective, lo, hi float64, gridPoints, refine int) (Result, error) {
	if lo >= hi {
		return Result{}, errors.New("fit: empty interval")
	}
	if gridPoints < 2 {
		return Result{}, errors.New("fit: need at least two grid points")
	}
	best := Result{Cost: math.Inf(1)}
	step := (hi - lo) / float64(gridPoints-1)
	feasible := 0
	for i := 0; i < gridPoints; i++ {
		x := lo + float64(i)*step
		c, err := f(x)
		best.Evals++
		if err != nil {
			continue
		}
		feasible++
		if c < best.Cost {
			best.X, best.Cost = x, c
		}
	}
	if feasible == 0 {
		return Result{}, errors.New("fit: no feasible point on the grid")
	}
	// Golden-section refinement on the bracketing cell.
	a := math.Max(lo, best.X-step)
	b := math.Min(hi, best.X+step)
	const invPhi = 0.6180339887498949
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, err1 := f(x1)
	f2, err2 := f(x2)
	best.Evals += 2
	for i := 0; i < refine; i++ {
		bad1 := err1 != nil
		bad2 := err2 != nil
		if bad1 && bad2 {
			break
		}
		if bad2 || (!bad1 && f1 <= f2) {
			b, x2, f2, err2 = x2, x1, f1, err1
			x1 = b - invPhi*(b-a)
			f1, err1 = f(x1)
		} else {
			a, x1, f1, err1 = x1, x2, f2, err2
			x2 = a + invPhi*(b-a)
			f2, err2 = f(x2)
		}
		best.Evals++
	}
	if err1 == nil && f1 < best.Cost {
		best.X, best.Cost = x1, f1
	}
	if err2 == nil && f2 < best.Cost {
		best.X, best.Cost = x2, f2
	}
	return best, nil
}

// Objective2D maps a parameter pair to a cost.
type Objective2D func(x, y float64) (float64, error)

// Result2D of a 2-D calibration.
type Result2D struct {
	X, Y  float64
	Cost  float64
	Evals int
}

// Minimize2D scans a gridX×gridY lattice over the rectangle and then
// runs coordinate-wise golden refinement (one pass per axis).
func Minimize2D(f Objective2D, loX, hiX, loY, hiY float64, gridX, gridY, refine int) (Result2D, error) {
	if loX >= hiX || loY >= hiY {
		return Result2D{}, errors.New("fit: empty rectangle")
	}
	if gridX < 2 || gridY < 2 {
		return Result2D{}, errors.New("fit: need at least a 2x2 grid")
	}
	best := Result2D{Cost: math.Inf(1)}
	sx := (hiX - loX) / float64(gridX-1)
	sy := (hiY - loY) / float64(gridY-1)
	feasible := 0
	for i := 0; i < gridX; i++ {
		for j := 0; j < gridY; j++ {
			x := loX + float64(i)*sx
			y := loY + float64(j)*sy
			c, err := f(x, y)
			best.Evals++
			if err != nil {
				continue
			}
			feasible++
			if c < best.Cost {
				best.X, best.Y, best.Cost = x, y, c
			}
		}
	}
	if feasible == 0 {
		return Result2D{}, errors.New("fit: no feasible point on the grid")
	}
	// Coordinate refinement.
	rx, err := Minimize1D(func(x float64) (float64, error) { return f(x, best.Y) },
		math.Max(loX, best.X-sx), math.Min(hiX, best.X+sx), 3, refine)
	if err == nil && rx.Cost < best.Cost {
		best.X, best.Cost = rx.X, rx.Cost
	}
	best.Evals += rx.Evals
	ry, err := Minimize1D(func(y float64) (float64, error) { return f(best.X, y) },
		math.Max(loY, best.Y-sy), math.Min(hiY, best.Y+sy), 3, refine)
	if err == nil && ry.Cost < best.Cost {
		best.Y, best.Cost = ry.X, ry.Cost
	}
	best.Evals += ry.Evals
	return best, nil
}
