package fit

import (
	"errors"
	"math"
	"testing"

	"netmodel/internal/gen"
	"netmodel/internal/metrics"
	"netmodel/internal/rng"
	"netmodel/internal/stats"
)

func TestMinimize1DQuadratic(t *testing.T) {
	f := func(x float64) (float64, error) { return (x - 1.7) * (x - 1.7), nil }
	res, err := Minimize1D(f, 0, 5, 11, 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X-1.7) > 0.01 {
		t.Fatalf("minimum at %v, want 1.7", res.X)
	}
	if res.Evals < 13 {
		t.Fatalf("suspiciously few evaluations: %d", res.Evals)
	}
}

func TestMinimize1DSkipsInfeasible(t *testing.T) {
	f := func(x float64) (float64, error) {
		if x < 1 {
			return 0, errors.New("infeasible")
		}
		return x, nil
	}
	res, err := Minimize1D(f, 0, 5, 11, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.X < 1 {
		t.Fatalf("returned infeasible point %v", res.X)
	}
	if math.Abs(res.X-1) > 0.3 {
		t.Fatalf("minimum at %v, want near 1", res.X)
	}
}

func TestMinimize1DErrors(t *testing.T) {
	ok := func(x float64) (float64, error) { return x, nil }
	if _, err := Minimize1D(ok, 2, 1, 5, 5); err == nil {
		t.Fatal("inverted interval should fail")
	}
	if _, err := Minimize1D(ok, 0, 1, 1, 5); err == nil {
		t.Fatal("single grid point should fail")
	}
	bad := func(x float64) (float64, error) { return 0, errors.New("no") }
	if _, err := Minimize1D(bad, 0, 1, 5, 5); err == nil {
		t.Fatal("fully infeasible objective should fail")
	}
}

func TestMinimize2DBowl(t *testing.T) {
	f := func(x, y float64) (float64, error) {
		return (x-2)*(x-2) + (y+1)*(y+1), nil
	}
	res, err := Minimize2D(f, -5, 5, -5, 5, 9, 9, 25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X-2) > 0.1 || math.Abs(res.Y+1) > 0.1 {
		t.Fatalf("minimum at (%v,%v), want (2,-1)", res.X, res.Y)
	}
}

func TestMinimize2DErrors(t *testing.T) {
	ok := func(x, y float64) (float64, error) { return x + y, nil }
	if _, err := Minimize2D(ok, 1, 0, 0, 1, 3, 3, 5); err == nil {
		t.Fatal("inverted rectangle should fail")
	}
	if _, err := Minimize2D(ok, 0, 1, 0, 1, 1, 3, 5); err == nil {
		t.Fatal("degenerate grid should fail")
	}
}

// TestCalibrateBAExponent is an end-to-end calibration: find the initial
// attractiveness A that makes BA's degree exponent hit a target.
func TestCalibrateBAExponent(t *testing.T) {
	const target = 2.5
	obj := func(a float64) (float64, error) {
		top, err := gen.BA{N: 6000, M: 2, A: a}.Generate(rng.New(11))
		if err != nil {
			return 0, err
		}
		h, err := stats.Hill(metrics.DegreesAsFloats(top.G), 400)
		if err != nil {
			return 0, err
		}
		return math.Abs(h - target), nil
	}
	res, err := Minimize1D(obj, -1.8, 1.5, 7, 6)
	if err != nil {
		t.Fatal(err)
	}
	// theory: gamma = 3 + A/M -> A = (2.5-3)*2 = -1
	if res.X > 0 {
		t.Fatalf("calibrated A = %v, want negative (theory -1)", res.X)
	}
	if res.Cost > 0.25 {
		t.Fatalf("calibration residual %v too large", res.Cost)
	}
}
