package core

import (
	"reflect"
	"testing"

	"netmodel/internal/refdata"
	"netmodel/internal/traffic"
)

func testCell(seed uint64) Cell {
	return Cell{Model: "ba", N: 150, Seed: seed, Target: refdata.ASMap2001,
		PathSources: 10, Workers: 1}
}

// TestTopologyKeySeparatesCells pins that every topology-shaping field
// feeds the key: cells differing in any of them must never share stage
// artifacts.
func TestTopologyKeySeparatesCells(t *testing.T) {
	base := testCell(1)
	muts := map[string]func(*Cell){
		"model":       func(c *Cell) { c.Model = "glp" },
		"n":           func(c *Cell) { c.N = 151 },
		"seed":        func(c *Cell) { c.Seed = 2 },
		"target":      func(c *Cell) { c.Target = refdata.ASPlusMap2001 },
		"pathsources": func(c *Cell) { c.PathSources = 11 },
		"workers":     func(c *Cell) { c.Workers = 2 },
		"measure":     func(c *Cell) { c.MeasureEvery = 50 },
		"trajpaths":   func(c *Cell) { c.TrajectoryPaths = true },
		"params":      func(c *Cell) { c.Params = Params{"m": 3} },
	}
	seen := map[string]string{base.TopologyKey(): "base"}
	for name, mut := range muts {
		c := base
		mut(&c)
		key := c.TopologyKey()
		if prev, dup := seen[key]; dup {
			t.Fatalf("mutation %q collides with %q: key %q", name, prev, key)
		}
		seen[key] = name
	}
	// Workload is deliberately outside the key: it fans out within a group.
	c := base
	c.Workload = &traffic.WorkloadSpec{Epochs: 3}
	if c.TopologyKey() != base.TopologyKey() {
		t.Fatal("workload spec leaked into the topology key")
	}
	// Param order must not matter, param values must.
	a, b := base, base
	a.Params = Params{"m": 2, "beta": 0.5}
	b.Params = Params{"beta": 0.5, "m": 2}
	if a.TopologyKey() != b.TopologyKey() {
		t.Fatal("param iteration order leaked into the topology key")
	}
}

// TestDuplicateCellsDeduped pins the plan-level dedup: exact-duplicate
// cells run once, are counted, and every duplicate slot receives the
// first occurrence's result.
func TestDuplicateCellsDeduped(t *testing.T) {
	sp := &traffic.WorkloadSpec{Epochs: 3, LoadFactor: 0.5}
	c := testCell(1)
	c.Workload = sp
	other := testCell(2)
	cells := []Cell{c, other, c, testCell(1), c}
	results, st, err := RunCellsWith(cells, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.DuplicateCells != 2 {
		t.Fatalf("DuplicateCells = %d, want 2 (cells 2 and 4)", st.DuplicateCells)
	}
	if st.Groups != 2 {
		t.Fatalf("Groups = %d, want 2 (seeds 1 and 2)", st.Groups)
	}
	// Duplicates share the underlying reports — the same pointers, not
	// merely equal values — proving the work ran once.
	if results[0].Report != results[2].Report || results[0].Workload != results[2].Workload {
		t.Fatal("duplicate cell re-ran instead of reusing the first occurrence")
	}
	// Cell 3 shares the topology but has no workload stage: same report,
	// no workload.
	if results[3].Report != results[0].Report {
		t.Fatal("nil-workload sibling did not share the topology result")
	}
	if results[3].Workload != nil {
		t.Fatalf("nil-workload cell got a workload report: %+v", results[3].Workload)
	}
	// Result slots are per-cell copies: mutating one must not leak.
	if results[0] == results[2] {
		t.Fatal("duplicate cells share one PipelineResult pointer")
	}
}

// TestGroupedRunMatchesIndependentCells pins the grouping engine
// against the one-cell-at-a-time reference: identical results, in
// every slot, with and without workload stages mixed in.
func TestGroupedRunMatchesIndependentCells(t *testing.T) {
	specA := &traffic.WorkloadSpec{Epochs: 3, LoadFactor: 0.4}
	specB := &traffic.WorkloadSpec{Epochs: 3, LoadFactor: 1.2}
	c := testCell(7)
	withA, withB := c, c
	withA.Workload = specA
	withB.Workload = specB
	cells := []Cell{withA, withB, c}
	grouped, st, err := RunCellsWith(cells, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Groups != 1 || st.DuplicateCells != 0 {
		t.Fatalf("stats = %+v, want 1 group, 0 duplicates", st)
	}
	for i, cell := range cells {
		want, err := RunCell(cell)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Report, grouped[i].Report) ||
			!reflect.DeepEqual(want.Snapshot, grouped[i].Snapshot) {
			t.Fatalf("cell %d: grouped run diverged from RunCell", i)
		}
		if (want.Workload == nil) != (grouped[i].Workload == nil) {
			t.Fatalf("cell %d: workload presence diverged", i)
		}
		if want.Workload != nil && !reflect.DeepEqual(want.Workload, grouped[i].Workload) {
			t.Fatalf("cell %d: workload report diverged from RunCell", i)
		}
	}
}

// TestCachedRunMatchesUncached pins stage reuse at the core layer:
// warm rerun over a shared cache, byte-equal reports, hits on every
// stage.
func TestCachedRunMatchesUncached(t *testing.T) {
	sp := &traffic.WorkloadSpec{Epochs: 3, LoadFactor: 0.6}
	c1, c2 := testCell(1), testCell(2)
	c1.Workload, c2.Workload = sp, sp
	cells := []Cell{c1, c2}
	baseline, _, err := RunCellsWith(cells, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	ac := NewArtifactCache(-1)
	for pass := 0; pass < 2; pass++ {
		got, _, err := RunCellsWith(cells, 2, ac)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cells {
			if !reflect.DeepEqual(baseline[i].Report, got[i].Report) ||
				!reflect.DeepEqual(baseline[i].Workload, got[i].Workload) {
				t.Fatalf("pass %d cell %d: cached run diverged", pass, i)
			}
		}
	}
	st := ac.Stats()
	for _, stage := range st.Stages {
		if stage.Hits != 2 || stage.Misses != 2 {
			t.Fatalf("stage %s: hits=%d misses=%d, want 2/2 over cold+warm passes",
				stage.Stage, stage.Hits, stage.Misses)
		}
	}
}
