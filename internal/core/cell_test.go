package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"netmodel/internal/gen"
	"netmodel/internal/refdata"
	"netmodel/internal/rng"
	"netmodel/internal/traffic"
)

func TestBuildModelOverrides(t *testing.T) {
	g, err := BuildModel("ba", 500, Params{"m": 3, "a": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ba, ok := g.(gen.BA)
	if !ok {
		t.Fatalf("built %T, want gen.BA", g)
	}
	if ba.N != 500 || ba.M != 3 || ba.A != 0.5 {
		t.Fatalf("overrides not applied: %+v", ba)
	}
	// No overrides falls back to the registry default build.
	g, err = BuildModel("glp", 300, nil)
	if err != nil {
		t.Fatal(err)
	}
	if glp := g.(gen.GLP); glp.M != 1 || glp.P != 0.45 || glp.Beta != 0.64 {
		t.Fatalf("default GLP changed: %+v", glp)
	}
}

func TestBuildModelRejectsUnknownKnob(t *testing.T) {
	if _, err := BuildModel("ba", 500, Params{"nope": 1}); err == nil ||
		!strings.Contains(err.Error(), "nope") {
		t.Fatalf("want unknown-knob error naming the key, got %v", err)
	}
	if _, err := BuildModel("econ", 500, Params{"m": 2}); err == nil ||
		!strings.Contains(err.Error(), "no parameter overrides") {
		t.Fatalf("knobless model must reject overrides, got %v", err)
	}
	if _, err := BuildModel("unknown", 500, nil); err == nil {
		t.Fatal("unknown model must fail")
	}
}

// TestEveryKnobbedModelDefaultsMatchBuild: the zero-override BuildWith
// path must reproduce the registry default parameterization exactly —
// the two builders generate identical topologies at the same seed.
func TestEveryKnobbedModelDefaultsMatchBuild(t *testing.T) {
	for _, name := range Names() {
		m, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.BuildWith == nil {
			continue
		}
		a, err := m.Build(250).Generate(rng.New(9))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		g, err := m.BuildWith(250, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := g.Generate(rng.New(9))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.G.N() != b.G.N() || a.G.M() != b.G.M() {
			t.Fatalf("%s: BuildWith(nil) diverges from Build: (%d,%d) vs (%d,%d)",
				name, a.G.N(), a.G.M(), b.G.N(), b.G.M())
		}
	}
}

func TestRunCellMatchesPipelineRun(t *testing.T) {
	p := Pipeline{N: 400, Seed: 17, Target: refdata.ASMap2001, PathSources: 50}
	a, err := p.Run("ba")
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCell(p.Cell("ba"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Snapshot != b.Snapshot || a.Report.Score != b.Report.Score {
		t.Fatalf("RunCell diverges from Pipeline.Run:\n%+v\n%+v", a.Snapshot, b.Snapshot)
	}
}

func TestRunCellErrors(t *testing.T) {
	if _, err := RunCell(Cell{Model: "ba", N: 0, Target: refdata.ASMap2001}); err == nil {
		t.Fatal("zero size should fail")
	}
	if _, err := RunCell(Cell{Model: "ba", N: 200, Params: Params{"x": 1},
		Target: refdata.ASMap2001}); err == nil {
		t.Fatal("unknown knob should fail")
	}
}

// TestRunCellsWorkerInvariance: the cell pool merges results by index
// and every cell draws only from its own seed-split streams, so the
// pool width must not change a single bit of any result.
func TestRunCellsWorkerInvariance(t *testing.T) {
	var cells []Cell
	for _, model := range []string{"ba", "glp"} {
		for seed := uint64(1); seed <= 3; seed++ {
			cells = append(cells, Cell{Model: model, N: 300, Seed: seed,
				Target: refdata.ASMap2001, PathSources: 40, Workers: 1})
		}
	}
	base, err := RunCells(cells, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := RunCells(cells, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range cells {
			if base[i].Snapshot != got[i].Snapshot {
				t.Fatalf("workers=%d cell %d: snapshot diverged:\n%+v\n%+v",
					workers, i, base[i].Snapshot, got[i].Snapshot)
			}
			if base[i].Report.Score != got[i].Report.Score {
				t.Fatalf("workers=%d cell %d: score diverged", workers, i)
			}
		}
	}
}

// TestRunCellsFirstErrorDeterministic: which failure surfaces must not
// depend on scheduling — always the lowest-index failing cell.
func TestRunCellsFirstErrorDeterministic(t *testing.T) {
	cells := []Cell{
		{Model: "ba", N: 200, Seed: 1, Target: refdata.ASMap2001, PathSources: 20},
		{Model: "bad-one", N: 200, Seed: 1, Target: refdata.ASMap2001},
		{Model: "bad-two", N: 200, Seed: 1, Target: refdata.ASMap2001},
	}
	for _, workers := range []int{1, 4} {
		_, err := RunCells(cells, workers)
		if err == nil || !strings.Contains(err.Error(), "cell 1") ||
			!strings.Contains(err.Error(), "bad-one") {
			t.Fatalf("workers=%d: want the cell-1 failure, got %v", workers, err)
		}
	}
}

func TestRunCellWorkloadStage(t *testing.T) {
	cell := Cell{Model: "ba", N: 250, Seed: 5, Target: refdata.ASMap2001, PathSources: 20,
		Workload: &traffic.WorkloadSpec{LoadFactor: 0.6, Epochs: 6}}
	res, err := RunCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload == nil || len(res.Workload.Epochs) != 6 {
		t.Fatalf("workload report = %+v", res.Workload)
	}
	if res.Workload.Arrived == 0 {
		t.Fatal("workload stage admitted no flows")
	}
	// The workload stage must not perturb the other stages: the same
	// cell without it yields an identical topology and report.
	plain := cell
	plain.Workload = nil
	base, err := RunCell(plain)
	if err != nil {
		t.Fatal(err)
	}
	if base.Report.Score != res.Report.Score || base.Snapshot != res.Snapshot {
		t.Fatal("workload stage changed the measurement stages")
	}
	// And the stage itself is a pure function of the cell value.
	again, err := RunCell(cell)
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(again.Workload)
	rj, _ := json.Marshal(res.Workload)
	if !bytes.Equal(aj, rj) {
		t.Fatal("workload stage not reproducible from the cell spec")
	}
}

func TestRunCellWorkloadErrorSurfaces(t *testing.T) {
	cell := Cell{Model: "ba", N: 250, Seed: 5, Target: refdata.ASMap2001, PathSources: 20,
		Workload: &traffic.WorkloadSpec{LoadFactor: -2}}
	if _, err := RunCell(cell); err == nil {
		t.Fatal("invalid workload spec must fail the cell")
	}
}
