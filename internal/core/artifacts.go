package core

import (
	"encoding/json"
	"sort"
	"strconv"
	"strings"

	"netmodel/internal/artifact"
	"netmodel/internal/compare"
	"netmodel/internal/engine"
	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/traffic"
)

// The pipeline's cacheable stage outputs, in dependency order. A
// snapshot entry holds the generated topology and its frozen snapshot;
// an engine entry holds the measured metrics and comparison report of
// that snapshot (usable only alongside its snapshot entry); a routing
// entry holds warm shortest-path-tree state over the snapshot, checked
// out exclusively because Routing mutates under simulation.
const (
	StageSnapshot = "snapshot"
	StageEngine   = "engine"
	StageRouting  = "routing"
)

// NewArtifactCache returns a cache sized by budget (bytes; < 0 means
// unbounded) with the pipeline's three stages registered in dependency
// order, or nil — the inert, cache-disabled configuration — when the
// budget is zero. Passing the result to RunCellsWith (or sweep.RunWith)
// never changes any result byte: cached artifacts are pure functions of
// their keys, so the cache only moves work, not answers.
func NewArtifactCache(budget int64) *artifact.Cache {
	return artifact.New(budget, StageSnapshot, StageEngine, StageRouting)
}

// TopologyKey canonically serializes every cell field that determines
// the topology stages — everything except Workload, which keys the
// per-spec fan-out within a topology group instead. Two cells with
// equal keys generate, freeze, measure and compare identically
// (RunCell is a pure function of the Cell value), so their stage
// outputs are interchangeable.
func (c Cell) TopologyKey() string {
	var b strings.Builder
	b.WriteString(c.Model)
	b.WriteString("|n=")
	b.WriteString(strconv.Itoa(c.N))
	b.WriteString("|seed=")
	b.WriteString(strconv.FormatUint(c.Seed, 10))
	b.WriteString("|tgt=")
	b.WriteString(c.Target.Name)
	b.WriteString("|ps=")
	b.WriteString(strconv.Itoa(c.PathSources))
	b.WriteString("|w=")
	b.WriteString(strconv.Itoa(c.Workers))
	b.WriteString("|me=")
	b.WriteString(strconv.Itoa(c.MeasureEvery))
	if c.TrajectoryPaths {
		b.WriteString("|tp")
	}
	if len(c.Params) > 0 {
		keys := make([]string, 0, len(c.Params))
		for k := range c.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b.WriteString("|p:")
			b.WriteString(k)
			b.WriteString("=")
			b.WriteString(strconv.FormatFloat(c.Params[k], 'g', -1, 64))
		}
	}
	return b.String()
}

// workloadKey canonically serializes a workload spec ("" for nil) so
// exact-duplicate cells within a topology group can be detected. The
// JSON encoding of the struct is deterministic: field order is the
// declaration order.
func workloadKey(sp *traffic.WorkloadSpec) string {
	if sp == nil {
		return ""
	}
	b, err := json.Marshal(sp)
	if err != nil {
		// WorkloadSpec is a plain data struct; Marshal cannot fail.
		panic("core: marshaling workload spec: " + err.Error())
	}
	return string(b)
}

// routingKey extends a topology key with the snapshot version and the
// tree budget. Versions are process-unique, so a routing entry can only
// ever be keyed back to the exact snapshot object it was built over —
// the invariant traffic.WithRouting enforces — and it is reachable only
// when the snapshot entry itself was a hit.
func routingKey(topoKey string, snap *graph.Snapshot) string {
	return topoKey + "|v=" + strconv.FormatUint(snap.Version(), 10) +
		"|rtb=" + strconv.Itoa(traffic.RoutingTreeBudget(snap.N()))
}

// topoArtifact is the cached output of the generation stage: the
// mutable topology (kept for PipelineResult.Topology), its frozen
// snapshot, and the growth trajectory when the cell observed one. All
// three are immutable once the cell completes, so the entry is shared
// (artifact.Cache.Get) across concurrent runs.
type topoArtifact struct {
	top        *gen.Topology
	snap       *graph.Snapshot
	trajectory []TrajectoryPoint
}

func (a *topoArtifact) memBytes() int64 {
	b := a.snap.MemBytes() + a.top.G.MemEstimate()
	b += int64(len(a.top.Pos)) * 16
	b += int64(len(a.trajectory)) * trajectoryPointBytes
	return b
}

// trajectoryPointBytes approximates one TrajectoryPoint: the struct is
// a flat bundle of scalars (metrics.GrowthStats plus counters).
const trajectoryPointBytes = 256

// engineArtifact is the cached output of the measurement stage: the
// warm engine (whose memo holds the whole-graph metrics, including the
// giant-component sub-engine) plus the measured snapshot and report.
// The entry is only usable together with its sibling snapshot entry —
// it does not carry the topology or trajectory — and like it is
// immutable and shared.
type engineArtifact struct {
	eng     *engine.Engine
	metrics metrics.Snapshot
	report  *compare.Report
}

func (a *engineArtifact) memBytes() int64 {
	// The memo's big residents are the giant-component sub-snapshot
	// (close to a second copy of the graph) and a handful of per-node
	// metric vectors. Estimated, not measured: the memo fills lazily and
	// an exact census would race concurrent readers.
	return a.eng.Snapshot().MemBytes() + int64(a.eng.Snapshot().N())*48 + 4096
}
