package core

import (
	"fmt"

	"netmodel/internal/artifact"
	"netmodel/internal/engine"
	"netmodel/internal/graph"
	"netmodel/internal/par"
	"netmodel/internal/traffic"
)

// RunStats reports what the stage-keyed execution plan did with a cell
// slice: how many distinct topologies actually executed and how many
// cells were exact duplicates of an earlier cell (same topology key and
// workload spec), served from the first occurrence's result instead of
// re-running.
type RunStats struct {
	// Groups counts the distinct topology groups the plan executed.
	Groups int
	// DuplicateCells counts cells identical to an earlier cell. Their
	// result slots are filled from the first occurrence — byte-identical,
	// since a cell's result is a pure function of the Cell value.
	DuplicateCells int
}

// cellGroup is one unit of the execution plan: every cell sharing a
// topology key, with the group's unique workload specs in
// first-occurrence order. The group runs generate/freeze/measure/
// compare once and fans the specs out sequentially over the warm state.
type cellGroup struct {
	topo    Cell   // the shared topology cell (Workload stripped)
	key     string // topo.TopologyKey()
	cellIdx []int  // original indexes of the group's cells, in input order
	specOf  []int  // parallel to cellIdx: index into specs, -1 = no workload stage
	specs   []*traffic.WorkloadSpec
	seen    map[string]int // workload key -> specs index (-1 for nil)
}

// planGroups folds a cell slice into topology groups, preserving first-
// occurrence order on both axes (groups by topology key, specs within a
// group by workload key) so the plan — and therefore every cache probe
// sequence — is a pure function of the input order.
func planGroups(cells []Cell) (groups []*cellGroup, groupOf []int, dups int) {
	groupOf = make([]int, len(cells))
	byKey := make(map[string]int, len(cells))
	for i, c := range cells {
		key := c.TopologyKey()
		gi, ok := byKey[key]
		if !ok {
			topo := c
			topo.Workload = nil
			gi = len(groups)
			byKey[key] = gi
			groups = append(groups, &cellGroup{topo: topo, key: key, seen: make(map[string]int, 2)})
		}
		g := groups[gi]
		groupOf[i] = gi
		wk := workloadKey(c.Workload)
		si, dup := g.seen[wk]
		if !dup {
			si = -1
			if c.Workload != nil {
				si = len(g.specs)
				g.specs = append(g.specs, c.Workload)
			}
			g.seen[wk] = si
		} else {
			dups++
		}
		g.cellIdx = append(g.cellIdx, i)
		g.specOf = append(g.specOf, si)
	}
	return groups, groupOf, dups
}

// groupArtifacts carries one group's cache probe results into its
// execution. The zero value (all nil) is the cache-disabled plan: build
// everything.
type groupArtifacts struct {
	topo *topoArtifact
	eng  *engineArtifact
	rt   *traffic.Routing
}

// probeGroup looks the group's stages up in the cache. Dependent stages
// are only probed when their prerequisite hit: an engine entry is
// unusable without its sibling snapshot (it carries neither topology
// nor trajectory), and a routing entry is unreachable without it (its
// key embeds the snapshot's process-unique version). Forced misses on
// the dependent stages keep the counters a pure function of cache
// state, not of probe short-circuiting.
func probeGroup(ac *artifact.Cache, g *cellGroup) groupArtifacts {
	var a groupArtifacts
	if v, ok := ac.Get(StageSnapshot, g.key); ok {
		a.topo = v.(*topoArtifact)
	}
	if a.topo == nil {
		ac.Miss(StageEngine)
		if len(g.specs) > 0 {
			ac.Miss(StageRouting)
		}
		return a
	}
	if v, ok := ac.Get(StageEngine, g.key); ok {
		a.eng = v.(*engineArtifact)
	}
	if len(g.specs) > 0 {
		// Exclusive checkout: Routing mutates under simulation, so a
		// concurrent run sharing the cache must never co-own one. The
		// entry is committed back after the group completes.
		if v, ok := ac.Take(StageRouting, routingKey(g.key, a.topo.snap)); ok {
			a.rt = v.(*traffic.Routing)
		}
	}
	return a
}

// groupOut is one group's execution outcome plus what the commit pass
// should write back to the cache.
type groupOut struct {
	res             *PipelineResult
	wls             []*traffic.SimReport // parallel to cellGroup.specs
	topo            *topoArtifact
	eng             *engineArtifact
	rt              *traffic.Routing
	topoNew, engNew bool
	err             error
}

// run executes one group over its probed artifacts. cached selects the
// workload path: with a cache active, simulation routes over an
// explicitly owned Routing (cached or fresh) so the artifact is
// committable; without one, it reuses the engine's memoized routing
// state exactly as RunCellWorkloads always has. Both paths produce
// byte-identical reports — routing state is a pure function of the
// snapshot, warm or cold.
func (g *cellGroup) run(a groupArtifacts, cached bool) groupOut {
	c := g.topo
	var out groupOut
	ta, ea := a.topo, a.eng
	var eng *engine.Engine
	if ta == nil {
		var warm *engine.Engine
		ta, warm, out.err = c.buildTopology()
		if out.err != nil {
			return out
		}
		out.topoNew = cached
		eng = warm
	}
	if ea == nil {
		if eng == nil {
			eng = engine.New(ta.snap, engine.WithWorkers(c.Workers))
		}
		ms, rep, err := c.measureTopology(eng)
		if err != nil {
			out.err = err
			return out
		}
		ea = &engineArtifact{eng: eng, metrics: ms, report: rep}
		out.engNew = cached
	}
	out.topo, out.eng = ta, ea
	out.res = &PipelineResult{Model: c.Model, Topology: ta.top, Snapshot: ea.metrics,
		Report: ea.report, Trajectory: ta.trajectory}
	if len(g.specs) == 0 {
		return out
	}
	if cached {
		rt := a.rt
		if rt == nil {
			rt = traffic.NewRouting(ta.snap)
		}
		out.rt = rt
		out.wls, out.err = c.runWorkloadsRouted(ta.snap, g.specs, rt)
		return out
	}
	out.wls = make([]*traffic.SimReport, len(g.specs))
	for i, sp := range g.specs {
		if out.wls[i], out.err = c.runWorkload(ea.eng, *sp); out.err != nil {
			return out
		}
	}
	return out
}

// runWorkloadsRouted simulates the specs sequentially over one owned
// Routing, hoisting the degree masses. Each spec draws from a fresh
// workload stream split off the cell seed — the stream a dedicated cell
// would use — so the reports match independent cells byte for byte.
func (c Cell) runWorkloadsRouted(snap *graph.Snapshot, specs []*traffic.WorkloadSpec, rt *traffic.Routing) ([]*traffic.SimReport, error) {
	masses := make([]float64, snap.N())
	for u := range masses {
		masses[u] = float64(snap.Degree(u))
	}
	reports := make([]*traffic.SimReport, len(specs))
	for i, sp := range specs {
		_, _, _, wr := c.streams()
		wl, err := traffic.Simulate(snap, masses, *sp, wr, c.Workers, traffic.WithRouting(rt))
		if err != nil {
			return nil, fmt.Errorf("core: workload on %s: %w", c.Model, err)
		}
		reports[i] = wl
	}
	return reports, nil
}

// RunCellsWith executes cells through a stage-keyed plan: cells are
// grouped by topology key, each distinct topology generates/freezes/
// measures/compares once, and the group's workload specs fan out
// sequentially over the warm state, with groups running across a pool
// of the given width (<= 0 means GOMAXPROCS). Exact-duplicate cells are
// served from the first occurrence and counted in RunStats.
//
// When ac is non-nil, stage outputs are looked up before and committed
// after execution, amortizing topology and measurement work across
// calls that share cells. Caching never changes a byte of any result:
// every artifact is a pure function of its key. The cache passes are
// sequential — probes in group order before the fan-out, commits in
// group order after — so hit/miss/eviction counters are themselves
// deterministic at every worker count.
//
// Errors are attributed to the lowest-index cell whose group failed,
// wrapped with the cell's coordinates as RunCells always has.
func RunCellsWith(cells []Cell, workers int, ac *artifact.Cache) ([]*PipelineResult, RunStats, error) {
	groups, groupOf, dups := planGroups(cells)
	st := RunStats{Groups: len(groups), DuplicateCells: dups}
	arts := make([]groupArtifacts, len(groups))
	if ac != nil {
		for gi, g := range groups {
			arts[gi] = probeGroup(ac, g)
		}
	}
	outs := make([]groupOut, len(groups))
	par.ForEach(len(groups), workers, func(_, gi int) {
		outs[gi] = groups[gi].run(arts[gi], ac != nil)
	})
	if ac != nil {
		for gi, g := range groups {
			out := &outs[gi]
			if out.err != nil {
				continue
			}
			if out.topoNew {
				ac.Put(StageSnapshot, g.key, out.topo, out.topo.memBytes())
			}
			if out.engNew {
				ac.Put(StageEngine, g.key, out.eng, out.eng.memBytes())
			}
			if out.rt != nil {
				ac.Put(StageRouting, routingKey(g.key, out.topo.snap), out.rt, out.rt.MemBytes())
			}
		}
	}
	for i := range cells {
		if err := outs[groupOf[i]].err; err != nil {
			return nil, st, fmt.Errorf("core: cell %d (%s, n=%d, seed=%d): %w",
				i, cells[i].Model, cells[i].N, cells[i].Seed, err)
		}
	}
	results := make([]*PipelineResult, len(cells))
	for gi, g := range groups {
		out := &outs[gi]
		for j, ci := range g.cellIdx {
			r := *out.res
			if si := g.specOf[j]; si >= 0 {
				r.Workload = out.wls[si]
			}
			results[ci] = &r
		}
	}
	return results, st, nil
}
