package core

import (
	"fmt"
	"sort"

	"netmodel/internal/compare"
	"netmodel/internal/engine"
	"netmodel/internal/gen"
	"netmodel/internal/metrics"
	"netmodel/internal/refdata"
	"netmodel/internal/rng"
	"netmodel/internal/traffic"
)

// Params are numeric parameter overrides applied on top of a model
// family's default parameterization, keyed by lowercase knob name
// ("m", "beta", ...). They are plain numbers so grid specifications
// serialize to JSON; integer knobs are rounded from the float value.
type Params map[string]float64

// paramReader hands knob values to the registry builders while
// tracking which keys were consumed, so a misspelled override fails
// loudly instead of silently running the defaults.
type paramReader struct {
	p    Params
	used map[string]bool
}

func newParamReader(p Params) *paramReader {
	return &paramReader{p: p, used: make(map[string]bool, len(p))}
}

func (r *paramReader) float(key string, def float64) float64 {
	r.used[key] = true
	if v, ok := r.p[key]; ok {
		return v
	}
	return def
}

func (r *paramReader) int(key string, def int) int {
	r.used[key] = true
	if v, ok := r.p[key]; ok {
		return int(v + 0.5)
	}
	return def
}

// check returns an error naming every override key no knob consumed.
func (r *paramReader) check(model string) error {
	var unknown []string
	for k := range r.p {
		if !r.used[k] {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	return fmt.Errorf("core: model %s has no parameter %v", model, unknown)
}

// BuildModel returns the named family parameterized at size n with the
// given overrides applied on top of its defaults. An empty override set
// is always valid; a non-empty one requires the family to expose knobs
// (Model.BuildWith) and every key to name one of them.
func BuildModel(name string, n int, overrides Params) (gen.Generator, error) {
	m, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if len(overrides) == 0 {
		return m.Build(n), nil
	}
	if m.BuildWith == nil {
		return nil, fmt.Errorf("core: model %q accepts no parameter overrides", name)
	}
	return m.BuildWith(n, overrides)
}

// Cell is one grid cell of a parameter sweep: a single (model, size,
// seed) run through generation, measurement and validation, optionally
// with trajectory observation. It is the unit the sweep driver fans out
// and the unit Pipeline wraps for single runs — both paths execute
// through RunCell, so there is exactly one pipeline implementation.
type Cell struct {
	// Model is the registry name of the family to run.
	Model string
	// N is the target size.
	N int
	// Seed keys every random stream of the cell (see RunCell), so a
	// cell is bit-reproducible in isolation from its spec alone.
	Seed uint64
	// Params are optional overrides of the family's default
	// parameterization.
	Params Params
	// Target is the reference map to validate against.
	Target refdata.Target
	// PathSources caps BFS roots for path statistics (0 = exact).
	PathSources int
	// Workers sizes the cell-internal pools: sharded generation (<= 1
	// runs the sequential reference) and the metrics engine (<= 0 means
	// GOMAXPROCS). Sweeps that parallelize across cells keep this at 1
	// so the cell pool is the only parallelism.
	Workers int
	// MeasureEvery > 0 turns on trajectory observation every that many
	// committed nodes (growth families; everything else records a
	// single completion epoch).
	MeasureEvery int
	// TrajectoryPaths adds the incremental distance family (path
	// lengths, diameter, closeness) to every trajectory observation,
	// maintained by the engine's delta-repaired distance map instead of
	// per-epoch BFS sweeps. PathSources sizes the pivot sample (0 =
	// exact mode); the pivots are drawn once, on the first observed
	// snapshot, from a stream keyed by the cell seed. Only meaningful
	// with MeasureEvery > 0.
	TrajectoryPaths bool
	// Workload, when non-nil, appends a flow-level traffic stage: after
	// measurement the workload is simulated over the cell's frozen
	// snapshot with degree masses, drawing from the cell's own workload
	// stream (PipelineResult.Workload). The simulation reuses the
	// engine's memoized routing state, so it shares shortest-path trees
	// with anything else that routed over the snapshot.
	Workload *traffic.WorkloadSpec
}

// The per-cell random streams are split off a root generator keyed by
// the cell seed, one stream per stage. Splitting (rather than seed
// arithmetic) keeps the stages independent and keeps cells with
// adjacent seeds from sharing streams: under the old seed/seed+1/
// seed+2 scheme, the measurement stream of seed s was the generation
// stream of seed s+1.
const (
	streamGenerate = iota
	streamMeasure
	streamCompare
	streamWorkload
)

// streams derives the cell's stage streams from its seed. The workload
// stream exists whether or not the cell runs a workload stage, so
// adding or dropping the stage never perturbs the other stages' draws.
func (c Cell) streams() (gr, mr, cr, wr *rng.Rand) {
	root := rng.New(c.Seed)
	return root.Split(streamGenerate), root.Split(streamMeasure),
		root.Split(streamCompare), root.Split(streamWorkload)
}

// RunCell executes one cell: build the generator, generate (through the
// sharded kernel when Workers > 1, observing epochs when MeasureEvery
// > 0), freeze, measure, and score against the cell's target. Every
// random draw comes from streams split off the cell seed, so the result
// is a pure function of the Cell value — any cell of any grid can be
// re-run alone, bit for bit.
func RunCell(c Cell) (*PipelineResult, error) {
	res, eng, err := c.runTopology()
	if err != nil {
		return nil, err
	}
	if c.Workload != nil {
		if res.Workload, err = c.runWorkload(eng, *c.Workload); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// RunCellWorkloads executes the cell's topology stages once and then
// simulates every workload spec over the warm engine. Each spec draws
// from a fresh workload stream split off the cell seed — exactly the
// stream a dedicated cell would use — and the engine's memoized routing
// state carries across the specs, so the reports are bit-identical to
// running one cell per spec at a single topology's cost: this is how
// the sweep driver runs (load factor × tail index) grids. c.Workload is
// ignored; the specs replace it.
func RunCellWorkloads(c Cell, specs []*traffic.WorkloadSpec) (*PipelineResult, []*traffic.SimReport, error) {
	c.Workload = nil
	res, eng, err := c.runTopology()
	if err != nil {
		return nil, nil, err
	}
	reports := make([]*traffic.SimReport, len(specs))
	for i, sp := range specs {
		if reports[i], err = c.runWorkload(eng, *sp); err != nil {
			return nil, nil, err
		}
	}
	return res, reports, nil
}

// runTopology is the generate → freeze → measure → compare backbone of
// a cell, returning the warm engine alongside the result so workload
// stages can reuse its snapshot and memoized routing state.
func (c Cell) runTopology() (*PipelineResult, *engine.Engine, error) {
	ta, eng, err := c.buildTopology()
	if err != nil {
		return nil, nil, err
	}
	if eng == nil {
		eng = engine.New(ta.snap, engine.WithWorkers(c.Workers))
	}
	snap, rep, err := c.measureTopology(eng)
	if err != nil {
		return nil, nil, err
	}
	return &PipelineResult{Model: c.Model, Topology: ta.top, Snapshot: snap,
		Report: rep, Trajectory: ta.trajectory}, eng, nil
}

// buildTopology runs the generation stage: build the generator,
// generate (observing epochs when MeasureEvery > 0) and freeze. It
// returns the warm trajectory engine when trajectory mode created one
// (nil otherwise — the caller makes a fresh engine over the snapshot;
// engine.Measure recomputes every metric from the snapshot and its
// stream, so a fresh engine and a trajectory-warm engine measure
// byte-identically).
func (c Cell) buildTopology() (*topoArtifact, *engine.Engine, error) {
	if c.N <= 0 {
		return nil, nil, fmt.Errorf("core: cell needs a positive size, got %d", c.N)
	}
	g, err := BuildModel(c.Model, c.N, c.Params)
	if err != nil {
		return nil, nil, err
	}
	gr, _, _, _ := c.streams()
	if c.MeasureEvery > 0 {
		// Trajectory mode: one engine advances along delta-refreshed
		// snapshots; the final epoch's warm engine then serves the full
		// measurement.
		obs := NewTrajectoryObserver(c.Workers)
		if c.TrajectoryPaths {
			obs.EnablePathMetrics(c.PathSources, c.Seed)
		}
		top, err := gen.GenerateTrajectoryWith(g, gr, c.Workers,
			gen.Trajectory{Every: c.MeasureEvery, Observe: obs.Observe})
		if err != nil {
			return nil, nil, fmt.Errorf("core: generating %s trajectory: %w", c.Model, err)
		}
		eng := obs.Engine()
		return &topoArtifact{top: top, snap: eng.Snapshot(), trajectory: obs.Points()}, eng, nil
	}
	top, err := gen.GenerateWith(g, gr, c.Workers)
	if err != nil {
		return nil, nil, fmt.Errorf("core: generating %s: %w", c.Model, err)
	}
	// Freeze once; measurement and validation share one engine so the
	// memoized whole-graph metrics (triangles, k-core, giant component)
	// are computed a single time.
	snap, err := top.G.FreezeChecked()
	if err != nil {
		return nil, nil, fmt.Errorf("core: freezing %s: %w", c.Model, err)
	}
	return &topoArtifact{top: top, snap: snap}, nil, nil
}

// measureTopology runs the measurement and validation stages over an
// engine holding the cell's frozen snapshot. Both stages draw from
// cell-seed-split streams and from the snapshot alone, so the outputs
// are a pure function of (cell, topology) regardless of which engine —
// fresh, trajectory-warm or cached — carries the snapshot.
func (c Cell) measureTopology(eng *engine.Engine) (metrics.Snapshot, *compare.Report, error) {
	_, mr, cr, _ := c.streams()
	snap, err := eng.Measure(mr, c.PathSources)
	if err != nil {
		return metrics.Snapshot{}, nil, fmt.Errorf("core: measuring %s: %w", c.Model, err)
	}
	rep, err := compare.AgainstFrozen(eng, c.Target, compare.Options{PathSources: c.PathSources, Rand: cr})
	if err != nil {
		return metrics.Snapshot{}, nil, fmt.Errorf("core: comparing %s: %w", c.Model, err)
	}
	return snap, rep, nil
}

// runWorkload simulates one flow-level workload over the cell's warm
// engine, with the standard degree masses (gravity demand proportional
// to connectivity). SimulateWith reuses the engine's memoized routing
// state and pool, and every draw comes from a fresh workload stream
// split off the cell seed, so the stage is a pure function of
// (Cell, spec) no matter how many specs share the engine.
func (c Cell) runWorkload(eng *engine.Engine, spec traffic.WorkloadSpec) (*traffic.SimReport, error) {
	_, _, _, wr := c.streams()
	frozen := eng.Snapshot()
	masses := make([]float64, frozen.N())
	for u := range masses {
		masses[u] = float64(frozen.Degree(u))
	}
	wl, err := traffic.SimulateWith(eng, masses, spec, wr)
	if err != nil {
		return nil, fmt.Errorf("core: workload on %s: %w", c.Model, err)
	}
	return wl, nil
}

// RunCells executes cells across a pool of the given width (<= 0 means
// GOMAXPROCS, 1 runs every group in order on the caller's goroutine).
// This is the one execution engine behind both Pipeline.RunAll (a
// degenerate 1×N sweep at pool width 1) and the sweep driver; it is
// RunCellsWith without an artifact cache. The output — including which
// error surfaces, always the lowest-index failure — is invariant to
// the worker count.
func RunCells(cells []Cell, workers int) ([]*PipelineResult, error) {
	results, _, err := RunCellsWith(cells, workers, nil)
	return results, err
}
