package core

import (
	"strings"
	"testing"

	"netmodel/internal/refdata"
	"netmodel/internal/rng"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	want := []string{"ba", "brite", "econ", "econ-dist", "fkp", "gba",
		"glp", "gnm", "gnp", "inet", "pfp", "rgg", "transitstub", "waxman", "ws"}
	if len(names) != len(want) {
		t.Fatalf("registry has %d models: %v", len(names), names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registry = %v, want %v", names, want)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Fatalf("want unknown-model error, got %v", err)
	}
}

func TestEveryModelBuildsAtSmallSize(t *testing.T) {
	for _, name := range Names() {
		m, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Description == "" {
			t.Fatalf("%s: missing description", name)
		}
		top, err := m.Build(250).Generate(rng.New(5))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if top.G.N() < 100 {
			t.Fatalf("%s: produced only %d nodes for target 250", name, top.G.N())
		}
		if err := top.G.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestPipelineRun(t *testing.T) {
	p := Pipeline{N: 800, Seed: 11, Target: refdata.ASMap2001, PathSources: 100}
	res, err := p.Run("glp")
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "glp" || res.Topology == nil || res.Report == nil {
		t.Fatalf("incomplete result %+v", res)
	}
	if res.Snapshot.N != res.Topology.G.N() {
		t.Fatal("snapshot does not match topology")
	}
	if res.Report.Score <= 0 {
		t.Fatalf("score = %v, expected positive imperfection", res.Report.Score)
	}
}

func TestPipelineRunErrors(t *testing.T) {
	p := Pipeline{N: 0, Seed: 1, Target: refdata.ASMap2001}
	if _, err := p.Run("ba"); err == nil {
		t.Fatal("zero size should fail")
	}
	p.N = 100
	if _, err := p.Run("unknown"); err == nil {
		t.Fatal("unknown model should fail")
	}
}

func TestPipelineDeterministic(t *testing.T) {
	p := Pipeline{N: 400, Seed: 21, Target: refdata.ASMap2001, PathSources: 50}
	a, err := p.Run("pfp")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Run("pfp")
	if err != nil {
		t.Fatal(err)
	}
	if a.Snapshot != b.Snapshot {
		t.Fatalf("pipeline not deterministic:\n%+v\n%+v", a.Snapshot, b.Snapshot)
	}
}

func TestRunAllCoversRegistry(t *testing.T) {
	p := Pipeline{N: 250, Seed: 3, Target: refdata.ASMap2001, PathSources: 40}
	out, err := p.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(Names()) {
		t.Fatalf("RunAll returned %d results for %d models", len(out), len(Names()))
	}
	for name, res := range out {
		if res == nil || res.Report == nil {
			t.Fatalf("%s: nil result", name)
		}
	}
}
