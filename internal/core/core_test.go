package core

import (
	"strings"
	"testing"

	"netmodel/internal/refdata"
	"netmodel/internal/rng"
)

func TestRegistryComplete(t *testing.T) {
	names := Names()
	want := []string{"ba", "brite", "econ", "econ-dist", "fkp", "gba",
		"glp", "gnm", "gnp", "inet", "pfp", "rgg", "transitstub", "waxman", "ws"}
	if len(names) != len(want) {
		t.Fatalf("registry has %d models: %v", len(names), names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("registry = %v, want %v", names, want)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil || !strings.Contains(err.Error(), "unknown model") {
		t.Fatalf("want unknown-model error, got %v", err)
	}
}

func TestEveryModelBuildsAtSmallSize(t *testing.T) {
	for _, name := range Names() {
		m, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Description == "" {
			t.Fatalf("%s: missing description", name)
		}
		top, err := m.Build(250).Generate(rng.New(5))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if top.G.N() < 100 {
			t.Fatalf("%s: produced only %d nodes for target 250", name, top.G.N())
		}
		if err := top.G.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestPipelineRun(t *testing.T) {
	p := Pipeline{N: 800, Seed: 11, Target: refdata.ASMap2001, PathSources: 100}
	res, err := p.Run("glp")
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "glp" || res.Topology == nil || res.Report == nil {
		t.Fatalf("incomplete result %+v", res)
	}
	if res.Snapshot.N != res.Topology.G.N() {
		t.Fatal("snapshot does not match topology")
	}
	if res.Report.Score <= 0 {
		t.Fatalf("score = %v, expected positive imperfection", res.Report.Score)
	}
}

func TestPipelineRunErrors(t *testing.T) {
	p := Pipeline{N: 0, Seed: 1, Target: refdata.ASMap2001}
	if _, err := p.Run("ba"); err == nil {
		t.Fatal("zero size should fail")
	}
	p.N = 100
	if _, err := p.Run("unknown"); err == nil {
		t.Fatal("unknown model should fail")
	}
}

func TestPipelineDeterministic(t *testing.T) {
	p := Pipeline{N: 400, Seed: 21, Target: refdata.ASMap2001, PathSources: 50}
	a, err := p.Run("pfp")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Run("pfp")
	if err != nil {
		t.Fatal(err)
	}
	if a.Snapshot != b.Snapshot {
		t.Fatalf("pipeline not deterministic:\n%+v\n%+v", a.Snapshot, b.Snapshot)
	}
}

func TestRunAllCoversRegistry(t *testing.T) {
	p := Pipeline{N: 250, Seed: 3, Target: refdata.ASMap2001, PathSources: 40}
	out, err := p.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(Names()) {
		t.Fatalf("RunAll returned %d results for %d models", len(out), len(Names()))
	}
	for name, res := range out {
		if res == nil || res.Report == nil {
			t.Fatalf("%s: nil result", name)
		}
	}
}

// TestPipelineTrajectoryMatchesPlainRun: trajectory mode must not
// change what the pipeline computes — generation is bit-identical
// (observation draws no randomness) and the final measurement runs on
// a delta-refreshed snapshot that is logically identical to the fresh
// freeze, under the same static parallel schedule. The full metric
// vector and comparison report must therefore agree exactly.
func TestPipelineTrajectoryMatchesPlainRun(t *testing.T) {
	for _, model := range []string{"ba", "glp", "pfp"} {
		for _, workers := range []int{1, 4} {
			plain := Pipeline{N: 500, Seed: 11, Target: refdata.ASMap2001, PathSources: 60, Workers: workers}
			a, err := plain.Run(model)
			if err != nil {
				t.Fatal(err)
			}
			traj := plain
			traj.MeasureEvery = 120
			b, err := traj.Run(model)
			if err != nil {
				t.Fatal(err)
			}
			if a.Snapshot != b.Snapshot {
				t.Fatalf("%s workers=%d: trajectory mode changed the final metrics:\n%+v\n%+v",
					model, workers, a.Snapshot, b.Snapshot)
			}
			if a.Report.Score != b.Report.Score {
				t.Fatalf("%s workers=%d: trajectory mode changed the report score", model, workers)
			}
			if len(b.Trajectory) < 3 {
				t.Fatalf("%s workers=%d: only %d trajectory points", model, workers, len(b.Trajectory))
			}
			last := b.Trajectory[len(b.Trajectory)-1]
			if last.N != b.Snapshot.N || last.M != b.Snapshot.M {
				t.Fatalf("%s workers=%d: last epoch (%d,%d) vs final (%d,%d)",
					model, workers, last.N, last.M, b.Snapshot.N, b.Snapshot.M)
			}
			refreshed := 0
			for i, pt := range b.Trajectory {
				if i > 0 && pt.N <= b.Trajectory[i-1].N {
					t.Fatalf("%s: epochs not increasing", model)
				}
				if pt.Refreshed {
					refreshed++
				}
				if pt.Stats.N != pt.N || pt.Stats.M != pt.M {
					t.Fatalf("%s: stats out of sync at epoch %d", model, i)
				}
			}
			if refreshed < len(b.Trajectory)-1 {
				t.Fatalf("%s workers=%d: only %d/%d epochs used delta refresh",
					model, workers, refreshed, len(b.Trajectory))
			}
		}
	}
}

// TestPipelineTrajectoryFallbackModels: families without a trajectory
// kernel still run in trajectory mode, with a single completion epoch.
func TestPipelineTrajectoryFallbackModels(t *testing.T) {
	p := Pipeline{N: 300, Seed: 5, Target: refdata.ASMap2001, PathSources: 40, MeasureEvery: 50}
	res, err := p.Run("gnp")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != 1 {
		t.Fatalf("gnp trajectory has %d points, want 1", len(res.Trajectory))
	}
	if res.Trajectory[0].N != res.Snapshot.N {
		t.Fatal("fallback epoch out of sync")
	}
}
