// Package core is the front door of netmodel: a registry of every
// topology model the toolkit implements, each with a sensible default
// parameterization at any target size, and a pipeline that takes a model
// name through generation, measurement and validation against the
// published AS-map statistics in one call.
//
// The registry is the "generator shoot-out" surface: experiments and
// command-line tools iterate over it so that every comparison
// automatically covers every implemented family.
package core

import (
	"fmt"
	"io"
	"math"
	"sort"

	"netmodel/internal/compare"
	"netmodel/internal/econ"
	"netmodel/internal/engine"
	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/refdata"
	"netmodel/internal/rng"
	"netmodel/internal/traffic"
)

// Model is a registered topology model family.
type Model struct {
	// Name is the stable registry key (lowercase).
	Name string
	// Description is a one-line summary shown by the tools.
	Description string
	// Build returns the family's default parameterization targeting
	// roughly n nodes.
	Build func(n int) gen.Generator
	// BuildWith, when non-nil, builds the family at size n with numeric
	// overrides applied on top of the defaults — the knob surface the
	// sweep grids drive. Builders must reject unknown keys (see
	// paramReader). Families without tunable knobs leave it nil.
	BuildWith func(n int, overrides Params) (gen.Generator, error)
}

// econAdapter exposes the econ growth engine through the Generator
// interface (discarding the history, which pipeline users don't need).
type econAdapter struct {
	m econ.Model
}

func (e econAdapter) Name() string { return "econ" }

func (e econAdapter) Generate(r *rng.Rand) (*gen.Topology, error) {
	res, err := e.m.Run(r)
	if err != nil {
		return nil, err
	}
	return &gen.Topology{G: res.G, Pos: res.Pos}, nil
}

// GenerateSharded implements gen.ShardedGenerator by sharding the econ
// engine's per-month competition rounds.
func (e econAdapter) GenerateSharded(r *rng.Rand, workers int) (*gen.Topology, error) {
	if workers > 1 {
		e.m.Workers = workers
	}
	return e.Generate(r)
}

// econDistAdapter is econAdapter with the geographic constraint.
type econDistAdapter struct{ econAdapter }

func (e econDistAdapter) Name() string { return "econ-dist" }

// registry holds every model family, keyed by name.
var registry = map[string]Model{}

// register adds a model to the registry, deriving the default Build
// from BuildWith (no overrides) when only the knobbed builder is given.
func register(m Model) {
	if _, dup := registry[m.Name]; dup {
		panic("core: duplicate model " + m.Name)
	}
	if m.Build == nil {
		if m.BuildWith == nil {
			panic("core: model " + m.Name + " has no builder")
		}
		bw := m.BuildWith
		m.Build = func(n int) gen.Generator {
			g, err := bw(n, nil)
			if err != nil {
				// Unreachable: an empty override set consumes no keys.
				panic("core: default build of " + m.Name + ": " + err.Error())
			}
			return g
		}
	}
	registry[m.Name] = m
}

func init() {
	register(Model{Name: "gnp", Description: "Erdős–Rényi G(n,p) random graph",
		BuildWith: func(n int, p Params) (gen.Generator, error) {
			r := newParamReader(p)
			g := gen.GNP{N: n, P: r.float("k", 4.2) / float64(n-1)}
			return g, r.check("gnp")
		}})
	register(Model{Name: "gnm", Description: "Erdős–Rényi G(n,m) random graph",
		BuildWith: func(n int, p Params) (gen.Generator, error) {
			r := newParamReader(p)
			g := gen.GNM{N: n, M: int(r.float("k", 4)*float64(n)/2 + 0.5)}
			return g, r.check("gnm")
		}})
	register(Model{Name: "ws", Description: "Watts–Strogatz small world",
		BuildWith: func(n int, p Params) (gen.Generator, error) {
			r := newParamReader(p)
			g := gen.WS{N: n, K: r.int("k", 4), Beta: r.float("beta", 0.1)}
			return g, r.check("ws")
		}})
	register(Model{Name: "waxman", Description: "Waxman distance-probability graph",
		BuildWith: func(n int, p Params) (gen.Generator, error) {
			r := newParamReader(p)
			g := gen.Waxman{N: n, Alpha: r.float("alpha", 0.12), Beta: r.float("beta", 0.15)}
			return g, r.check("waxman")
		}})
	register(Model{Name: "rgg", Description: "random geometric graph",
		BuildWith: func(n int, p Params) (gen.Generator, error) {
			// mean degree ~ n*pi*r^2, so r = sqrt(k/pi)/sqrt(n); the
			// default k of 4.2 gives the historical 1.16/sqrt(n).
			r := newParamReader(p)
			g := gen.RGG{N: n, Radius: math.Sqrt(r.float("k", 4.2)/math.Pi) / math.Sqrt(float64(n))}
			return g, r.check("rgg")
		}})
	register(Model{Name: "ba", Description: "Barabási–Albert preferential attachment (γ=3)",
		BuildWith: func(n int, p Params) (gen.Generator, error) {
			r := newParamReader(p)
			g := gen.BA{N: n, M: r.int("m", 2), A: r.float("a", 0)}
			return g, r.check("ba")
		}})
	register(Model{Name: "gba", Description: "BA with initial attractiveness tuned to γ≈2.2",
		BuildWith: func(n int, p Params) (gen.Generator, error) {
			r := newParamReader(p)
			g := gen.BA{N: n, M: r.int("m", 2), A: r.float("a", -1.6)}
			return g, r.check("gba")
		}})
	register(Model{Name: "glp", Description: "Generalized Linear Preference (Bu–Towsley)",
		BuildWith: func(n int, p Params) (gen.Generator, error) {
			r := newParamReader(p)
			g := gen.GLP{N: n, M: r.int("m", 1), P: r.float("p", 0.45), Beta: r.float("beta", 0.64)}
			return g, r.check("glp")
		}})
	register(Model{Name: "pfp", Description: "Positive-Feedback Preference (Zhou–Mondragón)",
		BuildWith: func(n int, p Params) (gen.Generator, error) {
			r := newParamReader(p)
			d := gen.DefaultPFP(n)
			g := gen.PFP{N: n, P: r.float("p", d.P), Q: r.float("q", d.Q), Delta: r.float("delta", d.Delta)}
			return g, r.check("pfp")
		}})
	register(Model{Name: "fkp", Description: "FKP/HOT optimization-driven tree",
		BuildWith: func(n int, p Params) (gen.Generator, error) {
			r := newParamReader(p)
			g := gen.FKP{N: n, Alpha: r.float("alpha", 8)}
			return g, r.check("fkp")
		}})
	register(Model{Name: "inet", Description: "Inet-style degree-targeted synthesis",
		BuildWith: func(n int, p Params) (gen.Generator, error) {
			r := newParamReader(p)
			g := gen.Inet{N: n, Gamma: r.float("gamma", 2.2), MinDeg: r.int("mindeg", 1)}
			return g, r.check("inet")
		}})
	register(Model{Name: "brite", Description: "BRITE-style degree+distance hybrid growth",
		BuildWith: func(n int, p Params) (gen.Generator, error) {
			r := newParamReader(p)
			g := gen.BRITE{N: n, M: r.int("m", 2), Beta: r.float("beta", 0.15), A: r.float("a", 0)}
			return g, r.check("brite")
		}})
	register(Model{Name: "transitstub", Description: "GT-ITM-style transit-stub hierarchy",
		Build: func(n int) gen.Generator { return gen.DefaultTransitStub(n) }})
	register(Model{Name: "econ", Description: "demand/supply competition-adaptation growth",
		Build: func(n int) gen.Generator { return econAdapter{econ.Default(n)} }})
	register(Model{Name: "econ-dist", Description: "econ with geographic link costs",
		Build: func(n int) gen.Generator { return econDistAdapter{econAdapter{econ.DefaultDistance(n)}} }})
}

// Names returns all registered model names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the model registered under name.
func Lookup(name string) (Model, error) {
	m, ok := registry[name]
	if !ok {
		return Model{}, fmt.Errorf("core: unknown model %q (have %v)", name, Names())
	}
	return m, nil
}

// TrajectoryPoint is one observation epoch of a growth trajectory run.
type TrajectoryPoint struct {
	N, M      int
	Refreshed bool // measured through a delta refresh rather than a full freeze
	Stats     metrics.GrowthStats
}

// TrajectoryObserver drives incremental measurement along a growth
// trajectory: at every epoch it refreezes the live graph against the
// previous epoch's snapshot, advances a single metrics engine across
// the delta, and records the engine's growth-stat vector. After the
// run, the engine sits on the final snapshot with its delta-maintained
// metrics warm — final full measurement and validation reuse them.
type TrajectoryObserver struct {
	workers int
	prev    *graph.Snapshot
	eng     *engine.Engine
	points  []TrajectoryPoint

	// Path-metric mode (EnablePathMetrics): the engine maintains an
	// incremental distance map across epochs and every observation
	// carries the distance family of GrowthStats.
	pathsOn    bool
	pathPivots int
	pathSeed   uint64
	pivots     []int32
}

// NewTrajectoryObserver returns an observer measuring with the given
// engine pool width (<= 0 means GOMAXPROCS).
func NewTrajectoryObserver(workers int) *TrajectoryObserver {
	return &TrajectoryObserver{workers: workers}
}

// EnablePathMetrics switches the observer to MeasureGrowthPaths: every
// epoch additionally records average path length, diameter and mean
// closeness from the engine's delta-repaired distance map. pivots <= 0
// keeps the map exact (one BFS row per node, bit-identical to the full
// traversal metrics); pivots > 0 samples that many BFS sources on the
// first observed snapshot from a stream keyed by seed (the pivot set
// stays fixed for the whole trajectory). Call before the first Observe.
func (o *TrajectoryObserver) EnablePathMetrics(pivots int, seed uint64) {
	o.pathsOn = true
	o.pathPivots = pivots
	o.pathSeed = seed
}

// Observe implements gen.Trajectory.Observe.
func (o *TrajectoryObserver) Observe(g *graph.Graph, n int) error {
	var next *graph.Snapshot
	var d *graph.Delta
	var err error
	first := o.prev == nil
	if first {
		if next, err = g.FreezeChecked(); err != nil {
			return err
		}
		o.eng = engine.New(next, engine.WithWorkers(o.workers))
	} else {
		if next, d, err = g.Refreeze(o.prev); err != nil {
			return err
		}
		if err = o.eng.Advance(next, d); err != nil {
			return err
		}
	}
	o.prev = next
	var stats metrics.GrowthStats
	if o.pathsOn {
		if first && o.pathPivots > 0 {
			o.pivots = metrics.PivotSources(rng.New(o.pathSeed), next.N(), o.pathPivots)
		}
		stats = o.eng.MeasureGrowthPaths(o.pivots)
	} else {
		stats = o.eng.MeasureGrowth()
	}
	o.points = append(o.points, TrajectoryPoint{
		N:         next.N(),
		M:         next.M(),
		Refreshed: d != nil,
		Stats:     stats,
	})
	return nil
}

// Points returns the recorded epochs.
func (o *TrajectoryObserver) Points() []TrajectoryPoint { return o.points }

// Engine returns the metrics engine, positioned on the last observed
// snapshot (the completed topology once the run finished), or nil
// before the first observation.
func (o *TrajectoryObserver) Engine() *engine.Engine { return o.eng }

// WriteTrajectory renders trajectory epochs as aligned columns, the
// table the tools print in -measure-every mode. The refresh column
// marks epochs measured through a delta refresh ("delta") versus a
// full freeze ("full"). Trajectories recorded with path metrics
// (TrajectoryObserver.EnablePathMetrics, detected by a non-zero path
// source count on any epoch) gain the distance columns — mean path
// length, diameter, mean closeness — before the freeze column.
func WriteTrajectory(w io.Writer, points []TrajectoryPoint) error {
	paths := false
	for _, p := range points {
		if p.Stats.PathSources > 0 {
			paths = true
			break
		}
	}
	if !paths {
		if _, err := fmt.Fprintf(w, "%10s %10s %7s %7s %7s %8s %8s %5s %7s\n",
			"nodes", "edges", "<k>", "kmax", "gamma", "clust", "trans", "core", "freeze"); err != nil {
			return err
		}
		for _, p := range points {
			mode := "full"
			if p.Refreshed {
				mode = "delta"
			}
			if _, err := fmt.Fprintf(w, "%10d %10d %7.3f %7d %7.3f %8.4f %8.4f %5d %7s\n",
				p.N, p.M, p.Stats.AvgDegree, p.Stats.MaxDegree, p.Stats.Gamma,
				p.Stats.AvgClustering, p.Stats.Transitivity, p.Stats.MaxCore, mode); err != nil {
				return err
			}
		}
		return nil
	}
	if _, err := fmt.Fprintf(w, "%10s %10s %7s %7s %7s %8s %8s %5s %7s %5s %8s %7s\n",
		"nodes", "edges", "<k>", "kmax", "gamma", "clust", "trans", "core", "<d>", "diam", "<clo>", "freeze"); err != nil {
		return err
	}
	for _, p := range points {
		mode := "full"
		if p.Refreshed {
			mode = "delta"
		}
		if _, err := fmt.Fprintf(w, "%10d %10d %7.3f %7d %7.3f %8.4f %8.4f %5d %7.3f %5d %8.5f %7s\n",
			p.N, p.M, p.Stats.AvgDegree, p.Stats.MaxDegree, p.Stats.Gamma,
			p.Stats.AvgClustering, p.Stats.Transitivity, p.Stats.MaxCore,
			p.Stats.AvgPathLen, p.Stats.Diameter, p.Stats.MeanCloseness, mode); err != nil {
			return err
		}
	}
	return nil
}

// PipelineResult bundles the outputs of a full model run.
type PipelineResult struct {
	Model    string
	Topology *gen.Topology
	Snapshot metrics.Snapshot
	Report   *compare.Report
	// Trajectory holds the per-epoch growth observations when the
	// pipeline ran with MeasureEvery > 0 (one final entry for families
	// without a trajectory kernel), nil otherwise.
	Trajectory []TrajectoryPoint
	// Workload holds the flow-level traffic report when the cell ran a
	// workload stage (Cell.Workload), nil otherwise.
	Workload *traffic.SimReport
}

// Pipeline configures a run.
type Pipeline struct {
	N           int            // target size
	Seed        uint64         // generation seed
	Target      refdata.Target // reference to validate against
	PathSources int            // BFS sampling for path metrics (0 = exact)
	// Workers sizes the pool for both stages: sharded generation (when
	// the family has a kernel; <= 1 runs the sequential reference) and
	// the metrics engine (<= 0 means GOMAXPROCS).
	Workers int
	// MeasureEvery > 0 switches trajectory mode on: growth models pause
	// every MeasureEvery committed nodes and the growing map is measured
	// through delta-refreshed snapshots (PipelineResult.Trajectory).
	MeasureEvery int
	// TrajectoryPaths adds the incremental distance family (path
	// lengths, diameter, closeness) to every trajectory observation;
	// PathSources sizes the pivot sample (0 = exact). Requires
	// MeasureEvery > 0.
	TrajectoryPaths bool
	// Workload, when non-nil, appends the flow-level traffic stage to
	// every run (PipelineResult.Workload).
	Workload *traffic.WorkloadSpec
}

// Cell returns the sweep cell a pipeline run of the named model
// corresponds to: the pipeline is the 1×1 special case of the grid.
func (p Pipeline) Cell(name string) Cell {
	return Cell{
		Model:           name,
		N:               p.N,
		Seed:            p.Seed,
		Target:          p.Target,
		PathSources:     p.PathSources,
		Workers:         p.Workers,
		MeasureEvery:    p.MeasureEvery,
		TrajectoryPaths: p.TrajectoryPaths,
		Workload:        p.Workload,
	}
}

// Run generates the named model and validates it, by executing the
// corresponding single cell.
func (p Pipeline) Run(name string) (*PipelineResult, error) {
	if _, err := Lookup(name); err != nil {
		return nil, err
	}
	return RunCell(p.Cell(name))
}

// RunAll runs the pipeline for every registered model and returns the
// results keyed by name — a degenerate 1×N sweep (every registered
// model at one size and one seed) through the same cell runner the
// sweep driver uses, at pool width 1 so cells keep their internal
// Workers pools. Individual failures abort the sweep.
func (p Pipeline) RunAll() (map[string]*PipelineResult, error) {
	names := Names()
	cells := make([]Cell, len(names))
	for i, name := range names {
		cells[i] = p.Cell(name)
	}
	results, err := RunCells(cells, 1)
	if err != nil {
		return nil, err
	}
	out := make(map[string]*PipelineResult, len(names))
	for i, name := range names {
		out[name] = results[i]
	}
	return out, nil
}
