// Package core is the front door of netmodel: a registry of every
// topology model the toolkit implements, each with a sensible default
// parameterization at any target size, and a pipeline that takes a model
// name through generation, measurement and validation against the
// published AS-map statistics in one call.
//
// The registry is the "generator shoot-out" surface: experiments and
// command-line tools iterate over it so that every comparison
// automatically covers every implemented family.
package core

import (
	"fmt"
	"io"
	"math"
	"sort"

	"netmodel/internal/compare"
	"netmodel/internal/econ"
	"netmodel/internal/engine"
	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/refdata"
	"netmodel/internal/rng"
)

// Model is a registered topology model family.
type Model struct {
	// Name is the stable registry key (lowercase).
	Name string
	// Description is a one-line summary shown by the tools.
	Description string
	// Build returns the family's default parameterization targeting
	// roughly n nodes.
	Build func(n int) gen.Generator
}

// econAdapter exposes the econ growth engine through the Generator
// interface (discarding the history, which pipeline users don't need).
type econAdapter struct {
	m econ.Model
}

func (e econAdapter) Name() string { return "econ" }

func (e econAdapter) Generate(r *rng.Rand) (*gen.Topology, error) {
	res, err := e.m.Run(r)
	if err != nil {
		return nil, err
	}
	return &gen.Topology{G: res.G, Pos: res.Pos}, nil
}

// GenerateSharded implements gen.ShardedGenerator by sharding the econ
// engine's per-month competition rounds.
func (e econAdapter) GenerateSharded(r *rng.Rand, workers int) (*gen.Topology, error) {
	if workers > 1 {
		e.m.Workers = workers
	}
	return e.Generate(r)
}

// econDistAdapter is econAdapter with the geographic constraint.
type econDistAdapter struct{ econAdapter }

func (e econDistAdapter) Name() string { return "econ-dist" }

// registry holds every model family, keyed by name.
var registry = map[string]Model{}

func register(m Model) {
	if _, dup := registry[m.Name]; dup {
		panic("core: duplicate model " + m.Name)
	}
	registry[m.Name] = m
}

func init() {
	register(Model{"gnp", "Erdős–Rényi G(n,p) random graph",
		func(n int) gen.Generator { return gen.GNP{N: n, P: 4.2 / float64(n-1)} }})
	register(Model{"gnm", "Erdős–Rényi G(n,m) random graph",
		func(n int) gen.Generator { return gen.GNM{N: n, M: 2 * n} }})
	register(Model{"ws", "Watts–Strogatz small world",
		func(n int) gen.Generator { return gen.WS{N: n, K: 4, Beta: 0.1} }})
	register(Model{"waxman", "Waxman distance-probability graph",
		func(n int) gen.Generator {
			return gen.Waxman{N: n, Alpha: 0.12, Beta: 0.15}
		}})
	register(Model{"rgg", "random geometric graph",
		func(n int) gen.Generator {
			// mean degree ~ n*pi*r^2 = 4.2
			return gen.RGG{N: n, Radius: 1.16 / math.Sqrt(float64(n))}
		}})
	register(Model{"ba", "Barabási–Albert preferential attachment (γ=3)",
		func(n int) gen.Generator { return gen.BA{N: n, M: 2} }})
	register(Model{"gba", "BA with initial attractiveness tuned to γ≈2.2",
		func(n int) gen.Generator { return gen.BA{N: n, M: 2, A: -1.6} }})
	register(Model{"glp", "Generalized Linear Preference (Bu–Towsley)",
		func(n int) gen.Generator { return gen.GLP{N: n, M: 1, P: 0.45, Beta: 0.64} }})
	register(Model{"pfp", "Positive-Feedback Preference (Zhou–Mondragón)",
		func(n int) gen.Generator { return gen.DefaultPFP(n) }})
	register(Model{"fkp", "FKP/HOT optimization-driven tree",
		func(n int) gen.Generator { return gen.FKP{N: n, Alpha: 8} }})
	register(Model{"inet", "Inet-style degree-targeted synthesis",
		func(n int) gen.Generator { return gen.Inet{N: n, Gamma: 2.2, MinDeg: 1} }})
	register(Model{"brite", "BRITE-style degree+distance hybrid growth",
		func(n int) gen.Generator { return gen.BRITE{N: n, M: 2, Beta: 0.15} }})
	register(Model{"transitstub", "GT-ITM-style transit-stub hierarchy",
		func(n int) gen.Generator { return gen.DefaultTransitStub(n) }})
	register(Model{"econ", "demand/supply competition-adaptation growth",
		func(n int) gen.Generator { return econAdapter{econ.Default(n)} }})
	register(Model{"econ-dist", "econ with geographic link costs",
		func(n int) gen.Generator { return econDistAdapter{econAdapter{econ.DefaultDistance(n)}} }})
}

// Names returns all registered model names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the model registered under name.
func Lookup(name string) (Model, error) {
	m, ok := registry[name]
	if !ok {
		return Model{}, fmt.Errorf("core: unknown model %q (have %v)", name, Names())
	}
	return m, nil
}

// TrajectoryPoint is one observation epoch of a growth trajectory run.
type TrajectoryPoint struct {
	N, M      int
	Refreshed bool // measured through a delta refresh rather than a full freeze
	Stats     metrics.GrowthStats
}

// TrajectoryObserver drives incremental measurement along a growth
// trajectory: at every epoch it refreezes the live graph against the
// previous epoch's snapshot, advances a single metrics engine across
// the delta, and records the engine's growth-stat vector. After the
// run, the engine sits on the final snapshot with its delta-maintained
// metrics warm — final full measurement and validation reuse them.
type TrajectoryObserver struct {
	workers int
	prev    *graph.Snapshot
	eng     *engine.Engine
	points  []TrajectoryPoint
}

// NewTrajectoryObserver returns an observer measuring with the given
// engine pool width (<= 0 means GOMAXPROCS).
func NewTrajectoryObserver(workers int) *TrajectoryObserver {
	return &TrajectoryObserver{workers: workers}
}

// Observe implements gen.Trajectory.Observe.
func (o *TrajectoryObserver) Observe(g *graph.Graph, n int) error {
	var next *graph.Snapshot
	var d *graph.Delta
	var err error
	if o.prev == nil {
		if next, err = g.FreezeChecked(); err != nil {
			return err
		}
		o.eng = engine.New(next, engine.WithWorkers(o.workers))
	} else {
		if next, d, err = g.Refreeze(o.prev); err != nil {
			return err
		}
		if err = o.eng.Advance(next, d); err != nil {
			return err
		}
	}
	o.prev = next
	o.points = append(o.points, TrajectoryPoint{
		N:         next.N(),
		M:         next.M(),
		Refreshed: d != nil,
		Stats:     o.eng.MeasureGrowth(),
	})
	return nil
}

// Points returns the recorded epochs.
func (o *TrajectoryObserver) Points() []TrajectoryPoint { return o.points }

// Engine returns the metrics engine, positioned on the last observed
// snapshot (the completed topology once the run finished), or nil
// before the first observation.
func (o *TrajectoryObserver) Engine() *engine.Engine { return o.eng }

// WriteTrajectory renders trajectory epochs as aligned columns, the
// table the tools print in -measure-every mode. The refresh column
// marks epochs measured through a delta refresh ("delta") versus a
// full freeze ("full").
func WriteTrajectory(w io.Writer, points []TrajectoryPoint) error {
	if _, err := fmt.Fprintf(w, "%10s %10s %7s %7s %7s %8s %8s %5s %7s\n",
		"nodes", "edges", "<k>", "kmax", "gamma", "clust", "trans", "core", "freeze"); err != nil {
		return err
	}
	for _, p := range points {
		mode := "full"
		if p.Refreshed {
			mode = "delta"
		}
		if _, err := fmt.Fprintf(w, "%10d %10d %7.3f %7d %7.3f %8.4f %8.4f %5d %7s\n",
			p.N, p.M, p.Stats.AvgDegree, p.Stats.MaxDegree, p.Stats.Gamma,
			p.Stats.AvgClustering, p.Stats.Transitivity, p.Stats.MaxCore, mode); err != nil {
			return err
		}
	}
	return nil
}

// PipelineResult bundles the outputs of a full model run.
type PipelineResult struct {
	Model    string
	Topology *gen.Topology
	Snapshot metrics.Snapshot
	Report   *compare.Report
	// Trajectory holds the per-epoch growth observations when the
	// pipeline ran with MeasureEvery > 0 (one final entry for families
	// without a trajectory kernel), nil otherwise.
	Trajectory []TrajectoryPoint
}

// Pipeline configures a run.
type Pipeline struct {
	N           int            // target size
	Seed        uint64         // generation seed
	Target      refdata.Target // reference to validate against
	PathSources int            // BFS sampling for path metrics (0 = exact)
	// Workers sizes the pool for both stages: sharded generation (when
	// the family has a kernel; <= 1 runs the sequential reference) and
	// the metrics engine (<= 0 means GOMAXPROCS).
	Workers int
	// MeasureEvery > 0 switches trajectory mode on: growth models pause
	// every MeasureEvery committed nodes and the growing map is measured
	// through delta-refreshed snapshots (PipelineResult.Trajectory).
	MeasureEvery int
}

// Run generates the named model and validates it.
func (p Pipeline) Run(name string) (*PipelineResult, error) {
	m, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if p.N <= 0 {
		return nil, fmt.Errorf("core: pipeline needs a positive size, got %d", p.N)
	}
	r := rng.New(p.Seed)
	var (
		top        *gen.Topology
		eng        *engine.Engine
		trajectory []TrajectoryPoint
	)
	if p.MeasureEvery > 0 {
		// Trajectory mode: one engine advances along delta-refreshed
		// snapshots; the final epoch's warm engine then serves the full
		// measurement below.
		obs := NewTrajectoryObserver(p.Workers)
		top, err = gen.GenerateTrajectoryWith(m.Build(p.N), r, p.Workers,
			gen.Trajectory{Every: p.MeasureEvery, Observe: obs.Observe})
		if err != nil {
			return nil, fmt.Errorf("core: generating %s trajectory: %w", name, err)
		}
		eng = obs.Engine()
		trajectory = obs.Points()
	} else {
		top, err = gen.GenerateWith(m.Build(p.N), r, p.Workers)
		if err != nil {
			return nil, fmt.Errorf("core: generating %s: %w", name, err)
		}
		// Freeze once; measurement and validation share one engine so
		// the memoized whole-graph metrics (triangles, k-core, giant
		// component) are computed a single time.
		snap, err := top.G.FreezeChecked()
		if err != nil {
			return nil, fmt.Errorf("core: freezing %s: %w", name, err)
		}
		eng = engine.New(snap, engine.WithWorkers(p.Workers))
	}
	mr := rng.New(p.Seed + 1)
	snap, err := eng.Measure(mr, p.PathSources)
	if err != nil {
		return nil, fmt.Errorf("core: measuring %s: %w", name, err)
	}
	rep, err := compare.AgainstFrozen(eng, p.Target, compare.Options{PathSources: p.PathSources, Rand: rng.New(p.Seed + 2)})
	if err != nil {
		return nil, fmt.Errorf("core: comparing %s: %w", name, err)
	}
	return &PipelineResult{Model: name, Topology: top, Snapshot: snap, Report: rep, Trajectory: trajectory}, nil
}

// RunAll runs the pipeline for every registered model and returns the
// results keyed by name. Individual failures abort the sweep.
func (p Pipeline) RunAll() (map[string]*PipelineResult, error) {
	out := make(map[string]*PipelineResult, len(registry))
	for _, name := range Names() {
		res, err := p.Run(name)
		if err != nil {
			return nil, err
		}
		out[name] = res
	}
	return out, nil
}
