// Package artifact is the budgeted in-process cache of pipeline stage
// outputs: frozen snapshots, warm metric engines, routing state — the
// expensive intermediates a sweep rebuilds from scratch on every run
// even when consecutive runs share most of their topology cells. A
// Cache is content-keyed (the caller derives a canonical string from
// the inputs that determine the artifact), memory-budgeted (the caller
// declares each entry's byte cost; a single LRU list across all stages
// evicts the coldest entries when the budget is exceeded), and counts
// hits, misses and evictions per stage.
//
// Determinism contract: every operation mutates the cache under one
// mutex, and the LRU order, the eviction sequence and all counters are
// pure functions of the operation sequence — so callers that probe and
// commit sequentially (the sweep runner does both in grid order, outside
// its worker fan-out) observe identical stats and evictions at every
// worker count. The mutex also makes a shared cache safe for concurrent
// runs; mutable artifacts (routing state) must then be checked out
// exclusively with Take and returned with Put, never shared via Get.
package artifact

import "sync"

// Stats is a point-in-time snapshot of the cache counters, in stage
// registration order.
type Stats struct {
	// Budget echoes the configured byte budget (< 0 = unbounded).
	Budget int64 `json:"budget"`
	// Used is the declared byte total of the resident entries.
	Used int64 `json:"used"`
	// Entries is the resident entry count.
	Entries int `json:"entries"`
	// Stages are the per-stage counters, in registration order.
	Stages []StageStats `json:"stages"`
}

// StageStats are one stage's lifetime counters.
type StageStats struct {
	Stage string `json:"stage"`
	// Hits counts Get/Take probes that found a usable entry.
	Hits uint64 `json:"hits"`
	// Misses counts probes that found none — including forced misses
	// recorded with Miss when a dependent artifact was unusable.
	Misses uint64 `json:"misses"`
	// Evictions counts entries dropped under budget pressure, including
	// oversized entries rejected at Put.
	Evictions uint64 `json:"evictions"`
}

type ckey struct{ stage, key string }

// entry is one resident artifact on the intrusive LRU list.
type entry struct {
	ckey
	val        any
	bytes      int64
	prev, next *entry // LRU neighbors; head side is most recent
}

// Cache is the budgeted LRU artifact store. The zero value is not
// usable; construct with New. A nil *Cache is valid and inert: every
// probe misses without counting, every Put is a no-op — the "budget 0 =
// caching disabled" configuration.
type Cache struct {
	mu      sync.Mutex
	budget  int64 // < 0 = unbounded; always != 0 (New maps 0 to nil)
	used    int64
	entries map[ckey]*entry
	head    *entry // most recently used
	tail    *entry // least recently used
	stats   map[string]*StageStats
	order   []string
}

// New returns a cache holding at most budget declared bytes (< 0 =
// unbounded). A budget of 0 returns nil — the inert cache, so callers
// thread the configured value straight through without a disabled flag.
// Stage names registered here define the Stats order; unknown stages
// used later are appended in first-use order.
func New(budget int64, stages ...string) *Cache {
	if budget == 0 {
		return nil
	}
	c := &Cache{
		budget:  budget,
		entries: make(map[ckey]*entry),
		stats:   make(map[string]*StageStats),
	}
	for _, st := range stages {
		c.stage(st)
	}
	return c
}

// stage returns the counters of a stage, registering it on first use.
// Callers hold c.mu (or run before the cache is shared).
func (c *Cache) stage(name string) *StageStats {
	if s, ok := c.stats[name]; ok {
		return s
	}
	s := &StageStats{Stage: name}
	c.stats[name] = s
	c.order = append(c.order, name)
	return s
}

// detach unlinks e from the LRU list.
func (c *Cache) detach(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// push links e at the most-recently-used end.
func (c *Cache) push(e *entry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// remove drops e from the cache entirely.
func (c *Cache) remove(e *entry) {
	c.detach(e)
	delete(c.entries, e.ckey)
	c.used -= e.bytes
}

// Get returns the cached value under (stage, key) and refreshes its
// recency, or (nil, false) on a miss. Values returned by Get may be
// shared with other concurrent readers — only artifacts that are safe
// for concurrent use belong in Get/Put stages; use Take for mutable
// ones.
func (c *Cache) Get(stage, key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stage(stage)
	e, ok := c.entries[ckey{stage, key}]
	if !ok {
		st.Misses++
		return nil, false
	}
	st.Hits++
	c.detach(e)
	c.push(e)
	return e.val, true
}

// Take is the exclusive-checkout probe: a hit removes the entry and
// hands its value to the caller alone, so mutable artifacts are never
// shared between concurrent consumers. The caller returns the artifact
// with Put when done; the removal is a checkout, not an eviction, and
// does not count as one.
func (c *Cache) Take(stage, key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stage(stage)
	e, ok := c.entries[ckey{stage, key}]
	if !ok {
		st.Misses++
		return nil, false
	}
	st.Hits++
	c.remove(e)
	return e.val, true
}

// Miss records a forced miss: the stage's artifact was needed but could
// not be probed or used (e.g. routing state whose parent snapshot
// missed). Keeps the miss counters a pure function of the demand
// sequence rather than of which probes were expressible.
func (c *Cache) Miss(stage string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stage(stage).Misses++
}

// Put inserts (or replaces) the value under (stage, key) at the
// most-recent end, charging the declared byte cost, then evicts
// least-recently-used entries until the budget holds. An entry larger
// than the whole budget is rejected immediately and counted as an
// eviction of its stage.
func (c *Cache) Put(stage, key string, val any, bytes int64) {
	if c == nil {
		return
	}
	if bytes < 0 {
		bytes = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stage(stage)
	if e, ok := c.entries[ckey{stage, key}]; ok {
		c.remove(e)
	}
	if c.budget > 0 && bytes > c.budget {
		st.Evictions++
		return
	}
	e := &entry{ckey: ckey{stage, key}, val: val, bytes: bytes}
	c.entries[e.ckey] = e
	c.push(e)
	c.used += bytes
	if c.budget > 0 {
		for c.used > c.budget && c.tail != nil && c.tail != e {
			victim := c.tail
			c.stats[victim.stage].Evictions++
			c.remove(victim)
		}
	}
}

// Len returns the resident entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Used returns the declared byte total of the resident entries.
func (c *Cache) Used() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Stats returns a copy of the counters, stages in registration order.
// A nil cache returns the zero Stats.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := Stats{Budget: c.budget, Used: c.used, Entries: len(c.entries)}
	out.Stages = make([]StageStats, 0, len(c.order))
	for _, name := range c.order {
		out.Stages = append(out.Stages, *c.stats[name])
	}
	return out
}
