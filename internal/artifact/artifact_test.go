package artifact

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
)

func TestNilAndZeroBudgetAreInert(t *testing.T) {
	for _, c := range []*Cache{nil, New(0, "a")} {
		if c != nil {
			t.Fatalf("New(0) must return nil, got %v", c)
		}
		c.Put("a", "k", 1, 10)
		if _, ok := c.Get("a", "k"); ok {
			t.Fatal("nil cache must miss")
		}
		if _, ok := c.Take("a", "k"); ok {
			t.Fatal("nil cache must miss on Take")
		}
		c.Miss("a")
		if got := c.Stats(); !reflect.DeepEqual(got, Stats{}) {
			t.Fatalf("nil cache stats = %+v", got)
		}
		if c.Len() != 0 || c.Used() != 0 {
			t.Fatal("nil cache must be empty")
		}
	}
}

func TestGetPutAndCounters(t *testing.T) {
	c := New(-1, "snapshot", "engine")
	if _, ok := c.Get("snapshot", "k1"); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.Put("snapshot", "k1", "v1", 100)
	c.Put("engine", "k1", "v2", 50)
	if v, ok := c.Get("snapshot", "k1"); !ok || v != "v1" {
		t.Fatalf("Get = %v, %v", v, ok)
	}
	c.Miss("engine")
	got := c.Stats()
	want := Stats{Budget: -1, Used: 150, Entries: 2, Stages: []StageStats{
		{Stage: "snapshot", Hits: 1, Misses: 1},
		{Stage: "engine", Misses: 1},
	}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stats = %+v, want %+v", got, want)
	}
}

func TestReplaceAdjustsUsed(t *testing.T) {
	c := New(1000, "s")
	c.Put("s", "k", "v1", 400)
	c.Put("s", "k", "v2", 100)
	if c.Used() != 100 || c.Len() != 1 {
		t.Fatalf("used=%d len=%d after replace", c.Used(), c.Len())
	}
	if v, _ := c.Get("s", "k"); v != "v2" {
		t.Fatalf("Get = %v after replace", v)
	}
}

func TestTakeIsExclusiveCheckout(t *testing.T) {
	c := New(-1, "routing")
	c.Put("routing", "k", "rt", 10)
	if v, ok := c.Take("routing", "k"); !ok || v != "rt" {
		t.Fatalf("Take = %v, %v", v, ok)
	}
	if _, ok := c.Take("routing", "k"); ok {
		t.Fatal("second Take must miss")
	}
	st := c.Stats()
	if st.Used != 0 || st.Entries != 0 {
		t.Fatalf("taken entry still resident: %+v", st)
	}
	// A checkout is not an eviction.
	if ev := st.Stages[0].Evictions; ev != 0 {
		t.Fatalf("Take counted %d evictions", ev)
	}
}

// TestEvictionOrderDeterminism pins the LRU semantics: for a scripted
// operation sequence the eviction order is exactly the recency order,
// and replaying the script yields identical stats every time.
func TestEvictionOrderDeterminism(t *testing.T) {
	script := func() (*Cache, []string) {
		c := New(300, "s")
		var evicted []string
		// Wrap eviction observation via entry count differences: run the
		// script and record which keys disappear, in probe order.
		keys := []string{"a", "b", "c"}
		for _, k := range keys {
			c.Put("s", k, k, 100)
		}
		// Touch "a": recency order now b < c < a.
		c.Get("s", "a")
		// Inserting d (100) overflows by 100: b must go, then c stays.
		c.Put("s", "d", "d", 100)
		for _, k := range []string{"a", "b", "c", "d"} {
			if _, ok := c.entries[ckey{"s", k}]; !ok {
				evicted = append(evicted, k)
			}
		}
		return c, evicted
	}
	c1, ev1 := script()
	if !reflect.DeepEqual(ev1, []string{"b"}) {
		t.Fatalf("evicted %v, want [b]", ev1)
	}
	for i := 0; i < 5; i++ {
		c2, ev2 := script()
		if !reflect.DeepEqual(ev1, ev2) || !reflect.DeepEqual(c1.Stats(), c2.Stats()) {
			t.Fatalf("replay diverged: %v vs %v, %+v vs %+v", ev1, ev2, c1.Stats(), c2.Stats())
		}
	}
}

func TestOversizedEntryRejected(t *testing.T) {
	c := New(100, "s")
	c.Put("s", "big", "v", 101)
	if c.Len() != 0 {
		t.Fatal("oversized entry must not be resident")
	}
	if ev := c.Stats().Stages[0].Evictions; ev != 1 {
		t.Fatalf("oversized Put counted %d evictions, want 1", ev)
	}
	// An entry exactly at budget fits.
	c.Put("s", "fit", "v", 100)
	if c.Len() != 1 {
		t.Fatal("at-budget entry must fit")
	}
}

func TestEvictionNeverDropsFreshInsert(t *testing.T) {
	c := New(100, "s")
	c.Put("s", "a", "a", 60)
	c.Put("s", "b", "b", 60)
	if _, ok := c.Get("s", "b"); !ok {
		t.Fatal("fresh insert evicted")
	}
	if _, ok := c.Get("s", "a"); ok {
		t.Fatal("LRU survivor wrong")
	}
}

// TestConcurrentAccess exercises the mutex under -race: many goroutines
// mixing Get/Take/Put/Stats over overlapping keys.
func TestConcurrentAccess(t *testing.T) {
	c := New(1<<16, "snapshot", "engine", "routing")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stages := []string{"snapshot", "engine", "routing"}
			for i := 0; i < 500; i++ {
				st := stages[i%len(stages)]
				key := fmt.Sprintf("k%d", i%17)
				switch i % 4 {
				case 0:
					c.Put(st, key, g*1000+i, int64(64*(i%9)))
				case 1:
					c.Get(st, key)
				case 2:
					c.Take(st, key)
				default:
					c.Stats()
					c.Miss(st)
				}
			}
		}(g)
	}
	wg.Wait()
	if used, budget := c.Used(), int64(1<<16); used > budget {
		t.Fatalf("used %d exceeds budget %d after concurrent churn", used, budget)
	}
	st := c.Stats()
	if len(st.Stages) != 3 {
		t.Fatalf("stage registration order lost: %+v", st.Stages)
	}
}
