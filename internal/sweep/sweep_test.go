package sweep

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"netmodel/internal/core"
	"netmodel/internal/traffic"
)

// testGrid is the small grid the determinism and aggregation tests
// share: 2 models × 2 sizes × 3 seeds at trivial size.
func testGrid() Grid {
	return Grid{
		Models:      []string{"ba", "glp"},
		Sizes:       []int{200, 300},
		Seeds:       []uint64{1, 2, 3},
		PathSources: 30,
	}
}

func TestGridValidate(t *testing.T) {
	for name, g := range map[string]Grid{
		"empty":          {},
		"no sizes":       {Models: []string{"ba"}, Seeds: []uint64{1}},
		"bad model":      {Models: []string{"nope"}, Sizes: []int{100}, Seeds: []uint64{1}},
		"dup model":      {Models: []string{"ba", "ba"}, Sizes: []int{100}, Seeds: []uint64{1}},
		"bad size":       {Models: []string{"ba"}, Sizes: []int{0}, Seeds: []uint64{1}},
		"dup size":       {Models: []string{"ba"}, Sizes: []int{100, 100}, Seeds: []uint64{1}},
		"dup seed":       {Models: []string{"ba"}, Sizes: []int{100}, Seeds: []uint64{1, 1}},
		"stray params":   {Models: []string{"ba"}, Sizes: []int{100}, Seeds: []uint64{1}, Params: map[string]core.Params{"glp": {"m": 1}}},
		"unknown target": {Models: []string{"ba"}, Sizes: []int{100}, Seeds: []uint64{1}, Target: "x"},
	} {
		if err := g.Validate(); err == nil {
			t.Fatalf("%s: want validation error", name)
		}
	}
	if err := testGrid().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGridCellsOrder(t *testing.T) {
	g := testGrid()
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*3 {
		t.Fatalf("expanded %d cells, want 12", len(cells))
	}
	// Size-major, then model, then seed.
	idx := 0
	for _, n := range g.Sizes {
		for _, model := range g.Models {
			for _, seed := range g.Seeds {
				c := cells[idx]
				if c.Model != model || c.N != n || c.Seed != seed {
					t.Fatalf("cell %d = (%s, %d, %d), want (%s, %d, %d)",
						idx, c.Model, c.N, c.Seed, model, n, seed)
				}
				idx++
			}
		}
	}
}

func TestLoadGrid(t *testing.T) {
	spec := `{"models": ["ba", "glp"], "sizes": [500], "seeds": [1, 2],
		"params": {"glp": {"beta": 0.7}}, "path_sources": 50}`
	g, err := LoadGrid(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Models) != 2 || g.Params["glp"]["beta"] != 0.7 || g.PathSources != 50 {
		t.Fatalf("grid parsed wrong: %+v", g)
	}
	if _, err := LoadGrid(strings.NewReader(`{"modles": ["ba"]}`)); err == nil {
		t.Fatal("unknown field must fail")
	}
}

// TestSummaryByteIdenticalAcrossWorkers is the sweep determinism
// acceptance test: the same grid must produce byte-identical output —
// JSON encoding and rendered table alike — at every pool width.
func TestSummaryByteIdenticalAcrossWorkers(t *testing.T) {
	g := testGrid()
	var baseJSON []byte
	var baseText string
	for _, workers := range []int{1, 2, 4, 8} {
		s, err := Run(g, workers)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(s); err != nil {
			t.Fatal(err)
		}
		if baseJSON == nil {
			baseJSON, baseText = buf.Bytes(), s.String()
			continue
		}
		if !bytes.Equal(buf.Bytes(), baseJSON) {
			t.Fatalf("workers=%d: summary JSON diverged from workers=1", workers)
		}
		if s.String() != baseText {
			t.Fatalf("workers=%d: summary table diverged from workers=1", workers)
		}
	}
}

func TestSummaryAggregation(t *testing.T) {
	g := testGrid()
	s, err := Run(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cells) != 12 || len(s.Aggregates) != 4 || len(s.Rankings) != 2 {
		t.Fatalf("summary shape: %d cells, %d aggregates, %d rankings",
			len(s.Cells), len(s.Aggregates), len(s.Rankings))
	}
	// The aggregate score moments must match a direct fold of the cells.
	for _, a := range s.Aggregates {
		var sum, min, max float64
		min, max = math.Inf(1), math.Inf(-1)
		count := 0
		for _, c := range s.Cells {
			if c.Model != a.Model || c.N != a.N {
				continue
			}
			sum += c.Score
			min = math.Min(min, c.Score)
			max = math.Max(max, c.Score)
			count++
		}
		if count != a.Seeds || count != len(g.Seeds) {
			t.Fatalf("%s n=%d: %d seeds folded, want %d", a.Model, a.N, a.Seeds, len(g.Seeds))
		}
		if math.Abs(a.Score.Mean-sum/float64(count)) > 1e-12 ||
			a.Score.Min != min || a.Score.Max != max {
			t.Fatalf("%s n=%d: aggregate moments wrong: %+v", a.Model, a.N, a.Score)
		}
		if len(a.Metrics) != len(s.Cells[0].Report.Rows) {
			t.Fatalf("%s n=%d: %d metric aggregates, want %d",
				a.Model, a.N, len(a.Metrics), len(s.Cells[0].Report.Rows))
		}
	}
	// Each ranking orders its tier by ascending mean score.
	for _, r := range s.Rankings {
		means := make(map[string]float64)
		for _, a := range s.Aggregates {
			if a.N == r.N {
				means[a.Model] = a.Score.Mean
			}
		}
		if len(r.Models) != len(g.Models) {
			t.Fatalf("n=%d: ranking covers %d models", r.N, len(r.Models))
		}
		for i := 1; i < len(r.Models); i++ {
			if means[r.Models[i-1]] > means[r.Models[i]] {
				t.Fatalf("n=%d: ranking not sorted: %v with means %v", r.N, r.Models, means)
			}
		}
	}
}

// TestCellReproducibleInIsolation: any summary row re-runs bit-for-bit
// as a standalone cell — the property that makes sweep failures
// debuggable without re-running the grid.
func TestCellReproducibleInIsolation(t *testing.T) {
	g := testGrid()
	s, err := Run(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	pick := 7 // arbitrary interior cell
	res, err := core.RunCell(cells[pick])
	if err != nil {
		t.Fatal(err)
	}
	if res.Snapshot != s.Cells[pick].Snapshot || res.Report.Score != s.Cells[pick].Score {
		t.Fatalf("cell %d not reproducible in isolation:\n%+v\n%+v",
			pick, res.Snapshot, s.Cells[pick].Snapshot)
	}
}

// TestParamsChangeCells: per-model overrides reach the generators.
func TestParamsChangeCells(t *testing.T) {
	g := Grid{Models: []string{"ba"}, Sizes: []int{300}, Seeds: []uint64{5}, PathSources: 20}
	plain, err := Run(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Params = map[string]core.Params{"ba": {"m": 3}}
	tuned, err := Run(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if tuned.Cells[0].Snapshot.M <= plain.Cells[0].Snapshot.M {
		t.Fatalf("override m=3 did not densify: %d vs %d edges",
			tuned.Cells[0].Snapshot.M, plain.Cells[0].Snapshot.M)
	}
}

// workloadGrid is testGrid at one size with workload axes on top.
func workloadGrid() Grid {
	g := testGrid()
	g.Sizes = []int{200}
	g.Seeds = []uint64{1, 2}
	g.Workload = &WorkloadAxes{
		Spec:        traffic.WorkloadSpec{Epochs: 5},
		LoadFactors: []float64{0.3, 1.5},
		TailIndexes: []float64{1.3, 2.5},
	}
	return g
}

func TestWorkloadGridValidate(t *testing.T) {
	if err := workloadGrid().Validate(); err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string]func(*Grid){
		"no load factors": func(g *Grid) { g.Workload.LoadFactors = nil },
		"dup load factor": func(g *Grid) { g.Workload.LoadFactors = []float64{1, 1} },
		"dup tail":        func(g *Grid) { g.Workload.TailIndexes = []float64{1.5, 1.5} },
		"bad load factor": func(g *Grid) { g.Workload.LoadFactors = []float64{-1} },
		"bad combo":       func(g *Grid) { g.Workload.TailIndexes = []float64{0.5} }, // pareto tail <= 1
	} {
		g := workloadGrid()
		mut(&g)
		if err := g.Validate(); err == nil {
			t.Fatalf("%s: want validation error", name)
		}
	}
}

func TestWorkloadGridCellsOrder(t *testing.T) {
	g := workloadGrid()
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*1*4*2 {
		t.Fatalf("expanded %d cells, want 16", len(cells))
	}
	idx := 0
	for _, model := range g.Models {
		for _, lf := range g.Workload.LoadFactors {
			for _, ti := range g.Workload.TailIndexes {
				for _, seed := range g.Seeds {
					c := cells[idx]
					if c.Model != model || c.Seed != seed || c.Workload == nil ||
						c.Workload.LoadFactor != lf || c.Workload.TailIndex != ti {
						t.Fatalf("cell %d = (%s, seed %d, %+v), want (%s, %v, %v, seed %d)",
							idx, c.Model, c.Seed, c.Workload, model, lf, ti, seed)
					}
					idx++
				}
			}
		}
	}
}

func TestWorkloadSweepFoldsAndRanks(t *testing.T) {
	g := workloadGrid()
	s, err := Run(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Aggregates) != 2*4 {
		t.Fatalf("aggregates = %d, want 8", len(s.Aggregates))
	}
	wlNames := traffic.WorkloadMetricNames()
	for _, a := range s.Aggregates {
		if a.LoadFactor == 0 {
			t.Fatalf("aggregate %s missing load factor", a.Model)
		}
		for _, name := range wlNames {
			found := false
			for _, m := range a.Metrics {
				if m.Name == name {
					found = true
				}
			}
			if !found {
				t.Fatalf("aggregate missing workload metric %s", name)
			}
		}
	}
	// Every cell must carry its workload report and axis coordinates.
	for _, c := range s.Cells {
		if c.Workload == nil || c.LoadFactor == 0 {
			t.Fatalf("cell (%s seed %d) missing workload results", c.Model, c.Seed)
		}
	}
	// Rankings still rank the models once per size tier.
	if len(s.Rankings) != 1 || len(s.Rankings[0].Models) != 2 {
		t.Fatalf("rankings = %+v", s.Rankings)
	}
	// Higher load must not lower mean utilization for the same model/tail.
	var lo, hi *Aggregate
	for i := range s.Aggregates {
		a := &s.Aggregates[i]
		if a.Model == "ba" && a.TailIndex == 1.3 {
			if a.LoadFactor == 0.3 {
				lo = a
			} else {
				hi = a
			}
		}
	}
	if lo == nil || hi == nil {
		t.Fatal("missing ba aggregates")
	}
	if FindMetric(hi.Metrics, "wl_mean_util").Mean < FindMetric(lo.Metrics, "wl_mean_util").Mean {
		t.Fatalf("utilization fell as load rose: %v -> %v",
			FindMetric(lo.Metrics, "wl_mean_util").Mean, FindMetric(hi.Metrics, "wl_mean_util").Mean)
	}
	// Rendering mentions the workload axes.
	text := s.String()
	if !strings.Contains(text, "workload sweep") || !strings.Contains(text, "cross-seed workload aggregates") {
		t.Fatalf("summary text missing workload sections:\n%s", text)
	}
}

func TestWorkloadSweepByteIdenticalAcrossWorkers(t *testing.T) {
	g := workloadGrid()
	var base []byte
	for _, workers := range []int{1, 3, 8} {
		s, err := Run(g, workers)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = data
		} else if !bytes.Equal(base, data) {
			t.Fatalf("workers=%d workload summary diverged", workers)
		}
	}
}

func TestWorkloadJSONGridRoundTrip(t *testing.T) {
	spec := `{"models": ["ba"], "sizes": [200], "seeds": [1],
		"workload": {"spec": {"arrivals": "onoff", "sizes": "lognormal", "epochs": 4},
		             "load_factors": [0.5, 1], "tail_indexes": [0.8]}}`
	g, err := LoadGrid(strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	if g.Workload == nil || g.Workload.Spec.Arrivals != "onoff" || len(g.Workload.LoadFactors) != 2 {
		t.Fatalf("grid = %+v", g)
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(cells))
	}
}

// TestWorkloadSharedTopologyMatchesPerComboCells pins the optimization
// contract of runWorkloadGrid: sharing one topology across the (load,
// tail) combos must reproduce, bit for bit, the summary of running one
// full cell per combo.
func TestWorkloadSharedTopologyMatchesPerComboCells(t *testing.T) {
	g := workloadGrid()
	shared, err := Run(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	cells, err := g.Cells()
	if err != nil {
		t.Fatal(err)
	}
	results, err := core.RunCells(cells, 2)
	if err != nil {
		t.Fatal(err)
	}
	perCombo, err := fold(g, cells, results)
	if err != nil {
		t.Fatal(err)
	}
	sj, err := json.Marshal(shared)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(perCombo)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, pj) {
		t.Fatal("shared-topology workload sweep diverged from per-combo cells")
	}
}

// failureGrid is workloadGrid with a failure axis: one undisturbed
// baseline plus a random-outage scenario, at one load and tail each.
func failureGrid() Grid {
	g := workloadGrid()
	g.Workload.LoadFactors = []float64{0.6}
	g.Workload.TailIndexes = []float64{1.3}
	g.Workload.Failures = []traffic.FailureSpec{
		{Mode: traffic.FailNone},
		{Mode: traffic.FailRandom, Links: 3, MTBF: 4, MTTR: 2, MaxRetries: 1},
	}
	return g
}

// TestFailureAxisSweep pins the failure axis end to end: the grid
// crosses it into the combos, cells carry scenario labels and
// survivability reports, the summary is byte-identical at every pool
// width, and the baseline scenario stays failure-free.
func TestFailureAxisSweep(t *testing.T) {
	g := failureGrid()
	if got := len(g.workloadSpecs()); got != 2 {
		t.Fatalf("workload combos = %d, want 2", got)
	}
	var base []byte
	var s *Summary
	for _, workers := range []int{1, 4} {
		run, err := Run(g, workers)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(run)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base, s = data, run
		} else if !bytes.Equal(base, data) {
			t.Fatalf("workers=%d failure sweep diverged", workers)
		}
	}
	sawBaseline, sawOutage := false, false
	for _, c := range s.Cells {
		switch c.Failure {
		case "none":
			sawBaseline = true
			if c.Workload.Failures != nil {
				t.Fatal("baseline scenario must not carry a survivability report")
			}
		case "random:l3,n0,mtbf4,mttr2":
			sawOutage = true
			if c.Workload.Failures == nil || c.Workload.Failures.LinksFailed == 0 {
				t.Fatalf("outage scenario missing survivability data: %+v", c.Workload.Failures)
			}
		default:
			t.Fatalf("unexpected failure label %q", c.Failure)
		}
	}
	if !sawBaseline || !sawOutage {
		t.Fatalf("scenario coverage incomplete: baseline=%v outage=%v", sawBaseline, sawOutage)
	}
	for _, a := range s.Aggregates {
		if a.Failure == "" {
			t.Fatal("aggregates must carry the failure label")
		}
	}
}

// TestFailureAxisValidate checks the failure-axis rejections: ambiguous
// duplicate scenario labels and invalid specs fail loudly.
func TestFailureAxisValidate(t *testing.T) {
	g := failureGrid()
	g.Workload.Failures = append(g.Workload.Failures, traffic.FailureSpec{Mode: traffic.FailNone})
	if err := g.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate failure scenario") {
		t.Fatalf("duplicate scenario: err = %v", err)
	}
	g = failureGrid()
	g.Workload.Failures[1].MTBF = -1
	if err := g.Validate(); err == nil {
		t.Fatal("invalid failure spec must fail grid validation")
	}
}
