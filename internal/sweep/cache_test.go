package sweep

import (
	"bytes"
	"encoding/json"
	"reflect"
	"sync"
	"testing"

	"netmodel/internal/artifact"
	"netmodel/internal/core"
)

// summaryBytes renders a summary the way graphio.WriteSweepJSON does
// (indented JSON) — the representation the byte-identity properties
// below are stated over. Cache diagnostics are stripped first: the
// properties compare what the sweep computed, not how the computation
// was amortized.
func summaryBytes(t *testing.T, s *Summary) []byte {
	t.Helper()
	clean := *s
	clean.Cache = nil
	data, err := json.MarshalIndent(&clean, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// cacheBudgets are the three regimes every identity property sweeps:
// disabled, tiny (a budget smaller than one topology artifact at these
// sizes, forcing evictions on every commit), and unbounded.
var cacheBudgets = []int64{0, 32 << 10, -1}

// TestCachedSweepByteIdentical pins the tentpole contract: for both a
// plain grid and a workload grid, the summary is byte-identical across
// every (worker count × cache budget) combination, including the
// cache-disabled baseline.
func TestCachedSweepByteIdentical(t *testing.T) {
	for name, g := range map[string]Grid{"plain": testGrid(), "workload": workloadGrid()} {
		t.Run(name, func(t *testing.T) {
			base, err := Run(g, 1)
			if err != nil {
				t.Fatal(err)
			}
			want := summaryBytes(t, base)
			for _, workers := range []int{1, 2, 4, 8} {
				for _, budget := range cacheBudgets {
					s, err := RunWith(g, Options{Workers: workers, Cache: core.NewArtifactCache(budget), CacheStats: true})
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(want, summaryBytes(t, s)) {
						t.Fatalf("workers=%d budget=%d: summary diverged from cache-disabled baseline",
							workers, budget)
					}
				}
			}
		})
	}
}

// TestWarmCacheRerunByteIdentical pins cross-sweep reuse: a second run
// over a shared unbounded cache hits every stage and still reproduces
// the cold summary byte for byte.
func TestWarmCacheRerunByteIdentical(t *testing.T) {
	g := workloadGrid()
	ac := core.NewArtifactCache(-1)
	cold, err := RunWith(g, Options{Workers: 2, Cache: ac, CacheStats: true})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := RunWith(g, Options{Workers: 2, Cache: ac, CacheStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(summaryBytes(t, cold), summaryBytes(t, warm)) {
		t.Fatal("warm rerun diverged from cold run")
	}
	groups := len(g.Sizes) * len(g.Models) * len(g.Seeds)
	st := warm.Cache
	if st == nil {
		t.Fatal("CacheStats requested but Summary.Cache is nil")
	}
	for _, stage := range st.Stages {
		if got := stage.Hits; got != uint64(groups) {
			t.Fatalf("stage %s: %d hits after warm rerun, want %d (one per topology group)",
				stage.Stage, got, groups)
		}
	}
	// Cold stats attached to the first summary must show pure misses.
	if cold.Cache.Stages[0].Hits != 0 || cold.Cache.Stages[0].Misses != uint64(groups) {
		t.Fatalf("cold run counters = %+v", cold.Cache.Stages[0])
	}
}

// TestCacheStatsDeterministic pins the counter determinism contract:
// for a fixed grid and budget, the full Stats block — hits, misses,
// evictions, bytes used, resident entries — is identical at every
// worker count and across repeated fresh runs, because probes and
// commits are sequential passes in group order.
func TestCacheStatsDeterministic(t *testing.T) {
	g := workloadGrid()
	for _, budget := range cacheBudgets[1:] { // stats need a live cache
		var want *artifact.Stats
		for _, workers := range []int{1, 2, 4, 8, 1} {
			s, err := RunWith(g, Options{Workers: workers, Cache: core.NewArtifactCache(budget), CacheStats: true})
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = s.Cache
			} else if !reflect.DeepEqual(want, s.Cache) {
				t.Fatalf("budget=%d workers=%d: stats diverged:\n%+v\n%+v",
					budget, workers, want, s.Cache)
			}
		}
	}
}

// TestTinyBudgetForcesEvictions sanity-checks the tiny regime really
// exercises eviction: with a budget below one topology artifact, every
// commit evicts and a rerun cannot hit.
func TestTinyBudgetForcesEvictions(t *testing.T) {
	g := testGrid()
	ac := core.NewArtifactCache(cacheBudgets[1])
	s, err := RunWith(g, Options{Workers: 2, Cache: ac, CacheStats: true})
	if err != nil {
		t.Fatal(err)
	}
	var evictions uint64
	for _, stage := range s.Cache.Stages {
		evictions += stage.Evictions
	}
	if evictions == 0 {
		t.Fatalf("tiny budget evicted nothing: %+v", s.Cache)
	}
	if used, budget := ac.Used(), cacheBudgets[1]; used > budget {
		t.Fatalf("used %d exceeds budget %d", used, budget)
	}
}

// TestConcurrentSweepsSharedCache runs two sweeps concurrently over one
// cache (the toposerve-style usage) and checks both still reproduce the
// baseline byte for byte. Run under -race this also proves the cache
// and the exclusively-checked-out routing artifacts are data-race-free.
func TestConcurrentSweepsSharedCache(t *testing.T) {
	g := workloadGrid()
	base, err := Run(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := summaryBytes(t, base)
	ac := core.NewArtifactCache(-1)
	var wg sync.WaitGroup
	outs := make([]*Summary, 4)
	errs := make([]error, 4)
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = RunWith(g, Options{Workers: 2, Cache: ac})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, summaryBytes(t, outs[i])) {
			t.Fatalf("concurrent run %d diverged from baseline", i)
		}
	}
}

// TestDefaultSummaryEncodingUnchanged pins backwards compatibility of
// the wire format: without cache stats or duplicates the new Summary
// fields must vanish from the JSON encoding entirely.
func TestDefaultSummaryEncodingUnchanged(t *testing.T) {
	s, err := Run(testGrid(), 2)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"duplicate_cells", "\"cache\""} {
		if bytes.Contains(data, []byte(field)) {
			t.Fatalf("default summary encoding leaks %s", field)
		}
	}
}
