// Package sweep is the parameter-sweep subsystem: it expands a
// (model × size × seed) grid — optionally with per-model parameter
// overrides — into pipeline cells, fans the cells out across a worker
// pool, and folds the per-cell comparison reports into cross-seed
// aggregates and per-size-tier rankings. This is the many-maps workload
// of the generator-validation literature: no conclusion about a model
// family rests on a single seed, so every evaluation sweeps the axes
// first and reports moments across the replicas.
//
// Determinism contract: every cell draws exclusively from streams split
// off its own seed (core.RunCell), cells merge by grid index, and the
// aggregation pass is sequential — so a Summary is a pure function of
// the Grid, bit-identical at every pool width, and any single cell can
// be reproduced in isolation from its row in the summary.
package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"netmodel/internal/compare"
	"netmodel/internal/core"
	"netmodel/internal/metrics"
	"netmodel/internal/refdata"
	"netmodel/internal/stats"
)

// Grid specifies a sweep: the cross product of Models × Sizes × Seeds,
// validated against one reference target. It is the JSON wire format of
// `toposweep -grid`.
type Grid struct {
	// Models are registry names; every model runs at every size and seed.
	Models []string `json:"models"`
	// Sizes are target node counts — the size tiers of the summary.
	Sizes []int `json:"sizes"`
	// Seeds are the replicate seeds aggregated over per (model, size).
	Seeds []uint64 `json:"seeds"`
	// Params optionally overrides a family's default parameterization,
	// keyed by model name (which must appear in Models).
	Params map[string]core.Params `json:"params,omitempty"`
	// Target names the reference map: "as" (default) or "asplus".
	Target string `json:"target,omitempty"`
	// PathSources caps BFS roots for path statistics (0 = exact).
	PathSources int `json:"path_sources,omitempty"`
	// CellWorkers sizes each cell's internal generation/engine pool.
	// Leave at the zero default (sequential generation) when the sweep
	// itself runs cells in parallel; the sweep pool width never changes
	// results, but CellWorkers >= 2 switches generation to the sharded
	// kernels, which produce different (equally valid) maps.
	CellWorkers int `json:"cell_workers,omitempty"`
	// MeasureEvery > 0 records a growth trajectory per cell (growth
	// families) every that many committed nodes.
	MeasureEvery int `json:"measure_every,omitempty"`
}

// LoadGrid decodes a JSON grid specification, rejecting unknown fields
// so a typo fails loudly instead of silently sweeping defaults.
func LoadGrid(r io.Reader) (Grid, error) {
	var g Grid
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("sweep: parsing grid: %w", err)
	}
	return g, nil
}

// target resolves the named reference map.
func (g Grid) target() (refdata.Target, error) {
	switch g.Target {
	case "", "as":
		return refdata.ASMap2001, nil
	case "asplus":
		return refdata.ASPlusMap2001, nil
	}
	return refdata.Target{}, fmt.Errorf("sweep: unknown target %q (have as, asplus)", g.Target)
}

// Validate checks the grid axes: non-empty, no duplicates (a duplicate
// axis value would run identical cells and silently bias the moments),
// every model registered, every override keyed by a swept model.
func (g Grid) Validate() error {
	if len(g.Models) == 0 || len(g.Sizes) == 0 || len(g.Seeds) == 0 {
		return fmt.Errorf("sweep: grid needs models, sizes and seeds (got %d×%d×%d)",
			len(g.Models), len(g.Sizes), len(g.Seeds))
	}
	models := make(map[string]bool, len(g.Models))
	for _, m := range g.Models {
		if _, err := core.Lookup(m); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if models[m] {
			return fmt.Errorf("sweep: duplicate model %q", m)
		}
		models[m] = true
	}
	sizes := make(map[int]bool, len(g.Sizes))
	for _, n := range g.Sizes {
		if n <= 0 {
			return fmt.Errorf("sweep: sizes must be positive, got %d", n)
		}
		if sizes[n] {
			return fmt.Errorf("sweep: duplicate size %d", n)
		}
		sizes[n] = true
	}
	seeds := make(map[uint64]bool, len(g.Seeds))
	for _, s := range g.Seeds {
		if seeds[s] {
			return fmt.Errorf("sweep: duplicate seed %d", s)
		}
		seeds[s] = true
	}
	for m := range g.Params {
		if !models[m] {
			return fmt.Errorf("sweep: params for %q, which is not a swept model", m)
		}
	}
	if _, err := g.target(); err != nil {
		return err
	}
	return nil
}

// Cells expands the grid into pipeline cells in the canonical order:
// size-major, then model, then seed — so each size tier's cells are
// contiguous and the cell at (si, mi, ki) has index
// (si*len(Models)+mi)*len(Seeds)+ki.
func (g Grid) Cells() ([]core.Cell, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	tgt, err := g.target()
	if err != nil {
		return nil, err
	}
	// The zero default means fully sequential cells — the sweep pool is
	// the only parallelism. (Cell.Workers <= 0 would otherwise hand the
	// metrics engine GOMAXPROCS workers per cell and oversubscribe.)
	cellWorkers := g.CellWorkers
	if cellWorkers <= 0 {
		cellWorkers = 1
	}
	cells := make([]core.Cell, 0, len(g.Models)*len(g.Sizes)*len(g.Seeds))
	for _, n := range g.Sizes {
		for _, model := range g.Models {
			for _, seed := range g.Seeds {
				cells = append(cells, core.Cell{
					Model:        model,
					N:            n,
					Seed:         seed,
					Params:       g.Params[model],
					Target:       tgt,
					PathSources:  g.PathSources,
					Workers:      cellWorkers,
					MeasureEvery: g.MeasureEvery,
				})
			}
		}
	}
	return cells, nil
}

// CellResult is one grid cell's outcome: the cell coordinates plus the
// full comparison report and metric vector, and the growth trajectory
// when the grid swept with MeasureEvery.
type CellResult struct {
	Model      string                 `json:"model"`
	N          int                    `json:"n"`
	Seed       uint64                 `json:"seed"`
	Score      float64                `json:"score"`
	Report     *compare.Report        `json:"report"`
	Snapshot   metrics.Snapshot       `json:"snapshot"`
	Trajectory []core.TrajectoryPoint `json:"trajectory,omitempty"`
}

// MetricAggregate is the cross-seed distribution of one metric.
type MetricAggregate struct {
	Name string  `json:"name"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Aggregate is the cross-seed summary of one (model, size) cell group:
// moments of the aggregate score and of every measured metric.
type Aggregate struct {
	Model   string            `json:"model"`
	N       int               `json:"n"`
	Seeds   int               `json:"seeds"`
	Score   MetricAggregate   `json:"score"`
	Metrics []MetricAggregate `json:"metrics"`
}

// Ranking orders the swept models within one size tier by ascending
// cross-seed mean score (best statistical match first).
type Ranking struct {
	N      int      `json:"n"`
	Models []string `json:"models"`
}

// Summary is the folded outcome of a sweep: per-cell reports in grid
// order, cross-seed aggregates per (size, model), and a ranking per
// size tier.
type Summary struct {
	Target     string       `json:"target"`
	Grid       Grid         `json:"grid"`
	Cells      []CellResult `json:"cells"`
	Aggregates []Aggregate  `json:"aggregates"`
	Rankings   []Ranking    `json:"rankings"`
}

// Run expands the grid, executes every cell across a pool of the given
// width (<= 0 means GOMAXPROCS) and folds the results. The returned
// Summary is bit-identical at every pool width.
func Run(g Grid, workers int) (*Summary, error) {
	cells, err := g.Cells()
	if err != nil {
		return nil, err
	}
	results, err := core.RunCells(cells, workers)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	return fold(g, cells, results)
}

// fold reduces the per-cell results into the summary. It runs on one
// goroutine in grid order, so the reduction adds no scheduling freedom.
func fold(g Grid, cells []core.Cell, results []*core.PipelineResult) (*Summary, error) {
	tgt, err := g.target()
	if err != nil {
		return nil, err
	}
	s := &Summary{Target: tgt.Name, Grid: g, Cells: make([]CellResult, len(cells))}
	for i, res := range results {
		s.Cells[i] = CellResult{
			Model:      cells[i].Model,
			N:          cells[i].N,
			Seed:       cells[i].Seed,
			Score:      res.Report.Score,
			Report:     res.Report,
			Snapshot:   res.Snapshot,
			Trajectory: res.Trajectory,
		}
	}
	nm, ns := len(g.Models), len(g.Seeds)
	for si, n := range g.Sizes {
		scores := make(map[string]float64, nm)
		for mi, model := range g.Models {
			group := s.Cells[(si*nm+mi)*ns : (si*nm+mi)*ns+ns]
			agg := aggregate(model, n, group)
			s.Aggregates = append(s.Aggregates, agg)
			scores[model] = agg.Score.Mean
		}
		s.Rankings = append(s.Rankings, Ranking{N: n, Models: compare.RankScores(scores)})
	}
	return s, nil
}

// aggregate folds one (model, size) group's per-seed reports through
// streaming moments: the aggregate score plus every report row's
// measured value. Row order is fixed by compare.Score, so the metric
// list is identical across cells and the fold is positional.
func aggregate(model string, n int, group []CellResult) Aggregate {
	agg := Aggregate{Model: model, N: n, Seeds: len(group)}
	var score stats.Moments
	rows := make([]stats.Moments, len(group[0].Report.Rows))
	for _, c := range group {
		score.Add(c.Score)
		for ri, row := range c.Report.Rows {
			rows[ri].Add(row.Measured)
		}
	}
	agg.Score = metricAggregate("score", &score)
	for ri, row := range group[0].Report.Rows {
		agg.Metrics = append(agg.Metrics, metricAggregate(row.Name, &rows[ri]))
	}
	return agg
}

func metricAggregate(name string, m *stats.Moments) MetricAggregate {
	return MetricAggregate{Name: name, Mean: m.Mean(), Std: m.Std(), Min: m.Min(), Max: m.Max()}
}

// String renders the summary as the text the toposweep tool prints:
// the per-cell score table followed by, per size tier, the models
// ranked by cross-seed mean score with std and range.
func (s *Summary) String() string {
	var b strings.Builder
	g := s.Grid
	fmt.Fprintf(&b, "sweep against %s: %d models × %d sizes × %d seeds = %d cells\n",
		s.Target, len(g.Models), len(g.Sizes), len(g.Seeds), len(s.Cells))
	fmt.Fprintf(&b, "\n%-12s %8s %8s %8s\n", "model", "n", "seed", "score")
	for _, c := range s.Cells {
		fmt.Fprintf(&b, "%-12s %8d %8d %7.1f%%\n", c.Model, c.N, c.Seed, 100*c.Score)
	}
	byModel := make(map[int]map[string]Aggregate, len(g.Sizes))
	for _, a := range s.Aggregates {
		if byModel[a.N] == nil {
			byModel[a.N] = make(map[string]Aggregate, len(g.Models))
		}
		byModel[a.N][a.Model] = a
	}
	for _, r := range s.Rankings {
		fmt.Fprintf(&b, "\ncross-seed score at n=%d (mean ± std [min, max], %d seeds)\n",
			r.N, len(g.Seeds))
		for rank, model := range r.Models {
			a := byModel[r.N][model]
			fmt.Fprintf(&b, "%2d. %-12s %6.1f%% ± %4.1f%%  [%5.1f%%, %5.1f%%]\n",
				rank+1, model, 100*a.Score.Mean, 100*a.Score.Std, 100*a.Score.Min, 100*a.Score.Max)
		}
	}
	return b.String()
}
