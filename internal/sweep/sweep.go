// Package sweep is the parameter-sweep subsystem: it expands a
// (model × size × seed) grid — optionally with per-model parameter
// overrides — into pipeline cells, fans the cells out across a worker
// pool, and folds the per-cell comparison reports into cross-seed
// aggregates and per-size-tier rankings. This is the many-maps workload
// of the generator-validation literature: no conclusion about a model
// family rests on a single seed, so every evaluation sweeps the axes
// first and reports moments across the replicas.
//
// Determinism contract: every cell draws exclusively from streams split
// off its own seed (core.RunCell), cells merge by grid index, and the
// aggregation pass is sequential — so a Summary is a pure function of
// the Grid, bit-identical at every pool width, and any single cell can
// be reproduced in isolation from its row in the summary.
package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"netmodel/internal/artifact"
	"netmodel/internal/compare"
	"netmodel/internal/core"
	"netmodel/internal/metrics"
	"netmodel/internal/refdata"
	"netmodel/internal/stats"
	"netmodel/internal/traffic"
)

// WorkloadAxes extend a grid with the flow-level traffic stage: every
// cell additionally simulates the base Spec at each (load factor, tail
// index) pair, making workload pressure and size-tail heaviness sweep
// axes next to model, size and seed. LoadFactors is required;
// TailIndexes defaults to the base spec's tail index.
type WorkloadAxes struct {
	// Spec is the base workload; its LoadFactor and TailIndex are
	// overridden by the axes below.
	Spec traffic.WorkloadSpec `json:"spec"`
	// LoadFactors are the swept offered-load levels (spec.LoadFactor).
	LoadFactors []float64 `json:"load_factors"`
	// TailIndexes are the swept flow-size tail indexes (spec.TailIndex);
	// empty means the base spec's value.
	TailIndexes []float64 `json:"tail_indexes,omitempty"`
	// Failures are the swept failure scenarios (spec.Failures), crossed
	// with the load and tail axes; empty means the base spec's failure
	// configuration (usually none). Include a {"mode": "none"} entry to
	// keep an undisturbed baseline next to the outage scenarios.
	Failures []traffic.FailureSpec `json:"failures,omitempty"`
}

// Grid specifies a sweep: the cross product of Models × Sizes × Seeds,
// validated against one reference target. It is the JSON wire format of
// `toposweep -grid`.
type Grid struct {
	// Models are registry names; every model runs at every size and seed.
	Models []string `json:"models"`
	// Sizes are target node counts — the size tiers of the summary.
	Sizes []int `json:"sizes"`
	// Seeds are the replicate seeds aggregated over per (model, size).
	Seeds []uint64 `json:"seeds"`
	// Params optionally overrides a family's default parameterization,
	// keyed by model name (which must appear in Models).
	Params map[string]core.Params `json:"params,omitempty"`
	// Target names the reference map: "as" (default) or "asplus".
	Target string `json:"target,omitempty"`
	// PathSources caps BFS roots for path statistics (0 = exact).
	PathSources int `json:"path_sources,omitempty"`
	// CellWorkers sizes each cell's internal generation/engine pool.
	// Leave at the zero default (sequential generation) when the sweep
	// itself runs cells in parallel; the sweep pool width never changes
	// results, but CellWorkers >= 2 switches generation to the sharded
	// kernels, which produce different (equally valid) maps.
	CellWorkers int `json:"cell_workers,omitempty"`
	// MeasureEvery > 0 records a growth trajectory per cell (growth
	// families) every that many committed nodes.
	MeasureEvery int `json:"measure_every,omitempty"`
	// TrajectoryPaths adds the incremental distance family (path
	// lengths, diameter, closeness) to every trajectory observation;
	// PathSources sizes the pivot sample (0 = exact). Requires
	// MeasureEvery > 0.
	TrajectoryPaths bool `json:"trajectory_paths,omitempty"`
	// Workload, when non-nil, adds the flow-level traffic stage and its
	// (load factor × tail index) axes to the grid.
	Workload *WorkloadAxes `json:"workload,omitempty"`
}

// LoadGrid decodes a JSON grid specification, rejecting unknown fields
// so a typo fails loudly instead of silently sweeping defaults.
func LoadGrid(r io.Reader) (Grid, error) {
	var g Grid
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("sweep: parsing grid: %w", err)
	}
	return g, nil
}

// target resolves the named reference map.
func (g Grid) target() (refdata.Target, error) {
	switch g.Target {
	case "", "as":
		return refdata.ASMap2001, nil
	case "asplus":
		return refdata.ASPlusMap2001, nil
	}
	return refdata.Target{}, fmt.Errorf("sweep: unknown target %q (have as, asplus)", g.Target)
}

// Validate checks the grid axes: non-empty, no duplicates (a duplicate
// axis value would run identical cells and silently bias the moments),
// every model registered, every override keyed by a swept model.
func (g Grid) Validate() error {
	if len(g.Models) == 0 || len(g.Sizes) == 0 || len(g.Seeds) == 0 {
		return fmt.Errorf("sweep: grid needs models, sizes and seeds (got %d×%d×%d)",
			len(g.Models), len(g.Sizes), len(g.Seeds))
	}
	models := make(map[string]bool, len(g.Models))
	for _, m := range g.Models {
		if _, err := core.Lookup(m); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
		if models[m] {
			return fmt.Errorf("sweep: duplicate model %q", m)
		}
		models[m] = true
	}
	sizes := make(map[int]bool, len(g.Sizes))
	for _, n := range g.Sizes {
		if n <= 0 {
			return fmt.Errorf("sweep: sizes must be positive, got %d", n)
		}
		if sizes[n] {
			return fmt.Errorf("sweep: duplicate size %d", n)
		}
		sizes[n] = true
	}
	seeds := make(map[uint64]bool, len(g.Seeds))
	for _, s := range g.Seeds {
		if seeds[s] {
			return fmt.Errorf("sweep: duplicate seed %d", s)
		}
		seeds[s] = true
	}
	for m := range g.Params {
		if !models[m] {
			return fmt.Errorf("sweep: params for %q, which is not a swept model", m)
		}
	}
	if g.TrajectoryPaths && g.MeasureEvery <= 0 {
		return fmt.Errorf("sweep: trajectory_paths requires measure_every > 0")
	}
	if g.Workload != nil {
		if len(g.Workload.LoadFactors) == 0 {
			return fmt.Errorf("sweep: workload axes need at least one load factor")
		}
		lfs := make(map[float64]bool, len(g.Workload.LoadFactors))
		for _, lf := range g.Workload.LoadFactors {
			if lfs[lf] {
				return fmt.Errorf("sweep: duplicate load factor %v", lf)
			}
			lfs[lf] = true
		}
		tails := make(map[float64]bool, len(g.Workload.TailIndexes))
		for _, ti := range g.Workload.TailIndexes {
			if tails[ti] {
				return fmt.Errorf("sweep: duplicate tail index %v", ti)
			}
			tails[ti] = true
		}
		labels := make(map[string]bool, len(g.Workload.Failures))
		for _, fs := range g.Workload.Failures {
			label := fs.Label()
			if labels[label] {
				return fmt.Errorf("sweep: duplicate failure scenario %q", label)
			}
			labels[label] = true
		}
		// Every swept combination must be a valid spec on its own.
		for _, sp := range g.workloadSpecs() {
			if err := sp.Validate(); err != nil {
				return fmt.Errorf("sweep: %w", err)
			}
		}
	}
	if _, err := g.target(); err != nil {
		return err
	}
	return nil
}

// workloadSpecs expands the workload axes into one spec per (load
// factor, tail index, failure scenario) triple in axis order, or the
// single nil spec when the grid has no workload stage — the degenerate
// combo that keeps the cell expansion and fold uniform.
func (g Grid) workloadSpecs() []*traffic.WorkloadSpec {
	if g.Workload == nil {
		return []*traffic.WorkloadSpec{nil}
	}
	tails := g.Workload.TailIndexes
	if len(tails) == 0 {
		tails = []float64{g.Workload.Spec.TailIndex}
	}
	fails := []*traffic.FailureSpec{g.Workload.Spec.Failures}
	if len(g.Workload.Failures) > 0 {
		fails = fails[:0]
		for i := range g.Workload.Failures {
			fails = append(fails, &g.Workload.Failures[i])
		}
	}
	out := make([]*traffic.WorkloadSpec, 0, len(g.Workload.LoadFactors)*len(tails)*len(fails))
	for _, lf := range g.Workload.LoadFactors {
		for _, ti := range tails {
			for _, fs := range fails {
				sp := g.Workload.Spec
				sp.LoadFactor = lf
				sp.TailIndex = ti
				sp.Failures = fs
				out = append(out, &sp)
			}
		}
	}
	return out
}

// Cells expands the grid into pipeline cells in the canonical order:
// size-major, then model, then workload combo (load factor × tail
// index; a single degenerate combo without workload axes), then seed —
// so every cross-seed group is contiguous and the cell at
// (si, mi, wi, ki) has index ((si*len(Models)+mi)*len(combos)+wi)*len(Seeds)+ki.
func (g Grid) Cells() ([]core.Cell, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	tgt, err := g.target()
	if err != nil {
		return nil, err
	}
	// The zero default means fully sequential cells — the sweep pool is
	// the only parallelism. (Cell.Workers <= 0 would otherwise hand the
	// metrics engine GOMAXPROCS workers per cell and oversubscribe.)
	cellWorkers := g.CellWorkers
	if cellWorkers <= 0 {
		cellWorkers = 1
	}
	combos := g.workloadSpecs()
	cells := make([]core.Cell, 0, len(g.Models)*len(g.Sizes)*len(combos)*len(g.Seeds))
	for _, n := range g.Sizes {
		for _, model := range g.Models {
			for _, wl := range combos {
				for _, seed := range g.Seeds {
					cells = append(cells, core.Cell{
						Model:           model,
						N:               n,
						Seed:            seed,
						Params:          g.Params[model],
						Target:          tgt,
						PathSources:     g.PathSources,
						Workers:         cellWorkers,
						MeasureEvery:    g.MeasureEvery,
						TrajectoryPaths: g.TrajectoryPaths,
						Workload:        wl,
					})
				}
			}
		}
	}
	return cells, nil
}

// CellResult is one grid cell's outcome: the cell coordinates plus the
// full comparison report and metric vector, and the growth trajectory
// when the grid swept with MeasureEvery.
type CellResult struct {
	Model string `json:"model"`
	N     int    `json:"n"`
	Seed  uint64 `json:"seed"`
	// LoadFactor and TailIndex are the cell's workload-axis coordinates
	// when the grid sweeps a workload, zero otherwise; Failure labels the
	// cell's failure scenario (traffic.FailureSpec.Label) when the spec
	// carries one, empty otherwise.
	LoadFactor float64                `json:"load_factor,omitempty"`
	TailIndex  float64                `json:"tail_index,omitempty"`
	Failure    string                 `json:"failure,omitempty"`
	Score      float64                `json:"score"`
	Report     *compare.Report        `json:"report"`
	Snapshot   metrics.Snapshot       `json:"snapshot"`
	Trajectory []core.TrajectoryPoint `json:"trajectory,omitempty"`
	// Workload is the cell's flow-level traffic report when the grid
	// swept a workload, nil otherwise.
	Workload *traffic.SimReport `json:"workload,omitempty"`
}

// MetricAggregate is the cross-seed distribution of one metric.
type MetricAggregate struct {
	Name string  `json:"name"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// Aggregate is the cross-seed summary of one (model, size[, load
// factor, tail index]) cell group: moments of the aggregate score and
// of every measured metric — including, for workload grids, the
// workload scalars (traffic.WorkloadMetricNames) appended after the
// comparison rows.
type Aggregate struct {
	Model      string            `json:"model"`
	N          int               `json:"n"`
	LoadFactor float64           `json:"load_factor,omitempty"`
	TailIndex  float64           `json:"tail_index,omitempty"`
	Failure    string            `json:"failure,omitempty"`
	Seeds      int               `json:"seeds"`
	Score      MetricAggregate   `json:"score"`
	Metrics    []MetricAggregate `json:"metrics"`
}

// Ranking orders the swept models within one size tier by ascending
// cross-seed mean score (best statistical match first).
type Ranking struct {
	N      int      `json:"n"`
	Models []string `json:"models"`
}

// Summary is the folded outcome of a sweep: per-cell reports in grid
// order, cross-seed aggregates per (size, model), and a ranking per
// size tier. DuplicateCells and Cache report execution diagnostics —
// both are omitted from the JSON encoding in their default states, so
// a summary's serialized form is untouched by the diagnostics unless
// they have something to say.
type Summary struct {
	Target     string       `json:"target"`
	Grid       Grid         `json:"grid"`
	Cells      []CellResult `json:"cells"`
	Aggregates []Aggregate  `json:"aggregates"`
	Rankings   []Ranking    `json:"rankings"`
	// DuplicateCells counts expanded cells that were exact duplicates of
	// an earlier cell and were served from its result (core.RunStats).
	// Always zero for a grid that passes Validate; non-zero only for
	// hand-built degenerate grids.
	DuplicateCells int `json:"duplicate_cells,omitempty"`
	// Cache holds the artifact-cache counters when the sweep ran with
	// Options.CacheStats set and a live cache; nil otherwise.
	Cache *artifact.Stats `json:"cache,omitempty"`
}

// Options configure RunWith beyond the grid itself.
type Options struct {
	// Workers is the sweep pool width (<= 0 means GOMAXPROCS).
	Workers int
	// Cache, when non-nil, reuses pipeline stage outputs across
	// topology-identical cells and across successive sweeps sharing the
	// cache (core.RunCellsWith). It never changes a byte of the summary
	// — only how much work producing it costs.
	Cache *artifact.Cache
	// CacheStats attaches the cache's hit/miss/eviction counters to the
	// summary (Summary.Cache) after the run.
	CacheStats bool
}

// Run expands the grid, executes every cell across a pool of the given
// width (<= 0 means GOMAXPROCS) and folds the results. The returned
// Summary is bit-identical at every pool width. It is RunWith without
// an artifact cache.
func Run(g Grid, workers int) (*Summary, error) {
	return RunWith(g, Options{Workers: workers})
}

// RunWith is Run with explicit options. Execution is stage-keyed
// (core.RunCellsWith): cells sharing a topology — for workload grids,
// every (load factor × tail index × failure) combo of one (size, model,
// seed) — generate, freeze, measure and compare once, and the workload
// specs fan out sequentially over the warm state. With Options.Cache
// the stage outputs additionally persist across sweeps sharing the
// cache. Both layers of reuse are exact: every cached artifact is a
// pure function of its key, so the summary is bit-identical to
// expanding one full cell per combo at every pool width and every
// cache budget — the cache moves work, never answers.
func RunWith(g Grid, o Options) (*Summary, error) {
	cells, err := g.Cells()
	if err != nil {
		return nil, err
	}
	results, st, err := core.RunCellsWith(cells, o.Workers, o.Cache)
	if err != nil {
		return nil, fmt.Errorf("sweep: %w", err)
	}
	s, err := fold(g, cells, results)
	if err != nil {
		return nil, err
	}
	s.DuplicateCells = st.DuplicateCells
	if o.CacheStats && o.Cache != nil {
		cs := o.Cache.Stats()
		s.Cache = &cs
	}
	return s, nil
}

// fold reduces the per-cell results into the summary. It runs on one
// goroutine in grid order, so the reduction adds no scheduling freedom.
func fold(g Grid, cells []core.Cell, results []*core.PipelineResult) (*Summary, error) {
	tgt, err := g.target()
	if err != nil {
		return nil, err
	}
	s := &Summary{Target: tgt.Name, Grid: g, Cells: make([]CellResult, len(cells))}
	for i, res := range results {
		s.Cells[i] = CellResult{
			Model:      cells[i].Model,
			N:          cells[i].N,
			Seed:       cells[i].Seed,
			Score:      res.Report.Score,
			Report:     res.Report,
			Snapshot:   res.Snapshot,
			Trajectory: res.Trajectory,
			Workload:   res.Workload,
		}
		if res.Workload != nil {
			// The report echoes the spec with defaults resolved, so the
			// coordinates show what actually ran (e.g. an unset tail index
			// as the distribution's default, not 0).
			s.Cells[i].LoadFactor = res.Workload.Spec.LoadFactor
			s.Cells[i].TailIndex = res.Workload.Spec.TailIndex
			if res.Workload.Spec.Failures != nil {
				s.Cells[i].Failure = res.Workload.Spec.Failures.Label()
			}
		}
	}
	s.aggregateAndRank()
	return s, nil
}

// aggregateAndRank folds the summary's cells — already in canonical
// grid order — into cross-seed aggregates per contiguous seed group and
// a ranking per size tier. Sequential, so it adds no scheduling
// freedom.
func (s *Summary) aggregateAndRank() {
	g := s.Grid
	nm, nw, ns := len(g.Models), len(g.workloadSpecs()), len(g.Seeds)
	for si, n := range g.Sizes {
		scores := make(map[string]float64, nm)
		for mi, model := range g.Models {
			for wi := 0; wi < nw; wi++ {
				base := ((si*nm+mi)*nw + wi) * ns
				group := s.Cells[base : base+ns]
				agg := aggregate(model, n, group)
				s.Aggregates = append(s.Aggregates, agg)
				if wi == 0 {
					// The topology score is workload-independent, so the
					// ranking reads it from each model's first combo.
					scores[model] = agg.Score.Mean
				}
			}
		}
		s.Rankings = append(s.Rankings, Ranking{N: n, Models: compare.RankScores(scores)})
	}
}

// aggregate folds one cross-seed group's reports through streaming
// moments: the aggregate score, every report row's measured value and —
// for workload cells — the workload scalar vector. Row orders are fixed
// (compare.Score and traffic.WorkloadMetricNames), so the metric list
// is identical across cells and the fold is positional.
func aggregate(model string, n int, group []CellResult) Aggregate {
	agg := Aggregate{Model: model, N: n, Seeds: len(group),
		LoadFactor: group[0].LoadFactor, TailIndex: group[0].TailIndex,
		Failure: group[0].Failure}
	var score stats.Moments
	rows := make([]stats.Moments, len(group[0].Report.Rows))
	wlNames := traffic.WorkloadMetricNames()
	var wl []stats.Moments
	if group[0].Workload != nil {
		wl = make([]stats.Moments, len(wlNames))
	}
	for _, c := range group {
		score.Add(c.Score)
		for ri, row := range c.Report.Rows {
			rows[ri].Add(row.Measured)
		}
		if wl != nil {
			for ri, v := range c.Workload.Scalars() {
				wl[ri].Add(v)
			}
		}
	}
	agg.Score = metricAggregate("score", &score)
	for ri, row := range group[0].Report.Rows {
		agg.Metrics = append(agg.Metrics, metricAggregate(row.Name, &rows[ri]))
	}
	for ri := range wl {
		agg.Metrics = append(agg.Metrics, metricAggregate(wlNames[ri], &wl[ri]))
	}
	return agg
}

func metricAggregate(name string, m *stats.Moments) MetricAggregate {
	return MetricAggregate{Name: name, Mean: m.Mean(), Std: m.Std(), Min: m.Min(), Max: m.Max()}
}

// String renders the summary as the text the toposweep tool prints:
// the per-cell score table followed by, per size tier, the models
// ranked by cross-seed mean score with std and range.
func (s *Summary) String() string {
	var b strings.Builder
	g := s.Grid
	if g.Workload == nil {
		fmt.Fprintf(&b, "sweep against %s: %d models × %d sizes × %d seeds = %d cells\n",
			s.Target, len(g.Models), len(g.Sizes), len(g.Seeds), len(s.Cells))
		fmt.Fprintf(&b, "\n%-12s %8s %8s %8s\n", "model", "n", "seed", "score")
		for _, c := range s.Cells {
			fmt.Fprintf(&b, "%-12s %8d %8d %7.1f%%\n", c.Model, c.N, c.Seed, 100*c.Score)
		}
	} else {
		combos := len(g.workloadSpecs())
		fmt.Fprintf(&b, "workload sweep against %s: %d models × %d sizes × %d workloads × %d seeds = %d cells\n",
			s.Target, len(g.Models), len(g.Sizes), combos, len(g.Seeds), len(s.Cells))
		withFail := len(g.Workload.Failures) > 0
		if withFail {
			fmt.Fprintf(&b, "\n%-12s %8s %8s %6s %6s %-24s %9s %8s %7s %7s\n",
				"model", "n", "seed", "load", "tail", "failure", "fct", "util", "killed", "disc")
			for _, c := range s.Cells {
				w := c.Workload
				var killed, disc float64
				if w.Failures != nil && w.Arrived > 0 {
					killed = float64(w.Failures.Killed) / float64(w.Arrived)
					disc = w.Failures.DisconnectedOD
				}
				fmt.Fprintf(&b, "%-12s %8d %8d %6.2f %6.2f %-24s %9.3f %7.1f%% %6.1f%% %6.1f%%\n",
					c.Model, c.N, c.Seed, c.LoadFactor, c.TailIndex, c.Failure,
					w.MeanFCT, 100*w.MeanUtil, 100*killed, 100*disc)
			}
		} else {
			fmt.Fprintf(&b, "\n%-12s %8s %8s %6s %6s %9s %9s %8s %8s\n",
				"model", "n", "seed", "load", "tail", "fct", "active", "util", "ovl")
			for _, c := range s.Cells {
				w := c.Workload
				fmt.Fprintf(&b, "%-12s %8d %8d %6.2f %6.2f %9.3f %9.1f %7.1f%% %7.1f%%\n",
					c.Model, c.N, c.Seed, c.LoadFactor, c.TailIndex,
					w.MeanFCT, w.MeanActive, 100*w.MeanUtil, 100*w.OverloadFrac)
			}
		}
	}
	byModel := make(map[int]map[string]Aggregate, len(g.Sizes))
	for _, a := range s.Aggregates {
		if byModel[a.N] == nil {
			byModel[a.N] = make(map[string]Aggregate, len(g.Models))
		}
		if _, ok := byModel[a.N][a.Model]; !ok {
			byModel[a.N][a.Model] = a // first combo carries the score
		}
	}
	for _, r := range s.Rankings {
		fmt.Fprintf(&b, "\ncross-seed score at n=%d (mean ± std [min, max], %d seeds)\n",
			r.N, len(g.Seeds))
		for rank, model := range r.Models {
			a := byModel[r.N][model]
			fmt.Fprintf(&b, "%2d. %-12s %6.1f%% ± %4.1f%%  [%5.1f%%, %5.1f%%]\n",
				rank+1, model, 100*a.Score.Mean, 100*a.Score.Std, 100*a.Score.Min, 100*a.Score.Max)
		}
	}
	if g.Workload != nil {
		fmt.Fprintf(&b, "\ncross-seed workload aggregates (mean ± std over %d seeds)\n", len(g.Seeds))
		if len(g.Workload.Failures) > 0 {
			fmt.Fprintf(&b, "%-12s %8s %6s %6s %-24s %16s %8s %8s\n",
				"model", "n", "load", "tail", "failure", "fct", "killed", "disc")
			for _, a := range s.Aggregates {
				fct := FindMetric(a.Metrics, "wl_mean_fct")
				killed := FindMetric(a.Metrics, "wl_killed_frac")
				disc := FindMetric(a.Metrics, "wl_disconnected_od")
				fmt.Fprintf(&b, "%-12s %8d %6.2f %6.2f %-24s %8.3f ± %5.3f %7.1f%% %7.1f%%\n",
					a.Model, a.N, a.LoadFactor, a.TailIndex, a.Failure,
					fct.Mean, fct.Std, 100*killed.Mean, 100*disc.Mean)
			}
		} else {
			fmt.Fprintf(&b, "%-12s %8s %6s %6s %16s %16s %8s\n",
				"model", "n", "load", "tail", "fct", "overload", "maxutil")
			for _, a := range s.Aggregates {
				fct := FindMetric(a.Metrics, "wl_mean_fct")
				ovl := FindMetric(a.Metrics, "wl_overload_frac")
				mu := FindMetric(a.Metrics, "wl_max_util")
				fmt.Fprintf(&b, "%-12s %8d %6.2f %6.2f %8.3f ± %5.3f %7.1f%% ± %4.1f%% %7.1f%%\n",
					a.Model, a.N, a.LoadFactor, a.TailIndex,
					fct.Mean, fct.Std, 100*ovl.Mean, 100*ovl.Std, 100*mu.Mean)
			}
		}
	}
	if s.DuplicateCells > 0 {
		fmt.Fprintf(&b, "\nwarning: %d duplicate cells deduplicated (identical coordinates and workload)\n",
			s.DuplicateCells)
	}
	if s.Cache != nil {
		fmt.Fprintf(&b, "\nartifact cache: budget %s, %d entries, %s used\n",
			formatBytes(s.Cache.Budget), s.Cache.Entries, formatBytes(s.Cache.Used))
		fmt.Fprintf(&b, "%-10s %8s %8s %10s\n", "stage", "hits", "misses", "evictions")
		for _, st := range s.Cache.Stages {
			fmt.Fprintf(&b, "%-10s %8d %8d %10d\n", st.Stage, st.Hits, st.Misses, st.Evictions)
		}
	}
	return b.String()
}

// formatBytes renders a byte budget for the cache section: -1 (or any
// negative) is unbounded, otherwise a power-of-1024 suffix.
func formatBytes(b int64) string {
	if b < 0 {
		return "unbounded"
	}
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%dB", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// FindMetric returns the named aggregate row (zero value if absent) —
// the lookup the renderers here and in graphio share.
func FindMetric(metrics []MetricAggregate, name string) MetricAggregate {
	for _, m := range metrics {
		if m.Name == name {
			return m
		}
	}
	return MetricAggregate{}
}
