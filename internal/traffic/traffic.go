// Package traffic turns topologies into load: gravity-model traffic
// matrices, shortest-path routing of demand onto links, and the
// utilization statistics that close the loop between topology and the
// capacity planning an ISP actually pays for.
//
// The gravity model is the standard traffic-matrix synthesis of the
// measurement literature: demand between u and v is proportional to
// m(u)·m(v), where the mass m is any per-node activity proxy (customer
// count, degree). Demand is routed on hop-count shortest paths with even
// splitting over ties (ECMP), the same abstraction used in path-level
// Internet studies.
package traffic

import (
	"errors"
	"math"

	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/par"
	"netmodel/internal/rng"
)

// Matrix is a traffic matrix: Demand[u][v] is the offered load from u to
// v. It is dense; intended for maps up to a few thousand nodes.
type Matrix struct {
	Demand [][]float64
}

// Gravity builds a gravity-model matrix with the given per-node masses,
// scaled so the total offered load equals total. Self-demand is zero.
func Gravity(masses []float64, total float64) (*Matrix, error) {
	n := len(masses)
	if n < 2 {
		return nil, errors.New("traffic: need at least two nodes")
	}
	if total <= 0 {
		return nil, errors.New("traffic: total load must be positive")
	}
	var sum float64
	for _, m := range masses {
		if m < 0 {
			return nil, errors.New("traffic: negative mass")
		}
		sum += m
	}
	if sum == 0 {
		return nil, errors.New("traffic: all masses zero")
	}
	d := make([][]float64, n)
	var gross float64
	for u := range d {
		d[u] = make([]float64, n)
		for v := range d[u] {
			if u != v {
				d[u][v] = masses[u] * masses[v]
				gross += d[u][v]
			}
		}
	}
	scale := total / gross
	for u := range d {
		for v := range d[u] {
			d[u][v] *= scale
		}
	}
	return &Matrix{Demand: d}, nil
}

// Total returns the sum of all demands.
func (m *Matrix) Total() float64 {
	var s float64
	for _, row := range m.Demand {
		for _, v := range row {
			s += v
		}
	}
	return s
}

// Demand is a row-streamed view of a traffic matrix: the frozen router
// pulls one source row at a time, so implementations never need to hold
// all N² entries.
type Demand interface {
	// N returns the number of nodes the demand is defined over.
	N() int
	// Row returns the demand from src to every node (self-demand zero).
	// When buf has capacity for N entries, implementations reslice,
	// fill and return buf; otherwise they return an internal backing
	// row or a fresh slice. Either way the caller only reads the result
	// until its next Row call with the same buf, and never mutates it.
	Row(src int, buf []float64) []float64
}

// N implements Demand.
func (m *Matrix) N() int { return len(m.Demand) }

// Row implements Demand, copying the dense row into buf when it has
// the capacity — the shared Demand contract — and falling back to the
// backing row otherwise.
func (m *Matrix) Row(src int, buf []float64) []float64 {
	row := m.Demand[src]
	if cap(buf) >= len(row) {
		buf = buf[:len(row)]
		copy(buf, row)
		return buf
	}
	return row
}

// GravityDemand is the streaming form of the gravity model: row u is
// computed on demand as scale·m(u)·m(v), never materializing the dense
// N×N matrix — the representation that lets 100k-node maps route within
// memory. Use Gravity when a full Matrix is genuinely needed (the
// sequential Route path).
type GravityDemand struct {
	masses []float64
	scale  float64
}

// NewGravityDemand validates masses and precomputes the scale factor
// under which total offered load equals total. The gross load is the
// closed form (Σm)² − Σm², so construction is O(N).
func NewGravityDemand(masses []float64, total float64) (*GravityDemand, error) {
	n := len(masses)
	if n < 2 {
		return nil, errors.New("traffic: need at least two nodes")
	}
	if total <= 0 {
		return nil, errors.New("traffic: total load must be positive")
	}
	var sum, sumSq float64
	for _, m := range masses {
		if m < 0 {
			return nil, errors.New("traffic: negative mass")
		}
		sum += m
		sumSq += m * m
	}
	gross := sum*sum - sumSq
	if gross <= 0 {
		return nil, errors.New("traffic: gravity demand needs at least two positive masses")
	}
	return &GravityDemand{masses: masses, scale: total / gross}, nil
}

// N implements Demand.
func (d *GravityDemand) N() int { return len(d.masses) }

// Row implements Demand, filling buf with scale·m(src)·m(v) under the
// shared contract: buf is resliced when its capacity suffices and
// replaced by a fresh slice otherwise (there is no dense backing row to
// fall back to).
func (d *GravityDemand) Row(src int, buf []float64) []float64 {
	if cap(buf) < len(d.masses) {
		buf = make([]float64, len(d.masses))
	}
	buf = buf[:len(d.masses)]
	w := d.masses[src] * d.scale
	for v, m := range d.masses {
		buf[v] = w * m
	}
	buf[src] = 0
	return buf
}

// LinkLoad holds the routed load of one simple edge.
type LinkLoad struct {
	U, V int
	Load float64
}

// LoadReport summarizes routing a matrix over a topology.
type LoadReport struct {
	Links       []LinkLoad // one entry per simple edge, order unspecified
	MaxLoad     float64
	MeanLoad    float64
	Undelivered float64 // demand between disconnected pairs
	// MaxUtilization is MaxLoad divided by the capacity of the busiest
	// link when capacities (edge multiplicities) are used, 0 otherwise.
	MaxUtilization float64
}

// Route routes the matrix over hop-count shortest paths with even ECMP
// splitting, returning per-link loads. When useCapacity is set, each
// link's utilization is load divided by its multiplicity and the report
// carries the worst one.
func Route(g *graph.Graph, m *Matrix, useCapacity bool) (*LoadReport, error) {
	n := g.N()
	if n == 0 {
		return nil, errors.New("traffic: empty graph")
	}
	if len(m.Demand) != n {
		return nil, errors.New("traffic: matrix size mismatch")
	}
	// edge index
	type ekey struct{ u, v int }
	loads := make(map[ekey]float64, g.M())
	key := func(u, v int) ekey {
		if u > v {
			u, v = v, u
		}
		return ekey{u, v}
	}
	rep := &LoadReport{}
	dist := make([]int, n)
	sigma := make([]float64, n)
	order := make([]int, 0, n)
	preds := make([][]int, n)
	flowIn := make([]float64, n) // demand from s entering v along shortest DAG
	for s := 0; s < n; s++ {
		// BFS shortest-path DAG from s (Brandes-style counting).
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			preds[i] = preds[i][:0]
			flowIn[i] = 0
		}
		order = order[:0]
		dist[s] = 0
		sigma[s] = 1
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			g.Neighbors(u, func(v, w int) bool {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
					preds[v] = append(preds[v], u)
				}
				return true
			})
		}
		// Push demand from the farthest nodes back toward s, splitting
		// over predecessors proportionally to path counts.
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			if v == s {
				continue
			}
			demand := m.Demand[s][v] + flowIn[v]
			if demand == 0 {
				continue
			}
			for _, p := range preds[v] {
				share := demand * sigma[p] / sigma[v]
				loads[key(p, v)] += share
				flowIn[p] += share
			}
		}
		for v := 0; v < n; v++ {
			if v != s && dist[v] < 0 {
				rep.Undelivered += m.Demand[s][v]
			}
		}
	}
	var sum float64
	for k, l := range loads {
		rep.Links = append(rep.Links, LinkLoad{U: k.u, V: k.v, Load: l})
		sum += l
		if l > rep.MaxLoad {
			rep.MaxLoad = l
		}
		if useCapacity {
			cap := float64(g.EdgeWeight(k.u, k.v))
			if cap > 0 {
				if util := l / cap; util > rep.MaxUtilization {
					rep.MaxUtilization = util
				}
			}
		}
	}
	if len(rep.Links) > 0 {
		rep.MeanLoad = sum / float64(len(rep.Links))
	}
	return rep, nil
}

// RouteFrozen routes a dense matrix over a frozen snapshot; it is
// RouteFrozenDemand over the matrix's row view.
func RouteFrozen(s *graph.Snapshot, m *Matrix, useCapacity bool, workers int) (*LoadReport, error) {
	return RouteFrozenDemand(s, m, useCapacity, workers)
}

// RouteFrozenDemand routes a row-streamed demand over a frozen
// snapshot, sharding the per-source shortest-path DAG computations
// across `workers` goroutines (<= 0 means GOMAXPROCS). Demand rows are
// materialized per source inside each worker's scratch — row batches,
// never the dense N×N matrix — so gravity routing of a 100k-node map
// stays O(N) in demand memory. Each worker accumulates loads into its
// own per-edge array (edge ids from Snapshot.ArcEdgeIDs), merged in
// worker order; the result matches Route up to floating-point summation
// order and reproduces bit for bit at a fixed worker count.
func RouteFrozenDemand(s *graph.Snapshot, d Demand, useCapacity bool, workers int) (*LoadReport, error) {
	n := s.N()
	if n == 0 {
		return nil, errors.New("traffic: empty graph")
	}
	if d.N() != n {
		return nil, errors.New("traffic: matrix size mismatch")
	}
	workers = par.Workers(workers)
	arcEdge := s.ArcEdgeIDs()
	edges := s.EdgeList() // edges[id] is the simple edge with that id
	type routeScratch struct {
		dist, queue []int32
		sigma       []float64
		flowIn      []float64
		row         []float64
		loads       []float64
		undelivered float64
	}
	scratch := make([]*routeScratch, workers)
	par.For(n, len(scratch), func(w, src int) {
		sc := scratch[w]
		if sc == nil {
			sc = &routeScratch{
				dist:   make([]int32, n),
				queue:  make([]int32, n),
				sigma:  make([]float64, n),
				flowIn: make([]float64, n),
				row:    make([]float64, n),
				loads:  make([]float64, s.M()),
			}
			scratch[w] = sc
		}
		demandRow := d.Row(src, sc.row)
		order := metrics.BFSFrozen(s, src, sc.dist, sc.queue)
		for i := range sc.sigma {
			sc.sigma[i] = 0
			sc.flowIn[i] = 0
		}
		metrics.SigmaForward(s, src, order, sc.dist, sc.sigma)
		// Push demand from the farthest nodes back toward src, splitting
		// over shortest-path predecessors proportionally to path counts.
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			if int(v) == src {
				continue
			}
			demand := demandRow[v] + sc.flowIn[v]
			if demand == 0 {
				continue
			}
			dv := sc.dist[v]
			lo, _ := s.ArcRange(int(v))
			for j, p := range s.Neighbors(int(v)) {
				if sc.dist[p]+1 != dv {
					continue
				}
				share := demand * sc.sigma[p] / sc.sigma[v]
				sc.loads[arcEdge[int(lo)+j]] += share
				sc.flowIn[p] += share
			}
		}
		for v := 0; v < n; v++ {
			if v != src && sc.dist[v] < 0 {
				sc.undelivered += demandRow[v]
			}
		}
	})
	total := make([]float64, s.M())
	rep := &LoadReport{}
	for _, sc := range scratch {
		if sc == nil {
			continue
		}
		rep.Undelivered += sc.undelivered
		for id, l := range sc.loads {
			total[id] += l
		}
	}
	var sum float64
	for id, l := range total {
		if l == 0 {
			continue
		}
		e := edges[id]
		rep.Links = append(rep.Links, LinkLoad{U: e.U, V: e.V, Load: l})
		sum += l
		if l > rep.MaxLoad {
			rep.MaxLoad = l
		}
		if useCapacity && e.W > 0 {
			if util := l / float64(e.W); util > rep.MaxUtilization {
				rep.MaxUtilization = util
			}
		}
	}
	if len(rep.Links) > 0 {
		rep.MeanLoad = sum / float64(len(rep.Links))
	}
	return rep, nil
}

// HotSpots returns the indices (into rep.Links) of the k most loaded
// links, most loaded first; ties keep the lower index first. k values
// outside [0, len(Links)] are clamped.
func (rep *LoadReport) HotSpots(k int) []int {
	idx := make([]int, len(rep.Links))
	for i := range idx {
		idx[i] = i
	}
	// partial selection sort: k is small in practice
	if k < 0 {
		k = 0
	}
	if k > len(idx) {
		k = len(idx)
	}
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			if rep.Links[idx[j]].Load > rep.Links[idx[best]].Load {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}

// UniformMasses returns all-ones masses for n nodes.
func UniformMasses(n int) []float64 {
	m := make([]float64, n)
	for i := range m {
		m[i] = 1
	}
	return m
}

// NoisyMasses perturbs masses multiplicatively by lognormal-ish noise,
// for robustness experiments. Sigma 0 is the identity on non-negative
// masses; negative input masses are clamped to zero so the result is
// always a valid mass vector for Gravity and the workload layer.
func NoisyMasses(r *rng.Rand, masses []float64, sigma float64) []float64 {
	out := make([]float64, len(masses))
	for i, m := range masses {
		if m < 0 {
			m = 0
		}
		out[i] = m * math.Exp(r.Normal(0, sigma))
	}
	return out
}
