package traffic

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// relClose reports |a-b| <= tol·max(1,|a|,|b|).
func relClose(a, b, tol float64) bool {
	scale := 1.0
	if m := math.Abs(a); m > scale {
		scale = m
	}
	if m := math.Abs(b); m > scale {
		scale = m
	}
	return math.Abs(a-b) <= tol*scale
}

// runEngine simulates spec with the given engine over s, tracing flows.
func runEngine(t *testing.T, s *graph.Snapshot, masses []float64, spec WorkloadSpec, engine string, seed uint64, workers int) *SimReport {
	t.Helper()
	spec.Engine = engine
	rep, err := Simulate(s, masses, spec, rng.New(seed), workers, WithFlowTrace())
	if err != nil {
		t.Fatalf("engine %s: %v", engine, err)
	}
	return rep
}

// checkEngineAgreement is the equivalence suite's core assertion: the
// two engines admit the identical flow population and agree on every
// flow's fate and completion time, on the integer epoch trajectory, and
// on the aggregate scalars up to floating-point association order.
func checkEngineAgreement(t *testing.T, epoch, event *SimReport, tol float64) {
	t.Helper()
	if epoch.Arrived != event.Arrived || epoch.Undelivered != event.Undelivered {
		t.Fatalf("admission diverged: epoch arrived %d/undelivered %d, event %d/%d",
			epoch.Arrived, epoch.Undelivered, event.Arrived, event.Undelivered)
	}
	if epoch.Completed != event.Completed || epoch.ResidualFlows != event.ResidualFlows {
		t.Fatalf("completion diverged: epoch completed %d/residual %d, event %d/%d",
			epoch.Completed, epoch.ResidualFlows, event.Completed, event.ResidualFlows)
	}
	if len(epoch.Flows) != len(event.Flows) {
		t.Fatalf("trace lengths diverged: %d vs %d", len(epoch.Flows), len(event.Flows))
	}
	for i := range epoch.Flows {
		a, b := epoch.Flows[i], event.Flows[i]
		if a.Src != b.Src || a.Dst != b.Dst || a.Size != b.Size || a.Arrived != b.Arrived {
			t.Fatalf("flow %d identity diverged: %+v vs %+v", i, a, b)
		}
		if a.Done != b.Done {
			t.Fatalf("flow %d fate diverged: epoch done=%v, event done=%v", i, a.Done, b.Done)
		}
		if a.Done && !relClose(a.Finished, b.Finished, tol) {
			t.Fatalf("flow %d completion time diverged: %v vs %v", i, a.Finished, b.Finished)
		}
	}
	if len(epoch.Epochs) != len(event.Epochs) {
		t.Fatalf("epoch rows diverged: %d vs %d", len(epoch.Epochs), len(event.Epochs))
	}
	for i := range epoch.Epochs {
		a, b := epoch.Epochs[i], event.Epochs[i]
		if a.Arrived != b.Arrived || a.Completed != b.Completed || a.Active != b.Active {
			t.Fatalf("epoch %d counts diverged: %+v vs %+v", i, a, b)
		}
		if !relClose(a.MeanUtil, b.MeanUtil, tol) || !relClose(a.MaxUtil, b.MaxUtil, tol) {
			t.Fatalf("epoch %d utilization diverged: %+v vs %+v", i, a, b)
		}
	}
	as, bs := epoch.Scalars(), event.Scalars()
	names := WorkloadMetricNames()
	for i := range as {
		if !relClose(as[i], bs[i], tol) {
			t.Fatalf("%s diverged: %v vs %v", names[i], as[i], bs[i])
		}
	}
	if !relClose(epoch.ResidualSize, event.ResidualSize, 1e-6) {
		t.Fatalf("residual size diverged: %v vs %v", epoch.ResidualSize, event.ResidualSize)
	}
	for i := range epoch.UtilCCDF {
		if !relClose(epoch.UtilCCDF[i].Frac, event.UtilCCDF[i].Frac, tol) {
			t.Fatalf("CCDF bin %v diverged: %v vs %v",
				epoch.UtilCCDF[i].Util, epoch.UtilCCDF[i].Frac, event.UtilCCDF[i].Frac)
		}
	}
}

// TestEventMatchesEpochEngine is the engine-equivalence suite: across
// topologies, arrival processes, size laws, load levels and seeds, the
// event engine must reproduce the epoch engine's trajectory.
func TestEventMatchesEpochEngine(t *testing.T) {
	cases := []struct {
		name   string
		g      *graph.Graph
		masses []float64
		spec   WorkloadSpec
		seeds  []uint64
	}{
		{"mesh-light", meshGraph(40), UniformMasses(40),
			WorkloadSpec{LoadFactor: 0.05, Epochs: 25}, []uint64{1, 2, 3}},
		{"mesh-heavy-tail", meshGraph(60), UniformMasses(60),
			WorkloadSpec{LoadFactor: 0.8, Epochs: 15, TailIndex: 1.2}, []uint64{4, 5}},
		{"mesh-onoff-lognormal", meshGraph(50), UniformMasses(50),
			WorkloadSpec{LoadFactor: 0.6, Epochs: 20, Arrivals: "onoff", Sizes: "lognormal"}, []uint64{6, 7}},
		{"path-overload", pathGraph(12), UniformMasses(12),
			WorkloadSpec{LoadFactor: 3, Epochs: 12, Sizes: "exp"}, []uint64{8, 9}},
		{"two-nodes-persistent", func() *graph.Graph {
			g := graph.New(2)
			g.MustAddEdge(0, 1)
			return g
		}(), UniformMasses(2),
			WorkloadSpec{LoadFactor: 4, Epochs: 10, Sizes: "exp", MeanSize: 5}, []uint64{10}},
		{"disconnected", func() *graph.Graph {
			g := graph.New(6)
			g.MustAddEdge(0, 1)
			g.MustAddEdge(1, 2)
			g.MustAddEdge(3, 4)
			g.MustAddEdge(4, 5)
			return g
		}(), UniformMasses(6),
			WorkloadSpec{LoadFactor: 1, Epochs: 10}, []uint64{11, 12}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.g.Freeze()
			for _, seed := range tc.seeds {
				ep := runEngine(t, s, tc.masses, tc.spec, EngineEpoch, seed, 1)
				evt := runEngine(t, s, tc.masses, tc.spec, EngineEvent, seed, 2)
				checkEngineAgreement(t, ep, evt, 1e-9)
			}
		})
	}
}

// TestEventWorkerInvariance pins the event engine's determinism
// contract: the full report — spec echo, aggregates, epoch rows and
// link loads — is byte-identical at every worker count.
func TestEventWorkerInvariance(t *testing.T) {
	s := meshGraph(60).Freeze()
	spec := WorkloadSpec{Engine: EngineEvent, LoadFactor: 0.7, Epochs: 12,
		Arrivals: "onoff", Sizes: "pareto", TailIndex: 1.4}
	var base []byte
	for _, workers := range []int{1, 2, 4, 8} {
		rep, err := Simulate(s, UniformMasses(60), spec, rng.New(9), workers)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		link, err := json.Marshal(rep.Links)
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, link...)
		if base == nil {
			base = data
		} else if !bytes.Equal(base, data) {
			t.Fatalf("workers=%d event-engine report diverged", workers)
		}
	}
}

// TestEventSpecEchoesEngine checks the resolved spec names the engine
// that actually ran, so sweep rows stay attributable.
func TestEventSpecEchoesEngine(t *testing.T) {
	s := meshGraph(20).Freeze()
	rep, err := Simulate(s, UniformMasses(20), WorkloadSpec{Engine: EngineEvent, LoadFactor: 0.3, Epochs: 5}, rng.New(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spec.Engine != EngineEvent {
		t.Fatalf("spec echo engine %q", rep.Spec.Engine)
	}
	rep, err = Simulate(s, UniformMasses(20), WorkloadSpec{LoadFactor: 0.3, Epochs: 5}, rng.New(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spec.Engine != EngineEpoch {
		t.Fatalf("default engine %q, want %q", rep.Spec.Engine, EngineEpoch)
	}
}

// TestEventFlowConservation checks the event engine's bookkeeping
// invariants on a bursty heavy-tailed run.
func TestEventFlowConservation(t *testing.T) {
	s := meshGraph(40).Freeze()
	spec := WorkloadSpec{Engine: EngineEvent, LoadFactor: 1.5, Epochs: 20,
		Arrivals: "onoff", TailIndex: 1.3}
	rep, err := Simulate(s, UniformMasses(40), spec, rng.New(21), 2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arrived == 0 {
		t.Fatal("no arrivals")
	}
	if rep.Completed+rep.ResidualFlows != rep.Arrived {
		t.Fatalf("flow conservation: %d completed + %d residual != %d arrived",
			rep.Completed, rep.ResidualFlows, rep.Arrived)
	}
	var arrived, completed int
	for _, e := range rep.Epochs {
		arrived += e.Arrived
		completed += e.Completed
		if e.MaxUtil > 1+1e-9 {
			t.Fatalf("epoch %d max utilization %v exceeds capacity", e.Epoch, e.MaxUtil)
		}
	}
	if arrived != rep.Arrived || completed != rep.Completed {
		t.Fatalf("epoch sums (%d, %d) disagree with totals (%d, %d)",
			arrived, completed, rep.Arrived, rep.Completed)
	}
	if rep.ResidualFlows > 0 && rep.ResidualSize <= 0 {
		t.Fatalf("%d residual flows but residual size %v", rep.ResidualFlows, rep.ResidualSize)
	}
}
