package traffic

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/rng"
)

// This file is the fault-injection layer of the traffic package: a
// FailureSpec composed into a WorkloadSpec describes link/node outage
// processes — scheduled down/up events, stochastic MTBF/MTTR outages
// drawn from seed-split streams, and targeted top-k modes — which
// CompileFailures turns into a deterministic per-epoch op timeline
// before the simulation starts. During a run the failState below owns a
// mutable mirror of the topology: outage ops remove edges from the
// mirror, Refreeze produces a removal delta, and the private routing
// state rides Routing.Refresh's scoped removal repair, so the surviving
// topology's shortest paths stay warm across failure epochs. Both
// traffic engines consume the same state in the same order — reroute
// affected flows when an alternate path exists, kill them with a
// recorded fate otherwise, re-admit killed flows under a bounded
// retry/backoff — which keeps per-flow fates engine-independent and
// every byte of the report worker-count invariant. The no-failure path
// (Failures nil or mode "none") never touches any of this.

// The failure modes selectable through FailureSpec.Mode.
const (
	// FailNone disables fault injection (the default).
	FailNone = "none"
	// FailScheduled replays the explicit event list in FailureSpec.Events.
	FailScheduled = "scheduled"
	// FailRandom picks Links/Nodes uniformly at random and gives each an
	// alternating exponential up/down renewal process (MTBF/MTTR).
	FailRandom = "random"
	// FailDegree fails the top-Links links (by endpoint degree sum) and
	// top-Nodes nodes (by degree) at epoch FailAt.
	FailDegree = "degree"
	// FailLoad fails the top-Links links and top-Nodes nodes ranked by
	// expected shortest-path load under the gravity demand.
	FailLoad = "load"
)

// FailureEvent is one scheduled outage edit: at the start of Epoch,
// link (U, V) or node Node goes down (or comes back Up).
type FailureEvent struct {
	Epoch int    `json:"epoch"`
	Kind  string `json:"kind"` // "link" or "node"
	U     int    `json:"u,omitempty"`
	V     int    `json:"v,omitempty"`
	Node  int    `json:"node,omitempty"`
	Up    bool   `json:"up,omitempty"`
}

// FailureSpec is the flag- and JSON-friendly description of an outage
// process, composable with WorkloadSpec (field Failures) and sweepable
// through sweep.Grid. The zero value of every optional field means its
// documented default; timing fields are in the same time units as
// WorkloadSpec.EpochLen, and every event takes effect at an epoch
// start, before that epoch's reroutes, retries and arrivals.
type FailureSpec struct {
	// Mode selects the outage process: "none" (default), "scheduled",
	// "random", "degree" or "load".
	Mode string `json:"mode,omitempty"`
	// Events is the explicit timeline of mode "scheduled".
	Events []FailureEvent `json:"events,omitempty"`
	// Links and Nodes are how many links/nodes the random and targeted
	// modes involve.
	Links int `json:"links,omitempty"`
	Nodes int `json:"nodes,omitempty"`
	// MTBF and MTTR are the mean exponential up- and down-times of mode
	// "random". MTTR 0 means a failed entity never repairs.
	MTBF float64 `json:"mtbf,omitempty"`
	MTTR float64 `json:"mttr,omitempty"`
	// FailAt and RepairAt are the targeted modes' outage window in
	// epochs (defaults: fail at 1, never repair).
	FailAt   int `json:"fail_at,omitempty"`
	RepairAt int `json:"repair_at,omitempty"`
	// MaxRetries bounds how many re-admission attempts a killed flow
	// gets (default 0: killed flows stay dead); RetryAfter is the
	// backoff between a kill and the next attempt, in epochs (default 1).
	MaxRetries int `json:"max_retries,omitempty"`
	RetryAfter int `json:"retry_after,omitempty"`
}

// failureDefaults are the resolved fallbacks of FailureSpec.
const (
	defaultFailAt     = 1
	defaultRetryAfter = 1
)

// withDefaults resolves every zero-valued optional field to its
// documented default.
func (sp FailureSpec) withDefaults() FailureSpec {
	if sp.Mode == "" {
		sp.Mode = FailNone
	}
	if sp.FailAt == 0 {
		sp.FailAt = defaultFailAt
	}
	if sp.RetryAfter == 0 {
		sp.RetryAfter = defaultRetryAfter
	}
	return sp
}

// Active reports whether the spec injects any failures at all.
func (sp FailureSpec) Active() bool {
	return sp.Mode != "" && sp.Mode != FailNone
}

// Validate checks the spec after default resolution and reports the
// first violation. Bounds that need the topology (endpoint ranges,
// entity counts versus graph size) are checked by CompileFailures.
func (sp FailureSpec) Validate() error {
	sp = sp.withDefaults()
	for _, v := range []float64{sp.MTBF, sp.MTTR} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return errors.New("traffic: failure spec values must be finite")
		}
	}
	switch sp.Mode {
	case FailNone, FailScheduled, FailRandom, FailDegree, FailLoad:
	default:
		return fmt.Errorf("traffic: unknown failure mode %q (have %s, %s, %s, %s, %s)",
			sp.Mode, FailNone, FailScheduled, FailRandom, FailDegree, FailLoad)
	}
	if sp.Links < 0 || sp.Nodes < 0 {
		return errors.New("traffic: failure link and node counts must not be negative")
	}
	if sp.MaxRetries < 0 {
		return errors.New("traffic: failure max retries must not be negative")
	}
	if sp.RetryAfter < 1 {
		return errors.New("traffic: failure retry backoff must be at least one epoch")
	}
	switch sp.Mode {
	case FailScheduled:
		if len(sp.Events) == 0 {
			return errors.New("traffic: scheduled failure mode needs at least one event")
		}
		for _, ev := range sp.Events {
			if ev.Epoch < 0 {
				return errors.New("traffic: failure event epoch must not be negative")
			}
			switch ev.Kind {
			case "link":
				if ev.U < 0 || ev.V < 0 || ev.U == ev.V {
					return errors.New("traffic: failure link event needs two distinct endpoints")
				}
			case "node":
				if ev.Node < 0 {
					return errors.New("traffic: failure node event node must not be negative")
				}
			default:
				return fmt.Errorf("traffic: unknown failure event kind %q (have link, node)", ev.Kind)
			}
		}
	case FailRandom:
		if sp.Links+sp.Nodes == 0 {
			return errors.New("traffic: random failure mode needs links or nodes to fail")
		}
		if sp.MTBF <= 0 {
			return errors.New("traffic: random failure mode needs a positive mtbf")
		}
		if sp.MTTR < 0 {
			return errors.New("traffic: failure mttr must not be negative")
		}
	case FailDegree, FailLoad:
		if sp.Links+sp.Nodes == 0 {
			return errors.New("traffic: targeted failure mode needs links or nodes to fail")
		}
		if sp.FailAt < 1 {
			return errors.New("traffic: failure epoch must be at least 1")
		}
		if sp.RepairAt != 0 && sp.RepairAt <= sp.FailAt {
			return errors.New("traffic: failure repair epoch must follow the failure epoch")
		}
	}
	return nil
}

// Label is the spec's compact sweep-axis label, the value of the
// "failures" column in workload CSV rows.
func (sp FailureSpec) Label() string {
	sp = sp.withDefaults()
	switch sp.Mode {
	case FailNone:
		return FailNone
	case FailScheduled:
		return fmt.Sprintf("sched:%d", len(sp.Events))
	case FailRandom:
		return fmt.Sprintf("random:l%d,n%d,mtbf%g,mttr%g", sp.Links, sp.Nodes, sp.MTBF, sp.MTTR)
	default:
		return fmt.Sprintf("%s:l%d,n%d@%d", sp.Mode, sp.Links, sp.Nodes, sp.FailAt)
	}
}

// failureOp is one compiled state flip: link (u, v) (node < 0) or node
// `node` goes down (or comes back up) at its epoch.
type failureOp struct {
	node int32 // -1 for link ops
	u, v int32
	up   bool
}

// FailureTimeline is a FailureSpec compiled against a concrete topology
// and horizon: the per-epoch op lists every engine replays identically,
// plus the distinct-entity counts the survivability report surfaces.
type FailureTimeline struct {
	ops         [][]failureOp
	linksFailed int
	nodesFailed int
	firstFail   int // earliest epoch with a down op, -1 if none
}

// LinksFailed returns how many distinct links the timeline ever fails.
func (tl *FailureTimeline) LinksFailed() int { return tl.linksFailed }

// NodesFailed returns how many distinct nodes the timeline ever fails.
func (tl *FailureTimeline) NodesFailed() int { return tl.nodesFailed }

// Ops returns the number of compiled state flips at the given epoch.
func (tl *FailureTimeline) Ops(epoch int) int {
	if epoch < 0 || epoch >= len(tl.ops) {
		return 0
	}
	return len(tl.ops[epoch])
}

// CompileFailures compiles the spec into a deterministic per-epoch op
// timeline over the given snapshot and horizon. Random outages draw
// from streams split off r per entity — splitting is pure, so the
// timeline never perturbs the workload's arrival streams and is itself
// independent of worker count. linkLoad (per snapshot edge id) ranks
// mode "load" and may be nil otherwise.
func CompileFailures(s *graph.Snapshot, spec FailureSpec, epochs int, epochLen float64, r *rng.Rand, linkLoad []float64) (*FailureTimeline, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	tl := &FailureTimeline{ops: make([][]failureOp, epochs), firstFail: -1}
	if !spec.Active() || epochs == 0 {
		return tl, nil
	}
	n := s.N()
	edges := s.EdgeList()
	addOp := func(epoch int, op failureOp) {
		tl.ops[epoch] = append(tl.ops[epoch], op)
		if !op.up && (tl.firstFail < 0 || epoch < tl.firstFail) {
			tl.firstFail = epoch
		}
	}

	switch spec.Mode {
	case FailScheduled:
		seenLink := make(map[int64]bool)
		seenNode := make(map[int]bool)
		for _, ev := range spec.Events {
			if ev.Epoch >= epochs {
				continue // beyond the horizon
			}
			if ev.Kind == "node" {
				if ev.Node >= n {
					return nil, errors.New("traffic: failure event node out of range")
				}
				addOp(ev.Epoch, failureOp{node: int32(ev.Node), up: ev.Up})
				if !ev.Up && !seenNode[ev.Node] {
					seenNode[ev.Node] = true
					tl.nodesFailed++
				}
				continue
			}
			u, v := ev.U, ev.V
			if u > v {
				u, v = v, u
			}
			if v >= n {
				return nil, errors.New("traffic: failure event endpoint out of range")
			}
			if !s.HasEdge(u, v) {
				return nil, fmt.Errorf("traffic: failure event names a missing link (%d, %d)", u, v)
			}
			addOp(ev.Epoch, failureOp{node: -1, u: int32(u), v: int32(v), up: ev.Up})
			if !ev.Up && !seenLink[pathKey(u, v)] {
				seenLink[pathKey(u, v)] = true
				tl.linksFailed++
			}
		}

	case FailRandom:
		if spec.Links > len(edges) {
			return nil, errors.New("traffic: more failing links than links in the topology")
		}
		if spec.Nodes > n {
			return nil, errors.New("traffic: more failing nodes than nodes in the topology")
		}
		// outages walks one entity's alternating exponential renewal
		// process, quantized to epoch starts: a transition inside epoch e
		// takes effect at the start of epoch e+1. Zero-width outages
		// (down and up quantizing to the same epoch) are invisible and
		// skipped whole.
		outages := func(er *rng.Rand, emit func(epoch int, up bool)) bool {
			failed := false
			t := 0.0
			for {
				t += er.Exp(1 / spec.MTBF)
				down := int(t/epochLen) + 1
				if down >= epochs {
					return failed
				}
				if spec.MTTR <= 0 {
					emit(down, false)
					return true
				}
				t += er.Exp(1 / spec.MTTR)
				up := int(t/epochLen) + 1
				if up == down {
					continue
				}
				emit(down, false)
				failed = true
				if up >= epochs {
					return failed
				}
				emit(up, true)
			}
		}
		// Entity streams are split off the failure stream by disjoint
		// keys: links by edge id, nodes offset past the edge-id range.
		links := r.Perm(len(edges))[:spec.Links]
		sort.Ints(links)
		for _, id := range links {
			e := edges[id]
			if outages(r.Split(uint64(id)), func(epoch int, up bool) {
				addOp(epoch, failureOp{node: -1, u: int32(e.U), v: int32(e.V), up: up})
			}) {
				tl.linksFailed++
			}
		}
		nodes := r.Perm(n)[:spec.Nodes]
		sort.Ints(nodes)
		for _, u := range nodes {
			if outages(r.Split(1<<32|uint64(u)), func(epoch int, up bool) {
				addOp(epoch, failureOp{node: int32(u), up: up})
			}) {
				tl.nodesFailed++
			}
		}

	case FailDegree, FailLoad:
		if spec.Links > len(edges) {
			return nil, errors.New("traffic: more failing links than links in the topology")
		}
		if spec.Nodes > n {
			return nil, errors.New("traffic: more failing nodes than nodes in the topology")
		}
		linkScore := func(id int) float64 {
			return float64(s.Degree(edges[id].U) + s.Degree(edges[id].V))
		}
		nodeScore := func(u int) float64 { return float64(s.Degree(u)) }
		if spec.Mode == FailLoad {
			if len(linkLoad) != len(edges) {
				return nil, errors.New("traffic: load-targeted failures need per-link loads")
			}
			nodeLoad := make([]float64, n)
			for id, e := range edges {
				nodeLoad[e.U] += linkLoad[id]
				nodeLoad[e.V] += linkLoad[id]
			}
			linkScore = func(id int) float64 { return linkLoad[id] }
			nodeScore = func(u int) float64 { return nodeLoad[u] }
		}
		topK := func(total, k int, score func(int) float64) []int {
			ids := make([]int, total)
			for i := range ids {
				ids[i] = i
			}
			sort.Slice(ids, func(a, b int) bool {
				sa, sb := score(ids[a]), score(ids[b])
				if sa != sb {
					return sa > sb
				}
				return ids[a] < ids[b]
			})
			return ids[:k]
		}
		emitWindow := func(op failureOp) {
			if spec.FailAt >= epochs {
				return
			}
			addOp(spec.FailAt, op)
			if op.node >= 0 {
				tl.nodesFailed++
			} else {
				tl.linksFailed++
			}
			if spec.RepairAt > spec.FailAt && spec.RepairAt < epochs {
				op.up = true
				addOp(spec.RepairAt, op)
			}
		}
		for _, id := range topK(len(edges), spec.Links, linkScore) {
			emitWindow(failureOp{node: -1, u: int32(edges[id].U), v: int32(edges[id].V)})
		}
		for _, u := range topK(n, spec.Nodes, nodeScore) {
			emitWindow(failureOp{node: int32(u)})
		}
	}
	return tl, nil
}

// SurvivabilityReport aggregates how the topology and the flows riding
// it degraded under the run's failure timeline.
type SurvivabilityReport struct {
	// LinksFailed and NodesFailed count the distinct entities the
	// timeline ever took down.
	LinksFailed int `json:"links_failed"`
	NodesFailed int `json:"nodes_failed"`
	// Killed counts kill events (a flow re-killed after a retry counts
	// again); Rerouted counts successful mid-life path replacements;
	// Retried counts re-admission attempts of killed flows.
	Killed   int `json:"killed"`
	Rerouted int `json:"rerouted"`
	Retried  int `json:"retried"`
	// DisconnectedOD is the epoch-mean fraction of ordered node pairs
	// with no surviving path.
	DisconnectedOD float64 `json:"disconnected_od"`
	// MeanGiantCapacity and MinGiantCapacity track the fraction of the
	// total base link capacity that lives inside the giant connected
	// component of the surviving topology.
	MeanGiantCapacity float64 `json:"mean_giant_capacity"`
	MinGiantCapacity  float64 `json:"min_giant_capacity"`
	// FCTInflation is the ratio of the mean completion time of flows
	// arriving at or after the first failure to the mean of flows
	// arriving before it (0 when either side is empty).
	FCTInflation float64 `json:"fct_inflation"`
}

// killedFlow is a killed flow parked in the retry queue: enough state
// to re-admit it with its remaining volume and original arrival.
type killedFlow struct {
	id        int32 // trace identity
	src, dst  int32
	remaining float64
	arrived   float64
	retries   int32 // re-admission attempts already consumed
	at        int32 // epoch of the next attempt
}

// failState is the per-run fault-injection state both engines drive in
// identical order: the compiled timeline, a mutable mirror of the base
// topology whose refreezes feed the private routing state's scoped
// removal repair, the base-edge down set, the retry queue, and the
// survivability accumulators. Flow paths stay in base edge-id space
// (the capacity, load and flow-set arrays are base-indexed and
// persistent); curToBase translates the mirror snapshot's ids on every
// admission and reroute.
type failState struct {
	ctx  *simContext
	spec FailureSpec
	tl   *FailureTimeline

	mirror    *graph.Graph
	cur       *graph.Snapshot
	curEdges  []graph.Edge
	frt       *Routing
	baseID    map[int64]int32
	curToBase []int32

	linkDown   []bool // base edge id: administratively down
	nodeDown   []bool
	edgeAbsent []bool // base edge id: currently removed from the mirror
	linksDown  int
	nodesDown  int
	capTotal   float64

	flipped bool // the current epoch applied at least one op
	retryQ  []killedFlow

	killed, rerouted, retried int
	discSum, giantSum         float64
	giantMin                  float64
	epochsSeen                int
	curDisc, curGiant         float64
	firstFailT                float64 // +Inf when the timeline never fails
	fctPreSum, fctPostSum     float64
	fctPreN, fctPostN         int
	compMark                  []bool
	compID                    []int32
	compSizes                 []int32
	compBFS                   *metrics.BFSScratch
}

// newFailState compiles the workload's failure spec and builds the
// mirror topology and private routing state. masses feed the
// load-targeted ranking; r is the workload's root stream — the failure
// stream splits off it under a key no per-origin stream uses, and
// splitting is pure, so a failure run draws the exact arrival sample
// paths of the corresponding no-failure run.
func newFailState(ctx *simContext, masses []float64, r *rng.Rand) (*failState, error) {
	spec := *ctx.spec.Failures
	var linkLoad []float64
	if spec.Mode == FailLoad {
		gd, err := NewGravityDemand(masses, 1)
		if err != nil {
			return nil, err
		}
		// Rank with workers pinned to 1: the ranking must not move with
		// the worker count, and parallel load sums differ in final ulps.
		lr, err := RouteFrozenDemand(ctx.s, gd, false, 1)
		if err != nil {
			return nil, err
		}
		linkLoad = make([]float64, len(ctx.edges))
		byPair := make(map[int64]int32, len(ctx.edges))
		for id, e := range ctx.edges {
			byPair[pathKey(e.U, e.V)] = int32(id)
		}
		for _, l := range lr.Links {
			linkLoad[byPair[pathKey(l.U, l.V)]] = l.Load
		}
	}
	// The failure stream's key is outside the node-id range the
	// per-origin streams use, and Split is a pure function of (parent,
	// key), so drawing the timeline perturbs nothing else.
	tl, err := CompileFailures(ctx.s, spec, ctx.spec.Epochs, ctx.spec.EpochLen, r.Split(^uint64(0)), linkLoad)
	if err != nil {
		return nil, err
	}
	n := ctx.s.N()
	mirror := graph.New(n)
	for _, e := range ctx.edges {
		for k := 0; k < e.W; k++ {
			mirror.MustAddEdge(e.U, e.V)
		}
	}
	cur, err := mirror.FreezeChecked()
	if err != nil {
		return nil, err
	}
	fs := &failState{
		ctx: ctx, spec: spec, tl: tl,
		mirror: mirror, cur: cur, frt: NewRouting(cur),
		baseID:     make(map[int64]int32, len(ctx.edges)),
		linkDown:   make([]bool, len(ctx.edges)),
		nodeDown:   make([]bool, n),
		edgeAbsent: make([]bool, len(ctx.edges)),
		firstFailT: math.Inf(1),
		compMark:   make([]bool, n),
	}
	if tl.firstFail >= 0 {
		fs.firstFailT = float64(tl.firstFail) * ctx.spec.EpochLen
	}
	for id, e := range ctx.edges {
		fs.baseID[pathKey(e.U, e.V)] = int32(id)
		fs.capTotal += ctx.capEdge[id]
	}
	fs.rebuildCurToBase()
	fs.recomputeComponents()
	fs.giantMin = fs.curGiant
	return fs, nil
}

// rebuildCurToBase re-derives the mirror-snapshot → base edge-id
// translation after a refreeze. Mirror edges are always a subset of the
// base edge set, so every lookup hits.
func (fs *failState) rebuildCurToBase() {
	fs.curEdges = fs.cur.EdgeList()
	fs.curToBase = fs.curToBase[:0]
	for _, e := range fs.curEdges {
		fs.curToBase = append(fs.curToBase, fs.baseID[pathKey(e.U, e.V)])
	}
}

// recomputeComponents refreshes the disconnected-OD fraction and the
// giant-component capacity fraction from the current mirror snapshot.
// The scan runs on the pooled hybrid component kernel: labels and sizes
// instead of materialized node lists, so the per-failure-epoch refresh
// allocates nothing once the buffers are warm. ComponentsHybrid assigns
// the first maximal-size id to exactly the component Components() ranks
// first, so the giant choice matches the old list-based code.
func (fs *failState) recomputeComponents() {
	n := fs.cur.N()
	if fs.compBFS == nil {
		fs.compBFS = metrics.NewBFSScratch(n)
	}
	if len(fs.compID) < n {
		fs.compID = append(fs.compID, make([]int32, n-len(fs.compID))...)
	}
	fs.compSizes = metrics.ComponentsHybrid(fs.cur, fs.compBFS, fs.compID[:n], fs.compSizes[:0])
	var pairs float64
	giant := int32(0)
	for id, sz := range fs.compSizes {
		pairs += float64(sz) * float64(sz-1)
		if sz > fs.compSizes[giant] {
			giant = int32(id)
		}
	}
	fs.curDisc = 1 - pairs/(float64(n)*float64(n-1))
	for i := range fs.compMark {
		fs.compMark[i] = false
	}
	for v, id := range fs.compID[:n] {
		if id == giant {
			fs.compMark[v] = true
		}
	}
	var giantCap float64
	for i, e := range fs.curEdges {
		if fs.compMark[e.U] {
			giantCap += fs.ctx.capEdge[fs.curToBase[i]]
		}
	}
	fs.curGiant = 0
	if fs.capTotal > 0 {
		fs.curGiant = giantCap / fs.capTotal
	}
}

// setEdgePresence reconciles one base edge's mirror presence with the
// current down state, one multiplicity unit per base weight.
func (fs *failState) setEdgePresence(id int32) {
	e := fs.ctx.edges[id]
	present := !fs.linkDown[id] && !fs.nodeDown[e.U] && !fs.nodeDown[e.V]
	if present == !fs.edgeAbsent[id] {
		return
	}
	fs.edgeAbsent[id] = !present
	for k := 0; k < e.W; k++ {
		if present {
			fs.mirror.MustAddEdge(e.U, e.V)
		} else if err := fs.mirror.RemoveEdge(e.U, e.V); err != nil {
			panic("traffic: failure mirror out of sync: " + err.Error())
		}
	}
}

// beginEpoch applies the epoch's compiled ops to the mirror, refreezes
// it, advances the private routing state through the removal delta, and
// folds the epoch into the survivability accumulators. Both engines
// call it exactly once per epoch, before reroutes, retries and
// arrivals; fs.flipped tells them whether any topology state moved.
func (fs *failState) beginEpoch(epoch int) error {
	fs.flipped = false
	if ops := fs.tl.ops[epoch]; len(ops) > 0 {
		arcEdge := fs.ctx.s.ArcEdgeIDs()
		for _, op := range ops {
			if op.node >= 0 {
				u := int(op.node)
				if fs.nodeDown[u] == !op.up {
					continue
				}
				fs.nodeDown[u] = !op.up
				if op.up {
					fs.nodesDown--
				} else {
					fs.nodesDown++
				}
				lo, hi := fs.ctx.s.ArcRange(u)
				for a := lo; a < hi; a++ {
					fs.setEdgePresence(arcEdge[a])
				}
				continue
			}
			id := fs.baseID[pathKey(int(op.u), int(op.v))]
			if fs.linkDown[id] == !op.up {
				continue
			}
			fs.linkDown[id] = !op.up
			if op.up {
				fs.linksDown--
			} else {
				fs.linksDown++
			}
			fs.setEdgePresence(id)
		}
		next, delta, err := fs.mirror.Refreeze(fs.cur)
		if err != nil {
			return err
		}
		fs.frt.Refresh(next, delta, fs.ctx.workers)
		fs.cur = next
		fs.rebuildCurToBase()
		fs.recomputeComponents()
		fs.flipped = true
	}
	fs.discSum += fs.curDisc
	fs.giantSum += fs.curGiant
	if fs.curGiant < fs.giantMin {
		fs.giantMin = fs.curGiant
	}
	fs.epochsSeen++
	return nil
}

// pathBroken reports whether any of the path's base edges is down.
func (fs *failState) pathBroken(path []int32) bool {
	for _, e := range path {
		if fs.edgeAbsent[e] {
			return true
		}
	}
	return false
}

// toBase translates a path of mirror-snapshot edge ids into a fresh
// base-id slice. Always a copy: the input may alias the private routing
// state's memo, which the next refreeze remaps in place.
func (fs *failState) toBase(path []int32) []int32 {
	out := make([]int32, len(path))
	for i, e := range path {
		out[i] = fs.curToBase[e]
	}
	return out
}

// resolve routes (src, dst) over the surviving topology, returning the
// base-id path, or ok=false when no path survives.
func (fs *failState) resolve(src, dst int) ([]int32, bool) {
	if fs.nodeDown[src] || fs.nodeDown[dst] {
		return nil, false
	}
	path, ok, unreachable := fs.frt.cachedPath(src, dst)
	if !ok {
		p, reachable := fs.frt.Tree(src).appendPath(nil, dst)
		fs.frt.storePath(src, dst, p, reachable)
		path, unreachable = p, !reachable
	}
	if unreachable {
		return nil, false
	}
	return fs.toBase(path), true
}

// kill records one kill event and parks the flow for re-admission when
// retry budget and horizon allow.
func (fs *failState) kill(epoch int, id, src, dst int32, remaining, arrived float64, retries int32) {
	fs.killed++
	fs.requeue(epoch, killedFlow{id: id, src: src, dst: dst,
		remaining: remaining, arrived: arrived, retries: retries})
}

// requeue schedules a killed flow's next re-admission attempt, dropping
// it when the retry budget is spent or the horizon ends first.
func (fs *failState) requeue(epoch int, rf killedFlow) {
	if rf.retries >= int32(fs.spec.MaxRetries) {
		return
	}
	if at := epoch + fs.spec.RetryAfter; at < fs.ctx.spec.Epochs {
		rf.at = int32(at)
		fs.retryQ = append(fs.retryQ, rf)
	}
}

// takeRetries pops the flows due for a re-admission attempt at the
// given epoch, in kill order. The queue is at-sorted by construction:
// every entry is enqueued RetryAfter epochs past a monotone epoch
// counter.
func (fs *failState) takeRetries(epoch int) []killedFlow {
	k := 0
	for k < len(fs.retryQ) && fs.retryQ[k].at <= int32(epoch) {
		k++
	}
	if k == 0 {
		return nil
	}
	due := append([]killedFlow(nil), fs.retryQ[:k]...)
	fs.retryQ = fs.retryQ[:copy(fs.retryQ, fs.retryQ[k:])]
	return due
}

// noteFCT folds one completion into the pre-/post-failure FCT split by
// arrival instant.
func (fs *failState) noteFCT(arrived, fct float64) {
	if arrived >= fs.firstFailT {
		fs.fctPostSum += fct
		fs.fctPostN++
	} else {
		fs.fctPreSum += fct
		fs.fctPreN++
	}
}

// report finalizes the survivability aggregates.
func (fs *failState) report() *SurvivabilityReport {
	r := &SurvivabilityReport{
		LinksFailed: fs.tl.linksFailed, NodesFailed: fs.tl.nodesFailed,
		Killed: fs.killed, Rerouted: fs.rerouted, Retried: fs.retried,
		MinGiantCapacity: fs.giantMin,
	}
	if fs.epochsSeen > 0 {
		r.DisconnectedOD = fs.discSum / float64(fs.epochsSeen)
		r.MeanGiantCapacity = fs.giantSum / float64(fs.epochsSeen)
	} else {
		r.MeanGiantCapacity = fs.curGiant
	}
	if fs.fctPreN > 0 && fs.fctPostN > 0 {
		r.FCTInflation = (fs.fctPostSum / float64(fs.fctPostN)) / (fs.fctPreSum / float64(fs.fctPreN))
	}
	return r
}
