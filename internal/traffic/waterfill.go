package traffic

// This file is the epoch engine's max-min water-filling allocator,
// extracted behind a pooled scratch so a steady-state epoch allocates
// nothing: per-link flow lists are index-truncated slabs instead of a
// per-epoch map, and the link/capacity arrays persist across epochs.
// The arithmetic — bottleneck selection by strict < over links in
// first-use order, flows fixed in per-link admission order, the
// exhausted bottleneck's residue snapped to exactly zero — is the
// epoch engine's original, bit for bit; the event engine's lazy-heap
// solver is validated against it. The ROADMAP's pluggable
// SharingPolicy layer will slot alternative allocators beside this
// one, which is why it lives behind its own seam.

// wfState is the pooled state of the water-filling allocator.
type wfState struct {
	nflows []int32   // flows still unallocated across the link
	capRem []float64 // capacity not yet claimed by fixed flows
	links  []int32   // links carrying active flows, first-use order
	lflows [][]int32 // per-link flow indexes, admission order
}

func newWFState(nlinks int) *wfState {
	return &wfState{
		nflows: make([]int32, nlinks),
		capRem: make([]float64, nlinks),
		lflows: make([][]int32, nlinks),
	}
}

// ensure grows the per-link arrays to cover nlinks, for a state pooled
// across runs on different snapshots. fill's invariant — nflows
// all-zero between calls, every other entry initialized at first use —
// holds across runs, so growth is the only work.
func (wf *wfState) ensure(nlinks int) {
	if n := len(wf.nflows); n < nlinks {
		wf.nflows = append(wf.nflows, make([]int32, nlinks-n)...)
		wf.capRem = append(wf.capRem, make([]float64, nlinks-n)...)
		wf.lflows = append(wf.lflows, make([][]int32, nlinks-n)...)
	}
}

// fill computes the epoch's max-min fair rates over the active flows:
// repeatedly find the bottleneck link (smallest equal share among
// links still carrying unallocated flows), fix its flows at that
// share, and release their claim on the rest of their paths.
// Afterwards wf.links lists the carrying links for the observation
// pass, with wf.capRem holding their unclaimed capacity; the caller
// zeroes wf.nflows as it consumes them.
func (wf *wfState) fill(active []*simFlow, capEdge []float64) {
	wf.links = wf.links[:0]
	for fi, f := range active {
		f.rate = -1
		for _, e := range f.path {
			if wf.nflows[e] == 0 {
				wf.links = append(wf.links, e)
				wf.capRem[e] = capEdge[e]
				wf.lflows[e] = wf.lflows[e][:0]
			}
			wf.nflows[e]++
			wf.lflows[e] = append(wf.lflows[e], int32(fi))
		}
	}
	for unfixed := len(active); unfixed > 0; {
		best := int32(-1)
		var bestShare float64
		for _, e := range wf.links {
			if wf.nflows[e] == 0 {
				continue
			}
			share := wf.capRem[e] / float64(wf.nflows[e])
			if best < 0 || share < bestShare {
				best, bestShare = e, share
			}
		}
		if best < 0 {
			break // unreachable: every flow crosses at least one link
		}
		if bestShare < 0 {
			bestShare = 0 // floating-point slack
		}
		for _, fi := range wf.lflows[best] {
			f := active[fi]
			if f.rate >= 0 {
				continue
			}
			f.rate = bestShare
			unfixed--
			for _, e := range f.path {
				wf.capRem[e] -= bestShare
				wf.nflows[e]--
			}
		}
		// The bottleneck's flows all just fixed at capRem/n, so its
		// remaining capacity is exactly zero; snapping away the
		// subtraction chain's ulp residue makes a saturated bottleneck
		// read utilization 1.0 exactly — in both engines, which keeps
		// the CCDF's knife-edge ≥1 bin agreeing.
		wf.capRem[best] = 0
	}
}
