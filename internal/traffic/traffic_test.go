package traffic

import (
	"math"
	"testing"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

func pathGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

func TestGravityProperties(t *testing.T) {
	m, err := Gravity([]float64{1, 2, 3}, 60)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Total()-60) > 1e-9 {
		t.Fatalf("total = %v, want 60", m.Total())
	}
	for u := range m.Demand {
		if m.Demand[u][u] != 0 {
			t.Fatal("self demand must be zero")
		}
	}
	// Demand(1,2) : Demand(0,1) = (2*3):(1*2) = 3
	if r := m.Demand[1][2] / m.Demand[0][1]; math.Abs(r-3) > 1e-9 {
		t.Fatalf("gravity ratio = %v, want 3", r)
	}
	// symmetric masses -> symmetric matrix
	if m.Demand[0][2] != m.Demand[2][0] {
		t.Fatal("gravity with symmetric masses must be symmetric")
	}
}

func TestGravityErrors(t *testing.T) {
	if _, err := Gravity([]float64{1}, 10); err == nil {
		t.Fatal("single node should fail")
	}
	if _, err := Gravity([]float64{1, 2}, 0); err == nil {
		t.Fatal("zero total should fail")
	}
	if _, err := Gravity([]float64{1, -1}, 10); err == nil {
		t.Fatal("negative mass should fail")
	}
	if _, err := Gravity([]float64{0, 0}, 10); err == nil {
		t.Fatal("all-zero masses should fail")
	}
}

func TestRoutePathGraphMiddleLinkBusiest(t *testing.T) {
	g := pathGraph(4) // 0-1-2-3
	m, err := Gravity(UniformMasses(4), 12)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Route(g, m, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Links) != 3 {
		t.Fatalf("links = %d, want 3", len(rep.Links))
	}
	// Conservation: total link load = sum over pairs of demand*distance.
	var wantLoad float64
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if u != v {
				d := float64(v - u)
				if d < 0 {
					d = -d
				}
				wantLoad += m.Demand[u][v] * d
			}
		}
	}
	var gotLoad float64
	middle := 0.0
	for _, l := range rep.Links {
		gotLoad += l.Load
		if l.U == 1 && l.V == 2 {
			middle = l.Load
		}
	}
	if math.Abs(gotLoad-wantLoad) > 1e-9 {
		t.Fatalf("total load %v, want %v", gotLoad, wantLoad)
	}
	if middle != rep.MaxLoad {
		t.Fatalf("middle link load %v is not the max %v", middle, rep.MaxLoad)
	}
	if rep.Undelivered != 0 {
		t.Fatalf("undelivered = %v on a connected graph", rep.Undelivered)
	}
}

func TestRouteECMPSplitsEvenly(t *testing.T) {
	// Square 0-1-2-3-0: two equal paths between opposite corners.
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 0)
	m := &Matrix{Demand: make([][]float64, 4)}
	for i := range m.Demand {
		m.Demand[i] = make([]float64, 4)
	}
	m.Demand[0][2] = 8
	rep, err := Route(g, m, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range rep.Links {
		if math.Abs(l.Load-4) > 1e-9 {
			t.Fatalf("link (%d,%d) load %v, want 4 (even split)", l.U, l.V, l.Load)
		}
	}
}

func TestRouteUndelivered(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	m := &Matrix{Demand: [][]float64{{0, 1, 5}, {1, 0, 0}, {5, 0, 0}}}
	rep, err := Route(g, m, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Undelivered-10) > 1e-9 {
		t.Fatalf("undelivered = %v, want 10", rep.Undelivered)
	}
}

func TestRouteUtilization(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 1) // capacity 2
	m := &Matrix{Demand: [][]float64{{0, 6}, {0, 0}}}
	rep, err := Route(g, m, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.MaxUtilization-3) > 1e-9 {
		t.Fatalf("utilization = %v, want 3 (load 6 / capacity 2)", rep.MaxUtilization)
	}
}

func TestRouteErrors(t *testing.T) {
	if _, err := Route(graph.New(0), &Matrix{}, false); err == nil {
		t.Fatal("empty graph should fail")
	}
	if _, err := Route(graph.New(2), &Matrix{Demand: [][]float64{{0}}}, false); err == nil {
		t.Fatal("size mismatch should fail")
	}
}

func TestHotSpots(t *testing.T) {
	rep := &LoadReport{Links: []LinkLoad{
		{0, 1, 5}, {1, 2, 9}, {2, 3, 1}, {3, 4, 7},
	}}
	hot := rep.HotSpots(2)
	if len(hot) != 2 || rep.Links[hot[0]].Load != 9 || rep.Links[hot[1]].Load != 7 {
		t.Fatalf("hot spots = %v", hot)
	}
	if got := rep.HotSpots(10); len(got) != 4 {
		t.Fatalf("HotSpots over-capacity = %d entries", len(got))
	}
}

func TestHotSpotsDegenerateK(t *testing.T) {
	rep := &LoadReport{Links: []LinkLoad{{0, 1, 5}, {1, 2, 9}}}
	if got := rep.HotSpots(0); len(got) != 0 {
		t.Fatalf("HotSpots(0) = %v, want empty", got)
	}
	if got := rep.HotSpots(-3); len(got) != 0 {
		t.Fatalf("HotSpots(-3) = %v, want empty", got)
	}
	if got := rep.HotSpots(7); len(got) != 2 || rep.Links[got[0]].Load != 9 {
		t.Fatalf("HotSpots(7) = %v, want both links, busiest first", got)
	}
	if got := (&LoadReport{}).HotSpots(4); len(got) != 0 {
		t.Fatalf("HotSpots on empty report = %v", got)
	}
}

func TestHotSpotsTieOrdering(t *testing.T) {
	// Equal loads keep the lower link index first: selection only swaps
	// on a strictly greater load.
	rep := &LoadReport{Links: []LinkLoad{
		{0, 1, 7}, {1, 2, 9}, {2, 3, 9}, {3, 4, 7}, {4, 5, 1},
	}}
	got := rep.HotSpots(4)
	want := []int{1, 2, 0, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tie ordering = %v, want %v", got, want)
		}
	}
}

func TestNoisyMassesSigmaZeroIdentity(t *testing.T) {
	masses := []float64{0, 1, 2.5, 7}
	noisy := NoisyMasses(rng.New(1), masses, 0)
	for i, m := range noisy {
		if m != masses[i] {
			t.Fatalf("sigma=0 changed mass %d: %v -> %v", i, masses[i], m)
		}
	}
}

func TestNoisyMassesClampsNegative(t *testing.T) {
	noisy := NoisyMasses(rng.New(2), []float64{-3, 1, -0.5}, 0.4)
	if noisy[0] != 0 || noisy[2] != 0 {
		t.Fatalf("negative masses not clamped: %v", noisy)
	}
	if noisy[1] <= 0 {
		t.Fatalf("positive mass must stay positive: %v", noisy)
	}
	// The clamped vector must be a valid Gravity input.
	if _, err := Gravity(NoisyMasses(rng.New(3), []float64{-1, 2, 3}, 0.2), 10); err != nil {
		t.Fatalf("clamped masses rejected by Gravity: %v", err)
	}
}

func TestMatrixRowHonorsBuffer(t *testing.T) {
	m, err := Gravity([]float64{1, 2, 3}, 60)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 3)
	row := m.Row(1, buf)
	if &row[0] != &buf[0] {
		t.Fatal("Row must fill the caller's buffer when it has capacity")
	}
	// Mutating the returned row must not corrupt the matrix.
	row[0] = -99
	if m.Demand[1][0] == -99 {
		t.Fatal("Row leaked the backing row despite a capable buffer")
	}
	// An undersized buffer falls back to the backing row.
	if short := m.Row(1, nil); &short[0] != &m.Demand[1][0] {
		t.Fatal("Row with nil buffer should return the backing row")
	}
	// Both forms agree with GravityDemand.Row, the shared contract.
	gd, err := NewGravityDemand([]float64{1, 2, 3}, 60)
	if err != nil {
		t.Fatal(err)
	}
	gbuf := make([]float64, 3)
	grow := gd.Row(1, gbuf)
	for v := range grow {
		if math.Abs(grow[v]-m.Demand[1][v]) > 1e-9 {
			t.Fatalf("streamed row disagrees with dense row at %d: %v vs %v", v, grow[v], m.Demand[1][v])
		}
	}
	// Capacity-only (length 0) and nil buffers satisfy the contract on
	// both implementations: capacity suffices -> reslice and fill;
	// otherwise a usable fresh slice (or backing row) comes back.
	for name, d := range map[string]Demand{"matrix": m, "gravity": gd} {
		capOnly := make([]float64, 0, 3)
		row := d.Row(1, capOnly)
		if len(row) != 3 || &row[0] != &capOnly[:1][0] {
			t.Fatalf("%s: capacity-only buffer not resliced and filled", name)
		}
		if row := d.Row(1, nil); len(row) != 3 {
			t.Fatalf("%s: nil buffer returned %d entries", name, len(row))
		}
	}
}

func TestNoisyMassesPreservesScale(t *testing.T) {
	r := rng.New(5)
	masses := UniformMasses(2000)
	noisy := NoisyMasses(r, masses, 0.3)
	var sum float64
	for _, m := range noisy {
		if m <= 0 {
			t.Fatal("noisy mass must stay positive")
		}
		sum += m
	}
	mean := sum / float64(len(noisy))
	// lognormal mean e^{sigma^2/2} ≈ 1.046
	if mean < 0.9 || mean > 1.2 {
		t.Fatalf("noisy mass mean %v drifted", mean)
	}
}
