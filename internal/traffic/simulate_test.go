package traffic

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"netmodel/internal/engine"
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// meshGraph is a ring with chords — connected, multipath, cheap.
func meshGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
		g.MustAddEdge(i, (i+7)%n)
	}
	return g
}

func TestSimulateLowLoadCompletes(t *testing.T) {
	s := meshGraph(40).Freeze()
	rep, err := Simulate(s, UniformMasses(40), WorkloadSpec{LoadFactor: 0.02, Epochs: 30}, rng.New(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arrived == 0 {
		t.Fatal("no flows arrived at positive load")
	}
	if rep.Completed == 0 || rep.MeanFCT <= 0 {
		t.Fatalf("completed %d, mean FCT %v at light load", rep.Completed, rep.MeanFCT)
	}
	// Under max-min sharing even a lone flow saturates its bottleneck
	// link, so light load still shows a small saturated fraction — but it
	// must stay small and well below a heavily loaded run.
	if rep.OverloadFrac > 0.2 {
		t.Fatalf("overload fraction %v at light load", rep.OverloadFrac)
	}
	heavy, err := Simulate(s, UniformMasses(40), WorkloadSpec{LoadFactor: 2, Epochs: 30}, rng.New(1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.OverloadFrac <= rep.OverloadFrac {
		t.Fatalf("overload fraction did not grow with load: %v at 0.02x vs %v at 2x",
			rep.OverloadFrac, heavy.OverloadFrac)
	}
	if rep.Undelivered != 0 {
		t.Fatalf("undelivered %d on a connected graph", rep.Undelivered)
	}
	if len(rep.Epochs) != 30 {
		t.Fatalf("epoch rows %d, want 30", len(rep.Epochs))
	}
	var arrived, completed int
	for _, e := range rep.Epochs {
		arrived += e.Arrived
		completed += e.Completed
	}
	if arrived != rep.Arrived || completed != rep.Completed {
		t.Fatalf("epoch sums (%d, %d) disagree with totals (%d, %d)",
			arrived, completed, rep.Arrived, rep.Completed)
	}
	if rep.Completed+rep.ResidualFlows != rep.Arrived {
		t.Fatalf("flow conservation: %d completed + %d residual != %d arrived",
			rep.Completed, rep.ResidualFlows, rep.Arrived)
	}
}

func TestSimulateHighLoadSaturates(t *testing.T) {
	s := pathGraph(10).Freeze()
	rep, err := Simulate(s, UniformMasses(10), WorkloadSpec{LoadFactor: 3, Epochs: 15}, rng.New(2), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OverloadFrac == 0 {
		t.Fatal("no overloaded link-epochs at 3x load")
	}
	if rep.MaxUtil < 0.999 {
		t.Fatalf("max utilization %v, want saturation", rep.MaxUtil)
	}
	// Max-min rates must never exceed capacity.
	if rep.MaxUtil > 1+1e-9 {
		t.Fatalf("max utilization %v exceeds capacity", rep.MaxUtil)
	}
	if rep.ResidualFlows == 0 {
		t.Fatal("overloaded path cleared every flow")
	}
}

func TestSimulateUtilCCDFMonotone(t *testing.T) {
	s := meshGraph(30).Freeze()
	rep, err := Simulate(s, UniformMasses(30), WorkloadSpec{LoadFactor: 0.8, Epochs: 10}, rng.New(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.UtilCCDF) != len(utilCCDFThresholds) {
		t.Fatalf("CCDF has %d bins", len(rep.UtilCCDF))
	}
	prev := 1.0
	for _, b := range rep.UtilCCDF {
		if b.Frac < 0 || b.Frac > 1 {
			t.Fatalf("CCDF frac %v out of range", b.Frac)
		}
		if b.Frac > prev+1e-12 {
			t.Fatalf("CCDF not non-increasing at util %v", b.Util)
		}
		prev = b.Frac
	}
}

func TestSimulateMaxMinTwoFlowsShareLink(t *testing.T) {
	// Two nodes, one unit link, heavy persistent demand: the epoch rates
	// must fill the link exactly (utilization 1) and split it across the
	// contending flows — aggregate throughput per epoch equals capacity.
	g := graph.New(2)
	g.MustAddEdge(0, 1)
	rep, err := Simulate(g.Freeze(), UniformMasses(2),
		WorkloadSpec{LoadFactor: 4, Epochs: 10, Sizes: "exp", MeanSize: 5}, rng.New(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Epochs {
		if e.Active > 0 && math.Abs(e.MaxUtil-1) > 1e-9 {
			t.Fatalf("epoch %d: %d active flows but utilization %v", e.Epoch, e.Active, e.MaxUtil)
		}
	}
	if rep.Links.MaxUtilization > 1+1e-9 {
		t.Fatalf("time-averaged utilization %v exceeds capacity", rep.Links.MaxUtilization)
	}
}

func TestSimulateWorkerInvariance(t *testing.T) {
	s := meshGraph(60).Freeze()
	spec := WorkloadSpec{LoadFactor: 0.7, Epochs: 12, Arrivals: "onoff", Sizes: "pareto", TailIndex: 1.4}
	var base []byte
	for _, workers := range []int{1, 2, 4, 8} {
		rep, err := Simulate(s, UniformMasses(60), spec, rng.New(9), workers)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		link, err := json.Marshal(rep.Links)
		if err != nil {
			t.Fatal(err)
		}
		data = append(data, link...)
		if base == nil {
			base = data
		} else if !bytes.Equal(base, data) {
			t.Fatalf("workers=%d report diverged", workers)
		}
	}
}

func TestSimulateWithMemoizesRouting(t *testing.T) {
	s := meshGraph(25).Freeze()
	eng := engine.New(s, engine.WithWorkers(2))
	if a, b := RoutingOf(eng), RoutingOf(eng); a != b {
		t.Fatal("RoutingOf must memoize per snapshot")
	}
	spec := WorkloadSpec{LoadFactor: 0.5, Epochs: 8}
	warm, err := SimulateWith(eng, UniformMasses(25), spec, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	// A second run over the now-warm routing cache and a run with fresh
	// routing state must agree exactly: cache reuse never changes paths.
	again, err := SimulateWith(eng, UniformMasses(25), spec, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Simulate(s, UniformMasses(25), spec, rng.New(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	wj, _ := json.Marshal(warm)
	aj, _ := json.Marshal(again)
	fj, _ := json.Marshal(fresh)
	if !bytes.Equal(wj, aj) || !bytes.Equal(wj, fj) {
		t.Fatal("memoized, re-run and fresh-routing simulations disagree")
	}
}

func TestRoutingEvictionKeepsPathsCorrect(t *testing.T) {
	s := meshGraph(30).Freeze()
	rt := NewRouting(s)
	rt.max = 4 // force eviction pressure
	rt.Ensure([]int{0, 1, 2, 3, 4, 5}, 2)
	if len(rt.trees) != 6 {
		t.Fatalf("batch must survive its own Ensure, have %d trees", len(rt.trees))
	}
	want, _ := rt.Tree(0).appendPath(nil, 15)
	rt.Ensure([]int{10, 11, 12, 13}, 1)
	if len(rt.trees) > 6 {
		t.Fatalf("eviction did not shrink the cache: %d trees", len(rt.trees))
	}
	if _, cached := rt.trees[0]; cached {
		t.Fatal("oldest tree should have been evicted")
	}
	got, _ := rt.Tree(0).appendPath(nil, 15)
	if len(got) != len(want) {
		t.Fatalf("rebuilt path length %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatal("rebuilt tree disagrees with the evicted one")
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	s := meshGraph(10).Freeze()
	u := UniformMasses(10)
	if _, err := Simulate(graph.New(1).Freeze(), []float64{1}, WorkloadSpec{LoadFactor: 1}, rng.New(1), 1); err == nil {
		t.Fatal("single node should fail")
	}
	if _, err := Simulate(s, UniformMasses(4), WorkloadSpec{LoadFactor: 1}, rng.New(1), 1); err == nil {
		t.Fatal("masses size mismatch should fail")
	}
	if _, err := Simulate(s, make([]float64, 10), WorkloadSpec{LoadFactor: 1}, rng.New(1), 1); err == nil {
		t.Fatal("all-zero masses should fail")
	}
	if _, err := Simulate(s, u, WorkloadSpec{LoadFactor: -1}, rng.New(1), 1); err == nil {
		t.Fatal("invalid spec should fail")
	}
	if _, err := Simulate(graph.New(3).Freeze(), UniformMasses(3), WorkloadSpec{LoadFactor: 1}, rng.New(1), 1); err == nil {
		t.Fatal("edgeless graph should fail")
	}
	neg := UniformMasses(10)
	neg[3] = -1
	if _, err := Simulate(s, neg, WorkloadSpec{LoadFactor: 1}, rng.New(1), 1); err == nil {
		t.Fatal("negative mass should fail")
	}
}

func TestSimulateDisconnectedUndelivered(t *testing.T) {
	// Two components: flows across the cut count as undelivered.
	g := graph.New(6)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 5)
	rep, err := Simulate(g.Freeze(), UniformMasses(6), WorkloadSpec{LoadFactor: 1, Epochs: 10}, rng.New(6), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Undelivered == 0 {
		t.Fatal("cross-component flows must surface as undelivered")
	}
}
