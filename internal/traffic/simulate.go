package traffic

import (
	"errors"

	"netmodel/internal/engine"
	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/par"
	"netmodel/internal/rng"
)

// Routing is the memoizable routing state of a frozen snapshot: one
// shortest-path tree per origin, built on demand and cached under a
// deterministic FIFO budget so workload simulations reuse paths across
// epochs without holding N trees for a 100k-node map. Tree construction
// is a pure function of (snapshot, source) — BFS discovery order over
// the CSR arc arrays — so a flow's path never depends on the worker
// count or on which epochs demanded which trees first.
//
// Routing is not safe for concurrent use; Ensure shards tree builds
// internally, but callers (the sequential simulation loop) must not
// query one Routing from several goroutines.
type Routing struct {
	s       *graph.Snapshot
	arcEdge []int32
	max     int // tree-cache budget, a pure function of the node count
	trees   map[int]*rtree
	fifo    []int // cached sources, oldest first
	// paths memoizes resolved origin-destination paths (nil = dst
	// unreachable from src). A path is ~40 bytes against ~12n for a
	// tree, so repeated OD pairs — re-runs over one snapshot, heavy
	// origins inside one run — skip the BFS entirely even after the
	// tree cache evicted the origin's tree.
	paths map[int64][]int32

	// Admission scratch, persisted so a steady-state epoch whose OD
	// pairs are all memoized admits without allocating (admitPending).
	admPaths   [][]int32
	admUnreach []bool
	admMiss    []int
	admBatch   []int

	// Tree-storage pool: evicted and Reset trees park here and hand
	// their arrays to the next build, and Ensure's batch buffers
	// persist — so a warm Routing swept across same-sized topologies
	// (Routing.Reset) rebuilds its trees without allocating.
	free      []*rtree
	enMissing []int
	enBuilt   []*rtree
	enScratch []*metrics.BFSScratch
	// enStamp[src] == enRound marks batch membership during Ensure, a
	// stamped array instead of a per-call map.
	enStamp []int32
	enRound int32

	// Refresh scratch, persisted so a steady-state tree repair at fixed
	// n allocates nothing (Routing.Refresh). rfBody is the repair
	// closure, created once and re-reading its per-call parameters
	// (rfNext, rfBudget, rfOldN and the slices below) from these fields
	// — a closure literal per Refresh would be the last allocation on
	// an otherwise alloc-free repair.
	rfIns, rfRem []graph.DeltaEdge
	rfOldToNew   []int32
	rfSrcs       []int
	rfChanged    []bool
	rfScratch    []*treeScratch
	rfEdges      []graph.Edge
	rfArcEdge    []int32
	rfNext       *graph.Snapshot
	rfBudget     int
	rfOldN       int
	rfBody       func(worker, i int)
	// changedStamp[src] == changedRound marks sources whose tree
	// changed this Refresh — the memo-invalidation set, a stamped array
	// instead of a per-call map.
	changedStamp []int32
	changedRound int32
}

// routingPathBudget caps the memoized paths (entries, not bytes; a
// deterministic stop-inserting cap, never an eviction).
const routingPathBudget = 1 << 18

func pathKey(src, dst int) int64 { return int64(src)<<32 | int64(uint32(dst)) }

// cachedPath returns the memoized path for (src, dst): path, whether
// the pair is cached at all, and whether dst is unreachable from src.
func (rt *Routing) cachedPath(src, dst int) (path []int32, ok, unreachable bool) {
	p, ok := rt.paths[pathKey(src, dst)]
	return p, ok, ok && p == nil
}

// storePath memoizes a resolved (src, dst) path (nil for unreachable)
// while the budget lasts.
func (rt *Routing) storePath(src, dst int, path []int32, reachable bool) {
	if len(rt.paths) >= routingPathBudget {
		return
	}
	if !reachable {
		path = nil
	}
	rt.paths[pathKey(src, dst)] = path
}

// rtree is one origin's BFS tree over the snapshot.
type rtree struct {
	dist   []int32 // hop distance from the source, -1 unreachable
	parent []int32 // BFS parent toward the source, -1 at source/unreachable
	edge   []int32 // snapshot edge id of (v, parent[v]), -1 where parent is
}

// routingTreeBudget bounds the memory held by cached trees (~12 bytes
// per node per tree).
const routingTreeBudget = 32 << 20

// RoutingTreeBudget returns the tree-cache entry budget NewRouting
// configures at n nodes — a pure function of the node count under the
// fixed byte budget, and the "routing budget" component of artifact
// cache keys.
func RoutingTreeBudget(n int) int {
	max := routingTreeBudget / (12 * (n + 1))
	if max < 16 {
		max = 16
	}
	return max
}

// NewRouting returns empty routing state over the snapshot.
func NewRouting(s *graph.Snapshot) *Routing {
	return &Routing{s: s, arcEdge: s.ArcEdgeIDs(), max: RoutingTreeBudget(s.N()),
		trees: make(map[int]*rtree), paths: make(map[int64][]int32)}
}

// TreeBudget returns the configured tree-cache entry budget.
func (rt *Routing) TreeBudget() int { return rt.max }

// MemBytes estimates the heap bytes the routing state holds live: the
// three int32 rows of each cached tree plus the memoized OD paths —
// the byte cost an artifact cache should charge for a warm Routing.
func (rt *Routing) MemBytes() int64 {
	n := int64(rt.s.N())
	return int64(len(rt.trees))*12*(n+1) + int64(len(rt.paths))*48
}

// newTree pops a pooled tree (arrays intact, contents stale) or
// allocates a fresh one.
func (rt *Routing) newTree() *rtree {
	if k := len(rt.free); k > 0 {
		t := rt.free[k-1]
		rt.free[k-1] = nil
		rt.free = rt.free[:k-1]
		return t
	}
	return &rtree{}
}

// RoutingOf returns the routing state memoized in the engine's
// per-snapshot cache (key "traffic:routing"): every workload simulation
// over the engine's current snapshot shares one set of shortest-path
// trees, and an Advance to a refreshed snapshot drops it with the rest
// of the version's entries.
func RoutingOf(eng *engine.Engine) *Routing {
	return eng.Cached("traffic:routing", func() any {
		return NewRouting(eng.Snapshot())
	}).(*Routing)
}

// selectParent picks v's canonical tree entry: the smallest-id neighbor
// one hop closer to the source, with the snapshot edge id toward it
// (-1, -1 at the source and for unreachable nodes). The choice is a
// pure function of the distance field — not of BFS discovery order — so
// cold builds and incremental repairs (Routing.Refresh) produce the
// tree entry for entry.
func selectParent(s *graph.Snapshot, arcEdge []int32, dist []int32, v int) (parent, edge int32) {
	dv := dist[v]
	if dv <= 0 {
		return -1, -1
	}
	lo, _ := s.ArcRange(v)
	for j, u := range s.Neighbors(v) {
		if dist[u] == dv-1 {
			return u, arcEdge[int(lo)+j]
		}
	}
	return -1, -1
}

// buildTreeInto fills t with src's canonical tree over s — one hybrid
// BFS for the distances, then every node's canonical parent — growing
// t's arrays to the snapshot size. The tree — and every path read from
// it — is deterministic and depends only on (snapshot, source):
// selectParent is a pure function of the distance field, and the hybrid
// kernel's distances are bit-identical to the classic BFS, so pooled
// rebuilds, parallel cold builds and incremental repairs all produce
// the same tree entry for entry. At fixed n a rebuild through a warm t
// and scratch allocates nothing.
func buildTreeInto(t *rtree, s *graph.Snapshot, arcEdge []int32, src int, sc *metrics.BFSScratch) {
	n := s.N()
	t.dist = growRow(t.dist, n)
	t.parent = growRow(t.parent, n)
	t.edge = growRow(t.edge, n)
	metrics.BFSHybrid(s, src, t.dist, sc)
	for v := 0; v < n; v++ {
		t.parent[v], t.edge[v] = selectParent(s, arcEdge, t.dist, v)
	}
}

// growRow resizes a tree row to exactly n entries, reusing its backing
// array when it is large enough (contents are overwritten by the
// caller).
func growRow(row []int32, n int) []int32 {
	if cap(row) < n {
		return make([]int32, n)
	}
	return row[:n]
}

// buildTree is the cold-allocation form of buildTreeInto.
func buildTree(s *graph.Snapshot, arcEdge []int32, src int) *rtree {
	t := &rtree{}
	buildTreeInto(t, s, arcEdge, src, metrics.NewBFSScratch(s.N()))
	return t
}

// Ensure builds the trees of the given sources (ascending, no
// duplicates) that are not cached yet, sharding the builds across
// workers (<= 0 means GOMAXPROCS), and protects the whole set from
// eviction until the next Ensure. Builds write index-private slots and
// insert in source order, so the cache state after Ensure is
// worker-count invariant.
func (rt *Routing) Ensure(sources []int, workers int) {
	if len(sources) == 0 {
		return
	}
	n := rt.s.N()
	if len(rt.enStamp) < n {
		rt.enStamp = append(rt.enStamp, make([]int32, n-len(rt.enStamp))...)
	}
	rt.enRound++
	missing := rt.enMissing[:0]
	for _, src := range sources {
		rt.enStamp[src] = rt.enRound
		if _, ok := rt.trees[src]; !ok {
			missing = append(missing, src)
		}
	}
	rt.enMissing = missing
	for len(rt.enBuilt) < len(missing) {
		rt.enBuilt = append(rt.enBuilt, nil)
	}
	built := rt.enBuilt[:len(missing)]
	// Trees come off the pool sequentially (the freelist is not
	// concurrency-safe); the parallel builds then fill index-private
	// slots, so the batch stays worker-count invariant.
	for i := range built {
		built[i] = rt.newTree()
	}
	w := par.Workers(workers)
	for len(rt.enScratch) < w {
		rt.enScratch = append(rt.enScratch, nil)
	}
	if w <= 1 {
		// Inline, closure-free: the sequential path is the steady state of
		// sweep cells (Workers=1) and must stay allocation-free once the
		// scratch exists (see the kernels-routing-reset ceiling).
		if rt.enScratch[0] == nil {
			rt.enScratch[0] = metrics.NewBFSScratch(n)
		}
		for i := range built {
			buildTreeInto(built[i], rt.s, rt.arcEdge, missing[i], rt.enScratch[0])
		}
	} else {
		par.ForEach(len(missing), w, func(worker, i int) {
			if rt.enScratch[worker] == nil {
				rt.enScratch[worker] = metrics.NewBFSScratch(n)
			}
			buildTreeInto(built[i], rt.s, rt.arcEdge, missing[i], rt.enScratch[worker])
		})
	}
	// Move the batch to the young end of the FIFO, then evict the
	// oldest entries beyond the budget (never a batch member: the
	// effective budget covers the whole batch).
	keep := rt.fifo[:0]
	for _, src := range rt.fifo {
		if rt.enStamp[src] != rt.enRound {
			keep = append(keep, src)
		}
	}
	rt.fifo = append(keep, sources...)
	for i, src := range missing {
		rt.trees[src] = built[i]
		built[i] = nil
	}
	budget := rt.max
	if budget < len(sources) {
		budget = len(sources)
	}
	for len(rt.trees) > budget && len(rt.fifo) > 0 {
		old := rt.fifo[0]
		rt.fifo = rt.fifo[1:]
		if t, ok := rt.trees[old]; ok {
			rt.free = append(rt.free, t)
			delete(rt.trees, old)
		}
	}
}

// Tree returns src's shortest-path tree, building and caching it if
// needed.
func (rt *Routing) Tree(src int) *rtree {
	if t, ok := rt.trees[src]; ok {
		return t
	}
	rt.Ensure([]int{src}, 1)
	return rt.trees[src]
}

// appendPath appends the edge ids of the tree path from dst back to the
// tree's source onto buf and reports whether dst is reachable.
func (t *rtree) appendPath(buf []int32, dst int) ([]int32, bool) {
	if t.dist[dst] < 0 {
		return buf, false
	}
	for v := int32(dst); t.parent[v] >= 0; v = t.parent[v] {
		buf = append(buf, t.edge[v])
	}
	return buf, true
}

// EpochStats is one simulated epoch's observation row.
type EpochStats struct {
	Epoch     int `json:"epoch"`
	Arrived   int `json:"arrived"`   // flows admitted this epoch
	Completed int `json:"completed"` // flows finished this epoch
	Active    int `json:"active"`    // flows in flight at epoch end
	// MeanUtil and MaxUtil summarize link utilization under the epoch's
	// max-min rates; OverloadFrac is the fraction of all links at or
	// above the spec's overload threshold.
	MeanUtil     float64 `json:"mean_util"`
	MaxUtil      float64 `json:"max_util"`
	OverloadFrac float64 `json:"overload_frac"`
	// Failure-epoch observations, present only under fault injection:
	// the down-entity counts at epoch end and this epoch's reroute,
	// kill and re-admission-attempt counts.
	LinksDown int `json:"links_down,omitempty"`
	NodesDown int `json:"nodes_down,omitempty"`
	Rerouted  int `json:"rerouted,omitempty"`
	Killed    int `json:"killed,omitempty"`
	Retried   int `json:"retried,omitempty"`
}

// UtilBin is one point of the link-utilization CCDF: the fraction of
// link-epochs with utilization at or above Util.
type UtilBin struct {
	Util float64 `json:"util"`
	Frac float64 `json:"frac"`
}

// utilCCDFThresholds are the fixed CCDF sample points; a fixed grid
// keeps the report schema stable across runs and sweep cells.
var utilCCDFThresholds = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}

// FlowRecord is one admitted flow's trace row, recorded in admission
// order when the simulation runs with WithFlowTrace. Flow identity (the
// slice index) is engine-independent: both engines admit the same flows
// in the same order from the same streams.
type FlowRecord struct {
	Src, Dst int
	Size     float64
	Arrived  float64 // arrival instant
	Finished float64 // completion instant; meaningful only when Done
	Done     bool
	// Failure fate: Killed marks a flow dead at the horizon because a
	// failure severed its path (cleared again if a retry re-admits it);
	// Reroutes and Retries count its successful mid-life path
	// replacements and its re-admission attempts.
	Killed   bool
	Reroutes int
	Retries  int
}

// SimReport is the outcome of one workload simulation: the resolved
// spec, aggregate flow and utilization metrics, the per-epoch rows, and
// (not serialized — it is O(links)) the time-averaged link loads as a
// LoadReport.
type SimReport struct {
	Spec          WorkloadSpec `json:"spec"`
	Arrived       int          `json:"arrived"`
	Completed     int          `json:"completed"`
	Undelivered   int          `json:"undelivered"` // flows to unreachable destinations
	ResidualFlows int          `json:"residual_flows"`
	ResidualSize  float64      `json:"residual_size"` // unfinished volume at the horizon
	// MeanFCT is the mean flow completion time of completed flows, with
	// sub-epoch completion instants estimated from the final rate.
	MeanFCT    float64 `json:"mean_fct"`
	MeanActive float64 `json:"mean_active"`
	// MeanUtil, MaxUtil and OverloadFrac aggregate over link-epochs.
	MeanUtil     float64      `json:"mean_util"`
	MaxUtil      float64      `json:"max_util"`
	OverloadFrac float64      `json:"overload_frac"`
	UtilCCDF     []UtilBin    `json:"util_ccdf"`
	Epochs       []EpochStats `json:"epochs"`
	// Failures summarizes survivability under fault injection; nil when
	// the spec injects none.
	Failures *SurvivabilityReport `json:"failures,omitempty"`
	Links    *LoadReport          `json:"-"`
	// Flows holds the per-flow trace in admission order when the
	// simulation ran with WithFlowTrace, nil otherwise. Never
	// serialized: it is O(arrivals).
	Flows []FlowRecord `json:"-"`
}

// WorkloadMetricNames is the fixed scalar schema of a SimReport, the
// rows the sweep driver folds across seeds (order matches Scalars).
func WorkloadMetricNames() []string {
	return []string{"wl_mean_fct", "wl_mean_active", "wl_mean_util",
		"wl_max_util", "wl_overload_frac", "wl_completed_frac",
		"wl_killed_frac", "wl_rerouted_frac", "wl_disconnected_od",
		"wl_giant_cap_min"}
}

// Scalars returns the report's scalar metric vector in
// WorkloadMetricNames order. Without fault injection the survivability
// entries take their healthy-topology values (nothing killed or
// rerouted, no measured disconnection, full giant capacity).
func (rep *SimReport) Scalars() []float64 {
	completedFrac := 1.0
	if rep.Arrived > 0 {
		completedFrac = float64(rep.Completed) / float64(rep.Arrived)
	}
	killedFrac, reroutedFrac, disc := 0.0, 0.0, 0.0
	giantMin := 1.0
	if f := rep.Failures; f != nil {
		if rep.Arrived > 0 {
			killedFrac = float64(f.Killed) / float64(rep.Arrived)
			reroutedFrac = float64(f.Rerouted) / float64(rep.Arrived)
		}
		disc = f.DisconnectedOD
		giantMin = f.MinGiantCapacity
	}
	return []float64{rep.MeanFCT, rep.MeanActive, rep.MeanUtil,
		rep.MaxUtil, rep.OverloadFrac, completedFrac,
		killedFrac, reroutedFrac, disc, giantMin}
}

// SimOption tweaks a simulation without widening the WorkloadSpec wire
// format.
type simConfig struct {
	linkCaps []float64
	trace    bool
	rt       *Routing
	scratch  *SimScratch
}

// SimOption is a functional option of Simulate and SimulateWith.
type SimOption func(*simConfig)

// WithLinkCapacities overrides the per-edge capacities (indexed by
// snapshot edge id) in place of multiplicity × spec.CapacityUnit.
// Capacities must be finite and non-negative; zero-capacity links are
// legal — flows routed across one are stuck at rate zero and the link
// counts as utilization zero. The override is how heterogeneous access
// capacities and dead links enter the simulator.
func WithLinkCapacities(caps []float64) SimOption {
	return func(c *simConfig) { c.linkCaps = caps }
}

// WithFlowTrace records every admitted flow's completion time in
// SimReport.Flows — the hook the engine-equivalence suite compares on.
// Tracing is O(arrivals) memory, so it is opt-in.
func WithFlowTrace() SimOption {
	return func(c *simConfig) { c.trace = true }
}

// WithRouting shares a routing state (NewRouting) across simulations,
// the Simulate-level counterpart of SimulateWith's engine-memoized
// trees: repeated runs — a benchmark comparing engines, a caller
// sweeping load factors by hand — skip rebuilding BFS trees for sources
// already ensured. Trees are per-source deterministic, so sharing never
// changes results. Across a growth trajectory, advance the shared state
// to each epoch's snapshot with Routing.Refresh before simulating;
// Simulate rejects a routing state describing a different snapshot.
func WithRouting(rt *Routing) SimOption {
	return func(c *simConfig) { c.rt = rt }
}

// simFlow is one in-flight flow of the epoch engine.
type simFlow struct {
	src, dst  int32
	id        int32 // admission index, the trace identity
	retries   int32 // re-admission attempts consumed so far
	remaining float64
	arrived   float64 // arrival instant
	rate      float64 // current max-min rate; -1 while unallocated
	path      []int32 // snapshot edge ids
}

// pending is one drawn-but-unrouted arrival.
type pending struct {
	src, dst int
	size     float64
}

// simContext is the engine-independent simulation state: the validated
// spec, per-edge capacities, the per-origin arrival sources and their
// split streams, and the destination sampler. Both engines draw from
// exactly this state in exactly the same order, which is what makes
// their flow populations identical.
type simContext struct {
	s       *graph.Snapshot
	rt      *Routing
	spec    WorkloadSpec
	cfg     simConfig
	workers int
	edges   []graph.Edge
	capEdge []float64
	// srcNodes are the origins with positive mass, ascending; streams
	// and sources are indexed alongside.
	srcNodes []int
	streams  []*rng.Rand
	sources  []ArrivalSource
	sizes    SizeDist
	alias    *rng.Alias
	// fail is the fault-injection state, nil on the no-failure path.
	fail *failState
}

// routing returns the routing state admissions and reroutes resolve
// against: the private mirror-topology state under fault injection, the
// shared base state otherwise.
func (ctx *simContext) routing() *Routing {
	if ctx.fail != nil {
		return ctx.fail.frt
	}
	return ctx.rt
}

// Simulate runs the flow-level workload over a frozen snapshot with
// fresh routing state. See SimulateWith for the engine-memoized form
// and the simulation semantics.
func Simulate(s *graph.Snapshot, masses []float64, spec WorkloadSpec, r *rng.Rand, workers int, opts ...SimOption) (*SimReport, error) {
	return simulate(s, NewRouting(s), masses, spec, r, workers, opts...)
}

// SimulateWith runs the flow-level workload over the engine's snapshot,
// reusing the routing state memoized in the engine (RoutingOf) so
// repeated simulations of one topology — a sweep cell's grid of load
// factors, a trajectory epoch's re-measurement — share shortest-path
// trees.
//
// Semantics: time advances in epochs of length spec.EpochLen. At each
// epoch start every origin's arrival source emits flows (origin o with
// probability mass m(o) carries the share m(o)/Σm of the aggregate
// arrival rate spec.LoadFactor·ΣC/spec.MeanSize); each flow draws a
// destination gravity-weighted (∝ mass, excluding the origin) and a
// size from the spec's distribution, and follows the origin's BFS
// shortest-path tree. Within an epoch all active flows share link
// capacity max-min fairly; completed flows leave at the epoch boundary
// with a sub-epoch completion estimate. Every draw comes from streams
// split off r per origin, and rate allocation is either sequential in
// deterministic order (spec.Engine "epoch") or solved per bottleneck
// component and merged by deterministic component index ("event") — so
// the report is bit-identical at every worker count either way.
func SimulateWith(eng *engine.Engine, masses []float64, spec WorkloadSpec, r *rng.Rand, opts ...SimOption) (*SimReport, error) {
	return simulate(eng.Snapshot(), RoutingOf(eng), masses, spec, r, eng.Workers(), opts...)
}

func simulate(s *graph.Snapshot, rt *Routing, masses []float64, spec WorkloadSpec, r *rng.Rand, workers int, opts ...SimOption) (*SimReport, error) {
	ctx, err := newSimContext(s, rt, masses, spec, r, workers, opts...)
	if err != nil {
		return nil, err
	}
	if ctx.spec.Engine == EngineEvent {
		return simulateEvent(ctx)
	}
	return simulateEpoch(ctx)
}

// newSimContext validates the workload and assembles the
// engine-independent simulation state both engines run from — split
// from simulate so benchmarks can stage a context (and the event
// engine's pre-drawn calendar) outside a measured region.
func newSimContext(s *graph.Snapshot, rt *Routing, masses []float64, spec WorkloadSpec, r *rng.Rand, workers int, opts ...SimOption) (*simContext, error) {
	n := s.N()
	if n < 2 {
		return nil, errors.New("traffic: workload needs at least two nodes")
	}
	if len(masses) != n {
		return nil, errors.New("traffic: masses size mismatch")
	}
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if s.M() == 0 {
		return nil, errors.New("traffic: workload needs at least one link")
	}
	var cfg simConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.rt != nil {
		if cfg.rt.s.Version() != s.Version() {
			return nil, errors.New("traffic: shared routing state describes a different snapshot; advance it with Routing.Refresh")
		}
		rt = cfg.rt
	}
	positive := 0
	var sumMass float64
	for _, m := range masses {
		if m < 0 {
			return nil, errors.New("traffic: negative mass")
		}
		if m > 0 {
			positive++
		}
		sumMass += m
	}
	if positive < 2 {
		return nil, errors.New("traffic: workload needs at least two positive masses")
	}
	alias, err := rng.NewAliasTable(masses)
	if err != nil {
		return nil, err
	}

	// Link capacities: edge multiplicity × the capacity unit, unless
	// overridden per edge.
	edges := s.EdgeList()
	capEdge := make([]float64, len(edges))
	var capTotal float64
	if cfg.linkCaps != nil {
		if len(cfg.linkCaps) != len(edges) {
			return nil, errors.New("traffic: link capacity override size mismatch")
		}
		for i, c := range cfg.linkCaps {
			if !(c >= 0) || c > 1e300 { // NaN fails the first comparison
				return nil, errors.New("traffic: link capacities must be finite and non-negative")
			}
			capEdge[i] = c
			capTotal += c
		}
	} else {
		for i, e := range edges {
			capEdge[i] = float64(e.W) * spec.CapacityUnit
			capTotal += capEdge[i]
		}
	}
	if capTotal <= 0 {
		return nil, errors.New("traffic: total link capacity must be positive")
	}
	lambdaTotal := spec.LoadFactor * capTotal / spec.MeanSize

	// One split stream per origin with positive mass, keyed by node id:
	// the stream feeds the origin's arrival process and, interleaved in
	// arrival order, its destination and size draws. Worker count never
	// touches these streams.
	proc := spec.arrivalProcess()
	var srcNodes []int
	for u, m := range masses {
		if m > 0 {
			srcNodes = append(srcNodes, u)
		}
	}
	streams := make([]*rng.Rand, len(srcNodes))
	sources := make([]ArrivalSource, len(srcNodes))
	for i, u := range srcNodes {
		streams[i] = r.Split(uint64(u))
		sources[i] = proc.NewSource(streams[i], lambdaTotal*masses[u]/sumMass)
	}

	ctx := &simContext{
		s: s, rt: rt, spec: spec, cfg: cfg, workers: workers,
		edges: edges, capEdge: capEdge,
		srcNodes: srcNodes, streams: streams, sources: sources,
		sizes: spec.sizeDist(), alias: alias,
	}
	if spec.Failures != nil && spec.Failures.Active() {
		fail, err := newFailState(ctx, masses, r)
		if err != nil {
			return nil, err
		}
		ctx.fail = fail
	}
	return ctx, nil
}

// drawArrivals advances origin i's source by one epoch and appends its
// drawn (dst, size) pairs onto pend. The draw order per origin —
// arrival count, then per flow destination (with rejection) and size —
// is the contract both engines share, so pre-drawing a whole horizon
// origin-by-origin replays the identical stream.
func (ctx *simContext) drawArrivals(i int, dt float64, pend []pending) []pending {
	u := ctx.srcNodes[i]
	k := ctx.sources[i].Arrivals(dt)
	for j := 0; j < k; j++ {
		dst := ctx.alias.NextWith(ctx.streams[i])
		for dst == u {
			dst = ctx.alias.NextWith(ctx.streams[i])
		}
		pend = append(pend, pending{src: u, dst: dst, size: ctx.sizes.Sample(ctx.streams[i])})
	}
	return pend
}

// admitPending routes the epoch's drawn arrivals (grouped by ascending
// origin). OD pairs already memoized in the routing state resolve
// without touching a tree; the rest are routed in source-contiguous
// chunks of at most the routing cache's tree budget: each chunk
// Ensures its distinct origins (parallel BFS builds) and reads paths
// before the next chunk can evict them — memory stays bounded by the
// budget even when one epoch's arrivals span more origins than the
// cache holds. Reachable flows go to admit in pend order; unreachable
// ones are counted.
func admitPending(rt *Routing, workers int, pend []pending, admit func(p pending, path []int32)) (undelivered int) {
	// The index-parallel buffers persist on the routing state: an epoch
	// whose OD pairs are all memoized — the steady state of a long run —
	// admits its arrivals without a single allocation.
	if cap(rt.admPaths) < len(pend) {
		rt.admPaths = make([][]int32, len(pend))
		rt.admUnreach = make([]bool, len(pend))
	}
	paths := rt.admPaths[:len(pend)]
	unreach := rt.admUnreach[:len(pend)]
	for i := range paths {
		paths[i] = nil
		unreach[i] = false
	}
	// miss holds the pend indexes whose OD pair is not memoized; pend
	// is grouped by origin, so miss inherits the grouping.
	miss := rt.admMiss[:0]
	for i, p := range pend {
		path, ok, unreachable := rt.cachedPath(p.src, p.dst)
		switch {
		case !ok:
			miss = append(miss, i)
		case unreachable:
			unreach[i] = true
		default:
			paths[i] = path
		}
	}
	rt.admMiss = miss
	for k := 0; k < len(miss); {
		batch := rt.admBatch[:0]
		j := k
		for j < len(miss) {
			src := pend[miss[j]].src
			if len(batch) == 0 || batch[len(batch)-1] != src {
				if len(batch) == rt.max {
					break
				}
				batch = append(batch, src)
			}
			j++
		}
		rt.admBatch = batch
		rt.Ensure(batch, workers)
		for ; k < j; k++ {
			i := miss[k]
			p := pend[i]
			path, ok := rt.Tree(p.src).appendPath(nil, p.dst)
			rt.storePath(p.src, p.dst, path, ok)
			if !ok {
				unreach[i] = true
				continue
			}
			paths[i] = path
		}
	}
	for i, p := range pend {
		if unreach[i] {
			undelivered++
			continue
		}
		admit(p, paths[i])
	}
	return undelivered
}

// utilOf is load/capacity with the zero-capacity link pinned to zero
// utilization — a dead link carries nothing, whatever crosses it — and
// utilizations within an ulp-window of saturation snapped to exactly 1:
// a co-bottleneck whose capacity is mathematically exhausted can land
// on either side of 1.0 depending on the engine's subtraction order,
// and the CCDF's ≥1 bin must not flip on that noise.
func utilOf(load, capacity float64) float64 {
	if capacity <= 0 {
		return 0
	}
	u := load / capacity
	if u > 1-1e-12 {
		u = 1
	}
	return u
}

// simulateEpoch is the discrete-epoch reference engine: every epoch
// re-solves the whole max-min allocation sequentially and scans every
// active flow. It is deliberately simple — the pinned baseline the
// event engine is validated against.
func simulateEpoch(ctx *simContext) (*SimReport, error) {
	spec, edges, capEdge := ctx.spec, ctx.edges, ctx.capEdge
	rep := &SimReport{Spec: spec, Epochs: make([]EpochStats, 0, spec.Epochs)}
	dt := spec.EpochLen
	scratch := ctx.cfg.scratch
	if scratch == nil {
		scratch = &SimScratch{} // private to this run
	}
	if scratch.wf == nil {
		scratch.wf = newWFState(len(edges))
	} else {
		scratch.wf.ensure(len(edges))
	}
	var (
		active     = scratch.active[:0]
		wf         = scratch.wf
		avgLoad    = make([]float64, len(edges))
		ccdfCounts = make([]int, len(utilCCDFThresholds))
		fctSum     float64
		utilSum    float64
		activeSum  int
		overloaded int
		flowID     int32
		pend       = scratch.pend[:0]
		// freeFlows recycles departed simFlow entries; in steady state
		// admissions draw from it instead of the heap. A shared scratch
		// carries the pool across runs, so the population only grows
		// when concurrency exceeds its all-time peak.
		freeFlows = scratch.freeFlows
		now       float64
		admitted  int
	)
	newFlow := func() *simFlow {
		if k := len(freeFlows); k > 0 {
			f := freeFlows[k-1]
			freeFlows = freeFlows[:k-1]
			return f
		}
		return &simFlow{}
	}
	// One closure for every epoch's admissions: creating it per epoch
	// would put one allocation in the steady state's marginal cost.
	admitFlow := func(p pending, path []int32) {
		if ctx.fail != nil {
			path = ctx.fail.toBase(path)
		}
		admitted++
		f := newFlow()
		*f = simFlow{
			src: int32(p.src), dst: int32(p.dst), id: flowID,
			remaining: p.size, arrived: now, rate: -1, path: path,
		}
		active = append(active, f)
		if ctx.cfg.trace {
			rep.Flows = append(rep.Flows, FlowRecord{
				Src: p.src, Dst: p.dst, Size: p.size, Arrived: now,
			})
		}
		flowID++
	}
	for epoch := 0; epoch < spec.Epochs; epoch++ {
		now = float64(epoch) * dt

		// Failure phase: apply this epoch's outage ops, then walk the
		// active flows in admission order — a flow whose path lost a link
		// reroutes over the surviving topology or dies with a recorded
		// fate — and re-admit killed flows whose retry backoff expired.
		// All of it precedes arrivals, in the exact order the event
		// engine replicates.
		reroutedNow, killedNow, retriedNow := 0, 0, 0
		if fail := ctx.fail; fail != nil {
			if err := fail.beginEpoch(epoch); err != nil {
				return nil, err
			}
			if fail.flipped {
				keep := active[:0]
				for _, f := range active {
					if !fail.pathBroken(f.path) {
						keep = append(keep, f)
						continue
					}
					if np, ok := fail.resolve(int(f.src), int(f.dst)); ok {
						f.path = np
						reroutedNow++
						fail.rerouted++
						if ctx.cfg.trace {
							rep.Flows[f.id].Reroutes++
						}
						keep = append(keep, f)
						continue
					}
					killedNow++
					fail.kill(epoch, f.id, f.src, f.dst, f.remaining, f.arrived, f.retries)
					if ctx.cfg.trace {
						rep.Flows[f.id].Killed = true
					}
					freeFlows = append(freeFlows, f)
				}
				active = keep
			}
			for _, rf := range fail.takeRetries(epoch) {
				fail.retried++
				retriedNow++
				rf.retries++
				if ctx.cfg.trace {
					rep.Flows[rf.id].Retries++
				}
				if path, ok := fail.resolve(int(rf.src), int(rf.dst)); ok {
					f := newFlow()
					*f = simFlow{
						src: rf.src, dst: rf.dst, id: rf.id, retries: rf.retries,
						remaining: rf.remaining, arrived: rf.arrived, rate: -1, path: path,
					}
					active = append(active, f)
					if ctx.cfg.trace {
						rep.Flows[rf.id].Killed = false
					}
				} else {
					fail.requeue(epoch, rf)
				}
			}
		}

		// Arrivals, in ascending origin order.
		pend = pend[:0]
		for i := range ctx.srcNodes {
			pend = ctx.drawArrivals(i, dt, pend)
		}

		admitted = 0
		rep.Undelivered += admitPending(ctx.routing(), ctx.workers, pend, admitFlow)
		rep.Arrived += admitted

		// Max-min fair rates, solved by the pooled water-filler
		// (waterfill.go). Sequential, fixed iteration order.
		wf.fill(active, capEdge)

		// Link observations under the epoch's rates.
		var epochUtilSum, epochMaxUtil float64
		epochOverloaded := 0
		for _, e := range wf.links {
			// Max-min rates never exceed capacity; the subtraction chain
			// can stray by an ulp in either direction, so clamp to [0, cap].
			load := capEdge[e] - wf.capRem[e]
			if load < 0 {
				load = 0
			}
			if load > capEdge[e] {
				load = capEdge[e]
			}
			util := utilOf(load, capEdge[e])
			epochUtilSum += util
			if util > epochMaxUtil {
				epochMaxUtil = util
			}
			if util >= spec.OverloadAt {
				epochOverloaded++
			}
			for ti, thr := range utilCCDFThresholds {
				if util >= thr {
					ccdfCounts[ti]++
				}
			}
			avgLoad[e] += load * dt
			wf.nflows[e] = 0 // reset for the next epoch
		}
		utilSum += epochUtilSum
		overloaded += epochOverloaded
		if epochMaxUtil > rep.MaxUtil {
			rep.MaxUtil = epochMaxUtil
		}

		// Advance flows by one epoch; completions leave with a sub-epoch
		// completion estimate (the flow held its rate, so the estimate is
		// exact up to within-epoch departures).
		completedNow := 0
		keep := active[:0]
		for _, f := range active {
			send := f.rate * dt
			if f.rate > 0 && f.remaining <= send {
				finish := now + f.remaining/f.rate
				fctSum += finish - f.arrived
				completedNow++
				if ctx.fail != nil {
					ctx.fail.noteFCT(f.arrived, finish-f.arrived)
				}
				if ctx.cfg.trace {
					rep.Flows[f.id].Done = true
					rep.Flows[f.id].Finished = finish
				}
				freeFlows = append(freeFlows, f)
				continue
			}
			f.remaining -= send
			keep = append(keep, f)
		}
		active = keep
		rep.Completed += completedNow
		activeSum += len(active)
		es := EpochStats{
			Epoch:        epoch,
			Arrived:      admitted,
			Completed:    completedNow,
			Active:       len(active),
			MeanUtil:     epochUtilSum / float64(len(edges)),
			MaxUtil:      epochMaxUtil,
			OverloadFrac: float64(epochOverloaded) / float64(len(edges)),
		}
		if fail := ctx.fail; fail != nil {
			es.LinksDown = fail.linksDown
			es.NodesDown = fail.nodesDown
			es.Rerouted = reroutedNow
			es.Killed = killedNow
			es.Retried = retriedNow
		}
		rep.Epochs = append(rep.Epochs, es)
	}

	rep.ResidualFlows = len(active)
	for _, f := range active {
		rep.ResidualSize += f.remaining
	}
	// Park the buffers for the next run sharing this scratch; residual
	// actives rejoin the freelist so the flow population stays a closed
	// pool at its all-time peak.
	freeFlows = append(freeFlows, active...)
	scratch.active, scratch.pend, scratch.freeFlows = active[:0], pend[:0], freeFlows
	finishReport(rep, ctx, fctSum, utilSum, activeSum, overloaded, ccdfCounts, avgLoad)
	return rep, nil
}

// finishReport folds the accumulated sums into the aggregate fields and
// materializes the CCDF and the time-averaged LoadReport — shared by
// both engines so the aggregation arithmetic cannot drift apart.
func finishReport(rep *SimReport, ctx *simContext, fctSum, utilSum float64, activeSum, overloaded int, ccdfCounts []int, avgLoad []float64) {
	spec, edges, capEdge := ctx.spec, ctx.edges, ctx.capEdge
	if ctx.fail != nil {
		rep.Failures = ctx.fail.report()
	}
	if rep.Completed > 0 {
		rep.MeanFCT = fctSum / float64(rep.Completed)
	}
	linkEpochs := len(edges) * spec.Epochs
	if linkEpochs > 0 {
		rep.MeanActive = float64(activeSum) / float64(spec.Epochs)
		rep.MeanUtil = utilSum / float64(linkEpochs)
		rep.OverloadFrac = float64(overloaded) / float64(linkEpochs)
	}
	rep.UtilCCDF = make([]UtilBin, len(utilCCDFThresholds))
	for ti, thr := range utilCCDFThresholds {
		frac := 0.0
		if linkEpochs > 0 {
			frac = float64(ccdfCounts[ti]) / float64(linkEpochs)
		}
		rep.UtilCCDF[ti] = UtilBin{Util: thr, Frac: frac}
	}

	// Time-averaged link loads as a LoadReport, in edge-id order. The
	// row slice is sized by the topology, not grown to the carried-link
	// count: every link can carry load, and the deterministic size
	// keeps a steady-state run's report cost identical whatever the
	// horizon — the allocation benchmarks difference two horizons and
	// rely on the cancellation.
	load := &LoadReport{Links: make([]LinkLoad, 0, len(edges))}
	horizon := float64(spec.Epochs) * spec.EpochLen
	var loadSum float64
	for id, l := range avgLoad {
		if l == 0 {
			continue
		}
		mean := l / horizon
		e := edges[id]
		load.Links = append(load.Links, LinkLoad{U: e.U, V: e.V, Load: mean})
		loadSum += mean
		if mean > load.MaxLoad {
			load.MaxLoad = mean
		}
		if util := utilOf(mean, capEdge[id]); util > load.MaxUtilization {
			load.MaxUtilization = util
		}
	}
	if len(load.Links) > 0 {
		load.MeanLoad = loadSum / float64(len(load.Links))
	}
	rep.Links = load
}
