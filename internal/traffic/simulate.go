package traffic

import (
	"errors"

	"netmodel/internal/engine"
	"netmodel/internal/graph"
	"netmodel/internal/par"
	"netmodel/internal/rng"
)

// Routing is the memoizable routing state of a frozen snapshot: one
// shortest-path tree per origin, built on demand and cached under a
// deterministic FIFO budget so workload simulations reuse paths across
// epochs without holding N trees for a 100k-node map. Tree construction
// is a pure function of (snapshot, source) — BFS discovery order over
// the CSR arc arrays — so a flow's path never depends on the worker
// count or on which epochs demanded which trees first.
//
// Routing is not safe for concurrent use; Ensure shards tree builds
// internally, but callers (the sequential simulation loop) must not
// query one Routing from several goroutines.
type Routing struct {
	s       *graph.Snapshot
	arcEdge []int32
	max     int // tree-cache budget, a pure function of the node count
	trees   map[int]*rtree
	fifo    []int // cached sources, oldest first
}

// rtree is one origin's BFS tree over the snapshot.
type rtree struct {
	dist   []int32 // hop distance from the source, -1 unreachable
	parent []int32 // BFS parent toward the source, -1 at source/unreachable
	edge   []int32 // snapshot edge id of (v, parent[v]), -1 where parent is
}

// routingTreeBudget bounds the memory held by cached trees (~12 bytes
// per node per tree).
const routingTreeBudget = 32 << 20

// NewRouting returns empty routing state over the snapshot.
func NewRouting(s *graph.Snapshot) *Routing {
	max := routingTreeBudget / (12 * (s.N() + 1))
	if max < 16 {
		max = 16
	}
	return &Routing{s: s, arcEdge: s.ArcEdgeIDs(), max: max, trees: make(map[int]*rtree)}
}

// RoutingOf returns the routing state memoized in the engine's
// per-snapshot cache (key "traffic:routing"): every workload simulation
// over the engine's current snapshot shares one set of shortest-path
// trees, and an Advance to a refreshed snapshot drops it with the rest
// of the version's entries.
func RoutingOf(eng *engine.Engine) *Routing {
	return eng.Cached("traffic:routing", func() any {
		return NewRouting(eng.Snapshot())
	}).(*Routing)
}

// buildTree runs one BFS from src, recording parents and the edge ids
// toward them. Discovery follows CSR arc order, so the tree — and every
// path read from it — is deterministic.
func buildTree(s *graph.Snapshot, arcEdge []int32, src int) *rtree {
	n := s.N()
	t := &rtree{dist: make([]int32, n), parent: make([]int32, n), edge: make([]int32, n)}
	for i := 0; i < n; i++ {
		t.dist[i] = -1
		t.parent[i] = -1
		t.edge[i] = -1
	}
	queue := make([]int32, n)
	t.dist[src] = 0
	queue[0] = int32(src)
	size := 1
	for head := 0; head < size; head++ {
		u := queue[head]
		du := t.dist[u]
		lo, _ := s.ArcRange(int(u))
		for j, v := range s.Neighbors(int(u)) {
			if t.dist[v] < 0 {
				t.dist[v] = du + 1
				t.parent[v] = u
				t.edge[v] = arcEdge[int(lo)+j]
				queue[size] = v
				size++
			}
		}
	}
	return t
}

// Ensure builds the trees of the given sources (ascending, no
// duplicates) that are not cached yet, sharding the builds across
// workers (<= 0 means GOMAXPROCS), and protects the whole set from
// eviction until the next Ensure. Builds write index-private slots and
// insert in source order, so the cache state after Ensure is
// worker-count invariant.
func (rt *Routing) Ensure(sources []int, workers int) {
	if len(sources) == 0 {
		return
	}
	missing := make([]int, 0, len(sources))
	inBatch := make(map[int]bool, len(sources))
	for _, src := range sources {
		inBatch[src] = true
		if _, ok := rt.trees[src]; !ok {
			missing = append(missing, src)
		}
	}
	built := make([]*rtree, len(missing))
	par.ForEach(len(missing), par.Workers(workers), func(_, i int) {
		built[i] = buildTree(rt.s, rt.arcEdge, missing[i])
	})
	// Move the batch to the young end of the FIFO, then evict the
	// oldest entries beyond the budget (never a batch member: the
	// effective budget covers the whole batch).
	keep := rt.fifo[:0]
	for _, src := range rt.fifo {
		if !inBatch[src] {
			keep = append(keep, src)
		}
	}
	rt.fifo = append(keep, sources...)
	for i, src := range missing {
		rt.trees[src] = built[i]
	}
	budget := rt.max
	if budget < len(sources) {
		budget = len(sources)
	}
	for len(rt.trees) > budget && len(rt.fifo) > 0 {
		old := rt.fifo[0]
		rt.fifo = rt.fifo[1:]
		delete(rt.trees, old)
	}
}

// Tree returns src's shortest-path tree, building and caching it if
// needed.
func (rt *Routing) Tree(src int) *rtree {
	if t, ok := rt.trees[src]; ok {
		return t
	}
	rt.Ensure([]int{src}, 1)
	return rt.trees[src]
}

// appendPath appends the edge ids of the tree path from dst back to the
// tree's source onto buf and reports whether dst is reachable.
func (t *rtree) appendPath(buf []int32, dst int) ([]int32, bool) {
	if t.dist[dst] < 0 {
		return buf, false
	}
	for v := int32(dst); t.parent[v] >= 0; v = t.parent[v] {
		buf = append(buf, t.edge[v])
	}
	return buf, true
}

// EpochStats is one simulated epoch's observation row.
type EpochStats struct {
	Epoch     int `json:"epoch"`
	Arrived   int `json:"arrived"`   // flows admitted this epoch
	Completed int `json:"completed"` // flows finished this epoch
	Active    int `json:"active"`    // flows in flight at epoch end
	// MeanUtil and MaxUtil summarize link utilization under the epoch's
	// max-min rates; OverloadFrac is the fraction of all links at or
	// above the spec's overload threshold.
	MeanUtil     float64 `json:"mean_util"`
	MaxUtil      float64 `json:"max_util"`
	OverloadFrac float64 `json:"overload_frac"`
}

// UtilBin is one point of the link-utilization CCDF: the fraction of
// link-epochs with utilization at or above Util.
type UtilBin struct {
	Util float64 `json:"util"`
	Frac float64 `json:"frac"`
}

// utilCCDFThresholds are the fixed CCDF sample points; a fixed grid
// keeps the report schema stable across runs and sweep cells.
var utilCCDFThresholds = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1}

// SimReport is the outcome of one workload simulation: the resolved
// spec, aggregate flow and utilization metrics, the per-epoch rows, and
// (not serialized — it is O(links)) the time-averaged link loads as a
// LoadReport.
type SimReport struct {
	Spec          WorkloadSpec `json:"spec"`
	Arrived       int          `json:"arrived"`
	Completed     int          `json:"completed"`
	Undelivered   int          `json:"undelivered"` // flows to unreachable destinations
	ResidualFlows int          `json:"residual_flows"`
	ResidualSize  float64      `json:"residual_size"` // unfinished volume at the horizon
	// MeanFCT is the mean flow completion time of completed flows, with
	// sub-epoch completion instants estimated from the final rate.
	MeanFCT    float64 `json:"mean_fct"`
	MeanActive float64 `json:"mean_active"`
	// MeanUtil, MaxUtil and OverloadFrac aggregate over link-epochs.
	MeanUtil     float64      `json:"mean_util"`
	MaxUtil      float64      `json:"max_util"`
	OverloadFrac float64      `json:"overload_frac"`
	UtilCCDF     []UtilBin    `json:"util_ccdf"`
	Epochs       []EpochStats `json:"epochs"`
	Links        *LoadReport  `json:"-"`
}

// WorkloadMetricNames is the fixed scalar schema of a SimReport, the
// rows the sweep driver folds across seeds (order matches Scalars).
func WorkloadMetricNames() []string {
	return []string{"wl_mean_fct", "wl_mean_active", "wl_mean_util",
		"wl_max_util", "wl_overload_frac", "wl_completed_frac"}
}

// Scalars returns the report's scalar metric vector in
// WorkloadMetricNames order.
func (rep *SimReport) Scalars() []float64 {
	completedFrac := 1.0
	if rep.Arrived > 0 {
		completedFrac = float64(rep.Completed) / float64(rep.Arrived)
	}
	return []float64{rep.MeanFCT, rep.MeanActive, rep.MeanUtil,
		rep.MaxUtil, rep.OverloadFrac, completedFrac}
}

// simFlow is one in-flight flow.
type simFlow struct {
	src, dst  int32
	remaining float64
	arrived   float64 // arrival instant
	rate      float64 // current max-min rate; -1 while unallocated
	path      []int32 // snapshot edge ids
}

// Simulate runs the flow-level workload over a frozen snapshot with
// fresh routing state. See SimulateWith for the engine-memoized form
// and the simulation semantics.
func Simulate(s *graph.Snapshot, masses []float64, spec WorkloadSpec, r *rng.Rand, workers int) (*SimReport, error) {
	return simulate(s, NewRouting(s), masses, spec, r, workers)
}

// SimulateWith runs the flow-level workload over the engine's snapshot,
// reusing the routing state memoized in the engine (RoutingOf) so
// repeated simulations of one topology — a sweep cell's grid of load
// factors, a trajectory epoch's re-measurement — share shortest-path
// trees.
//
// Semantics: time advances in epochs of length spec.EpochLen. At each
// epoch start every origin's arrival source emits flows (origin o with
// probability mass m(o) carries the share m(o)/Σm of the aggregate
// arrival rate spec.LoadFactor·ΣC/spec.MeanSize); each flow draws a
// destination gravity-weighted (∝ mass, excluding the origin) and a
// size from the spec's distribution, and follows the origin's BFS
// shortest-path tree. Within an epoch all active flows share link
// capacity max-min fairly; completed flows leave at the epoch boundary
// with a sub-epoch completion estimate. Every draw comes from streams
// split off r per origin, and the allocation loop is sequential in
// deterministic order, so the report is bit-identical at every worker
// count — workers only shard BFS tree construction.
func SimulateWith(eng *engine.Engine, masses []float64, spec WorkloadSpec, r *rng.Rand) (*SimReport, error) {
	return simulate(eng.Snapshot(), RoutingOf(eng), masses, spec, r, eng.Workers())
}

func simulate(s *graph.Snapshot, rt *Routing, masses []float64, spec WorkloadSpec, r *rng.Rand, workers int) (*SimReport, error) {
	n := s.N()
	if n < 2 {
		return nil, errors.New("traffic: workload needs at least two nodes")
	}
	if len(masses) != n {
		return nil, errors.New("traffic: masses size mismatch")
	}
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if s.M() == 0 {
		return nil, errors.New("traffic: workload needs at least one link")
	}
	positive := 0
	var sumMass float64
	for _, m := range masses {
		if m < 0 {
			return nil, errors.New("traffic: negative mass")
		}
		if m > 0 {
			positive++
		}
		sumMass += m
	}
	if positive < 2 {
		return nil, errors.New("traffic: workload needs at least two positive masses")
	}
	alias, err := rng.NewAliasTable(masses)
	if err != nil {
		return nil, err
	}

	// Link capacities: edge multiplicity × the capacity unit.
	edges := s.EdgeList()
	capEdge := make([]float64, len(edges))
	var capTotal float64
	for i, e := range edges {
		capEdge[i] = float64(e.W) * spec.CapacityUnit
		capTotal += capEdge[i]
	}
	lambdaTotal := spec.LoadFactor * capTotal / spec.MeanSize

	// One split stream per origin with positive mass, keyed by node id:
	// the stream feeds the origin's arrival process and, interleaved in
	// arrival order, its destination and size draws. Worker count never
	// touches these streams.
	proc := spec.arrivalProcess()
	sizes := spec.sizeDist()
	var srcNodes []int
	for u, m := range masses {
		if m > 0 {
			srcNodes = append(srcNodes, u)
		}
	}
	streams := make([]*rng.Rand, len(srcNodes))
	sources := make([]ArrivalSource, len(srcNodes))
	for i, u := range srcNodes {
		streams[i] = r.Split(uint64(u))
		sources[i] = proc.NewSource(streams[i], lambdaTotal*masses[u]/sumMass)
	}

	rep := &SimReport{Spec: spec}
	dt := spec.EpochLen
	var (
		active     []*simFlow
		nflows     = make([]int32, len(edges))
		capRem     = make([]float64, len(edges))
		avgLoad    = make([]float64, len(edges))
		ccdfCounts = make([]int, len(utilCCDFThresholds))
		fctSum     float64
		utilSum    float64
		activeSum  int
		overloaded int
	)
	type pending struct {
		src, dst int
		size     float64
	}
	for epoch := 0; epoch < spec.Epochs; epoch++ {
		now := float64(epoch) * dt

		// Arrivals, in ascending origin order.
		var pend []pending
		for i, u := range srcNodes {
			k := sources[i].Arrivals(dt)
			for j := 0; j < k; j++ {
				dst := alias.NextWith(streams[i])
				for dst == u {
					dst = alias.NextWith(streams[i])
				}
				pend = append(pend, pending{src: u, dst: dst, size: sizes.Sample(streams[i])})
			}
		}

		// Admit in source-contiguous chunks of at most the routing
		// cache's tree budget: pend is grouped by ascending origin, so
		// each chunk Ensures its distinct origins (parallel BFS builds)
		// and reads paths before the next chunk can evict them — memory
		// stays bounded by the budget even when one epoch's arrivals span
		// more origins than the cache holds.
		admitted := 0
		for i := 0; i < len(pend); {
			var batch []int
			j := i
			for j < len(pend) {
				src := pend[j].src
				if len(batch) == 0 || batch[len(batch)-1] != src {
					if len(batch) == rt.max {
						break
					}
					batch = append(batch, src)
				}
				j++
			}
			rt.Ensure(batch, workers)
			for ; i < j; i++ {
				p := pend[i]
				path, ok := rt.Tree(p.src).appendPath(nil, p.dst)
				if !ok {
					rep.Undelivered++
					continue
				}
				admitted++
				active = append(active, &simFlow{
					src: int32(p.src), dst: int32(p.dst),
					remaining: p.size, arrived: now, rate: -1, path: path,
				})
			}
		}
		rep.Arrived += admitted

		// Max-min fair rates: repeatedly find the bottleneck link
		// (smallest equal share among links still carrying unallocated
		// flows), fix its flows at that share, and release their claim on
		// the rest of their paths. Sequential, fixed iteration order.
		var links []int32 // links carrying active flows, first-use order
		linkFlows := make(map[int32][]int32)
		for fi, f := range active {
			f.rate = -1
			for _, e := range f.path {
				if nflows[e] == 0 {
					links = append(links, e)
					capRem[e] = capEdge[e]
				}
				nflows[e]++
				linkFlows[e] = append(linkFlows[e], int32(fi))
			}
		}
		for unfixed := len(active); unfixed > 0; {
			best := int32(-1)
			var bestShare float64
			for _, e := range links {
				if nflows[e] == 0 {
					continue
				}
				share := capRem[e] / float64(nflows[e])
				if best < 0 || share < bestShare {
					best, bestShare = e, share
				}
			}
			if best < 0 {
				break // unreachable: every flow crosses at least one link
			}
			if bestShare < 0 {
				bestShare = 0 // floating-point slack
			}
			for _, fi := range linkFlows[best] {
				f := active[fi]
				if f.rate >= 0 {
					continue
				}
				f.rate = bestShare
				unfixed--
				for _, e := range f.path {
					capRem[e] -= bestShare
					nflows[e]--
				}
			}
		}

		// Link observations under the epoch's rates.
		var epochUtilSum, epochMaxUtil float64
		epochOverloaded := 0
		for _, e := range links {
			// Max-min rates never exceed capacity; the subtraction chain
			// can stray by an ulp in either direction, so clamp to [0, cap].
			load := capEdge[e] - capRem[e]
			if load < 0 {
				load = 0
			}
			if load > capEdge[e] {
				load = capEdge[e]
			}
			util := load / capEdge[e]
			epochUtilSum += util
			if util > epochMaxUtil {
				epochMaxUtil = util
			}
			if util >= spec.OverloadAt {
				epochOverloaded++
			}
			for ti, thr := range utilCCDFThresholds {
				if util >= thr {
					ccdfCounts[ti]++
				}
			}
			avgLoad[e] += load * dt
			nflows[e] = 0 // reset for the next epoch
		}
		utilSum += epochUtilSum
		overloaded += epochOverloaded
		if epochMaxUtil > rep.MaxUtil {
			rep.MaxUtil = epochMaxUtil
		}

		// Advance flows by one epoch; completions leave with a sub-epoch
		// completion estimate (the flow held its rate, so the estimate is
		// exact up to within-epoch departures).
		completedNow := 0
		keep := active[:0]
		for _, f := range active {
			send := f.rate * dt
			if f.rate > 0 && f.remaining <= send {
				fctSum += now + f.remaining/f.rate - f.arrived
				completedNow++
				continue
			}
			f.remaining -= send
			keep = append(keep, f)
		}
		active = keep
		rep.Completed += completedNow
		activeSum += len(active)
		rep.Epochs = append(rep.Epochs, EpochStats{
			Epoch:        epoch,
			Arrived:      admitted,
			Completed:    completedNow,
			Active:       len(active),
			MeanUtil:     epochUtilSum / float64(len(edges)),
			MaxUtil:      epochMaxUtil,
			OverloadFrac: float64(epochOverloaded) / float64(len(edges)),
		})
	}

	rep.ResidualFlows = len(active)
	for _, f := range active {
		rep.ResidualSize += f.remaining
	}
	if rep.Completed > 0 {
		rep.MeanFCT = fctSum / float64(rep.Completed)
	}
	linkEpochs := len(edges) * spec.Epochs
	if linkEpochs > 0 {
		rep.MeanActive = float64(activeSum) / float64(spec.Epochs)
		rep.MeanUtil = utilSum / float64(linkEpochs)
		rep.OverloadFrac = float64(overloaded) / float64(linkEpochs)
	}
	rep.UtilCCDF = make([]UtilBin, len(utilCCDFThresholds))
	for ti, thr := range utilCCDFThresholds {
		frac := 0.0
		if linkEpochs > 0 {
			frac = float64(ccdfCounts[ti]) / float64(linkEpochs)
		}
		rep.UtilCCDF[ti] = UtilBin{Util: thr, Frac: frac}
	}

	// Time-averaged link loads as a LoadReport, in edge-id order.
	load := &LoadReport{}
	horizon := float64(spec.Epochs) * dt
	var loadSum float64
	for id, l := range avgLoad {
		if l == 0 {
			continue
		}
		mean := l / horizon
		e := edges[id]
		load.Links = append(load.Links, LinkLoad{U: e.U, V: e.V, Load: mean})
		loadSum += mean
		if mean > load.MaxLoad {
			load.MaxLoad = mean
		}
		if util := mean / capEdge[id]; util > load.MaxUtilization {
			load.MaxUtilization = util
		}
	}
	if len(load.Links) > 0 {
		load.MeanLoad = loadSum / float64(len(load.Links))
	}
	rep.Links = load
	return rep, nil
}
