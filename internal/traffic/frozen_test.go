package traffic

import (
	"math"
	"testing"

	"netmodel/internal/gen"
	"netmodel/internal/rng"
)

// TestRouteFrozenMatchesRoute checks the parallel CSR router against
// the sequential map-based one: same link set, per-link loads and
// summary statistics within floating-point merge tolerance.
func TestRouteFrozenMatchesRoute(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		top, err := (gen.BA{N: 150, M: 2}).Generate(rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		g := top.G
		masses := make([]float64, g.N())
		r := rng.New(seed + 100)
		for i := range masses {
			masses[i] = 1 + 10*r.Float64()
		}
		m, err := Gravity(masses, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Route(g, m, true)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RouteFrozen(g.Freeze(), m, true, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Links) != len(want.Links) {
			t.Fatalf("seed %d: %d links vs %d", seed, len(got.Links), len(want.Links))
		}
		type key struct{ u, v int }
		wantLoads := make(map[key]float64, len(want.Links))
		for _, l := range want.Links {
			wantLoads[key{l.U, l.V}] = l.Load
		}
		const tol = 1e-6 // absolute, loads are O(1e4)
		for _, l := range got.Links {
			w, ok := wantLoads[key{l.U, l.V}]
			if !ok {
				t.Fatalf("seed %d: unexpected link (%d,%d)", seed, l.U, l.V)
			}
			if math.Abs(l.Load-w) > tol {
				t.Fatalf("seed %d: load(%d,%d) = %v, want %v", seed, l.U, l.V, l.Load, w)
			}
		}
		if math.Abs(got.MaxLoad-want.MaxLoad) > tol ||
			math.Abs(got.MeanLoad-want.MeanLoad) > tol ||
			math.Abs(got.Undelivered-want.Undelivered) > tol ||
			math.Abs(got.MaxUtilization-want.MaxUtilization) > tol/1e3 {
			t.Fatalf("seed %d: summary differs:\n got %+v\nwant %+v", seed,
				summaryOf(got), summaryOf(want))
		}
	}
}

func summaryOf(r *LoadReport) map[string]float64 {
	return map[string]float64{
		"max": r.MaxLoad, "mean": r.MeanLoad,
		"undelivered": r.Undelivered, "maxutil": r.MaxUtilization,
	}
}

// TestRouteFrozenDisconnected checks undelivered accounting on a graph
// with an unreachable component.
func TestRouteFrozenDisconnected(t *testing.T) {
	top, err := (gen.GNP{N: 120, P: 0.01}).Generate(rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	g := top.G
	m, err := Gravity(UniformMasses(g.N()), 1000)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Route(g, m, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RouteFrozen(g.Freeze(), m, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want.Undelivered == 0 {
		t.Skip("graph unexpectedly connected")
	}
	if math.Abs(got.Undelivered-want.Undelivered) > 1e-9*want.Undelivered {
		t.Fatalf("undelivered %v vs %v", got.Undelivered, want.Undelivered)
	}
}

func TestRouteFrozenErrors(t *testing.T) {
	top, err := (gen.BA{N: 20, M: 1}).Generate(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	s := top.G.Freeze()
	if _, err := RouteFrozen(s, &Matrix{Demand: make([][]float64, 3)}, false, 0); err == nil {
		t.Fatal("size mismatch must error")
	}
}
