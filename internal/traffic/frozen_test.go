package traffic

import (
	"math"
	"testing"

	"netmodel/internal/gen"
	"netmodel/internal/rng"
)

// TestRouteFrozenMatchesRoute checks the parallel CSR router against
// the sequential map-based one: same link set, per-link loads and
// summary statistics within floating-point merge tolerance.
func TestRouteFrozenMatchesRoute(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		top, err := (gen.BA{N: 150, M: 2}).Generate(rng.New(seed))
		if err != nil {
			t.Fatal(err)
		}
		g := top.G
		masses := make([]float64, g.N())
		r := rng.New(seed + 100)
		for i := range masses {
			masses[i] = 1 + 10*r.Float64()
		}
		m, err := Gravity(masses, 1e6)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Route(g, m, true)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RouteFrozen(g.Freeze(), m, true, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Links) != len(want.Links) {
			t.Fatalf("seed %d: %d links vs %d", seed, len(got.Links), len(want.Links))
		}
		type key struct{ u, v int }
		wantLoads := make(map[key]float64, len(want.Links))
		for _, l := range want.Links {
			wantLoads[key{l.U, l.V}] = l.Load
		}
		const tol = 1e-6 // absolute, loads are O(1e4)
		for _, l := range got.Links {
			w, ok := wantLoads[key{l.U, l.V}]
			if !ok {
				t.Fatalf("seed %d: unexpected link (%d,%d)", seed, l.U, l.V)
			}
			if math.Abs(l.Load-w) > tol {
				t.Fatalf("seed %d: load(%d,%d) = %v, want %v", seed, l.U, l.V, l.Load, w)
			}
		}
		if math.Abs(got.MaxLoad-want.MaxLoad) > tol ||
			math.Abs(got.MeanLoad-want.MeanLoad) > tol ||
			math.Abs(got.Undelivered-want.Undelivered) > tol ||
			math.Abs(got.MaxUtilization-want.MaxUtilization) > tol/1e3 {
			t.Fatalf("seed %d: summary differs:\n got %+v\nwant %+v", seed,
				summaryOf(got), summaryOf(want))
		}
	}
}

func summaryOf(r *LoadReport) map[string]float64 {
	return map[string]float64{
		"max": r.MaxLoad, "mean": r.MeanLoad,
		"undelivered": r.Undelivered, "maxutil": r.MaxUtilization,
	}
}

// TestRouteFrozenDisconnected checks undelivered accounting on a graph
// with an unreachable component.
func TestRouteFrozenDisconnected(t *testing.T) {
	top, err := (gen.GNP{N: 120, P: 0.01}).Generate(rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	g := top.G
	m, err := Gravity(UniformMasses(g.N()), 1000)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Route(g, m, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RouteFrozen(g.Freeze(), m, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	if want.Undelivered == 0 {
		t.Skip("graph unexpectedly connected")
	}
	if math.Abs(got.Undelivered-want.Undelivered) > 1e-9*want.Undelivered {
		t.Fatalf("undelivered %v vs %v", got.Undelivered, want.Undelivered)
	}
}

func TestRouteFrozenErrors(t *testing.T) {
	top, err := (gen.BA{N: 20, M: 1}).Generate(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	s := top.G.Freeze()
	if _, err := RouteFrozen(s, &Matrix{Demand: make([][]float64, 3)}, false, 0); err == nil {
		t.Fatal("size mismatch must error")
	}
}

// TestGravityDemandMatchesMatrix: the streamed rows agree with the
// dense gravity matrix entry for entry (the scale factors differ only
// in floating-point association).
func TestGravityDemandMatchesMatrix(t *testing.T) {
	r := rng.New(9)
	masses := make([]float64, 80)
	for i := range masses {
		masses[i] = 1 + 20*r.Float64()
	}
	dense, err := Gravity(masses, 5e5)
	if err != nil {
		t.Fatal(err)
	}
	stream, err := NewGravityDemand(masses, 5e5)
	if err != nil {
		t.Fatal(err)
	}
	if stream.N() != dense.N() {
		t.Fatalf("N = %d vs %d", stream.N(), dense.N())
	}
	buf := make([]float64, len(masses))
	var total float64
	for u := 0; u < len(masses); u++ {
		row := stream.Row(u, buf)
		for v, got := range row {
			want := dense.Demand[u][v]
			if math.Abs(got-want) > 1e-9*(1+want) {
				t.Fatalf("row %d col %d: %v vs %v", u, v, got, want)
			}
			total += got
		}
	}
	if math.Abs(total-5e5) > 1e-6*5e5 {
		t.Fatalf("streamed total = %v, want 5e5", total)
	}
}

// TestRouteFrozenDemandMatchesMatrixPath: routing the streamed gravity
// demand equals routing the materialized matrix.
func TestRouteFrozenDemandMatchesMatrixPath(t *testing.T) {
	top, err := (gen.GLP{N: 200, M: 2, P: 0.4, Beta: 0.6}).Generate(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	g := top.G
	masses := make([]float64, g.N())
	r := rng.New(105)
	for i := range masses {
		masses[i] = 1 + 10*r.Float64()
	}
	m, err := Gravity(masses, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewGravityDemand(masses, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Freeze()
	want, err := RouteFrozen(s, m, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RouteFrozenDemand(s, d, true, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Links) != len(want.Links) {
		t.Fatalf("%d links vs %d", len(got.Links), len(want.Links))
	}
	type key struct{ u, v int }
	wantLoads := make(map[key]float64, len(want.Links))
	for _, l := range want.Links {
		wantLoads[key{l.U, l.V}] = l.Load
	}
	for _, l := range got.Links {
		w, ok := wantLoads[key{l.U, l.V}]
		if !ok {
			t.Fatalf("unexpected link (%d,%d)", l.U, l.V)
		}
		if math.Abs(l.Load-w) > 1e-6*(1+w) {
			t.Fatalf("load(%d,%d) = %v, want %v", l.U, l.V, l.Load, w)
		}
	}
	if math.Abs(got.MaxLoad-want.MaxLoad) > 1e-6*(1+want.MaxLoad) {
		t.Fatalf("max load %v vs %v", got.MaxLoad, want.MaxLoad)
	}
}

// TestGravityDemandValidation mirrors the dense constructor's errors
// plus the streaming-specific degenerate case.
func TestGravityDemandValidation(t *testing.T) {
	if _, err := NewGravityDemand([]float64{1}, 10); err == nil {
		t.Fatal("single node must error")
	}
	if _, err := NewGravityDemand([]float64{1, 2}, 0); err == nil {
		t.Fatal("non-positive total must error")
	}
	if _, err := NewGravityDemand([]float64{1, -2}, 10); err == nil {
		t.Fatal("negative mass must error")
	}
	if _, err := NewGravityDemand([]float64{0, 0, 5}, 10); err == nil {
		t.Fatal("fewer than two positive masses must error")
	}
}
