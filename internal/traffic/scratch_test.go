package traffic

import (
	"encoding/json"
	"testing"

	"netmodel/internal/gen"
	"netmodel/internal/rng"
)

// TestSimScratchReuseIdentical pins the SimScratch contract: a run that
// reuses another run's scratch — including one grown by a different
// workload, horizon, worker count or failure scenario — produces a
// report byte-identical to the same run with no scratch at all. The
// scratch may only ever carry capacity, never results.
func TestSimScratchReuseIdentical(t *testing.T) {
	top, err := gen.BA{N: 300, M: 2}.Generate(rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	snap := top.G.Freeze()
	masses := make([]float64, snap.N())
	for u := range masses {
		masses[u] = float64(snap.Degree(u))
	}
	scenarios := []struct {
		name    string
		spec    WorkloadSpec
		workers int
	}{
		{"steady", WorkloadSpec{LoadFactor: 0.7, Epochs: 12}, 1},
		{"heavy-long", WorkloadSpec{LoadFactor: 1.1, Epochs: 25, TailIndex: 1.4}, 3},
		{"failures", WorkloadSpec{LoadFactor: 0.8, Epochs: 16, Failures: &FailureSpec{
			Mode: "random", Links: 3, MTBF: 4, MTTR: 2, MaxRetries: 2, RetryAfter: 1,
		}}, 1},
		{"steady-again", WorkloadSpec{LoadFactor: 0.7, Epochs: 12}, 1},
	}
	for _, engine := range []string{EngineEpoch, EngineEvent} {
		// One scratch across all scenarios per engine: each run inherits
		// buffers the previous, differently-shaped run grew and dirtied.
		scr := NewSimScratch()
		for _, sc := range scenarios {
			spec := sc.spec
			spec.Engine = engine
			fresh, err := Simulate(snap, masses, spec, rng.New(41), sc.workers)
			if err != nil {
				t.Fatalf("%s/%s fresh: %v", engine, sc.name, err)
			}
			shared, err := Simulate(snap, masses, spec, rng.New(41), sc.workers, WithSimScratch(scr))
			if err != nil {
				t.Fatalf("%s/%s shared: %v", engine, sc.name, err)
			}
			fb, err := json.Marshal(fresh)
			if err != nil {
				t.Fatal(err)
			}
			sb, err := json.Marshal(shared)
			if err != nil {
				t.Fatal(err)
			}
			if string(fb) != string(sb) {
				t.Fatalf("%s/%s: shared-scratch report diverged\nfresh:  %s\nshared: %s",
					engine, sc.name, fb, sb)
			}
		}
	}
}
