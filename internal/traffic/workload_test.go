package traffic

import (
	"math"
	"testing"

	"netmodel/internal/rng"
)

func TestWorkloadSpecDefaults(t *testing.T) {
	sp := WorkloadSpec{LoadFactor: 0.5}.withDefaults()
	if sp.Arrivals != "poisson" || sp.Sizes != "pareto" {
		t.Fatalf("defaults: arrivals %q sizes %q", sp.Arrivals, sp.Sizes)
	}
	if sp.TailIndex != defaultTailAlpha || sp.MeanSize != 1 || sp.Epochs != 20 ||
		sp.EpochLen != 1 || sp.CapacityUnit != 1 || sp.OverloadAt != defaultOverload {
		t.Fatalf("defaults not applied: %+v", sp)
	}
	// Lognormal resolves the tail knob to sigma's default instead.
	if sp := (WorkloadSpec{LoadFactor: 1, Sizes: "lognormal"}).withDefaults(); sp.TailIndex != defaultTailSigma {
		t.Fatalf("lognormal tail default = %v", sp.TailIndex)
	}
}

func TestWorkloadSpecValidate(t *testing.T) {
	good := WorkloadSpec{LoadFactor: 0.5}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []WorkloadSpec{
		{LoadFactor: 0.5, Arrivals: "burst"},
		{LoadFactor: 0.5, Sizes: "weibull"},
		{LoadFactor: 0},
		{LoadFactor: -1},
		{LoadFactor: 0.5, Sizes: "pareto", TailIndex: 1}, // infinite mean
		{LoadFactor: 0.5, Sizes: "exp", TailIndex: -1},   // negative tail
		{LoadFactor: 0.5, MeanSize: -2},                  // negative size
		{LoadFactor: 0.5, Arrivals: "onoff", MeanOn: -1}, // negative duration
		{LoadFactor: 0.5, EpochLen: -1},                  // negative epoch
		{LoadFactor: 0.5, CapacityUnit: -3},              // negative capacity
		{LoadFactor: 0.5, Epochs: -1},                    // negative horizon
		{LoadFactor: math.NaN()},                         // NaN slips past <= comparisons
		{LoadFactor: 0.5, TailIndex: math.NaN()},         // NaN tail
		{LoadFactor: math.Inf(1)},                        // infinite load
		{LoadFactor: 0.5, MeanSize: math.Inf(1)},         // infinite size
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Fatalf("spec %d (%+v) should fail validation", i, sp)
		}
	}
}

// sampleMean draws k sizes and returns their mean.
func sampleMean(d SizeDist, k int, seed uint64) float64 {
	r := rng.New(seed)
	var sum float64
	for i := 0; i < k; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(k)
}

func TestSizeDistMeans(t *testing.T) {
	for _, tc := range []struct {
		d    SizeDist
		name string
	}{
		{ParetoSizes{Mean: 4, Alpha: 2.5}, "pareto"},
		{LognormalSizes{Mean: 4, Sigma: 0.8}, "lognormal"},
		{ExpSizes{Mean: 4}, "exp"},
	} {
		if tc.d.Name() != tc.name {
			t.Fatalf("name %q, want %q", tc.d.Name(), tc.name)
		}
		mean := sampleMean(tc.d, 200000, 11)
		if math.Abs(mean-4) > 0.4 {
			t.Fatalf("%s sample mean %v, want ~4", tc.name, mean)
		}
	}
}

func TestParetoSizesTailHeaviness(t *testing.T) {
	// A heavier tail (smaller alpha) must put more mass far above the
	// mean at equal means.
	count := func(alpha float64) int {
		r := rng.New(3)
		d := ParetoSizes{Mean: 1, Alpha: alpha}
		big := 0
		for i := 0; i < 100000; i++ {
			if d.Sample(r) > 10 {
				big++
			}
		}
		return big
	}
	if h, l := count(1.2), count(3); h <= l {
		t.Fatalf("alpha 1.2 produced %d sizes > 10, alpha 3 produced %d", h, l)
	}
}

// arrivalsOver drives one source through k windows of length dt.
func arrivalsOver(src ArrivalSource, k int, dt float64) (total int, counts []int) {
	counts = make([]int, k)
	for i := range counts {
		counts[i] = src.Arrivals(dt)
		total += counts[i]
	}
	return total, counts
}

func TestPoissonArrivalsMeanRate(t *testing.T) {
	src := PoissonArrivals{}.NewSource(rng.New(7), 3)
	total, _ := arrivalsOver(src, 20000, 1)
	mean := float64(total) / 20000
	if math.Abs(mean-3) > 0.1 {
		t.Fatalf("poisson mean rate %v, want ~3", mean)
	}
}

func TestOnOffArrivalsMeanRateAndBurstiness(t *testing.T) {
	p := OnOffArrivals{MeanOn: 1, MeanOff: 4}
	src := p.NewSource(rng.New(7), 3)
	total, counts := arrivalsOver(src, 20000, 1)
	mean := float64(total) / float64(len(counts))
	if math.Abs(mean-3) > 0.15 {
		t.Fatalf("on-off mean rate %v, want ~3", mean)
	}
	// Markov modulation must overdisperse the counts relative to a
	// Poisson stream of the same mean (whose variance equals its mean).
	var m2 float64
	for _, c := range counts {
		d := float64(c) - mean
		m2 += d * d
	}
	if variance := m2 / float64(len(counts)); variance < 1.5*mean {
		t.Fatalf("on-off variance %v not burstier than Poisson mean %v", variance, mean)
	}
}

func TestArrivalSourcesDeterministic(t *testing.T) {
	for _, proc := range []ArrivalProcess{PoissonArrivals{}, OnOffArrivals{MeanOn: 1, MeanOff: 2}} {
		_, a := arrivalsOver(proc.NewSource(rng.New(42), 2), 100, 0.5)
		_, b := arrivalsOver(proc.NewSource(rng.New(42), 2), 100, 0.5)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s window %d: %d vs %d on the same seed", proc.Name(), i, a[i], b[i])
			}
		}
	}
}
