package traffic

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// checkFailureAgreement extends the engine-equivalence assertion to the
// fault-injection surface: per-flow fates (killed, reroutes, retries)
// must match exactly, and the survivability reports must agree — the
// integer counters and topology metrics exactly, the FCT inflation up
// to floating-point association order.
func checkFailureAgreement(t *testing.T, epoch, event *SimReport, tol float64) {
	t.Helper()
	checkEngineAgreement(t, epoch, event, tol)
	for i := range epoch.Flows {
		a, b := epoch.Flows[i], event.Flows[i]
		if a.Killed != b.Killed || a.Reroutes != b.Reroutes || a.Retries != b.Retries {
			t.Fatalf("flow %d failure fate diverged: epoch killed=%v/reroutes=%d/retries=%d, event killed=%v/reroutes=%d/retries=%d",
				i, a.Killed, a.Reroutes, a.Retries, b.Killed, b.Reroutes, b.Retries)
		}
	}
	fa, fb := epoch.Failures, event.Failures
	if (fa == nil) != (fb == nil) {
		t.Fatalf("failure report presence diverged: %v vs %v", fa != nil, fb != nil)
	}
	if fa == nil {
		return
	}
	if fa.LinksFailed != fb.LinksFailed || fa.NodesFailed != fb.NodesFailed ||
		fa.Killed != fb.Killed || fa.Rerouted != fb.Rerouted || fa.Retried != fb.Retried {
		t.Fatalf("survivability counters diverged: %+v vs %+v", fa, fb)
	}
	if fa.DisconnectedOD != fb.DisconnectedOD || fa.MeanGiantCapacity != fb.MeanGiantCapacity ||
		fa.MinGiantCapacity != fb.MinGiantCapacity {
		t.Fatalf("survivability topology metrics diverged: %+v vs %+v", fa, fb)
	}
	if !relClose(fa.FCTInflation, fb.FCTInflation, tol) {
		t.Fatalf("fct inflation diverged: %v vs %v", fa.FCTInflation, fb.FCTInflation)
	}
	for i := range epoch.Epochs {
		a, b := epoch.Epochs[i], event.Epochs[i]
		if a.LinksDown != b.LinksDown || a.NodesDown != b.NodesDown ||
			a.Rerouted != b.Rerouted || a.Killed != b.Killed || a.Retried != b.Retried {
			t.Fatalf("epoch %d failure counts diverged: %+v vs %+v", i, a, b)
		}
	}
}

// TestFailureSpecValidate walks the failure spec's rejection surface.
func TestFailureSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec FailureSpec
		want string
	}{
		{"unknown-mode", FailureSpec{Mode: "meteor"}, "unknown failure mode"},
		{"negative-links", FailureSpec{Mode: FailRandom, Links: -1, MTBF: 1}, "must not be negative"},
		{"negative-retries", FailureSpec{Mode: FailDegree, Links: 1, MaxRetries: -1}, "max retries"},
		{"zero-backoff", FailureSpec{Mode: FailDegree, Links: 1, RetryAfter: -1}, "retry backoff"},
		{"scheduled-empty", FailureSpec{Mode: FailScheduled}, "at least one event"},
		{"scheduled-bad-kind", FailureSpec{Mode: FailScheduled,
			Events: []FailureEvent{{Kind: "router", U: 0, V: 1}}}, "unknown failure event kind"},
		{"scheduled-self-loop", FailureSpec{Mode: FailScheduled,
			Events: []FailureEvent{{Kind: "link", U: 3, V: 3}}}, "distinct endpoints"},
		{"scheduled-neg-epoch", FailureSpec{Mode: FailScheduled,
			Events: []FailureEvent{{Epoch: -1, Kind: "link", U: 0, V: 1}}}, "epoch must not be negative"},
		{"random-no-entities", FailureSpec{Mode: FailRandom, MTBF: 1}, "links or nodes"},
		{"random-no-mtbf", FailureSpec{Mode: FailRandom, Links: 1}, "positive mtbf"},
		{"random-nan-mttr", FailureSpec{Mode: FailRandom, Links: 1, MTBF: 1, MTTR: nan()}, "finite"},
		{"targeted-no-entities", FailureSpec{Mode: FailLoad}, "links or nodes"},
		{"targeted-bad-window", FailureSpec{Mode: FailDegree, Links: 1, FailAt: 3, RepairAt: 2}, "repair epoch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tc.want)
			}
		})
	}
	if err := (FailureSpec{}).Validate(); err != nil {
		t.Fatalf("zero spec must validate (mode none): %v", err)
	}
}

func nan() float64 { var z float64; return z / z }

// TestCompileFailuresScheduled pins the scheduled mode's compilation:
// per-epoch op counts, distinct-entity counts, horizon clipping, and
// the topology-dependent rejections.
func TestCompileFailuresScheduled(t *testing.T) {
	s := pathGraph(4).Freeze() // 0-1-2-3
	spec := FailureSpec{Mode: FailScheduled, Events: []FailureEvent{
		{Epoch: 1, Kind: "link", U: 1, V: 2},
		{Epoch: 3, Kind: "link", U: 2, V: 1, Up: true}, // same link, reversed endpoints
		{Epoch: 2, Kind: "node", Node: 3},
		{Epoch: 9, Kind: "node", Node: 0}, // beyond the horizon: clipped
	}}
	tl, err := CompileFailures(s, spec, 5, 1, rng.New(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if tl.LinksFailed() != 1 || tl.NodesFailed() != 1 {
		t.Fatalf("entity counts = %d links, %d nodes; want 1, 1", tl.LinksFailed(), tl.NodesFailed())
	}
	for epoch, want := range map[int]int{0: 0, 1: 1, 2: 1, 3: 1, 4: 0} {
		if got := tl.Ops(epoch); got != want {
			t.Fatalf("ops at epoch %d = %d, want %d", epoch, got, want)
		}
	}
	if _, err := CompileFailures(s, FailureSpec{Mode: FailScheduled,
		Events: []FailureEvent{{Kind: "link", U: 0, V: 3}}}, 5, 1, rng.New(1), nil); err == nil {
		t.Fatal("missing link must be rejected")
	}
	if _, err := CompileFailures(s, FailureSpec{Mode: FailScheduled,
		Events: []FailureEvent{{Kind: "node", Node: 99}}}, 5, 1, rng.New(1), nil); err == nil {
		t.Fatal("out-of-range node must be rejected")
	}
}

// TestCompileFailuresDeterministic pins that compiling twice from the
// same stream yields the identical timeline (Split is pure), and that
// the random mode respects entity-count bounds.
func TestCompileFailuresDeterministic(t *testing.T) {
	s := meshGraph(30).Freeze()
	spec := FailureSpec{Mode: FailRandom, Links: 5, Nodes: 3, MTBF: 4, MTTR: 2}
	r := rng.New(7)
	a, err := CompileFailures(s, spec, 40, 1, r.Split(42), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := CompileFailures(s, spec, 40, 1, r.Split(42), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical streams compiled different timelines")
	}
	if _, err := CompileFailures(s, FailureSpec{Mode: FailRandom, Links: 10000, MTBF: 1},
		10, 1, rng.New(1), nil); err == nil {
		t.Fatal("more failing links than links must be rejected")
	}
}

// TestFailureEnginesAgree is the failure-mode engine-equivalence suite:
// under identical failure timelines both engines must agree on every
// flow's fate — rerouted, killed, retried — and on the survivability
// aggregates.
func TestFailureEnginesAgree(t *testing.T) {
	cases := []struct {
		name  string
		g     *graph.Graph
		n     int
		spec  WorkloadSpec
		seeds []uint64
	}{
		{"scheduled-link-outage", meshGraph(40), 40,
			WorkloadSpec{LoadFactor: 0.6, Epochs: 20, Failures: &FailureSpec{
				Mode: FailScheduled, Events: []FailureEvent{
					{Epoch: 4, Kind: "link", U: 0, V: 1},
					{Epoch: 6, Kind: "link", U: 3, V: 10},
					{Epoch: 12, Kind: "link", U: 0, V: 1, Up: true},
				}}}, []uint64{1, 2}},
		{"scheduled-node-outage", meshGraph(50), 50,
			WorkloadSpec{LoadFactor: 0.8, Epochs: 18, TailIndex: 1.3, Failures: &FailureSpec{
				Mode: FailScheduled, Events: []FailureEvent{
					{Epoch: 3, Kind: "node", Node: 5},
					{Epoch: 5, Kind: "node", Node: 17},
					{Epoch: 11, Kind: "node", Node: 5, Up: true},
				}, MaxRetries: 2}}, []uint64{3, 4}},
		{"random-mtbf-mttr", meshGraph(40), 40,
			WorkloadSpec{LoadFactor: 0.7, Epochs: 30, Arrivals: "onoff", Failures: &FailureSpec{
				Mode: FailRandom, Links: 6, Nodes: 2, MTBF: 8, MTTR: 3,
				MaxRetries: 3, RetryAfter: 2}}, []uint64{5, 6}},
		{"degree-targeted", meshGraph(36), 36,
			WorkloadSpec{LoadFactor: 0.5, Epochs: 16, Failures: &FailureSpec{
				Mode: FailDegree, Links: 3, Nodes: 1, FailAt: 4, RepairAt: 10,
				MaxRetries: 1}}, []uint64{7}},
		{"load-targeted", meshGraph(30), 30,
			WorkloadSpec{LoadFactor: 0.55, Epochs: 14, Sizes: "exp", Failures: &FailureSpec{
				Mode: FailLoad, Links: 4, FailAt: 3}}, []uint64{8}},
		{"path-partition", pathGraph(10), 10,
			WorkloadSpec{LoadFactor: 1.2, Epochs: 15, Sizes: "exp", MeanSize: 4, Failures: &FailureSpec{
				Mode: FailScheduled, Events: []FailureEvent{
					{Epoch: 3, Kind: "link", U: 4, V: 5},
					{Epoch: 8, Kind: "link", U: 4, V: 5, Up: true},
				}, MaxRetries: 4}}, []uint64{9, 10}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.g.Freeze()
			masses := UniformMasses(tc.n)
			for _, seed := range tc.seeds {
				ep := runEngine(t, s, masses, tc.spec, EngineEpoch, seed, 1)
				evt := runEngine(t, s, masses, tc.spec, EngineEvent, seed, 2)
				checkFailureAgreement(t, ep, evt, 1e-9)
				if ep.Failures == nil {
					t.Fatal("failure run must carry a survivability report")
				}
			}
		})
	}
}

// TestFailureWorkerInvariance pins the determinism contract under fault
// injection: for both engines the full report — spec echo, epoch rows
// with failure counts, survivability aggregates, flow fates and link
// loads — is byte-identical at every worker count.
func TestFailureWorkerInvariance(t *testing.T) {
	s := meshGraph(50).Freeze()
	for _, engine := range []string{EngineEpoch, EngineEvent} {
		spec := WorkloadSpec{Engine: engine, LoadFactor: 0.8, Epochs: 20, Failures: &FailureSpec{
			Mode: FailRandom, Links: 5, Nodes: 2, MTBF: 6, MTTR: 2, MaxRetries: 2}}
		var base []byte
		for _, workers := range []int{1, 2, 4, 8} {
			rep, err := Simulate(s, UniformMasses(50), spec, rng.New(11), workers, WithFlowTrace())
			if err != nil {
				t.Fatal(err)
			}
			data, err := json.Marshal(rep)
			if err != nil {
				t.Fatal(err)
			}
			link, err := json.Marshal(rep.Links)
			if err != nil {
				t.Fatal(err)
			}
			flows, err := json.Marshal(rep.Flows)
			if err != nil {
				t.Fatal(err)
			}
			data = append(append(data, link...), flows...)
			if base == nil {
				base = data
			} else if !bytes.Equal(base, data) {
				t.Fatalf("engine %s workers=%d failure report diverged", engine, workers)
			}
		}
	}
}

// TestFailureNonePinned checks the no-failure pinning: a spec with mode
// "none" reproduces the nil-Failures run bit for bit — same flows, same
// epochs, same loads — and emits no survivability report.
func TestFailureNonePinned(t *testing.T) {
	s := meshGraph(40).Freeze()
	for _, engine := range []string{EngineEpoch, EngineEvent} {
		base := WorkloadSpec{Engine: engine, LoadFactor: 0.7, Epochs: 15, TailIndex: 1.4}
		withNone := base
		withNone.Failures = &FailureSpec{Mode: FailNone}
		repNil, err := Simulate(s, UniformMasses(40), base, rng.New(3), 2, WithFlowTrace())
		if err != nil {
			t.Fatal(err)
		}
		repNone, err := Simulate(s, UniformMasses(40), withNone, rng.New(3), 2, WithFlowTrace())
		if err != nil {
			t.Fatal(err)
		}
		if repNone.Failures != nil {
			t.Fatal("mode none must not produce a survivability report")
		}
		repNone.Spec = repNil.Spec // only the echoed spec may differ
		if !reflect.DeepEqual(repNil, repNone) {
			t.Fatalf("engine %s: mode none diverged from the nil-failures run", engine)
		}
	}
}

// TestFailureKillAndRetry runs the deterministic micro-scenario: on a
// path 0-1-2 every flow crosses the cut link (1, 2); when it fails
// there is no alternate path, so live flows die, their retries fail
// while the link is down, and the re-admission after the repair lets
// them finish.
func TestFailureKillAndRetry(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	s := g.Freeze()
	masses := []float64{1, 0, 1} // all traffic is 0 <-> 2
	spec := WorkloadSpec{LoadFactor: 0.5, Epochs: 12, Sizes: "exp", MeanSize: 6,
		Failures: &FailureSpec{Mode: FailScheduled, Events: []FailureEvent{
			{Epoch: 3, Kind: "link", U: 1, V: 2},
			{Epoch: 5, Kind: "link", U: 1, V: 2, Up: true},
		}, MaxRetries: 3, RetryAfter: 1}}
	ep := runEngine(t, s, masses, spec, EngineEpoch, 1, 1)
	evt := runEngine(t, s, masses, spec, EngineEvent, 1, 2)
	checkFailureAgreement(t, ep, evt, 1e-9)
	f := ep.Failures
	if f.Killed == 0 {
		t.Fatal("cutting the only path must kill the live flows")
	}
	if f.Rerouted != 0 {
		t.Fatalf("no alternate path exists, yet %d flows rerouted", f.Rerouted)
	}
	if f.Retried < f.Killed {
		t.Fatalf("killed flows must get retries: killed %d, retried %d", f.Killed, f.Retried)
	}
	if f.LinksFailed != 1 {
		t.Fatalf("LinksFailed = %d, want 1", f.LinksFailed)
	}
	if f.DisconnectedOD <= 0 || f.MinGiantCapacity >= 1 {
		t.Fatalf("partition not reflected: disconnectedOD %v, minGiantCap %v",
			f.DisconnectedOD, f.MinGiantCapacity)
	}
	revived := 0
	for _, fr := range ep.Flows {
		if fr.Retries > 0 && !fr.Killed {
			revived++
		}
	}
	if revived == 0 {
		t.Fatal("the post-repair retry must re-admit at least one killed flow")
	}
	stats := ep.Epochs
	if stats[3].Killed == 0 || stats[3].LinksDown != 1 {
		t.Fatalf("epoch 3 must record the kill wave: %+v", stats[3])
	}
	if stats[4].Retried == 0 {
		t.Fatalf("epoch 4 must record the (failing) retry attempts: %+v", stats[4])
	}
	if stats[5].LinksDown != 0 {
		t.Fatalf("epoch 5 must record the repair: %+v", stats[5])
	}
}

// TestFailureReroute checks graceful degradation on a multipath mesh:
// when a path link dies with alternates available, flows reroute and
// none die.
func TestFailureReroute(t *testing.T) {
	s := meshGraph(24).Freeze()
	spec := WorkloadSpec{LoadFactor: 0.8, Epochs: 12, Sizes: "exp", MeanSize: 4,
		Failures: &FailureSpec{Mode: FailScheduled, Events: []FailureEvent{
			{Epoch: 4, Kind: "link", U: 0, V: 1},
			{Epoch: 5, Kind: "link", U: 7, V: 8},
		}}}
	ep := runEngine(t, s, UniformMasses(24), spec, EngineEpoch, 2, 1)
	evt := runEngine(t, s, UniformMasses(24), spec, EngineEvent, 2, 4)
	checkFailureAgreement(t, ep, evt, 1e-9)
	f := ep.Failures
	if f.Rerouted == 0 {
		t.Fatal("mesh keeps alternates, so some flows must reroute")
	}
	if f.Killed != 0 {
		t.Fatalf("mesh stays connected, yet %d flows were killed", f.Killed)
	}
	if f.DisconnectedOD != 0 || f.MinGiantCapacity >= 1 {
		t.Fatalf("two dead links must dent capacity but not connectivity: %+v", f)
	}
	for i, fr := range ep.Flows {
		if fr.Killed {
			t.Fatalf("flow %d killed on a connected mesh", i)
		}
	}
}

// TestFailureTargetedDegree checks that degree targeting takes down the
// hub of a star and the survivability metrics see the collapse.
func TestFailureTargetedDegree(t *testing.T) {
	n := 12
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, i)
	}
	s := g.Freeze()
	spec := WorkloadSpec{LoadFactor: 0.3, Epochs: 8,
		Failures: &FailureSpec{Mode: FailDegree, Nodes: 1, FailAt: 3}}
	ep := runEngine(t, s, UniformMasses(n), spec, EngineEpoch, 4, 1)
	evt := runEngine(t, s, UniformMasses(n), spec, EngineEvent, 4, 2)
	checkFailureAgreement(t, ep, evt, 1e-9)
	f := ep.Failures
	if f.NodesFailed != 1 {
		t.Fatalf("NodesFailed = %d, want 1 (the hub)", f.NodesFailed)
	}
	if f.MinGiantCapacity != 0 {
		t.Fatalf("killing the hub strands every link: minGiantCap %v, want 0", f.MinGiantCapacity)
	}
	for _, es := range ep.Epochs[3:] {
		if es.NodesDown != 1 {
			t.Fatalf("hub must stay down from epoch 3: %+v", es)
		}
	}
	// Every flow alive at the cut dies and, with no retries allowed,
	// stays dead; all post-cut arrivals are undelivered.
	for e := 3; e < 8; e++ {
		if ep.Epochs[e].Arrived != 0 {
			t.Fatalf("no admissions can survive the hub cut: %+v", ep.Epochs[e])
		}
	}
}

// TestFailureSweepLabel pins the spec labels the sweep CSV uses.
func TestFailureSweepLabel(t *testing.T) {
	cases := map[string]FailureSpec{
		"none":                     {},
		"sched:2":                  {Mode: FailScheduled, Events: make([]FailureEvent, 2)},
		"random:l3,n1,mtbf5,mttr2": {Mode: FailRandom, Links: 3, Nodes: 1, MTBF: 5, MTTR: 2},
		"degree:l2,n0@1":           {Mode: FailDegree, Links: 2},
		"load:l0,n4@6":             {Mode: FailLoad, Nodes: 4, FailAt: 6},
	}
	for want, spec := range cases {
		if got := spec.Label(); got != want {
			t.Fatalf("Label() = %q, want %q", got, want)
		}
	}
}
