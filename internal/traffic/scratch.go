package traffic

// SimScratch pools the simulation engines' run-to-run state: the
// water-filling allocator, the epoch engine's flow freelist and
// arrival/active buffers, the event engine's whole link/flow state, and
// the per-worker solver heaps. A fresh Simulate call builds all of this
// from nothing and lets it die with the run; a caller that simulates
// repeatedly — a sweep, a policy search, the steady-state benchmarks —
// passes one SimScratch through WithSimScratch and every buffer keeps
// its high-water capacity across runs, so a run whose demands stay
// under a predecessor's allocates nothing at all.
//
// The scratch carries capacity, never results: each run truncates and
// restamps what it reuses, so reports are bit-identical with and
// without a shared scratch (pinned by TestSimScratchReuseIdentical).
// The zero value is ready. Not safe for concurrent use — one scratch
// serves one Simulate call at a time.
type SimScratch struct {
	wf        *wfState
	freeFlows []*simFlow
	pend      []pending
	active    []*simFlow
	ev        *eventSim
	solvers   []*shareHeap
}

// NewSimScratch returns an empty scratch ready to thread through
// Simulate calls via WithSimScratch.
func NewSimScratch() *SimScratch { return &SimScratch{} }

// WithSimScratch reuses sc's pooled buffers for the run. See
// SimScratch for the contract.
func WithSimScratch(sc *SimScratch) SimOption {
	return func(cfg *simConfig) { cfg.scratch = sc }
}
