package traffic

import (
	"math"
	"testing"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// The simulator edge cases pinned for both engines: zero-capacity
// links, origin-destination pairs that straddle disconnected
// components, and flows that arrive and depart inside a single event
// interval. Each case runs under EngineEpoch and EngineEvent and the
// suite asserts the same behavior of both.

var bothEngines = []string{EngineEpoch, EngineEvent}

// TestZeroCapacityLink pins the dead-link contract: flows routed across
// a zero-capacity link hold rate zero forever (they never complete and
// never progress), the link reports utilization zero instead of NaN,
// and flows avoiding the dead link are unaffected.
func TestZeroCapacityLink(t *testing.T) {
	// A 4-path: 0-1-2-3. Kill the middle link; 0↔1 and 2↔3 traffic
	// still flows, anything crossing 1-2 is stuck.
	g := pathGraph(4)
	s := g.Freeze()
	caps := make([]float64, s.M())
	dead := -1
	for i, e := range s.EdgeList() {
		caps[i] = 1
		if (e.U == 1 && e.V == 2) || (e.U == 2 && e.V == 1) {
			caps[i] = 0
			dead = i
		}
	}
	if dead < 0 {
		t.Fatal("middle link not found")
	}
	for _, eng := range bothEngines {
		t.Run(eng, func(t *testing.T) {
			spec := WorkloadSpec{Engine: eng, LoadFactor: 0.5, Epochs: 15}
			rep, err := Simulate(s, UniformMasses(4), spec, rng.New(3), 1,
				WithLinkCapacities(caps), WithFlowTrace())
			if err != nil {
				t.Fatal(err)
			}
			if rep.Arrived == 0 {
				t.Fatal("no arrivals")
			}
			crossing, completed := 0, 0
			for _, f := range rep.Flows {
				cross := (f.Src <= 1) != (f.Dst <= 1)
				if cross {
					crossing++
					if f.Done {
						t.Fatalf("flow %d→%d crossed the dead link and completed", f.Src, f.Dst)
					}
				}
				if f.Done {
					completed++
				}
			}
			if crossing == 0 {
				t.Fatal("workload never crossed the dead link; weak test")
			}
			if completed == 0 {
				t.Fatal("no same-side flow completed despite live links")
			}
			if crossing != rep.ResidualFlows {
				t.Fatalf("%d crossing flows but %d residual", crossing, rep.ResidualFlows)
			}
			// NaN must not leak out of the 0/0 utilization of the dead link.
			for _, v := range rep.Scalars() {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					t.Fatalf("non-finite scalar in %v", rep.Scalars())
				}
			}
			for _, e := range rep.Epochs {
				if math.IsNaN(e.MeanUtil) || math.IsNaN(e.MaxUtil) {
					t.Fatalf("epoch %d utilization is NaN", e.Epoch)
				}
			}
			if rep.Links.MaxUtilization > 1+1e-9 {
				t.Fatalf("max utilization %v with a dead link", rep.Links.MaxUtilization)
			}
		})
	}
}

// TestZeroCapacityValidation pins the capacity-override error paths.
func TestZeroCapacityValidation(t *testing.T) {
	s := pathGraph(3).Freeze()
	u := UniformMasses(3)
	spec := WorkloadSpec{LoadFactor: 1, Epochs: 2}
	if _, err := Simulate(s, u, spec, rng.New(1), 1, WithLinkCapacities([]float64{1})); err == nil {
		t.Fatal("capacity override of the wrong size should fail")
	}
	if _, err := Simulate(s, u, spec, rng.New(1), 1, WithLinkCapacities([]float64{1, -1})); err == nil {
		t.Fatal("negative capacity should fail")
	}
	if _, err := Simulate(s, u, spec, rng.New(1), 1, WithLinkCapacities([]float64{math.NaN(), 1})); err == nil {
		t.Fatal("NaN capacity should fail")
	}
	if _, err := Simulate(s, u, spec, rng.New(1), 1, WithLinkCapacities([]float64{0, 0})); err == nil {
		t.Fatal("all-dead network should fail (no capacity to offer load against)")
	}
}

// TestDisconnectedODPairs pins cross-component behavior for both
// engines: flows whose destination lies in another component are
// counted undelivered, never admitted, and never distort the rates of
// deliverable traffic; both engines count identically.
func TestDisconnectedODPairs(t *testing.T) {
	g := graph.New(8)
	// Component A: dense square 0-1-2-3; component B: path 4-5-6-7.
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 3)
	g.MustAddEdge(3, 0)
	g.MustAddEdge(4, 5)
	g.MustAddEdge(5, 6)
	g.MustAddEdge(6, 7)
	s := g.Freeze()
	spec := WorkloadSpec{LoadFactor: 0.8, Epochs: 12}
	var reports []*SimReport
	for _, eng := range bothEngines {
		sp := spec
		sp.Engine = eng
		rep, err := Simulate(s, UniformMasses(8), sp, rng.New(11), 2, WithFlowTrace())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Undelivered == 0 {
			t.Fatalf("%s: cross-component flows must count undelivered", eng)
		}
		for i, f := range rep.Flows {
			if (f.Src <= 3) != (f.Dst <= 3) {
				t.Fatalf("%s: cross-component flow %d (%d→%d) was admitted", eng, i, f.Src, f.Dst)
			}
		}
		if rep.Arrived+rep.Undelivered != len(rep.Flows)+rep.Undelivered {
			t.Fatalf("%s: trace covers %d flows, arrived %d", eng, len(rep.Flows), rep.Arrived)
		}
		reports = append(reports, rep)
	}
	if reports[0].Undelivered != reports[1].Undelivered || reports[0].Arrived != reports[1].Arrived {
		t.Fatalf("engines disagree on admission: epoch %d/%d, event %d/%d",
			reports[0].Arrived, reports[0].Undelivered, reports[1].Arrived, reports[1].Undelivered)
	}
}

// TestFlowWithinOneInterval pins the sub-epoch lifecycle: a flow small
// enough to finish inside its arrival epoch completes in that epoch
// with a completion instant strictly inside the interval, in both
// engines.
func TestFlowWithinOneInterval(t *testing.T) {
	// Two nodes, one link: every flow gets the whole link when alone.
	g := graph.New(2)
	g.MustAddEdge(0, 1)
	s := g.Freeze()
	for _, eng := range bothEngines {
		t.Run(eng, func(t *testing.T) {
			// Tiny deterministic-ish sizes: exp with mean far below
			// capacity·dt, light load so flows rarely overlap.
			spec := WorkloadSpec{Engine: eng, LoadFactor: 0.05, Epochs: 10,
				Sizes: "exp", MeanSize: 0.01}
			rep, err := Simulate(s, UniformMasses(2), spec, rng.New(5), 1, WithFlowTrace())
			if err != nil {
				t.Fatal(err)
			}
			if rep.Arrived == 0 {
				t.Skip("no arrivals drawn at this seed")
			}
			intra := 0
			for i, f := range rep.Flows {
				if !f.Done {
					continue
				}
				fct := f.Finished - f.Arrived
				if fct <= 0 {
					t.Fatalf("flow %d has non-positive FCT %v", i, fct)
				}
				if fct < 1 { // inside one epoch interval (dt = 1)
					intra++
					epoch := int(f.Arrived)
					row := rep.Epochs[epoch]
					if row.Completed == 0 {
						t.Fatalf("flow %d finished inside epoch %d but the row records no completion", i, epoch)
					}
				}
			}
			if intra == 0 {
				t.Fatal("no flow completed inside one interval; weak test")
			}
			// The run is light enough that every admitted flow finishes.
			if rep.Completed != rep.Arrived {
				t.Fatalf("completed %d of %d at trivial load", rep.Completed, rep.Arrived)
			}
		})
	}
}

// TestIntraEpochAgreement cross-checks the two engines flow by flow on
// the intra-interval scenario, the sharpest sub-epoch timing case.
func TestIntraEpochAgreement(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1)
	s := g.Freeze()
	spec := WorkloadSpec{LoadFactor: 0.05, Epochs: 10, Sizes: "exp", MeanSize: 0.01}
	ep := runEngine(t, s, UniformMasses(2), spec, EngineEpoch, 5, 1)
	evt := runEngine(t, s, UniformMasses(2), spec, EngineEvent, 5, 2)
	checkEngineAgreement(t, ep, evt, 1e-9)
}
