package traffic

import (
	"netmodel/internal/par"
)

// This file is the event-calendar engine (WorkloadSpec.Engine "event"):
// the scalable implementation of the same epoch-quantized flow dynamics
// the discrete-epoch engine defines. Instead of re-solving the whole
// max-min allocation and scanning every active flow each epoch, it
//
//   - pre-draws the entire arrival calendar from the per-origin
//     seed-split streams (parallel across origins, merged by origin
//     index — the draws are bit-identical to the epoch engine's),
//   - keeps persistent per-link flow sets and marks links dirty when a
//     flow arrives or departs on them,
//   - re-solves only the dirty links' dependency closure — the
//     connected components of the flow–link incidence graph that
//     contain a membership change — with a lazy-heap water-fill whose
//     cost is O(flow-hops · log) instead of O(rounds · links), solving
//     independent components in parallel via par.ForEach and merging by
//     deterministic component index, and
//   - predicts each flow's departure on a calendar heap, invalidated by
//     version counter whenever the flow's rate changes, so epochs in
//     which a flow's component is untouched cost it nothing.
//
// Determinism: admission order, dirty-list order, component discovery
// order and the departure heap's (time, flow id) total order are all
// worker-independent, and the parallel phases (calendar pre-draw, BFS
// tree builds, component solves) write only index-private state — so
// the report is byte-identical at every worker count. Equivalence with
// the epoch engine is exact on the admitted flow population and exact
// up to floating-point association order on rates and completion times
// (the two engines fix bottlenecks in the same ascending-share order
// but break share ties differently), which the equivalence suite pins
// with a tight relative tolerance.

// evFlow is one flow of the event engine. Entries are internal: a
// reroute or retry re-admission detaches the old entry and appends a
// fresh one, so the stable trace identity is tid, not the slice index.
// Without fault injection tid always equals the index.
type evFlow struct {
	src, dst  int32
	tid       int32 // trace identity (epoch engine's admission index)
	retries   int32 // re-admission attempts consumed so far
	done      bool
	version   uint32  // departure-event validity; bump to invalidate
	upEpoch   int32   // epoch remaining was last materialized at
	remaining float64 // unfinished volume as of upEpoch
	size      float64
	arrived   float64
	rate      float64 // current max-min rate; -1 while unallocated
	path      []int32 // snapshot edge ids
}

// depEvent is a predicted departure: flow id completes at instant t
// unless its rate changed since (version mismatch).
type depEvent struct {
	t   float64
	id  int32
	ver uint32
}

// depHeap is a binary min-heap of departure events ordered by
// (t, flow id) — a total order over valid events, so pop order is
// independent of push order and of the worker count.
type depHeap struct{ a []depEvent }

func (h *depHeap) less(x, y depEvent) bool {
	return x.t < y.t || (x.t == y.t && x.id < y.id)
}

func (h *depHeap) push(ev depEvent) {
	h.a = append(h.a, ev)
	for i := len(h.a) - 1; i > 0; {
		p := (i - 1) / 2
		if !h.less(h.a[i], h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *depHeap) pop() depEvent {
	root := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h.less(h.a[l], h.a[m]) {
			m = l
		}
		if r < last && h.less(h.a[r], h.a[m]) {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return root
}

// shareEntry is one lazy heap entry of the component water-fill: link e
// offered share `share` at link-version ver. Entries whose version no
// longer matches are skipped on pop.
type shareEntry struct {
	share float64
	e     int32
	ver   uint32
}

// shareHeap is a binary min-heap by (share, edge id) — deterministic
// bottleneck selection no matter the push order.
type shareHeap struct{ a []shareEntry }

func (h *shareHeap) reset() { h.a = h.a[:0] }

func (h *shareHeap) less(x, y shareEntry) bool {
	return x.share < y.share || (x.share == y.share && x.e < y.e)
}

func (h *shareHeap) push(en shareEntry) {
	h.a = append(h.a, en)
	for i := len(h.a) - 1; i > 0; {
		p := (i - 1) / 2
		if !h.less(h.a[i], h.a[p]) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *shareHeap) pop() shareEntry {
	root := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < last && h.less(h.a[l], h.a[m]) {
			m = l
		}
		if r < last && h.less(h.a[r], h.a[m]) {
			m = r
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return root
}

// bottleneckComp is one connected component of the flow–link incidence
// graph touched by this epoch's membership changes, in deterministic
// discovery order. Components are disjoint, so solving them is
// embarrassingly parallel.
type bottleneckComp struct {
	links []int32
	flows []int32
}

// eventSim is the engine's evolving state.
type eventSim struct {
	ctx *simContext
	dt  float64

	flows []evFlow

	// Per-link state. lflows holds live flow ids in admission order
	// (compacted of completed ids whenever the closure visits the
	// link); nact counts them; load is the link's current allocated
	// load, persisted across epochs so clean components are never
	// rescanned.
	lflows [][]int32
	nact   []int32
	load   []float64

	// Dirty links accumulated since the last closure, in deterministic
	// mark order.
	dirtyList []int32
	inDirty   []bool

	// carrying lists links with active flows, in first-activation
	// order; the per-epoch observation pass iterates and compacts it.
	carrying   []int32
	inCarrying []bool

	// Closure scratch: epoch-stamped visited marks (stamp epoch+1, so
	// the zero value is never a valid stamp) and the BFS queue.
	linkSeen []int32
	flowSeen []int32
	queueBuf []int32

	// Solver scratch, written only by the solve owning the link.
	capRem   []float64
	nUnfixed []int32
	linkVer  []uint32

	// comps pools the closure's component descriptors: the slice and
	// each component's links/flows slabs persist across epochs,
	// truncated instead of reallocated.
	comps []bottleneckComp

	departures depHeap

	// nextTID numbers original admissions — the shared trace identity
	// both engines agree on.
	nextTID int32
}

// newEventSim readies the engine state for one run, reusing the
// scratch-pooled instance when there is one. Everything the run reads
// before writing is truncated or zeroed here — link membership, loads,
// closure stamps, the flow table, the departure heap — while pure
// solver scratch (capRem, nUnfixed, linkVer) only grows: its entries
// are initialized per solve, and the heaps' orderings never read the
// version counters, so stale values cannot steer a run. The reset cost
// is proportional to the topology, paid once per run.
func newEventSim(ctx *simContext, cal flatCalendar, scratch *SimScratch) *eventSim {
	nLinks := len(ctx.edges)
	ev := scratch.ev
	if ev == nil {
		ev = &eventSim{}
		scratch.ev = ev
	}
	ev.ctx, ev.dt = ctx, ctx.spec.EpochLen
	if n := len(ev.nact); n < nLinks {
		ev.lflows = append(ev.lflows, make([][]int32, nLinks-n)...)
		ev.nact = append(ev.nact, make([]int32, nLinks-n)...)
		ev.load = append(ev.load, make([]float64, nLinks-n)...)
		ev.inDirty = append(ev.inDirty, make([]bool, nLinks-n)...)
		ev.inCarrying = append(ev.inCarrying, make([]bool, nLinks-n)...)
		ev.linkSeen = append(ev.linkSeen, make([]int32, nLinks-n)...)
		ev.capRem = append(ev.capRem, make([]float64, nLinks-n)...)
		ev.nUnfixed = append(ev.nUnfixed, make([]int32, nLinks-n)...)
		ev.linkVer = append(ev.linkVer, make([]uint32, nLinks-n)...)
	}
	for i := 0; i < nLinks; i++ {
		ev.lflows[i] = ev.lflows[i][:0]
		ev.nact[i] = 0
		ev.load[i] = 0
		ev.inDirty[i] = false
		ev.inCarrying[i] = false
		ev.linkSeen[i] = 0
	}
	ev.dirtyList = ev.dirtyList[:0]
	ev.carrying = ev.carrying[:0]
	// The calendar's total arrival count sizes the flow table and
	// departure heap exactly: without fault injection no admission ever
	// regrows them (reroutes and retries append extra entries,
	// amortized as usual — and kept across runs by a shared scratch).
	if cap(ev.flows) < len(cal.pend) {
		ev.flows = make([]evFlow, 0, len(cal.pend))
		ev.flowSeen = make([]int32, 0, len(cal.pend))
		ev.departures.a = make([]depEvent, 0, len(cal.pend))
	}
	ev.flows = ev.flows[:0]
	ev.flowSeen = ev.flowSeen[:0]
	ev.departures.a = ev.departures.a[:0]
	ev.nextTID = 0
	return ev
}

func (ev *eventSim) markDirty(e int32) {
	if !ev.inDirty[e] {
		ev.inDirty[e] = true
		ev.dirtyList = append(ev.dirtyList, e)
	}
}

// attach appends a live flow entry — an original admission, a reroute's
// replacement, or a retry re-admission — and joins it to its path's
// link sets, dirtying them for the epoch's closure.
func (ev *eventSim) attach(tid, src, dst int32, path []int32, remaining, arrived float64, retries int32, epoch int) {
	id := int32(len(ev.flows))
	ev.flows = append(ev.flows, evFlow{
		src: src, dst: dst, tid: tid, retries: retries,
		upEpoch: int32(epoch), remaining: remaining, size: remaining,
		arrived: arrived, rate: -1, path: path,
	})
	ev.flowSeen = append(ev.flowSeen, 0)
	for _, g := range path {
		ev.nact[g]++
		ev.lflows[g] = append(ev.lflows[g], id)
		ev.markDirty(g)
		if !ev.inCarrying[g] {
			ev.inCarrying[g] = true
			ev.carrying = append(ev.carrying, g)
		}
	}
}

// detach materializes the flow's remaining volume at the given epoch
// and retires its entry: done entries are compacted from link flow sets
// by the next closure, and its links are dirtied so the component
// re-solves without it.
func (ev *eventSim) detach(id int32, epoch int) {
	f := &ev.flows[id]
	if f.rate > 0 && int32(epoch) > f.upEpoch {
		f.remaining -= f.rate * float64(int32(epoch)-f.upEpoch) * ev.dt
	}
	f.upEpoch = int32(epoch)
	f.done = true
	f.version++ // strand any scheduled departure
	for _, g := range f.path {
		ev.nact[g]--
		ev.markDirty(g)
	}
}

// flatCalendar is the pre-drawn arrival calendar flattened into one
// slab: epoch e's arrivals are pend[offs[e]:offs[e+1]]. One backing
// array for the whole horizon instead of a slice per epoch, so the
// per-epoch admission phase allocates nothing — and the total arrival
// count (len(pend)) sizes the engine's flow table exactly up front.
type flatCalendar struct {
	pend []pending
	offs []int32 // len epochs+1, monotone
}

func (fc *flatCalendar) epoch(e int) []pending {
	return fc.pend[fc.offs[e]:fc.offs[e+1]]
}

// buildCalendar pre-draws every origin's arrivals for the whole horizon
// — parallel across origins, since each origin draws only from its own
// split stream — and merges them into per-epoch admission lists in
// ascending origin order, exactly the order the epoch engine draws in.
func buildCalendar(ctx *simContext) flatCalendar {
	epochs := ctx.spec.Epochs
	dt := ctx.spec.EpochLen
	type originCal struct {
		counts []int32
		pend   []pending
	}
	cals := make([]originCal, len(ctx.srcNodes))
	par.ForEach(len(ctx.srcNodes), par.Workers(ctx.workers), func(_, i int) {
		oc := originCal{counts: make([]int32, epochs)}
		for e := 0; e < epochs; e++ {
			before := len(oc.pend)
			oc.pend = ctx.drawArrivals(i, dt, oc.pend)
			oc.counts[e] = int32(len(oc.pend) - before)
		}
		cals[i] = oc
	})
	total := 0
	for i := range cals {
		total += len(cals[i].pend)
	}
	fc := flatCalendar{
		pend: make([]pending, 0, total),
		offs: make([]int32, epochs+1),
	}
	offs := make([]int32, len(cals))
	for e := 0; e < epochs; e++ {
		for i := range cals {
			k := cals[i].counts[e]
			if k > 0 {
				fc.pend = append(fc.pend, cals[i].pend[offs[i]:offs[i]+k]...)
				offs[i] += k
			}
		}
		fc.offs[e+1] = int32(len(fc.pend))
	}
	return fc
}

// closure consumes the dirty list and returns the affected connected
// components of the flow–link incidence graph: BFS from each dirty link
// in mark order, alternating link → live flows → their path links.
// Visiting a flow materializes its remaining volume at the current
// epoch, invalidates its scheduled departure and marks it unallocated;
// visiting a link compacts completed ids out of its flow set. Links and
// flows outside the closure keep their rates, loads and predicted
// departures untouched.
func (ev *eventSim) closure(epoch int) []bottleneckComp {
	stamp := int32(epoch + 1)
	nc := 0
	for _, seed := range ev.dirtyList {
		ev.inDirty[seed] = false
		if ev.linkSeen[seed] == stamp {
			continue
		}
		ev.linkSeen[seed] = stamp
		if nc == len(ev.comps) {
			ev.comps = append(ev.comps, bottleneckComp{})
		}
		c := &ev.comps[nc]
		c.links, c.flows = c.links[:0], c.flows[:0]
		nc++
		queue := append(ev.queueBuf[:0], seed)
		for qi := 0; qi < len(queue); qi++ {
			e := queue[qi]
			c.links = append(c.links, e)
			live := ev.lflows[e][:0]
			for _, fid := range ev.lflows[e] {
				f := &ev.flows[fid]
				if f.done {
					continue
				}
				live = append(live, fid)
				if ev.flowSeen[fid] == stamp {
					continue
				}
				ev.flowSeen[fid] = stamp
				if f.rate > 0 && int32(epoch) > f.upEpoch {
					f.remaining -= f.rate * float64(int32(epoch)-f.upEpoch) * ev.dt
				}
				f.upEpoch = int32(epoch)
				f.rate = -1
				f.version++ // strand any scheduled departure
				c.flows = append(c.flows, fid)
				for _, g := range f.path {
					if ev.linkSeen[g] != stamp {
						ev.linkSeen[g] = stamp
						queue = append(queue, g)
					}
				}
			}
			ev.lflows[e] = live
		}
		ev.queueBuf = queue[:0]
	}
	ev.dirtyList = ev.dirtyList[:0]
	return ev.comps[:nc]
}

// solveComponent water-fills one component from scratch: a lazy heap of
// (capRem/nUnfixed, edge id) keys pops the bottleneck link, fixes its
// unallocated flows at the bottleneck share, and re-keys every link
// those flows cross. Each fix costs O(path · log) instead of the epoch
// engine's O(links) scan per bottleneck round. The component's links
// and flows are private to this call, so parallel solves never touch
// shared state.
func (ev *eventSim) solveComponent(c *bottleneckComp, h *shareHeap) {
	for _, e := range c.links {
		ev.capRem[e] = ev.capEdge(e)
		ev.nUnfixed[e] = ev.nact[e]
		ev.linkVer[e]++
	}
	h.reset()
	for _, e := range c.links {
		if ev.nUnfixed[e] > 0 {
			h.push(shareEntry{ev.capRem[e] / float64(ev.nUnfixed[e]), e, ev.linkVer[e]})
		}
	}
	for unfixed := len(c.flows); unfixed > 0 && len(h.a) > 0; {
		en := h.pop()
		if en.ver != ev.linkVer[en.e] || ev.nUnfixed[en.e] == 0 {
			continue // stale key
		}
		best := en.e
		bestShare := ev.capRem[best] / float64(ev.nUnfixed[best])
		if bestShare < 0 {
			bestShare = 0 // floating-point slack
		}
		for _, fid := range ev.lflows[best] {
			f := &ev.flows[fid]
			if f.rate >= 0 {
				continue
			}
			f.rate = bestShare
			unfixed--
			for _, g := range f.path {
				ev.capRem[g] -= bestShare
				ev.nUnfixed[g]--
				ev.linkVer[g]++
				if ev.nUnfixed[g] > 0 {
					h.push(shareEntry{ev.capRem[g] / float64(ev.nUnfixed[g]), g, ev.linkVer[g]})
				}
			}
		}
		// Snap the exhausted bottleneck's residue to exactly zero, the
		// same ulp discipline as the epoch engine — saturated
		// bottlenecks read utilization 1.0 exactly in both.
		ev.capRem[best] = 0
	}
	for _, e := range c.links {
		load := ev.capEdge(e) - ev.capRem[e]
		if load < 0 {
			load = 0
		}
		if load > ev.capEdge(e) {
			load = ev.capEdge(e)
		}
		ev.load[e] = load
	}
}

func (ev *eventSim) capEdge(e int32) float64 { return ev.ctx.capEdge[e] }

// simulateEvent runs the event-calendar engine. The per-epoch phases —
// admission, closure, parallel component solves, departure scheduling,
// observation, departures — replicate the epoch engine's ordering
// (arrivals and rates first, link observations under those rates, then
// completions leave at the boundary), so the two engines agree on the
// trajectory.
func simulateEvent(ctx *simContext) (*SimReport, error) {
	return simulateEventCal(ctx, buildCalendar(ctx))
}

// simulateEventCal is simulateEvent against an already-built calendar —
// the seam the steady-state allocation benchmark measures through, so
// the one-time arrival pre-draw stays outside the measured epochs.
func simulateEventCal(ctx *simContext, cal flatCalendar) (*SimReport, error) {
	spec := ctx.spec
	nLinks := len(ctx.edges)
	scratch := ctx.cfg.scratch
	if scratch == nil {
		scratch = &SimScratch{} // private to this run
	}
	ev := newEventSim(ctx, cal, scratch)
	rep := &SimReport{Spec: spec, Epochs: make([]EpochStats, 0, spec.Epochs)}
	dt := ev.dt
	var (
		avgLoad     = make([]float64, nLinks)
		ccdfCounts  = make([]int, len(utilCCDFThresholds))
		fctSum      float64
		utilSum     float64
		activeSum   int
		overloaded  int
		activeCount int
		now         float64
		curEpoch    int
		admitted    int
		comps       []bottleneckComp
	)
	for w := par.Workers(ctx.workers); len(scratch.solvers) < w; {
		scratch.solvers = append(scratch.solvers, &shareHeap{})
	}
	solvers := scratch.solvers
	// Both per-epoch hot closures are created once per run — the
	// admission callback and the component-solve body read the epoch's
	// state through captured variables, so the steady state's marginal
	// cost carries no closure allocations.
	admitFlow := func(p pending, path []int32) {
		if ctx.fail != nil {
			path = ctx.fail.toBase(path)
		}
		tid := ev.nextTID
		ev.nextTID++
		if ctx.cfg.trace {
			rep.Flows = append(rep.Flows, FlowRecord{
				Src: p.src, Dst: p.dst, Size: p.size, Arrived: now,
			})
		}
		ev.attach(tid, int32(p.src), int32(p.dst), path, p.size, now, 0, curEpoch)
		admitted++
		activeCount++
	}
	solveOne := func(w, i int) {
		ev.solveComponent(&comps[i], solvers[w])
	}

	for epoch := 0; epoch < spec.Epochs; epoch++ {
		now = float64(epoch) * dt
		curEpoch = epoch

		// Failure phase, mirroring the epoch engine exactly: apply the
		// epoch's outage ops, then scan the flow entries in admission
		// order — a broken-path flow's entry is detached and either
		// replaced (reroute) or killed — and re-admit due retries. The
		// detached links are dirty, so the closure re-solves their
		// components without the departed members.
		reroutedNow, killedNow, retriedNow := 0, 0, 0
		if fail := ctx.fail; fail != nil {
			if err := fail.beginEpoch(epoch); err != nil {
				return nil, err
			}
			if fail.flipped {
				nf := len(ev.flows)
				for id := 0; id < nf; id++ {
					f := &ev.flows[id]
					if f.done || !fail.pathBroken(f.path) {
						continue
					}
					ev.detach(int32(id), epoch)
					// Copy before attach: appending may move ev.flows.
					tid, src, dst := f.tid, f.src, f.dst
					remaining, arrived, retries := f.remaining, f.arrived, f.retries
					if np, ok := fail.resolve(int(src), int(dst)); ok {
						reroutedNow++
						fail.rerouted++
						if ctx.cfg.trace {
							rep.Flows[tid].Reroutes++
						}
						ev.attach(tid, src, dst, np, remaining, arrived, retries, epoch)
						continue
					}
					killedNow++
					activeCount--
					fail.kill(epoch, tid, src, dst, remaining, arrived, retries)
					if ctx.cfg.trace {
						rep.Flows[tid].Killed = true
					}
				}
			}
			for _, rf := range fail.takeRetries(epoch) {
				fail.retried++
				retriedNow++
				rf.retries++
				if ctx.cfg.trace {
					rep.Flows[rf.id].Retries++
				}
				if path, ok := fail.resolve(int(rf.src), int(rf.dst)); ok {
					ev.attach(rf.id, rf.src, rf.dst, path, rf.remaining, rf.arrived, rf.retries, epoch)
					activeCount++
					if ctx.cfg.trace {
						rep.Flows[rf.id].Killed = false
					}
				} else {
					fail.requeue(epoch, rf)
				}
			}
		}

		// Admission: route the pre-drawn arrivals, create flows, add
		// them to their links' sets and dirty those links.
		admitted = 0
		rep.Undelivered += admitPending(ctx.routing(), ctx.workers, cal.epoch(epoch), admitFlow)
		rep.Arrived += admitted

		// Re-solve only the affected components, in parallel. Writes are
		// component-private and the component list is deterministic, so
		// the merged state is byte-identical at every worker count.
		comps = ev.closure(epoch)
		par.ForEach(len(comps), ctx.workers, solveOne)

		// Schedule departures for the re-rated flows (sequential, in
		// component order; the heap's total order makes pop order
		// independent of push order anyway).
		for i := range comps {
			for _, fid := range comps[i].flows {
				f := &ev.flows[fid]
				if f.rate > 0 {
					ev.departures.push(depEvent{t: now + f.remaining/f.rate, id: fid, ver: f.version})
				}
			}
		}

		// Link observations under this epoch's rates, compacting links
		// whose flows have all departed out of the carrying list.
		var epochUtilSum, epochMaxUtil float64
		epochOverloaded := 0
		keep := ev.carrying[:0]
		for _, e := range ev.carrying {
			if ev.nact[e] == 0 {
				ev.inCarrying[e] = false
				continue
			}
			keep = append(keep, e)
			util := utilOf(ev.load[e], ev.capEdge(e))
			epochUtilSum += util
			if util > epochMaxUtil {
				epochMaxUtil = util
			}
			if util >= spec.OverloadAt {
				epochOverloaded++
			}
			for ti, thr := range utilCCDFThresholds {
				if util >= thr {
					ccdfCounts[ti]++
				}
			}
			avgLoad[e] += ev.load[e] * dt
		}
		ev.carrying = keep
		utilSum += epochUtilSum
		overloaded += epochOverloaded
		if epochMaxUtil > rep.MaxUtil {
			rep.MaxUtil = epochMaxUtil
		}

		// Departures: pop every event predicted inside this epoch; an
		// event is valid only if the flow still holds the rate it was
		// predicted under. Removals dirty the flow's links for the next
		// epoch's closure.
		completedNow := 0
		boundary := float64(epoch+1) * dt
		for len(ev.departures.a) > 0 && ev.departures.a[0].t <= boundary {
			de := ev.departures.pop()
			f := &ev.flows[de.id]
			if f.done || de.ver != f.version || f.rate <= 0 {
				continue // stranded prediction
			}
			f.done = true
			fctSum += de.t - f.arrived
			completedNow++
			activeCount--
			if ctx.fail != nil {
				ctx.fail.noteFCT(f.arrived, de.t-f.arrived)
			}
			if ctx.cfg.trace {
				rep.Flows[f.tid].Done = true
				rep.Flows[f.tid].Finished = de.t
			}
			for _, g := range f.path {
				ev.nact[g]--
				ev.markDirty(g)
			}
		}
		rep.Completed += completedNow
		activeSum += activeCount
		es := EpochStats{
			Epoch:        epoch,
			Arrived:      admitted,
			Completed:    completedNow,
			Active:       activeCount,
			MeanUtil:     epochUtilSum / float64(nLinks),
			MaxUtil:      epochMaxUtil,
			OverloadFrac: float64(epochOverloaded) / float64(nLinks),
		}
		if fail := ctx.fail; fail != nil {
			es.LinksDown = fail.linksDown
			es.NodesDown = fail.nodesDown
			es.Rerouted = reroutedNow
			es.Killed = killedNow
			es.Retried = retriedNow
		}
		rep.Epochs = append(rep.Epochs, es)
	}

	// Residuals: materialize every live flow's remaining volume at the
	// horizon, in admission order (the epoch engine's order too).
	rep.ResidualFlows = activeCount
	for id := range ev.flows {
		f := &ev.flows[id]
		if f.done {
			continue
		}
		rem := f.remaining
		if f.rate > 0 && int32(spec.Epochs) > f.upEpoch {
			rem -= f.rate * float64(int32(spec.Epochs)-f.upEpoch) * dt
		}
		if rem < 0 {
			rem = 0 // an ulp past the horizon
		}
		rep.ResidualSize += rem
	}
	finishReport(rep, ctx, fctSum, utilSum, activeSum, overloaded, ccdfCounts, avgLoad)
	return rep, nil
}
