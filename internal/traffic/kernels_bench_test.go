package traffic

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"netmodel/internal/benchutil"
	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/rng"
)

// The kernel benchmarks are the acceptance surface of the zero-alloc
// hot paths: the direction-optimizing hybrid BFS against the classic
// queue kernel on cold shortest-path-tree builds, and the marginal
// allocation cost of one steady-state operation — a simulate epoch in
// either engine, a DistMap refresh, a Routing refresh — measured by
// differencing seeded-deterministic runs so one-time setup cancels
// exactly. The allocation rows are gated from above by benchcheck's
// max_allocs_per_op / max_bytes_per_op ceilings (0 for the steady
// states), the speedup row from below by the usual floor:
//
//	make bench-kernels                      # writes BENCH_kernels.json
//	go test ./internal/traffic -run TestKernelsBenchJSON \
//	    -kernels-bench-out BENCH_kernels.json
//
// The emitter lives inside the traffic package because exact marginal
// measurement needs the engine seams a public caller cannot reach: the
// event engine's pre-drawn calendar must be staged outside the measured
// region (its per-origin draw slabs grow amortized with the horizon,
// which would masquerade as per-epoch allocation).
var (
	kernelsBenchOut = flag.String("kernels-bench-out", "", "write kernel speedup/allocation rows to this JSON file")
	kernelsBenchN   = flag.Int("kernels-bench-n", 100000, "cold-tree-build acceptance row map size")
)

// kernelsRow is one BENCH_kernels.json row. The allocation fields are
// pointers so an explicit measured zero is emitted (omitempty would
// drop it) while rows that measure only time omit the fields — and
// benchcheck fails a ceiling against an absent field rather than
// passing it vacuously.
type kernelsRow struct {
	Name        string   `json:"name"`
	N           int      `json:"n"`
	Epochs      int      `json:"epochs,omitempty"`
	Sources     int      `json:"sources,omitempty"`
	Workers     int      `json:"workers"`
	Cores       int      `json:"cores"`
	NumCPU      int      `json:"num_cpu"`
	NsPerOp     int64    `json:"ns_per_op"`
	Speedup     float64  `json:"speedup,omitempty"`
	SpeedupVs   string   `json:"speedup_vs,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
}

func fptr(v float64) *float64 { return &v }

// kernelsFreezeBA freezes a BA map of n nodes for the kernel rows.
// M=4 (average degree 8) matches the density band of measured AS-level
// topologies — and is where the direction-optimizing tradeoff operates:
// sparser maps leave the bottom-up sweep little to skip, denser ones
// make it trivially dominant.
func kernelsFreezeBA(tb testing.TB, n int, seed uint64) *graph.Snapshot {
	tb.Helper()
	top, err := gen.BA{N: n, M: 4}.Generate(rng.New(seed))
	if err != nil {
		tb.Fatal(err)
	}
	snap, err := top.G.FreezeChecked()
	if err != nil {
		tb.Fatal(err)
	}
	return snap
}

// kernelsColdTreeRows times the cold build of nsrc shortest-path
// distance trees — the work DistMap rebuilds, Routing.Ensure and the
// per-node metric kernels all sit on — classic queue BFS against the
// hybrid kernel, pinning bit-identical distances along the way.
func kernelsColdTreeRows(t *testing.T, n int, rows []kernelsRow) []kernelsRow {
	t.Helper()
	const nsrc = 64
	snap := kernelsFreezeBA(t, n, 1)
	srcs := make([]int, nsrc)
	for i := range srcs {
		srcs[i] = i * snap.N() / nsrc
	}
	distC := make([]int32, snap.N())
	distH := make([]int32, snap.N())
	queue := make([]int32, snap.N())
	sc := metrics.NewBFSScratch(snap.N())

	// Warm both kernels (page in the CSR, size the scratch), pinning
	// equivalence on every source while at it.
	for _, src := range srcs {
		metrics.BFSFrozen(snap, src, distC, queue)
		metrics.BFSHybrid(snap, src, distH, sc)
		for v := range distC {
			if distC[v] != distH[v] {
				t.Fatalf("n=%d src=%d: hybrid dist[%d]=%d, classic %d", n, src, v, distH[v], distC[v])
			}
		}
	}
	start := time.Now()
	for _, src := range srcs {
		metrics.BFSFrozen(snap, src, distC, queue)
	}
	classic := time.Since(start)
	start = time.Now()
	for _, src := range srcs {
		metrics.BFSHybrid(snap, src, distH, sc)
	}
	hybrid := time.Since(start)
	// Difference a one-pass against a three-pass run: the warm kernel
	// itself must be allocation-free, and one-off background-runtime
	// allocations that land inside a single long window cancel out.
	allocsPerOp, bytesPerOp := benchutil.MarginalAllocs(nsrc, 3*nsrc, func(ops int) {
		for i := 0; i < ops; i++ {
			metrics.BFSHybrid(snap, srcs[i%nsrc], distH, sc)
		}
	})
	speedup := float64(classic) / float64(hybrid)
	cores, ncpu := runtime.GOMAXPROCS(0), runtime.NumCPU()
	t.Logf("coldtree n=%d: classic %v, hybrid %v (%.2fx), warm hybrid %g allocs/op", n, classic, hybrid, speedup, allocsPerOp)
	return append(rows,
		kernelsRow{Name: "kernels-coldtree-classic", N: n, Sources: nsrc, Workers: 1,
			Cores: cores, NumCPU: ncpu, NsPerOp: classic.Nanoseconds() / nsrc},
		kernelsRow{Name: "kernels-coldtree-hybrid", N: n, Sources: nsrc, Workers: 1,
			Cores: cores, NumCPU: ncpu, NsPerOp: hybrid.Nanoseconds() / nsrc,
			Speedup: speedup, SpeedupVs: "kernels-coldtree-classic",
			AllocsPerOp: fptr(allocsPerOp), BytesPerOp: fptr(bytesPerOp)})
}

// kernelsWorkload derives a steady workload over a frozen BA map: load
// factor 0.7, mean flow size set for roughly flows arrivals per epoch.
func kernelsWorkload(tb testing.TB, n, flows int) (*graph.Snapshot, []float64, WorkloadSpec) {
	tb.Helper()
	snap := kernelsFreezeBA(tb, n, 1)
	masses := make([]float64, snap.N())
	for u := range masses {
		masses[u] = float64(snap.Degree(u))
	}
	var capTotal float64
	for _, e := range snap.EdgeList() {
		capTotal += float64(e.W)
	}
	const load = 0.7
	spec := WorkloadSpec{
		LoadFactor: load,
		MeanSize:   load * capTotal / float64(flows),
	}
	return snap, masses, spec
}

// kernelsEngineSteadyRow measures one engine's marginal allocations per
// steady-state epoch. Both timed runs share a routing state pre-warmed
// over the longer horizon (both draw the identical seeded arrival
// stream, so the warmup resolves every OD pair either run will ask
// for), and the event engine's calendar is staged outside the measured
// region — what remains in the difference is exactly the per-epoch cost
// of the simulation loop.
func kernelsEngineSteadyRow(t *testing.T, engine string, rows []kernelsRow) []kernelsRow {
	t.Helper()
	const (
		n     = 2000
		flows = 200
		e1    = 16
		e2    = 40
	)
	snap, masses, spec := kernelsWorkload(t, n, flows)
	spec.Engine = engine
	rt := NewRouting(snap)
	scr := NewSimScratch()
	specFor := func(epochs int) WorkloadSpec {
		s := spec
		s.Epochs = epochs
		return s
	}

	var allocsPerOp, bytesPerOp float64
	var t1, t2 time.Duration
	if engine == EngineEvent {
		prep := func(epochs int) (*simContext, flatCalendar) {
			ctx, err := newSimContext(snap, rt, masses, specFor(epochs), rng.New(7), 1, WithSimScratch(scr))
			if err != nil {
				t.Fatal(err)
			}
			return ctx, buildCalendar(ctx)
		}
		run := func(epochs int) (uint64, uint64, time.Duration) {
			ctx, cal := prep(epochs)
			start := time.Now()
			a, b := benchutil.MeasureAllocs(func() {
				if _, err := simulateEventCal(ctx, cal); err != nil {
					t.Fatal(err)
				}
			})
			return a, b, time.Since(start)
		}
		run(e2) // warm the shared routing state over the long horizon
		a1, b1, d1 := run(e1)
		a2, b2, d2 := run(e2)
		allocsPerOp = float64(a2-a1) / float64(e2-e1)
		bytesPerOp = float64(b2-b1) / float64(e2-e1)
		t1, t2 = d1, d2
	} else {
		run := func(epochs int) {
			if _, err := Simulate(snap, masses, specFor(epochs), rng.New(7), 1, WithRouting(rt), WithSimScratch(scr)); err != nil {
				t.Fatal(err)
			}
		}
		run(e2) // warm the shared routing state over the long horizon
		start := time.Now()
		run(e1)
		t1 = time.Since(start)
		allocsPerOp, bytesPerOp = benchutil.MarginalAllocs(e1, e2, run)
		start = time.Now()
		run(e2)
		t2 = time.Since(start)
	}
	nsPerOp := (t2 - t1).Nanoseconds() / int64(e2-e1)
	if nsPerOp < 0 {
		nsPerOp = 0 // timing noise on tiny maps
	}
	cores, ncpu := runtime.GOMAXPROCS(0), runtime.NumCPU()
	t.Logf("%s steady: %.3f allocs/epoch, %.1f B/epoch, ~%dns/epoch", engine, allocsPerOp, bytesPerOp, nsPerOp)
	return append(rows, kernelsRow{
		Name: "kernels-" + engine + "-steady", N: n, Epochs: e2 - e1, Workers: 1,
		Cores: cores, NumCPU: ncpu, NsPerOp: nsPerOp,
		AllocsPerOp: fptr(allocsPerOp), BytesPerOp: fptr(bytesPerOp),
	})
}

// kernelsRefreshRows drives a fixed-n churn sequence — removals and
// insertions each epoch, no growth — and measures the allocations of
// exactly the DistMap.Refresh and Routing.Refresh calls after a warmup
// phase has every pooled buffer at its high-water mark. Steady-state
// refreshes on the repair path must allocate nothing.
func kernelsRefreshRows(t *testing.T, rows []kernelsRow) []kernelsRow {
	t.Helper()
	const (
		n       = 4000
		pivots  = 32
		trees   = 24
		warmup  = 96
		measure = 12
	)
	top, err := gen.BA{N: n, M: 2}.Generate(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	g := top.G.Copy()
	prev, err := g.FreezeChecked()
	if err != nil {
		t.Fatal(err)
	}
	dm := metrics.NewDistMapSampled(prev, rng.New(5), pivots, 1)
	rt := NewRouting(prev)
	srcs := make([]int, trees)
	for i := range srcs {
		srcs[i] = i
	}
	rt.Ensure(srcs, 1)

	r := rng.New(11)
	var dmAllocs, dmBytes, rtAllocs, rtBytes uint64
	var dmTime, rtTime time.Duration
	for epoch := 0; epoch < warmup+measure; epoch++ {
		// Exactly 8 removals and 8 insertions, so the edge count is
		// constant: every edge-sized refresh buffer reaches its
		// high-water mark during warmup and the measured phase sees the
		// repair path's true steady-state allocation count.
		edges := prev.EdgeList()
		for removed := 0; removed < 8; {
			e := edges[r.Intn(len(edges))]
			if g.HasEdge(e.U, e.V) {
				if err := g.RemoveEdge(e.U, e.V); err != nil {
					t.Fatal(err)
				}
				removed++
			}
		}
		for added := 0; added < 8; {
			u, v := r.Intn(g.N()), r.Intn(g.N())
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
				added++
			}
		}
		next, d, err := g.Refreeze(prev)
		if err != nil {
			t.Fatal(err)
		}
		if d == nil {
			t.Fatal("churn epoch expected a delta refresh")
		}
		if epoch < warmup {
			dm.Refresh(next, d, 1)
			rt.Refresh(next, d, 1)
		} else {
			start := time.Now()
			a, b := benchutil.MeasureAllocs(func() { dm.Refresh(next, d, 1) })
			dmTime += time.Since(start)
			dmAllocs += a
			dmBytes += b
			start = time.Now()
			a, b = benchutil.MeasureAllocs(func() { rt.Refresh(next, d, 1) })
			rtTime += time.Since(start)
			rtAllocs += a
			rtBytes += b
		}
		prev = next
	}
	cores, ncpu := runtime.GOMAXPROCS(0), runtime.NumCPU()
	t.Logf("refresh churn: distmap %d allocs / %d epochs, routing %d allocs / %d epochs",
		dmAllocs, measure, rtAllocs, measure)
	return append(rows,
		kernelsRow{Name: "kernels-distmap-refresh", N: n, Epochs: measure, Sources: pivots, Workers: 1,
			Cores: cores, NumCPU: ncpu, NsPerOp: dmTime.Nanoseconds() / measure,
			AllocsPerOp: fptr(float64(dmAllocs) / measure), BytesPerOp: fptr(float64(dmBytes) / measure)},
		kernelsRow{Name: "kernels-routing-refresh", N: n, Epochs: measure, Sources: trees, Workers: 1,
			Cores: cores, NumCPU: ncpu, NsPerOp: rtTime.Nanoseconds() / measure,
			AllocsPerOp: fptr(float64(rtAllocs) / measure), BytesPerOp: fptr(float64(rtBytes) / measure)})
}

// kernelsRoutingResetRow measures the marginal allocations of moving a
// Routing between topologies with Reset: alternate two same-size frozen
// maps, Reset to the other map and Ensure a fixed source set each
// cycle. After a warmup phase has the tree freelist, the Ensure
// staging buffers and the BFS scratch at their high-water marks, a
// Reset/Ensure cycle must allocate nothing — the property that lets
// sweeps recycle one Routing across every topology of a group instead
// of paying NewRouting per cell.
func kernelsRoutingResetRow(t *testing.T, rows []kernelsRow) []kernelsRow {
	t.Helper()
	const (
		n       = 4000
		trees   = 24
		warmup  = 8
		measure = 12
	)
	snaps := []*graph.Snapshot{kernelsFreezeBA(t, n, 1), kernelsFreezeBA(t, n, 2)}
	srcs := make([]int, trees)
	for i := range srcs {
		srcs[i] = i * n / trees
	}
	rt := NewRouting(snaps[0])
	rt.Ensure(srcs, 1)
	for cycle := 0; cycle < warmup; cycle++ {
		rt.Reset(snaps[(cycle+1)%2])
		rt.Ensure(srcs, 1)
	}
	var resetAllocs, resetBytes uint64
	var resetTime time.Duration
	for cycle := 0; cycle < measure; cycle++ {
		next := snaps[(warmup+cycle+1)%2]
		start := time.Now()
		a, b := benchutil.MeasureAllocs(func() {
			rt.Reset(next)
			rt.Ensure(srcs, 1)
		})
		resetTime += time.Since(start)
		resetAllocs += a
		resetBytes += b
	}
	// Pin correctness alongside the allocation claim: the recycled
	// routing must route exactly like a fresh one over the same map.
	cur := snaps[(warmup+measure)%2]
	fresh := NewRouting(cur)
	fresh.Ensure(srcs, 1)
	for _, src := range srcs {
		a, okA := rt.trees[src]
		b, okB := fresh.trees[src]
		if !okA || !okB {
			t.Fatalf("src %d: tree missing after reset cycle (reused %v, fresh %v)", src, okA, okB)
		}
		for v := 0; v < n; v++ {
			if a.dist[v] != b.dist[v] {
				t.Fatalf("src %d: reused tree dist[%d]=%d, fresh %d", src, v, a.dist[v], b.dist[v])
			}
		}
	}
	cores, ncpu := runtime.GOMAXPROCS(0), runtime.NumCPU()
	t.Logf("routing reset: %d allocs / %d cycles (%d trees each)", resetAllocs, measure, trees)
	return append(rows, kernelsRow{
		Name: "kernels-routing-reset", N: n, Epochs: measure, Sources: trees, Workers: 1,
		Cores: cores, NumCPU: ncpu, NsPerOp: resetTime.Nanoseconds() / measure,
		AllocsPerOp: fptr(float64(resetAllocs) / measure), BytesPerOp: fptr(float64(resetBytes) / measure),
	})
}

// TestKernelsBenchJSON emits BENCH_kernels.json: cold-tree-build
// speedup rows (hybrid vs classic BFS, 10k smoke plus the acceptance
// size) and the steady-state allocation rows both benchcheck ceilings
// and the CI race smoke run against. Disabled unless -kernels-bench-out
// is set.
func TestKernelsBenchJSON(t *testing.T) {
	if *kernelsBenchOut == "" {
		t.Skip("enable with -kernels-bench-out <file>")
	}
	sizes := []int{*kernelsBenchN}
	if *kernelsBenchN > 10000 {
		sizes = []int{10000, *kernelsBenchN}
	}
	var rows []kernelsRow
	for _, n := range sizes {
		rows = kernelsColdTreeRows(t, n, rows)
	}
	rows = kernelsEngineSteadyRow(t, EngineEpoch, rows)
	rows = kernelsEngineSteadyRow(t, EngineEvent, rows)
	rows = kernelsRefreshRows(t, rows)
	rows = kernelsRoutingResetRow(t, rows)
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*kernelsBenchOut, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %d kernel benchmark rows to %s\n", len(rows), *kernelsBenchOut)
}
