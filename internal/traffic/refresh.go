package traffic

import (
	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/par"
)

// This file carries the routing cache across snapshot refreshes. A
// growth epoch inserts a handful of edges into a 100k-node map; before,
// every cached shortest-path tree and memoized OD path died with the
// snapshot version and was rebuilt cold. Refresh instead repairs each
// cached tree with the shared shrink-only relaxation of the metrics
// package (metrics.RelaxInserted), re-selects canonical parents only
// where the distance field or the candidate sets moved, remaps memoized
// path edge ids to the refreshed numbering, and invalidates only the
// memo entries whose origin tree actually changed — so a long
// trajectory simulation pays per epoch for the delta's impact, not for
// n trees of BFS. Removal deltas (failure epochs) are scoped the same
// way: a tree arc that died orphans one node, and when every orphan
// still has a neighbor one hop closer the whole distance field
// provably survives and only the orphans' parent pointers are
// re-selected; a tree is rebuilt cold only when some orphan lost its
// last shortest-path predecessor — then distances can grow, which the
// shrink-only repair cannot express.

// Snapshot returns the snapshot the routing state currently describes.
func (rt *Routing) Snapshot() *graph.Snapshot { return rt.s }

// Reset rebases the routing state onto an arbitrary snapshot with every
// cached tree and memoized path dropped — NewRouting(next) in place,
// but reusing the allocated storage: tree arrays are recycled through
// the internal pool and handed to the next builds, the tree and path
// maps keep their buckets, and the arc→edge mapping refills the
// state's own buffer instead of populating the snapshot's lazy cache.
// A warm Routing swept across same-sized topologies (the artifact-cache
// and per-worker-pool patterns) therefore rebuilds its trees without
// allocating; the kernels-routing-reset ceiling in bench_floors.json
// enforces that. Unlike Refresh, Reset assumes nothing about the
// relationship between the old and new snapshots.
func (rt *Routing) Reset(next *graph.Snapshot) {
	rt.s = next
	rt.rfArcEdge = next.FillArcEdgeIDs(rt.rfArcEdge)
	rt.arcEdge = rt.rfArcEdge
	rt.max = RoutingTreeBudget(next.N())
	for src, t := range rt.trees {
		rt.free = append(rt.free, t)
		delete(rt.trees, src)
	}
	rt.fifo = rt.fifo[:0]
	clear(rt.paths)
}

// treeScratch is the reusable per-worker state of one tree repair: the
// relaxation scratch plus a stamped dedup set for the parent
// re-selection frontier.
type treeScratch struct {
	ds    *metrics.DistScratch
	stamp []int32
	round int32
	resel []int32
	orph  []int32
}

func newTreeScratch(n int) *treeScratch {
	return &treeScratch{ds: metrics.NewDistScratch(n), stamp: make([]int32, n)}
}

func (sc *treeScratch) ensure(n int) {
	if len(sc.stamp) < n {
		sc.stamp = append(sc.stamp, make([]int32, n-len(sc.stamp))...)
	}
}

// Refresh advances the routing state to next, the refreshed successor
// of its current snapshot with delta d between them (the pair returned
// by Graph.Refreeze). Cached trees are repaired in place — distances by
// shrink-only relaxation, parents re-selected only where a candidate
// set moved — and repairs of independent source trees run in parallel
// across workers with index-private results, so the final state is
// identical at every worker count and entry-identical to cold builds
// over next. Removal deltas are scoped: a dead tree arc orphans one
// node, and as long as every orphan keeps some neighbor one hop
// closer, the distance field provably survives — by induction on BFS
// level each orphan's support is itself still at its old distance, any
// strictly shorter path in next must use an inserted edge (which the
// insertion relaxation finds), and a removed non-parent candidate
// always has a larger id than the canonical min-id parent, so parent
// selection elsewhere is untouched. Such trees take the ordinary
// insertion repair with the orphans added to the parent re-selection
// frontier; a tree is rebuilt cold only when an orphan lost its last
// shortest-path predecessor — then distances can grow, which the
// shrink-only repair cannot express. Memoized OD paths
// survive with their edge ids remapped when their origin's tree is
// cached and unchanged on pre-existing nodes; they are dropped when the
// tree changed or was evicted. A nil delta (full refreeze) or a foreign
// base version resets the state instead, exactly as NewRouting(next)
// would.
func (rt *Routing) Refresh(next *graph.Snapshot, d *graph.Delta, workers int) {
	if next == nil {
		return
	}
	if d == nil || d.BaseVersion() != rt.s.Version() {
		rt.Reset(next)
		return
	}
	oldN, n := rt.s.N(), next.N()

	// Structural insertions and removals, in delta (U,V) order.
	ins, rem := rt.rfIns[:0], rt.rfRem[:0]
	for _, e := range d.Edges() {
		switch {
		case e.OldW == 0 && e.NewW != 0:
			ins = append(ins, e)
		case e.OldW != 0 && e.NewW == 0:
			rem = append(rem, e)
		}
	}
	rt.rfIns, rt.rfRem = ins, rem

	// Edge ids follow (u,v)-sorted order, so a refresh shifts old id i
	// up by the number of inserted edges sorting before it and down by
	// the number of removed edges before it; removed ids map to -1. One
	// merged walk of the old edge list against the sorted delta.
	prevEdges := rt.s.AppendEdges(rt.rfEdges[:0])
	rt.rfEdges = prevEdges
	if cap(rt.rfOldToNew) < len(prevEdges) {
		rt.rfOldToNew = make([]int32, len(prevEdges))
	}
	oldToNew := rt.rfOldToNew[:len(prevEdges)]
	insAt, remAt := 0, 0
	for i, e := range prevEdges {
		for insAt < len(ins) && (int(ins[insAt].U) < e.U ||
			(int(ins[insAt].U) == e.U && int(ins[insAt].V) < e.V)) {
			insAt++
		}
		if remAt < len(rem) && int(rem[remAt].U) == e.U && int(rem[remAt].V) == e.V {
			oldToNew[i] = -1
			remAt++
			continue
		}
		oldToNew[i] = int32(i - remAt + insAt)
	}

	// The refreshed arc→edge map cycles through rt's own buffer rather
	// than populating each epoch's snapshot cache; rt.arcEdge below
	// aliases it, which is safe because the previous map is never read
	// once a refresh begins.
	arcEdge := next.FillArcEdgeIDs(rt.rfArcEdge)
	rt.rfArcEdge = arcEdge
	srcs := append(rt.rfSrcs[:0], rt.fifo...)
	rt.rfSrcs = srcs
	if cap(rt.rfChanged) < len(srcs) {
		rt.rfChanged = make([]bool, len(srcs))
	}
	changed := rt.rfChanged[:len(srcs)]
	for i := range changed {
		changed[i] = false
	}
	w := par.Workers(workers)
	for len(rt.rfScratch) < w {
		rt.rfScratch = append(rt.rfScratch, nil)
	}
	rt.rfNext, rt.rfBudget, rt.rfOldN = next, n+2*next.M()+4096, oldN
	if rt.rfBody == nil {
		// Created once per Routing and reused forever: the body reads
		// every per-call parameter from rt's refresh fields, so the
		// steady-state repair does not even pay a closure literal.
		rt.rfBody = func(worker, i int) {
			next, arcEdge := rt.rfNext, rt.rfArcEdge
			ins, rem := rt.rfIns, rt.rfRem
			srcs, changed := rt.rfSrcs, rt.rfChanged
			n := next.N()
			sc := rt.rfScratch[worker]
			if sc == nil {
				sc = newTreeScratch(n)
				rt.rfScratch[worker] = sc
			}
			sc.ensure(n)
			sc.ds.Reset() // repairTree consumes each repair's changes in place
			t := rt.trees[srcs[i]]
			sc.orph = sc.orph[:0]
			for _, e := range rem {
				if t.parent[e.U] == e.V {
					sc.orph = append(sc.orph, e.U)
				} else if t.parent[e.V] == e.U {
					sc.orph = append(sc.orph, e.V)
				}
			}
			for _, v := range sc.orph {
				if p, _ := selectParent(next, arcEdge, t.dist, int(v)); p < 0 {
					// An orphan lost its last shortest-path predecessor: its
					// subtree's distances can grow, which the shrink-only
					// repair cannot express.
					buildTreeInto(t, next, arcEdge, srcs[i], sc.ds.BFS())
					changed[i] = true
					return
				}
			}
			changed[i] = repairTree(next, arcEdge, t, srcs[i], ins, rt.rfOldToNew,
				rt.rfOldN, sc, rt.rfBudget) || len(sc.orph) > 0
		}
	}
	par.ForEach(len(srcs), w, rt.rfBody)

	rt.s = next
	rt.arcEdge = arcEdge
	rt.max = RoutingTreeBudget(n)

	// Memo policy: an entry survives exactly when its origin's tree is
	// cached and unchanged on pre-existing nodes — then the memoized
	// path (all of whose nodes predate the refresh) re-reads identically
	// from the repaired tree, modulo the edge-id renumbering applied
	// here. Entries of changed or evicted trees are dropped; a cold
	// rebuild would re-resolve them anyway.
	if len(rt.changedStamp) < n {
		rt.changedStamp = append(rt.changedStamp, make([]int32, n-len(rt.changedStamp))...)
	}
	rt.changedRound++
	for i, src := range srcs {
		if changed[i] {
			rt.changedStamp[src] = rt.changedRound
		}
	}
	for key, p := range rt.paths {
		src := int(key >> 32)
		if _, ok := rt.trees[src]; !ok || rt.changedStamp[src] == rt.changedRound {
			delete(rt.paths, key)
			continue
		}
		drop := false
		for i, e := range p {
			ne := oldToNew[e]
			if ne < 0 {
				// Cannot happen for an unchanged tree — memoized path arcs
				// are tree arcs, and trees with a dead arc were flagged
				// changed above — but a dangling id must never survive
				// the remap.
				drop = true
				break
			}
			p[i] = ne
		}
		if drop {
			delete(rt.paths, key)
		}
	}
}

// repairTree advances one cached tree to next under the delta's
// insertions: remap its edge ids, grow its arrays, repair its distances
// with the shared relaxation kernel, and re-select canonical parents on
// the frontier where parent candidacy can have moved — nodes whose
// distance changed, their next-level neighbors (candidates may have
// entered), the deeper endpoints of inserted arcs (the new arc
// itself is a candidate), and the orphans of removed tree arcs
// collected in sc.orph. Everywhere else the candidate set is
// untouched: a candidate can only leave by shrinking, which would have
// shrunk — and flagged — the child too. When the relaxation exceeds its
// budget the tree is rebuilt cold instead. Returns whether any
// pre-existing node's entry changed (the memo invalidation signal);
// the repaired tree always equals buildTree(next, arcEdge, src).
func repairTree(next *graph.Snapshot, arcEdge []int32, t *rtree, src int, ins []graph.DeltaEdge, oldToNew []int32, oldN int, sc *treeScratch, budget int) (changed bool) {
	n := next.N()
	for v := range t.edge {
		if t.edge[v] >= 0 {
			t.edge[v] = oldToNew[t.edge[v]]
		}
	}
	for len(t.dist) < n {
		t.dist = append(t.dist, -1)
	}
	for len(t.parent) < n {
		t.parent = append(t.parent, -1)
	}
	for len(t.edge) < n {
		t.edge = append(t.edge, -1)
	}
	changes, ok := metrics.RelaxInserted(next, ins, t.dist, sc.ds, budget)
	if !ok {
		buildTreeInto(t, next, arcEdge, src, sc.ds.BFS())
		return true
	}
	sc.round++
	sc.resel = sc.resel[:0]
	add := func(v int32) {
		if sc.stamp[v] != sc.round {
			sc.stamp[v] = sc.round
			sc.resel = append(sc.resel, v)
		}
	}
	for _, c := range changes {
		if int(c.Node) < oldN {
			changed = true // distances only shrink, so every touch is a real change
		}
		add(c.Node)
		dv := t.dist[c.Node]
		for _, w := range next.Neighbors(int(c.Node)) {
			if t.dist[w] == dv+1 {
				add(w)
			}
		}
	}
	for _, e := range ins {
		if du := t.dist[e.U]; du >= 0 && du+1 == t.dist[e.V] {
			add(e.V)
		}
		if dv := t.dist[e.V]; dv >= 0 && dv+1 == t.dist[e.U] {
			add(e.U)
		}
	}
	// Orphans of removed tree arcs (support-checked by the caller):
	// their distances are intact but their parent arc is gone, so they
	// must re-select even when no distance moved near them.
	for _, v := range sc.orph {
		add(v)
	}
	for _, v := range sc.resel {
		parent, edge := selectParent(next, arcEdge, t.dist, int(v))
		if t.parent[v] != parent || t.edge[v] != edge {
			if int(v) < oldN {
				changed = true
			}
			t.parent[v] = parent
			t.edge[v] = edge
		}
	}
	return changed
}
