package traffic

import (
	"errors"
	"fmt"
	"math"

	"netmodel/internal/rng"
)

// This file is the workload layer of the traffic package: instead of a
// single-shot matrix routed once, demand is a population of flows that
// arrive over time on gravity-weighted origin-destination pairs, carry
// heavy-tailed sizes, and share link bandwidth while they live — the
// flow-level abstraction of the congestion-control and flow-level
// stability literature (Garg-Young, Feuillet). Arrival processes and
// size distributions are pluggable; every random draw comes from a
// stream split off the workload seed per source node, so a simulation
// is a pure function of (snapshot, masses, spec, seed) — bit-identical
// at every worker count.

// SizeDist draws flow sizes (in capacity·time units: a size-1 flow
// saturates a unit-capacity link for one time unit).
type SizeDist interface {
	// Name identifies the distribution family ("pareto", ...).
	Name() string
	// Sample draws one flow size > 0 from the given stream.
	Sample(r *rng.Rand) float64
}

// ParetoSizes is the canonical heavy-tailed flow-size law: Pareto with
// the given mean and tail index Alpha > 1 (the minimum size is derived
// as Mean·(Alpha-1)/Alpha). Smaller Alpha means heavier tails: the
// mice-and-elephants mix sharpens as Alpha drops toward 1.
type ParetoSizes struct {
	Mean, Alpha float64
}

// Name implements SizeDist.
func (p ParetoSizes) Name() string { return "pareto" }

// Sample implements SizeDist.
func (p ParetoSizes) Sample(r *rng.Rand) float64 {
	xm := p.Mean * (p.Alpha - 1) / p.Alpha
	return r.Pareto(xm, p.Alpha)
}

// LognormalSizes draws lognormal flow sizes with the given mean and
// log-space standard deviation Sigma (the location parameter is derived
// so the arithmetic mean is Mean).
type LognormalSizes struct {
	Mean, Sigma float64
}

// Name implements SizeDist.
func (l LognormalSizes) Name() string { return "lognormal" }

// Sample implements SizeDist.
func (l LognormalSizes) Sample(r *rng.Rand) float64 {
	mu := math.Log(l.Mean) - l.Sigma*l.Sigma/2
	return math.Exp(r.Normal(mu, l.Sigma))
}

// ExpSizes draws exponential flow sizes — the light-tailed reference
// against which the heavy-tailed laws are compared.
type ExpSizes struct {
	Mean float64
}

// Name implements SizeDist.
func (e ExpSizes) Name() string { return "exp" }

// Sample implements SizeDist.
func (e ExpSizes) Sample(r *rng.Rand) float64 { return r.Exp(1 / e.Mean) }

// ArrivalProcess mints per-source arrival sources. Each source owns its
// own split random stream, which keeps the arrival sample paths of
// distinct nodes independent and the whole workload deterministic.
type ArrivalProcess interface {
	// Name identifies the process family ("poisson", "onoff").
	Name() string
	// NewSource returns the arrival state of one origin node with the
	// given long-run mean arrival rate (flows per unit time), drawing
	// only from r (which the source retains).
	NewSource(r *rng.Rand, rate float64) ArrivalSource
}

// ArrivalSource is the evolving arrival state of one origin node.
type ArrivalSource interface {
	// Arrivals advances the source by dt time units and returns how many
	// flows arrived in that window.
	Arrivals(dt float64) int
}

// PoissonArrivals is the memoryless session-arrival process: counts per
// window are Poisson with mean rate·dt.
type PoissonArrivals struct{}

// Name implements ArrivalProcess.
func (PoissonArrivals) Name() string { return "poisson" }

type poissonSource struct {
	r    *rng.Rand
	rate float64
}

// NewSource implements ArrivalProcess.
func (PoissonArrivals) NewSource(r *rng.Rand, rate float64) ArrivalSource {
	return &poissonSource{r: r, rate: rate}
}

func (s *poissonSource) Arrivals(dt float64) int {
	return s.r.Poisson(s.rate * dt)
}

// OnOffArrivals is the Markov-modulated burst process: a source
// alternates between exponential on-periods (mean MeanOn) and
// off-periods (mean MeanOff), emitting Poisson arrivals only while on,
// at an intensity scaled by (MeanOn+MeanOff)/MeanOn so the long-run
// mean rate matches the requested one. The initial state is drawn from
// the stationary distribution.
type OnOffArrivals struct {
	MeanOn, MeanOff float64
}

// Name implements ArrivalProcess.
func (OnOffArrivals) Name() string { return "onoff" }

type onOffSource struct {
	r               *rng.Rand
	on              bool
	left            float64 // time left in the current state
	lambdaOn        float64 // arrival intensity while on
	meanOn, meanOff float64
}

// NewSource implements ArrivalProcess.
func (p OnOffArrivals) NewSource(r *rng.Rand, rate float64) ArrivalSource {
	s := &onOffSource{
		r:        r,
		lambdaOn: rate * (p.MeanOn + p.MeanOff) / p.MeanOn,
		meanOn:   p.MeanOn,
		meanOff:  p.MeanOff,
	}
	s.on = r.Float64() < p.MeanOn/(p.MeanOn+p.MeanOff)
	if s.on {
		s.left = r.Exp(1 / s.meanOn)
	} else {
		s.left = r.Exp(1 / s.meanOff)
	}
	return s
}

func (s *onOffSource) Arrivals(dt float64) int {
	var onTime float64
	for dt > 0 {
		step := dt
		if s.left < step {
			step = s.left
		}
		if s.on {
			onTime += step
		}
		dt -= step
		s.left -= step
		if s.left <= 0 {
			s.on = !s.on
			if s.on {
				s.left = s.r.Exp(1 / s.meanOn)
			} else {
				s.left = s.r.Exp(1 / s.meanOff)
			}
		}
	}
	if onTime == 0 {
		return 0
	}
	return s.r.Poisson(s.lambdaOn * onTime)
}

// WorkloadSpec is the flag- and JSON-friendly description of a flow
// workload: plain numbers and names, so sweep grids can serialize it
// and vary LoadFactor and TailIndex as sweep axes. The zero value of
// every optional field means its documented default.
type WorkloadSpec struct {
	// Engine selects the simulation engine: "epoch" (default) re-solves
	// the max-min allocation from scratch every epoch — the pinned
	// reference implementation — while "event" runs the event-calendar
	// engine, which pre-draws arrivals, predicts departures on a heap
	// and re-solves only the bottleneck components whose flow membership
	// changed, solving independent components in parallel. Both engines
	// simulate the same epoch-quantized dynamics from the same random
	// streams; "event" reaches the same completion times up to
	// floating-point association order and is the one that scales.
	Engine string `json:"engine,omitempty"`
	// Arrivals names the arrival process: "poisson" (default) or
	// "onoff".
	Arrivals string `json:"arrivals,omitempty"`
	// Sizes names the flow-size law: "pareto" (default), "lognormal" or
	// "exp".
	Sizes string `json:"sizes,omitempty"`
	// LoadFactor scales the aggregate offered bit-rate to LoadFactor ×
	// total link capacity. Since each flow consumes capacity on every
	// hop of its path, links begin to saturate near 1/(mean hops); the
	// overload metrics report where that transition lands. Required.
	LoadFactor float64 `json:"load_factor"`
	// TailIndex shapes the size tail: the Pareto tail exponent alpha
	// (> 1; default 1.5) or the lognormal sigma (default 1). Ignored by
	// "exp".
	TailIndex float64 `json:"tail_index,omitempty"`
	// MeanSize is the mean flow size in capacity·time units (default 1).
	MeanSize float64 `json:"mean_size,omitempty"`
	// MeanOn and MeanOff are the on-off state durations (defaults 1 and
	// 4). Ignored by "poisson".
	MeanOn  float64 `json:"mean_on,omitempty"`
	MeanOff float64 `json:"mean_off,omitempty"`
	// Epochs is the simulated horizon in epochs (default 20).
	Epochs int `json:"epochs,omitempty"`
	// EpochLen is the epoch duration dt (default 1): arrivals batch at
	// epoch starts and max-min rates hold within an epoch.
	EpochLen float64 `json:"epoch_len,omitempty"`
	// CapacityUnit is the capacity of a multiplicity-1 link (default 1);
	// a link's capacity is its edge multiplicity times this.
	CapacityUnit float64 `json:"capacity_unit,omitempty"`
	// OverloadAt is the utilization at or above which a link-epoch
	// counts as overloaded (default 0.999 — saturated under max-min
	// sharing).
	OverloadAt float64 `json:"overload_at,omitempty"`
	// Failures optionally injects link/node outages into the horizon
	// (see FailureSpec). nil — or mode "none" — is the pinned no-failure
	// path: the simulation is bit-identical to one without the field.
	Failures *FailureSpec `json:"failures,omitempty"`
}

// The simulation engines selectable through WorkloadSpec.Engine.
const (
	// EngineEpoch is the discrete-epoch reference: a full max-min
	// water-filling pass over every active flow, every epoch.
	EngineEpoch = "epoch"
	// EngineEvent is the event-calendar engine: pre-drawn arrivals, a
	// predicted-departure heap, and incremental per-component rate
	// recomputation parallelized across independent bottleneck groups.
	EngineEvent = "event"
)

// workloadDefaults are the resolved fallbacks of WorkloadSpec.
const (
	defaultTailAlpha = 1.5
	defaultTailSigma = 1.0
	defaultMeanSize  = 1.0
	defaultMeanOn    = 1.0
	defaultMeanOff   = 4.0
	defaultEpochs    = 20
	defaultEpochLen  = 1.0
	defaultCapUnit   = 1.0
	defaultOverload  = 0.999
)

// withDefaults resolves every zero-valued optional field to its
// documented default, so the spec echoed in reports is fully explicit.
func (sp WorkloadSpec) withDefaults() WorkloadSpec {
	if sp.Engine == "" {
		sp.Engine = EngineEpoch
	}
	if sp.Arrivals == "" {
		sp.Arrivals = "poisson"
	}
	if sp.Sizes == "" {
		sp.Sizes = "pareto"
	}
	if sp.TailIndex == 0 {
		if sp.Sizes == "lognormal" {
			sp.TailIndex = defaultTailSigma
		} else {
			sp.TailIndex = defaultTailAlpha
		}
	}
	if sp.MeanSize == 0 {
		sp.MeanSize = defaultMeanSize
	}
	if sp.MeanOn == 0 {
		sp.MeanOn = defaultMeanOn
	}
	if sp.MeanOff == 0 {
		sp.MeanOff = defaultMeanOff
	}
	if sp.Epochs == 0 {
		sp.Epochs = defaultEpochs
	}
	if sp.EpochLen == 0 {
		sp.EpochLen = defaultEpochLen
	}
	if sp.CapacityUnit == 0 {
		sp.CapacityUnit = defaultCapUnit
	}
	if sp.OverloadAt == 0 {
		sp.OverloadAt = defaultOverload
	}
	if sp.Failures != nil {
		f := sp.Failures.withDefaults()
		sp.Failures = &f
	}
	return sp
}

// Validate checks a spec after default resolution and reports the first
// violation.
func (sp WorkloadSpec) Validate() error {
	sp = sp.withDefaults()
	for _, v := range []float64{sp.LoadFactor, sp.TailIndex, sp.MeanSize,
		sp.MeanOn, sp.MeanOff, sp.EpochLen, sp.CapacityUnit, sp.OverloadAt} {
		// Comparisons below are false for NaN, so reject non-finite
		// knobs explicitly — "-load nan" must fail here, not simulate.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return errors.New("traffic: workload spec values must be finite")
		}
	}
	switch sp.Engine {
	case EngineEpoch, EngineEvent:
	default:
		return fmt.Errorf("traffic: unknown engine %q (have %s, %s)", sp.Engine, EngineEpoch, EngineEvent)
	}
	switch sp.Arrivals {
	case "poisson", "onoff":
	default:
		return fmt.Errorf("traffic: unknown arrival process %q (have poisson, onoff)", sp.Arrivals)
	}
	switch sp.Sizes {
	case "pareto", "lognormal", "exp":
	default:
		return fmt.Errorf("traffic: unknown size distribution %q (have pareto, lognormal, exp)", sp.Sizes)
	}
	if sp.LoadFactor <= 0 {
		return errors.New("traffic: workload load factor must be positive")
	}
	if sp.Sizes == "pareto" && sp.TailIndex <= 1 {
		return errors.New("traffic: pareto tail index must exceed 1 for a finite mean size")
	}
	if sp.TailIndex < 0 {
		return errors.New("traffic: tail index must not be negative")
	}
	if sp.MeanSize <= 0 || sp.MeanOn <= 0 || sp.MeanOff <= 0 ||
		sp.EpochLen <= 0 || sp.CapacityUnit <= 0 {
		return errors.New("traffic: workload sizes, durations, epoch length and capacity unit must be positive")
	}
	if sp.Epochs < 0 {
		return errors.New("traffic: workload epochs must not be negative")
	}
	if sp.Failures != nil {
		if err := sp.Failures.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// arrivalProcess resolves the named process.
func (sp WorkloadSpec) arrivalProcess() ArrivalProcess {
	if sp.Arrivals == "onoff" {
		return OnOffArrivals{MeanOn: sp.MeanOn, MeanOff: sp.MeanOff}
	}
	return PoissonArrivals{}
}

// sizeDist resolves the named size law.
func (sp WorkloadSpec) sizeDist() SizeDist {
	switch sp.Sizes {
	case "lognormal":
		return LognormalSizes{Mean: sp.MeanSize, Sigma: sp.TailIndex}
	case "exp":
		return ExpSizes{Mean: sp.MeanSize}
	default:
		return ParetoSizes{Mean: sp.MeanSize, Alpha: sp.TailIndex}
	}
}
