package traffic

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// replayGrowth replays a generated topology's edge list into a growing
// graph, calling check at every delta-refreshed epoch — the traffic
// mirror of the metrics package's trajectory harness.
func replayGrowth(t *testing.T, top *gen.Topology, every int,
	check func(prev, next *graph.Snapshot, d *graph.Delta)) {
	t.Helper()
	g := graph.New(0)
	prev, err := g.FreezeChecked()
	if err != nil {
		t.Fatal(err)
	}
	edges := top.G.EdgeList()
	for i, e := range edges {
		for g.N() <= e.V || g.N() <= e.U {
			g.AddNode()
		}
		for w := 0; w < e.W; w++ {
			g.MustAddEdge(e.U, e.V)
		}
		if (i+1)%every == 0 || i == len(edges)-1 {
			next, d, err := g.Refreeze(prev)
			if err != nil {
				t.Fatal(err)
			}
			if d == nil {
				t.Fatal("replay expected a delta refresh")
			}
			check(prev, next, d)
			prev = next
		}
	}
}

// cloneRouting deep-copies a routing state so two copies can refresh at
// different worker counts and be compared field by field.
func cloneRouting(rt *Routing) *Routing {
	cp := &Routing{s: rt.s, arcEdge: rt.arcEdge, max: rt.max,
		trees: make(map[int]*rtree, len(rt.trees)),
		fifo:  append([]int(nil), rt.fifo...),
		paths: make(map[int64][]int32, len(rt.paths))}
	for src, t := range rt.trees {
		cp.trees[src] = &rtree{
			dist:   append([]int32(nil), t.dist...),
			parent: append([]int32(nil), t.parent...),
			edge:   append([]int32(nil), t.edge...),
		}
	}
	for k, p := range rt.paths {
		if p == nil {
			cp.paths[k] = nil
		} else {
			cp.paths[k] = append([]int32(nil), p...)
		}
	}
	return cp
}

// requireRoutingEqual compares two routing states entry by entry.
func requireRoutingEqual(t *testing.T, label string, got, want *Routing) {
	t.Helper()
	if got.s.Version() != want.s.Version() || got.max != want.max {
		t.Fatalf("%s: snapshot/budget diverged", label)
	}
	if !reflect.DeepEqual(got.fifo, want.fifo) {
		t.Fatalf("%s: fifo diverged: %v vs %v", label, got.fifo, want.fifo)
	}
	if len(got.trees) != len(want.trees) {
		t.Fatalf("%s: tree cache sizes %d vs %d", label, len(got.trees), len(want.trees))
	}
	for src, gt := range got.trees {
		wt, ok := want.trees[src]
		if !ok || !reflect.DeepEqual(gt, wt) {
			t.Fatalf("%s: tree %d diverged", label, src)
		}
	}
	if !reflect.DeepEqual(got.paths, want.paths) {
		t.Fatalf("%s: memoized paths diverged", label)
	}
}

// requireSameFlows asserts two traced simulations drew and finished the
// same flow population: identity exactly, completion to 1e-9 relative.
func requireSameFlows(t *testing.T, label string, a, b *SimReport) {
	t.Helper()
	if len(a.Flows) != len(b.Flows) {
		t.Fatalf("%s: flow populations %d vs %d", label, len(a.Flows), len(b.Flows))
	}
	for i := range a.Flows {
		fa, fb := a.Flows[i], b.Flows[i]
		if fa.Src != fb.Src || fa.Dst != fb.Dst || fa.Size != fb.Size || fa.Arrived != fb.Arrived {
			t.Fatalf("%s: flow %d identity diverged: %+v vs %+v", label, i, fa, fb)
		}
		if fa.Done != fb.Done {
			t.Fatalf("%s: flow %d fate diverged: %+v vs %+v", label, i, fa, fb)
		}
		scale := math.Max(1, math.Abs(fa.Finished))
		if fa.Done && math.Abs(fa.Finished-fb.Finished) > 1e-9*scale {
			t.Fatalf("%s: flow %d completion %v vs %v", label, i, fa.Finished, fb.Finished)
		}
	}
}

// TestRoutingRefreshEquivalence drives a shared routing state along a
// growth trajectory with Refresh and pins it against cold rebuilds at
// every epoch: repaired trees are entry-identical to cold builds,
// surviving memo entries re-read identically from their trees, refresh
// is worker-count invariant, and simulations over the refreshed state —
// both engines — reproduce the cold-rebuild flows.
func TestRoutingRefreshEquivalence(t *testing.T) {
	top, err := gen.BA{N: 600, M: 2}.Generate(rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	g0 := graph.New(0)
	seed, err := g0.FreezeChecked()
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRouting(seed)
	epoch := 0
	replayGrowth(t, top, 100, func(prev, next *graph.Snapshot, d *graph.Delta) {
		epoch++
		// Worker invariance: the same state repaired at widths 1 and 4.
		alt := cloneRouting(rt)
		rt.Refresh(next, d, 4)
		alt.Refresh(next, d, 1)
		requireRoutingEqual(t, "worker-invariance", rt, alt)

		n := next.N()
		if rt.s != next || rt.Snapshot() != next {
			t.Fatal("refresh did not rebase the snapshot")
		}
		// Every cached tree must equal a cold canonical build.
		arcEdge := next.ArcEdgeIDs()
		for _, src := range rt.fifo {
			if !reflect.DeepEqual(rt.trees[src], buildTree(next, arcEdge, src)) {
				t.Fatalf("epoch %d: repaired tree %d diverged from cold build", epoch, src)
			}
		}
		// Every surviving memo entry must re-read identically from its
		// origin's repaired tree.
		for key, p := range rt.paths {
			src, dst := int(key>>32), int(int32(key))
			tree, ok := rt.trees[src]
			if !ok {
				t.Fatalf("epoch %d: memo entry kept for evicted tree %d", epoch, src)
			}
			fresh, reachable := tree.appendPath(nil, dst)
			if p == nil {
				if reachable {
					t.Fatalf("epoch %d: stale unreachable memo %d→%d", epoch, src, dst)
				}
			} else if !reflect.DeepEqual(p, fresh) {
				t.Fatalf("epoch %d: memo path %d→%d diverged", epoch, src, dst)
			}
		}

		if n < 40 {
			return
		}
		masses := make([]float64, n)
		for u := range masses {
			masses[u] = float64(next.Degree(u))
		}
		for _, engName := range []string{EngineEpoch, EngineEvent} {
			spec := WorkloadSpec{Engine: engName, LoadFactor: 0.6, Epochs: 6}
			warm, err := Simulate(next, masses, spec, rng.New(42), 2,
				WithFlowTrace(), WithRouting(rt))
			if err != nil {
				t.Fatalf("epoch %d %s warm: %v", epoch, engName, err)
			}
			cold, err := Simulate(next, masses, spec, rng.New(42), 2, WithFlowTrace())
			if err != nil {
				t.Fatalf("epoch %d %s cold: %v", epoch, engName, err)
			}
			requireSameFlows(t, engName, warm, cold)
		}
	})
	if epoch < 5 {
		t.Fatalf("trajectory too short: %d epochs", epoch)
	}
}

// TestRoutingRefreshUnderChurn drives the scoped removal repair: mixed
// insert+remove epochs where only trees traversing a dead arc may cold
// rebuild. Every cached tree, memo entry, and the simulations on top
// must match cold rebuilds, at every worker count.
func TestRoutingRefreshUnderChurn(t *testing.T) {
	top, err := gen.BA{N: 250, M: 2}.Generate(rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	g := top.G.Copy()
	prev, err := g.FreezeChecked()
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRouting(prev)
	r := rng.New(99)
	warm := func(s *graph.Snapshot) {
		// Ensure requires ascending, duplicate-free sources.
		pick := make(map[int]bool, 12)
		for i := 0; i < 12; i++ {
			pick[r.Intn(s.N())] = true
		}
		srcs := make([]int, 0, len(pick))
		for src := range pick {
			srcs = append(srcs, src)
		}
		sort.Ints(srcs)
		rt.Ensure(srcs, 2)
		for _, src := range srcs {
			dst := r.Intn(s.N())
			if _, ok, _ := rt.cachedPath(src, dst); !ok {
				p, reachable := rt.Tree(src).appendPath(nil, dst)
				rt.storePath(src, dst, p, reachable)
			}
		}
	}
	warm(prev)
	for epoch := 0; epoch < 15; epoch++ {
		edges := prev.EdgeList()
		removed := 0
		for i := 0; i < 6 && len(edges) > 0; i++ {
			e := edges[r.Intn(len(edges))]
			if g.HasEdge(e.U, e.V) {
				if err := g.RemoveEdge(e.U, e.V); err != nil {
					t.Fatal(err)
				}
				removed++
			}
		}
		for i := 0; i < 5; i++ {
			u, v := r.Intn(g.N()), r.Intn(g.N())
			if u != v {
				g.MustAddEdge(u, v)
			}
		}
		next, d, err := g.Refreeze(prev)
		if err != nil {
			t.Fatal(err)
		}
		if d == nil || removed == 0 {
			t.Fatalf("epoch %d: churn epoch carries no removal delta", epoch)
		}
		alt := cloneRouting(rt)
		rt.Refresh(next, d, 4)
		alt.Refresh(next, d, 1)
		requireRoutingEqual(t, "churn-worker-invariance", rt, alt)
		arcEdge := next.ArcEdgeIDs()
		for _, src := range rt.fifo {
			if !reflect.DeepEqual(rt.trees[src], buildTree(next, arcEdge, src)) {
				t.Fatalf("epoch %d: churned tree %d diverged from cold build", epoch, src)
			}
		}
		for key, p := range rt.paths {
			src, dst := int(key>>32), int(int32(key))
			tree, ok := rt.trees[src]
			if !ok {
				t.Fatalf("epoch %d: memo entry kept for evicted tree %d", epoch, src)
			}
			fresh, reachable := tree.appendPath(nil, dst)
			if p == nil {
				if reachable {
					t.Fatalf("epoch %d: stale unreachable memo %d→%d", epoch, src, dst)
				}
			} else if !reflect.DeepEqual(p, fresh) {
				t.Fatalf("epoch %d: churned memo path %d→%d diverged", epoch, src, dst)
			}
		}
		masses := make([]float64, next.N())
		for u := range masses {
			masses[u] = float64(next.Degree(u) + 1)
		}
		spec := WorkloadSpec{LoadFactor: 0.5, Epochs: 4}
		warmRep, err := Simulate(next, masses, spec, rng.New(7), 2, WithFlowTrace(), WithRouting(rt))
		if err != nil {
			t.Fatalf("epoch %d warm: %v", epoch, err)
		}
		coldRep, err := Simulate(next, masses, spec, rng.New(7), 2, WithFlowTrace())
		if err != nil {
			t.Fatalf("epoch %d cold: %v", epoch, err)
		}
		requireSameFlows(t, "churn", warmRep, coldRep)
		warm(next)
		prev = next
	}
}

// TestRepairTreeBudgetFallback forces the relaxation over budget so the
// repair takes the cold-rebuild path, which must still land exactly on
// the canonical tree and report the change.
func TestRepairTreeBudgetFallback(t *testing.T) {
	top, err := gen.BA{N: 200, M: 2}.Generate(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var tree *rtree
	replayGrowth(t, top, 60, func(base, next *graph.Snapshot, d *graph.Delta) {
		arcEdge := next.ArcEdgeIDs()
		if tree == nil {
			tree = buildTree(next, arcEdge, 0)
			return
		}
		var ins []graph.DeltaEdge
		for _, e := range d.Edges() {
			if e.OldW == 0 && e.NewW != 0 {
				ins = append(ins, e)
			}
		}
		prevEdges := base.EdgeList()
		oldToNew := make([]int32, len(prevEdges))
		shift := 0
		for i, e := range prevEdges {
			for shift < len(ins) && (int(ins[shift].U) < e.U ||
				(int(ins[shift].U) == e.U && int(ins[shift].V) < e.V)) {
				shift++
			}
			oldToNew[i] = int32(i + shift)
		}
		sc := newTreeScratch(next.N())
		changed := repairTree(next, arcEdge, tree, 0, ins, oldToNew, base.N(), sc, 1)
		if !changed {
			t.Fatal("budget fallback must report the tree as changed")
		}
		if want := buildTree(next, arcEdge, 0); !reflect.DeepEqual(tree, want) {
			t.Fatal("budget-fallback tree diverged from cold build")
		}
	})
}

// TestSimulateRejectsStaleRouting pins the guard: a shared routing
// state describing an older snapshot is an error, not silent staleness.
func TestSimulateRejectsStaleRouting(t *testing.T) {
	g := meshGraph(30)
	prev := g.Freeze()
	rt := NewRouting(prev)
	g.MustAddEdge(0, 15)
	next, _, err := g.Refreeze(prev)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Simulate(next, UniformMasses(30), WorkloadSpec{LoadFactor: 0.1, Epochs: 2},
		rng.New(1), 1, WithRouting(rt)); err == nil {
		t.Fatal("expected the stale-routing guard to fire")
	}
}
