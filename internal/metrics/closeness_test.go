package metrics

import (
	"math"
	"testing"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

func TestClosenessStar(t *testing.T) {
	g := star(5) // hub 0, leaves at distance 1 from hub, 2 from each other
	c := Closeness(g)
	if math.Abs(c[0]-1) > 1e-12 {
		t.Fatalf("hub closeness = %v, want 1", c[0])
	}
	// leaf: distances 1 + 2*3 = 7, reach 4: c = 4/7 * 4/4
	want := 4.0 / 7
	for u := 1; u < 5; u++ {
		if math.Abs(c[u]-want) > 1e-12 {
			t.Fatalf("leaf closeness = %v, want %v", c[u], want)
		}
	}
}

func TestClosenessDisconnectedPenalized(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(2, 3)
	c := Closeness(g)
	// pair node: reach 1, sum 1 -> 1 * 1/3
	want := 1.0 / 3
	for u := range c {
		if math.Abs(c[u]-want) > 1e-12 {
			t.Fatalf("closeness[%d] = %v, want %v", u, c[u], want)
		}
	}
}

func TestHarmonicCloseness(t *testing.T) {
	g := path(3)
	h := HarmonicCloseness(g)
	// middle: (1 + 1)/2 = 1; ends: (1 + 1/2)/2 = 0.75
	if math.Abs(h[1]-1) > 1e-12 || math.Abs(h[0]-0.75) > 1e-12 {
		t.Fatalf("harmonic = %v", h)
	}
	// isolated node contributes zero without dividing by zero
	if out := HarmonicCloseness(graph.New(1)); out[0] != 0 {
		t.Fatal("single node should score 0")
	}
}

func TestClosenessOrderingMatchesCentrality(t *testing.T) {
	g := path(7)
	c := Closeness(g)
	if !(c[3] > c[1] && c[1] > c[0]) {
		t.Fatalf("path closeness ordering broken: %v", c)
	}
}

func TestRichClubNormalizedERIsFlat(t *testing.T) {
	// An ER graph has no rich-club phenomenon: normalized φ ≈ 1.
	g := randomGraph(rng.New(51), 800, 0.01)
	pts, err := RichClubNormalized(g, rng.New(52))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.N >= 50 && (p.Phi < 0.5 || p.Phi > 2.0) {
			t.Fatalf("ER normalized φ(k=%d, club=%d) = %v, want ~1", p.K, p.N, p.Phi)
		}
	}
}

func TestRichClubNormalizedDetectsPlantedClub(t *testing.T) {
	// Plant a clique among high-degree nodes on top of a sparse random
	// graph: the normalized coefficient at the top must exceed 1.
	r := rng.New(53)
	g := randomGraph(r, 400, 0.01)
	// boost 8 nodes and interconnect them
	hubs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for _, h := range hubs {
		for k := 0; k < 20; k++ {
			v := 8 + r.Intn(392)
			if !g.HasEdge(h, v) {
				g.MustAddEdge(h, v)
			}
		}
	}
	for i, a := range hubs {
		for _, b := range hubs[i+1:] {
			if !g.HasEdge(a, b) {
				g.MustAddEdge(a, b)
			}
		}
	}
	pts, err := RichClubNormalized(g, rng.New(54))
	if err != nil {
		t.Fatal(err)
	}
	// smallest club that still contains >= 8 nodes
	var top *RichClubPoint
	for i := len(pts) - 1; i >= 0; i-- {
		if pts[i].N >= 8 {
			top = &pts[i]
			break
		}
	}
	if top == nil {
		t.Fatal("no club of size >= 8")
	}
	if top.Phi <= 1.1 {
		t.Fatalf("planted club normalized φ = %v, want > 1.1", top.Phi)
	}
}

func TestRichClubNormalizedTooFewEdges(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1)
	if _, err := RichClubNormalized(g, rng.New(1)); err == nil {
		t.Fatal("single-edge graph should fail (cannot rewire)")
	}
}
