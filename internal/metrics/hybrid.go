package metrics

import (
	"math"
	"math/bits"

	"netmodel/internal/graph"
)

// This file is the direction-optimizing BFS kernel shared by every
// dist-only traversal consumer: the frozen path-metric kernels, the
// DistMap cold rebuilds and budget fallbacks, the routing-tree builds
// of the traffic package, and the component scans of the failure
// layer. The kernel switches between the classic top-down frontier
// expansion and a bottom-up sweep (Beamer's hybrid): when the frontier
// carries a large share of the unexplored arcs, scanning the unvisited
// nodes for any parent in the frontier touches far fewer arcs than
// expanding every frontier edge — on the scale-free topologies this
// repo generates, the two or three middle BFS levels hold almost the
// whole graph, and the bottom-up sweep early-exits at the first parent
// found. BFS levels are direction-independent, so the distance vector
// is bit-identical to BFSFrozen's whatever the per-level direction
// choices; only the within-level discovery order differs, which is why
// order-consuming kernels (BrandesFrozen, the ECMP demand router) stay
// on the classic kernel and pin it as the equivalence baseline.
//
// Visited state is split: a bitset carries the hot per-arc membership
// test (n/8 bytes stays L1/L2-resident where the distance row's random
// reads miss — the difference between the hybrid winning and losing on
// sparse maps), while an epoch-stamped int32 array carries the
// component labels of multi-source scans without per-call clears. The
// bitset is cleared once per visited epoch (n/64 words, trivial), the
// stamps only on int32 rollover, and frontier membership for the
// bottom-up parent test is a second bitset — so steady-state calls
// through a reused BFSScratch allocate nothing.

// bfsAlpha and bfsBeta are the direction-switching thresholds: go
// bottom-up when the frontier's arc count exceeds 1/bfsAlpha of the
// arcs out of unvisited nodes, return top-down when the frontier
// shrinks below n/bfsBeta nodes. Beamer's canonical alpha of 14 is
// tuned for social networks with average degree in the tens; on the
// degree-4 topologies this repo generates it flips one level early,
// paying a full sweep of far-node arcs that top-down would skip — the
// measured crossover on BA/ER/GLP/PFP maps sits between 2 and 9, so
// split the difference.
const (
	bfsAlpha = 6
	bfsBeta  = 24
)

// BFSScratch is the reusable state of the hybrid BFS: epoch-stamped
// visited marks, the two frontier queues, the frontier bitsets of the
// bottom-up sweep, and a spare distance row for callers that only need
// reachability (component scans). A scratch may be reused across
// snapshots and sources of any size; it grows monotonically and is not
// safe for concurrent use.
type BFSScratch struct {
	stamp []int32
	round int32
	cur   []int32
	next  []int32
	vis   []uint64 // visited-this-epoch bitset (the hot membership test)
	front []uint64 // current-level frontier bitset (bottom-up mode)
	nfr   []uint64 // next-level frontier bitset (bottom-up mode)
	dist  []int32  // spare row for distance-free scans
}

// NewBFSScratch allocates scratch for an n-node snapshot; the scratch
// grows on demand when later used on larger graphs.
func NewBFSScratch(n int) *BFSScratch {
	sc := &BFSScratch{}
	sc.ensure(n)
	return sc
}

func (sc *BFSScratch) ensure(n int) {
	if len(sc.stamp) < n {
		sc.stamp = append(sc.stamp, make([]int32, n-len(sc.stamp))...)
		sc.cur = append(sc.cur, make([]int32, n-len(sc.cur))...)
		sc.next = append(sc.next, make([]int32, n-len(sc.next))...)
	}
	if words := (n + 63) / 64; len(sc.front) < words {
		sc.vis = append(sc.vis, make([]uint64, words-len(sc.vis))...)
		sc.front = append(sc.front, make([]uint64, words-len(sc.front))...)
		sc.nfr = append(sc.nfr, make([]uint64, words-len(sc.nfr))...)
	}
}

// begin opens a visited epoch covering up to rounds marks: the visited
// bitset is cleared (one word per 64 nodes), and the stamp array only
// on the (astronomically rare) int32 rollover so stale stamps can
// never read as a live component label.
func (sc *BFSScratch) begin(n, rounds int) {
	sc.ensure(n)
	for i := range sc.vis[:(n+63)/64] {
		sc.vis[i] = 0
	}
	if sc.round > math.MaxInt32-int32(rounds)-1 {
		for i := range sc.stamp {
			sc.stamp[i] = 0
		}
		sc.round = 0
	}
}

// BFSHybrid fills dist with the hop distance from src to every node
// (-1 for unreachable), bit-identical to BFSFrozen over the same
// snapshot and source, and returns the number of reachable nodes
// (including src). dist must have length s.N(). Unlike BFSFrozen it
// produces no visit order — per level it traverses top-down or
// bottom-up, whichever touches fewer arcs — so order-consuming callers
// keep the classic kernel.
func BFSHybrid(s *graph.Snapshot, src int, dist []int32, sc *BFSScratch) int {
	n := s.N()
	if src < 0 || src >= n {
		for i := range dist {
			dist[i] = -1
		}
		return 0
	}
	sc.begin(n, 1)
	sc.round++
	visited := sc.runFrom(s, src, dist, false)
	if visited < n {
		vis := sc.vis
		for wi := 0; wi < (n+63)/64; wi++ {
			w := vis[wi]
			if w == ^uint64(0) {
				continue
			}
			for rem := ^w; rem != 0; rem &= rem - 1 {
				v := wi<<6 + bits.TrailingZeros64(rem)
				if v >= n {
					break
				}
				dist[v] = -1
			}
		}
	}
	return visited
}

// runFrom runs one direction-optimizing BFS from src, writing exact
// hop distances for every node it reaches and setting its visited bit.
// Nodes whose visited bit is set count as visited — begin clears the
// bitset once per epoch, so earlier components of one scan stay
// visited — and unreached nodes keep their old dist entries (the
// caller fills -1 where it needs them). With label set, every reached
// node is additionally stamped with sc.round — the component label of
// multi-source scans; single-source callers skip the stamp writes and
// their 4·n bytes of store traffic. Returns the number of nodes
// reached.
//
// The frontier lives in whichever representation its producer built:
// top-down levels keep a queue, bottom-up levels keep only the nfr
// bitset and a count (no per-discovery queue append), and each
// direction switch converts lazily — queue→bitset entering bottom-up,
// bitset→queue when the shrunken frontier returns to top-down.
func (sc *BFSScratch) runFrom(s *graph.Snapshot, src int, dist []int32, label bool) int {
	n := s.N()
	offs, ends, nbrs := s.CSR()
	stamp, vis := sc.stamp, sc.vis
	rcur := sc.round
	if label {
		stamp[src] = rcur
	}
	vis[uint32(src)>>6] |= 1 << (uint32(src) & 63)
	dist[src] = 0
	curArr, nextArr := sc.cur, sc.next
	cur := curArr[:1]
	cur[0] = int32(src)
	visited := 1
	// arcsLeft counts arcs out of unvisited nodes; frontArcs counts
	// arcs out of the current frontier — the two sides of the
	// direction-switch heuristic.
	arcsLeft := 2*s.M() - s.Degree(src)
	frontArcs := s.Degree(src)
	frontCount := 1
	words := (n + 63) / 64
	bottomUp := false
	bitsValid := false // sc.front holds the current frontier's bitset
	queueValid := true // cur holds the current frontier's queue
	for d := int32(0); frontCount > 0; d++ {
		if !bottomUp {
			if frontArcs*bfsAlpha > arcsLeft && frontCount > 1 {
				bottomUp = true
			}
		} else if frontCount*bfsBeta < n {
			bottomUp = false
		}
		nextArcs := 0
		nd := d + 1
		if bottomUp {
			front := sc.front[:words]
			if !bitsValid {
				for i := range front {
					front[i] = 0
				}
				for _, u := range cur {
					front[uint32(u)>>6] |= 1 << (uint32(u) & 63)
				}
				bitsValid = true
			}
			nfr := sc.nfr[:words]
			for i := range nfr {
				nfr[i] = 0
			}
			cnt := 0
			// Sweep only the unvisited: whole words of visited nodes
			// skip in one compare, the rest iterate their zero bits.
			for wi := 0; wi < words; wi++ {
				w := vis[wi]
				if w == ^uint64(0) {
					continue
				}
				for rem := ^w; rem != 0; rem &= rem - 1 {
					v := wi<<6 + bits.TrailingZeros64(rem)
					if v >= n {
						break
					}
					for j := offs[v]; j < ends[v]; j++ {
						u := nbrs[j]
						if front[uint32(u)>>6]&(1<<(uint32(u)&63)) != 0 {
							vis[wi] |= 1 << (uint32(v) & 63)
							if label {
								stamp[v] = rcur
							}
							dist[v] = nd
							nfr[uint32(v)>>6] |= 1 << (uint32(v) & 63)
							nextArcs += int(ends[v] - offs[v])
							cnt++
							break
						}
					}
				}
			}
			sc.front, sc.nfr = sc.nfr, sc.front
			frontCount = cnt
			queueValid = false
		} else {
			if !queueValid {
				// Returning from bottom-up: materialize the queue from
				// the frontier bitset (ascending, like a level build).
				cur = curArr[:0]
				for wi, w := range sc.front[:words] {
					for ; w != 0; w &= w - 1 {
						cur = append(cur, int32(wi<<6+bits.TrailingZeros64(w)))
					}
				}
				queueValid = true
			}
			next := nextArr[:0]
			for _, u := range cur {
				for j := offs[u]; j < ends[u]; j++ {
					v := nbrs[j]
					if vis[uint32(v)>>6]&(1<<(uint32(v)&63)) == 0 {
						vis[uint32(v)>>6] |= 1 << (uint32(v) & 63)
						if label {
							stamp[v] = rcur
						}
						dist[v] = nd
						next = append(next, v)
						nextArcs += int(ends[v] - offs[v])
					}
				}
			}
			curArr, nextArr = nextArr, curArr
			cur = next
			frontCount = len(next)
			bitsValid = false
		}
		visited += frontCount
		arcsLeft -= nextArcs
		frontArcs = nextArcs
		if visited == n {
			break // nothing left to discover: skip the last expansion
		}
	}
	sc.cur, sc.next = curArr, nextArr
	return visited
}

// ComponentsHybrid labels every node with its connected-component id
// via the hybrid kernel, writing comp[v] (len s.N()) and appending the
// component sizes onto sizes (pass sizes[:0] of a reused buffer for an
// allocation-free steady state). Ids are assigned in ascending order
// of each component's smallest node, so the id with the maximal size —
// first such id on ties — is exactly the giant component
// Snapshot.Components() ranks first. One visited epoch spans the whole
// scan: the per-component traversals share the scratch's stamp array
// and never re-clear it.
func ComponentsHybrid(s *graph.Snapshot, sc *BFSScratch, comp []int32, sizes []int32) []int32 {
	n := s.N()
	sc.begin(n, n)
	if len(sc.dist) < n {
		sc.dist = append(sc.dist, make([]int32, n-len(sc.dist))...)
	}
	r0 := sc.round + 1
	for v := 0; v < n; v++ {
		if sc.vis[uint32(v)>>6]&(1<<(uint32(v)&63)) == 0 {
			sc.round++
			sc.runFrom(s, v, sc.dist, true)
			sizes = append(sizes, 0)
		}
	}
	for v := 0; v < n; v++ {
		id := sc.stamp[v] - r0
		comp[v] = id
		sizes[id]++
	}
	return sizes
}
