package metrics

import (
	"math"
	"testing"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

func TestBFSPath(t *testing.T) {
	g := path(5)
	d := BFS(g, 0)
	for i := 0; i < 5; i++ {
		if d[i] != i {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], i)
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	d := BFS(g, 0)
	if d[2] != -1 {
		t.Fatalf("unreachable node distance = %d, want -1", d[2])
	}
}

func TestBFSInvalidSource(t *testing.T) {
	g := path(3)
	d := BFS(g, 10)
	for _, v := range d {
		if v != -1 {
			t.Fatal("invalid source should reach nothing")
		}
	}
}

func TestPathLengthsCycle(t *testing.T) {
	g := cycleGraph(6)
	st, err := PathLengths(g, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Diameter != 3 {
		t.Fatalf("C6 diameter = %d, want 3", st.Diameter)
	}
	// C6 distances from any node: 1,1,2,2,3 -> avg = 9/5
	if math.Abs(st.Avg-1.8) > 1e-12 {
		t.Fatalf("C6 avg path = %v, want 1.8", st.Avg)
	}
	sum := 0.0
	for _, p := range st.Distribution {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("distance distribution sums to %v", sum)
	}
	if math.Abs(st.Distribution[1]-0.4) > 1e-12 {
		t.Fatalf("P(d=1) = %v, want 0.4", st.Distribution[1])
	}
}

func TestPathLengthsComplete(t *testing.T) {
	st, err := PathLengths(complete(10), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Avg != 1 || st.Diameter != 1 {
		t.Fatalf("K10 avg=%v diam=%d, want 1,1", st.Avg, st.Diameter)
	}
}

func TestPathLengthsSampledApproximatesExact(t *testing.T) {
	r := rng.New(17)
	g := randomGraph(r, 500, 0.02)
	giant, _ := g.GiantComponent()
	exact, err := PathLengths(giant, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := PathLengths(giant, r, 100)
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Sources != 100 {
		t.Fatalf("sources = %d", sampled.Sources)
	}
	if math.Abs(sampled.Avg-exact.Avg) > 0.1 {
		t.Fatalf("sampled avg %v vs exact %v", sampled.Avg, exact.Avg)
	}
}

func TestPathLengthsSamplingNeedsRand(t *testing.T) {
	g := path(10)
	if _, err := PathLengths(g, nil, 3); err == nil {
		t.Fatal("sampling without generator should fail")
	}
}

func TestPathLengthsEmpty(t *testing.T) {
	if _, err := PathLengths(graph.New(0), nil, 0); err == nil {
		t.Fatal("empty graph should fail")
	}
}

func TestEccentricity(t *testing.T) {
	g := path(5)
	if e := Eccentricity(g, 0); e != 4 {
		t.Fatalf("ecc(end) = %d, want 4", e)
	}
	if e := Eccentricity(g, 2); e != 2 {
		t.Fatalf("ecc(middle) = %d, want 2", e)
	}
}
