package metrics

import (
	"netmodel/internal/graph"
	"netmodel/internal/stats"
)

// This file holds the incremental metric kernels behind the engine's
// trajectory mode: metrics that admit cheap delta maintenance are
// refreshed from (previous snapshot, previous value, delta) in time
// proportional to the change, instead of recomputed over the whole
// refreshed snapshot. Every kernel is pinned against its full
// recompute by the equivalence tests in delta_test.go; RefreshKCore
// additionally falls back to the full re-peel whenever the delta shape
// (removals) or the touched region size voids its locality argument.
// Distance-based metrics live in dynbfs.go: the DistMap structure
// carries repaired BFS rows across epochs and derives path lengths,
// closeness and sampled betweenness from them.

// GrowthStats is the per-epoch observation vector of a growth
// trajectory: the metrics of the paper's growth measurements that
// admit delta maintenance — degree structure, clustering via touched
// wedges, core depth, and (when a DistMap is maintained alongside the
// trajectory) the distance family. The path fields are zero when the
// trajectory runs without path metrics; PathSources > 0 marks an
// observation that carried them.
type GrowthStats struct {
	N, M, Strength int
	AvgDegree      float64
	MaxDegree      int
	Gamma, GammaKS float64 // degree-tail fit from the histogram, 0 when no regime fits
	AvgClustering  float64
	Transitivity   float64
	MaxCore        int

	// Distance family, maintained by the incremental DistMap: the BFS
	// source count (n in exact mode, the pivot count in sampled mode),
	// the mean distance and diameter over reached (source, node) pairs,
	// and closeness averaged over all nodes.
	PathSources   int
	AvgPathLen    float64
	Diameter      int
	MeanCloseness float64
}

// DegreeHistogram returns hist[k] = number of nodes of degree k.
func DegreeHistogram(g *graph.Graph) []int {
	hist := make([]int, g.MaxDegree()+1)
	for u := 0; u < g.N(); u++ {
		hist[g.Degree(u)]++
	}
	return hist
}

// DegreeHistogramFrozen is DegreeHistogram over a snapshot.
func DegreeHistogramFrozen(s *graph.Snapshot) []int {
	hist := make([]int, s.MaxDegree()+1)
	for u := 0; u < s.N(); u++ {
		hist[s.Degree(u)]++
	}
	return hist
}

// MeasureGrowth is the sequential reference of the engine's trajectory
// measurement: the same fields, computed from scratch on the mutable
// graph.
func MeasureGrowth(g *graph.Graph) GrowthStats {
	st := GrowthStats{
		N:         g.N(),
		M:         g.M(),
		Strength:  g.TotalStrength(),
		AvgDegree: g.AvgDegree(),
		MaxDegree: g.MaxDegree(),
	}
	if g.N() == 0 {
		return st
	}
	if fit, err := stats.FitPowerLawHistogram(DegreeHistogram(g)); err == nil {
		st.Gamma = fit.Alpha
		st.GammaKS = fit.KS
	}
	st.AvgClustering = AvgClustering(g)
	st.Transitivity = Transitivity(g)
	st.MaxCore = KCore(g).MaxCore
	return st
}

// RefreshDegreeHistogram maintains the degree histogram across a
// refresh: touched endpoints move between bins, new nodes enter theirs.
// prevHist must be the histogram of prev; the result equals
// DegreeHistogramFrozen(next).
func RefreshDegreeHistogram(prev, next *graph.Snapshot, d *graph.Delta, prevHist []int) []int {
	size := next.MaxDegree() + 1
	if len(prevHist) > size {
		size = len(prevHist)
	}
	hist := make([]int, size)
	copy(hist, prevHist)
	oldN := prev.N()
	touched := make(map[int32]struct{})
	for _, e := range d.Edges() {
		if e.OldW != 0 && e.NewW != 0 {
			continue // multiplicity change: degrees untouched
		}
		touched[e.U] = struct{}{}
		touched[e.V] = struct{}{}
	}
	for ub := range touched {
		u := int(ub)
		if u >= oldN {
			continue // new nodes are binned below
		}
		hist[prev.Degree(u)]--
		hist[next.Degree(u)]++
	}
	for u := oldN; u < next.N(); u++ {
		hist[next.Degree(u)]++
	}
	return hist[:next.MaxDegree()+1]
}

// deltaEdgeKey packs an unordered node pair for the per-edge sequence
// maps of the incremental kernels.
func deltaEdgeKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// RefreshTriangles maintains the per-node triangle counts across a
// refresh in O(Σ wedges touched): every removed edge closes its
// triangles on the previous snapshot, every inserted edge on the next.
// Triangles carrying several changed edges are attributed exactly once,
// to the change with the highest sequence index, so batches that close
// multiple sides of the same triangle stay exact. prevTri must be the
// triangle vector of prev; the result equals
// TrianglesPerNodeFrozen(next).
func RefreshTriangles(prev, next *graph.Snapshot, d *graph.Delta, prevTri []int) []int {
	tri := make([]int, next.N())
	copy(tri, prevTri)
	var ins, rem []graph.DeltaEdge
	for _, e := range d.Edges() {
		switch {
		case e.OldW == 0:
			ins = append(ins, e)
		case e.NewW == 0:
			rem = append(rem, e)
		}
	}
	apply := func(s *graph.Snapshot, edges []graph.DeltaEdge, sign int) {
		idx := make(map[uint64]int, len(edges))
		for i, e := range edges {
			idx[deltaEdgeKey(int(e.U), int(e.V))] = i
		}
		seq := func(a, b int) int {
			if j, ok := idx[deltaEdgeKey(a, b)]; ok {
				return j
			}
			return -1
		}
		for i, e := range edges {
			u, v := int(e.U), int(e.V)
			// Common neighbors of u and v on s: each is a triangle that
			// this change creates (insertions on next) or destroys
			// (removals on prev). Credit it only when this edge has the
			// highest changed-edge index in the triangle.
			a, b := s.Neighbors(u), s.Neighbors(v)
			x, y := 0, 0
			for x < len(a) && y < len(b) {
				switch {
				case a[x] < b[y]:
					x++
				case a[x] > b[y]:
					y++
				default:
					w := int(a[x])
					if seq(u, w) < i && seq(v, w) < i {
						tri[u] += sign
						tri[v] += sign
						tri[w] += sign
					}
					x++
					y++
				}
			}
		}
	}
	apply(prev, rem, -1)
	apply(next, ins, +1)
	return tri
}

// RefreshKCore maintains the k-core decomposition across an
// insertion-only refresh with the subcore traversal algorithm: inserted
// edges are replayed one at a time, and for each, only the region that
// can change — nodes at the smaller endpoint coreness reachable through
// same-coreness nodes — is re-evaluated for promotion to the next
// shell. Deltas with removals, or touched regions whose total size
// rivals a full re-peel, fall back to KCoreFrozen(next); the result
// always equals the full recompute. prevCore must be the decomposition
// of prev.
func RefreshKCore(prev, next *graph.Snapshot, d *graph.Delta, prevCore KCoreResult) KCoreResult {
	n := next.N()
	var ins []graph.DeltaEdge
	for _, e := range d.Edges() {
		if e.NewW == 0 {
			// Removals can deflate whole shells; re-peel.
			return KCoreFrozen(next)
		}
		if e.OldW == 0 {
			ins = append(ins, e)
		}
	}
	cur := make([]int, n)
	copy(cur, prevCore.Coreness)

	// Replay edges in delta order; an edge is "present" while handling
	// edge i when it predates the snapshot or entered the replay already.
	insIdx := make(map[uint64]int, len(ins))
	for i, e := range ins {
		insIdx[deltaEdgeKey(int(e.U), int(e.V))] = i
	}
	present := func(a, b, i int) bool {
		j, ok := insIdx[deltaEdgeKey(a, b)]
		return !ok || j <= i
	}

	// Work budget: once the visited subcores rival the whole graph a
	// full re-peel is cheaper (and trivially correct).
	budget := n + 4*next.M() + 4096
	spent := 0

	inK := make([]int32, n) // round stamp: member of the current subcore
	out := make([]int32, n) // round stamp: evicted from the current subcore
	cd := make([]int32, n)  // support toward the next shell
	var K, queue []int32    // subcore members, eviction queue
	round := int32(0)

	// support counts w's present neighbors at or above level c.
	support := func(w, c, i int) int {
		count := 0
		for _, xb := range next.Neighbors(w) {
			x := int(xb)
			spent++
			if cur[x] >= c && present(w, x, i) {
				count++
			}
		}
		return count
	}

	for i, e := range ins {
		u, v := int(e.U), int(e.V)
		c := cur[u]
		if cur[v] < c {
			c = cur[v]
		}
		// Quick reject: a change must include a promoted endpoint at
		// level c; endpoints without c+1 candidate support cannot rise,
		// and then nothing can.
		rise := false
		for _, w := range [2]int{u, v} {
			if cur[w] == c && support(w, c, i) >= c+1 {
				rise = true
			}
		}
		if !rise {
			if spent > budget {
				return KCoreFrozen(next)
			}
			continue
		}
		round++
		K = K[:0]
		for _, w := range [2]int{u, v} {
			if cur[w] == c && inK[w] != round {
				inK[w] = round
				K = append(K, int32(w))
			}
		}
		// Subcore: nodes at level c reachable from the endpoints
		// through level-c nodes over present edges.
		for head := 0; head < len(K); head++ {
			w := int(K[head])
			for _, xb := range next.Neighbors(w) {
				x := int(xb)
				spent++
				if cur[x] == c && inK[x] != round && present(w, x, i) {
					inK[x] = round
					K = append(K, int32(x))
				}
			}
		}
		if spent > budget {
			return KCoreFrozen(next)
		}
		// Evaluate: members need c+1 supporters among higher-core
		// neighbors and surviving subcore members; evictions cascade.
		queue = queue[:0]
		for _, wb := range K {
			w := int(wb)
			cd[w] = int32(support(w, c, i)) // neighbors with cur >= c
			if cd[w] <= int32(c) {
				out[w] = round
				queue = append(queue, wb)
			}
		}
		for head := 0; head < len(queue); head++ {
			w := int(queue[head])
			for _, xb := range next.Neighbors(w) {
				x := int(xb)
				spent++
				if inK[x] == round && out[x] != round && present(w, x, i) {
					cd[x]--
					if cd[x] <= int32(c) {
						out[x] = round
						queue = append(queue, xb)
					}
				}
			}
		}
		if spent > budget {
			return KCoreFrozen(next)
		}
		for _, wb := range K {
			if out[wb] != round {
				cur[wb] = c + 1
			}
		}
	}
	res := KCoreResult{Coreness: cur}
	for _, c := range cur {
		if c > res.MaxCore {
			res.MaxCore = c
		}
	}
	return res
}
