package metrics

import (
	"errors"
	"math"
	"sort"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// This file is the CSR hot path of the metrics package: every traversal
// metric has a variant that accepts an immutable *graph.Snapshot and
// scans flat arrays instead of chasing adjacency maps. The per-source
// kernels (BFSFrozen, BrandesFrozen, TriangleRangeFrozen,
// CycleNodeFrozen) are exported so the parallel engine can shard them
// across workers; the *Frozen whole-graph functions below run them
// sequentially and serve as the single-threaded reference.

// BFSFrozen fills dist with the hop distance from src to every node
// (-1 for unreachable) and returns the BFS visit order in queue. Both
// dist and queue must have length s.N(); their previous contents are
// discarded. The returned slice is queue truncated to the visited
// count.
func BFSFrozen(s *graph.Snapshot, src int, dist []int32, queue []int32) []int32 {
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= s.N() {
		return queue[:0]
	}
	dist[src] = 0
	queue[0] = int32(src)
	size := 1
	for head := 0; head < size; head++ {
		u := queue[head]
		du := dist[u]
		for _, v := range s.Neighbors(int(u)) {
			if dist[v] < 0 {
				dist[v] = du + 1
				queue[size] = v
				size++
			}
		}
	}
	return queue[:size]
}

// ClosenessOfDist reduces one BFS distance vector to the
// Wasserman-Faust-corrected closeness of its source; n is the total
// node count of the graph.
func ClosenessOfDist(dist []int32, n int) float64 {
	sum, reach := 0, 0
	for _, d := range dist {
		if d > 0 {
			sum += int(d)
			reach++
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(reach) / float64(sum) * float64(reach) / float64(n-1)
}

// HarmonicOfDist reduces one BFS distance vector to the harmonic
// closeness of its source; n is the total node count of the graph.
func HarmonicOfDist(dist []int32, n int) float64 {
	sum := 0.0
	for _, d := range dist {
		if d > 0 {
			sum += 1 / float64(d)
		}
	}
	return sum / float64(n-1)
}

// ClosenessFrozen is Closeness over a snapshot.
func ClosenessFrozen(s *graph.Snapshot) []float64 {
	n := s.N()
	out := make([]float64, n)
	dist := make([]int32, n)
	sc := NewBFSScratch(n)
	for u := 0; u < n; u++ {
		BFSHybrid(s, u, dist, sc)
		out[u] = ClosenessOfDist(dist, n)
	}
	return out
}

// HarmonicClosenessFrozen is HarmonicCloseness over a snapshot.
func HarmonicClosenessFrozen(s *graph.Snapshot) []float64 {
	n := s.N()
	out := make([]float64, n)
	if n < 2 {
		return out
	}
	dist := make([]int32, n)
	sc := NewBFSScratch(n)
	for u := 0; u < n; u++ {
		BFSHybrid(s, u, dist, sc)
		out[u] = HarmonicOfDist(dist, n)
	}
	return out
}

// BrandesScratch is the reusable per-worker state of one Brandes source
// traversal.
type BrandesScratch struct {
	dist  []int32
	sigma []float64
	delta []float64
	queue []int32
}

// NewBrandesScratch allocates scratch for an n-node snapshot.
func NewBrandesScratch(n int) *BrandesScratch {
	return &BrandesScratch{
		dist:  make([]int32, n),
		sigma: make([]float64, n),
		delta: make([]float64, n),
		queue: make([]int32, n),
	}
}

// SigmaForward fills sigma with the number of shortest paths from src
// to every node, given the BFS visit order and distances of one
// BFSFrozen run. sigma must have length s.N() and be zeroed on entry.
// Shared by Brandes betweenness and the ECMP traffic router so path
// counting can never diverge between them.
func SigmaForward(s *graph.Snapshot, src int, order []int32, dist []int32, sigma []float64) {
	sigma[src] = 1
	for _, u := range order {
		du := dist[u]
		su := sigma[u]
		for _, v := range s.Neighbors(int(u)) {
			if dist[v] == du+1 {
				sigma[v] += su
			}
		}
	}
}

// BrandesFrozen runs one source of Brandes' betweenness algorithm over
// the snapshot, adding scale times each node's dependency into bc. The
// backward pass rescans neighbor rows instead of storing predecessor
// lists: for unweighted BFS DAGs, v precedes w exactly when
// dist[v]+1 == dist[w].
func BrandesFrozen(s *graph.Snapshot, src int, sc *BrandesScratch, bc []float64, scale float64) {
	for i := range sc.sigma {
		sc.sigma[i] = 0
		sc.delta[i] = 0
	}
	order := BFSFrozen(s, src, sc.dist, sc.queue)
	SigmaForward(s, src, order, sc.dist, sc.sigma)
	for i := len(order) - 1; i >= 0; i-- {
		w := order[i]
		coeff := (1 + sc.delta[w]) / sc.sigma[w]
		dw := sc.dist[w]
		for _, v := range s.Neighbors(int(w)) {
			if sc.dist[v]+1 == dw {
				sc.delta[v] += sc.sigma[v] * coeff
			}
		}
		if int(w) != src {
			bc[w] += sc.delta[w] * scale
		}
	}
}

// BetweennessFrozen is Betweenness over a snapshot: exact Brandes from
// every source, normalized by (N-1)(N-2).
func BetweennessFrozen(s *graph.Snapshot) []float64 {
	return betweennessFrozen(s, nil, 0)
}

// BetweennessSampledFrozen is BetweennessSampled over a snapshot.
func BetweennessSampledFrozen(s *graph.Snapshot, r *rng.Rand, sources int) ([]float64, error) {
	if sources <= 0 {
		return nil, errors.New("metrics: source count must be positive")
	}
	if r == nil {
		return nil, errors.New("metrics: sampling requires a generator")
	}
	if sources >= s.N() {
		return BetweennessFrozen(s), nil
	}
	return betweennessFrozen(s, r, sources), nil
}

func betweennessFrozen(s *graph.Snapshot, r *rng.Rand, sources int) []float64 {
	n := s.N()
	bc := make([]float64, n)
	if n < 3 {
		return bc
	}
	srcs, scale := BetweennessSources(n, r, sources)
	sc := NewBrandesScratch(n)
	for _, src := range srcs {
		BrandesFrozen(s, src, sc, bc, scale)
	}
	norm := float64(n-1) * float64(n-2)
	for i := range bc {
		bc[i] /= norm
	}
	return bc
}

// BetweennessSources mirrors the source selection of the map-based
// betweenness implementation so the frozen, engine and reference paths
// sample identically for a given generator state: all nodes with scale
// 1 when sources <= 0, else a uniform sample rescaled by n/sources.
func BetweennessSources(n int, r *rng.Rand, sources int) (srcs []int, scale float64) {
	if sources > 0 {
		perm := r.Perm(n)
		return perm[:sources], float64(n) / float64(sources)
	}
	srcs = make([]int, n)
	for i := range srcs {
		srcs[i] = i
	}
	return srcs, 1
}

// PathSources mirrors the source selection of PathLengths: all nodes
// when sources <= 0 or >= n, otherwise a uniform sample, with the same
// error cases.
func PathSources(n int, r *rng.Rand, sources int) ([]int, error) {
	if n == 0 {
		return nil, errors.New("metrics: empty graph")
	}
	if sources <= 0 || sources >= n {
		srcs := make([]int, n)
		for i := range srcs {
			srcs[i] = i
		}
		return srcs, nil
	}
	if r == nil {
		return nil, errors.New("metrics: sampling requires a generator")
	}
	return r.Perm(n)[:sources], nil
}

// PathHistogram is the exact integer reduction of a set of BFS sources:
// counts[d] pairs at distance d, plus the running sum and diameter.
// Merging histograms and converting with ToStats reproduces the
// floating-point results of PathLengths bit for bit, because every
// intermediate quantity is integral.
type PathHistogram struct {
	Counts []int64
	Sum    int64
	Total  int64
}

// AccumulateDistances folds one BFS distance vector (from source src)
// into the histogram.
func (h *PathHistogram) AccumulateDistances(src int, dist []int32) {
	for v, d := range dist {
		if v == src || d <= 0 {
			continue
		}
		for int(d) >= len(h.Counts) {
			h.Counts = append(h.Counts, make([]int64, len(h.Counts)+8)...)
		}
		h.Counts[d]++
		h.Sum += int64(d)
		h.Total++
	}
}

// Merge adds other into h.
func (h *PathHistogram) Merge(other *PathHistogram) {
	if len(other.Counts) > len(h.Counts) {
		h.Counts = append(h.Counts, make([]int64, len(other.Counts)-len(h.Counts))...)
	}
	for d, c := range other.Counts {
		h.Counts[d] += c
	}
	h.Sum += other.Sum
	h.Total += other.Total
}

// ToStats converts the histogram into PathStats for the given source
// count.
func (h *PathHistogram) ToStats(sources int) PathStats {
	st := PathStats{Distribution: make(map[int]float64), Sources: sources}
	for d := len(h.Counts) - 1; d >= 1; d-- {
		if h.Counts[d] > 0 {
			st.Diameter = d
			break
		}
	}
	if h.Total > 0 {
		st.Avg = float64(h.Sum) / float64(h.Total)
		for d, c := range h.Counts {
			if c > 0 {
				st.Distribution[d] = float64(c) / float64(h.Total)
			}
		}
	}
	return st
}

// PathLengthsFrozen is PathLengths over a snapshot.
func PathLengthsFrozen(s *graph.Snapshot, r *rng.Rand, sources int) (PathStats, error) {
	n := s.N()
	srcs, err := PathSources(n, r, sources)
	if err != nil {
		return PathStats{}, err
	}
	dist := make([]int32, n)
	sc := NewBFSScratch(n)
	var h PathHistogram
	for _, src := range srcs {
		BFSHybrid(s, src, dist, sc)
		h.AccumulateDistances(src, dist)
	}
	return h.ToStats(len(srcs)), nil
}

// EccentricityFrozen is Eccentricity over a snapshot.
func EccentricityFrozen(s *graph.Snapshot, u int) int {
	n := s.N()
	dist := make([]int32, n)
	BFSHybrid(s, u, dist, NewBFSScratch(n))
	max := int32(0)
	for _, d := range dist {
		if d > max {
			max = d
		}
	}
	return int(max)
}

// TriangleRangeFrozen counts every triangle whose smallest node lies in
// [lo, hi), crediting all three corners in t (len s.N()). Each triangle
// a < b < c is found exactly once, at the edge (a,b) by a sorted-row
// intersection restricted to common neighbors above b — so disjoint
// ranges partition the triangle set and per-worker t arrays sum to the
// exact per-node triangle counts.
func TriangleRangeFrozen(s *graph.Snapshot, lo, hi int, t []int) {
	for u := lo; u < hi; u++ {
		row := s.Neighbors(u)
		for i, v := range row {
			if int(v) <= u {
				continue
			}
			// Intersect row[i+1:] (neighbors of u above v) with the
			// neighbors of v above v; both slices are sorted.
			a := row[i+1:]
			b := s.Neighbors(int(v))
			j := sort.Search(len(b), func(k int) bool { return b[k] > v })
			b = b[j:]
			x, y := 0, 0
			for x < len(a) && y < len(b) {
				switch {
				case a[x] < b[y]:
					x++
				case a[x] > b[y]:
					y++
				default:
					t[u]++
					t[v]++
					t[a[x]]++
					x++
					y++
				}
			}
		}
	}
}

// TrianglesPerNodeFrozen is TrianglesPerNode over a snapshot.
func TrianglesPerNodeFrozen(s *graph.Snapshot) []int {
	t := make([]int, s.N())
	TriangleRangeFrozen(s, 0, s.N(), t)
	return t
}

// TotalTrianglesFrozen is TotalTriangles over a snapshot.
func TotalTrianglesFrozen(s *graph.Snapshot) int {
	sum := 0
	for _, ti := range TrianglesPerNodeFrozen(s) {
		sum += ti
	}
	return sum / 3
}

// LocalClusteringFromTriangles converts per-node triangle counts into
// local clustering coefficients.
func LocalClusteringFromTriangles(s *graph.Snapshot, t []int) []float64 {
	c := make([]float64, s.N())
	for u := range c {
		k := s.Degree(u)
		if k >= 2 {
			c[u] = 2 * float64(t[u]) / float64(k*(k-1))
		}
	}
	return c
}

// LocalClusteringFrozen is LocalClustering over a snapshot.
func LocalClusteringFrozen(s *graph.Snapshot) []float64 {
	return LocalClusteringFromTriangles(s, TrianglesPerNodeFrozen(s))
}

// AvgClusteringFromLocal averages local clustering over nodes of degree
// >= 2, the convention of AvgClustering.
func AvgClusteringFromLocal(s *graph.Snapshot, c []float64) float64 {
	sum, n := 0.0, 0
	for u := range c {
		if s.Degree(u) >= 2 {
			sum += c[u]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// AvgClusteringFrozen is AvgClustering over a snapshot.
func AvgClusteringFrozen(s *graph.Snapshot) float64 {
	return AvgClusteringFromLocal(s, LocalClusteringFrozen(s))
}

// TransitivityFromTriangles computes the global clustering coefficient
// from per-node triangle counts.
func TransitivityFromTriangles(s *graph.Snapshot, t []int) float64 {
	tri := 0
	for _, ti := range t {
		tri += ti
	}
	tri /= 3
	triples := 0
	for u := 0; u < s.N(); u++ {
		k := s.Degree(u)
		triples += k * (k - 1) / 2
	}
	if triples == 0 {
		return 0
	}
	return 3 * float64(tri) / float64(triples)
}

// TransitivityFrozen is Transitivity over a snapshot.
func TransitivityFrozen(s *graph.Snapshot) float64 {
	return TransitivityFromTriangles(s, TrianglesPerNodeFrozen(s))
}

// ClusteringSpectrumFromLocal bins local clustering by degree, the
// c(k) spectrum.
func ClusteringSpectrumFromLocal(s *graph.Snapshot, c []float64) map[int]float64 {
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for u := range c {
		k := s.Degree(u)
		if k < 2 {
			continue
		}
		sum[k] += c[u]
		cnt[k]++
	}
	out := make(map[int]float64, len(sum))
	for k, v := range sum {
		out[k] = v / float64(cnt[k])
	}
	return out
}

// ClusteringSpectrumFrozen is ClusteringSpectrum over a snapshot.
func ClusteringSpectrumFrozen(s *graph.Snapshot) map[int]float64 {
	return ClusteringSpectrumFromLocal(s, LocalClusteringFrozen(s))
}

// KCoreFrozen is KCore over a snapshot: the same Batagelj-Zaversnik
// bucket algorithm scanning CSR rows. Coreness is a well-defined graph
// invariant, so the result is identical to the map-based KCore.
func KCoreFrozen(s *graph.Snapshot) KCoreResult {
	n := s.N()
	res := KCoreResult{Coreness: make([]int, n)}
	if n == 0 {
		return res
	}
	deg := make([]int, n)
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg[u] = s.Degree(u)
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	binStart := make([]int, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for i := 1; i < len(binStart); i++ {
		binStart[i] += binStart[i-1]
	}
	pos := make([]int, n)
	vert := make([]int, n)
	fill := make([]int, maxDeg+1)
	copy(fill, binStart[:maxDeg+1])
	for u := 0; u < n; u++ {
		pos[u] = fill[deg[u]]
		vert[pos[u]] = u
		fill[deg[u]]++
	}
	bin := make([]int, maxDeg+1)
	copy(bin, binStart[:maxDeg+1])

	cur := make([]int, n)
	copy(cur, deg)
	for i := 0; i < n; i++ {
		v := vert[i]
		res.Coreness[v] = cur[v]
		if cur[v] > res.MaxCore {
			res.MaxCore = cur[v]
		}
		for _, nb := range s.Neighbors(v) {
			u := int(nb)
			if cur[u] > cur[v] {
				du := cur[u]
				pu := pos[u]
				pw := bin[du]
				nw := vert[pw]
				if u != nw {
					vert[pu], vert[pw] = nw, u
					pos[u], pos[nw] = pw, pu
				}
				bin[du]++
				cur[u]--
			}
		}
	}
	return res
}

// RichClubFrozen is RichClub over a snapshot.
func RichClubFrozen(s *graph.Snapshot) []RichClubPoint {
	n := s.N()
	if n < 2 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := s.Degree(order[a]), s.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	inClub := make([]bool, n)
	edges := 0
	var out []RichClubPoint
	for idx := 0; idx < n; {
		d := s.Degree(order[idx])
		for idx < n && s.Degree(order[idx]) == d {
			u := order[idx]
			for _, v := range s.Neighbors(u) {
				if inClub[v] {
					edges++
				}
			}
			inClub[u] = true
			idx++
		}
		if d == 0 {
			break
		}
		club := idx
		p := RichClubPoint{K: d - 1, N: club, E: edges}
		if club >= 2 {
			p.Phi = 2 * float64(edges) / (float64(club) * float64(club-1))
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}

// CycleScratch is the reusable per-worker state of CycleNodeFrozen.
type CycleScratch struct {
	cnt     []int64
	touched []int32
}

// NewCycleScratch allocates scratch for an n-node snapshot.
func NewCycleScratch(n int) *CycleScratch {
	return &CycleScratch{cnt: make([]int64, n), touched: make([]int32, 0, 256)}
}

// CycleNodeFrozen computes node i's contribution to the ordered 4-cycle
// sum Σ_{j≠i} C(codeg(i,j),2) and to tr A⁵ in one 2-neighborhood pass.
// Summing over all i yields the same totals as the two passes of
// CountCycles: the 4-cycle term skips the k == i diagonal that the
// count vector retains for the quadratic form.
func CycleNodeFrozen(s *graph.Snapshot, i int, sc *CycleScratch) (ordered4, trA5 int64) {
	sc.touched = sc.touched[:0]
	for _, j := range s.Neighbors(i) {
		for _, k := range s.Neighbors(int(j)) {
			if sc.cnt[k] == 0 {
				sc.touched = append(sc.touched, k)
			}
			sc.cnt[k]++
		}
	}
	for _, k := range sc.touched {
		if int(k) != i {
			c := sc.cnt[k]
			ordered4 += c * (c - 1) / 2
		}
	}
	for _, u := range sc.touched {
		cu := sc.cnt[u]
		for _, v := range s.Neighbors(int(u)) {
			if cv := sc.cnt[v]; cv != 0 {
				trA5 += cu * cv
			}
		}
	}
	for _, u := range sc.touched {
		sc.cnt[u] = 0
	}
	return ordered4, trA5
}

// CyclesFromParts assembles CycleCounts from per-node triangle counts
// and the summed CycleNodeFrozen contributions, applying the trace
// identities of CountCycles. degree(i) is read from the snapshot.
func CyclesFromParts(s *graph.Snapshot, tri []int, ordered4, trA5 int64) CycleCounts {
	var out CycleCounts
	n := s.N()
	if n < 3 {
		return out
	}
	var totalT int64
	for _, t := range tri {
		totalT += int64(t)
	}
	out.C3 = totalT / 3
	out.C4 = ordered4 / 4
	if n < 5 {
		return out
	}
	var corr int64
	for i, t := range tri {
		corr += int64(s.Degree(i)-2) * 2 * int64(t)
	}
	trA3 := 6 * out.C3
	out.C5 = (trA5 - 5*trA3 - 5*corr) / 10
	return out
}

// CountCyclesFrozen is CountCycles over a snapshot.
func CountCyclesFrozen(s *graph.Snapshot) CycleCounts {
	n := s.N()
	if n < 3 {
		return CycleCounts{}
	}
	tri := TrianglesPerNodeFrozen(s)
	sc := NewCycleScratch(n)
	var ordered4, trA5 int64
	for i := 0; i < n; i++ {
		o4, t5 := CycleNodeFrozen(s, i, sc)
		ordered4 += o4
		trA5 += t5
	}
	return CyclesFromParts(s, tri, ordered4, trA5)
}

// DegreesAsFloatsFrozen is DegreesAsFloats over a snapshot.
func DegreesAsFloatsFrozen(s *graph.Snapshot) []float64 {
	out := make([]float64, s.N())
	for u := range out {
		out[u] = float64(s.Degree(u))
	}
	return out
}

// DegreeDistributionFrozen is DegreeDistribution over a snapshot.
func DegreeDistributionFrozen(s *graph.Snapshot) map[int]float64 {
	out := make(map[int]float64)
	n := s.N()
	if n == 0 {
		return out
	}
	for u := 0; u < n; u++ {
		out[s.Degree(u)]++
	}
	for k := range out {
		out[k] /= float64(n)
	}
	return out
}

// DegreeCCDFFrozen is DegreeCCDF over a snapshot.
func DegreeCCDFFrozen(s *graph.Snapshot) (ks []int, pc []float64) {
	dist := DegreeDistributionFrozen(s)
	for k := range dist {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	pc = make([]float64, len(ks))
	cum := 0.0
	for i := len(ks) - 1; i >= 0; i-- {
		cum += dist[ks[i]]
		pc[i] = cum
	}
	return ks, pc
}

// KnnFrozen is Knn over a snapshot.
func KnnFrozen(s *graph.Snapshot) map[int]float64 {
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for u := 0; u < s.N(); u++ {
		k := s.Degree(u)
		if k == 0 {
			continue
		}
		nsum := 0.0
		for _, v := range s.Neighbors(u) {
			nsum += float64(s.Degree(int(v)))
		}
		sum[k] += nsum / float64(k)
		cnt[k]++
	}
	out := make(map[int]float64, len(sum))
	for k, v := range sum {
		out[k] = v / float64(cnt[k])
	}
	return out
}

// AssortativityFrozen is Assortativity over a snapshot.
func AssortativityFrozen(s *graph.Snapshot) float64 {
	var n, sx, sy, sxx, syy, sxy float64
	s.Edges(func(u, v, w int) bool {
		du, dv := float64(s.Degree(u)), float64(s.Degree(v))
		for _, p := range [2][2]float64{{du, dv}, {dv, du}} {
			n++
			sx += p[0]
			sy += p[1]
			sxx += p[0] * p[0]
			syy += p[1] * p[1]
			sxy += p[0] * p[1]
		}
		return true
	})
	if n < 2 {
		return 0
	}
	num := sxy/n - (sx/n)*(sy/n)
	den := math.Sqrt((sxx/n - (sx/n)*(sx/n)) * (syy/n - (sy/n)*(sy/n)))
	if den == 0 {
		return 0
	}
	return num / den
}
