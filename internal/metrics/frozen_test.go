package metrics

import (
	"math"
	"reflect"
	"testing"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// frozenTestGraph builds a random graph dense enough to have triangles
// and sparse enough to leave a few isolated nodes.
func frozenTestGraph(t *testing.T, seed uint64, n, edges int) (*graph.Graph, *graph.Snapshot) {
	t.Helper()
	r := rng.New(seed)
	g := graph.New(n)
	for i := 0; i < edges; i++ {
		u, v := r.Intn(n), r.Intn(n)
		if u != v {
			g.MustAddEdge(u, v)
		}
	}
	return g, g.Freeze()
}

func floatsClose(t *testing.T, name string, got, want []float64, tol float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s[%d] = %v, want %v", name, i, got[i], want[i])
		}
	}
}

func TestFrozenBFSMatchesMap(t *testing.T) {
	g, s := frozenTestGraph(t, 1, 80, 150)
	dist := make([]int32, s.N())
	queue := make([]int32, s.N())
	for src := 0; src < s.N(); src += 7 {
		want := BFS(g, src)
		order := BFSFrozen(s, src, dist, queue)
		for v, d := range want {
			if int(dist[v]) != d {
				t.Fatalf("src %d: dist[%d] = %d, want %d", src, v, dist[v], d)
			}
		}
		reach := 0
		for _, d := range want {
			if d >= 0 {
				reach++
			}
		}
		if len(order) != reach {
			t.Fatalf("src %d: visit order has %d nodes, want %d", src, len(order), reach)
		}
	}
}

func TestFrozenClosenessMatchesMap(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g, s := frozenTestGraph(t, seed, 90, 200)
		floatsClose(t, "closeness", ClosenessFrozen(s), Closeness(g), 0)
		floatsClose(t, "harmonic", HarmonicClosenessFrozen(s), HarmonicCloseness(g), 0)
	}
}

func TestFrozenBetweennessMatchesMap(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g, s := frozenTestGraph(t, seed, 70, 160)
		floatsClose(t, "betweenness", BetweennessFrozen(s), Betweenness(g), 1e-9)

		want, err := BetweennessSampled(g, rng.New(42+seed), 20)
		if err != nil {
			t.Fatal(err)
		}
		got, err := BetweennessSampledFrozen(s, rng.New(42+seed), 20)
		if err != nil {
			t.Fatal(err)
		}
		floatsClose(t, "sampled betweenness", got, want, 1e-9)
	}
	_, s := frozenTestGraph(t, 9, 30, 60)
	if _, err := BetweennessSampledFrozen(s, nil, 5); err == nil {
		t.Fatal("nil generator must error")
	}
	if _, err := BetweennessSampledFrozen(s, rng.New(1), 0); err == nil {
		t.Fatal("non-positive sources must error")
	}
}

func TestFrozenPathLengthsMatchesMap(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g, s := frozenTestGraph(t, seed, 90, 180)
		for _, sources := range []int{0, 25} {
			want, err := PathLengths(g, rng.New(5*seed), sources)
			if err != nil {
				t.Fatal(err)
			}
			got, err := PathLengthsFrozen(s, rng.New(5*seed), sources)
			if err != nil {
				t.Fatal(err)
			}
			if got.Avg != want.Avg || got.Diameter != want.Diameter || got.Sources != want.Sources {
				t.Fatalf("seed %d sources %d: stats %+v, want %+v", seed, sources, got, want)
			}
			if !reflect.DeepEqual(got.Distribution, want.Distribution) {
				t.Fatalf("seed %d sources %d: distributions differ", seed, sources)
			}
		}
	}
	if _, err := PathLengthsFrozen(graph.New(0).Freeze(), nil, 0); err == nil {
		t.Fatal("empty graph must error")
	}
	_, s := frozenTestGraph(t, 4, 40, 80)
	if _, err := PathLengthsFrozen(s, nil, 10); err == nil {
		t.Fatal("sampling without generator must error")
	}
}

func TestFrozenTrianglesAndClusteringMatchMap(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g, s := frozenTestGraph(t, seed, 60, 240)
		if got, want := TrianglesPerNodeFrozen(s), TrianglesPerNode(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: triangle counts differ:\n got %v\nwant %v", seed, got, want)
		}
		if got, want := TotalTrianglesFrozen(s), TotalTriangles(g); got != want {
			t.Fatalf("seed %d: total triangles %d vs %d", seed, got, want)
		}
		floatsClose(t, "local clustering", LocalClusteringFrozen(s), LocalClustering(g), 0)
		if got, want := AvgClusteringFrozen(s), AvgClustering(g); got != want {
			t.Fatalf("seed %d: avg clustering %v vs %v", seed, got, want)
		}
		if got, want := TransitivityFrozen(s), Transitivity(g); got != want {
			t.Fatalf("seed %d: transitivity %v vs %v", seed, got, want)
		}
		if got, want := ClusteringSpectrumFrozen(s), ClusteringSpectrum(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: clustering spectra differ", seed)
		}
	}
}

func TestFrozenKCoreRichClubMatchMap(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g, s := frozenTestGraph(t, seed, 80, 260)
		if got, want := KCoreFrozen(s), KCore(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: k-core differs", seed)
		}
		if got, want := RichClubFrozen(s), RichClub(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: rich club differs", seed)
		}
	}
}

func TestFrozenCyclesMatchMap(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g, s := frozenTestGraph(t, seed, 50, 180)
		if got, want := CountCyclesFrozen(s), CountCycles(g); got != want {
			t.Fatalf("seed %d: cycles %+v vs %+v", seed, got, want)
		}
	}
	// Small-n guards.
	for _, n := range []int{0, 1, 2, 4} {
		g := graph.New(n)
		if n >= 4 {
			g.MustAddEdge(0, 1)
			g.MustAddEdge(1, 2)
			g.MustAddEdge(2, 0)
			g.MustAddEdge(2, 3)
		}
		if got, want := CountCyclesFrozen(g.Freeze()), CountCycles(g); got != want {
			t.Fatalf("n=%d: cycles %+v vs %+v", n, got, want)
		}
	}
}

func TestFrozenDegreeMetricsMatchMap(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g, s := frozenTestGraph(t, seed, 70, 150)
		floatsClose(t, "degrees", DegreesAsFloatsFrozen(s), DegreesAsFloats(g), 0)
		if got, want := DegreeDistributionFrozen(s), DegreeDistribution(g); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: degree distributions differ", seed)
		}
		ks1, pc1 := DegreeCCDFFrozen(s)
		ks2, pc2 := DegreeCCDF(g)
		if !reflect.DeepEqual(ks1, ks2) || !reflect.DeepEqual(pc1, pc2) {
			t.Fatalf("seed %d: CCDFs differ", seed)
		}
		knnF, knnM := KnnFrozen(s), Knn(g)
		if len(knnF) != len(knnM) {
			t.Fatalf("seed %d: knn key sets differ", seed)
		}
		for k, v := range knnM {
			if math.Abs(knnF[k]-v) > 1e-9 {
				t.Fatalf("seed %d: knn(%d) = %v, want %v", seed, k, knnF[k], v)
			}
		}
		if got, want := AssortativityFrozen(s), Assortativity(g); math.Abs(got-want) > 1e-9 {
			t.Fatalf("seed %d: assortativity %v vs %v", seed, got, want)
		}
	}
}
