package metrics

import (
	"math"
	"testing"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// star builds a star graph: node 0 connected to 1..n-1.
func star(n int) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.MustAddEdge(0, i)
	}
	return g
}

// path builds a path graph 0-1-...-n-1.
func path(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1)
	}
	return g
}

// complete builds K_n.
func complete(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(i, j)
		}
	}
	return g
}

// cycleGraph builds C_n.
func cycleGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n)
	}
	return g
}

// randomGraph builds an Erdős–Rényi-ish graph for cross-checks.
func randomGraph(r *rng.Rand, n int, p float64) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				g.MustAddEdge(i, j)
			}
		}
	}
	return g
}

func TestDegreeDistributionStar(t *testing.T) {
	g := star(10)
	d := DegreeDistribution(g)
	if math.Abs(d[9]-0.1) > 1e-12 {
		t.Fatalf("P(9) = %v, want 0.1", d[9])
	}
	if math.Abs(d[1]-0.9) > 1e-12 {
		t.Fatalf("P(1) = %v, want 0.9", d[1])
	}
	sum := 0.0
	for _, p := range d {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("distribution sums to %v", sum)
	}
}

func TestDegreeCCDF(t *testing.T) {
	g := star(10)
	ks, pc := DegreeCCDF(g)
	if len(ks) != 2 || ks[0] != 1 || ks[1] != 9 {
		t.Fatalf("ks = %v", ks)
	}
	if math.Abs(pc[0]-1) > 1e-12 {
		t.Fatalf("Pc(1) = %v, want 1", pc[0])
	}
	if math.Abs(pc[1]-0.1) > 1e-12 {
		t.Fatalf("Pc(9) = %v, want 0.1", pc[1])
	}
}

func TestDegreeMoments(t *testing.T) {
	g := path(3) // degrees 1,2,1
	k1, k2 := DegreeMoments(g)
	if math.Abs(k1-4.0/3) > 1e-12 || math.Abs(k2-2) > 1e-12 {
		t.Fatalf("moments %v %v, want 4/3, 2", k1, k2)
	}
}

func TestKnnStar(t *testing.T) {
	g := star(5) // hub degree 4, leaves degree 1
	knn := Knn(g)
	if math.Abs(knn[4]-1) > 1e-12 {
		t.Fatalf("knn(hub) = %v, want 1", knn[4])
	}
	if math.Abs(knn[1]-4) > 1e-12 {
		t.Fatalf("knn(leaf) = %v, want 4", knn[1])
	}
}

func TestKnnNormalizedUncorrelated(t *testing.T) {
	// On a large ER graph knn(k) normalized should be ~1 for common k.
	g := randomGraph(rng.New(3), 2000, 0.005)
	norm := KnnNormalized(g)
	// check at the mode of the degree distribution (~np = 10)
	v, ok := norm[10]
	if !ok {
		t.Skip("no nodes of degree 10")
	}
	if math.Abs(v-1) > 0.1 {
		t.Fatalf("normalized knn(10) = %v, want ~1", v)
	}
}

func TestAssortativityStar(t *testing.T) {
	// A star is maximally disassortative: every edge joins degree 1 to
	// degree n-1, giving zero variance at each end -> r defined as 0 by
	// our convention (degenerate), so use a double star instead.
	g := graph.New(6)
	g.MustAddEdge(0, 1) // two hubs joined
	for i := 2; i < 4; i++ {
		g.MustAddEdge(0, i)
	}
	for i := 4; i < 6; i++ {
		g.MustAddEdge(1, i)
	}
	r := Assortativity(g)
	if r >= 0 {
		t.Fatalf("double star assortativity = %v, want negative", r)
	}
}

func TestAssortativityRegularIsDegenerate(t *testing.T) {
	if r := Assortativity(cycleGraph(10)); r != 0 {
		t.Fatalf("cycle assortativity = %v, want 0 (degenerate)", r)
	}
}

func TestAssortativityBounds(t *testing.T) {
	g := randomGraph(rng.New(7), 500, 0.02)
	r := Assortativity(g)
	if r < -1 || r > 1 {
		t.Fatalf("assortativity %v out of [-1,1]", r)
	}
	// ER graphs are uncorrelated.
	if math.Abs(r) > 0.1 {
		t.Fatalf("ER assortativity %v, want ~0", r)
	}
}

func TestDegreeStrengthPairs(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 1) // multiplicity 2
	g.MustAddEdge(0, 2)
	ks, bs := DegreeStrengthPairs(g)
	if len(ks) != 3 {
		t.Fatalf("pairs for %d nodes, want 3", len(ks))
	}
	// node 0: k=2, b=3
	if ks[0] != 2 || bs[0] != 3 {
		t.Fatalf("node 0 (k,b) = (%v,%v), want (2,3)", ks[0], bs[0])
	}
}
