package metrics

import (
	"netmodel/internal/graph"
)

// TrianglesPerNode returns T(u), the number of triangles through each
// node. The count uses the simple adjacency structure; multiplicities do
// not matter. Complexity is O(Σ_edges min(d_u, d_v)).
func TrianglesPerNode(g *graph.Graph) []int {
	t := make([]int, g.N())
	g.Edges(func(u, v, w int) bool {
		// Iterate the smaller neighborhood, test membership in the other.
		a, b := u, v
		if g.Degree(a) > g.Degree(b) {
			a, b = b, a
		}
		g.Neighbors(a, func(x, _ int) bool {
			if x != b && g.HasEdge(x, b) {
				// Triangle (u,v,x): credited to every corner once per
				// incident edge pair; crediting per edge triples counts,
				// so credit only the two endpoints here and x gets its
				// share from its own incident edges of the triangle.
				_ = x
				t[u]++
				t[v]++
			}
			return true
		})
		return true
	})
	// Each triangle has 3 edges; the loop above credited each corner
	// twice per triangle (once for each of its two incident triangle
	// edges). Halve to get true per-node counts.
	for i := range t {
		t[i] /= 2
	}
	return t
}

// TotalTriangles returns the number of triangles in the graph.
func TotalTriangles(g *graph.Graph) int {
	sum := 0
	for _, ti := range TrianglesPerNode(g) {
		sum += ti
	}
	return sum / 3
}

// LocalClustering returns c(u) = 2T(u) / (k_u (k_u - 1)) per node, with
// c = 0 for degree < 2.
func LocalClustering(g *graph.Graph) []float64 {
	t := TrianglesPerNode(g)
	c := make([]float64, g.N())
	for u := range c {
		k := g.Degree(u)
		if k >= 2 {
			c[u] = 2 * float64(t[u]) / float64(k*(k-1))
		}
	}
	return c
}

// AvgClustering returns the mean local clustering coefficient over nodes
// of degree >= 2 (the convention of the AS-map measurements; including
// low-degree nodes would only dilute the signal with structural zeros).
func AvgClustering(g *graph.Graph) float64 {
	c := LocalClustering(g)
	sum, n := 0.0, 0
	for u := range c {
		if g.Degree(u) >= 2 {
			sum += c[u]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Transitivity returns the global clustering coefficient
// 3·triangles / #connected-triples.
func Transitivity(g *graph.Graph) float64 {
	tri := TotalTriangles(g)
	triples := 0
	for u := 0; u < g.N(); u++ {
		k := g.Degree(u)
		triples += k * (k - 1) / 2
	}
	if triples == 0 {
		return 0
	}
	return 3 * float64(tri) / float64(triples)
}

// ClusteringSpectrum returns c(k), the mean local clustering of nodes of
// degree k, for every occurring degree >= 2. A decaying spectrum
// c(k) ~ k^-1 signals hierarchical structure (Ravasz-Barabási); the
// AS map decays with exponent ≈ 0.75.
func ClusteringSpectrum(g *graph.Graph) map[int]float64 {
	c := LocalClustering(g)
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for u := range c {
		k := g.Degree(u)
		if k < 2 {
			continue
		}
		sum[k] += c[u]
		cnt[k]++
	}
	out := make(map[int]float64, len(sum))
	for k, s := range sum {
		out[k] = s / float64(cnt[k])
	}
	return out
}
