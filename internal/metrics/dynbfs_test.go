package metrics

import (
	"math"
	"reflect"
	"testing"

	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// distMapWorkers is the worker-count matrix of the determinism
// requirement: every refreshed map must match the cold build bit for
// bit at each of these widths.
var distMapWorkers = []int{1, 2, 4, 8}

// requireDistMapEqual compares a refreshed map against the cold
// reference field by field: rows, sources, and every maintained
// aggregate. Bit-identity, not tolerance — the repair contract.
func requireDistMapEqual(t *testing.T, label string, got, want *DistMap) {
	t.Helper()
	if got.exact != want.exact {
		t.Fatalf("%s: exact flag %v vs %v", label, got.exact, want.exact)
	}
	if !reflect.DeepEqual(got.sources, want.sources) {
		t.Fatalf("%s: sources diverged", label)
	}
	if len(got.dist) != len(want.dist) {
		t.Fatalf("%s: %d rows vs %d", label, len(got.dist), len(want.dist))
	}
	for i := range got.dist {
		if !reflect.DeepEqual(got.dist[i], want.dist[i]) {
			t.Fatalf("%s: row %d (source %d) diverged", label, i, got.sources[i])
		}
	}
	if !reflect.DeepEqual(got.reach, want.reach) || !reflect.DeepEqual(got.sumd, want.sumd) {
		t.Fatalf("%s: reach/sumd aggregates diverged", label)
	}
	if got.hist.Sum != want.hist.Sum || got.hist.Total != want.hist.Total {
		t.Fatalf("%s: histogram sums diverged", label)
	}
	for d := 0; d < len(got.hist.Counts) || d < len(want.hist.Counts); d++ {
		var g, w int64
		if d < len(got.hist.Counts) {
			g = got.hist.Counts[d]
		}
		if d < len(want.hist.Counts) {
			w = want.hist.Counts[d]
		}
		if g != w {
			t.Fatalf("%s: histogram count at d=%d: %d vs %d", label, d, g, w)
		}
	}
}

// TestDistMapRefreshMatchesCold pins the tentpole equivalence: along
// every family × seed trajectory, a DistMap refreshed epoch over epoch
// is bit-identical to a cold NewDistMap over the same snapshot — rows,
// aggregates, and every derived metric — at every worker count, and
// the derived metrics reproduce the frozen references.
func TestDistMapRefreshMatchesCold(t *testing.T) {
	for _, fam := range trajectoryFamilies() {
		for seed := uint64(1); seed <= 2; seed++ {
			top, err := fam.g.Generate(rng.New(seed))
			if err != nil {
				t.Fatalf("%s/%d: %v", fam.name, seed, err)
			}
			var maps []*DistMap // one refreshed map per worker count
			replayEpochs(t, top, 41, func(prev, next *graph.Snapshot, d *graph.Delta, g *graph.Graph) {
				if maps == nil {
					for range distMapWorkers {
						maps = append(maps, NewDistMap(prev, nil, 1))
					}
				}
				cold := NewDistMap(next, nil, 1)
				for wi, w := range distMapWorkers {
					maps[wi].Refresh(next, d, w)
					requireDistMapEqual(t, fam.name, maps[wi], cold)
				}
				dm := maps[0]

				ps := RefreshPathLengths(dm)
				want, err := PathLengthsFrozen(next, nil, 0)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ps, want) {
					t.Fatalf("%s/%d n=%d: path stats diverged: %+v vs %+v",
						fam.name, seed, next.N(), ps, want)
				}
				if clo := RefreshCloseness(dm); !reflect.DeepEqual(clo, ClosenessFrozen(next)) {
					t.Fatalf("%s/%d n=%d: closeness diverged", fam.name, seed, next.N())
				}
				bc := RefreshBetweennessSampled(dm, 4)
				if coldBC := RefreshBetweennessSampled(cold, 1); !reflect.DeepEqual(bc, coldBC) {
					t.Fatalf("%s/%d n=%d: refreshed betweenness not bit-identical to cold",
						fam.name, seed, next.N())
				}
				for v, x := range BetweennessFrozen(next) {
					if diff := math.Abs(bc[v] - x); diff > 1e-12*math.Max(1, math.Abs(x)) {
						t.Fatalf("%s/%d n=%d: betweenness[%d] = %g, frozen %g",
							fam.name, seed, next.N(), v, bc[v], x)
					}
				}
			})
		}
	}
}

// TestDistMapBudgetFallback forces every repair over budget (one row
// scan) so each epoch exercises the rebuild path, which must land on
// exactly the cold result too.
func TestDistMapBudgetFallback(t *testing.T) {
	top, err := gen.BA{N: 200, M: 2}.Generate(rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	var dm *DistMap
	replayEpochs(t, top, 29, func(prev, next *graph.Snapshot, d *graph.Delta, g *graph.Graph) {
		if dm == nil {
			dm = NewDistMap(prev, nil, 1)
			dm.maxScan = 1
		}
		dm.Refresh(next, d, 2)
		requireDistMapEqual(t, "budget-fallback", dm, NewDistMap(next, nil, 1))
	})
}

// TestDistMapDisconnected runs the repair over a graph with several
// components and isolated nodes: unreachable entries stay -1, and an
// inserted bridge that merges components repairs exactly.
func TestDistMapDisconnected(t *testing.T) {
	g := graph.New(14) // two paths 0..4 and 5..9, isolated 10..13
	for u := 1; u < 5; u++ {
		g.MustAddEdge(u-1, u)
	}
	for u := 6; u < 10; u++ {
		g.MustAddEdge(u-1, u)
	}
	prev := g.Freeze()
	dm := NewDistMap(prev, nil, 1)
	if dm.dist[0][7] != -1 || dm.dist[0][12] != -1 {
		t.Fatal("expected unreachable entries in the seed snapshot")
	}
	// Bridge the paths, attach one isolated node, leave the rest isolated.
	g.MustAddEdge(4, 5)
	g.MustAddEdge(10, 0)
	next, d, err := g.Refreeze(prev)
	if err != nil || d == nil {
		t.Fatalf("refreeze: %v", err)
	}
	dm.Refresh(next, d, 2)
	requireDistMapEqual(t, "disconnected", dm, NewDistMap(next, nil, 1))
	if dm.dist[0][9] != 9 {
		t.Fatalf("bridged distance 0→9 = %d, want 9", dm.dist[0][9])
	}
	if dm.dist[0][12] != -1 {
		t.Fatal("still-isolated node became reachable")
	}
	if clo := RefreshCloseness(dm); clo[12] != 0 {
		t.Fatalf("isolated node closeness %g, want 0", clo[12])
	}
}

// TestDistMapSampledRefresh pins the pivot mode: a sampled map
// refreshed along a trajectory matches the cold sampled build over the
// same pivots, and its estimators match the frozen sampled references.
func TestDistMapSampledRefresh(t *testing.T) {
	top, err := gen.GLP{N: 300, M: 1, P: 0.45, Beta: 0.64}.Generate(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	var dm *DistMap
	replayEpochs(t, top, 53, func(prev, next *graph.Snapshot, d *graph.Delta, g *graph.Graph) {
		if dm == nil {
			// The pivot draw needs nodes, so the map starts cold on the
			// first observed epoch and refreshes from the second on.
			dm = NewDistMapSampled(next, rng.New(11), 24, 2)
			if dm.Exact() || dm.SourceCount() != 24 {
				t.Fatalf("sampled map: exact=%v k=%d", dm.Exact(), dm.SourceCount())
			}
			return
		}
		dm.Refresh(next, d, 4)
		cold := NewDistMap(next, dm.Sources(), 1)
		requireDistMapEqual(t, "sampled", dm, cold)
		if bc := RefreshBetweennessSampled(dm, 2); !reflect.DeepEqual(bc, RefreshBetweennessSampled(cold, 1)) {
			t.Fatal("sampled betweenness diverged from cold")
		}
	})
}

// TestPivotSources pins the selection contract shared with the frozen
// samplers: the exact-mode markers and the Perm prefix.
func TestPivotSources(t *testing.T) {
	if PivotSources(rng.New(1), 10, 0) != nil || PivotSources(rng.New(1), 10, 10) != nil {
		t.Fatal("exact-mode marker must be nil")
	}
	got := PivotSources(rng.New(9), 50, 8)
	perm := rng.New(9).Perm(50)
	for i, v := range got {
		if int(v) != perm[i] {
			t.Fatalf("pivot %d = %d, want Perm prefix %d", i, v, perm[i])
		}
	}
}
