package metrics

import (
	"testing"

	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/par"
	"netmodel/internal/rng"
)

// hybridCases builds the equivalence topologies: every trajectory
// family (ER/BA/GLP/PFP) at two seeds, a denser ER whose middle levels
// force the bottom-up sweep, and a disconnected variant of each — the
// generated map plus a detached clique and two isolated nodes.
func hybridCases(t *testing.T) map[string]*graph.Snapshot {
	t.Helper()
	cases := make(map[string]*graph.Snapshot)
	gens := append(trajectoryFamilies(), struct {
		name string
		g    gen.Generator
	}{"er-dense", gen.GNP{N: 400, P: 0.04}})
	for _, fam := range gens {
		for seed := uint64(1); seed <= 2; seed++ {
			top, err := fam.g.Generate(rng.New(seed))
			if err != nil {
				t.Fatalf("%s/%d: %v", fam.name, seed, err)
			}
			g := top.G
			cases[fam.name+"/conn"] = g.Freeze()
			split := g.Copy()
			base := split.N()
			for i := 0; i < 6; i++ {
				split.AddNode()
			}
			for i := base; i < base+4; i++ {
				for j := i + 1; j < base+4; j++ {
					split.MustAddEdge(i, j)
				}
			}
			cases[fam.name+"/split"] = split.Freeze()
		}
	}
	return cases
}

// TestBFSHybridMatchesClassic pins the tentpole equivalence: the
// hybrid kernel's distance vector is bit-identical to BFSFrozen's from
// every source of every case, connected or not, through one shared
// scratch whose stamped epochs must never leak between calls.
func TestBFSHybridMatchesClassic(t *testing.T) {
	sc := NewBFSScratch(0)
	for name, s := range hybridCases(t) {
		n := s.N()
		want := make([]int32, n)
		queue := make([]int32, n)
		got := make([]int32, n)
		for src := 0; src < n; src++ {
			order := BFSFrozen(s, src, want, queue)
			reach := BFSHybrid(s, src, got, sc)
			if reach != len(order) {
				t.Fatalf("%s src %d: hybrid reached %d nodes, classic %d", name, src, reach, len(order))
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("%s src %d: dist[%d] = %d, classic %d", name, src, v, got[v], want[v])
				}
			}
		}
	}
}

// TestBFSHybridOutOfRange pins the classic kernel's out-of-range
// contract: every entry -1, nothing reached.
func TestBFSHybridOutOfRange(t *testing.T) {
	top, err := gen.BA{N: 50, M: 2}.Generate(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	s := top.G.Freeze()
	sc := NewBFSScratch(s.N())
	dist := make([]int32, s.N())
	for _, src := range []int{-1, s.N(), s.N() + 7} {
		if reach := BFSHybrid(s, src, dist, sc); reach != 0 {
			t.Fatalf("src %d: reached %d nodes", src, reach)
		}
		for v, d := range dist {
			if d != -1 {
				t.Fatalf("src %d: dist[%d] = %d, want -1", src, v, d)
			}
		}
	}
}

// TestBFSHybridWorkerInvariance shards sources across worker counts
// {1, 2, 4, 8} with one scratch per worker: the assembled distance
// matrix must be bit-identical at every width — the adoption contract
// of the parallel call sites (DistMap rebuilds, routing-tree builds).
func TestBFSHybridWorkerInvariance(t *testing.T) {
	top, err := gen.BA{N: 400, M: 2}.Generate(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	s := top.G.Freeze()
	n := s.N()
	var ref [][]int32
	for _, workers := range []int{1, 2, 4, 8} {
		rows := make([][]int32, n)
		scratch := make([]*BFSScratch, workers)
		par.ForEach(n, workers, func(w, src int) {
			if scratch[w] == nil {
				scratch[w] = NewBFSScratch(n)
			}
			rows[src] = make([]int32, n)
			BFSHybrid(s, src, rows[src], scratch[w])
		})
		if ref == nil {
			ref = rows
			continue
		}
		for src := range rows {
			for v := range rows[src] {
				if rows[src][v] != ref[src][v] {
					t.Fatalf("workers %d: dist[%d][%d] diverged", workers, src, v)
				}
			}
		}
	}
}

// TestComponentsHybridMatchesSnapshot pins the labeling kernel against
// Snapshot.Components: same partition, and the id holding the maximal
// size (first on ties) names exactly the component Components ranks
// first — the giant-selection contract of the failure layer.
func TestComponentsHybridMatchesSnapshot(t *testing.T) {
	sc := NewBFSScratch(0)
	for name, s := range hybridCases(t) {
		n := s.N()
		comp := make([]int32, n)
		sizes := ComponentsHybrid(s, sc, comp, nil)
		comps := s.Components()
		if len(sizes) != len(comps) {
			t.Fatalf("%s: %d labeled components, Components gives %d", name, len(sizes), len(comps))
		}
		// Partition equality: every Components member set maps to one
		// label, and the label's size matches.
		for _, c := range comps {
			id := comp[c[0]]
			if int(sizes[id]) != len(c) {
				t.Fatalf("%s: component of %d has size %d, labeled size %d", name, c[0], len(c), sizes[id])
			}
			for _, u := range c {
				if comp[u] != id {
					t.Fatalf("%s: node %d labeled %d, expected %d", name, u, comp[u], id)
				}
			}
		}
		giant := int32(0)
		for id := range sizes {
			if sizes[id] > sizes[giant] {
				giant = int32(id)
			}
		}
		if comp[comps[0][0]] != giant {
			t.Fatalf("%s: giant label %d does not name Components' first component", name, giant)
		}
		// Steady-state reuse: a second scan through the same scratch and
		// a recycled sizes buffer must reproduce the labels.
		comp2 := make([]int32, n)
		sizes2 := ComponentsHybrid(s, sc, comp2, sizes[:0])
		for v := range comp {
			if comp[v] != comp2[v] {
				t.Fatalf("%s: label of %d moved across reuse", name, v)
			}
		}
		if len(sizes2) != len(sizes) {
			t.Fatalf("%s: size count moved across reuse", name)
		}
	}
}

// TestBFSHybridEmpty covers the degenerate snapshots.
func TestBFSHybridEmpty(t *testing.T) {
	g := graph.New(0)
	s := g.Freeze()
	sc := NewBFSScratch(0)
	if reach := BFSHybrid(s, 0, nil, sc); reach != 0 {
		t.Fatalf("empty graph reached %d", reach)
	}
	if sizes := ComponentsHybrid(s, sc, nil, nil); len(sizes) != 0 {
		t.Fatalf("empty graph has %d components", len(sizes))
	}
	one := graph.New(1)
	s1 := one.Freeze()
	dist := make([]int32, 1)
	if reach := BFSHybrid(s1, 0, dist, sc); reach != 1 || dist[0] != 0 {
		t.Fatalf("singleton: reach %d dist %v", reach, dist)
	}
}
