package metrics

import (
	"reflect"
	"testing"

	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/rng"
	"netmodel/internal/stats"
)

// trajectoryFamilies builds the generator matrix of the equivalence
// requirement: ≥3 families × 3 seeds, replayed as growth trajectories.
func trajectoryFamilies() []struct {
	name string
	g    gen.Generator
} {
	return []struct {
		name string
		g    gen.Generator
	}{
		{"ba", gen.BA{N: 300, M: 2}},
		{"glp", gen.GLP{N: 300, M: 1, P: 0.45, Beta: 0.64}},
		{"pfp", gen.DefaultPFP(250)},
		{"er", gen.GNP{N: 300, P: 4.2 / 299}},
	}
}

// replayEpochs replays a generated topology's edge list into a growing
// graph, calling check(prev, next, delta, g) at every epoch of the
// given stride. Node ids appear densely in generated maps, so growing
// the node set to each edge's endpoints reproduces a plausible arrival
// order.
func replayEpochs(t *testing.T, top *gen.Topology, every int,
	check func(prev, next *graph.Snapshot, d *graph.Delta, g *graph.Graph)) {
	t.Helper()
	g := graph.New(0)
	prev, err := g.FreezeChecked()
	if err != nil {
		t.Fatal(err)
	}
	edges := top.G.EdgeList()
	for i, e := range edges {
		for g.N() <= e.V || g.N() <= e.U {
			g.AddNode()
		}
		for w := 0; w < e.W; w++ {
			g.MustAddEdge(e.U, e.V)
		}
		if (i+1)%every == 0 || i == len(edges)-1 {
			next, d, err := g.Refreeze(prev)
			if err != nil {
				t.Fatal(err)
			}
			if d == nil {
				t.Fatal("replay expected a delta refresh")
			}
			check(prev, next, d, g)
			prev = next
		}
	}
}

// TestRefreshKernelsMatchFullRecompute pins every incremental kernel
// against its full recompute at every epoch of every family × seed
// trajectory.
func TestRefreshKernelsMatchFullRecompute(t *testing.T) {
	for _, fam := range trajectoryFamilies() {
		for seed := uint64(1); seed <= 3; seed++ {
			top, err := fam.g.Generate(rng.New(seed))
			if err != nil {
				t.Fatalf("%s/%d: %v", fam.name, seed, err)
			}
			tri := []int(nil)
			hist := []int(nil)
			core := KCoreResult{Coreness: []int{}}
			replayEpochs(t, top, 37, func(prev, next *graph.Snapshot, d *graph.Delta, g *graph.Graph) {
				tri = RefreshTriangles(prev, next, d, tri)
				if want := TrianglesPerNodeFrozen(next); !reflect.DeepEqual(tri, want) {
					t.Fatalf("%s/%d n=%d: triangles diverged", fam.name, seed, next.N())
				}
				hist = RefreshDegreeHistogram(prev, next, d, hist)
				if want := DegreeHistogramFrozen(next); !reflect.DeepEqual(hist, want) {
					t.Fatalf("%s/%d n=%d: degree histogram diverged: %v vs %v",
						fam.name, seed, next.N(), hist, want)
				}
				core = RefreshKCore(prev, next, d, core)
				if want := KCoreFrozen(next); !reflect.DeepEqual(core, want) {
					t.Fatalf("%s/%d n=%d: k-core diverged", fam.name, seed, next.N())
				}
			})
		}
	}
}

// TestRefreshKernelsUnderChurn drives inserts, multiplicity changes and
// removals through the kernels; RefreshKCore must detect the removals
// and fall back, RefreshTriangles must stay exact on both sides.
func TestRefreshKernelsUnderChurn(t *testing.T) {
	r := rng.New(5)
	g := graph.New(30)
	for i := 0; i < 120; i++ {
		u, v := r.Intn(30), r.Intn(30)
		if u != v {
			g.MustAddEdge(u, v)
		}
	}
	prev := g.Freeze()
	tri := TrianglesPerNodeFrozen(prev)
	hist := DegreeHistogramFrozen(prev)
	core := KCoreFrozen(prev)
	for epoch := 0; epoch < 40; epoch++ {
		for i := 0; i < 15; i++ {
			u, v := r.Intn(g.N()), r.Intn(g.N())
			if u == v {
				continue
			}
			switch x := r.Float64(); {
			case x < 0.3 && g.HasEdge(u, v):
				if err := g.RemoveEdge(u, v); err != nil {
					t.Fatal(err)
				}
			default:
				g.MustAddEdge(u, v)
			}
		}
		if epoch%5 == 0 {
			g.AddNode()
		}
		next, d, err := g.Refreeze(prev)
		if err != nil {
			t.Fatal(err)
		}
		tri = RefreshTriangles(prev, next, d, tri)
		if want := TrianglesPerNodeFrozen(next); !reflect.DeepEqual(tri, want) {
			t.Fatalf("epoch %d: triangles diverged", epoch)
		}
		hist = RefreshDegreeHistogram(prev, next, d, hist)
		if want := DegreeHistogramFrozen(next); !reflect.DeepEqual(hist, want) {
			t.Fatalf("epoch %d: histogram diverged", epoch)
		}
		core = RefreshKCore(prev, next, d, core)
		if want := KCoreFrozen(next); !reflect.DeepEqual(core, want) {
			t.Fatalf("epoch %d: k-core diverged", epoch)
		}
		prev = next
	}
}

// TestRefreshKCoreCycleClosure pins the subtle insertion case: closing
// a long path into a cycle promotes every interior node 1 → 2 even
// though only the endpoints touch the delta.
func TestRefreshKCoreCycleClosure(t *testing.T) {
	g := graph.New(12)
	for u := 1; u < 12; u++ {
		g.MustAddEdge(u-1, u)
	}
	prev := g.Freeze()
	core := KCoreFrozen(prev)
	g.MustAddEdge(0, 11)
	next, d, err := g.Refreeze(prev)
	if err != nil || d == nil {
		t.Fatalf("refreeze: %v", err)
	}
	core = RefreshKCore(prev, next, d, core)
	want := KCoreFrozen(next)
	if !reflect.DeepEqual(core, want) {
		t.Fatalf("cycle closure: %v vs %v", core.Coreness, want.Coreness)
	}
	for u, c := range core.Coreness {
		if c != 2 {
			t.Fatalf("node %d coreness %d after cycle closure, want 2", u, c)
		}
	}
}

// TestMeasureGrowthSequentialReference checks the sequential reference
// against its parts on a generated map.
func TestMeasureGrowthSequentialReference(t *testing.T) {
	top, err := gen.BA{N: 400, M: 2}.Generate(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	g := top.G
	st := MeasureGrowth(g)
	if st.N != g.N() || st.M != g.M() || st.Strength != g.TotalStrength() ||
		st.MaxDegree != g.MaxDegree() || st.AvgDegree != g.AvgDegree() {
		t.Fatalf("size fields wrong: %+v", st)
	}
	if st.AvgClustering != AvgClustering(g) || st.Transitivity != Transitivity(g) {
		t.Fatal("clustering fields wrong")
	}
	if st.MaxCore != KCore(g).MaxCore {
		t.Fatal("core field wrong")
	}
	fit, err := stats.FitPowerLawHistogram(DegreeHistogram(g))
	if err != nil {
		t.Fatal(err)
	}
	if st.Gamma != fit.Alpha || st.GammaKS != fit.KS {
		t.Fatal("fit fields wrong")
	}
	if empty := (MeasureGrowth(graph.New(0))); empty.N != 0 || empty.Gamma != 0 {
		t.Fatalf("empty growth stats %+v", empty)
	}
}
