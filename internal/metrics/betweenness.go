package metrics

import (
	"errors"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// Betweenness computes shortest-path betweenness centrality for every
// node with Brandes' algorithm, O(N·M) for unweighted graphs. Values are
// normalized by (N-1)(N-2), the number of ordered pairs excluding the
// node itself, so they lie in [0,1] — Freeman's convention used in the
// AS-map betweenness figures.
func Betweenness(g *graph.Graph) []float64 {
	return betweenness(g, nil, 0)
}

// BetweennessSampled estimates betweenness from BFS trees rooted at
// `sources` uniformly sampled nodes, rescaling by N/sources. The
// estimate converges to the exact values as sources → N; it is the
// standard accuracy/cost trade-off for maps with more than a few
// thousand nodes. An error is returned for a nil generator or
// non-positive source count.
func BetweennessSampled(g *graph.Graph, r *rng.Rand, sources int) ([]float64, error) {
	if sources <= 0 {
		return nil, errors.New("metrics: source count must be positive")
	}
	if r == nil {
		return nil, errors.New("metrics: sampling requires a generator")
	}
	if sources >= g.N() {
		return Betweenness(g), nil
	}
	return betweenness(g, r, sources), nil
}

func betweenness(g *graph.Graph, r *rng.Rand, sources int) []float64 {
	n := g.N()
	bc := make([]float64, n)
	if n < 3 {
		return bc
	}
	var srcs []int
	scale := 1.0
	if sources > 0 {
		perm := r.Perm(n)
		srcs = perm[:sources]
		scale = float64(n) / float64(sources)
	} else {
		srcs = make([]int, n)
		for i := range srcs {
			srcs[i] = i
		}
	}

	dist := make([]int, n)
	sigma := make([]float64, n) // number of shortest paths from s
	delta := make([]float64, n) // dependency accumulator
	order := make([]int, 0, n)  // nodes in non-decreasing distance
	preds := make([][]int, n)

	for _, s := range srcs {
		for i := 0; i < n; i++ {
			dist[i] = -1
			sigma[i] = 0
			delta[i] = 0
			preds[i] = preds[i][:0]
		}
		order = order[:0]
		dist[s] = 0
		sigma[s] = 1
		queue := []int{s}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			order = append(order, u)
			g.Neighbors(u, func(v, w int) bool {
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
				if dist[v] == dist[u]+1 {
					sigma[v] += sigma[u]
					preds[v] = append(preds[v], u)
				}
				return true
			})
		}
		for i := len(order) - 1; i >= 0; i-- {
			w := order[i]
			for _, p := range preds[w] {
				delta[p] += sigma[p] / sigma[w] * (1 + delta[w])
			}
			if w != s {
				bc[w] += delta[w] * scale
			}
		}
	}
	norm := float64(n-1) * float64(n-2)
	for i := range bc {
		bc[i] /= norm
	}
	return bc
}
