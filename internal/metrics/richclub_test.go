package metrics

import (
	"math"
	"testing"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// bruteRichClub computes φ(k) directly from the definition.
func bruteRichClub(g *graph.Graph, k int) (int, int, float64) {
	var club []int
	for u := 0; u < g.N(); u++ {
		if g.Degree(u) > k {
			club = append(club, u)
		}
	}
	e := 0
	for i, u := range club {
		for _, v := range club[i+1:] {
			if g.HasEdge(u, v) {
				e++
			}
		}
	}
	phi := 0.0
	if len(club) >= 2 {
		phi = 2 * float64(e) / (float64(len(club)) * float64(len(club)-1))
	}
	return len(club), e, phi
}

func TestRichClubMatchesBruteForce(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(r, 80, 0.06)
		for _, p := range RichClub(g) {
			n, e, phi := bruteRichClub(g, p.K)
			if p.N != n || p.E != e || math.Abs(p.Phi-phi) > 1e-12 {
				t.Fatalf("trial %d k=%d: got (%d,%d,%v), brute (%d,%d,%v)",
					trial, p.K, p.N, p.E, p.Phi, n, e, phi)
			}
		}
	}
}

func TestRichClubCompleteGraph(t *testing.T) {
	pts := RichClub(complete(6))
	for _, p := range pts {
		if p.N >= 2 && math.Abs(p.Phi-1) > 1e-12 {
			t.Fatalf("K6 rich club φ(%d) = %v, want 1", p.K, p.Phi)
		}
	}
}

func TestRichClubHubClique(t *testing.T) {
	// Three mutually connected hubs, each with pendant leaves: high-k
	// club must be a perfect clique (φ=1), whole-graph club much sparser.
	g := graph.New(12)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(0, 2)
	leaf := 3
	for h := 0; h < 3; h++ {
		for i := 0; i < 3; i++ {
			g.MustAddEdge(h, leaf)
			leaf++
		}
	}
	pts := RichClub(g)
	// hubs have degree 5, leaves 1; the hub club appears at threshold 4
	// (points are emitted only where membership changes).
	var hubClub *RichClubPoint
	for i := range pts {
		if pts[i].K == 4 {
			hubClub = &pts[i]
		}
	}
	if hubClub == nil {
		t.Fatalf("no point at k=4: %+v", pts)
	}
	if hubClub.N != 3 || math.Abs(hubClub.Phi-1) > 1e-12 {
		t.Fatalf("hub club = %+v, want N=3 φ=1", *hubClub)
	}
}

func TestRichClubTinyGraph(t *testing.T) {
	if pts := RichClub(graph.New(1)); pts != nil {
		t.Fatal("single node graph should yield no points")
	}
}

func TestRichClubMonotoneThresholds(t *testing.T) {
	g := randomGraph(rng.New(43), 100, 0.05)
	pts := RichClub(g)
	for i := 1; i < len(pts); i++ {
		if pts[i].K <= pts[i-1].K {
			t.Fatal("thresholds not strictly increasing")
		}
		if pts[i].N >= pts[i-1].N {
			t.Fatal("club size must shrink as threshold rises")
		}
	}
}
