package metrics

import (
	"math"
	"testing"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

func TestMeasureBasics(t *testing.T) {
	g := complete(20)
	s, err := Measure(g, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 20 || s.M != 190 {
		t.Fatalf("N=%d M=%d", s.N, s.M)
	}
	if math.Abs(s.AvgDegree-19) > 1e-12 || s.MaxDegree != 19 {
		t.Fatalf("degree stats %v %d", s.AvgDegree, s.MaxDegree)
	}
	if math.Abs(s.AvgClustering-1) > 1e-12 || math.Abs(s.Transitivity-1) > 1e-12 {
		t.Fatal("clustering of complete graph must be 1")
	}
	if s.AvgPathLen != 1 || s.Diameter != 1 {
		t.Fatal("path stats of complete graph must be 1")
	}
	if s.MaxCore != 19 {
		t.Fatalf("MaxCore = %d", s.MaxCore)
	}
	if s.GiantFrac != 1 {
		t.Fatalf("GiantFrac = %v", s.GiantFrac)
	}
}

func TestMeasureDisconnected(t *testing.T) {
	g := graph.New(10)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	s, err := Measure(g, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.GiantFrac-0.3) > 1e-12 {
		t.Fatalf("GiantFrac = %v, want 0.3", s.GiantFrac)
	}
	if s.Diameter != 2 {
		t.Fatalf("giant diameter = %d, want 2", s.Diameter)
	}
}

func TestMeasureEmpty(t *testing.T) {
	s, err := Measure(graph.New(0), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 0 || s.GiantFrac != 1 {
		t.Fatalf("empty snapshot %+v", s)
	}
}

func TestMeasureWithSampling(t *testing.T) {
	r := rng.New(47)
	g := randomGraph(r, 400, 0.02)
	exact, err := Measure(g, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := Measure(g, r, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact.AvgPathLen-sampled.AvgPathLen) > 0.15 {
		t.Fatalf("sampled path len %v vs exact %v", sampled.AvgPathLen, exact.AvgPathLen)
	}
}
