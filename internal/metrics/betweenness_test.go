package metrics

import (
	"math"
	"testing"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// bruteBetweenness computes betweenness by explicit shortest-path
// enumeration over all pairs (exponential-ish, tiny graphs only).
func bruteBetweenness(g *graph.Graph) []float64 {
	n := g.N()
	bc := make([]float64, n)
	for s := 0; s < n; s++ {
		for t := 0; t < n; t++ {
			if s == t {
				continue
			}
			paths := shortestPaths(g, s, t)
			if len(paths) == 0 {
				continue
			}
			through := make([]int, n)
			for _, p := range paths {
				for _, v := range p[1 : len(p)-1] {
					through[v]++
				}
			}
			for v := 0; v < n; v++ {
				if v != s && v != t {
					bc[v] += float64(through[v]) / float64(len(paths))
				}
			}
		}
	}
	norm := float64(n-1) * float64(n-2)
	for i := range bc {
		bc[i] /= norm
	}
	return bc
}

// shortestPaths enumerates all shortest paths from s to t by BFS layers.
func shortestPaths(g *graph.Graph, s, t int) [][]int {
	dist := BFS(g, s)
	if dist[t] < 0 {
		return nil
	}
	var out [][]int
	var walk func(v int, acc []int)
	walk = func(v int, acc []int) {
		acc = append(acc, v)
		if v == s {
			rev := make([]int, len(acc))
			for i, x := range acc {
				rev[len(acc)-1-i] = x
			}
			out = append(out, rev)
			return
		}
		g.Neighbors(v, func(u, _ int) bool {
			if dist[u] == dist[v]-1 {
				walk(u, acc)
			}
			return true
		})
	}
	walk(t, nil)
	return out
}

func TestBetweennessStar(t *testing.T) {
	g := star(6)
	bc := Betweenness(g)
	if math.Abs(bc[0]-1) > 1e-12 {
		t.Fatalf("hub betweenness = %v, want 1", bc[0])
	}
	for u := 1; u < 6; u++ {
		if bc[u] != 0 {
			t.Fatalf("leaf betweenness = %v, want 0", bc[u])
		}
	}
}

func TestBetweennessPath(t *testing.T) {
	g := path(5)
	bc := Betweenness(g)
	// Middle node lies on 3*2=... pairs: (0,3),(0,4),(1,3),(1,4),(3,0)...
	// For path of 5, exact normalized values: node 2 covers pairs
	// {0,1}x{3,4} in both directions = 8 of 12 ordered pairs.
	if math.Abs(bc[2]-8.0/12) > 1e-12 {
		t.Fatalf("middle betweenness = %v, want %v", bc[2], 8.0/12)
	}
	if bc[0] != 0 || bc[4] != 0 {
		t.Fatal("endpoints must have zero betweenness")
	}
}

func TestBetweennessMatchesBruteForce(t *testing.T) {
	r := rng.New(23)
	for trial := 0; trial < 5; trial++ {
		g := randomGraph(r, 12, 0.3)
		got := Betweenness(g)
		want := bruteBetweenness(g)
		for u := range want {
			if math.Abs(got[u]-want[u]) > 1e-9 {
				t.Fatalf("trial %d node %d: brandes %v, brute %v", trial, u, got[u], want[u])
			}
		}
	}
}

func TestBetweennessTinyGraph(t *testing.T) {
	bc := Betweenness(graph.New(2))
	if len(bc) != 2 || bc[0] != 0 || bc[1] != 0 {
		t.Fatal("graphs with <3 nodes must be all-zero")
	}
}

func TestBetweennessSampledApproximates(t *testing.T) {
	r := rng.New(29)
	g := randomGraph(r, 300, 0.03)
	exact := Betweenness(g)
	approx, err := BetweennessSampled(g, r, 150)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the two on aggregate: correlation of top values.
	var num, exSum, apSum float64
	for i := range exact {
		num += exact[i] * approx[i]
		exSum += exact[i] * exact[i]
		apSum += approx[i] * approx[i]
	}
	if exSum == 0 || apSum == 0 {
		t.Skip("degenerate graph")
	}
	corr := num / math.Sqrt(exSum*apSum)
	if corr < 0.95 {
		t.Fatalf("sampled betweenness correlation %v too low", corr)
	}
}

func TestBetweennessSampledErrors(t *testing.T) {
	g := path(5)
	if _, err := BetweennessSampled(g, nil, 2); err == nil {
		t.Fatal("nil generator should fail")
	}
	if _, err := BetweennessSampled(g, rng.New(1), 0); err == nil {
		t.Fatal("zero sources should fail")
	}
}

func TestBetweennessSampledFullFallsBackToExact(t *testing.T) {
	g := path(6)
	exact := Betweenness(g)
	full, err := BetweennessSampled(g, rng.New(1), 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(exact[i]-full[i]) > 1e-12 {
			t.Fatal("sources >= N should be exact")
		}
	}
}
