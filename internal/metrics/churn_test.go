package metrics

import (
	"reflect"
	"testing"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// replayChurnEpochs drives a generated family topology through mixed
// insert+remove epochs: each epoch removes a handful of surviving
// edges, re-inserts fresh ones, and occasionally grows the node set,
// so every delta carries removals and insertions at once. check runs
// on each refreeze.
func replayChurnEpochs(t *testing.T, fam string, seed uint64, epochs int,
	check func(prev, next *graph.Snapshot, d *graph.Delta)) {
	t.Helper()
	var base *graph.Graph
	for _, f := range trajectoryFamilies() {
		if f.name == fam {
			top, err := f.g.Generate(rng.New(seed))
			if err != nil {
				t.Fatalf("%s/%d: %v", fam, seed, err)
			}
			base = top.G
		}
	}
	if base == nil {
		t.Fatalf("unknown family %q", fam)
	}
	g := base.Copy()
	prev, err := g.FreezeChecked()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed ^ 0x9e3779b97f4a7c15)
	for epoch := 0; epoch < epochs; epoch++ {
		edges := prev.EdgeList()
		for i := 0; i < 8 && len(edges) > 0; i++ {
			e := edges[r.Intn(len(edges))]
			if g.HasEdge(e.U, e.V) {
				if err := g.RemoveEdge(e.U, e.V); err != nil {
					t.Fatal(err)
				}
			}
		}
		for i := 0; i < 10; i++ {
			u, v := r.Intn(g.N()), r.Intn(g.N())
			if u != v {
				g.MustAddEdge(u, v)
			}
		}
		if epoch%4 == 3 {
			u := g.AddNode()
			g.MustAddEdge(u, r.Intn(u))
		}
		next, d, err := g.Refreeze(prev)
		if err != nil {
			t.Fatal(err)
		}
		if d == nil {
			t.Fatal("churn epoch expected a delta refresh")
		}
		rem := false
		for _, de := range d.Edges() {
			if de.NewW < de.OldW {
				rem = true
				break
			}
		}
		if !rem {
			t.Fatalf("epoch %d: churn delta carries no removals", epoch)
		}
		check(prev, next, d)
		prev = next
	}
}

// TestDistMapRefreshUnderChurn pins the removal-repair contract across
// the full matrix: families × seeds × workers {1,2,4,8}, mixed
// insert+remove deltas every epoch, bit-identity against the cold
// build at every step.
func TestDistMapRefreshUnderChurn(t *testing.T) {
	for _, fam := range []string{"ba", "glp", "er"} {
		for seed := uint64(1); seed <= 2; seed++ {
			var maps []*DistMap
			replayChurnEpochs(t, fam, seed, 12, func(prev, next *graph.Snapshot, d *graph.Delta) {
				if maps == nil {
					for range distMapWorkers {
						maps = append(maps, NewDistMap(prev, nil, 1))
					}
				}
				cold := NewDistMap(next, nil, 1)
				for wi, w := range distMapWorkers {
					maps[wi].Refresh(next, d, w)
					requireDistMapEqual(t, fam, maps[wi], cold)
				}
				ps := RefreshPathLengths(maps[0])
				want, err := PathLengthsFrozen(next, nil, 0)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(ps, want) {
					t.Fatalf("%s/%d: churned path stats diverged", fam, seed)
				}
			})
		}
	}
}

// TestDistMapChurnBudgetFallback forces every churn repair over budget
// so the cold-rebuild fallback runs under mixed deltas and must still
// land exactly on the reference.
func TestDistMapChurnBudgetFallback(t *testing.T) {
	var dm *DistMap
	replayChurnEpochs(t, "ba", 3, 10, func(prev, next *graph.Snapshot, d *graph.Delta) {
		if dm == nil {
			dm = NewDistMap(prev, nil, 1)
			dm.maxScan = 1
		}
		dm.Refresh(next, d, 4)
		requireDistMapEqual(t, "churn-budget", dm, NewDistMap(next, nil, 1))
	})
}

// TestDistMapSampledUnderChurn runs the pivot mode through the same
// mixed deltas: the sampled repair must match a cold sampled build
// over the identical pivot set.
func TestDistMapSampledUnderChurn(t *testing.T) {
	var dm *DistMap
	replayChurnEpochs(t, "glp", 5, 10, func(prev, next *graph.Snapshot, d *graph.Delta) {
		if dm == nil {
			dm = NewDistMapSampled(prev, rng.New(17), 20, 2)
			return
		}
		dm.Refresh(next, d, 4)
		cold := NewDistMap(next, dm.Sources(), 1)
		requireDistMapEqual(t, "sampled-churn", dm, cold)
	})
}

// TestRefreshKernelsUnderChurnFamilies drives the structural kernels —
// triangles, degree histogram, k-core — through the family × seed
// churn matrix, pinning each against its full recompute.
func TestRefreshKernelsUnderChurnFamilies(t *testing.T) {
	for _, fam := range []string{"ba", "glp", "pfp", "er"} {
		for seed := uint64(1); seed <= 2; seed++ {
			var (
				tri  []int
				hist []int
				core KCoreResult
				init bool
			)
			replayChurnEpochs(t, fam, seed, 12, func(prev, next *graph.Snapshot, d *graph.Delta) {
				if !init {
					tri = TrianglesPerNodeFrozen(prev)
					hist = DegreeHistogramFrozen(prev)
					core = KCoreFrozen(prev)
					init = true
				}
				tri = RefreshTriangles(prev, next, d, tri)
				if want := TrianglesPerNodeFrozen(next); !reflect.DeepEqual(tri, want) {
					t.Fatalf("%s/%d: churned triangles diverged", fam, seed)
				}
				hist = RefreshDegreeHistogram(prev, next, d, hist)
				if want := DegreeHistogramFrozen(next); !reflect.DeepEqual(hist, want) {
					t.Fatalf("%s/%d: churned histogram diverged", fam, seed)
				}
				core = RefreshKCore(prev, next, d, core)
				if want := KCoreFrozen(next); !reflect.DeepEqual(core, want) {
					t.Fatalf("%s/%d: churned k-core diverged", fam, seed)
				}
			})
		}
	}
}
