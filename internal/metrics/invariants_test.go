package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// TestMetricInvariantsOnRandomGraphs checks, over a family of random
// graphs, the inequalities and normalizations that hold for every
// undirected simple graph — the cross-metric consistency that catches
// subtle counting bugs no example-based test would.
func TestMetricInvariantsOnRandomGraphs(t *testing.T) {
	r := rng.New(2024)
	prop := func(seed uint16, nRaw, pRaw uint8) bool {
		r.Seed(uint64(seed))
		n := 10 + int(nRaw)%60
		p := 0.02 + float64(pRaw%100)/400
		g := randomGraph(r, n, p)

		// Clustering coefficients live in [0,1].
		for _, c := range LocalClustering(g) {
			if c < 0 || c > 1 {
				return false
			}
		}
		if tr := Transitivity(g); tr < 0 || tr > 1 {
			return false
		}

		// Coreness is bounded by degree, and the max-core subgraph is
		// non-empty whenever an edge exists.
		kc := KCore(g)
		for u, c := range kc.Coreness {
			if c > g.Degree(u) || c < 0 {
				return false
			}
		}
		if g.M() > 0 && kc.MaxCore < 1 {
			return false
		}

		// Normalized betweenness lies in [0,1]; endpoints excluded means
		// the sum over nodes is bounded by N·(avg internal pairs) — check
		// only the range here.
		for _, b := range Betweenness(g) {
			if b < -1e-12 || b > 1+1e-12 {
				return false
			}
		}

		// Triangle identities: Σ_u T(u) = 3·C3, and the cycle counter
		// agrees with the per-node counter.
		tri := TrianglesPerNode(g)
		sum := 0
		for _, ti := range tri {
			sum += ti
		}
		cc := CountCycles(g)
		if int64(sum) != 3*cc.C3 {
			return false
		}

		// Degree moments vs handshake lemma.
		k1, k2 := DegreeMoments(g)
		if math.Abs(k1-g.AvgDegree()) > 1e-9 {
			return false
		}
		if k2 < k1*k1-1e-9 { // Jensen
			return false
		}

		// Rich-club φ within [0,1], club sizes monotone.
		prevN := g.N() + 1
		for _, pt := range RichClub(g) {
			if pt.Phi < 0 || pt.Phi > 1 || pt.N >= prevN {
				return false
			}
			prevN = pt.N
		}

		// knn values bounded by max degree.
		maxDeg := float64(g.MaxDegree())
		for _, v := range Knn(g) {
			if v < 0 || v > maxDeg+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPathAndEccentricityConsistency: the diameter from PathLengths
// equals the max eccentricity; average distance is at least 1 on any
// connected graph with an edge.
func TestPathAndEccentricityConsistency(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(r, 60, 0.08)
		giant, _ := g.GiantComponent()
		if giant.N() < 2 {
			continue
		}
		ps, err := PathLengths(giant, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		maxEcc := 0
		for u := 0; u < giant.N(); u++ {
			if e := Eccentricity(giant, u); e > maxEcc {
				maxEcc = e
			}
		}
		if ps.Diameter != maxEcc {
			t.Fatalf("diameter %d != max eccentricity %d", ps.Diameter, maxEcc)
		}
		if ps.Avg < 1 {
			t.Fatalf("average distance %v below 1", ps.Avg)
		}
	}
}

// TestClosenessBetweennessHubAgreement: on a hub-dominated graph the
// hub must top both centrality rankings.
func TestClosenessBetweennessHubAgreement(t *testing.T) {
	g := graph.New(30)
	for i := 1; i < 30; i++ {
		g.MustAddEdge(0, i)
	}
	// a few peripheral edges
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 4)
	bc := Betweenness(g)
	cl := Closeness(g)
	for u := 1; u < 30; u++ {
		if bc[u] >= bc[0] || cl[u] >= cl[0] {
			t.Fatalf("hub not most central: node %d bc %v vs %v, cl %v vs %v",
				u, bc[u], bc[0], cl[u], cl[0])
		}
	}
}
