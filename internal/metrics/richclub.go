package metrics

import (
	"sort"

	"netmodel/internal/graph"
)

// RichClubPoint is the rich-club connectivity at one degree threshold.
type RichClubPoint struct {
	K   int     // degree threshold
	N   int     // number of nodes with degree > K
	E   int     // simple edges among them
	Phi float64 // 2E / (N(N-1))
}

// RichClub returns φ(k) = 2E_{>k} / (N_{>k}(N_{>k}−1)) for every degree
// threshold k at which the club membership changes, sorted by k
// ascending. φ approaching 1 at high thresholds is the "rich-club
// phenomenon" of the AS-level Internet (Zhou-Mondragón 2004): top-degree
// ASs form a near-clique.
//
// Cost is O(M + N log N): nodes are added in descending degree order
// while edge counts into the current club are accumulated incrementally.
func RichClub(g *graph.Graph) []RichClubPoint {
	n := g.N()
	if n < 2 {
		return nil
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := g.Degree(order[a]), g.Degree(order[b])
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})
	inClub := make([]bool, n)
	edges := 0
	var out []RichClubPoint
	for idx := 0; idx < n; {
		d := g.Degree(order[idx])
		// Add every node of this degree; the club then contains all nodes
		// with degree >= d, i.e. degree > d-1.
		for idx < n && g.Degree(order[idx]) == d {
			u := order[idx]
			g.Neighbors(u, func(v, _ int) bool {
				if inClub[v] {
					edges++
				}
				return true
			})
			inClub[u] = true
			idx++
		}
		if d == 0 {
			break
		}
		club := idx
		p := RichClubPoint{K: d - 1, N: club, E: edges}
		if club >= 2 {
			p.Phi = 2 * float64(edges) / (float64(club) * float64(club-1))
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}
