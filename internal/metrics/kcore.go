package metrics

import (
	"netmodel/internal/graph"
)

// KCoreResult holds the k-core decomposition of a graph.
type KCoreResult struct {
	Coreness []int // shell index of each node
	MaxCore  int   // the coreness of the innermost shell (the "coreness" of the map)
}

// KCore computes the k-core decomposition with the Batagelj-Zaversnik
// bucket algorithm, O(M). The coreness of node u is the largest k such
// that u belongs to a maximal subgraph of minimum degree k. The
// decomposition exposes the Internet's hierarchical shell structure
// (LANET-VI style analyses).
func KCore(g *graph.Graph) KCoreResult {
	n := g.N()
	res := KCoreResult{Coreness: make([]int, n)}
	if n == 0 {
		return res
	}
	deg := make([]int, n)
	maxDeg := 0
	for u := 0; u < n; u++ {
		deg[u] = g.Degree(u)
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// Bucket sort nodes by degree.
	binStart := make([]int, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for i := 1; i < len(binStart); i++ {
		binStart[i] += binStart[i-1]
	}
	pos := make([]int, n)  // position of node in vert
	vert := make([]int, n) // nodes sorted by current degree
	fill := make([]int, maxDeg+1)
	copy(fill, binStart[:maxDeg+1])
	for u := 0; u < n; u++ {
		pos[u] = fill[deg[u]]
		vert[pos[u]] = u
		fill[deg[u]]++
	}
	bin := make([]int, maxDeg+1)
	copy(bin, binStart[:maxDeg+1])

	cur := make([]int, n)
	copy(cur, deg)
	for i := 0; i < n; i++ {
		v := vert[i]
		res.Coreness[v] = cur[v]
		if cur[v] > res.MaxCore {
			res.MaxCore = cur[v]
		}
		g.Neighbors(v, func(u, w int) bool {
			if cur[u] > cur[v] {
				du := cur[u]
				pu := pos[u]
				pw := bin[du] // first node of the du-bucket
				nw := vert[pw]
				if u != nw {
					vert[pu], vert[pw] = nw, u
					pos[u], pos[nw] = pw, pu
				}
				bin[du]++
				cur[u]--
			}
			return true
		})
	}
	return res
}

// ShellSizes returns the number of nodes in each k-shell, indexed by
// shell number 0..MaxCore.
func (r KCoreResult) ShellSizes() []int {
	out := make([]int, r.MaxCore+1)
	for _, c := range r.Coreness {
		out[c]++
	}
	return out
}

// CoreSizes returns the number of nodes in each k-core (the cumulative
// shells from k upward), indexed by k in 0..MaxCore.
func (r KCoreResult) CoreSizes() []int {
	shells := r.ShellSizes()
	out := make([]int, len(shells))
	cum := 0
	for k := len(shells) - 1; k >= 0; k-- {
		cum += shells[k]
		out[k] = cum
	}
	return out
}
