package metrics

import (
	"errors"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// BFS returns the hop distance from src to every node, with -1 for
// unreachable nodes.
func BFS(g *graph.Graph, src int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.N() {
		return dist
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		g.Neighbors(u, func(v, w int) bool {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
			return true
		})
	}
	return dist
}

// PathStats summarizes shortest-path structure.
type PathStats struct {
	Distribution map[int]float64 // P(d): fraction of reachable ordered pairs at distance d >= 1
	Avg          float64         // mean distance over reachable pairs
	Diameter     int             // maximum observed distance
	Sources      int             // number of BFS sources used
}

// PathLengths measures shortest-path statistics by BFS from every node
// (sources <= 0 or >= N) or from a uniform sample of `sources` nodes.
// Sampling makes the N² cost tractable on large maps; the distribution
// estimate is unbiased for connected graphs.
func PathLengths(g *graph.Graph, r *rng.Rand, sources int) (PathStats, error) {
	n := g.N()
	if n == 0 {
		return PathStats{}, errors.New("metrics: empty graph")
	}
	var srcs []int
	if sources <= 0 || sources >= n {
		srcs = make([]int, n)
		for i := range srcs {
			srcs[i] = i
		}
	} else {
		if r == nil {
			return PathStats{}, errors.New("metrics: sampling requires a generator")
		}
		perm := r.Perm(n)
		srcs = perm[:sources]
	}
	counts := make(map[int]int)
	total := 0
	sum := 0.0
	diam := 0
	for _, s := range srcs {
		dist := BFS(g, s)
		for v, d := range dist {
			if v == s || d <= 0 {
				continue
			}
			counts[d]++
			total++
			sum += float64(d)
			if d > diam {
				diam = d
			}
		}
	}
	st := PathStats{Distribution: make(map[int]float64, len(counts)), Diameter: diam, Sources: len(srcs)}
	if total > 0 {
		st.Avg = sum / float64(total)
		for d, c := range counts {
			st.Distribution[d] = float64(c) / float64(total)
		}
	}
	return st, nil
}

// Eccentricity returns the maximum BFS distance from u to any reachable
// node, or 0 when u reaches nothing.
func Eccentricity(g *graph.Graph, u int) int {
	max := 0
	for _, d := range BFS(g, u) {
		if d > max {
			max = d
		}
	}
	return max
}
