package metrics

import (
	"netmodel/internal/graph"
)

// CycleCounts holds the exact number of simple cycles of length 3, 4 and
// 5 in a graph — the N_h(N) quantities whose scaling with system size
// characterizes AS maps (Bianconi-Caldarelli-Capocci 2005).
type CycleCounts struct {
	C3, C4, C5 int64
}

// CountCycles counts 3-, 4- and 5-cycles exactly.
//
// C3 comes from per-node triangle counts. C4 uses the codegree identity
// C4 = ¼ Σ_{i≠j} C(codeg(i,j), 2). C5 uses the trace identity
//
//	C5 = (tr A⁵ − 5 tr A³ − 5 Σ_i (d_i−2)(A³)_ii) / 10
//
// with tr A⁵ evaluated node by node as (A²e_i)ᵀA(A²e_i), (A³)_ii = 2T(i)
// and tr A³ = 6·C3. The cost is dominated by the A² rows of the hubs,
// O(Σ_i Σ_{j∈N(i)} d_j) and worse for tr A⁵; exact counting is intended
// for maps up to a few thousand nodes (the scaling-experiment regime).
func CountCycles(g *graph.Graph) CycleCounts {
	var out CycleCounts
	n := g.N()
	if n < 3 {
		return out
	}
	tri := TrianglesPerNode(g)
	var totalT int64
	for _, t := range tri {
		totalT += int64(t)
	}
	out.C3 = totalT / 3

	// C4 via codegree: for each node i, count 2-paths i→j.
	cnt := make([]int64, n)
	touched := make([]int, 0, 256)
	var ordered4 int64 // Σ_i Σ_{j≠i} C(codeg(i,j),2)
	for i := 0; i < n; i++ {
		touched = touched[:0]
		g.Neighbors(i, func(j, _ int) bool {
			g.Neighbors(j, func(k, _ int) bool {
				if k != i {
					if cnt[k] == 0 {
						touched = append(touched, k)
					}
					cnt[k]++
				}
				return true
			})
			return true
		})
		for _, k := range touched {
			c := cnt[k]
			ordered4 += c * (c - 1) / 2
			cnt[k] = 0
		}
	}
	out.C4 = ordered4 / 4

	if n < 5 {
		return out
	}
	// C5 via the trace identity.
	var trA5 int64
	for i := 0; i < n; i++ {
		touched = touched[:0]
		g.Neighbors(i, func(j, _ int) bool {
			g.Neighbors(j, func(k, _ int) bool {
				if cnt[k] == 0 {
					touched = append(touched, k)
				}
				cnt[k]++
				return true
			})
			return true
		})
		// xᵀAx over the support of x.
		var quad int64
		for _, u := range touched {
			cu := cnt[u]
			g.Neighbors(u, func(v, _ int) bool {
				if cv := cnt[v]; cv != 0 {
					quad += cu * cv
				}
				return true
			})
		}
		trA5 += quad
		for _, u := range touched {
			cnt[u] = 0
		}
	}
	var corr int64 // Σ_i (d_i − 2)·(A³)_ii with (A³)_ii = 2T(i)
	for i, t := range tri {
		corr += int64(g.Degree(i)-2) * 2 * int64(t)
	}
	trA3 := 6 * out.C3
	out.C5 = (trA5 - 5*trA3 - 5*corr) / 10
	return out
}
