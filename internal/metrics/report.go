package metrics

import (
	"netmodel/internal/graph"
	"netmodel/internal/rng"
	"netmodel/internal/stats"
)

// Snapshot is the full metric vector of a topology — the set of numbers
// the validation literature compares between synthetic and measured
// maps. Expensive measures (betweenness, cycles) are computed on demand
// by their own functions and are not part of the snapshot.
type Snapshot struct {
	N, M          int
	AvgDegree     float64
	MaxDegree     int
	Gamma         float64 // power-law exponent of the degree tail (MLE), 0 if no fit
	GammaKS       float64 // KS distance of the tail fit
	AvgClustering float64
	Transitivity  float64
	Assortativity float64
	AvgPathLen    float64
	Diameter      int
	MaxCore       int
	GiantFrac     float64 // fraction of nodes in the giant component
}

// Measure computes a Snapshot. Path statistics use BFS sampling with the
// given number of sources (0 = all nodes); pass a generator when
// sampling. Path and core statistics are measured on the giant
// component, matching how published AS-map numbers are reported.
func Measure(g *graph.Graph, r *rng.Rand, pathSources int) (Snapshot, error) {
	s := Snapshot{
		N:         g.N(),
		M:         g.M(),
		AvgDegree: g.AvgDegree(),
		MaxDegree: g.MaxDegree(),
	}
	if g.N() == 0 {
		s.GiantFrac = 1
		return s, nil
	}
	if fit, err := stats.FitPowerLawDiscrete(DegreesAsFloats(g)); err == nil {
		s.Gamma = fit.Alpha
		s.GammaKS = fit.KS
	}
	s.AvgClustering = AvgClustering(g)
	s.Transitivity = Transitivity(g)
	s.Assortativity = Assortativity(g)

	giant, _ := g.GiantComponent()
	s.GiantFrac = float64(giant.N()) / float64(g.N())
	if giant.N() > 1 {
		ps, err := PathLengths(giant, r, pathSources)
		if err != nil {
			return s, err
		}
		s.AvgPathLen = ps.Avg
		s.Diameter = ps.Diameter
	}
	s.MaxCore = KCore(g).MaxCore
	return s, nil
}
