package metrics

import (
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// Closeness returns the closeness centrality of every node: the number
// of reachable nodes divided by the sum of distances to them (0 for
// isolated nodes). The harmonic variant below is preferred on
// disconnected maps; the classic form is kept because the AS map is
// effectively one component and the literature reports it.
func Closeness(g *graph.Graph) []float64 {
	n := g.N()
	out := make([]float64, n)
	for u := 0; u < n; u++ {
		sum, reach := 0, 0
		for _, d := range BFS(g, u) {
			if d > 0 {
				sum += d
				reach++
			}
		}
		if sum > 0 {
			// Wasserman-Faust correction keeps scores comparable across
			// components of different sizes.
			out[u] = float64(reach) / float64(sum) * float64(reach) / float64(n-1)
		}
	}
	return out
}

// HarmonicCloseness returns Σ_v 1/d(u,v) / (N-1) per node, well defined
// on disconnected graphs.
func HarmonicCloseness(g *graph.Graph) []float64 {
	n := g.N()
	out := make([]float64, n)
	if n < 2 {
		return out
	}
	for u := 0; u < n; u++ {
		sum := 0.0
		for _, d := range BFS(g, u) {
			if d > 0 {
				sum += 1 / float64(d)
			}
		}
		out[u] = sum / float64(n-1)
	}
	return out
}

// RichClubNormalized returns φ(k)/φ_rand(k): the rich-club coefficient
// divided by its value on a degree-preserving randomization of the same
// graph (Colizza-Flammini-Serrano-Vespignani 2006). Values above 1 mean
// the club is denser than its degree sequence forces it to be — raw
// φ(k) grows mechanically with k even in random graphs, so only the
// normalized curve identifies a genuine rich-club *phenomenon*. The
// null model uses nswaps ≈ 10·M double edge swaps.
func RichClubNormalized(g *graph.Graph, r *rng.Rand) ([]RichClubPoint, error) {
	null := g.Copy()
	if _, err := graph.DoubleEdgeSwap(null, r, 10*g.M()); err != nil {
		return nil, err
	}
	real := RichClub(g)
	rand := RichClub(null)
	randAt := make(map[int]float64, len(rand))
	for _, p := range rand {
		randAt[p.K] = p.Phi
	}
	// Thresholds may differ slightly between graph and null (degrees are
	// identical, so they normally coincide); missing thresholds keep the
	// raw value.
	out := make([]RichClubPoint, len(real))
	copy(out, real)
	for i := range out {
		if phi, ok := randAt[out[i].K]; ok && phi > 0 {
			out[i].Phi = out[i].Phi / phi
		}
	}
	return out, nil
}
