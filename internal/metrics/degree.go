// Package metrics implements the measurement toolkit of the Internet
// topology literature: degree distributions and correlations, clustering
// spectra, betweenness centrality, k-core decomposition, rich-club
// connectivity, short-cycle counts and shortest-path statistics.
//
// All measures treat the graph as simple (multiplicities are ignored)
// unless explicitly stated: the published AS-map statistics are defined
// on the simple adjacency structure, with bandwidth analyzed separately
// through node strengths.
package metrics

import (
	"math"
	"sort"

	"netmodel/internal/graph"
)

// DegreeDistribution returns P(k), the fraction of nodes with each
// occurring topological degree, keyed by degree.
func DegreeDistribution(g *graph.Graph) map[int]float64 {
	out := make(map[int]float64)
	n := g.N()
	if n == 0 {
		return out
	}
	for u := 0; u < n; u++ {
		out[g.Degree(u)]++
	}
	for k := range out {
		out[k] /= float64(n)
	}
	return out
}

// DegreeCCDF returns the cumulative degree distribution
// Pc(k) = Σ_{k' >= k} P(k') as (k, Pc) pairs sorted by k. This is the
// curve plotted in every AS-map degree figure.
func DegreeCCDF(g *graph.Graph) (ks []int, pc []float64) {
	dist := DegreeDistribution(g)
	for k := range dist {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	pc = make([]float64, len(ks))
	cum := 0.0
	for i := len(ks) - 1; i >= 0; i-- {
		cum += dist[ks[i]]
		pc[i] = cum
	}
	return ks, pc
}

// DegreeMoments returns ⟨k⟩ and ⟨k²⟩ of the degree sequence.
func DegreeMoments(g *graph.Graph) (k1, k2 float64) {
	n := g.N()
	if n == 0 {
		return 0, 0
	}
	for u := 0; u < n; u++ {
		d := float64(g.Degree(u))
		k1 += d
		k2 += d * d
	}
	return k1 / float64(n), k2 / float64(n)
}

// DegreesAsFloats returns the degree sequence as float64 for the stats
// package (power-law fitting).
func DegreesAsFloats(g *graph.Graph) []float64 {
	out := make([]float64, g.N())
	for u := range out {
		out[u] = float64(g.Degree(u))
	}
	return out
}

// StrengthsAsFloats returns the node strengths (bandwidths) as float64.
func StrengthsAsFloats(g *graph.Graph) []float64 {
	out := make([]float64, g.N())
	for u := range out {
		out[u] = float64(g.Strength(u))
	}
	return out
}

// Knn returns the average nearest-neighbor degree spectrum k̄nn(k): for
// each occurring degree k, the mean over nodes of degree k of the mean
// degree of their neighbors. A decreasing spectrum is the signature of
// the Internet's disassortativity (Pastor-Satorras et al. 2001).
func Knn(g *graph.Graph) map[int]float64 {
	sum := make(map[int]float64)
	cnt := make(map[int]int)
	for u := 0; u < g.N(); u++ {
		k := g.Degree(u)
		if k == 0 {
			continue
		}
		nsum := 0.0
		g.Neighbors(u, func(v, w int) bool {
			nsum += float64(g.Degree(v))
			return true
		})
		sum[k] += nsum / float64(k)
		cnt[k]++
	}
	out := make(map[int]float64, len(sum))
	for k, s := range sum {
		out[k] = s / float64(cnt[k])
	}
	return out
}

// KnnNormalized returns k̄nn(k)·⟨k⟩/⟨k²⟩, the normalization under which
// an uncorrelated network is flat at 1.
func KnnNormalized(g *graph.Graph) map[int]float64 {
	k1, k2 := DegreeMoments(g)
	if k2 == 0 {
		return map[int]float64{}
	}
	knn := Knn(g)
	out := make(map[int]float64, len(knn))
	for k, v := range knn {
		out[k] = v * k1 / k2
	}
	return out
}

// Assortativity returns the Pearson degree-degree correlation coefficient
// over edges (Newman's r). Negative values mean disassortative mixing;
// the AS-level Internet measures r ≈ -0.19. It returns 0 for graphs with
// fewer than 2 edges or zero variance.
func Assortativity(g *graph.Graph) float64 {
	var n, sx, sy, sxx, syy, sxy float64
	g.Edges(func(u, v, w int) bool {
		// Count each edge in both orientations so r is symmetric.
		du, dv := float64(g.Degree(u)), float64(g.Degree(v))
		for _, p := range [2][2]float64{{du, dv}, {dv, du}} {
			n++
			sx += p[0]
			sy += p[1]
			sxx += p[0] * p[0]
			syy += p[1] * p[1]
			sxy += p[0] * p[1]
		}
		return true
	})
	if n < 2 {
		return 0
	}
	num := sxy/n - (sx/n)*(sy/n)
	den := math.Sqrt((sxx/n - (sx/n)*(sx/n)) * (syy/n - (sy/n)*(sy/n)))
	if den == 0 {
		return 0
	}
	return num / den
}

// DegreeStrengthPairs returns (k_i, b_i) for every node with k_i > 0,
// used to verify the k ∝ b^μ scaling between topological degree and
// bandwidth in weighted models.
func DegreeStrengthPairs(g *graph.Graph) (ks, bs []float64) {
	for u := 0; u < g.N(); u++ {
		k := g.Degree(u)
		if k == 0 {
			continue
		}
		ks = append(ks, float64(k))
		bs = append(bs, float64(g.Strength(u)))
	}
	return ks, bs
}
