package metrics

import (
	"testing"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// bruteCoreness computes coreness by iterated peeling.
func bruteCoreness(g *graph.Graph) []int {
	n := g.N()
	core := make([]int, n)
	removed := make([]bool, n)
	deg := make([]int, n)
	for u := 0; u < n; u++ {
		deg[u] = g.Degree(u)
	}
	for k := 0; ; k++ {
		changed := true
		for changed {
			changed = false
			for u := 0; u < n; u++ {
				if !removed[u] && deg[u] <= k {
					removed[u] = true
					core[u] = k
					changed = true
					g.Neighbors(u, func(v, _ int) bool {
						if !removed[v] {
							deg[v]--
						}
						return true
					})
				}
			}
		}
		done := true
		for u := 0; u < n; u++ {
			if !removed[u] {
				done = false
				break
			}
		}
		if done {
			return core
		}
	}
}

func TestKCoreComplete(t *testing.T) {
	res := KCore(complete(6))
	for u, c := range res.Coreness {
		if c != 5 {
			t.Fatalf("K6 coreness[%d] = %d, want 5", u, c)
		}
	}
	if res.MaxCore != 5 {
		t.Fatalf("MaxCore = %d", res.MaxCore)
	}
}

func TestKCoreTree(t *testing.T) {
	res := KCore(path(10))
	for u, c := range res.Coreness {
		if c != 1 {
			t.Fatalf("path coreness[%d] = %d, want 1", u, c)
		}
	}
}

func TestKCoreMixed(t *testing.T) {
	// K4 with a pendant chain: chain nodes have coreness 1, clique 3.
	g := graph.New(6)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.MustAddEdge(i, j)
		}
	}
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 5)
	res := KCore(g)
	want := []int{3, 3, 3, 3, 1, 1}
	for u := range want {
		if res.Coreness[u] != want[u] {
			t.Fatalf("coreness = %v, want %v", res.Coreness, want)
		}
	}
}

func TestKCoreMatchesBruteForce(t *testing.T) {
	r := rng.New(31)
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(r, 60, 0.08)
		got := KCore(g).Coreness
		want := bruteCoreness(g)
		for u := range want {
			if got[u] != want[u] {
				t.Fatalf("trial %d node %d: coreness %d, brute %d", trial, u, got[u], want[u])
			}
		}
	}
}

func TestKCoreEmptyAndIsolated(t *testing.T) {
	res := KCore(graph.New(0))
	if res.MaxCore != 0 || len(res.Coreness) != 0 {
		t.Fatal("empty graph should decompose trivially")
	}
	res = KCore(graph.New(5))
	for _, c := range res.Coreness {
		if c != 0 {
			t.Fatal("isolated nodes must have coreness 0")
		}
	}
}

func TestShellAndCoreSizes(t *testing.T) {
	g := graph.New(6)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.MustAddEdge(i, j)
		}
	}
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 5)
	res := KCore(g)
	shells := res.ShellSizes()
	if shells[1] != 2 || shells[3] != 4 {
		t.Fatalf("shells = %v", shells)
	}
	cores := res.CoreSizes()
	if cores[0] != 6 || cores[1] != 6 || cores[3] != 4 {
		t.Fatalf("cores = %v", cores)
	}
	if cores[2] != 4 {
		t.Fatalf("2-core size = %d, want 4", cores[2])
	}
}
