package metrics

import (
	"math"
	"testing"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

func TestTrianglesComplete(t *testing.T) {
	g := complete(5)
	tri := TrianglesPerNode(g)
	for u, ti := range tri {
		if ti != 6 { // C(4,2) triangles through each node of K5
			t.Fatalf("T(%d) = %d, want 6", u, ti)
		}
	}
	if total := TotalTriangles(g); total != 10 {
		t.Fatalf("K5 triangles = %d, want 10", total)
	}
}

func TestTrianglesTriangleWithTail(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(2, 3)
	tri := TrianglesPerNode(g)
	want := []int{1, 1, 1, 0}
	for u := range want {
		if tri[u] != want[u] {
			t.Fatalf("T = %v, want %v", tri, want)
		}
	}
}

func TestTrianglesIgnoreMultiplicity(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	if total := TotalTriangles(g); total != 1 {
		t.Fatalf("triangles = %d, want 1 (multiplicity must not matter)", total)
	}
}

// bruteTriangles counts triangles by full enumeration.
func bruteTriangles(g *graph.Graph) int {
	n := g.N()
	c := 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if !g.HasEdge(i, j) {
				continue
			}
			for k := j + 1; k < n; k++ {
				if g.HasEdge(i, k) && g.HasEdge(j, k) {
					c++
				}
			}
		}
	}
	return c
}

func TestTrianglesMatchBruteForce(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(r, 40, 0.15)
		if got, want := TotalTriangles(g), bruteTriangles(g); got != want {
			t.Fatalf("trial %d: triangles = %d, brute force = %d", trial, got, want)
		}
	}
}

func TestLocalClusteringComplete(t *testing.T) {
	c := LocalClustering(complete(6))
	for u, cu := range c {
		if math.Abs(cu-1) > 1e-12 {
			t.Fatalf("c(%d) = %v, want 1", u, cu)
		}
	}
}

func TestLocalClusteringPath(t *testing.T) {
	c := LocalClustering(path(5))
	for u, cu := range c {
		if cu != 0 {
			t.Fatalf("c(%d) = %v on a path, want 0", u, cu)
		}
	}
}

func TestAvgClusteringSkipsLowDegree(t *testing.T) {
	// Triangle plus isolated pendant: average should be over the three
	// triangle nodes only.
	g := graph.New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(3, 4)
	if avg := AvgClustering(g); math.Abs(avg-1) > 1e-12 {
		t.Fatalf("avg clustering = %v, want 1 (degree-1 nodes excluded)", avg)
	}
}

func TestTransitivityKnown(t *testing.T) {
	if tr := Transitivity(complete(4)); math.Abs(tr-1) > 1e-12 {
		t.Fatalf("K4 transitivity = %v, want 1", tr)
	}
	if tr := Transitivity(star(10)); tr != 0 {
		t.Fatalf("star transitivity = %v, want 0", tr)
	}
	// Triangle with tail: 1 triangle, triples: deg 2,2,3,1 ->
	// 1+1+3+0 = 5 triples, transitivity 3/5.
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(2, 3)
	if tr := Transitivity(g); math.Abs(tr-0.6) > 1e-12 {
		t.Fatalf("transitivity = %v, want 0.6", tr)
	}
}

func TestClusteringSpectrum(t *testing.T) {
	// Triangle with tail: nodes of degree 2 have c=1, node of degree 3
	// has c = 1/3.
	g := graph.New(4)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(2, 3)
	spec := ClusteringSpectrum(g)
	if math.Abs(spec[2]-1) > 1e-12 {
		t.Fatalf("c(k=2) = %v, want 1", spec[2])
	}
	if math.Abs(spec[3]-1.0/3) > 1e-12 {
		t.Fatalf("c(k=3) = %v, want 1/3", spec[3])
	}
	if _, ok := spec[1]; ok {
		t.Fatal("degree-1 nodes must not appear in the spectrum")
	}
}

func TestERClusteringMatchesP(t *testing.T) {
	// For G(n,p), expected clustering is p.
	g := randomGraph(rng.New(13), 800, 0.02)
	avg := AvgClustering(g)
	if math.Abs(avg-0.02) > 0.01 {
		t.Fatalf("ER clustering = %v, want ~0.02", avg)
	}
}
