package metrics

import (
	"netmodel/internal/graph"
	"netmodel/internal/par"
	"netmodel/internal/rng"
)

// This file is the incremental distance engine: a dynamic-BFS structure
// (DistMap) that owns per-source distance vectors and repairs them
// under the edges of a snapshot delta instead of re-running BFS per
// epoch. Growth deltas only ever shrink distances, so each inserted
// edge seeds a shrink-only relaxation wave processed level by level;
// the wave touches exactly the nodes whose distance changed, making
// the repair cost proportional to the delta's impact rather than n+m.
// Mixed deltas (failure epochs remove arcs too) take RelaxDelta, which
// first isolates the nodes whose every shortest-path support chain
// died, re-settles them from the surviving boundary, then runs the
// same shrink wave. Like RefreshKCore, every repair carries a work
// budget and falls back to a full per-source rebuild when the touched
// region rivals a cold BFS — the result is always exactly the cold
// build.
//
// On top of the repaired rows the DistMap maintains integer aggregates
// (the global path histogram plus per-node reach/distance-sum columns),
// so the per-epoch derivations RefreshPathLengths and RefreshCloseness
// are O(n) reductions with no traversal at all, and
// RefreshBetweennessSampled re-runs only the dependency passes over
// already-correct distance rows in a canonical (distance, id) order
// that makes refreshed and cold results bit-identical at every worker
// count.

// DistChange records one node touched by RelaxInserted: the node id and
// its distance before the repair (-1 for previously unreachable). The
// repaired value is read from the distance array itself. Restoring Old
// into dist for every change rolls the repair back exactly — each node
// appears at most once, stamped at first touch.
type DistChange struct {
	Node, Old int32
}

// DistScratch is the reusable per-worker state of RelaxInserted and
// RelaxDelta: a round-stamped touch set, the level buckets of the
// relaxation waves, a candidate-dedupe set for the removal phase, and
// a BFS queue for rebuild fallbacks.
type DistScratch struct {
	stamp   []int32
	round   int32
	buckets [][]int32
	queue   []int32
	mark    []int32
	mround  int32
	bfs     *BFSScratch
	// changes is the arena the relaxation kernels report into: each
	// RelaxInserted/RelaxDelta call appends its DistChange records here
	// and returns the subslice it wrote, so a warm scratch repairs
	// without allocating. Subslices stay valid when a later call grows
	// the arena (the old backing array survives under them); Reset
	// truncates it once per refresh pass, after every retained subslice
	// has been consumed.
	changes []DistChange
}

// NewDistScratch allocates scratch for an n-node snapshot; ensure grows
// it as the trajectory adds nodes.
func NewDistScratch(n int) *DistScratch {
	return &DistScratch{stamp: make([]int32, n), queue: make([]int32, n), mark: make([]int32, n),
		bfs: NewBFSScratch(n)}
}

// BFS returns the scratch's hybrid-BFS state, for callers sharing the
// scratch (routing-tree repair) that fall back to cold traversals.
func (sc *DistScratch) BFS() *BFSScratch {
	if sc.bfs == nil {
		sc.bfs = NewBFSScratch(0)
	}
	return sc.bfs
}

// Reset truncates the change arena. Call it once per refresh pass,
// before the pass's first repair — never between a repair and the
// consumption of its returned changes, which alias the arena.
func (sc *DistScratch) Reset() { sc.changes = sc.changes[:0] }

func (sc *DistScratch) ensure(n int) {
	if len(sc.stamp) < n {
		sc.stamp = append(sc.stamp, make([]int32, n-len(sc.stamp))...)
	}
	if len(sc.queue) < n {
		sc.queue = append(sc.queue, make([]int32, n-len(sc.queue))...)
	}
	if len(sc.mark) < n {
		sc.mark = append(sc.mark, make([]int32, n-len(sc.mark))...)
	}
}

// Queue returns the scratch's BFS queue, at least n long after an
// ensure; exposed so callers sharing the scratch (routing-tree repair)
// can run BFSFrozen fallbacks without a second allocation.
func (sc *DistScratch) Queue(n int) []int32 {
	sc.ensure(n)
	return sc.queue
}

// RelaxInserted repairs one source's distance vector under the
// insertions of a growth delta. dist must hold the exact hop distances
// on the delta's base snapshot, grown to next.N() entries with -1 for
// the new nodes; ins is the delta's edge list (non-insertions are
// skipped). Each insertion whose endpoints' distances disagree by more
// than one seeds a shrink-only relaxation, and the wave is processed in
// ascending distance order, so every touched node settles at its exact
// distance on next — the final vector equals a cold BFSFrozen run.
//
// budget caps the neighbor-row scans of the wave. When exceeded,
// RelaxInserted abandons the repair and returns ok == false with the
// changes recorded so far; the caller must restore their Old values and
// rebuild from scratch. Changes are reported one per touched node, in
// first-touch order; the returned slice aliases the scratch's change
// arena and stays valid until the next DistScratch.Reset.
func RelaxInserted(next *graph.Snapshot, ins []graph.DeltaEdge, dist []int32, sc *DistScratch, budget int) (changes []DistChange, ok bool) {
	sc.ensure(len(dist))
	sc.round++
	start := len(sc.changes)
	lo, hi := int32(1<<30), int32(-1)
	relax := func(v, dv int32) {
		if sc.stamp[v] != sc.round {
			sc.stamp[v] = sc.round
			sc.changes = append(sc.changes, DistChange{Node: v, Old: dist[v]})
		}
		dist[v] = dv
		for int(dv) >= len(sc.buckets) {
			sc.buckets = append(sc.buckets, nil)
		}
		sc.buckets[dv] = append(sc.buckets[dv], v)
		if dv < lo {
			lo = dv
		}
		if dv > hi {
			hi = dv
		}
	}
	for _, e := range ins {
		if e.OldW != 0 || e.NewW == 0 {
			continue // removal or multiplicity change: not a new arc
		}
		if du := dist[e.U]; du >= 0 && (dist[e.V] < 0 || dist[e.V] > du+1) {
			relax(e.V, du+1)
		}
		if dv := dist[e.V]; dv >= 0 && (dist[e.U] < 0 || dist[e.U] > dv+1) {
			relax(e.U, dv+1)
		}
	}
	// Process levels in ascending order: relaxations at level d only
	// push level d+1, so when a node is popped at its current distance
	// that distance is final. Entries superseded by a deeper relaxation
	// are skipped stale.
	spent := 0
	for d := lo; d <= hi; d++ {
		bucket := sc.buckets[d]
		for _, v := range bucket {
			if dist[v] != d {
				continue
			}
			row := next.Neighbors(int(v))
			spent += len(row) + 1
			if spent > budget {
				for x := d; x <= hi; x++ {
					sc.buckets[x] = sc.buckets[x][:0]
				}
				return sc.changes[start:], false
			}
			nd := d + 1
			for _, w := range row {
				if dw := dist[w]; dw < 0 || dw > nd {
					relax(w, nd)
				}
			}
		}
		sc.buckets[d] = sc.buckets[d][:0]
	}
	return sc.changes[start:], true
}

// RelaxDelta repairs one source's distance vector under a mixed
// insert+remove delta; pure-insertion deltas delegate to RelaxInserted
// unchanged. dist must hold the exact hop distances on the delta's base
// snapshot, grown to next.N() entries with -1 for new nodes. The repair
// runs in three phases, all scanning next's rows (which already exclude
// the removed arcs):
//
//  1. Affected detection. The deeper endpoint of each removed arc is a
//     candidate, bucketed at its old distance and processed in
//     ascending order, so every verdict one level up is final: a
//     candidate at level d is affected iff no surviving neighbor holds
//     distance d-1 and is itself unaffected. Affected nodes cascade
//     candidacy to their old-level-d+1 neighbors. An unaffected node's
//     value is witnessed by an intact support chain, so it is already
//     exact and is never touched.
//  2. Re-settle. The affected set is re-settled by a multi-source
//     unit-weight bucket Dijkstra seeded from the surviving boundary
//     (tentative distance = min over unaffected neighbors + 1);
//     never-settled nodes become unreachable.
//  3. Shrink wave. The insertion wave of RelaxInserted, seeded from
//     the inserted arcs plus every re-settled node — a node whose new
//     value arrived through an inserted arc must get the chance to
//     relax neighbors that kept their old values.
//
// The final vector equals a cold BFSFrozen run on next. budget caps
// the neighbor-row scans across all phases; on overrun RelaxDelta
// returns ok == false and the caller must restore the recorded Old
// values (the vector holds internal markers until then) and rebuild
// from scratch. Changes are reported one per touched node, stamped at
// first touch with the pre-repair value; the returned slice aliases
// the scratch's change arena and stays valid until the next
// DistScratch.Reset.
func RelaxDelta(next *graph.Snapshot, edges []graph.DeltaEdge, dist []int32, sc *DistScratch, budget int) (changes []DistChange, ok bool) {
	hasRemoval := false
	for _, e := range edges {
		if e.OldW != 0 && e.NewW == 0 {
			hasRemoval = true
			break
		}
	}
	if !hasRemoval {
		return RelaxInserted(next, edges, dist, sc, budget)
	}
	sc.ensure(len(dist))
	sc.round++
	round := sc.round
	start := len(sc.changes)
	touch := func(v int32) {
		if sc.stamp[v] != round {
			sc.stamp[v] = round
			sc.changes = append(sc.changes, DistChange{Node: v, Old: dist[v]})
		}
	}
	abort := func() ([]DistChange, bool) {
		for i := range sc.buckets {
			sc.buckets[i] = sc.buckets[i][:0]
		}
		return sc.changes[start:], false
	}
	lo, hi := int32(1<<30), int32(-1)
	push := func(v, d int32) {
		for int(d) >= len(sc.buckets) {
			sc.buckets = append(sc.buckets, nil)
		}
		sc.buckets[d] = append(sc.buckets[d], v)
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	spent := 0

	// Phase 1: find the affected set. Affected nodes are marked with the
	// in-repair distance -2, which excludes them from later support
	// checks without a second marker array.
	sc.mround++
	mr := sc.mround
	aff := sc.queue[:0]
	cand := func(v int32) {
		if sc.mark[v] == mr || dist[v] <= 0 {
			return
		}
		sc.mark[v] = mr
		push(v, dist[v])
	}
	for _, e := range edges {
		if e.OldW == 0 || e.NewW != 0 {
			continue // insertion or reweight: no arc disappeared
		}
		du, dv := dist[e.U], dist[e.V]
		if du >= 0 && dv == du+1 {
			cand(e.V)
		}
		if dv >= 0 && du == dv+1 {
			cand(e.U)
		}
	}
	for d := lo; d <= hi; d++ {
		for _, v := range sc.buckets[d] {
			row := next.Neighbors(int(v))
			spent += len(row) + 1
			if spent > budget {
				return abort()
			}
			supported := false
			for _, w := range row {
				if dist[w] == d-1 {
					supported = true
					break
				}
			}
			if supported {
				continue
			}
			touch(v)
			dist[v] = -2
			aff = append(aff, v)
			for _, w := range row {
				if dist[w] == d+1 {
					cand(w)
				}
			}
		}
		sc.buckets[d] = sc.buckets[d][:0]
	}

	// Phase 2: re-settle the affected set from the surviving boundary.
	lo, hi = 1<<30, -1
	for _, x := range aff {
		row := next.Neighbors(int(x))
		spent += len(row) + 1
		if spent > budget {
			return abort()
		}
		tent := int32(-1)
		for _, w := range row {
			if dw := dist[w]; dw >= 0 && (tent < 0 || dw+1 < tent) {
				tent = dw + 1
			}
		}
		if tent >= 0 {
			push(x, tent)
		}
	}
	for d := lo; d <= hi; d++ {
		for _, v := range sc.buckets[d] {
			if dist[v] != -2 {
				continue // settled at a lower level; stale entry
			}
			row := next.Neighbors(int(v))
			spent += len(row) + 1
			if spent > budget {
				return abort()
			}
			dist[v] = d
			for _, w := range row {
				if dist[w] == -2 {
					push(w, d+1)
				}
			}
		}
		sc.buckets[d] = sc.buckets[d][:0]
	}

	// Phase 3: the shrink wave, seeded from re-settled nodes and
	// inserted arcs. Never-settled affected nodes become unreachable
	// first so the wave's dw < 0 test treats them like any other
	// unreached node.
	lo, hi = 1<<30, -1
	relax := func(v, dv int32) {
		touch(v)
		dist[v] = dv
		push(v, dv)
	}
	for _, x := range aff {
		if dist[x] == -2 {
			dist[x] = -1
			continue
		}
		push(x, dist[x])
	}
	for _, e := range edges {
		if e.OldW != 0 || e.NewW == 0 {
			continue // removal or multiplicity change: not a new arc
		}
		if du := dist[e.U]; du >= 0 && (dist[e.V] < 0 || dist[e.V] > du+1) {
			relax(e.V, du+1)
		}
		if dv := dist[e.V]; dv >= 0 && (dist[e.U] < 0 || dist[e.U] > dv+1) {
			relax(e.U, dv+1)
		}
	}
	for d := lo; d <= hi; d++ {
		for _, v := range sc.buckets[d] {
			if dist[v] != d {
				continue
			}
			row := next.Neighbors(int(v))
			spent += len(row) + 1
			if spent > budget {
				return abort()
			}
			nd := d + 1
			for _, w := range row {
				if dw := dist[w]; dw < 0 || dw > nd {
					relax(w, nd)
				}
			}
		}
		sc.buckets[d] = sc.buckets[d][:0]
	}
	return sc.changes[start:], true
}

// DistMap owns the per-source BFS distance rows of a snapshot plus the
// integer aggregates derived from them, and repairs both across
// snapshot deltas. Exact mode (nil sources) keeps one row per node and
// reproduces the full-traversal path metrics bit for bit; sampled mode
// keeps a fixed pivot set (PivotSources) and estimates closeness and
// betweenness from the pivot columns, so refresh cost scales with the
// pivot count instead of n.
type DistMap struct {
	s       *graph.Snapshot
	exact   bool
	sources []int32
	dist    [][]int32

	// Aggregates maintained under repair: the global distance histogram
	// over (source, node) pairs, and per node the number of sources
	// reaching it plus the summed distance — by undirected symmetry, in
	// exact mode these are each node's own BFS reach and distance sum.
	hist  PathHistogram
	reach []int32
	sumd  []int64

	// maxScan overrides the repair budget when positive (test hook for
	// forcing the rebuild fallback).
	maxScan int

	// Refresh scratch, persisted across epochs so a steady-state repair
	// allocates nothing: one DistScratch per worker slot, the
	// per-source repair results of the parallel phase, and the repair
	// closure itself — created once, re-reading its per-call parameters
	// (rfDes, rfBudget and the map's own fields) rather than capturing
	// call locals, so no closure literal is allocated per Refresh.
	scratch  []*DistScratch
	repairs  []distRepair
	rfDes    []graph.DeltaEdge
	rfBudget int
	rfBody   func(worker, i int)
}

// distRepair is one source's outcome of a Refresh parallel phase:
// either a wave repair's aggregate patch list, or a rebuilt row — the
// old one to retract (nil for new sources) and the new one to fold in.
type distRepair struct {
	changes []DistChange
	old, nd []int32
}

// NewDistMap builds the distance rows of s from scratch. A nil sources
// slice selects exact mode: one row per node, growing with the graph
// across refreshes. A non-nil slice fixes that pivot set for the life
// of the map (the slice is copied).
func NewDistMap(s *graph.Snapshot, sources []int32, workers int) *DistMap {
	dm := &DistMap{s: s, exact: sources == nil}
	if !dm.exact {
		dm.sources = append([]int32(nil), sources...)
	}
	dm.rebase(workers)
	return dm
}

// NewDistMapSampled builds a DistMap over k uniformly drawn pivot
// sources (exact mode when k <= 0 or k >= s.N(), mirroring the
// PathSources convention).
func NewDistMapSampled(s *graph.Snapshot, r *rng.Rand, k, workers int) *DistMap {
	return NewDistMap(s, PivotSources(r, s.N(), k), workers)
}

// Snapshot returns the snapshot the rows currently describe.
func (dm *DistMap) Snapshot() *graph.Snapshot { return dm.s }

// Exact reports whether the map holds one row per node.
func (dm *DistMap) Exact() bool { return dm.exact }

// SourceCount returns the number of BFS sources maintained.
func (dm *DistMap) SourceCount() int { return len(dm.sources) }

// Sources returns the maintained source ids; the slice aliases the map
// and must not be modified.
func (dm *DistMap) Sources() []int32 { return dm.sources }

// Dist returns source i's distance row; read-only.
func (dm *DistMap) Dist(i int) []int32 { return dm.dist[i] }

// rebase rebuilds every row and aggregate over dm.s from scratch; exact
// mode re-enumerates the sources to cover new nodes.
func (dm *DistMap) rebase(workers int) {
	n := dm.s.N()
	if dm.exact {
		dm.sources = dm.sources[:0]
		for v := 0; v < n; v++ {
			dm.sources = append(dm.sources, int32(v))
		}
	}
	k := len(dm.sources)
	dm.dist = make([][]int32, k)
	w := par.Workers(workers)
	scratch := make([]*BFSScratch, w)
	par.ForEach(k, w, func(worker, i int) {
		if scratch[worker] == nil {
			scratch[worker] = NewBFSScratch(n)
		}
		d := make([]int32, n)
		BFSHybrid(dm.s, int(dm.sources[i]), d, scratch[worker])
		dm.dist[i] = d
	})
	dm.hist = PathHistogram{}
	dm.reach = make([]int32, n)
	dm.sumd = make([]int64, n)
	for i, src := range dm.sources {
		dm.accumulate(src, dm.dist[i], +1)
	}
}

// accumulate folds one source row into (sign > 0) or out of (sign < 0)
// the aggregates, the integer mirror of PathHistogram.AccumulateDistances.
func (dm *DistMap) accumulate(src int32, dist []int32, sign int) {
	for v, d := range dist {
		if int32(v) == src || d <= 0 {
			continue
		}
		if sign > 0 {
			dm.hist.add(d)
			dm.reach[v]++
			dm.sumd[v] += int64(d)
		} else {
			dm.hist.sub(d)
			dm.reach[v]--
			dm.sumd[v] -= int64(d)
		}
	}
}

// add and sub maintain a PathHistogram one distance at a time, with the
// same growth idiom as AccumulateDistances so merged and incremental
// histograms are interchangeable.
func (h *PathHistogram) add(d int32) {
	for int(d) >= len(h.Counts) {
		h.Counts = append(h.Counts, make([]int64, len(h.Counts)+8)...)
	}
	h.Counts[d]++
	h.Sum += int64(d)
	h.Total++
}

func (h *PathHistogram) sub(d int32) {
	h.Counts[d]--
	h.Sum -= int64(d)
	h.Total--
}

// Refresh repairs the map in place so it describes next, the refreshed
// successor of the map's current snapshot with delta d between them.
// Each source's row is repaired independently (in parallel across
// sources, merged in source order, so the result is identical at every
// worker count); exact mode gains rows for the new nodes. Insertion-only
// deltas ride the shrink wave; mixed deltas with removals take the
// three-phase RelaxDelta repair. Rows whose repair exceeds the budget —
// n + 2m + 4096 row scans, one cold BFS — are rebuilt from scratch, as
// is the whole map when d is nil (full refreeze) or has a foreign base
// version. In every case the resulting rows and aggregates are exactly
// those of a cold NewDistMap over next with the same sources. Refresh
// consumes the previous state; the map never describes two snapshots at
// once.
func (dm *DistMap) Refresh(next *graph.Snapshot, d *graph.Delta, workers int) {
	if next == nil {
		return
	}
	rebuild := d == nil || d.BaseVersion() != dm.s.Version()
	if rebuild {
		dm.s = next
		dm.rebase(workers)
		return
	}
	oldN, n := dm.s.N(), next.N()
	dm.s = next
	dm.reach = append(dm.reach, make([]int32, n-oldN)...)
	dm.sumd = append(dm.sumd, make([]int64, n-oldN)...)
	if dm.exact {
		for v := oldN; v < n; v++ {
			dm.sources = append(dm.sources, int32(v))
			dm.dist = append(dm.dist, nil)
		}
	}
	budget := dm.maxScan
	if budget <= 0 {
		budget = n + 2*next.M() + 4096
	}
	w := par.Workers(workers)
	for len(dm.scratch) < w {
		dm.scratch = append(dm.scratch, nil)
	}
	for _, sc := range dm.scratch[:w] {
		if sc != nil {
			sc.Reset() // last epoch's change subslices are long consumed
		}
	}
	if cap(dm.repairs) < len(dm.sources) {
		dm.repairs = make([]distRepair, len(dm.sources))
	}
	results := dm.repairs[:len(dm.sources)]
	for i := range results {
		results[i] = distRepair{}
	}
	dm.rfDes, dm.rfBudget = d.Edges(), budget
	if dm.rfBody == nil {
		dm.rfBody = func(worker, i int) {
			next, n := dm.s, dm.s.N()
			sc := dm.scratch[worker]
			if sc == nil {
				sc = NewDistScratch(n)
				dm.scratch[worker] = sc
			}
			sc.ensure(n)
			old := dm.dist[i]
			if old == nil { // new source: cold build, nothing to retract
				nd := make([]int32, n)
				BFSHybrid(next, int(dm.sources[i]), nd, sc.BFS())
				dm.repairs[i] = distRepair{nd: nd}
				return
			}
			dist := growDist(old, n)
			dm.dist[i] = dist
			changes, ok := RelaxDelta(next, dm.rfDes, dist, sc, dm.rfBudget)
			if !ok {
				for _, c := range changes {
					dist[c.Node] = c.Old
				}
				nd := make([]int32, n)
				BFSHybrid(next, int(dm.sources[i]), nd, sc.BFS())
				dm.repairs[i] = distRepair{old: dist, nd: nd}
				return
			}
			dm.repairs[i] = distRepair{changes: changes}
		}
	}
	par.ForEach(len(dm.sources), w, dm.rfBody)
	// Sequential merge in source order: integer aggregate patches, so
	// the outcome is order-free anyway — the fixed order documents the
	// determinism contract rather than carrying it.
	for i := range results {
		r := &results[i]
		if r.nd != nil {
			if r.old != nil {
				dm.accumulate(dm.sources[i], r.old, -1)
			}
			dm.accumulate(dm.sources[i], r.nd, +1)
			dm.dist[i] = r.nd
			continue
		}
		dist := dm.dist[i]
		for _, c := range r.changes {
			if c.Old > 0 {
				dm.hist.sub(c.Old)
				dm.reach[c.Node]--
				dm.sumd[c.Node] -= int64(c.Old)
			}
			if nd := dist[c.Node]; nd > 0 {
				dm.hist.add(nd)
				dm.reach[c.Node]++
				dm.sumd[c.Node] += int64(nd)
			}
		}
	}
}

// growDist pads a distance row with -1 entries up to n nodes.
func growDist(dist []int32, n int) []int32 {
	for len(dist) < n {
		dist = append(dist, -1)
	}
	return dist
}

// RefreshPathLengths reduces the map's maintained histogram to
// PathStats. In exact mode the result is bit-identical to
// PathLengthsFrozen over the same snapshot with all sources; in sampled
// mode it is the same estimator PathLengthsFrozen computes for the
// map's pivot set.
func RefreshPathLengths(dm *DistMap) PathStats {
	return dm.hist.ToStats(len(dm.sources))
}

// RefreshCloseness derives Wasserman-Faust closeness from the map's
// per-node reach and distance-sum columns. In exact mode the undirected
// symmetry d(u,v) = d(v,u) makes each node's column equal its own BFS
// row, and the expression matches ClosenessOfDist term for term, so the
// result is bit-identical to ClosenessFrozen. In sampled mode reach is
// rescaled by n/k, the standard pivot estimate.
func RefreshCloseness(dm *DistMap) []float64 {
	n := dm.s.N()
	k := len(dm.sources)
	out := make([]float64, n)
	for v := 0; v < n; v++ {
		sum, reach := dm.sumd[v], dm.reach[v]
		if sum == 0 {
			continue
		}
		scaled := float64(reach)
		if !dm.exact {
			scaled = float64(reach) * float64(n) / float64(k)
		}
		out[v] = float64(reach) / float64(sum) * scaled / float64(n-1)
	}
	return out
}

// brandesGroup is the source-batch grain of RefreshBetweennessSampled:
// groups of sources accumulate into one partial vector each, merged in
// group order — small enough to spread across workers, large enough to
// bound the partial-vector memory at K/8 rows.
const brandesGroup = 8

// orderFromDist fills order with the reachable nodes of dist sorted by
// (distance, id) via counting sort — a canonical traversal order that
// is a pure function of the distance field, unlike BFS discovery order,
// so repaired and cold rows induce identical Brandes passes.
func orderFromDist(dist []int32, order []int32) []int32 {
	maxd := int32(0)
	for _, d := range dist {
		if d > maxd {
			maxd = d
		}
	}
	starts := make([]int32, maxd+2)
	for _, d := range dist {
		if d >= 0 {
			starts[d+1]++
		}
	}
	for i := 1; i < len(starts); i++ {
		starts[i] += starts[i-1]
	}
	cnt := starts[maxd+1]
	for v, d := range dist {
		if d >= 0 {
			order[starts[d]] = int32(v)
			starts[d]++
		}
	}
	return order[:cnt]
}

// BrandesFromDist runs one Brandes dependency pass over an
// already-correct distance row, in canonical (distance, id) order: the
// counterpart of BrandesFrozen that skips the BFS. Results agree with
// BrandesFrozen to summation order (~1e-12), and are bit-identical
// between any two calls given the same distances.
func BrandesFromDist(s *graph.Snapshot, src int, dist []int32, sc *BrandesScratch, bc []float64, scale float64) {
	for i := range sc.sigma {
		sc.sigma[i] = 0
		sc.delta[i] = 0
	}
	order := orderFromDist(dist, sc.queue)
	SigmaForward(s, src, order, dist, sc.sigma)
	for i := len(order) - 1; i >= 0; i-- {
		w := order[i]
		coeff := (1 + sc.delta[w]) / sc.sigma[w]
		dw := dist[w]
		for _, v := range s.Neighbors(int(w)) {
			if dist[v]+1 == dw {
				sc.delta[v] += sc.sigma[v] * coeff
			}
		}
		if int(w) != src {
			bc[w] += sc.delta[w] * scale
		}
	}
}

// RefreshBetweennessSampled computes betweenness centrality from the
// map's distance rows: exact Brandes normalization in exact mode, the
// n/k source rescaling of BetweennessSampledFrozen in sampled mode. The
// distances are already repaired, so each source costs only its
// dependency pass. Source groups run in parallel and their partial
// vectors merge in group order, making the result bit-identical at
// every worker count and between refreshed and cold maps; against
// BetweennessFrozen it agrees to summation order (~1e-12).
func RefreshBetweennessSampled(dm *DistMap, workers int) []float64 {
	n := dm.s.N()
	bc := make([]float64, n)
	k := len(dm.sources)
	if n < 3 || k == 0 {
		return bc
	}
	scale := 1.0
	if !dm.exact {
		scale = float64(n) / float64(k)
	}
	groups := (k + brandesGroup - 1) / brandesGroup
	partials := make([][]float64, groups)
	w := par.Workers(workers)
	scratch := make([]*BrandesScratch, w)
	par.ForEach(groups, w, func(worker, g int) {
		sc := scratch[worker]
		if sc == nil {
			sc = NewBrandesScratch(n)
			scratch[worker] = sc
		}
		part := make([]float64, n)
		hi := (g + 1) * brandesGroup
		if hi > k {
			hi = k
		}
		for i := g * brandesGroup; i < hi; i++ {
			BrandesFromDist(dm.s, int(dm.sources[i]), dm.dist[i], sc, part, scale)
		}
		partials[g] = part
	})
	for _, part := range partials {
		for v, x := range part {
			bc[v] += x
		}
	}
	norm := float64(n-1) * float64(n-2)
	for i := range bc {
		bc[i] /= norm
	}
	return bc
}

// PivotSources draws the k-pivot source set of a sampled DistMap with
// the same selection as PathSources and BetweennessSources, so sampled
// trajectory metrics and their frozen counterparts pick identical
// pivots for a given generator state. k <= 0 or k >= n returns nil,
// the exact-mode marker.
func PivotSources(r *rng.Rand, n, k int) []int32 {
	if k <= 0 || k >= n {
		return nil
	}
	perm := r.Perm(n)
	out := make([]int32, k)
	for i := range out {
		out[i] = int32(perm[i])
	}
	return out
}
