package metrics

import (
	"testing"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// bruteCycles counts simple cycles of length 3, 4, 5 by enumeration of
// vertex tuples. Only usable on tiny graphs.
func bruteCycles(g *graph.Graph) CycleCounts {
	n := g.N()
	var out CycleCounts
	// C3
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !g.HasEdge(a, b) {
				continue
			}
			for c := b + 1; c < n; c++ {
				if g.HasEdge(a, c) && g.HasEdge(b, c) {
					out.C3++
				}
			}
		}
	}
	// C4: enumerate ordered 4-tuples forming a cycle, divide by 8.
	var c4 int64
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if b == a || !g.HasEdge(a, b) {
				continue
			}
			for c := 0; c < n; c++ {
				if c == a || c == b || !g.HasEdge(b, c) {
					continue
				}
				for d := 0; d < n; d++ {
					if d == a || d == b || d == c || !g.HasEdge(c, d) || !g.HasEdge(d, a) {
						continue
					}
					c4++
				}
			}
		}
	}
	out.C4 = c4 / 8
	// C5: same with 5-tuples, divide by 10.
	var c5 int64
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if b == a || !g.HasEdge(a, b) {
				continue
			}
			for c := 0; c < n; c++ {
				if c == a || c == b || !g.HasEdge(b, c) {
					continue
				}
				for d := 0; d < n; d++ {
					if d == a || d == b || d == c || !g.HasEdge(c, d) {
						continue
					}
					for e := 0; e < n; e++ {
						if e == a || e == b || e == c || e == d || !g.HasEdge(d, e) || !g.HasEdge(e, a) {
							continue
						}
						c5++
					}
				}
			}
		}
	}
	out.C5 = c5 / 10
	return out
}

func TestCountCyclesKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want CycleCounts
	}{
		{"K4", complete(4), CycleCounts{C3: 4, C4: 3, C5: 0}},
		{"K5", complete(5), CycleCounts{C3: 10, C4: 15, C5: 12}},
		{"C5", cycleGraph(5), CycleCounts{C3: 0, C4: 0, C5: 1}},
		{"C4", cycleGraph(4), CycleCounts{C3: 0, C4: 1, C5: 0}},
		{"path", path(6), CycleCounts{}},
		{"star", star(8), CycleCounts{}},
	}
	for _, tc := range cases {
		if got := CountCycles(tc.g); got != tc.want {
			t.Fatalf("%s: CountCycles = %+v, want %+v", tc.name, got, tc.want)
		}
	}
}

func TestCountCyclesMatchesBruteForce(t *testing.T) {
	r := rng.New(37)
	for trial := 0; trial < 8; trial++ {
		g := randomGraph(r, 14, 0.3)
		got := CountCycles(g)
		want := bruteCycles(g)
		if got != want {
			t.Fatalf("trial %d: CountCycles = %+v, brute = %+v", trial, got, want)
		}
	}
}

func TestCountCyclesIgnoresMultiplicity(t *testing.T) {
	g := cycleGraph(5)
	g.MustAddEdge(0, 1) // double one edge
	got := CountCycles(g)
	if got.C5 != 1 || got.C3 != 0 || got.C4 != 0 {
		t.Fatalf("multiplicity changed cycle counts: %+v", got)
	}
}

func TestCountCyclesTinyGraphs(t *testing.T) {
	if got := CountCycles(graph.New(0)); got != (CycleCounts{}) {
		t.Fatal("empty graph must count zero cycles")
	}
	if got := CountCycles(complete(3)); got != (CycleCounts{C3: 1}) {
		t.Fatalf("triangle counts = %+v", got)
	}
	// n=4 must skip the C5 path entirely.
	if got := CountCycles(cycleGraph(4)); got.C5 != 0 {
		t.Fatal("4-node graph cannot have 5-cycles")
	}
}
