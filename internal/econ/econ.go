// Package econ implements the socio-economic growth engine of netmodel:
// an Internet model where the topology emerges from a demand/supply
// market rather than from wiring rules alone.
//
// The environment is a pool of users (demand) growing exponentially at
// rate Alpha. Autonomous systems (supply) compete for those users by
// linear preferential attachment — rich-get-richer competition — while
// new ASs enter at rate Beta with a minimum viable customer base Omega0.
// Each AS continuously adapts its total bandwidth (modeled as edge
// multiplicity) to its customer base; bandwidth increases must be
// negotiated with a peer that also wants capacity, optionally damped by
// geographic link cost. The construction follows the competition-and-
// adaptation family of weighted growth models (Serrano-Boguñá-
// Díaz-Guilera 2005), which this package uses as the "economics-driven"
// member of the generator comparison matrix.
//
// Beyond the topology, the engine records a full monthly history of
// demand, supply and capacity, which the market layer (market.go) turns
// into per-AS revenue, cost and profit — the "can you make a living?"
// question asked quantitatively.
package econ

import (
	"errors"
	"math"

	"netmodel/internal/geom"
	"netmodel/internal/graph"
	"netmodel/internal/par"
	"netmodel/internal/rng"
)

// econRootTag keys the derivation of the sharded rounds' stream root
// off the caller's generator, keeping per-AS sub-streams disjoint from
// the main stream that link formation keeps drawing from.
const econRootTag = ^uint64(0)

// econPhases is the number of per-month sharded phases (demand
// allocation, churn); each gets its own stream-index band.
const econPhases = 2

// Model parameterizes the growth engine. Rates are per month, matching
// the units of the 1997-2002 measurements (Alpha ≈ 0.036 for hosts,
// Beta ≈ 0.030 for ASs, DeltaPrime ≈ 0.040 for total bandwidth).
type Model struct {
	Alpha      float64 // user (demand) growth rate
	Beta       float64 // AS (supply) growth rate
	DeltaPrime float64 // total-bandwidth growth rate, > Alpha
	Lambda     float64 // monthly user churn probability
	Omega0     float64 // minimum viable users per AS
	N0         int     // initial AS count
	TargetN    int     // stop once this many ASs exist
	R          float64 // link reinforcement probability (multi-edges)
	// Distance, when true, applies the exponential link-cost constraint
	// D(d) = exp(-d/dc) with dc = wi*wj/(Kappa*W) over a fractal
	// (D_f = 1.5) AS placement.
	Distance bool
	Kappa    float64 // link-cost scale; only used when Distance is set
	// Workers shards the per-month competition rounds — demand
	// allocation, churn and the bandwidth-adaptation scan — across a
	// pool, each AS drawing from its own seed-derived sub-stream keyed
	// by (month, phase, AS). Workers <= 1 runs the sequential reference
	// path unchanged; at Workers >= 2 the run is a pure function of the
	// seed, identical across repeated runs and across worker counts
	// (link formation itself stays on the main stream: the pairwise
	// bandwidth negotiation is a serial chain by construction).
	Workers int
}

// Default returns the published calibration targeting n ASs.
func Default(n int) Model {
	return Model{
		Alpha: 0.035, Beta: 0.030, DeltaPrime: 0.040,
		Lambda: 0.01, Omega0: 5000, N0: 2,
		TargetN: n, R: 0.8,
		Distance: false, Kappa: 30,
	}
}

// DefaultDistance is Default with the geographic constraint enabled.
func DefaultDistance(n int) Model {
	m := Default(n)
	m.Distance = true
	return m
}

// MonthStats is one row of the growth history.
type MonthStats struct {
	Month     int
	Users     float64 // W(t): total demand
	Nodes     int     // N(t)
	Edges     int     // E(t): simple edges
	Bandwidth int     // B(t): total multiplicity
}

// Result is the output of a growth run.
type Result struct {
	G       *graph.Graph
	Pos     []geom.Point // nil without the distance constraint
	Users   []float64    // final per-AS customer base
	History []MonthStats
}

// validate rejects parameterizations outside the supported regime.
func (m Model) validate() error {
	switch {
	case m.Alpha <= 0 || m.Beta <= 0 || m.DeltaPrime <= 0:
		return errors.New("econ: growth rates must be positive")
	case m.Alpha <= m.Beta:
		return errors.New("econ: demand must outgrow supply (Alpha > Beta)")
	case m.DeltaPrime <= m.Alpha:
		return errors.New("econ: bandwidth must outgrow demand (DeltaPrime > Alpha)")
	case m.Lambda < 0 || m.Lambda >= 1:
		return errors.New("econ: Lambda must be in [0,1)")
	case m.Omega0 <= 0:
		return errors.New("econ: Omega0 must be positive")
	case m.N0 < 2:
		return errors.New("econ: need at least two initial ASs")
	case m.TargetN < m.N0:
		return errors.New("econ: TargetN below N0")
	case m.R < 0 || m.R >= 1:
		return errors.New("econ: R must be in [0,1)")
	case m.Distance && m.Kappa <= 0:
		return errors.New("econ: Kappa must be positive with Distance")
	}
	return nil
}

// Run grows the network until TargetN autonomous systems exist and
// returns the final topology, customer bases and monthly history.
func (m Model) Run(r *rng.Rand) (*Result, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	// Months needed: N0·e^{Beta·t} = TargetN.
	months := int(math.Ceil(math.Log(float64(m.TargetN)/float64(m.N0)) / m.Beta))
	if months < 1 {
		months = 1
	}

	g := graph.New(m.N0)
	users := make([]float64, 0, m.TargetN)
	for i := 0; i < m.N0; i++ {
		users = append(users, m.Omega0)
	}
	g.MustAddEdge(0, 1)
	var pos []geom.Point
	if m.Distance {
		// Pre-draw positions for every AS that will ever exist so the
		// fractal set is one consistent embedding.
		pts, err := geom.Fractal(r, m.TargetN+m.N0, 1.5)
		if err != nil {
			return nil, err
		}
		pos = pts
	}

	totalUsers := m.Omega0 * float64(m.N0)
	w0N0 := totalUsers
	history := make([]MonthStats, 0, months)

	need := make([]float64, 0, m.TargetN) // bandwidth deficit per AS
	needF := rng.NewFenwick(r, m.TargetN+m.N0)

	// Sharded-round state: each AS draws from sub-stream
	// (month*phases+phase)<<32 | AS of the root, so what it draws is a
	// pure function of the seed — never of worker interleaving.
	sharded := m.Workers > 1
	var root rng.Rand
	var childs []rng.Rand
	var draws []float64
	if sharded {
		r.SplitInto(&root, econRootTag)
		childs = make([]rng.Rand, par.Workers(m.Workers))
		draws = make([]float64, 0, m.TargetN+m.N0)
	}
	streamTag := func(t, phase int) uint64 {
		return uint64(t*econPhases+phase) << 32
	}

	for t := 1; t <= months && g.N() < m.TargetN; t++ {
		// (i) New demand: ΔW users pick providers by linear preference.
		// Poisson-thinned proportional allocation keeps O(N) per month
		// while preserving the fluctuations that shape the size
		// distribution of small ASs.
		deltaW := w0N0 * (math.Exp(m.Alpha*float64(t)) - math.Exp(m.Alpha*float64(t-1)))
		if totalUsers > 0 {
			scale := deltaW / totalUsers
			if sharded {
				draws = draws[:len(users)]
				tag := streamTag(t, 0)
				par.For(len(users), m.Workers, func(w, i int) {
					rs := &childs[w]
					root.SplitInto(rs, tag|uint64(i))
					draws[i] = float64(rs.Poisson(users[i] * scale))
				})
				for i, gain := range draws {
					users[i] += gain
					totalUsers += gain
				}
			} else {
				for i := range users {
					gain := float64(r.Poisson(users[i] * scale))
					users[i] += gain
					totalUsers += gain
				}
			}
		}
		// (iii) Churn: each user relocates with probability Lambda,
		// choosing the new AS by the same preference. Because both the
		// loss and the gain are proportional to size, the expected drift
		// is zero; only the diffusion matters, so a symmetric Poisson
		// exchange suffices.
		if m.Lambda > 0 && len(users) > 1 {
			moved := 0.0
			if sharded {
				draws = draws[:len(users)]
				tag := streamTag(t, 1)
				par.For(len(users), m.Workers, func(w, i int) {
					rs := &childs[w]
					root.SplitInto(rs, tag|uint64(i))
					out := float64(rs.Poisson(users[i] * m.Lambda))
					if out > users[i]-1 {
						out = math.Max(0, users[i]-1)
					}
					draws[i] = out
				})
				for i, out := range draws {
					users[i] -= out
					moved += out
				}
			} else {
				for i := range users {
					out := float64(r.Poisson(users[i] * m.Lambda))
					if out > users[i]-1 {
						out = math.Max(0, users[i]-1)
					}
					users[i] -= out
					moved += out
				}
			}
			base := totalUsers - moved
			if base > 0 {
				for i := range users {
					users[i] += moved * users[i] / base
				}
			}
		}
		// (ii) New supply: ASs enter so the population tracks
		// N0·e^{Beta·t} cumulatively (per-month rounding would silently
		// drop fractional arrivals and bias the realized growth rate).
		// Each entrant's Omega0 starter base is withdrawn from incumbents
		// uniformly per AS with a reflecting boundary at Omega0 — the
		// −β·ω0 drift of the continuum model, which keeps large ASs
		// growing at the full demand rate and no AS below viability.
		deltaN := int(math.Round(float64(m.N0)*math.Exp(m.Beta*float64(t)))) - g.N()
		added := 0
		for j := 0; j < deltaN && g.N() < m.TargetN; j++ {
			g.AddNode()
			users = append(users, m.Omega0)
			totalUsers += m.Omega0
			added++
		}
		if added > 0 {
			poach := m.Omega0 * float64(added)
			incumbents := len(users) - added
			for pass := 0; pass < 4 && poach > 1e-9; pass++ {
				eligible := 0
				for i := 0; i < incumbents; i++ {
					if users[i] > m.Omega0 {
						eligible++
					}
				}
				if eligible == 0 {
					break
				}
				share := poach / float64(eligible)
				for i := 0; i < incumbents; i++ {
					if users[i] <= m.Omega0 {
						continue
					}
					take := math.Min(share, users[i]-m.Omega0)
					users[i] -= take
					totalUsers -= take
					poach -= take
				}
			}
		}
		// (iv) Adaptation: every AS sizes its bandwidth to its customer
		// base, b_i = 1 + a(t)(w_i − ω0), with a(t) = 2B(t)/W(t) and the
		// capacity budget B(t) growing at DeltaPrime. The deficit scan
		// is per-AS arithmetic over the (read-only) graph, so the
		// sharded path evaluates it element-wise in parallel; the
		// reduction runs in index order either way, keeping the total
		// bit-identical across worker counts.
		bTarget := math.Exp(m.DeltaPrime * float64(t))
		a := 2 * bTarget / totalUsers
		need = need[:len(users)]
		if sharded {
			par.For(len(users), m.Workers, func(_, i int) {
				want := 1 + a*math.Max(0, users[i]-m.Omega0)
				d := want - float64(g.Strength(i))
				if d < 0 {
					d = 0
				}
				need[i] = d
			})
		} else {
			for i := range users {
				want := 1 + a*math.Max(0, users[i]-m.Omega0)
				d := want - float64(g.Strength(i))
				if d < 0 {
					d = 0
				}
				need[i] = d
			}
		}
		totalNeed := 0.0
		for _, d := range need {
			totalNeed += d
		}
		if g.N() >= 2 && totalNeed >= 2 {
			for i, d := range need {
				needF.Set(i, d)
			}
			for i := g.N(); i < needF.Len(); i++ {
				needF.Set(i, 0)
			}
			m.formLinks(r, g, pos, users, totalUsers, need, needF)
		}
		history = append(history, MonthStats{
			Month: t, Users: totalUsers, Nodes: g.N(), Edges: g.M(), Bandwidth: g.TotalStrength(),
		})
	}
	res := &Result{G: g, Users: users, History: history}
	if m.Distance {
		res.Pos = pos[:g.N()]
	}
	return res, nil
}

// formLinks matches bandwidth-hungry ASs pairwise: both endpoints are
// drawn proportionally to their deficit, pass the distance filter when
// enabled, connect once and then keep reinforcing with probability R
// while both still need capacity.
func (m Model) formLinks(r *rng.Rand, g *graph.Graph, pos []geom.Point,
	users []float64, totalUsers float64, need []float64, needF *rng.Fenwick) {

	attempts := 0
	maxAttempts := int(needF.Total()*8) + 64
	for needF.Total() >= 2 && attempts < maxAttempts {
		attempts++
		pair := needF.SampleDistinct(2)
		if len(pair) < 2 {
			break
		}
		i, j := pair[0], pair[1]
		if m.Distance {
			d := pos[i].Dist(pos[j])
			dc := users[i] * users[j] / (m.Kappa * totalUsers)
			if r.Float64() >= math.Exp(-d/dc) {
				continue
			}
		}
		g.MustAddEdge(i, j)
		dec := func(u int) {
			need[u]--
			if need[u] < 0 {
				need[u] = 0
			}
			needF.Set(u, need[u])
		}
		dec(i)
		dec(j)
		// Reinforcement: cheap extra capacity on the freshly negotiated
		// link while both peers still have deficit.
		for need[i] >= 1 && need[j] >= 1 && r.Float64() < m.R {
			g.MustAddEdge(i, j)
			dec(i)
			dec(j)
		}
	}
}
