package econ

import (
	"math"
	"testing"

	"netmodel/internal/metrics"
	"netmodel/internal/rng"
	"netmodel/internal/stats"
)

func TestValidate(t *testing.T) {
	bad := []Model{
		{}, // all zero
		func() Model { m := Default(100); m.Alpha = m.Beta; return m }(),       // demand not above supply
		func() Model { m := Default(100); m.DeltaPrime = m.Alpha; return m }(), // bandwidth not above demand
		func() Model { m := Default(100); m.Lambda = 1; return m }(),
		func() Model { m := Default(100); m.Omega0 = 0; return m }(),
		func() Model { m := Default(100); m.N0 = 1; return m }(),
		func() Model { m := Default(100); m.TargetN = 1; return m }(),
		func() Model { m := Default(100); m.R = 1; return m }(),
		func() Model { m := DefaultDistance(100); m.Kappa = 0; return m }(),
	}
	for i, m := range bad {
		if _, err := m.Run(rng.New(1)); err == nil {
			t.Fatalf("case %d: invalid model accepted", i)
		}
	}
}

func TestRunReachesTarget(t *testing.T) {
	res, err := Default(400).Run(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.G.N() < 380 || res.G.N() > 400 {
		t.Fatalf("final N = %d, want ~400", res.G.N())
	}
	if err := res.G.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if len(res.Users) != res.G.N() {
		t.Fatalf("users slice length %d for %d nodes", len(res.Users), res.G.N())
	}
	if len(res.History) == 0 {
		t.Fatal("no history recorded")
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Default(300).Run(rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Default(300).Run(rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	ea, eb := a.G.EdgeList(), b.G.EdgeList()
	if len(ea) != len(eb) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("nondeterministic topology")
		}
	}
}

func TestGrowthIsExponentialWithOrderedRates(t *testing.T) {
	m := Default(1500)
	res, err := m.Run(rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	alpha, beta, delta, err := GrowthRates(res.History)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha-m.Alpha) > 0.01 {
		t.Fatalf("measured user growth %v, configured %v", alpha, m.Alpha)
	}
	if math.Abs(beta-m.Beta) > 0.01 {
		t.Fatalf("measured node growth %v, configured %v", beta, m.Beta)
	}
	// The paper-era ordering alpha >~ delta >~ beta.
	if !(alpha > beta) {
		t.Fatalf("rate ordering violated: alpha %v <= beta %v", alpha, beta)
	}
	if delta < beta-0.005 {
		t.Fatalf("edge growth %v below node growth %v", delta, beta)
	}
}

func TestUserSizeDistributionHeavyTail(t *testing.T) {
	res, err := Default(3000).Run(rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	// p(w) ~ w^-(1+tau) with tau = beta/alpha ≈ 1.86: heavy-tailed user
	// counts with a huge max/median ratio.
	sizes := append([]float64(nil), res.Users...)
	s := stats.Summarize(sizes)
	if s.Max < 20*s.Median {
		t.Fatalf("user sizes not heavy-tailed: max %v median %v", s.Max, s.Median)
	}
	h, err := stats.Hill(sizes, 200)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 0.030/0.035
	if math.Abs(h-want) > 0.5 {
		t.Fatalf("size-distribution exponent %v, want ~%v", h, want)
	}
}

func TestTopologyIsInternetLike(t *testing.T) {
	res, err := Default(4000).Run(rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	g := res.G
	giant, _ := g.GiantComponent()
	if float64(giant.N()) < 0.9*float64(g.N()) {
		t.Fatalf("giant component %d of %d", giant.N(), g.N())
	}
	// Heavy-tailed degrees.
	fit, err := stats.FitPowerLawDiscrete(metrics.DegreesAsFloats(g))
	if err != nil {
		t.Fatal(err)
	}
	if fit.Alpha < 1.7 || fit.Alpha > 3.2 {
		t.Fatalf("degree exponent %v outside Internet-like band", fit.Alpha)
	}
	// Disassortative like the AS map.
	if r := metrics.Assortativity(g); r > 0.05 {
		t.Fatalf("assortativity %v, want non-positive", r)
	}
	// Small world.
	ps, err := metrics.PathLengths(giant, rng.New(1), 300)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Avg > 7 {
		t.Fatalf("average path length %v too large", ps.Avg)
	}
}

func TestBandwidthDegreeScaling(t *testing.T) {
	res, err := Default(3000).Run(rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	ks, bs := metrics.DegreeStrengthPairs(res.G)
	// k ~ b^mu with mu < 1: log-log slope below 1, strengths exceed
	// degrees for hubs (multi-edges).
	f, err := stats.LogLogFit(bs, ks)
	if err != nil {
		t.Fatal(err)
	}
	if f.Slope >= 1.0 || f.Slope <= 0.3 {
		t.Fatalf("degree-bandwidth scaling exponent %v, want in (0.3,1)", f.Slope)
	}
	if res.G.TotalStrength() <= res.G.M() {
		t.Fatal("no multi-edges formed; reinforcement inactive")
	}
}

func TestDistanceConstraintProducesEmbeddingAndLocalLinks(t *testing.T) {
	res, err := DefaultDistance(1200).Run(rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	if res.Pos == nil || len(res.Pos) != res.G.N() {
		t.Fatalf("distance run must embed nodes: %d positions", len(res.Pos))
	}
	var edgeD []float64
	res.G.Edges(func(u, v, w int) bool {
		edgeD = append(edgeD, res.Pos[u].Dist(res.Pos[v]))
		return true
	})
	r := rng.New(3)
	var randD []float64
	for i := 0; i < 5000; i++ {
		u, v := r.Intn(res.G.N()), r.Intn(res.G.N())
		if u != v {
			randD = append(randD, res.Pos[u].Dist(res.Pos[v]))
		}
	}
	if stats.Mean(edgeD) >= stats.Mean(randD) {
		t.Fatalf("distance constraint inactive: edge mean %v vs random %v",
			stats.Mean(edgeD), stats.Mean(randD))
	}
}

func TestReinforcementAblation(t *testing.T) {
	lo := Default(1500)
	lo.R = 0
	hi := Default(1500)
	hi.R = 0.9
	resLo, err := lo.Run(rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	resHi, err := hi.Run(rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	// Multi-edges can still arise at R=0 when a pair is matched twice
	// across months (hubs outgrow their partner pool), but reinforcement
	// is what concentrates bandwidth: the deepest link must get much
	// deeper with R, and total capacity must stay on its growth target.
	maxW := func(res *Result) int {
		max := 0
		res.G.Edges(func(u, v, w int) bool {
			if w > max {
				max = w
			}
			return true
		})
		return max
	}
	if lo, hi := maxW(resLo), maxW(resHi); hi < 2*lo {
		t.Fatalf("reinforcement did not deepen links: max multiplicity %d vs %d", hi, lo)
	}
	lodiff := math.Abs(float64(resLo.G.TotalStrength())-float64(resHi.G.TotalStrength())) /
		float64(resHi.G.TotalStrength())
	if lodiff > 0.1 {
		t.Fatalf("total bandwidth should be R-invariant, differs by %v", lodiff)
	}
}

// shardedEqual asserts two runs are byte-equal in topology, customer
// bases and history.
func shardedEqual(t *testing.T, label string, a, b *Result) {
	t.Helper()
	ea, eb := a.G.EdgeList(), b.G.EdgeList()
	if len(ea) != len(eb) {
		t.Fatalf("%s: edge counts differ: %d vs %d", label, len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("%s: edge %d differs: %+v vs %+v", label, i, ea[i], eb[i])
		}
	}
	if len(a.Users) != len(b.Users) {
		t.Fatalf("%s: user slices differ in length", label)
	}
	for i := range a.Users {
		if a.Users[i] != b.Users[i] {
			t.Fatalf("%s: users[%d] = %v vs %v", label, i, a.Users[i], b.Users[i])
		}
	}
	if len(a.History) != len(b.History) {
		t.Fatalf("%s: history lengths differ", label)
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("%s: history[%d] = %+v vs %+v", label, i, a.History[i], b.History[i])
		}
	}
}

// TestShardedRunReproducible: at a fixed worker count the sharded run
// is a pure function of the seed.
func TestShardedRunReproducible(t *testing.T) {
	m := Default(300)
	m.Workers = 4
	a, err := m.Run(rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Run(rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	shardedEqual(t, "workers=4 repeated", a, b)
}

// TestShardedRunWorkerInvariance: per-AS sub-streams are keyed by
// (month, phase, AS), so the run is identical at every pool width.
func TestShardedRunWorkerInvariance(t *testing.T) {
	m2 := Default(300)
	m2.Workers = 2
	a, err := m2.Run(rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{3, 4, 8} {
		mw := Default(300)
		mw.Workers = workers
		b, err := mw.Run(rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		shardedEqual(t, "workers=2 vs more", a, b)
	}
}

// TestShardedRunKeepsGrowthRegime: the sharded competition rounds must
// realize the same macroscopic regime as the sequential engine —
// exponential growth with alpha > delta' >= beta ordering intact.
func TestShardedRunKeepsGrowthRegime(t *testing.T) {
	m := Default(600)
	m.Workers = 4
	res, err := m.Run(rng.New(1997))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.G.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if res.G.N() < 550 {
		t.Fatalf("sharded run stalled at N=%d, want ~600", res.G.N())
	}
	alpha, beta, _, err := GrowthRates(res.History)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha-m.Alpha) > 0.01 {
		t.Fatalf("sharded realized alpha = %v, want ~%v", alpha, m.Alpha)
	}
	if math.Abs(beta-m.Beta) > 0.01 {
		t.Fatalf("sharded realized beta = %v, want ~%v", beta, m.Beta)
	}
	if alpha <= beta {
		t.Fatalf("rate ordering lost: alpha %v <= beta %v", alpha, beta)
	}
}

// TestShardedRunDistance: the geographic constraint composes with the
// sharded rounds.
func TestShardedRunDistance(t *testing.T) {
	m := DefaultDistance(200)
	m.Workers = 4
	res, err := m.Run(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Pos == nil || len(res.Pos) != res.G.N() {
		t.Fatalf("distance run missing embedding: %d positions for %d nodes",
			len(res.Pos), res.G.N())
	}
}
