package econ

import (
	"math"
	"testing"

	"netmodel/internal/rng"
)

func TestGiniKnownValues(t *testing.T) {
	if g := Gini([]float64{1, 1, 1, 1}); math.Abs(g) > 1e-12 {
		t.Fatalf("equal sample Gini = %v, want 0", g)
	}
	// One owner of everything among n: G = (n-1)/n.
	if g := Gini([]float64{0, 0, 0, 10}); math.Abs(g-0.75) > 1e-12 {
		t.Fatalf("concentrated Gini = %v, want 0.75", g)
	}
	if g := Gini(nil); g != 0 {
		t.Fatalf("empty Gini = %v", g)
	}
	if g := Gini([]float64{0, 0}); g != 0 {
		t.Fatalf("all-zero Gini = %v", g)
	}
}

func TestGiniOrdering(t *testing.T) {
	even := Gini([]float64{5, 5, 6, 4})
	skew := Gini([]float64{1, 1, 1, 17})
	if skew <= even {
		t.Fatalf("skewed sample should have higher Gini: %v vs %v", skew, even)
	}
}

func TestMarketBooks(t *testing.T) {
	res, err := Default(600).Run(rng.New(29))
	if err != nil {
		t.Fatal(err)
	}
	p := DefaultPricing()
	rep, err := Market(res, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Accounts) != res.G.N() {
		t.Fatalf("accounts %d for %d ASs", len(rep.Accounts), res.G.N())
	}
	// Books must be internally consistent.
	var rev, prof float64
	for _, a := range rep.Accounts {
		wantRev := a.Users * p.RevenuePerUser
		wantCost := float64(a.Band)*p.CostPerLink + p.FixedCost
		if math.Abs(a.Revenue-wantRev) > 1e-9 || math.Abs(a.Cost-wantCost) > 1e-9 {
			t.Fatalf("account %d books wrong: %+v", a.AS, a)
		}
		if math.Abs(a.Profit-(a.Revenue-a.Cost)) > 1e-9 {
			t.Fatalf("profit identity violated: %+v", a)
		}
		rev += a.Revenue
		prof += a.Profit
	}
	if math.Abs(rev-rep.TotalRevenue) > 1e-6 || math.Abs(prof-rep.TotalProfit) > 1e-6 {
		t.Fatal("totals do not match account sum")
	}
	// Sorted by size.
	for i := 1; i < len(rep.Accounts); i++ {
		if rep.Accounts[i].Users > rep.Accounts[i-1].Users {
			t.Fatal("accounts not sorted by users")
		}
	}
}

func TestMarketBigGetRicher(t *testing.T) {
	res, err := Default(1500).Run(rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Market(res, DefaultPricing())
	if err != nil {
		t.Fatal(err)
	}
	// The top decile by users should be overwhelmingly profitable while
	// the bottom decile hovers at or below break-even — the "can you
	// make a living?" asymmetry.
	n := len(rep.Accounts)
	topProfit, botProfit := 0.0, 0.0
	for i := 0; i < n/10; i++ {
		topProfit += rep.Accounts[i].Profit
		botProfit += rep.Accounts[n-1-i].Profit
	}
	if topProfit <= botProfit {
		t.Fatalf("top decile profit %v not above bottom decile %v", topProfit, botProfit)
	}
	if rep.GiniUsers < 0.3 {
		t.Fatalf("user Gini %v suspiciously equal for a rich-get-richer market", rep.GiniUsers)
	}
	if rep.GiniProfit < rep.GiniUsers {
		t.Fatalf("profit inequality %v should exceed user inequality %v", rep.GiniProfit, rep.GiniUsers)
	}
}

func TestMarketErrors(t *testing.T) {
	if _, err := Market(nil, DefaultPricing()); err == nil {
		t.Fatal("nil result should fail")
	}
	res, err := Default(300).Run(rng.New(37))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Market(res, Pricing{RevenuePerUser: -1}); err == nil {
		t.Fatal("negative pricing should fail")
	}
}

func TestGrowthRatesErrors(t *testing.T) {
	if _, _, _, err := GrowthRates(nil); err == nil {
		t.Fatal("empty history should fail")
	}
	if _, _, _, err := GrowthRates([]MonthStats{{Month: 1}, {Month: 2}}); err == nil {
		t.Fatal("short history should fail")
	}
}
