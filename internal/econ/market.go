package econ

import (
	"errors"
	"math"
	"sort"
)

// Pricing parameterizes the ISP market accounting: how customer demand
// turns into revenue and how connectivity turns into cost.
type Pricing struct {
	RevenuePerUser float64 // monthly access revenue per customer
	CostPerLink    float64 // monthly cost of one unit of bandwidth (paid by each peer)
	FixedCost      float64 // monthly operating floor per AS
}

// DefaultPricing returns a calibration under which the median AS roughly
// breaks even — the interesting regime for the "can you make a living?"
// question.
func DefaultPricing() Pricing {
	return Pricing{RevenuePerUser: 1, CostPerLink: 900, FixedCost: 3000}
}

// Account is one AS's monthly books.
type Account struct {
	AS      int
	Users   float64
	Degree  int
	Band    int // bandwidth units (edge multiplicity sum)
	Revenue float64
	Cost    float64
	Profit  float64
	Margin  float64 // Profit / Revenue, 0 when Revenue is 0
}

// MarketReport aggregates the market outcome of a grown topology.
type MarketReport struct {
	Accounts     []Account // sorted by Users descending
	TotalRevenue float64
	TotalProfit  float64
	Profitable   int     // ASs with positive profit
	MedianMargin float64 // median profit margin
	GiniUsers    float64 // inequality of the customer base
	GiniProfit   float64 // inequality of profit (losses clamped to 0 for the index)
}

// Market computes the books of every AS in a growth result.
func Market(res *Result, p Pricing) (*MarketReport, error) {
	if res == nil || res.G == nil {
		return nil, errors.New("econ: nil result")
	}
	if p.RevenuePerUser < 0 || p.CostPerLink < 0 || p.FixedCost < 0 {
		return nil, errors.New("econ: negative pricing")
	}
	n := res.G.N()
	if n == 0 {
		return nil, errors.New("econ: empty topology")
	}
	rep := &MarketReport{Accounts: make([]Account, 0, n)}
	margins := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		a := Account{
			AS:     i,
			Users:  res.Users[i],
			Degree: res.G.Degree(i),
			Band:   res.G.Strength(i),
		}
		a.Revenue = a.Users * p.RevenuePerUser
		a.Cost = float64(a.Band)*p.CostPerLink + p.FixedCost
		a.Profit = a.Revenue - a.Cost
		if a.Revenue > 0 {
			a.Margin = a.Profit / a.Revenue
		}
		rep.TotalRevenue += a.Revenue
		rep.TotalProfit += a.Profit
		if a.Profit > 0 {
			rep.Profitable++
		}
		margins = append(margins, a.Margin)
		rep.Accounts = append(rep.Accounts, a)
	}
	sort.Slice(rep.Accounts, func(i, j int) bool { return rep.Accounts[i].Users > rep.Accounts[j].Users })
	sort.Float64s(margins)
	rep.MedianMargin = margins[len(margins)/2]

	userSizes := make([]float64, n)
	profits := make([]float64, n)
	for i, a := range rep.Accounts {
		userSizes[i] = a.Users
		profits[i] = math.Max(0, a.Profit)
	}
	rep.GiniUsers = Gini(userSizes)
	rep.GiniProfit = Gini(profits)
	return rep, nil
}

// Gini returns the Gini inequality index of a non-negative sample, in
// [0,1): 0 is perfect equality. Negative values are clamped to zero; an
// all-zero sample returns 0.
func Gini(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	for i, x := range xs {
		if x > 0 {
			s[i] = x
		}
	}
	sort.Float64s(s)
	var cum, total float64
	for _, x := range s {
		total += x
	}
	if total == 0 {
		return 0
	}
	var weighted float64
	for i, x := range s {
		cum += x
		weighted += cum
		_ = i
	}
	n := float64(len(s))
	// G = (n + 1 - 2·Σ cum_i / total) / n
	return (n + 1 - 2*weighted/total) / n
}

// GrowthRates fits exponential growth rates to a history by regressing
// log-quantities on time: returned values estimate Alpha (users), Beta
// (nodes) and Delta (edges), the E10 experiment's observables.
func GrowthRates(hist []MonthStats) (alpha, beta, delta float64, err error) {
	if len(hist) < 3 {
		return 0, 0, 0, errors.New("econ: history too short")
	}
	fit := func(val func(MonthStats) float64) (float64, error) {
		var num, den float64
		var sx, sy float64
		var pts int
		for _, h := range hist {
			v := val(h)
			if v <= 0 {
				continue
			}
			x := float64(h.Month)
			y := math.Log(v)
			sx += x
			sy += y
			pts++
			_ = num
			_ = den
		}
		if pts < 3 {
			return 0, errors.New("econ: too few positive samples")
		}
		mx, my := sx/float64(pts), sy/float64(pts)
		var sxx, sxy float64
		for _, h := range hist {
			v := val(h)
			if v <= 0 {
				continue
			}
			x := float64(h.Month) - mx
			sxx += x * x
			sxy += x * (math.Log(v) - my)
		}
		if sxx == 0 {
			return 0, errors.New("econ: degenerate history")
		}
		return sxy / sxx, nil
	}
	if alpha, err = fit(func(h MonthStats) float64 { return h.Users }); err != nil {
		return
	}
	if beta, err = fit(func(h MonthStats) float64 { return float64(h.Nodes) }); err != nil {
		return
	}
	delta, err = fit(func(h MonthStats) float64 { return float64(h.Edges) })
	return
}
