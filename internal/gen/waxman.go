package gen

import (
	"math"

	"netmodel/internal/geom"
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// Waxman is the classic distance-driven random topology model (Waxman
// 1988): nodes are placed on the unit square and each pair (u,v) is
// linked independently with probability
//
//	P(u,v) = Alpha · exp(−d(u,v) / (Beta·L))
//
// where L is the maximum possible distance. Waxman graphs were the
// default testbed topologies of 1990s networking papers; their degree
// distribution is Poisson-like, which is exactly the failure mode the
// power-law measurements exposed — making Waxman the canonical baseline
// in every generator comparison since.
type Waxman struct {
	N           int
	Alpha, Beta float64
	// Fractal, when true, places nodes on a D_f = 1.5 box fractal
	// instead of uniformly, matching measured router geography.
	Fractal bool
}

// Name implements Generator.
func (Waxman) Name() string { return "waxman" }

func (m Waxman) validate() error {
	if err := validateN(m.Name(), m.N); err != nil {
		return err
	}
	if m.Alpha <= 0 || m.Alpha > 1 {
		return errPositive(m.Name(), "Alpha in (0,1]")
	}
	if m.Beta <= 0 {
		return errPositive(m.Name(), "Beta")
	}
	return nil
}

// place draws the node embedding from the main stream.
func (m Waxman) place(r *rng.Rand) ([]geom.Point, error) {
	if m.Fractal {
		return geom.Fractal(r, m.N, 1.5)
	}
	return geom.Uniform(r, m.N), nil
}

// Generate implements Generator, O(N²).
func (m Waxman) Generate(r *rng.Rand) (*Topology, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	pts, err := m.place(r)
	if err != nil {
		return nil, err
	}
	g := graph.New(m.N)
	bl := m.Beta * geom.MaxDist
	for u := 0; u < m.N; u++ {
		for v := u + 1; v < m.N; v++ {
			p := m.Alpha * math.Exp(-pts[u].Dist(pts[v])/bl)
			if r.Float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	return &Topology{G: g, Pos: pts}, nil
}

// GenerateSharded implements ShardedGenerator: the embedding comes from
// the main stream exactly as in Generate, then each node's pair probes
// against higher-numbered nodes run independently with a seed-derived
// row stream, O(N²/workers) wall time.
func (m Waxman) GenerateSharded(r *rng.Rand, workers int) (*Topology, error) {
	if workers <= 1 {
		return m.Generate(r)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	pts, err := m.place(r)
	if err != nil {
		return nil, err
	}
	bl := m.Beta * geom.MaxDist
	edges := shardRows(r, m.N, workers, func(u int, rs *rng.Rand, emit func(u, v int)) {
		for v := u + 1; v < m.N; v++ {
			p := m.Alpha * math.Exp(-pts[u].Dist(pts[v])/bl)
			if rs.Float64() < p {
				emit(u, v)
			}
		}
	})
	g, err := graph.Build(m.N, edges, workers)
	if err != nil {
		return nil, err
	}
	return &Topology{G: g, Pos: pts}, nil
}

// RGG is the random geometric graph: nodes placed uniformly on the unit
// square, every pair within Radius linked. It is the sharpest possible
// distance constraint and a useful ablation endpoint against Waxman's
// soft exponential.
type RGG struct {
	N      int
	Radius float64
}

// Name implements Generator.
func (RGG) Name() string { return "rgg" }

// Generate implements Generator using the spatial grid index, so the
// cost is proportional to the number of realized edges rather than N².
func (m RGG) Generate(r *rng.Rand) (*Topology, error) {
	if err := validateN(m.Name(), m.N); err != nil {
		return nil, err
	}
	if m.Radius <= 0 {
		return nil, errPositive(m.Name(), "Radius")
	}
	pts := geom.Uniform(r, m.N)
	grid := geom.NewGrid(pts)
	g := graph.New(m.N)
	for u := 0; u < m.N; u++ {
		for _, v := range grid.Within(pts[u], m.Radius, u) {
			if v > u {
				g.MustAddEdge(u, v)
			}
		}
	}
	return &Topology{G: g, Pos: pts}, nil
}
