package gen

import (
	"math"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// GNP is the Erdős–Rényi G(n,p) model: every pair is an edge
// independently with probability P. It is the classic null model every
// Internet property is contrasted against (no heavy tail, vanishing
// clustering, no correlations).
type GNP struct {
	N int
	P float64
}

// Name implements Generator.
func (GNP) Name() string { return "gnp" }

// Generate implements Generator using the geometric skip trick, O(N+M)
// expected, so sparse graphs on 10⁵ nodes are cheap.
func (m GNP) Generate(r *rng.Rand) (*Topology, error) {
	if err := validateN(m.Name(), m.N); err != nil {
		return nil, err
	}
	if m.P < 0 || m.P > 1 {
		return nil, errPositive(m.Name(), "P in [0,1]")
	}
	g := graph.New(m.N)
	if m.P == 0 {
		return &Topology{G: g}, nil
	}
	if m.P == 1 {
		for u := 0; u < m.N; u++ {
			for v := u + 1; v < m.N; v++ {
				g.MustAddEdge(u, v)
			}
		}
		return &Topology{G: g}, nil
	}
	// Batagelj-Brandes: walk the strictly lower triangle (v,w), w < v,
	// jumping geometric gaps between successive edges.
	lq := math.Log(1 - m.P)
	v, w := 1, -1
	for v < m.N {
		w += 1 + int(math.Log(1-r.Float64())/lq)
		for w >= v && v < m.N {
			w -= v
			v++
		}
		if v < m.N {
			g.MustAddEdge(v, w)
		}
	}
	return &Topology{G: g}, nil
}

// GenerateSharded implements ShardedGenerator: each lower-triangle row
// runs the geometric skip walk independently with its own seed-derived
// stream, and the per-worker edge buffers feed the parallel graph
// builder. Expected O((N+M)/workers) wall time.
func (m GNP) GenerateSharded(r *rng.Rand, workers int) (*Topology, error) {
	if workers <= 1 || m.P == 0 || m.P == 1 {
		return m.Generate(r)
	}
	if err := validateN(m.Name(), m.N); err != nil {
		return nil, err
	}
	if m.P < 0 || m.P > 1 {
		return nil, errPositive(m.Name(), "P in [0,1]")
	}
	lq := math.Log(1 - m.P)
	edges := shardRows(r, m.N, workers, func(v int, rs *rng.Rand, emit func(u, v int)) {
		w := -1
		for {
			w += 1 + int(math.Log(1-rs.Float64())/lq)
			if w >= v {
				return
			}
			emit(v, w)
		}
	})
	g, err := graph.Build(m.N, edges, workers)
	if err != nil {
		return nil, err
	}
	return &Topology{G: g}, nil
}

// GNM is the Erdős–Rényi G(n,m) model: exactly M distinct edges chosen
// uniformly among all pairs.
type GNM struct {
	N, M int
}

// Name implements Generator.
func (GNM) Name() string { return "gnm" }

// Generate implements Generator by rejection sampling of pairs, which is
// efficient whenever M is well below the N(N-1)/2 capacity.
func (m GNM) Generate(r *rng.Rand) (*Topology, error) {
	if err := validateN(m.Name(), m.N); err != nil {
		return nil, err
	}
	if m.M < 0 {
		return nil, errPositive(m.Name(), "M")
	}
	maxM := m.N * (m.N - 1) / 2
	if m.M > maxM {
		return nil, ErrTooDense
	}
	g := graph.New(m.N)
	for g.M() < m.M {
		u := r.Intn(m.N)
		v := r.Intn(m.N)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
	}
	return &Topology{G: g}, nil
}
