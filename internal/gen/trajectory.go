package gen

import (
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// Trajectory configures epoch-by-epoch observation of a growth run:
// the generator pauses whenever the committed node count crosses a
// multiple of Every and hands the live graph to Observe, then once
// more at completion. Observation is read-only from the generator's
// point of view and consumes no randomness, so a trajectory run builds
// bit-for-bit the same topology as a plain run at the same seed and
// worker count; observers typically Refreeze the graph against their
// previous snapshot and advance a metrics engine, paying per epoch for
// the delta instead of the map.
type Trajectory struct {
	// Every is the epoch stride in committed nodes; <= 0 disables
	// trajectory observation. Boundaries inside a model's seed
	// component are not observable — growth is observed, not seeding.
	Every int
	// Observe receives the live graph and its node count at each
	// epoch. The graph keeps growing afterwards: observers that need
	// the epoch state beyond the callback must freeze it (Refreeze
	// makes that proportional to the delta). A non-nil error aborts
	// the run.
	Observe func(g *graph.Graph, n int) error
}

func (t Trajectory) enabled() bool { return t.Every > 0 && t.Observe != nil }

// TrajectoryGenerator is implemented by growth families that can pause
// at epoch boundaries: the degree-driven models whose kernels commit
// arrivals one at a time (BA, GLP, PFP). The same worker contract as
// ShardedGenerator applies: workers <= 1 observes the sequential
// reference run, workers >= 2 the sharded kernel's seed-pure run.
type TrajectoryGenerator interface {
	Generator
	GenerateTrajectory(r *rng.Rand, workers int, t Trajectory) (*Topology, error)
}

// GenerateTrajectoryWith is the trajectory counterpart of GenerateWith:
// families with a trajectory kernel pause and observe along the run;
// for everything else it generates normally and observes the finished
// topology once, so sweep drivers can treat every model uniformly.
func GenerateTrajectoryWith(g Generator, r *rng.Rand, workers int, t Trajectory) (*Topology, error) {
	if tg, ok := g.(TrajectoryGenerator); ok && t.enabled() {
		return tg.GenerateTrajectory(r, workers, t)
	}
	top, err := GenerateWith(g, r, workers)
	if err != nil {
		return nil, err
	}
	if t.Observe != nil {
		if err := t.Observe(top.G, top.G.N()); err != nil {
			return nil, err
		}
	}
	return top, nil
}

// trajectoryCursor tracks epoch crossings for the growth loops. A nil
// cursor is inert, so non-trajectory runs pay one nil check per
// arrival.
type trajectoryCursor struct {
	t    Trajectory
	next int // node count of the next observation boundary
	last int // node count at the last observation, -1 before any
}

func newTrajectoryCursor(t Trajectory, startN int) *trajectoryCursor {
	if !t.enabled() {
		return nil
	}
	return &trajectoryCursor{t: t, next: (startN/t.Every + 1) * t.Every, last: -1}
}

// visit observes when n has reached the next epoch boundary; call it
// after each committed arrival.
func (c *trajectoryCursor) visit(g *graph.Graph, n int) error {
	if c == nil || n < c.next {
		return nil
	}
	for c.next <= n {
		c.next += c.t.Every
	}
	c.last = n
	return c.t.Observe(g, n)
}

// finish emits the final observation unless the last boundary already
// covered the completed size.
func (c *trajectoryCursor) finish(g *graph.Graph, n int) error {
	if c == nil || c.last == n {
		return nil
	}
	c.last = n
	return c.t.Observe(g, n)
}
