package gen

import (
	"math"

	"netmodel/internal/geom"
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// BRITE is a BRITE-style hybrid generator (Medina–Matta–Byers 2000):
// incremental growth on a plane where each arriving node joins M
// existing nodes with probability combining Waxman's distance decay and
// degree preference:
//
//	P(u→v) ∝ (k_v + A) · exp(−d(u,v)/(Beta·L))
//
// BRITE's insight was that neither ingredient alone matches the
// Internet: distance alone gives Poisson degrees, degree alone ignores
// geography. The Heavy placement option concentrates nodes like the
// measured router distribution (fractal D_f = 1.5).
type BRITE struct {
	N     int
	M     int     // links per arriving node
	Beta  float64 // Waxman distance scale
	A     float64 // initial attractiveness
	Heavy bool    // fractal node placement instead of uniform
}

// Name implements Generator.
func (BRITE) Name() string { return "brite" }

// Generate implements Generator, O(N²) from the per-arrival scan of
// existing nodes (the distance factor defeats Fenwick sampling).
func (m BRITE) Generate(r *rng.Rand) (*Topology, error) {
	if err := validateN(m.Name(), m.N); err != nil {
		return nil, err
	}
	if m.M <= 0 {
		return nil, errPositive(m.Name(), "M")
	}
	if m.Beta <= 0 {
		return nil, errPositive(m.Name(), "Beta")
	}
	var pts []geom.Point
	var err error
	if m.Heavy {
		pts, err = geom.Fractal(r, m.N, 1.5)
		if err != nil {
			return nil, err
		}
	} else {
		pts = geom.Uniform(r, m.N)
	}
	seed := m.M + 1
	if seed > m.N {
		seed = m.N
	}
	g := graph.New(m.N)
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			g.MustAddEdge(u, v)
		}
	}
	bl := m.Beta * geom.MaxDist
	weights := make([]float64, 0, m.N)
	for u := seed; u < m.N; u++ {
		weights = weights[:0]
		totalW := 0.0
		for v := 0; v < u; v++ {
			w := (float64(g.Degree(v)) + m.A) * math.Exp(-pts[u].Dist(pts[v])/bl)
			if w < 0 {
				w = 0
			}
			weights = append(weights, w)
			totalW += w
		}
		if totalW <= 0 {
			g.MustAddEdge(u, r.Intn(u))
			continue
		}
		// Draw M distinct targets by repeated roulette with removal.
		for link := 0; link < m.M && totalW > 0; link++ {
			x := r.Float64() * totalW
			chosen := -1
			for v, w := range weights {
				x -= w
				if x <= 0 && w > 0 {
					chosen = v
					break
				}
			}
			if chosen < 0 { // numerical tail: pick last positive
				for v := len(weights) - 1; v >= 0; v-- {
					if weights[v] > 0 {
						chosen = v
						break
					}
				}
			}
			if chosen < 0 {
				break
			}
			g.MustAddEdge(u, chosen)
			totalW -= weights[chosen]
			weights[chosen] = 0
		}
	}
	return &Topology{G: g, Pos: pts}, nil
}
