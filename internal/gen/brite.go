package gen

import (
	"math"

	"netmodel/internal/geom"
	"netmodel/internal/graph"
	"netmodel/internal/par"
	"netmodel/internal/rng"
)

// BRITE is a BRITE-style hybrid generator (Medina–Matta–Byers 2000):
// incremental growth on a plane where each arriving node joins M
// existing nodes with probability combining Waxman's distance decay and
// degree preference:
//
//	P(u→v) ∝ (k_v + A) · exp(−d(u,v)/(Beta·L))
//
// BRITE's insight was that neither ingredient alone matches the
// Internet: distance alone gives Poisson degrees, degree alone ignores
// geography. The Heavy placement option concentrates nodes like the
// measured router distribution (fractal D_f = 1.5).
type BRITE struct {
	N     int
	M     int     // links per arriving node
	Beta  float64 // Waxman distance scale
	A     float64 // initial attractiveness
	Heavy bool    // fractal node placement instead of uniform
}

// Name implements Generator.
func (BRITE) Name() string { return "brite" }

func (m BRITE) validate() error {
	if err := validateN(m.Name(), m.N); err != nil {
		return err
	}
	if m.M <= 0 {
		return errPositive(m.Name(), "M")
	}
	if m.Beta <= 0 {
		return errPositive(m.Name(), "Beta")
	}
	return nil
}

// place draws the node embedding from the main stream.
func (m BRITE) place(r *rng.Rand) ([]geom.Point, error) {
	if m.Heavy {
		return geom.Fractal(r, m.N, 1.5)
	}
	return geom.Uniform(r, m.N), nil
}

// Generate implements Generator, O(N²) from the per-arrival scan of
// existing nodes (the distance factor defeats Fenwick sampling).
func (m BRITE) Generate(r *rng.Rand) (*Topology, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	pts, err := m.place(r)
	if err != nil {
		return nil, err
	}
	seed := m.M + 1
	if seed > m.N {
		seed = m.N
	}
	g := graph.New(m.N)
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			g.MustAddEdge(u, v)
		}
	}
	bl := m.Beta * geom.MaxDist
	weights := make([]float64, 0, m.N)
	for u := seed; u < m.N; u++ {
		weights = weights[:0]
		totalW := 0.0
		for v := 0; v < u; v++ {
			w := (float64(g.Degree(v)) + m.A) * math.Exp(-pts[u].Dist(pts[v])/bl)
			if w < 0 {
				w = 0
			}
			weights = append(weights, w)
			totalW += w
		}
		if totalW <= 0 {
			g.MustAddEdge(u, r.Intn(u))
			continue
		}
		// Draw M distinct targets by repeated roulette with removal.
		for link := 0; link < m.M && totalW > 0; link++ {
			x := r.Float64() * totalW
			chosen := -1
			for v, w := range weights {
				x -= w
				if x <= 0 && w > 0 {
					chosen = v
					break
				}
			}
			if chosen < 0 { // numerical tail: pick last positive
				for v := len(weights) - 1; v >= 0; v-- {
					if weights[v] > 0 {
						chosen = v
						break
					}
				}
			}
			if chosen < 0 {
				break
			}
			g.MustAddEdge(u, chosen)
			totalW -= weights[chosen]
			weights[chosen] = 0
		}
	}
	return &Topology{G: g, Pos: pts}, nil
}

// briteChunk is the candidate-scan grain of the sharded path: small
// enough to spread a 100k-candidate scan across the pool, large enough
// that each scheduled unit does real work.
const briteChunk = 512

// GenerateSharded implements ShardedGenerator. BRITE's cost is the
// per-arrival O(u) candidate scan — degree × distance-decay weight for
// every existing node — which the sharded path evaluates in parallel
// chunks with per-chunk partial sums (element-private writes on a
// static schedule, so the scores are identical at every worker count).
// The M roulette draws then jump over chunk sums and scan only the
// winning chunk, consuming main-stream variates like the sequential
// scan. Arrivals below one chunk of candidates run inline.
func (m BRITE) GenerateSharded(r *rng.Rand, workers int) (*Topology, error) {
	if workers <= 1 {
		return m.Generate(r)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	pts, err := m.place(r)
	if err != nil {
		return nil, err
	}
	seed := m.M + 1
	if seed > m.N {
		seed = m.N
	}
	degree := make([]int32, m.N)
	edges := make([]graph.Edge, 0, 2*m.N)
	addE := func(u, v int) {
		edges = append(edges, graph.Edge{U: u, V: v, W: 1})
		degree[u]++
		degree[v]++
	}
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			addE(u, v)
		}
	}
	bl := m.Beta * geom.MaxDist
	weights := make([]float64, m.N)
	sums := make([]float64, (m.N+briteChunk-1)/briteChunk)
	score := func(u, v int) float64 {
		w := (float64(degree[v]) + m.A) * math.Exp(-pts[u].Dist(pts[v])/bl)
		if w < 0 {
			return 0
		}
		return w
	}
	for u := seed; u < m.N; u++ {
		nc := (u + briteChunk - 1) / briteChunk
		if u <= briteChunk {
			s := 0.0
			for v := 0; v < u; v++ {
				weights[v] = score(u, v)
				s += weights[v]
			}
			sums[0] = s
		} else {
			// Chunks are already coarse (briteChunk candidates each),
			// so schedule them at grain one.
			par.ForEach(nc, workers, func(_, c int) {
				lo, hi := c*briteChunk, min((c+1)*briteChunk, u)
				s := 0.0
				for v := lo; v < hi; v++ {
					weights[v] = score(u, v)
					s += weights[v]
				}
				sums[c] = s
			})
		}
		totalW := 0.0
		for c := 0; c < nc; c++ {
			totalW += sums[c]
		}
		if totalW <= 0 {
			addE(u, r.Intn(u))
			continue
		}
		for link := 0; link < m.M && totalW > 0; link++ {
			x := r.Float64() * totalW
			chosen := -1
			for c := 0; c < nc && chosen < 0; c++ {
				if x > sums[c] {
					x -= sums[c]
					continue
				}
				lo, hi := c*briteChunk, min((c+1)*briteChunk, u)
				for v := lo; v < hi; v++ {
					x -= weights[v]
					if x <= 0 && weights[v] > 0 {
						chosen = v
						break
					}
				}
			}
			if chosen < 0 { // numerical tail: pick last positive
				for v := u - 1; v >= 0; v-- {
					if weights[v] > 0 {
						chosen = v
						break
					}
				}
			}
			if chosen < 0 {
				break
			}
			addE(u, chosen)
			totalW -= weights[chosen]
			sums[chosen/briteChunk] -= weights[chosen]
			weights[chosen] = 0
		}
	}
	g, err := graph.Build(m.N, edges, workers)
	if err != nil {
		return nil, err
	}
	return &Topology{G: g, Pos: pts}, nil
}
