package gen

import (
	"errors"
	"reflect"
	"testing"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

func trajectoryModels() []TrajectoryGenerator {
	return []TrajectoryGenerator{
		BA{N: 500, M: 2},
		GLP{N: 500, M: 1, P: 0.45, Beta: 0.64},
		DefaultPFP(400),
	}
}

// TestTrajectoryDoesNotPerturbGeneration: observation draws no
// randomness, so a trajectory run must build bit-for-bit the same
// topology as the plain run at the same seed and worker count.
func TestTrajectoryDoesNotPerturbGeneration(t *testing.T) {
	for _, m := range trajectoryModels() {
		for _, workers := range []int{1, 4} {
			for seed := uint64(1); seed <= 3; seed++ {
				plain, err := GenerateWith(m, rng.New(seed), workers)
				if err != nil {
					t.Fatalf("%s: %v", m.Name(), err)
				}
				epochs := 0
				traj, err := m.GenerateTrajectory(rng.New(seed), workers, Trajectory{
					Every: 97,
					Observe: func(g *graph.Graph, n int) error {
						epochs++
						if g.N() != n {
							return errors.New("observer node count mismatch")
						}
						return nil
					},
				})
				if err != nil {
					t.Fatalf("%s workers=%d: %v", m.Name(), workers, err)
				}
				if epochs < 3 {
					t.Fatalf("%s workers=%d: only %d epochs observed", m.Name(), workers, epochs)
				}
				if !reflect.DeepEqual(plain.G.EdgeList(), traj.G.EdgeList()) {
					t.Fatalf("%s workers=%d seed=%d: trajectory run changed the topology",
						m.Name(), workers, seed)
				}
			}
		}
	}
}

// TestTrajectoryEpochBoundaries: epochs land exactly on multiples of
// Every (the final completion observation aside), strictly increasing,
// and the last observation covers the finished size.
func TestTrajectoryEpochBoundaries(t *testing.T) {
	for _, m := range trajectoryModels() {
		for _, workers := range []int{1, 4} {
			const every = 50
			var ns []int
			top, err := m.GenerateTrajectory(rng.New(7), workers, Trajectory{
				Every: every,
				Observe: func(g *graph.Graph, n int) error {
					ns = append(ns, n)
					return nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(ns) == 0 {
				t.Fatalf("%s workers=%d: no observations", m.Name(), workers)
			}
			for i, n := range ns {
				if i > 0 && n <= ns[i-1] {
					t.Fatalf("%s workers=%d: epochs not increasing: %v", m.Name(), workers, ns)
				}
				if i < len(ns)-1 && n%every != 0 {
					t.Fatalf("%s workers=%d: epoch at %d not a multiple of %d", m.Name(), workers, n, every)
				}
			}
			if last := ns[len(ns)-1]; last != top.G.N() {
				t.Fatalf("%s workers=%d: final observation at %d, topology has %d nodes",
					m.Name(), workers, last, top.G.N())
			}
		}
	}
}

// TestTrajectoryObserverCanRefreeze: the intended usage — the observer
// refreezes the live graph against its previous snapshot — must yield
// delta refreshes whose snapshots match fresh freezes at every epoch.
func TestTrajectoryObserverCanRefreeze(t *testing.T) {
	var prev *graph.Snapshot
	deltas := 0
	_, err := (BA{N: 600, M: 2}).GenerateTrajectory(rng.New(3), 4, Trajectory{
		Every: 64,
		Observe: func(g *graph.Graph, n int) error {
			next, d, err := g.Refreeze(prev)
			if err != nil {
				return err
			}
			if prev != nil {
				if d == nil {
					return errors.New("expected a delta refresh")
				}
				deltas++
			}
			if next.N() != n || next.M() != g.M() {
				return errors.New("refreshed snapshot out of sync with live graph")
			}
			prev = next
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if deltas < 5 {
		t.Fatalf("only %d delta refreshes", deltas)
	}
}

// TestTrajectoryObserverErrorAborts: a failing observer stops the run.
func TestTrajectoryObserverErrorAborts(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := (BA{N: 400, M: 2}).GenerateTrajectory(rng.New(1), workers, Trajectory{
			Every:   50,
			Observe: func(g *graph.Graph, n int) error { return boom },
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: error %v, want %v", workers, err, boom)
		}
	}
}

// TestGenerateTrajectoryWithFallback: families without a trajectory
// kernel are generated normally and observed once at completion.
func TestGenerateTrajectoryWithFallback(t *testing.T) {
	var ns []int
	top, err := GenerateTrajectoryWith(GNP{N: 200, P: 0.02}, rng.New(5), 1, Trajectory{
		Every: 50,
		Observe: func(g *graph.Graph, n int) error {
			ns = append(ns, n)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 1 || ns[0] != top.G.N() {
		t.Fatalf("fallback observations %v, want one at %d", ns, top.G.N())
	}
	// Disabled trajectory: plain dispatch, no observation.
	ns = nil
	if _, err := GenerateTrajectoryWith(BA{N: 100, M: 2}, rng.New(5), 1, Trajectory{}); err != nil {
		t.Fatal(err)
	}
	if len(ns) != 0 {
		t.Fatal("disabled trajectory must not observe")
	}
}
