package gen

import (
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// BA is the Barabási–Albert growth model: starting from a small seed,
// each arriving node attaches M edges to existing nodes with probability
// proportional to k + A (linear preferential attachment with initial
// attractiveness A).
//
// With A = 0 the degree exponent is the classic γ = 3 — visibly steeper
// than the measured AS-map γ ≈ 2.1–2.2, which is why plain BA appears in
// every comparison as the "right mechanism, wrong exponent" baseline.
// Negative A in (−M, 0) flattens the exponent toward γ = 3 + A/M,
// allowing the empirical range to be reached.
type BA struct {
	N int
	M int     // edges per arriving node
	A float64 // initial attractiveness, > -M
}

// Name implements Generator.
func (BA) Name() string { return "ba" }

func (m BA) validate() error {
	if err := validateN(m.Name(), m.N); err != nil {
		return err
	}
	if m.M <= 0 {
		return errPositive(m.Name(), "M")
	}
	if float64(m.M)+m.A <= 0 {
		return errPositive(m.Name(), "M + A")
	}
	return nil
}

// Generate implements Generator. Attachment sampling uses the Fenwick
// tree, O(N·M·log N) overall. This is the sequential reference the
// sharded kernel is pinned against.
func (m BA) Generate(r *rng.Rand) (*Topology, error) {
	return m.generate(r, Trajectory{})
}

// generate is the sequential growth loop with optional trajectory
// observation; a disabled Trajectory reproduces Generate exactly
// (observation draws no randomness and nodes take the same dense ids).
func (m BA) generate(r *rng.Rand, traj Trajectory) (*Topology, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	seed := m.M + 1
	if seed > m.N {
		seed = m.N
	}
	cur := newTrajectoryCursor(traj, seed)
	g := graph.New(seed)
	f := rng.NewFenwick(r, m.N)
	// Connected seed: a small clique so every seed node has degree > 0.
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			g.MustAddEdge(u, v)
		}
	}
	for u := 0; u < seed; u++ {
		f.Set(u, float64(g.Degree(u))+m.A)
	}
	for u := seed; u < m.N; u++ {
		g.AddNode()
		targets := f.SampleDistinct(m.M)
		for _, v := range targets {
			g.MustAddEdge(u, v)
			f.Add(v, 1)
		}
		f.Set(u, float64(g.Degree(u))+m.A)
		if err := cur.visit(g, g.N()); err != nil {
			return nil, err
		}
	}
	if err := cur.finish(g, g.N()); err != nil {
		return nil, err
	}
	return &Topology{G: g}, nil
}

// GenerateSharded implements ShardedGenerator: arrivals are planned in
// frozen-weight rounds (each arrival samples its M distinct targets
// against the round's alias table with its own seed-derived stream, in
// parallel) and committed in arrival order. Every edge joins the new
// node to a pre-round node, so commits never conflict; weight updates
// are plain array writes, O(1) against the Fenwick path's O(log N).
func (m BA) GenerateSharded(r *rng.Rand, workers int) (*Topology, error) {
	return m.generateSharded(r, workers, Trajectory{})
}

// GenerateTrajectory implements TrajectoryGenerator: the growth loops
// pause at every Every-node boundary and hand the live graph to the
// observer, sequentially (workers <= 1) or inside the sharded kernel's
// commit phase (workers >= 2).
func (m BA) GenerateTrajectory(r *rng.Rand, workers int, t Trajectory) (*Topology, error) {
	if workers <= 1 {
		return m.generate(r, t)
	}
	return m.generateSharded(r, workers, t)
}

func (m BA) generateSharded(r *rng.Rand, workers int, traj Trajectory) (*Topology, error) {
	if workers <= 1 {
		return m.generate(r, traj)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	seed := m.M + 1
	if seed > m.N {
		seed = m.N
	}
	k := newGrowth(r, workers, m.N)
	cur := newTrajectoryCursor(traj, seed)
	if cur != nil {
		k.mirror()
	}
	for u := 0; u < seed; u++ {
		k.addNode()
	}
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			k.addEdge(u, v)
		}
	}
	for u := 0; u < seed; u++ {
		k.weights[u] = float64(k.degree[u]) + m.A
	}
	var flat []int
	var lens []int
	for k.n < m.N {
		b := growthBatch(k.n, m.N-k.n)
		t := k.freeze()
		if cap(flat) < b*m.M {
			flat = make([]int, b*m.M)
			lens = make([]int, b)
		}
		k.forItems(b, func(i int, rs *rng.Rand) {
			seg := k.sampleDistinct(t, rs, m.M, nil, flat[i*m.M:i*m.M:(i+1)*m.M])
			lens[i] = len(seg)
		})
		for i := 0; i < b; i++ {
			u := k.addNode()
			for _, v := range flat[i*m.M : i*m.M+lens[i]] {
				k.addEdge(u, v)
				k.weights[v]++
			}
			k.weights[u] = float64(k.degree[u]) + m.A
			if err := cur.visit(k.live, k.n); err != nil {
				return nil, err
			}
		}
	}
	if err := cur.finish(k.live, k.n); err != nil {
		return nil, err
	}
	g, err := k.build()
	if err != nil {
		return nil, err
	}
	return &Topology{G: g}, nil
}
