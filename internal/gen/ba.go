package gen

import (
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// BA is the Barabási–Albert growth model: starting from a small seed,
// each arriving node attaches M edges to existing nodes with probability
// proportional to k + A (linear preferential attachment with initial
// attractiveness A).
//
// With A = 0 the degree exponent is the classic γ = 3 — visibly steeper
// than the measured AS-map γ ≈ 2.1–2.2, which is why plain BA appears in
// every comparison as the "right mechanism, wrong exponent" baseline.
// Negative A in (−M, 0) flattens the exponent toward γ = 3 + A/M,
// allowing the empirical range to be reached.
type BA struct {
	N int
	M int     // edges per arriving node
	A float64 // initial attractiveness, > -M
}

// Name implements Generator.
func (BA) Name() string { return "ba" }

// Generate implements Generator. Attachment sampling uses the Fenwick
// tree, O(N·M·log N) overall.
func (m BA) Generate(r *rng.Rand) (*Topology, error) {
	if err := validateN(m.Name(), m.N); err != nil {
		return nil, err
	}
	if m.M <= 0 {
		return nil, errPositive(m.Name(), "M")
	}
	if float64(m.M)+m.A <= 0 {
		return nil, errPositive(m.Name(), "M + A")
	}
	seed := m.M + 1
	if seed > m.N {
		seed = m.N
	}
	g := graph.New(m.N)
	f := rng.NewFenwick(r, m.N)
	// Connected seed: a small clique so every seed node has degree > 0.
	for u := 0; u < seed; u++ {
		for v := u + 1; v < seed; v++ {
			g.MustAddEdge(u, v)
		}
	}
	for u := 0; u < seed; u++ {
		f.Set(u, float64(g.Degree(u))+m.A)
	}
	for u := seed; u < m.N; u++ {
		targets := f.SampleDistinct(m.M)
		for _, v := range targets {
			g.MustAddEdge(u, v)
			f.Add(v, 1)
		}
		f.Set(u, float64(g.Degree(u))+m.A)
	}
	return &Topology{G: g}, nil
}
