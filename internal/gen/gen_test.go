package gen

import (
	"math"
	"testing"

	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/rng"
	"netmodel/internal/stats"
)

// allGenerators returns one configured instance of every model at small
// scale, for the cross-cutting contract tests.
func allGenerators() []Generator {
	return []Generator{
		GNP{N: 300, P: 0.02},
		GNM{N: 300, M: 900},
		WS{N: 300, K: 6, Beta: 0.1},
		Waxman{N: 300, Alpha: 0.4, Beta: 0.15},
		RGG{N: 300, Radius: 0.08},
		BA{N: 300, M: 2},
		BA{N: 300, M: 2, A: -1},
		GLP{N: 300, M: 2, P: 0.4, Beta: 0.6},
		DefaultPFP(300),
		FKP{N: 300, Alpha: 4},
		Inet{N: 300, Gamma: 2.2, MinDeg: 1},
		BRITE{N: 300, M: 2, Beta: 0.2},
		DefaultTransitStub(300),
	}
}

func TestGeneratorContract(t *testing.T) {
	for _, m := range allGenerators() {
		top, err := m.Generate(rng.New(7))
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if top.G == nil || top.G.N() == 0 {
			t.Fatalf("%s: empty topology", m.Name())
		}
		if err := top.G.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if top.Pos != nil && len(top.Pos) != top.G.N() {
			t.Fatalf("%s: %d positions for %d nodes", m.Name(), len(top.Pos), top.G.N())
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	for _, m := range allGenerators() {
		a, err := m.Generate(rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		b, err := m.Generate(rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		ea, eb := a.G.EdgeList(), b.G.EdgeList()
		if len(ea) != len(eb) {
			t.Fatalf("%s: different edge counts across identical seeds", m.Name())
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("%s: edge %d differs: %+v vs %+v", m.Name(), i, ea[i], eb[i])
			}
		}
		c, err := m.Generate(rng.New(43))
		if err != nil {
			t.Fatal(err)
		}
		if len(c.G.EdgeList()) == len(ea) {
			same := true
			for i, e := range c.G.EdgeList() {
				if e != ea[i] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("%s: different seeds produced identical topology", m.Name())
			}
		}
	}
}

func TestGNPEdgeDensity(t *testing.T) {
	m := GNP{N: 2000, P: 0.004}
	top, err := m.Generate(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	want := 0.004 * float64(2000*1999/2)
	got := float64(top.G.M())
	if math.Abs(got-want) > 5*math.Sqrt(want) {
		t.Fatalf("GNP edges = %v, want ~%v", got, want)
	}
}

func TestGNPDegenerate(t *testing.T) {
	top, err := GNP{N: 50, P: 0}.Generate(rng.New(1))
	if err != nil || top.G.M() != 0 {
		t.Fatalf("P=0 should give empty graph: %v, M=%d", err, top.G.M())
	}
	top, err = GNP{N: 20, P: 1}.Generate(rng.New(1))
	if err != nil || top.G.M() != 190 {
		t.Fatalf("P=1 should give complete graph: %v, M=%d", err, top.G.M())
	}
}

func TestGNMExactEdges(t *testing.T) {
	top, err := GNM{N: 100, M: 250}.Generate(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if top.G.M() != 250 {
		t.Fatalf("GNM produced %d edges, want 250", top.G.M())
	}
}

func TestGNMTooDense(t *testing.T) {
	if _, err := (GNM{N: 5, M: 11}).Generate(rng.New(1)); err != ErrTooDense {
		t.Fatalf("want ErrTooDense, got %v", err)
	}
}

func TestWSLatticeLimit(t *testing.T) {
	top, err := WS{N: 50, K: 4, Beta: 0}.Generate(rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if top.G.M() != 100 {
		t.Fatalf("lattice edges = %d, want 100", top.G.M())
	}
	for u := 0; u < 50; u++ {
		if top.G.Degree(u) != 4 {
			t.Fatalf("lattice degree(%d) = %d, want 4", u, top.G.Degree(u))
		}
	}
	// High clustering in the lattice limit.
	if c := metrics.AvgClustering(top.G); c < 0.4 {
		t.Fatalf("lattice clustering = %v, want >= 0.5-ish", c)
	}
}

func TestWSRewiringShortensPaths(t *testing.T) {
	lattice, err := WS{N: 400, K: 4, Beta: 0}.Generate(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	small, err := WS{N: 400, K: 4, Beta: 0.1}.Generate(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	gl, _ := lattice.G.GiantComponent()
	gs, _ := small.G.GiantComponent()
	pl, err := metrics.PathLengths(gl, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := metrics.PathLengths(gs, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ps.Avg >= pl.Avg/2 {
		t.Fatalf("rewiring did not shorten paths: %v vs %v", ps.Avg, pl.Avg)
	}
}

func TestWSValidation(t *testing.T) {
	if _, err := (WS{N: 10, K: 3, Beta: 0.1}).Generate(rng.New(1)); err == nil {
		t.Fatal("odd K should fail")
	}
	if _, err := (WS{N: 4, K: 4, Beta: 0.1}).Generate(rng.New(1)); err == nil {
		t.Fatal("K >= N should fail")
	}
}

func TestWaxmanDistanceBias(t *testing.T) {
	top, err := Waxman{N: 800, Alpha: 0.3, Beta: 0.1}.Generate(rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	var linked, unlinked []float64
	g := top.G
	for u := 0; u < 400; u++ {
		for v := u + 1; v < 400; v++ {
			d := top.Pos[u].Dist(top.Pos[v])
			if g.HasEdge(u, v) {
				linked = append(linked, d)
			} else {
				unlinked = append(unlinked, d)
			}
		}
	}
	if len(linked) < 10 {
		t.Skip("too few edges to compare")
	}
	if stats.Mean(linked) >= stats.Mean(unlinked) {
		t.Fatalf("linked pairs are not shorter on average: %v vs %v",
			stats.Mean(linked), stats.Mean(unlinked))
	}
}

func TestWaxmanNotHeavyTailed(t *testing.T) {
	top, err := Waxman{N: 2000, Alpha: 0.3, Beta: 0.12}.Generate(rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	degs := metrics.DegreesAsFloats(top.G)
	s := stats.Summarize(degs)
	// Poisson-like: max degree within a small multiple of the mean.
	if s.Max > 6*s.Mean+10 {
		t.Fatalf("Waxman unexpectedly heavy-tailed: max %v mean %v", s.Max, s.Mean)
	}
}

func TestRGGRespectsRadius(t *testing.T) {
	top, err := RGG{N: 500, Radius: 0.07}.Generate(rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	top.G.Edges(func(u, v, w int) bool {
		if top.Pos[u].Dist(top.Pos[v]) > 0.07+1e-12 {
			t.Fatalf("edge (%d,%d) longer than radius", u, v)
		}
		return true
	})
	// And no missing edges: spot check.
	for u := 0; u < 100; u++ {
		for v := u + 1; v < 100; v++ {
			if top.Pos[u].Dist(top.Pos[v]) <= 0.07 && !top.G.HasEdge(u, v) {
				t.Fatalf("pair (%d,%d) within radius but unlinked", u, v)
			}
		}
	}
}

func TestBAConnectedAndEdgeCount(t *testing.T) {
	top, err := BA{N: 1000, M: 2}.Generate(rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if !top.G.IsConnected() {
		t.Fatal("BA graph must be connected")
	}
	// seed clique of 3 nodes (3 edges) + 2 per arrival
	want := 3 + 2*(1000-3)
	if top.G.M() != want {
		t.Fatalf("BA edges = %d, want %d", top.G.M(), want)
	}
}

func TestBAPowerLawExponent(t *testing.T) {
	top, err := BA{N: 20000, M: 2}.Generate(rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	fit, err := stats.FitPowerLawDiscrete(metrics.DegreesAsFloats(top.G))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-3) > 0.35 {
		t.Fatalf("BA exponent = %v, want ~3", fit.Alpha)
	}
}

func TestBAInitialAttractivenessFlattens(t *testing.T) {
	plain, err := BA{N: 15000, M: 2}.Generate(rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	flat, err := BA{N: 15000, M: 2, A: -1.4}.Generate(rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := stats.FitPowerLawDiscrete(metrics.DegreesAsFloats(plain.G))
	if err != nil {
		t.Fatal(err)
	}
	ff, err := stats.FitPowerLawDiscrete(metrics.DegreesAsFloats(flat.G))
	if err != nil {
		t.Fatal(err)
	}
	// gamma = 3 + A/M = 2.3 for A=-1.4, M=2
	if ff.Alpha >= fp.Alpha-0.2 {
		t.Fatalf("negative A did not flatten exponent: %v vs %v", ff.Alpha, fp.Alpha)
	}
}

func TestBAValidation(t *testing.T) {
	if _, err := (BA{N: 10, M: 0}).Generate(rng.New(1)); err == nil {
		t.Fatal("M=0 should fail")
	}
	if _, err := (BA{N: 10, M: 2, A: -2}).Generate(rng.New(1)); err == nil {
		t.Fatal("A <= -M should fail")
	}
}

func TestGLPHeavyTail(t *testing.T) {
	// Theory: γ = 1 + (2m − β(1−p)) / (m(1+p)) ≈ 2.13 for these params.
	top, err := GLP{N: 30000, M: 1, P: 0.45, Beta: 0.65}.Generate(rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	h, err := stats.Hill(metrics.DegreesAsFloats(top.G), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if h < 1.8 || h > 2.5 {
		t.Fatalf("GLP Hill exponent = %v, want AS-like ~2.1", h)
	}
	if top.G.MaxDegree() < 100 {
		t.Fatalf("GLP max degree = %d, expected hub formation", top.G.MaxDegree())
	}
}

func TestGLPInternalLinksRaiseDensity(t *testing.T) {
	noInternal, err := GLP{N: 3000, M: 1, P: 0, Beta: 0.5}.Generate(rng.New(29))
	if err != nil {
		t.Fatal(err)
	}
	withInternal, err := GLP{N: 3000, M: 1, P: 0.5, Beta: 0.5}.Generate(rng.New(29))
	if err != nil {
		t.Fatal(err)
	}
	if withInternal.G.AvgDegree() <= noInternal.G.AvgDegree() {
		t.Fatalf("internal links did not raise density: %v vs %v",
			withInternal.G.AvgDegree(), noInternal.G.AvgDegree())
	}
}

func TestPFPHeavyTailAndRichClub(t *testing.T) {
	top, err := DefaultPFP(8000).Generate(rng.New(31))
	if err != nil {
		t.Fatal(err)
	}
	fit, err := stats.FitPowerLawDiscrete(metrics.DegreesAsFloats(top.G))
	if err != nil {
		t.Fatal(err)
	}
	if fit.Alpha < 1.8 || fit.Alpha > 2.8 {
		t.Fatalf("PFP exponent = %v, want ~2.2", fit.Alpha)
	}
	// Rich club: the ~10 highest-degree nodes should be densely
	// interconnected (use the smallest club of size >= 10; the very last
	// thresholds hold single nodes where φ is degenerate).
	rc := metrics.RichClub(top.G)
	var club *metrics.RichClubPoint
	for i := len(rc) - 1; i >= 0; i-- {
		if rc[i].N >= 10 {
			club = &rc[i]
			break
		}
	}
	if club == nil {
		t.Fatal("no rich-club point with >= 10 members")
	}
	if club.Phi < 0.5 {
		t.Fatalf("PFP rich-club φ(N=%d) = %v, want high", club.N, club.Phi)
	}
	// PFP is disassortative like the AS map.
	if r := metrics.Assortativity(top.G); r >= 0 {
		t.Fatalf("PFP assortativity = %v, want negative", r)
	}
}

func TestFKPIsTree(t *testing.T) {
	top, err := FKP{N: 500, Alpha: 10}.Generate(rng.New(37))
	if err != nil {
		t.Fatal(err)
	}
	if top.G.M() != 499 {
		t.Fatalf("FKP edges = %d, want N-1", top.G.M())
	}
	if !top.G.IsConnected() {
		t.Fatal("FKP tree must be connected")
	}
}

func TestFKPAlphaRegimes(t *testing.T) {
	// Tiny alpha: cost dominated by centrality -> star around the root.
	star, err := FKP{N: 300, Alpha: 0.01}.Generate(rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	if star.G.MaxDegree() < 290 {
		t.Fatalf("small-alpha FKP max degree = %d, want near-star", star.G.MaxDegree())
	}
	// Huge alpha: distance dominates -> no big hubs.
	spag, err := FKP{N: 300, Alpha: 1000}.Generate(rng.New(41))
	if err != nil {
		t.Fatal(err)
	}
	if spag.G.MaxDegree() > 30 {
		t.Fatalf("large-alpha FKP max degree = %d, want small", spag.G.MaxDegree())
	}
}

func TestInetMatchesTargetExponent(t *testing.T) {
	top, err := Inet{N: 8000, Gamma: 2.2, MinDeg: 1}.Generate(rng.New(43))
	if err != nil {
		t.Fatal(err)
	}
	fit, err := stats.FitPowerLawDiscrete(metrics.DegreesAsFloats(top.G))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-2.2) > 0.35 {
		t.Fatalf("Inet exponent = %v, want ~2.2", fit.Alpha)
	}
}

func TestInetConnected(t *testing.T) {
	top, err := Inet{N: 2000, Gamma: 2.3, MinDeg: 1}.Generate(rng.New(47))
	if err != nil {
		t.Fatal(err)
	}
	giant, _ := top.G.GiantComponent()
	frac := float64(giant.N()) / float64(top.G.N())
	if frac < 0.99 {
		t.Fatalf("Inet giant component fraction = %v, want ~1", frac)
	}
}

func TestBRITEDegreeAndDistanceBias(t *testing.T) {
	top, err := BRITE{N: 1500, M: 2, Beta: 0.15}.Generate(rng.New(53))
	if err != nil {
		t.Fatal(err)
	}
	if !top.G.IsConnected() {
		t.Fatal("BRITE graph must be connected")
	}
	// Heavier tail than Waxman at same size.
	if top.G.MaxDegree() < 30 {
		t.Fatalf("BRITE max degree = %d, expected hubs", top.G.MaxDegree())
	}
	// Distance bias: edges shorter than random pairs.
	var edgeD []float64
	top.G.Edges(func(u, v, w int) bool {
		edgeD = append(edgeD, top.Pos[u].Dist(top.Pos[v]))
		return true
	})
	r := rng.New(1)
	var randD []float64
	for i := 0; i < 5000; i++ {
		u, v := r.Intn(1500), r.Intn(1500)
		if u != v {
			randD = append(randD, top.Pos[u].Dist(top.Pos[v]))
		}
	}
	if stats.Mean(edgeD) >= stats.Mean(randD) {
		t.Fatalf("BRITE edges not distance-biased: %v vs %v", stats.Mean(edgeD), stats.Mean(randD))
	}
}

func TestTransitStubStructure(t *testing.T) {
	m := TransitStub{Transits: 3, TransitSize: 4, StubsPerNode: 2, StubSize: 5, EdgeP: 0.5, ExtraTransitP: 0.2}
	top, err := m.Generate(rng.New(59))
	if err != nil {
		t.Fatal(err)
	}
	wantN := 3*4 + 3*4*2*5
	if top.G.N() != wantN {
		t.Fatalf("TransitStub N = %d, want %d", top.G.N(), wantN)
	}
	if !top.G.IsConnected() {
		t.Fatal("TransitStub must be connected")
	}
}

func TestTransitStubNoHeavyTail(t *testing.T) {
	top, err := DefaultTransitStub(3000).Generate(rng.New(61))
	if err != nil {
		t.Fatal(err)
	}
	s := stats.Summarize(metrics.DegreesAsFloats(top.G))
	if s.Max > 8*s.Mean+20 {
		t.Fatalf("TransitStub unexpectedly heavy-tailed: max %v mean %v", s.Max, s.Mean)
	}
}

func TestDefaultTransitStubApproximatesN(t *testing.T) {
	for _, n := range []int{500, 3000, 10000} {
		top, err := DefaultTransitStub(n).Generate(rng.New(67))
		if err != nil {
			t.Fatal(err)
		}
		got := float64(top.G.N())
		if got < 0.4*float64(n) || got > 2.5*float64(n) {
			t.Fatalf("DefaultTransitStub(%d) produced %v nodes", n, got)
		}
	}
}

func TestSmallNDegenerateCases(t *testing.T) {
	// Every generator must cope with N smaller than its seed/parameter
	// demands without panicking.
	small := []Generator{
		BA{N: 2, M: 3},
		GLP{N: 2, M: 3, P: 0.3, Beta: 0.5},
		DefaultPFP(2),
		FKP{N: 1, Alpha: 1},
		Inet{N: 3, Gamma: 2.5, MinDeg: 1},
		BRITE{N: 2, M: 3, Beta: 0.2},
		Waxman{N: 1, Alpha: 0.5, Beta: 0.2},
		GNP{N: 1, P: 0.5},
	}
	for _, m := range small {
		top, err := m.Generate(rng.New(71))
		if err != nil {
			t.Fatalf("%s small-N: %v", m.Name(), err)
		}
		if err := top.G.CheckInvariants(); err != nil {
			t.Fatalf("%s small-N: %v", m.Name(), err)
		}
	}
}

var _ = graph.New // keep import when tests shuffle
