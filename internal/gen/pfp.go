package gen

import (
	"math"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// PFP is the Positive-Feedback Preference model (Zhou–Mondragón 2004),
// built around two observations from AS maps: growth is mostly driven by
// new links between existing nodes ("interactive growth"), and rich
// nodes gain degree super-linearly. Attachment probability is
// proportional to k^(1 + Delta·log10 k). At each step:
//
//   - with probability P:   a new node attaches to one host, and that
//     host gains one internal link to a peer;
//   - with probability Q:   a new node attaches to one host, and the
//     host gains two internal peer links;
//   - otherwise:            a new node attaches to two hosts, and the
//     first host gains one internal peer link.
//
// The defaults P=0.4, Q=0.3, Delta=0.048 are the published calibration;
// PFP reproduces the AS map's exponent, rich-club and disassortativity
// simultaneously, which degree-linear models cannot.
type PFP struct {
	N     int
	P, Q  float64
	Delta float64
}

// DefaultPFP returns the published parameterization at size n.
func DefaultPFP(n int) PFP { return PFP{N: n, P: 0.4, Q: 0.3, Delta: 0.048} }

// Name implements Generator.
func (PFP) Name() string { return "pfp" }

func (m PFP) validate() error {
	if err := validateN(m.Name(), m.N); err != nil {
		return err
	}
	if m.P < 0 || m.Q < 0 || m.P+m.Q > 1 {
		return errPositive(m.Name(), "P,Q with P+Q <= 1")
	}
	if m.Delta < 0 {
		return errPositive(m.Name(), "Delta")
	}
	return nil
}

// Generate implements Generator. This is the sequential reference the
// sharded kernel is pinned against.
func (m PFP) Generate(r *rng.Rand) (*Topology, error) {
	return m.generate(r, Trajectory{})
}

// GenerateTrajectory implements TrajectoryGenerator: observation lands
// after each arrival's full step, host links and internal peer links
// included.
func (m PFP) GenerateTrajectory(r *rng.Rand, workers int, t Trajectory) (*Topology, error) {
	if workers <= 1 {
		return m.generate(r, t)
	}
	return m.generateSharded(r, workers, t)
}

func (m PFP) generate(r *rng.Rand, traj Trajectory) (*Topology, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	seed := 3
	if seed > m.N {
		seed = m.N
	}
	cur := newTrajectoryCursor(traj, seed)
	g := graph.New(seed)
	f := rng.NewFenwick(r, m.N)
	for u := 1; u < seed; u++ {
		g.MustAddEdge(u-1, u)
	}
	weight := func(u int) float64 {
		k := float64(g.Degree(u))
		if k <= 0 {
			return 0
		}
		return math.Pow(k, 1+m.Delta*math.Log10(k))
	}
	for u := 0; u < seed; u++ {
		f.Set(u, weight(u))
	}
	refresh := func(us ...int) {
		for _, u := range us {
			f.Set(u, weight(u))
		}
	}
	// addInternal links host to a preferentially chosen peer != host,
	// skipping duplicates (PFP discards them).
	addInternal := func(host int) {
		saved := f.Weight(host)
		f.Set(host, 0)
		peer := f.Sample()
		f.Set(host, saved)
		if peer < 0 || peer == host || g.HasEdge(host, peer) {
			return
		}
		g.MustAddEdge(host, peer)
		refresh(host, peer)
	}
	for g.N() < m.N {
		x := r.Float64()
		u := g.AddNode()
		switch {
		case x < m.P:
			hosts := f.SampleDistinct(1)
			if len(hosts) == 1 {
				g.MustAddEdge(u, hosts[0])
				refresh(u, hosts[0])
				addInternal(hosts[0])
			}
		case x < m.P+m.Q:
			hosts := f.SampleDistinct(1)
			if len(hosts) == 1 {
				g.MustAddEdge(u, hosts[0])
				refresh(u, hosts[0])
				addInternal(hosts[0])
				addInternal(hosts[0])
			}
		default:
			hosts := f.SampleDistinct(2)
			for _, h := range hosts {
				g.MustAddEdge(u, h)
				refresh(h)
			}
			refresh(u)
			if len(hosts) > 0 {
				addInternal(hosts[0])
			}
		}
		if err := cur.visit(g, g.N()); err != nil {
			return nil, err
		}
	}
	if err := cur.finish(g, g.N()); err != nil {
		return nil, err
	}
	return &Topology{G: g}, nil
}

// pfpSlots is the fixed plan layout per PFP step: up to two hosts plus
// up to two internal peers, -1 marking absent draws.
const pfpSlots = 4

// GenerateSharded implements ShardedGenerator. Every step adds one node,
// so a round of growthBatch arrivals draws its step kinds (P/Q/other)
// from the main stream, plans hosts and internal peers for all steps in
// parallel against the frozen super-linear weights (peers exclude their
// host at plan time, mirroring addInternal's zeroed-host draw), and
// commits in step order, discarding duplicate internal links as the
// sequential model does.
func (m PFP) GenerateSharded(r *rng.Rand, workers int) (*Topology, error) {
	return m.generateSharded(r, workers, Trajectory{})
}

func (m PFP) generateSharded(r *rng.Rand, workers int, traj Trajectory) (*Topology, error) {
	if workers <= 1 {
		return m.generate(r, traj)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	seed := 3
	if seed > m.N {
		seed = m.N
	}
	cur := newTrajectoryCursor(traj, seed)
	k := newGrowth(r, workers, m.N)
	if cur != nil {
		k.mirror()
	}
	k.trackDuplicates(m.N)
	for u := 0; u < seed; u++ {
		k.addNode()
	}
	for u := 1; u < seed; u++ {
		k.addEdge(u-1, u)
	}
	wOf := func(u int) float64 {
		kk := float64(k.degree[u])
		if kk <= 0 {
			return 0
		}
		return math.Pow(kk, 1+m.Delta*math.Log10(kk))
	}
	for u := 0; u < seed; u++ {
		k.weights[u] = wOf(u)
	}
	refresh := func(us ...int) {
		for _, u := range us {
			k.weights[u] = wOf(u)
		}
	}
	// internal commits a planned host→peer link unless the plan's peer
	// is absent or the link already exists (PFP discards duplicates).
	internal := func(host, peer int) {
		if peer < 0 || peer == host || k.hasEdge(host, peer) {
			return
		}
		k.addEdge(host, peer)
		refresh(host, peer)
	}
	var kinds []byte
	var flat []int
	for k.n < m.N {
		b := growthBatch(k.n, m.N-k.n)
		kinds = kinds[:0]
		for i := 0; i < b; i++ {
			x := r.Float64()
			switch {
			case x < m.P:
				kinds = append(kinds, 0)
			case x < m.P+m.Q:
				kinds = append(kinds, 1)
			default:
				kinds = append(kinds, 2)
			}
		}
		t := k.freeze()
		if cap(flat) < b*pfpSlots {
			flat = make([]int, b*pfpSlots)
		}
		k.forItems(b, func(i int, rs *rng.Rand) {
			seg := flat[i*pfpSlots : (i+1)*pfpSlots]
			seg[0], seg[1], seg[2], seg[3] = -1, -1, -1, -1
			var hb, pb [2]int
			peerOf := func(host int) int {
				p := k.sampleDistinct(t, rs, 1, func(c int) bool { return c == host }, pb[:0])
				if len(p) == 0 {
					return -1
				}
				return p[0]
			}
			switch kinds[i] {
			case 0: // new node → host; host gains one peer link
				if hosts := k.sampleDistinct(t, rs, 1, nil, hb[:0]); len(hosts) == 1 {
					h := hosts[0]
					seg[0] = h
					seg[2] = peerOf(h)
				}
			case 1: // new node → host; host gains two peer links
				if hosts := k.sampleDistinct(t, rs, 1, nil, hb[:0]); len(hosts) == 1 {
					h := hosts[0]
					seg[0] = h
					seg[2] = peerOf(h)
					seg[3] = peerOf(h)
				}
			default: // new node → two hosts; first host gains one peer link
				hosts := k.sampleDistinct(t, rs, 2, nil, hb[:0])
				var h0, h1 = -1, -1
				if len(hosts) > 0 {
					h0 = hosts[0]
				}
				if len(hosts) > 1 {
					h1 = hosts[1]
				}
				if h0 >= 0 {
					seg[0] = h0
					seg[2] = peerOf(h0)
				}
				seg[1] = h1
			}
		})
		for i := range kinds {
			seg := flat[i*pfpSlots : (i+1)*pfpSlots]
			u := k.addNode()
			if seg[0] >= 0 {
				k.addEdge(u, seg[0])
				refresh(u, seg[0])
			}
			if seg[1] >= 0 {
				k.addEdge(u, seg[1])
				refresh(u, seg[1])
			}
			if seg[0] >= 0 {
				internal(seg[0], seg[2])
				internal(seg[0], seg[3])
			}
			if err := cur.visit(k.live, k.n); err != nil {
				return nil, err
			}
		}
	}
	if err := cur.finish(k.live, k.n); err != nil {
		return nil, err
	}
	g, err := k.build()
	if err != nil {
		return nil, err
	}
	return &Topology{G: g}, nil
}
