package gen

import (
	"math"

	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// PFP is the Positive-Feedback Preference model (Zhou–Mondragón 2004),
// built around two observations from AS maps: growth is mostly driven by
// new links between existing nodes ("interactive growth"), and rich
// nodes gain degree super-linearly. Attachment probability is
// proportional to k^(1 + Delta·log10 k). At each step:
//
//   - with probability P:   a new node attaches to one host, and that
//     host gains one internal link to a peer;
//   - with probability Q:   a new node attaches to one host, and the
//     host gains two internal peer links;
//   - otherwise:            a new node attaches to two hosts, and the
//     first host gains one internal peer link.
//
// The defaults P=0.4, Q=0.3, Delta=0.048 are the published calibration;
// PFP reproduces the AS map's exponent, rich-club and disassortativity
// simultaneously, which degree-linear models cannot.
type PFP struct {
	N     int
	P, Q  float64
	Delta float64
}

// DefaultPFP returns the published parameterization at size n.
func DefaultPFP(n int) PFP { return PFP{N: n, P: 0.4, Q: 0.3, Delta: 0.048} }

// Name implements Generator.
func (PFP) Name() string { return "pfp" }

// Generate implements Generator.
func (m PFP) Generate(r *rng.Rand) (*Topology, error) {
	if err := validateN(m.Name(), m.N); err != nil {
		return nil, err
	}
	if m.P < 0 || m.Q < 0 || m.P+m.Q > 1 {
		return nil, errPositive(m.Name(), "P,Q with P+Q <= 1")
	}
	if m.Delta < 0 {
		return nil, errPositive(m.Name(), "Delta")
	}
	seed := 3
	if seed > m.N {
		seed = m.N
	}
	g := graph.New(seed)
	f := rng.NewFenwick(r, m.N)
	for u := 1; u < seed; u++ {
		g.MustAddEdge(u-1, u)
	}
	weight := func(u int) float64 {
		k := float64(g.Degree(u))
		if k <= 0 {
			return 0
		}
		return math.Pow(k, 1+m.Delta*math.Log10(k))
	}
	for u := 0; u < seed; u++ {
		f.Set(u, weight(u))
	}
	refresh := func(us ...int) {
		for _, u := range us {
			f.Set(u, weight(u))
		}
	}
	// addInternal links host to a preferentially chosen peer != host,
	// skipping duplicates (PFP discards them).
	addInternal := func(host int) {
		saved := f.Weight(host)
		f.Set(host, 0)
		peer := f.Sample()
		f.Set(host, saved)
		if peer < 0 || peer == host || g.HasEdge(host, peer) {
			return
		}
		g.MustAddEdge(host, peer)
		refresh(host, peer)
	}
	for g.N() < m.N {
		x := r.Float64()
		u := g.AddNode()
		switch {
		case x < m.P:
			hosts := f.SampleDistinct(1)
			if len(hosts) == 1 {
				g.MustAddEdge(u, hosts[0])
				refresh(u, hosts[0])
				addInternal(hosts[0])
			}
		case x < m.P+m.Q:
			hosts := f.SampleDistinct(1)
			if len(hosts) == 1 {
				g.MustAddEdge(u, hosts[0])
				refresh(u, hosts[0])
				addInternal(hosts[0])
				addInternal(hosts[0])
			}
		default:
			hosts := f.SampleDistinct(2)
			for _, h := range hosts {
				g.MustAddEdge(u, h)
				refresh(h)
			}
			refresh(u)
			if len(hosts) > 0 {
				addInternal(hosts[0])
			}
		}
	}
	return &Topology{G: g}, nil
}
