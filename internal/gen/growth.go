package gen

import (
	"netmodel/internal/graph"
	"netmodel/internal/par"
	"netmodel/internal/rng"
)

// This file is the sharded growth kernel: the machinery that lets the
// degree-driven generator families (BA, GLP, PFP) and the flat pair
// models (ER, Waxman) evaluate edge candidates in parallel while
// staying deterministic, mirroring the metrics engine's design.
//
// Growth models are sequential by definition — every attachment changes
// the weights the next attachment samples — so the kernel trades exact
// step-by-step coupling for frozen-weight rounds:
//
//  1. Plan: freeze the current preference weights into an immutable
//     alias table and let every arrival (or step) of the round draw its
//     edge candidates against it in parallel. Each item samples with
//     its own sub-stream, derived from the run seed and a global item
//     counter via rng.Rand.Split, so a plan is a pure function of the
//     seed — independent of worker count and scheduling.
//  2. Commit: apply the planned edges sequentially in item order,
//     updating weights and discarding duplicates exactly where the
//     sequential model would.
//  3. Build: hand the accumulated edge list to graph.Build, which
//     shards adjacency construction across the pool.
//
// Rounds grow geometrically (an eighth of the committed node count), so
// frozen weights are stale by a bounded fraction; the degree-
// distribution property tests in growth_test.go pin the resulting
// topologies to the same statistics as the sequential references, and
// the sequential implementations remain the reference path: workers <=
// 1 dispatches to them bit for bit.
//
// Determinism contract: GenerateSharded output is a pure function of
// the seed — identical across runs and across every worker count >= 2.

// growthRootTag keys the derivation of a kernel's stream root off the
// caller's generator state, keeping per-item streams disjoint from the
// main stream the model continues to draw from (step types, positions).
const growthRootTag = ^uint64(0)

// growthMinBatch is the smallest planning round; below it the parallel
// plan would not amortize its scheduling.
const growthMinBatch = 64

// growthBatch returns the next round size: an eighth of the committed
// node count, floored at growthMinBatch and capped by the remaining
// arrivals. A pure function of the committed count, so the round
// structure never depends on the worker pool.
func growthBatch(n, remaining int) int {
	b := n / 8
	if b < growthMinBatch {
		b = growthMinBatch
	}
	if b > remaining {
		b = remaining
	}
	return b
}

// growth is the shared state of one sharded growth run. Node ids are
// dense; weights, degrees and the edge multiset live in flat arrays so
// the plan phase reads and the commit phase writes without a graph in
// the loop — the Graph is materialized once at the end.
type growth struct {
	workers int
	root    rng.Rand // frozen derivation root for per-item streams
	stream  uint64   // next per-item stream index

	n       int       // committed node count
	weights []float64 // preference weight per committed node
	degree  []int32
	edges   []graph.Edge
	seen    map[uint64]struct{} // committed simple edges; nil unless the model needs duplicate checks
	live    *graph.Graph        // trajectory mode: the graph, maintained commit by commit
}

// newGrowth starts a kernel run: the stream root derives from r's
// current state once, and r stays with the caller for the sequential
// draws growth models make between rounds.
func newGrowth(r *rng.Rand, workers, capHint int) *growth {
	g := &growth{
		workers: par.Workers(workers),
		weights: make([]float64, 0, capHint),
		degree:  make([]int32, 0, capHint),
		edges:   make([]graph.Edge, 0, 2*capHint),
	}
	r.SplitInto(&g.root, growthRootTag)
	return g
}

// trackDuplicates enables the committed-edge index for models that must
// discard duplicate links (GLP, PFP). Models whose commits cannot
// collide (BA: every edge touches the arriving node) skip the index and
// its per-edge hashing cost.
func (g *growth) trackDuplicates(capHint int) {
	g.seen = make(map[uint64]struct{}, 2*capHint)
}

func edgeKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// mirror switches the kernel into trajectory mode: commits are applied
// to a live graph as they happen, so epoch observers see real graph
// states mid-run and build() returns the live graph instead of a final
// parallel construction. Call before any node or edge is committed.
func (g *growth) mirror() {
	g.live = graph.New(g.n)
}

// addNode commits a new isolated node and returns its id.
func (g *growth) addNode() int {
	g.weights = append(g.weights, 0)
	g.degree = append(g.degree, 0)
	g.n++
	if g.live != nil {
		g.live.AddNode()
	}
	return g.n - 1
}

// addEdge commits one simple edge. Callers check hasEdge first when the
// model discards duplicates; repeated pairs would otherwise accumulate
// multiplicity in the built graph.
func (g *growth) addEdge(u, v int) {
	if g.live != nil {
		// Trajectory mode: the live graph is the edge store; the flat
		// list would never be read by build().
		g.live.MustAddEdge(u, v)
	} else {
		g.edges = append(g.edges, graph.Edge{U: u, V: v, W: 1})
	}
	if g.seen != nil {
		g.seen[edgeKey(u, v)] = struct{}{}
	}
	g.degree[u]++
	g.degree[v]++
}

// hasEdge reports whether the simple edge has been committed. Valid
// only after trackDuplicates.
func (g *growth) hasEdge(u, v int) bool {
	_, ok := g.seen[edgeKey(u, v)]
	return ok
}

// freeze builds the round's immutable sampling table over the committed
// weights. nil means no positive weight remains.
func (g *growth) freeze() *rng.Alias {
	if g.n == 0 {
		return nil
	}
	t, err := rng.NewAliasTable(g.weights[:g.n])
	if err != nil {
		return nil
	}
	return t
}

// forItems shards fn over the round's items. Item i receives the
// sub-stream Split(counter + i) of the kernel root, so what it plans
// depends only on the seed and its global item index — never on which
// worker runs it. fn must write only index-private state.
func (g *growth) forItems(items int, fn func(i int, rs *rng.Rand)) {
	childs := make([]rng.Rand, par.Workers(g.workers))
	start := g.stream
	root := &g.root
	par.For(items, g.workers, func(w, i int) {
		rs := &childs[w]
		root.SplitInto(rs, start+uint64(i))
		fn(i, rs)
	})
	g.stream += uint64(items)
}

// sampleDistinct draws up to k distinct candidates from the frozen
// table with the shard stream rs, skipping indices for which excl
// returns true, appending into buf (reused). The fast path is alias
// rejection; when one candidate dominates the table or fewer than k
// positive weights remain, it falls back to an explicit weighted scan
// over the frozen weights — still a pure function of (table, stream),
// mirroring the fewer-than-k behavior of Fenwick.SampleDistinct.
func (g *growth) sampleDistinct(t *rng.Alias, rs *rng.Rand, k int, excl func(int) bool, buf []int) []int {
	buf = buf[:0]
	if t == nil || k <= 0 {
		return buf
	}
	limit := 16*k + 32
draws:
	for tries := 0; len(buf) < k && tries < limit; tries++ {
		c := t.NextWith(rs)
		if excl != nil && excl(c) {
			continue
		}
		for _, p := range buf {
			if p == c {
				continue draws
			}
		}
		buf = append(buf, c)
	}
	for len(buf) < k {
		n := t.Len()
		rem := 0.0
	remsum:
		for i := 0; i < n; i++ {
			if g.weights[i] <= 0 || (excl != nil && excl(i)) {
				continue
			}
			for _, p := range buf {
				if p == i {
					continue remsum
				}
			}
			rem += g.weights[i]
		}
		if rem <= 0 {
			break
		}
		target := rs.Float64() * rem
		chosen := -1
	scan:
		for i := 0; i < n; i++ {
			if g.weights[i] <= 0 || (excl != nil && excl(i)) {
				continue
			}
			for _, p := range buf {
				if p == i {
					continue scan
				}
			}
			chosen = i
			target -= g.weights[i]
			if target <= 0 {
				break
			}
		}
		if chosen < 0 {
			break
		}
		buf = append(buf, chosen)
	}
	return buf
}

// build materializes the committed edge multiset as a Graph, sharding
// adjacency construction across the pool. In trajectory mode the live
// graph already is that multiset, maintained commit by commit.
func (g *growth) build() (*graph.Graph, error) {
	if g.live != nil {
		return g.live, nil
	}
	return graph.Build(g.n, g.edges, g.workers)
}

// shardRows shards fn over rows [0, n): the flat-model counterpart of
// the growth rounds, for families whose candidate evaluations are
// independent per row (ER skip sampling, Waxman pair probes). Row i
// draws from sub-stream Split(i) of a root derived from r, and each
// worker collects edges into a private buffer; the buffers concatenate
// in worker order, and since graph.Build is order-insensitive the built
// topology is identical at every worker count.
func shardRows(r *rng.Rand, n, workers int, fn func(row int, rs *rng.Rand, emit func(u, v int))) []graph.Edge {
	width := par.Workers(workers)
	var root rng.Rand
	r.SplitInto(&root, growthRootTag)
	bufs := make([][]graph.Edge, width)
	childs := make([]rng.Rand, width)
	par.For(n, workers, func(w, row int) {
		rs := &childs[w]
		root.SplitInto(rs, uint64(row))
		fn(row, rs, func(u, v int) {
			bufs[w] = append(bufs[w], graph.Edge{U: u, V: v, W: 1})
		})
	})
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	out := make([]graph.Edge, 0, total)
	for _, b := range bufs {
		out = append(out, b...)
	}
	return out
}
