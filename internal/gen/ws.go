package gen

import (
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// WS is the Watts–Strogatz small-world model: a ring lattice where each
// node connects to its K nearest neighbors (K even), with every edge
// rewired to a uniform random endpoint with probability Beta. It
// interpolates between order (Beta=0) and G(n,m)-like randomness
// (Beta=1) and demonstrates that short paths and high clustering can
// coexist — but, unlike the Internet, with a homogeneous degree
// distribution.
type WS struct {
	N    int
	K    int     // even neighborhood size
	Beta float64 // rewiring probability
}

// Name implements Generator.
func (WS) Name() string { return "ws" }

// Generate implements Generator.
func (m WS) Generate(r *rng.Rand) (*Topology, error) {
	if err := validateN(m.Name(), m.N); err != nil {
		return nil, err
	}
	if m.K <= 0 || m.K%2 != 0 {
		return nil, errPositive(m.Name(), "even K")
	}
	if m.K >= m.N {
		return nil, ErrTooDense
	}
	if m.Beta < 0 || m.Beta > 1 {
		return nil, errPositive(m.Name(), "Beta in [0,1]")
	}
	g := graph.New(m.N)
	for u := 0; u < m.N; u++ {
		for j := 1; j <= m.K/2; j++ {
			g.MustAddEdge(u, (u+j)%m.N)
		}
	}
	// Rewire each lattice edge (u, u+j) with probability Beta, keeping u
	// and drawing a fresh endpoint; skip when the rewire would create a
	// self-loop or duplicate.
	for u := 0; u < m.N; u++ {
		for j := 1; j <= m.K/2; j++ {
			if r.Float64() >= m.Beta {
				continue
			}
			v := (u + j) % m.N
			if !g.HasEdge(u, v) {
				continue // already rewired away by the other endpoint
			}
			w := r.Intn(m.N)
			if w == u || g.HasEdge(u, w) {
				continue
			}
			if err := g.RemoveEdge(u, v); err != nil {
				return nil, err
			}
			g.MustAddEdge(u, w)
		}
	}
	return &Topology{G: g}, nil
}
