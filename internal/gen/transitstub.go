package gen

import (
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// TransitStub is a GT-ITM-style hierarchical generator (Zegura-Calvert-
// Bhattacharjee): the network is built as explicit routing hierarchy
// rather than emergent structure. Transit domains form a connected
// random core; every transit node sponsors stub domains; stub domains
// are connected random subgraphs hanging off their transit node. The
// model encodes the pre-power-law mental model of the Internet
// ("backbones and campuses") and is the structured baseline in the
// comparison experiments: realistic hierarchy, no heavy tail.
type TransitStub struct {
	Transits      int     // number of transit domains
	TransitSize   int     // nodes per transit domain
	StubsPerNode  int     // stub domains sponsored by each transit node
	StubSize      int     // nodes per stub domain
	EdgeP         float64 // intra-domain edge probability beyond the spanning backbone
	ExtraTransitP float64 // probability of extra inter-transit-domain links
}

// DefaultTransitStub returns a parameterization producing on the order
// of n nodes.
func DefaultTransitStub(n int) TransitStub {
	ts := TransitStub{Transits: 4, TransitSize: 8, StubsPerNode: 3, StubSize: 8, EdgeP: 0.4, ExtraTransitP: 0.3}
	// nodes = T*TS + T*TS*SPN*SS; solve for StubSize to approximate n.
	base := ts.Transits * ts.TransitSize
	if n > base {
		ts.StubSize = (n - base) / (base * ts.StubsPerNode)
		if ts.StubSize < 1 {
			ts.StubSize = 1
		}
	}
	return ts
}

// Name implements Generator.
func (TransitStub) Name() string { return "transitstub" }

// Generate implements Generator.
func (m TransitStub) Generate(r *rng.Rand) (*Topology, error) {
	if m.Transits <= 0 || m.TransitSize <= 0 || m.StubsPerNode < 0 || m.StubSize <= 0 {
		return nil, errPositive(m.Name(), "all sizes")
	}
	if m.EdgeP < 0 || m.EdgeP > 1 || m.ExtraTransitP < 0 || m.ExtraTransitP > 1 {
		return nil, errPositive(m.Name(), "probabilities in [0,1]")
	}
	g := graph.New(0)
	// connectedCluster adds size nodes wired as a random connected
	// subgraph (random tree + extra EdgeP links) and returns their ids.
	connectedCluster := func(size int) []int {
		ids := make([]int, size)
		for i := range ids {
			ids[i] = g.AddNode()
		}
		for i := 1; i < size; i++ {
			g.MustAddEdge(ids[i], ids[r.Intn(i)])
		}
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				if !g.HasEdge(ids[i], ids[j]) && r.Float64() < m.EdgeP {
					g.MustAddEdge(ids[i], ids[j])
				}
			}
		}
		return ids
	}
	// Transit domains.
	domains := make([][]int, m.Transits)
	for d := range domains {
		domains[d] = connectedCluster(m.TransitSize)
	}
	// Inter-transit backbone: ring of domains plus random extras, linking
	// random representatives.
	link := func(a, b []int) {
		u := a[r.Intn(len(a))]
		v := b[r.Intn(len(b))]
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	for d := 0; d < m.Transits; d++ {
		link(domains[d], domains[(d+1)%m.Transits])
	}
	for a := 0; a < m.Transits; a++ {
		for b := a + 2; b < m.Transits; b++ {
			if r.Float64() < m.ExtraTransitP {
				link(domains[a], domains[b])
			}
		}
	}
	// Stub domains per transit node.
	for _, dom := range domains {
		for _, tnode := range dom {
			for s := 0; s < m.StubsPerNode; s++ {
				stub := connectedCluster(m.StubSize)
				g.MustAddEdge(tnode, stub[r.Intn(len(stub))])
			}
		}
	}
	return &Topology{G: g}, nil
}
