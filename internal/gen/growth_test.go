package gen

import (
	"math"
	"testing"

	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/rng"
	"netmodel/internal/stats"
)

// shardedFamilies returns one configured instance of every family with
// a parallel kernel, at sizes where the cross-cutting contracts stay
// fast.
func shardedFamilies() []ShardedGenerator {
	return []ShardedGenerator{
		GNP{N: 400, P: 0.02},
		Waxman{N: 400, Alpha: 0.4, Beta: 0.15},
		BA{N: 400, M: 2},
		BA{N: 400, M: 2, A: -1},
		GLP{N: 400, M: 2, P: 0.4, Beta: 0.6},
		DefaultPFP(400),
		Inet{N: 400, Gamma: 2.2, MinDeg: 1},
		BRITE{N: 400, M: 2, Beta: 0.2},
	}
}

func edgeListsEqual(t *testing.T, name string, a, b *graph.Graph) {
	t.Helper()
	ea, eb := a.EdgeList(), b.EdgeList()
	if len(ea) != len(eb) {
		t.Fatalf("%s: edge counts differ: %d vs %d", name, len(ea), len(eb))
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("%s: edge %d differs: %+v vs %+v", name, i, ea[i], eb[i])
		}
	}
}

// TestShardedOneWorkerMatchesSequential: at workers=1 every sharded
// generator dispatches to the sequential reference, bit for bit.
func TestShardedOneWorkerMatchesSequential(t *testing.T) {
	for _, m := range shardedFamilies() {
		for _, seed := range []uint64{1, 2, 3} {
			seq, err := m.Generate(rng.New(seed))
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			one, err := m.GenerateSharded(rng.New(seed), 1)
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			edgeListsEqual(t, m.Name(), seq.G, one.G)
		}
	}
}

// TestShardedReproducibleAcrossRuns: at a fixed worker count the
// sharded kernel is a pure function of the seed.
func TestShardedReproducibleAcrossRuns(t *testing.T) {
	for _, m := range shardedFamilies() {
		for _, seed := range []uint64{1, 2, 3} {
			a, err := m.GenerateSharded(rng.New(seed), 4)
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			b, err := m.GenerateSharded(rng.New(seed), 4)
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			edgeListsEqual(t, m.Name(), a.G, b.G)
		}
	}
}

// TestShardedWorkerCountInvariance: plans depend only on the seed and
// the static item schedule, so the kernel's output is identical at
// every pool width >= 2.
func TestShardedWorkerCountInvariance(t *testing.T) {
	for _, m := range shardedFamilies() {
		two, err := m.GenerateSharded(rng.New(11), 2)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for _, workers := range []int{3, 4, 8} {
			w, err := m.GenerateSharded(rng.New(11), workers)
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			edgeListsEqual(t, m.Name(), two.G, w.G)
		}
	}
}

// TestShardedContract: invariants and embeddings hold on the parallel
// path, and different seeds produce different topologies.
func TestShardedContract(t *testing.T) {
	for _, m := range shardedFamilies() {
		top, err := m.GenerateSharded(rng.New(7), 4)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if top.G == nil || top.G.N() == 0 {
			t.Fatalf("%s: empty topology", m.Name())
		}
		if err := top.G.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if top.Pos != nil && len(top.Pos) != top.G.N() {
			t.Fatalf("%s: %d positions for %d nodes", m.Name(), len(top.Pos), top.G.N())
		}
		other, err := m.GenerateSharded(rng.New(8), 4)
		if err != nil {
			t.Fatal(err)
		}
		ea, eb := top.G.EdgeList(), other.G.EdgeList()
		if len(ea) == len(eb) {
			same := true
			for i := range ea {
				if ea[i] != eb[i] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("%s: different seeds produced identical topology", m.Name())
			}
		}
	}
}

// TestShardedSmallN: the kernel copes with N at or below the seed
// demands of each family.
func TestShardedSmallN(t *testing.T) {
	small := []ShardedGenerator{
		BA{N: 2, M: 3},
		GLP{N: 2, M: 3, P: 0.3, Beta: 0.5},
		DefaultPFP(2),
		Inet{N: 3, Gamma: 2.5, MinDeg: 1},
		BRITE{N: 2, M: 3, Beta: 0.2},
		Waxman{N: 1, Alpha: 0.5, Beta: 0.2},
		GNP{N: 1, P: 0.5},
	}
	for _, m := range small {
		top, err := m.GenerateSharded(rng.New(71), 4)
		if err != nil {
			t.Fatalf("%s small-N: %v", m.Name(), err)
		}
		if err := top.G.CheckInvariants(); err != nil {
			t.Fatalf("%s small-N: %v", m.Name(), err)
		}
	}
}

// TestShardedBAStructure: the parallel BA run keeps the exact edge
// budget and connectivity of the sequential model.
func TestShardedBAStructure(t *testing.T) {
	top, err := (BA{N: 1000, M: 2}).GenerateSharded(rng.New(13), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !top.G.IsConnected() {
		t.Fatal("sharded BA graph must be connected")
	}
	want := 3 + 2*(1000-3) // seed clique + M per arrival
	if top.G.M() != want {
		t.Fatalf("sharded BA edges = %d, want %d", top.G.M(), want)
	}
}

// TestShardedBAPowerLaw: frozen-round staleness must not move the BA
// degree exponent — the same tolerance the sequential test enforces.
func TestShardedBAPowerLaw(t *testing.T) {
	top, err := (BA{N: 15000, M: 2}).GenerateSharded(rng.New(17), 4)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := stats.FitPowerLawDiscrete(metrics.DegreesAsFloats(top.G))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-3) > 0.35 {
		t.Fatalf("sharded BA exponent = %v, want ~3", fit.Alpha)
	}
}

// TestShardedGLPHeavyTail: the sharded GLP keeps the AS-like exponent
// and hub formation of the reference.
func TestShardedGLPHeavyTail(t *testing.T) {
	top, err := (GLP{N: 20000, M: 1, P: 0.45, Beta: 0.65}).GenerateSharded(rng.New(23), 4)
	if err != nil {
		t.Fatal(err)
	}
	h, err := stats.Hill(metrics.DegreesAsFloats(top.G), 800)
	if err != nil {
		t.Fatal(err)
	}
	if h < 1.8 || h > 2.5 {
		t.Fatalf("sharded GLP Hill exponent = %v, want AS-like ~2.1", h)
	}
	if top.G.MaxDegree() < 80 {
		t.Fatalf("sharded GLP max degree = %d, expected hub formation", top.G.MaxDegree())
	}
}

// TestShardedPFPProperties: exponent and disassortativity survive the
// frozen-round approximation.
func TestShardedPFPProperties(t *testing.T) {
	top, err := DefaultPFP(6000).GenerateSharded(rng.New(31), 4)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := stats.FitPowerLawDiscrete(metrics.DegreesAsFloats(top.G))
	if err != nil {
		t.Fatal(err)
	}
	if fit.Alpha < 1.8 || fit.Alpha > 2.8 {
		t.Fatalf("sharded PFP exponent = %v, want ~2.2", fit.Alpha)
	}
	if r := metrics.Assortativity(top.G); r >= 0 {
		t.Fatalf("sharded PFP assortativity = %v, want negative", r)
	}
}

// TestShardedGNPDensity: the per-row skip walk realizes the same edge
// density as the sequential triangle walk.
func TestShardedGNPDensity(t *testing.T) {
	m := GNP{N: 2000, P: 0.004}
	top, err := m.GenerateSharded(rng.New(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.004 * float64(2000*1999/2)
	got := float64(top.G.M())
	if math.Abs(got-want) > 5*math.Sqrt(want) {
		t.Fatalf("sharded GNP edges = %v, want ~%v", got, want)
	}
}

// TestShardedInetExponent: the parallel degree-sequence draw hits the
// same target exponent.
func TestShardedInetExponent(t *testing.T) {
	top, err := (Inet{N: 8000, Gamma: 2.2, MinDeg: 1}).GenerateSharded(rng.New(43), 4)
	if err != nil {
		t.Fatal(err)
	}
	fit, err := stats.FitPowerLawDiscrete(metrics.DegreesAsFloats(top.G))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-2.2) > 0.35 {
		t.Fatalf("sharded Inet exponent = %v, want ~2.2", fit.Alpha)
	}
}

// TestShardedBRITEStructure: connectivity, hubs and distance bias on
// the chunked-roulette path.
func TestShardedBRITEStructure(t *testing.T) {
	top, err := (BRITE{N: 1500, M: 2, Beta: 0.15}).GenerateSharded(rng.New(53), 4)
	if err != nil {
		t.Fatal(err)
	}
	if !top.G.IsConnected() {
		t.Fatal("sharded BRITE graph must be connected")
	}
	if top.G.MaxDegree() < 30 {
		t.Fatalf("sharded BRITE max degree = %d, expected hubs", top.G.MaxDegree())
	}
}

// TestGenerateWith: the dispatch helper takes the sharded path only
// when one exists and more than one worker is requested.
func TestGenerateWith(t *testing.T) {
	ba := BA{N: 300, M: 2}
	seq, err := GenerateWith(ba, rng.New(5), 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ba.Generate(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	edgeListsEqual(t, "ba/workers=1", seq.G, ref.G)

	sh, err := GenerateWith(ba, rng.New(5), 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ba.GenerateSharded(rng.New(5), 4)
	if err != nil {
		t.Fatal(err)
	}
	edgeListsEqual(t, "ba/workers=4", sh.G, want.G)

	// A family without a kernel falls back to the sequential path.
	ws := WS{N: 200, K: 4, Beta: 0.1}
	a, err := GenerateWith(ws, rng.New(5), 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ws.Generate(rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	edgeListsEqual(t, "ws fallback", a.G, b.G)
}
