package gen

import (
	"sort"

	"netmodel/internal/graph"
	"netmodel/internal/par"
	"netmodel/internal/rng"
)

// Inet is a degree-targeted generator in the style of Inet-3.0 (Jin,
// Chen, Jamin 2000): instead of growing the network, it first draws a
// power-law degree sequence with exponent Gamma and minimum MinDeg,
// then wires it Internet-style:
//
//  1. a spanning tree is built over nodes with target degree >= 2,
//     attaching each node preferentially by remaining stubs;
//  2. degree-1 nodes attach to the tree preferentially;
//  3. remaining stubs are matched from the highest-degree node down,
//     each to a distinct preferential partner.
//
// The approach guarantees connectivity and an exact-by-construction
// heavy tail, at the price of having no growth story — its role in the
// comparison matrix is "static fit" versus the dynamic models.
type Inet struct {
	N      int
	Gamma  float64 // target degree exponent, > 1
	MinDeg int     // minimum target degree, >= 1
}

// Name implements Generator.
func (Inet) Name() string { return "inet" }

func (m Inet) validate() error {
	if err := validateN(m.Name(), m.N); err != nil {
		return err
	}
	if m.Gamma <= 1 {
		return errPositive(m.Name(), "Gamma - 1")
	}
	if m.MinDeg < 1 {
		return errPositive(m.Name(), "MinDeg")
	}
	return nil
}

// clampTarget applies the power-law floor and simple-graph cap to one
// drawn target degree.
func (m Inet) clampTarget(d int) int {
	if d < m.MinDeg {
		d = m.MinDeg
	}
	if d > m.N-1 {
		d = m.N - 1
	}
	return d
}

// Generate implements Generator.
func (m Inet) Generate(r *rng.Rand) (*Topology, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	// Draw the target degree sequence from a discrete power law capped
	// at N-1 (simple-graph bound).
	target := make([]int, m.N)
	for i := range target {
		target[i] = m.clampTarget(int(r.Pareto(float64(m.MinDeg), m.Gamma-1)))
	}
	return m.wire(r, target)
}

// GenerateSharded implements ShardedGenerator: the degree-sequence draw
// — one Pareto variate per node — shards across the pool with per-node
// sub-streams; the three wiring phases stay on the main stream (the
// spanning tree and stub matching are a serial chain over one Fenwick
// tree). Output is a pure function of the seed at every worker count.
func (m Inet) GenerateSharded(r *rng.Rand, workers int) (*Topology, error) {
	if workers <= 1 {
		return m.Generate(r)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	width := par.Workers(workers)
	var root rng.Rand
	r.SplitInto(&root, growthRootTag)
	childs := make([]rng.Rand, width)
	target := make([]int, m.N)
	par.For(m.N, workers, func(w, i int) {
		rs := &childs[w]
		root.SplitInto(rs, uint64(i))
		target[i] = m.clampTarget(int(rs.Pareto(float64(m.MinDeg), m.Gamma-1)))
	})
	return m.wire(r, target)
}

// wire connects a drawn degree sequence Internet-style: spanning tree,
// degree-1 attachment, then stub matching from the largest node down.
func (m Inet) wire(r *rng.Rand, target []int) (*Topology, error) {
	// Ensure even stub total by bumping one node.
	total := 0
	for _, d := range target {
		total += d
	}
	if total%2 == 1 {
		target[0]++
	}
	g := graph.New(m.N)
	remaining := make([]float64, m.N)
	f := rng.NewFenwick(r, m.N)

	// Phase 1: spanning tree over nodes with target >= 2.
	var core []int
	for u, d := range target {
		if d >= 2 {
			core = append(core, u)
		}
	}
	if len(core) == 0 {
		core = []int{0}
	}
	r.Shuffle(len(core), func(i, j int) { core[i], core[j] = core[j], core[i] })
	for idx, u := range core {
		if idx == 0 {
			remaining[u] = float64(target[u])
			f.Set(u, remaining[u])
			continue
		}
		v := f.Sample()
		if v >= 0 {
			g.MustAddEdge(u, v)
			remaining[v]--
			f.Set(v, remaining[v])
		}
		remaining[u] = float64(target[u]) - 1
		f.Set(u, remaining[u])
	}
	// Phase 2: attach degree-1 nodes preferentially.
	for u, d := range target {
		if d != 1 {
			continue
		}
		v := f.Sample()
		if v < 0 {
			v = core[0]
			if v == u {
				continue
			}
			g.MustAddEdge(u, v)
			continue
		}
		g.MustAddEdge(u, v)
		remaining[v]--
		f.Set(v, remaining[v])
	}
	// Phase 3: fill remaining stubs from the largest node down.
	order := make([]int, 0, len(core))
	order = append(order, core...)
	sort.Slice(order, func(a, b int) bool { return remaining[order[a]] > remaining[order[b]] })
	for _, u := range order {
		for remaining[u] >= 1 {
			// Sample a partner that is not u and not already adjacent.
			saved := f.Weight(u)
			f.Set(u, 0)
			v := -1
			for try := 0; try < 30; try++ {
				cand := f.Sample()
				if cand < 0 {
					break
				}
				if !g.HasEdge(u, cand) {
					v = cand
					break
				}
			}
			f.Set(u, saved)
			if v < 0 {
				// No compatible partner remains; drop u's leftover stubs.
				remaining[u] = 0
				f.Set(u, 0)
				break
			}
			g.MustAddEdge(u, v)
			remaining[u]--
			remaining[v]--
			f.Set(u, remaining[u])
			f.Set(v, remaining[v])
		}
	}
	return &Topology{G: g}, nil
}
