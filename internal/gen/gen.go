// Package gen implements the published Internet topology generator
// families: flat random models (Erdős–Rényi, Watts–Strogatz, random
// geometric), the distance-driven Waxman model, degree-driven growth
// models (Barabási–Albert and its initial-attractiveness extension, GLP,
// PFP), optimization-driven FKP/HOT trees, degree-targeted Inet-style
// synthesis, BRITE-style hybrid growth and GT-ITM-style transit-stub
// hierarchies.
//
// Every generator is a value type holding its parameters, produces a
// Topology from an explicit random source, and is fully deterministic
// given a seed. Parameter validation happens at generation time so
// zero-value misconfigurations fail loudly rather than silently
// producing degenerate maps.
package gen

import (
	"errors"
	"fmt"

	"netmodel/internal/geom"
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// Topology is the output of a generator: the graph plus, for geographic
// models, the node embedding (nil otherwise).
type Topology struct {
	G   *graph.Graph
	Pos []geom.Point
}

// Generator produces synthetic topologies.
type Generator interface {
	// Name identifies the model family (stable, lowercase).
	Name() string
	// Generate builds a topology from the random source.
	Generate(r *rng.Rand) (*Topology, error)
}

// ShardedGenerator is implemented by families with a parallel growth
// kernel (see growth.go). The contract:
//
//   - workers <= 1 runs the sequential reference implementation, so the
//     output is bit-identical to Generate for the same seed;
//   - workers >= 2 runs the sharded kernel, whose output is a pure
//     function of the seed: identical across repeated runs and across
//     every worker count, though generally different from the
//     sequential edge list (the equivalence property tests pin its
//     degree statistics to the reference).
type ShardedGenerator interface {
	Generator
	// GenerateSharded builds the topology across a pool of the given
	// width. workers <= 1 — including 0 — runs the sequential
	// reference; callers that want "all cores" resolve GOMAXPROCS
	// themselves (as GenerateWith's users do) before calling.
	GenerateSharded(r *rng.Rand, workers int) (*Topology, error)
}

// GenerateWith runs g's sharded kernel when it has one and more than
// one worker is requested, and the sequential path otherwise. It is the
// single dispatch point the tools and pipelines plumb -workers through.
func GenerateWith(g Generator, r *rng.Rand, workers int) (*Topology, error) {
	if sg, ok := g.(ShardedGenerator); ok && workers > 1 {
		return sg.GenerateSharded(r, workers)
	}
	return g.Generate(r)
}

// errPositive formats a standard validation error.
func errPositive(model, field string) error {
	return fmt.Errorf("gen/%s: %s must be positive", model, field)
}

// validateN rejects non-positive node counts.
func validateN(model string, n int) error {
	if n <= 0 {
		return errPositive(model, "N")
	}
	return nil
}

// ErrTooDense is returned when a model's edge demand exceeds what a
// simple graph on its node count can host.
var ErrTooDense = errors.New("gen: requested density exceeds simple-graph capacity")
