package gen

import (
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// GLP is the Generalized Linear Preference model (Bu–Towsley 2002),
// designed specifically to match AS-map statistics that plain BA misses.
// At each step, with probability P the network adds M new links between
// existing nodes; otherwise a new node joins with M links. Targets are
// drawn with probability proportional to k − Beta, where Beta < 1 shifts
// preference toward high-degree nodes and tunes the exponent to
// γ ≈ 2.2 while the internal-link steps raise clustering to AS-map
// levels — the combination that made GLP the reference "Internet-like"
// degree-driven generator.
type GLP struct {
	N    int
	M    int     // links per step
	P    float64 // probability of an internal-link step
	Beta float64 // preference shift, < 1
}

// Name implements Generator.
func (GLP) Name() string { return "glp" }

func (m GLP) validate() error {
	if err := validateN(m.Name(), m.N); err != nil {
		return err
	}
	if m.M <= 0 {
		return errPositive(m.Name(), "M")
	}
	if m.P < 0 || m.P >= 1 {
		return errPositive(m.Name(), "P in [0,1)")
	}
	if m.Beta >= 1 {
		return errPositive(m.Name(), "1 - Beta")
	}
	return nil
}

// Generate implements Generator. This is the sequential reference the
// sharded kernel is pinned against.
func (m GLP) Generate(r *rng.Rand) (*Topology, error) {
	return m.generate(r, Trajectory{})
}

// GenerateTrajectory implements TrajectoryGenerator; internal-link
// steps leave the node count unchanged, so epochs land exactly on
// arrival boundaries in both the sequential and sharded paths.
func (m GLP) GenerateTrajectory(r *rng.Rand, workers int, t Trajectory) (*Topology, error) {
	if workers <= 1 {
		return m.generate(r, t)
	}
	return m.generateSharded(r, workers, t)
}

func (m GLP) generate(r *rng.Rand, traj Trajectory) (*Topology, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	seed := m.M + 2
	if seed > m.N {
		seed = m.N
	}
	cur := newTrajectoryCursor(traj, seed)
	g := graph.New(seed)
	f := rng.NewFenwick(r, m.N)
	for u := 1; u < seed; u++ {
		g.MustAddEdge(u-1, u)
	}
	weight := func(u int) float64 { return float64(g.Degree(u)) - m.Beta }
	for u := 0; u < seed; u++ {
		f.Set(u, weight(u))
	}
	for g.N() < m.N {
		if r.Float64() < m.P && g.N() >= 2 {
			// Internal links: M pairs of distinct preferential endpoints.
			for i := 0; i < m.M; i++ {
				pair := f.SampleDistinct(2)
				if len(pair) < 2 {
					break
				}
				u, v := pair[0], pair[1]
				if g.HasEdge(u, v) {
					continue // GLP discards duplicate internal links
				}
				g.MustAddEdge(u, v)
				f.Set(u, weight(u))
				f.Set(v, weight(v))
			}
			continue
		}
		u := g.AddNode()
		targets := f.SampleDistinct(m.M)
		for _, v := range targets {
			g.MustAddEdge(u, v)
			f.Set(v, weight(v))
		}
		f.Set(u, weight(u))
		if err := cur.visit(g, g.N()); err != nil {
			return nil, err
		}
	}
	if err := cur.finish(g, g.N()); err != nil {
		return nil, err
	}
	return &Topology{G: g}, nil
}

// GenerateSharded implements ShardedGenerator. Each round first draws
// its step schedule (internal-link step vs new-node step, the same
// Bernoulli the sequential loop runs at each iteration head) from the
// main stream, then plans every step's preferential draws in parallel
// against the round's frozen weights — M endpoint pairs for an internal
// step, M distinct targets for an arrival — and commits in step order,
// discarding duplicate internal links exactly as the sequential model
// does.
func (m GLP) GenerateSharded(r *rng.Rand, workers int) (*Topology, error) {
	return m.generateSharded(r, workers, Trajectory{})
}

func (m GLP) generateSharded(r *rng.Rand, workers int, traj Trajectory) (*Topology, error) {
	if workers <= 1 {
		return m.generate(r, traj)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	seed := m.M + 2
	if seed > m.N {
		seed = m.N
	}
	cur := newTrajectoryCursor(traj, seed)
	k := newGrowth(r, workers, m.N)
	if cur != nil {
		k.mirror()
	}
	k.trackDuplicates(m.N)
	for u := 0; u < seed; u++ {
		k.addNode()
	}
	for u := 1; u < seed; u++ {
		k.addEdge(u-1, u)
	}
	wOf := func(u int) float64 {
		w := float64(k.degree[u]) - m.Beta
		if w < 0 {
			return 0
		}
		return w
	}
	for u := 0; u < seed; u++ {
		k.weights[u] = wOf(u)
	}
	kMax := 2 * m.M // slots per step: M pairs, or M targets
	var steps []bool
	var flat []int
	var lens []int
	for k.n < m.N {
		nodes := growthBatch(k.n, m.N-k.n)
		steps = steps[:0]
		for arrived := 0; arrived < nodes; {
			if r.Float64() < m.P && k.n >= 2 {
				steps = append(steps, true)
			} else {
				steps = append(steps, false)
				arrived++
			}
		}
		t := k.freeze()
		if cap(flat) < len(steps)*kMax {
			flat = make([]int, len(steps)*kMax)
			lens = make([]int, len(steps))
		}
		k.forItems(len(steps), func(i int, rs *rng.Rand) {
			seg := flat[i*kMax : i*kMax : (i+1)*kMax]
			if steps[i] {
				var pb [2]int
				for j := 0; j < m.M; j++ {
					pair := k.sampleDistinct(t, rs, 2, nil, pb[:0])
					if len(pair) < 2 {
						break
					}
					seg = append(seg, pair[0], pair[1])
				}
			} else {
				seg = k.sampleDistinct(t, rs, m.M, nil, seg)
			}
			lens[i] = len(seg)
		})
		for i, internal := range steps {
			seg := flat[i*kMax : i*kMax+lens[i]]
			if internal {
				for j := 0; j+1 < len(seg); j += 2 {
					u, v := seg[j], seg[j+1]
					if k.hasEdge(u, v) {
						continue // GLP discards duplicate internal links
					}
					k.addEdge(u, v)
					k.weights[u] = wOf(u)
					k.weights[v] = wOf(v)
				}
			} else {
				u := k.addNode()
				for _, v := range seg {
					k.addEdge(u, v)
					k.weights[v] = wOf(v)
				}
				k.weights[u] = wOf(u)
				if err := cur.visit(k.live, k.n); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := cur.finish(k.live, k.n); err != nil {
		return nil, err
	}
	g, err := k.build()
	if err != nil {
		return nil, err
	}
	return &Topology{G: g}, nil
}
