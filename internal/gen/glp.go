package gen

import (
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// GLP is the Generalized Linear Preference model (Bu–Towsley 2002),
// designed specifically to match AS-map statistics that plain BA misses.
// At each step, with probability P the network adds M new links between
// existing nodes; otherwise a new node joins with M links. Targets are
// drawn with probability proportional to k − Beta, where Beta < 1 shifts
// preference toward high-degree nodes and tunes the exponent to
// γ ≈ 2.2 while the internal-link steps raise clustering to AS-map
// levels — the combination that made GLP the reference "Internet-like"
// degree-driven generator.
type GLP struct {
	N    int
	M    int     // links per step
	P    float64 // probability of an internal-link step
	Beta float64 // preference shift, < 1
}

// Name implements Generator.
func (GLP) Name() string { return "glp" }

// Generate implements Generator.
func (m GLP) Generate(r *rng.Rand) (*Topology, error) {
	if err := validateN(m.Name(), m.N); err != nil {
		return nil, err
	}
	if m.M <= 0 {
		return nil, errPositive(m.Name(), "M")
	}
	if m.P < 0 || m.P >= 1 {
		return nil, errPositive(m.Name(), "P in [0,1)")
	}
	if m.Beta >= 1 {
		return nil, errPositive(m.Name(), "1 - Beta")
	}
	seed := m.M + 2
	if seed > m.N {
		seed = m.N
	}
	g := graph.New(seed)
	f := rng.NewFenwick(r, m.N)
	for u := 1; u < seed; u++ {
		g.MustAddEdge(u-1, u)
	}
	weight := func(u int) float64 { return float64(g.Degree(u)) - m.Beta }
	for u := 0; u < seed; u++ {
		f.Set(u, weight(u))
	}
	for g.N() < m.N {
		if r.Float64() < m.P && g.N() >= 2 {
			// Internal links: M pairs of distinct preferential endpoints.
			for i := 0; i < m.M; i++ {
				pair := f.SampleDistinct(2)
				if len(pair) < 2 {
					break
				}
				u, v := pair[0], pair[1]
				if g.HasEdge(u, v) {
					continue // GLP discards duplicate internal links
				}
				g.MustAddEdge(u, v)
				f.Set(u, weight(u))
				f.Set(v, weight(v))
			}
			continue
		}
		u := g.AddNode()
		targets := f.SampleDistinct(m.M)
		for _, v := range targets {
			g.MustAddEdge(u, v)
			f.Set(v, weight(v))
		}
		f.Set(u, weight(u))
	}
	return &Topology{G: g}, nil
}
