package gen

import (
	"math"

	"netmodel/internal/geom"
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// FKP is the Fabrikant–Koutsoupias–Papadimitriou "Heuristically
// Optimized Trade-offs" model (ICALP 2002), the HOT answer to
// preferential attachment: heavy tails emerge not from popularity but
// from each new node optimizing a trade-off between geographic link
// cost and network centrality. Node i arrives at a uniform random
// position and connects to the existing node j minimizing
//
//	Alpha · d(i,j) + h(j)
//
// where h(j) is j's hop distance to the root. The result is a tree:
// Alpha ≪ 1 yields a star, Alpha ≫ √N yields distance-minimizing
// spaghetti, and the intermediate regime produces power-law-ish degree
// tails — with far more skew and zero clustering compared to AS maps,
// which is its role in the comparison experiments.
type FKP struct {
	N     int
	Alpha float64
}

// Name implements Generator.
func (FKP) Name() string { return "fkp" }

// Generate implements Generator, O(N²) by direct minimization.
func (m FKP) Generate(r *rng.Rand) (*Topology, error) {
	if err := validateN(m.Name(), m.N); err != nil {
		return nil, err
	}
	if m.Alpha <= 0 {
		return nil, errPositive(m.Name(), "Alpha")
	}
	pts := geom.Uniform(r, m.N)
	g := graph.New(m.N)
	hops := make([]float64, m.N) // h(j): hop count to node 0
	for i := 1; i < m.N; i++ {
		best, bestCost := 0, math.Inf(1)
		for j := 0; j < i; j++ {
			cost := m.Alpha*pts[i].Dist(pts[j]) + hops[j]
			if cost < bestCost {
				best, bestCost = j, cost
			}
		}
		g.MustAddEdge(i, best)
		hops[i] = hops[best] + 1
	}
	return &Topology{G: g, Pos: pts}, nil
}
