package compare

import (
	"math"
	"strings"
	"testing"

	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/refdata"
	"netmodel/internal/rng"
)

func TestAgainstSelfLikeTargetScoresLow(t *testing.T) {
	// A GLP map is Internet-like; its score against the AS target must be
	// far better than an ER graph of the same size.
	r := rng.New(3)
	glp, err := gen.GLP{N: 4000, M: 2, P: 0.4, Beta: 0.6}.Generate(r)
	if err != nil {
		t.Fatal(err)
	}
	er, err := gen.GNP{N: 4000, P: 0.001}.Generate(r)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{PathSources: 200, Rand: rng.New(5)}
	repGLP, err := Against(glp.G, refdata.ASMap2001, opt)
	if err != nil {
		t.Fatal(err)
	}
	repER, err := Against(er.G, refdata.ASMap2001, opt)
	if err != nil {
		t.Fatal(err)
	}
	if repGLP.Score >= repER.Score {
		t.Fatalf("GLP score %v not better than ER %v", repGLP.Score, repER.Score)
	}
}

func TestAgainstRowsComplete(t *testing.T) {
	top, err := gen.BA{N: 500, M: 2}.Generate(rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Against(top.G, refdata.ASMap2001, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if math.IsNaN(row.RelError) || row.RelError < 0 {
			t.Fatalf("bad rel error in row %+v", row)
		}
	}
	out := rep.String()
	for _, want := range []string{"avg degree", "assortativity", "aggregate score"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report text missing %q:\n%s", want, out)
		}
	}
}

func TestAgainstEmpty(t *testing.T) {
	if _, err := Against(graph.New(0), refdata.ASMap2001, Options{}); err == nil {
		t.Fatal("empty graph should fail")
	}
}

func TestMeasureSpectraSlopes(t *testing.T) {
	// PFP maps have decaying knn and c(k) spectra (disassortative,
	// hierarchical); ER spectra are flat.
	pfp, err := gen.DefaultPFP(6000).Generate(rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	sp := MeasureSpectra(pfp.G)
	if math.IsNaN(sp.KnnSlope) || sp.KnnSlope >= 0 {
		t.Fatalf("PFP knn slope = %v, want negative", sp.KnnSlope)
	}
	er, err := gen.GNP{N: 6000, P: 0.0015}.Generate(rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	spER := MeasureSpectra(er.G)
	if !math.IsNaN(spER.KnnSlope) && math.Abs(spER.KnnSlope) > math.Abs(sp.KnnSlope) {
		t.Fatalf("ER knn slope %v steeper than PFP %v", spER.KnnSlope, sp.KnnSlope)
	}
}

func TestMeasureSpectraDegenerate(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	sp := MeasureSpectra(g)
	if !math.IsNaN(sp.KnnSlope) || !math.IsNaN(sp.CkSlope) {
		t.Fatalf("degenerate spectra must be NaN: %+v", sp)
	}
}

func TestRankModels(t *testing.T) {
	reports := map[string]*Report{
		"b": {Score: 0.5},
		"a": {Score: 0.1},
		"c": {Score: 0.9},
	}
	got := RankModels(reports)
	if got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("ranking = %v", got)
	}
}

// TestRankScoresDeterministic pins the tie-handling contract: equal
// scores break by name, NaN sorts last, and NaN-NaN ties — where IEEE
// comparisons are all false and a naive comparator degenerates — also
// break by name. Every permutation of the input map must rank the same.
func TestRankScoresDeterministic(t *testing.T) {
	scores := map[string]float64{
		"tie-b": 0.4, "tie-a": 0.4,
		"best": 0.1, "worst": 2.5,
		"nan-b": math.NaN(), "nan-a": math.NaN(),
	}
	want := []string{"best", "tie-a", "tie-b", "worst", "nan-a", "nan-b"}
	for trial := 0; trial < 20; trial++ {
		got := RankScores(scores)
		if len(got) != len(want) {
			t.Fatalf("ranked %d names, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: ranking = %v, want %v", trial, got, want)
			}
		}
	}
}
