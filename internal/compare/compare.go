// Package compare scores synthetic topologies against reference
// statistics — the validation step of every generator paper: generate a
// map, reduce it to the canonical metric vector, and report per-metric
// and aggregate distances to the measured Internet.
package compare

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"netmodel/internal/engine"
	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/refdata"
	"netmodel/internal/rng"
)

// MetricScore is one row of a comparison report.
type MetricScore struct {
	Name      string
	Measured  float64
	Reference float64
	// RelError is |measured − reference| normalized by the reference
	// scale (or by 1 for quantities that are already relative).
	RelError float64
}

// Report is a full topology-versus-target comparison.
type Report struct {
	Target string
	Rows   []MetricScore
	// Score is the mean relative error over all rows — lower is better,
	// 0 is a perfect statistical match.
	Score float64
}

// Options tunes the expensive parts of the comparison.
type Options struct {
	// PathSources caps BFS roots for path statistics; 0 means exact.
	PathSources int
	// Rand is required when PathSources > 0.
	Rand *rng.Rand
}

// Against freezes g and scores it against the target through the
// parallel metrics engine.
func Against(g *graph.Graph, tgt refdata.Target, opt Options) (*Report, error) {
	if g == nil || g.N() == 0 {
		return nil, errors.New("compare: empty topology")
	}
	return AgainstFrozen(engine.New(g.Freeze()), tgt, opt)
}

// AgainstFrozen measures an already-frozen topology through its engine
// and scores it against the target. Callers that run several analyses
// over one snapshot should use this entry point so memoized metrics are
// shared.
func AgainstFrozen(e *engine.Engine, tgt refdata.Target, opt Options) (*Report, error) {
	if e.Snapshot().N() == 0 {
		return nil, errors.New("compare: empty topology")
	}
	snap, err := e.Measure(opt.Rand, opt.PathSources)
	if err != nil {
		return nil, err
	}
	return Score(snap, tgt), nil
}

// Score reduces a measured metric vector to a per-metric and aggregate
// comparison against the target. It is a pure function of the vector,
// shared by every measurement path.
func Score(snap metrics.Snapshot, tgt refdata.Target) *Report {
	rep := &Report{Target: tgt.Name}
	add := func(name string, measured, reference, scale float64) {
		if scale == 0 {
			scale = 1
		}
		rep.Rows = append(rep.Rows, MetricScore{
			Name: name, Measured: measured, Reference: reference,
			RelError: math.Abs(measured-reference) / math.Abs(scale),
		})
	}
	add("avg degree", snap.AvgDegree, tgt.AvgDegree, tgt.AvgDegree)
	add("degree exponent", snap.Gamma, tgt.Gamma, tgt.Gamma)
	add("max degree / N", float64(snap.MaxDegree)/float64(snap.N), tgt.MaxDegreeFrac, tgt.MaxDegreeFrac)
	add("avg clustering", snap.AvgClustering, tgt.AvgClustering, tgt.AvgClustering)
	add("assortativity", snap.Assortativity, tgt.Assortativity, 1)
	add("avg path length", snap.AvgPathLen, tgt.AvgPathLen, tgt.AvgPathLen)
	add("diameter", float64(snap.Diameter), float64(tgt.Diameter), float64(tgt.Diameter))
	add("max coreness", float64(snap.MaxCore), float64(tgt.MaxCore), float64(tgt.MaxCore))
	var sum float64
	for _, r := range rep.Rows {
		sum += r.RelError
	}
	rep.Score = sum / float64(len(rep.Rows))
	return rep
}

// String renders the report as an aligned text table.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "comparison against %s\n", r.Target)
	fmt.Fprintf(&b, "%-18s %12s %12s %10s\n", "metric", "measured", "reference", "rel.err")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s %12.4g %12.4g %9.1f%%\n",
			row.Name, row.Measured, row.Reference, 100*row.RelError)
	}
	fmt.Fprintf(&b, "%-18s %35.1f%%\n", "aggregate score", 100*r.Score)
	return b.String()
}

// Spectra compares binned spectra (knn(k), c(k)) between two graphs by
// log-log slope, a scale-free way to contrast correlation structure.
type Spectra struct {
	KnnSlope float64
	CkSlope  float64
}

// spectrumSlope fits a log-log least-squares slope to a degree-binned
// spectrum over degrees >= 2, NaN when degenerate.
func spectrumSlope(m map[int]float64) float64 {
	var xs, ys []float64
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		if k >= 2 && m[k] > 0 {
			xs = append(xs, math.Log(float64(k)))
			ys = append(ys, math.Log(m[k]))
		}
	}
	if len(xs) < 3 {
		return math.NaN()
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// MeasureSpectra fits log-log slopes to the knn and clustering spectra
// of g over degrees >= 2. Degenerate spectra yield NaN slopes.
func MeasureSpectra(g *graph.Graph) Spectra {
	return Spectra{
		KnnSlope: spectrumSlope(metrics.Knn(g)),
		CkSlope:  spectrumSlope(metrics.ClusteringSpectrum(g)),
	}
}

// MeasureSpectraFrozen is MeasureSpectra through a metrics engine,
// reusing its memoized triangle counts and degree spectra.
func MeasureSpectraFrozen(e *engine.Engine) Spectra {
	return Spectra{
		KnnSlope: spectrumSlope(e.Knn()),
		CkSlope:  spectrumSlope(e.ClusteringSpectrum()),
	}
}

// RankModels orders named reports by ascending score (best match
// first), returning the names. The order is fully deterministic; see
// RankScores.
func RankModels(reports map[string]*Report) []string {
	scores := make(map[string]float64, len(reports))
	for n, r := range reports {
		scores[n] = r.Score
	}
	return RankScores(scores)
}

// RankScores orders names by ascending score (best match first). The
// order is fully deterministic: NaN scores sort after every finite
// score, and equal scores — including two NaNs, which compare unequal
// under IEEE semantics and would otherwise leave the order up to the
// sort's whims — fall back to the name. Sweep summaries rank per size
// tier on cross-seed mean scores through this function, so rankings
// never flap across runs or worker counts.
func RankScores(scores map[string]float64) []string {
	names := make([]string, 0, len(scores))
	for n := range scores {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		si, sj := scores[names[i]], scores[names[j]]
		ni, nj := math.IsNaN(si), math.IsNaN(sj)
		switch {
		case ni != nj:
			return nj // the finite score wins
		case !ni && si != sj:
			return si < sj
		}
		return names[i] < names[j]
	})
	return names
}
