package stats

import (
	"math"
	"testing"
)

func TestMomentsMatchesSummarize(t *testing.T) {
	xs := []float64{3.2, -1.5, 0, 7.75, 2.25, -4, 11, 0.5}
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	s := Summarize(xs)
	if m.N() != s.N {
		t.Fatalf("N = %d, want %d", m.N(), s.N)
	}
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"mean", m.Mean(), s.Mean},
		{"var", m.Var(), s.Var},
		{"std", m.Std(), s.Std},
		{"min", m.Min(), s.Min},
		{"max", m.Max(), s.Max},
	} {
		if math.Abs(c.got-c.want) > 1e-12 {
			t.Fatalf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
}

func TestMomentsEmptyAndSingle(t *testing.T) {
	var m Moments
	if m.N() != 0 || m.Mean() != 0 || m.Var() != 0 || m.Min() != 0 || m.Max() != 0 {
		t.Fatalf("empty accumulator not zero: %+v", m)
	}
	m.Add(5)
	if m.N() != 1 || m.Mean() != 5 || m.Var() != 0 || m.Std() != 0 || m.Min() != 5 || m.Max() != 5 {
		t.Fatalf("single observation: %+v", m)
	}
}

// TestMomentsOrderIndependentWithinTolerance: the running update must
// agree with the two-pass computation regardless of fold order.
func TestMomentsOrderIndependent(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, -3, 0.5}
	var fwd, rev Moments
	for i := range xs {
		fwd.Add(xs[i])
		rev.Add(xs[len(xs)-1-i])
	}
	if fwd.N() != rev.N() || fwd.Min() != rev.Min() || fwd.Max() != rev.Max() {
		t.Fatalf("count/range mismatch: %+v vs %+v", fwd, rev)
	}
	if math.Abs(fwd.Mean()-rev.Mean()) > 1e-12 || math.Abs(fwd.Var()-rev.Var()) > 1e-12 {
		t.Fatalf("moments order-sensitive: mean %v vs %v, var %v vs %v",
			fwd.Mean(), rev.Mean(), fwd.Var(), rev.Var())
	}
}
