package stats

import (
	"math"
	"testing"

	"netmodel/internal/rng"
)

// paretoSample draws n continuous power-law samples with exponent alpha
// and minimum xmin.
func paretoSample(r *rng.Rand, n int, xmin, alpha float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Pareto(xmin, alpha-1)
	}
	return xs
}

func TestFitPowerLawContinuousRecoversAlpha(t *testing.T) {
	r := rng.New(11)
	for _, alpha := range []float64{1.8, 2.2, 3.0} {
		xs := paretoSample(r, 20000, 1, alpha)
		fit, err := FitPowerLawContinuous(xs, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(fit.Alpha-alpha) > 0.05 {
			t.Fatalf("alpha %v fitted as %v", alpha, fit.Alpha)
		}
		if fit.KS > 0.02 {
			t.Fatalf("KS %v too large for a true power law", fit.KS)
		}
	}
}

func TestFitPowerLawDiscreteRecoversAlpha(t *testing.T) {
	r := rng.New(13)
	// Discretized Pareto: rounding continuous samples yields an
	// approximately discrete power law for x >> 1.
	raw := paretoSample(r, 30000, 1, 2.2)
	xs := make([]float64, len(raw))
	for i, x := range raw {
		xs[i] = math.Round(x)
	}
	fit, err := FitPowerLawDiscrete(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-2.2) > 0.15 {
		t.Fatalf("discrete alpha fitted as %v, want ~2.2", fit.Alpha)
	}
	if fit.NTail < 100 {
		t.Fatalf("tail too small: %d", fit.NTail)
	}
}

func TestFitPowerLawDiscreteRejectsUniform(t *testing.T) {
	r := rng.New(17)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = float64(1 + r.Intn(50))
	}
	fit, err := FitPowerLawDiscrete(xs)
	if err != nil {
		return // acceptable: no regime found
	}
	// A uniform sample has no power-law tail; the KS distance of the best
	// "fit" should be clearly worse than for a genuine power law.
	if fit.KS < 0.02 {
		t.Fatalf("uniform data fitted with KS %v — fit should be poor", fit.KS)
	}
}

func TestFitPowerLawErrors(t *testing.T) {
	if _, err := FitPowerLawDiscrete([]float64{1, 2}); err == nil {
		t.Fatal("tiny sample should fail")
	}
	if _, err := FitPowerLawContinuous([]float64{1, 2, 3}, 0); err == nil {
		t.Fatal("xmin=0 should fail")
	}
	if _, err := FitPowerLawContinuous([]float64{1, 2, 3}, 100); err == nil {
		t.Fatal("empty tail should fail")
	}
}

func TestHillRecoversTailIndex(t *testing.T) {
	r := rng.New(19)
	xs := paretoSample(r, 50000, 1, 2.5)
	h, err := Hill(xs, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-2.5) > 0.15 {
		t.Fatalf("Hill estimate %v, want ~2.5", h)
	}
}

func TestHillErrors(t *testing.T) {
	if _, err := Hill([]float64{1, 2, 3}, 0); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, err := Hill([]float64{1, 2, 3}, 3); err == nil {
		t.Fatal("k=len should fail")
	}
}

func TestKSTwoSampleIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	d, err := KSTwoSample(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("KS of identical samples = %v", d)
	}
}

func TestKSTwoSampleDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	d, err := KSTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Fatalf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestKSTwoSampleSameDistribution(t *testing.T) {
	r := rng.New(23)
	a := make([]float64, 5000)
	b := make([]float64, 5000)
	for i := range a {
		a[i] = r.Normal(0, 1)
		b[i] = r.Normal(0, 1)
	}
	d, err := KSTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.05 {
		t.Fatalf("KS between same-law samples = %v, want small", d)
	}
}

func TestKSTwoSampleEmpty(t *testing.T) {
	if _, err := KSTwoSample(nil, []float64{1}); err == nil {
		t.Fatal("empty sample should fail")
	}
}

func TestBootstrapCoversTruth(t *testing.T) {
	r := rng.New(29)
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = r.Normal(10, 2)
	}
	point, lo, hi, err := Bootstrap(r, xs, 200, 0.025, 0.975, Mean)
	if err != nil {
		t.Fatal(err)
	}
	if lo > point || point > hi {
		t.Fatalf("point %v outside CI [%v,%v]", point, lo, hi)
	}
	if lo > 10 || hi < 10 {
		t.Fatalf("CI [%v,%v] misses true mean 10", lo, hi)
	}
	if hi-lo > 0.5 {
		t.Fatalf("CI width %v implausibly wide", hi-lo)
	}
}

func TestBootstrapErrors(t *testing.T) {
	r := rng.New(1)
	if _, _, _, err := Bootstrap(r, nil, 100, 0.1, 0.9, Mean); err == nil {
		t.Fatal("empty sample should fail")
	}
	if _, _, _, err := Bootstrap(r, []float64{1}, 5, 0.1, 0.9, Mean); err == nil {
		t.Fatal("too few replicates should fail")
	}
}

// TestFitPowerLawHistogramMatchesDiscrete: the histogram fit is the
// same scan grouped by distinct value, so on identical data it must
// select the same regime and agree on the exponent and KS distance up
// to floating-point summation order.
func TestFitPowerLawHistogramMatchesDiscrete(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		r := rng.New(seed)
		xs := paretoSample(r, 3000, 1, 2.2)
		maxK := 0
		ints := make([]float64, len(xs))
		for i, x := range xs {
			k := int(math.Round(x))
			if k < 1 {
				k = 1
			}
			if k > 500 {
				k = 500 // clamp the extreme tail so histograms stay small
			}
			ints[i] = float64(k)
			if k > maxK {
				maxK = k
			}
		}
		hist := make([]int, maxK+1)
		for _, x := range ints {
			hist[int(x)]++
		}
		want, err := FitPowerLawDiscrete(ints)
		if err != nil {
			t.Fatal(err)
		}
		got, err := FitPowerLawHistogram(hist)
		if err != nil {
			t.Fatal(err)
		}
		if got.Xmin != want.Xmin || got.NTail != want.NTail {
			t.Fatalf("seed %d: regime (%v,%d) vs (%v,%d)", seed, got.Xmin, got.NTail, want.Xmin, want.NTail)
		}
		if math.Abs(got.Alpha-want.Alpha) > 1e-9 || math.Abs(got.KS-want.KS) > 1e-9 {
			t.Fatalf("seed %d: fit (%v,%v) vs (%v,%v)", seed, got.Alpha, got.KS, want.Alpha, want.KS)
		}
	}
}

// TestFitPowerLawHistogramErrors covers the too-few-samples and
// no-regime error paths.
func TestFitPowerLawHistogramErrors(t *testing.T) {
	if _, err := FitPowerLawHistogram([]int{0, 3}); err == nil {
		t.Fatal("too few samples must error")
	}
	if _, err := FitPowerLawHistogram(nil); err == nil {
		t.Fatal("empty histogram must error")
	}
}
