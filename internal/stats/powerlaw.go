package stats

import (
	"errors"
	"math"
	"sort"

	"netmodel/internal/rng"
)

// PowerLawFit is the result of a maximum-likelihood power-law tail fit
// following Clauset-Shalizi-Newman: P(x) ∝ x^-Alpha for x >= Xmin.
type PowerLawFit struct {
	Alpha float64 // tail exponent (γ in the degree-distribution notation)
	Xmin  float64 // start of the power-law regime
	KS    float64 // Kolmogorov-Smirnov distance of the fit over the tail
	NTail int     // number of samples in the tail
}

// FitPowerLawDiscrete fits a discrete power law to integer-valued samples
// (degrees), scanning candidate xmin values and keeping the one whose
// MLE exponent minimizes the KS distance. The discrete MLE uses the
// standard approximation alpha = 1 + n / Σ ln(x_i/(xmin-0.5)), accurate
// for xmin >= 2.
func FitPowerLawDiscrete(xs []float64) (PowerLawFit, error) {
	var pos []float64
	for _, x := range xs {
		if x >= 1 {
			pos = append(pos, math.Round(x))
		}
	}
	if len(pos) < 10 {
		return PowerLawFit{}, errors.New("stats: too few samples for power-law fit")
	}
	sort.Float64s(pos)
	// Candidate xmins: distinct values up to the point where the tail
	// keeps at least 10 samples.
	best := PowerLawFit{KS: math.Inf(1)}
	seen := map[float64]bool{}
	for i, xm := range pos {
		if seen[xm] || xm < 1 {
			continue
		}
		seen[xm] = true
		tail := pos[i:]
		if len(tail) < 10 {
			break
		}
		alpha := discreteMLE(tail, xm)
		if alpha <= 1 || math.IsNaN(alpha) {
			continue
		}
		ks := ksDiscrete(tail, alpha, xm)
		if ks < best.KS {
			best = PowerLawFit{Alpha: alpha, Xmin: xm, KS: ks, NTail: len(tail)}
		}
	}
	if math.IsInf(best.KS, 1) {
		return PowerLawFit{}, errors.New("stats: no valid power-law regime found")
	}
	return best, nil
}

// FitPowerLawHistogram is FitPowerLawDiscrete computed from a value
// histogram (hist[k] = number of samples of value k) instead of raw
// samples: the same xmin scan, MLE exponent and KS selection, but in
// O(D²) over the D distinct values rather than O(n·D) over samples.
// This is the fit the trajectory engine runs every observation epoch,
// where the degree histogram is maintained incrementally and n·D work
// per epoch would dominate the refresh. Within a tied group the
// empirical CDF is monotone, so checking the group's two endpoint gaps
// reproduces the per-sample KS scan exactly; results agree with
// FitPowerLawDiscrete up to floating-point summation order.
func FitPowerLawHistogram(hist []int) (PowerLawFit, error) {
	var ks []int
	total := 0
	for k := 1; k < len(hist); k++ {
		if hist[k] > 0 {
			ks = append(ks, k)
			total += hist[k]
		}
	}
	if total < 10 {
		return PowerLawFit{}, errors.New("stats: too few samples for power-law fit")
	}
	// Suffix sums over distinct values: tail counts and Σ cnt·ln k, so
	// each candidate's MLE is O(1).
	sufN := make([]int, len(ks)+1)
	sufL := make([]float64, len(ks)+1)
	for i := len(ks) - 1; i >= 0; i-- {
		cnt := hist[ks[i]]
		sufN[i] = sufN[i+1] + cnt
		sufL[i] = sufL[i+1] + float64(cnt)*math.Log(float64(ks[i]))
	}
	best := PowerLawFit{KS: math.Inf(1)}
	for i, k := range ks {
		nTail := sufN[i]
		if nTail < 10 {
			break
		}
		xmin := float64(k)
		s := sufL[i] - float64(nTail)*math.Log(xmin-0.5)
		if s <= 0 {
			continue
		}
		alpha := 1 + float64(nTail)/s
		if alpha <= 1 || math.IsNaN(alpha) {
			continue
		}
		// KS over the tail: the empirical CDF is checked at both ends
		// of each tied group, the extremes of the per-sample scan.
		maxD := 0.0
		before := 0
		for j := i; j < len(ks); j++ {
			cnt := hist[ks[j]]
			model := 1 - math.Pow((float64(ks[j])+0.5)/(xmin-0.5), 1-alpha)
			lo := math.Abs(float64(before+1)/float64(nTail) - model)
			hi := math.Abs(float64(before+cnt)/float64(nTail) - model)
			if lo > maxD {
				maxD = lo
			}
			if hi > maxD {
				maxD = hi
			}
			before += cnt
		}
		if maxD < best.KS {
			best = PowerLawFit{Alpha: alpha, Xmin: xmin, KS: maxD, NTail: nTail}
		}
	}
	if math.IsInf(best.KS, 1) {
		return PowerLawFit{}, errors.New("stats: no valid power-law regime found")
	}
	return best, nil
}

func discreteMLE(tail []float64, xmin float64) float64 {
	var s float64
	for _, x := range tail {
		s += math.Log(x / (xmin - 0.5))
	}
	if s <= 0 {
		return math.NaN()
	}
	return 1 + float64(len(tail))/s
}

// ksDiscrete computes the KS distance between the empirical tail CDF and
// the fitted discrete power law, approximating the discrete zeta CDF by
// the continuous form with the usual -0.5 offset.
func ksDiscrete(tail []float64, alpha, xmin float64) float64 {
	n := float64(len(tail))
	maxD := 0.0
	for i, x := range tail {
		emp := float64(i+1) / n
		model := 1 - math.Pow((x+0.5)/(xmin-0.5), 1-alpha)
		if d := math.Abs(emp - model); d > maxD {
			maxD = d
		}
	}
	return maxD
}

// FitPowerLawContinuous fits a continuous power law with fixed xmin by
// maximum likelihood: alpha = 1 + n / Σ ln(x_i/xmin).
func FitPowerLawContinuous(xs []float64, xmin float64) (PowerLawFit, error) {
	if xmin <= 0 {
		return PowerLawFit{}, errors.New("stats: xmin must be positive")
	}
	var tail []float64
	for _, x := range xs {
		if x >= xmin {
			tail = append(tail, x)
		}
	}
	if len(tail) < 5 {
		return PowerLawFit{}, errors.New("stats: too few tail samples")
	}
	var s float64
	for _, x := range tail {
		s += math.Log(x / xmin)
	}
	if s <= 0 {
		return PowerLawFit{}, errors.New("stats: degenerate tail")
	}
	alpha := 1 + float64(len(tail))/s
	sort.Float64s(tail)
	n := float64(len(tail))
	maxD := 0.0
	for i, x := range tail {
		emp := float64(i+1) / n
		model := 1 - math.Pow(x/xmin, 1-alpha)
		if d := math.Abs(emp - model); d > maxD {
			maxD = d
		}
	}
	return PowerLawFit{Alpha: alpha, Xmin: xmin, KS: maxD, NTail: len(tail)}, nil
}

// Hill returns the Hill estimator of the tail index using the k largest
// samples: gamma_hat = 1 + 1/mean(ln(x_(i)/x_(k+1))). The returned value
// is on the same scale as the power-law exponent alpha.
func Hill(xs []float64, k int) (float64, error) {
	if k < 1 || k >= len(xs) {
		return 0, errors.New("stats: Hill k out of range")
	}
	sorted := append([]float64(nil), xs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	ref := sorted[k]
	if ref <= 0 {
		return 0, errors.New("stats: Hill requires positive order statistics")
	}
	var s float64
	for i := 0; i < k; i++ {
		s += math.Log(sorted[i] / ref)
	}
	if s <= 0 {
		return 0, errors.New("stats: degenerate Hill sample")
	}
	return 1 + float64(k)/s, nil
}

// KSTwoSample returns the two-sample Kolmogorov-Smirnov statistic between
// samples a and b: the maximum distance between their empirical CDFs.
func KSTwoSample(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, errors.New("stats: KS needs non-empty samples")
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	i, j := 0, 0
	maxD := 0.0
	for i < len(sa) && j < len(sb) {
		var x float64
		if sa[i] <= sb[j] {
			x = sa[i]
		} else {
			x = sb[j]
		}
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		d := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb)))
		if d > maxD {
			maxD = d
		}
	}
	return maxD, nil
}

// Bootstrap resamples xs with replacement nboot times, applies f to each
// resample, and returns the lo and hi quantiles (e.g. 0.025, 0.975) of
// the statistic along with its point estimate on the original sample.
func Bootstrap(r *rng.Rand, xs []float64, nboot int, lo, hi float64, f func([]float64) float64) (point, qlo, qhi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, 0, errors.New("stats: bootstrap of empty sample")
	}
	if nboot < 10 {
		return 0, 0, 0, errors.New("stats: need at least 10 bootstrap replicates")
	}
	point = f(xs)
	reps := make([]float64, nboot)
	buf := make([]float64, len(xs))
	for b := 0; b < nboot; b++ {
		for i := range buf {
			buf[i] = xs[r.Intn(len(xs))]
		}
		reps[b] = f(buf)
	}
	sort.Float64s(reps)
	return point, Quantile(reps, lo), Quantile(reps, hi), nil
}
