// Package stats implements the statistical toolkit of the Internet
// measurement literature: descriptive statistics, empirical distribution
// functions, logarithmic binning for heavy-tailed data, discrete and
// continuous power-law fits by maximum likelihood with Kolmogorov-Smirnov
// goodness, the Hill tail-index estimator, two-sample KS tests, bootstrap
// confidence intervals and least-squares regression (including on log-log
// axes, the classic "slope of the CCDF" exponent estimate).
//
// Everything is built from scratch on the standard library because the
// reproduction target has no graph/statistics ecosystem to lean on.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Summary holds the descriptive statistics of a sample.
type Summary struct {
	N                  int
	Mean, Var, Std     float64
	Min, Max           float64
	Median, P90, P99   float64
	Skewness, Kurtosis float64
}

// Summarize computes descriptive statistics. It returns a zero Summary
// for an empty sample.
func Summarize(xs []float64) Summary {
	n := len(xs)
	if n == 0 {
		return Summary{}
	}
	s := Summary{N: n, Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(n)
	var m2, m3, m4 float64
	for _, x := range xs {
		d := x - s.Mean
		m2 += d * d
		m3 += d * d * d
		m4 += d * d * d * d
	}
	m2 /= float64(n)
	m3 /= float64(n)
	m4 /= float64(n)
	s.Var = m2
	s.Std = math.Sqrt(m2)
	if m2 > 0 {
		s.Skewness = m3 / math.Pow(m2, 1.5)
		s.Kurtosis = m4/(m2*m2) - 3
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile (0<=q<=1) of a sorted sample using
// linear interpolation. It panics if the sample is empty.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Mean returns the arithmetic mean, or 0 for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Moment returns the p-th raw moment E[X^p], or 0 for an empty sample.
func Moment(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Pow(x, p)
	}
	return s / float64(len(xs))
}

// ECDFPoint is one step of an empirical distribution function.
type ECDFPoint struct {
	X float64 // value
	P float64 // probability
}

// CCDF returns the complementary cumulative distribution P(X >= x) at
// each distinct sample value, sorted ascending by X. This is the curve
// plotted in every degree-distribution figure in the literature.
func CCDF(xs []float64) []ECDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var out []ECDFPoint
	for i := 0; i < len(sorted); {
		j := i
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		out = append(out, ECDFPoint{X: sorted[i], P: float64(len(sorted)-i) / n})
		i = j
	}
	return out
}

// Bin is one logarithmic bin of a heavy-tailed histogram.
type Bin struct {
	Center  float64 // geometric center of the bin
	Lo, Hi  float64 // bin edges [Lo,Hi)
	Count   int     // raw count
	Density float64 // count / (n * width) — a PDF estimate
}

// LogBins histograms positive samples into logarithmically spaced bins
// with the given ratio between consecutive edges (ratio > 1). Empty bins
// are omitted. Non-positive samples are ignored.
func LogBins(xs []float64, ratio float64) ([]Bin, error) {
	if ratio <= 1 {
		return nil, errors.New("stats: log-bin ratio must exceed 1")
	}
	var pos []float64
	for _, x := range xs {
		if x > 0 {
			pos = append(pos, x)
		}
	}
	if len(pos) == 0 {
		return nil, nil
	}
	sort.Float64s(pos)
	lo := pos[0]
	hi := pos[len(pos)-1]
	nb := int(math.Ceil(math.Log(hi/lo)/math.Log(ratio))) + 1
	counts := make([]int, nb)
	for _, x := range pos {
		b := int(math.Log(x/lo) / math.Log(ratio))
		if b < 0 {
			b = 0
		}
		if b >= nb {
			b = nb - 1
		}
		counts[b]++
	}
	n := float64(len(pos))
	var bins []Bin
	for b, c := range counts {
		if c == 0 {
			continue
		}
		blo := lo * math.Pow(ratio, float64(b))
		bhi := blo * ratio
		bins = append(bins, Bin{
			Center:  math.Sqrt(blo * bhi),
			Lo:      blo,
			Hi:      bhi,
			Count:   c,
			Density: float64(c) / (n * (bhi - blo)),
		})
	}
	return bins, nil
}

// LinFit is an ordinary-least-squares line y = Slope*x + Intercept with
// the coefficient of determination R2.
type LinFit struct {
	Slope, Intercept, R2 float64
}

// LinearFit fits a least-squares line through (xs[i], ys[i]). It returns
// an error when fewer than two points or zero x-variance.
func LinearFit(xs, ys []float64) (LinFit, error) {
	if len(xs) != len(ys) {
		return LinFit{}, errors.New("stats: mismatched sample lengths")
	}
	n := float64(len(xs))
	if n < 2 {
		return LinFit{}, errors.New("stats: need at least two points")
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LinFit{}, errors.New("stats: zero variance in x")
	}
	f := LinFit{}
	f.Slope = (n*sxy - sx*sy) / den
	f.Intercept = (sy - f.Slope*sx) / n
	ssTot := syy - sy*sy/n
	if ssTot > 0 {
		ssRes := 0.0
		for i := range xs {
			r := ys[i] - (f.Slope*xs[i] + f.Intercept)
			ssRes += r * r
		}
		f.R2 = 1 - ssRes/ssTot
	} else {
		f.R2 = 1
	}
	return f, nil
}

// LogLogFit fits a power law y = C * x^Slope by least squares on log-log
// axes, ignoring non-positive points. This is the historical Faloutsos-
// style exponent estimate; prefer FitPowerLaw for tail exponents.
func LogLogFit(xs, ys []float64) (LinFit, error) {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	return LinearFit(lx, ly)
}
