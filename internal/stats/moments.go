package stats

import "math"

// Moments is a streaming accumulator for the first two moments plus the
// range of a sample: mean, variance, min and max in one pass, O(1)
// memory, no sample retention. It is the cross-seed aggregation kernel
// of the sweep driver — every (model, size) cell folds its per-seed
// metric values through one accumulator per metric — and uses Welford's
// update, so it is numerically stable for the long accumulations that
// large grids produce. The zero value is an empty accumulator.
type Moments struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add folds one observation into the accumulator.
func (m *Moments) Add(x float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	d := x - m.mean
	m.mean += d / float64(m.n)
	m.m2 += d * (x - m.mean)
}

// N returns the number of observations folded in so far.
func (m *Moments) N() int { return m.n }

// Mean returns the running mean, or 0 for an empty accumulator.
func (m *Moments) Mean() float64 { return m.mean }

// Var returns the population variance (matching Summarize), or 0 when
// fewer than two observations have been folded in.
func (m *Moments) Var() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n)
}

// Std returns the population standard deviation.
func (m *Moments) Std() float64 { return math.Sqrt(m.Var()) }

// Min returns the smallest observation, or 0 for an empty accumulator.
func (m *Moments) Min() float64 { return m.min }

// Max returns the largest observation, or 0 for an empty accumulator.
func (m *Moments) Max() float64 { return m.max }
