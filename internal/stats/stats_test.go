package stats

import (
	"math"
	"testing"
	"testing/quick"

	"netmodel/internal/rng"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Fatalf("N = %d", s.N)
	}
	if !almostEqual(s.Mean, 5, 1e-12) {
		t.Fatalf("Mean = %v", s.Mean)
	}
	if !almostEqual(s.Std, 2, 1e-12) {
		t.Fatalf("Std = %v, want 2", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 4.5, 1e-12) {
		t.Fatalf("Median = %v", s.Median)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestQuantileEndpoints(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	if Quantile(sorted, 0) != 1 || Quantile(sorted, 1) != 5 {
		t.Fatal("quantile endpoints wrong")
	}
	if !almostEqual(Quantile(sorted, 0.5), 3, 1e-12) {
		t.Fatal("median wrong")
	}
	if !almostEqual(Quantile(sorted, 0.25), 2, 1e-12) {
		t.Fatalf("q25 = %v", Quantile(sorted, 0.25))
	}
}

func TestMomentMatchesMean(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !almostEqual(Moment(xs, 1), Mean(xs), 1e-12) {
		t.Fatal("first moment != mean")
	}
	if !almostEqual(Moment(xs, 2), 7.5, 1e-12) {
		t.Fatalf("second moment = %v, want 7.5", Moment(xs, 2))
	}
}

func TestCCDFProperties(t *testing.T) {
	xs := []float64{1, 1, 2, 3, 3, 3}
	c := CCDF(xs)
	if len(c) != 3 {
		t.Fatalf("distinct values = %d, want 3", len(c))
	}
	if c[0].X != 1 || !almostEqual(c[0].P, 1, 1e-12) {
		t.Fatalf("CCDF at min = %+v, want P=1", c[0])
	}
	if c[2].X != 3 || !almostEqual(c[2].P, 0.5, 1e-12) {
		t.Fatalf("CCDF at 3 = %+v, want P=0.5", c[2])
	}
	// monotone non-increasing
	for i := 1; i < len(c); i++ {
		if c[i].P > c[i-1].P {
			t.Fatal("CCDF not monotone")
		}
	}
}

func TestCCDFMonotoneProperty(t *testing.T) {
	r := rng.New(1)
	prop := func(seed uint32) bool {
		r.Seed(uint64(seed))
		xs := make([]float64, 50)
		for i := range xs {
			xs[i] = math.Floor(r.Float64() * 10)
		}
		c := CCDF(xs)
		if len(c) == 0 || c[0].P != 1 {
			return false
		}
		for i := 1; i < len(c); i++ {
			if c[i].P >= c[i-1].P || c[i].X <= c[i-1].X {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLogBinsCountPreserved(t *testing.T) {
	r := rng.New(3)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = r.Pareto(1, 1.5)
	}
	bins, err := LogBins(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range bins {
		total += b.Count
		if b.Lo >= b.Hi {
			t.Fatalf("bad bin edges %+v", b)
		}
		if b.Center < b.Lo || b.Center > b.Hi {
			t.Fatalf("center outside bin %+v", b)
		}
	}
	if total != len(xs) {
		t.Fatalf("binned %d of %d samples", total, len(xs))
	}
}

func TestLogBinsIgnoresNonPositive(t *testing.T) {
	bins, err := LogBins([]float64{-1, 0, 1, 10}, 10)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, b := range bins {
		total += b.Count
	}
	if total != 2 {
		t.Fatalf("binned %d, want 2", total)
	}
}

func TestLogBinsBadRatio(t *testing.T) {
	if _, err := LogBins([]float64{1}, 1); err == nil {
		t.Fatal("ratio=1 should fail")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	f, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Slope, 2, 1e-12) || !almostEqual(f.Intercept, 1, 1e-12) {
		t.Fatalf("fit %+v, want slope 2 intercept 1", f)
	}
	if !almostEqual(f.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", f.R2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	r := rng.New(5)
	var xs, ys []float64
	for i := 0; i < 1000; i++ {
		x := r.Float64() * 10
		xs = append(xs, x)
		ys = append(ys, 3*x-2+r.Normal(0, 0.5))
	}
	f, err := LinearFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Slope, 3, 0.05) || !almostEqual(f.Intercept, -2, 0.1) {
		t.Fatalf("noisy fit %+v", f)
	}
	if f.R2 < 0.95 {
		t.Fatalf("R2 = %v too low", f.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Fatal("single point should fail")
	}
	if _, err := LinearFit([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Fatal("zero x-variance should fail")
	}
	if _, err := LinearFit([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch should fail")
	}
}

func TestLogLogFitRecoversExponent(t *testing.T) {
	var xs, ys []float64
	for x := 1.0; x <= 1000; x *= 1.3 {
		xs = append(xs, x)
		ys = append(ys, 5*math.Pow(x, -2.2))
	}
	f, err := LogLogFit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(f.Slope, -2.2, 1e-9) {
		t.Fatalf("slope %v, want -2.2", f.Slope)
	}
}
