package rng

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestAliasMatchesWeights(t *testing.T) {
	r := New(101)
	weights := []float64{1, 2, 3, 4}
	a, err := NewAlias(r, weights)
	if err != nil {
		t.Fatal(err)
	}
	const n = 400000
	counts := make([]float64, len(weights))
	for i := 0; i < n; i++ {
		counts[a.Next()]++
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		want := w / total
		got := counts[i] / n
		if math.Abs(got-want) > 0.005 {
			t.Fatalf("index %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestAliasSingleWeight(t *testing.T) {
	a, err := NewAlias(New(1), []float64{5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if a.Next() != 0 {
			t.Fatal("single-weight alias must always return 0")
		}
	}
}

func TestAliasZeroWeightNeverDrawn(t *testing.T) {
	a, err := NewAlias(New(3), []float64{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		v := a.Next()
		if v == 0 || v == 2 {
			t.Fatalf("drew zero-weight index %d", v)
		}
	}
}

func TestAliasErrors(t *testing.T) {
	r := New(1)
	if _, err := NewAlias(r, nil); err == nil {
		t.Fatal("empty weights should fail")
	}
	if _, err := NewAlias(r, []float64{0, 0}); err == nil {
		t.Fatal("all-zero weights should fail")
	}
	if _, err := NewAlias(r, []float64{-1, 2}); err == nil {
		t.Fatal("negative weight should fail")
	}
}

func TestFenwickTotalInvariant(t *testing.T) {
	f := NewFenwick(New(7), 50)
	prop := func(idx uint8, w uint16) bool {
		i := int(idx) % 50
		f.Set(i, float64(w))
		sum := 0.0
		for j := 0; j < f.Len(); j++ {
			sum += f.Weight(j)
		}
		return math.Abs(sum-f.Total()) < 1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFenwickSampleProportional(t *testing.T) {
	r := New(11)
	f := NewFenwick(r, 4)
	ws := []float64{1, 2, 3, 4}
	for i, w := range ws {
		f.Set(i, w)
	}
	const n = 400000
	counts := make([]float64, 4)
	for i := 0; i < n; i++ {
		counts[f.Sample()]++
	}
	for i, w := range ws {
		want := w / 10
		got := counts[i] / n
		if math.Abs(got-want) > 0.005 {
			t.Fatalf("index %d frequency %v, want %v", i, got, want)
		}
	}
}

func TestFenwickZeroWeightNeverSampled(t *testing.T) {
	r := New(13)
	f := NewFenwick(r, 5)
	f.Set(1, 3)
	f.Set(3, 7)
	for i := 0; i < 20000; i++ {
		v := f.Sample()
		if v != 1 && v != 3 {
			t.Fatalf("sampled zero-weight index %d", v)
		}
	}
}

func TestFenwickEmptySample(t *testing.T) {
	f := NewFenwick(New(1), 10)
	if got := f.Sample(); got != -1 {
		t.Fatalf("empty sampler returned %d, want -1", got)
	}
}

func TestFenwickDynamicUpdates(t *testing.T) {
	r := New(17)
	f := NewFenwick(r, 3)
	f.Set(0, 10)
	f.Set(1, 10)
	f.Set(2, 10)
	f.Set(0, 0) // remove index 0
	f.Add(2, 20)
	const n = 100000
	counts := make([]float64, 3)
	for i := 0; i < n; i++ {
		counts[f.Sample()]++
	}
	if counts[0] != 0 {
		t.Fatalf("sampled removed index %v times", counts[0])
	}
	// weights now 0,10,30 -> index 2 should be ~75%
	got := counts[2] / n
	if math.Abs(got-0.75) > 0.01 {
		t.Fatalf("index 2 frequency %v, want 0.75", got)
	}
}

func TestFenwickGrow(t *testing.T) {
	r := New(19)
	f := NewFenwick(r, 2)
	f.Set(0, 1)
	f.Set(1, 2)
	f.Grow(5)
	if f.Len() != 5 {
		t.Fatalf("Len = %d, want 5", f.Len())
	}
	if f.Weight(0) != 1 || f.Weight(1) != 2 {
		t.Fatal("Grow lost existing weights")
	}
	if math.Abs(f.Total()-3) > 1e-9 {
		t.Fatalf("Total = %v, want 3", f.Total())
	}
	f.Set(4, 3)
	counts := make([]int, 5)
	for i := 0; i < 60000; i++ {
		counts[f.Sample()]++
	}
	if counts[2] != 0 || counts[3] != 0 {
		t.Fatal("sampled zero-weight grown indices")
	}
	if counts[4] == 0 {
		t.Fatal("never sampled grown index with weight")
	}
}

func TestFenwickSampleDistinct(t *testing.T) {
	r := New(23)
	f := NewFenwick(r, 6)
	for i := 0; i < 6; i++ {
		f.Set(i, float64(i+1))
	}
	before := f.Total()
	got := f.SampleDistinct(4)
	if len(got) != 4 {
		t.Fatalf("got %d indices, want 4", len(got))
	}
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate index %d in %v", v, got)
		}
		seen[v] = true
	}
	if math.Abs(f.Total()-before) > 1e-9 {
		t.Fatalf("SampleDistinct did not restore weights: %v vs %v", f.Total(), before)
	}
}

func TestFenwickSampleDistinctExhausts(t *testing.T) {
	r := New(29)
	f := NewFenwick(r, 5)
	f.Set(1, 1)
	f.Set(3, 1)
	got := f.SampleDistinct(4)
	if len(got) != 2 {
		t.Fatalf("got %d indices, want 2 (only 2 positive weights)", len(got))
	}
}

func TestFenwickNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative weight did not panic")
		}
	}()
	NewFenwick(New(1), 2).Set(0, -1)
}

// TestAliasNextWithMatchesNext: the façade draw with the bound stream's
// twin consumes identical randomness.
func TestAliasNextWithMatchesNext(t *testing.T) {
	w := []float64{1, 5, 2, 0, 9}
	a, err := NewAlias(New(3), w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewAliasTable(w)
	if err != nil {
		t.Fatal(err)
	}
	r := New(3)
	for i := 0; i < 500; i++ {
		if a.Next() != b.NextWith(r) {
			t.Fatalf("NextWith diverges from Next at draw %d", i)
		}
	}
	if a.Len() != len(w) {
		t.Fatalf("Len = %d, want %d", a.Len(), len(w))
	}
}

// TestAliasConcurrentNextWith: one frozen table, many shard streams,
// under the race detector.
func TestAliasConcurrentNextWith(t *testing.T) {
	w := make([]float64, 1000)
	base := New(8)
	for i := range w {
		w[i] = base.Float64()
	}
	a, err := NewAliasTable(w)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	counts := make([]int64, 4)
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			r := base.Split(uint64(s))
			for i := 0; i < 20000; i++ {
				counts[s] += int64(a.NextWith(r))
			}
		}(s)
	}
	wg.Wait()
	// Distinct streams should not produce identical draw sums.
	if counts[0] == counts[1] && counts[1] == counts[2] {
		t.Fatal("shard streams appear identical")
	}
}

// TestFenwickSampleWith: read-only sampling with a caller stream matches
// the bound-stream draw for the same stream state.
func TestFenwickSampleWith(t *testing.T) {
	f := NewFenwick(New(5), 50)
	for i := 0; i < 50; i++ {
		f.Set(i, float64(i%7))
	}
	g := NewFenwick(New(99), 50) // bound stream unused below
	for i := 0; i < 50; i++ {
		g.Set(i, float64(i%7))
	}
	r := New(5)
	for i := 0; i < 300; i++ {
		if f.Sample() != g.SampleWith(r) {
			t.Fatalf("SampleWith diverges from Sample at draw %d", i)
		}
	}
}
