package rng

import (
	"math"
	"testing"
)

// TestSplitDeterministic: a child stream is a pure function of the
// parent state and the index.
func TestSplitDeterministic(t *testing.T) {
	a := New(7).Split(3)
	b := New(7).Split(3)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Split(3) streams diverge at draw %d", i)
		}
	}
}

// TestSplitDoesNotAdvanceParent: deriving children must not perturb the
// parent stream.
func TestSplitDoesNotAdvanceParent(t *testing.T) {
	plain := New(11)
	split := New(11)
	for i := uint64(0); i < 10; i++ {
		split.Split(i)
	}
	for i := 0; i < 50; i++ {
		if plain.Uint64() != split.Uint64() {
			t.Fatalf("Split perturbed the parent stream at draw %d", i)
		}
	}
}

// TestSplitStreamsDistinct: distinct indices, and the parent itself,
// yield distinct streams.
func TestSplitStreamsDistinct(t *testing.T) {
	r := New(42)
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 1000; i++ {
		v := r.Split(i).Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("Split(%d) and Split(%d) share first draw %x", i, j, v)
		}
		seen[v] = i
	}
	if _, dup := seen[r.Uint64()]; dup {
		t.Fatal("parent stream collides with a child stream")
	}
}

// TestSplitIndexSensitivity: children of adjacent indices are
// statistically independent (mean of each stream ~ uniform).
func TestSplitIndexSensitivity(t *testing.T) {
	r := New(1)
	for i := uint64(0); i < 8; i++ {
		c := r.Split(i)
		sum := 0.0
		const n = 4000
		for j := 0; j < n; j++ {
			sum += c.Float64()
		}
		if mean := sum / n; math.Abs(mean-0.5) > 0.03 {
			t.Fatalf("Split(%d) mean = %v, want ~0.5", i, mean)
		}
	}
}

// TestSplitInto matches Split without allocating.
func TestSplitInto(t *testing.T) {
	r := New(9)
	var child Rand
	r.SplitInto(&child, 5)
	want := New(9).Split(5)
	for i := 0; i < 20; i++ {
		if child.Uint64() != want.Uint64() {
			t.Fatal("SplitInto diverges from Split")
		}
	}
}

// TestSplitChildSeedsDiffer: child state depends on the parent state,
// not only the index.
func TestSplitChildSeedsDiffer(t *testing.T) {
	if New(1).Split(0).Uint64() == New(2).Split(0).Uint64() {
		t.Fatal("children of different parents coincide")
	}
	p := New(3)
	p.Uint64() // advance
	if New(3).Split(0).Uint64() == p.Split(0).Uint64() {
		t.Fatal("child ignores parent stream position")
	}
}
