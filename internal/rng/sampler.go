package rng

import "errors"

// Alias is a Walker alias-method sampler over a fixed discrete
// distribution. Construction is O(n); each draw is O(1). Use it when the
// weights do not change between draws (for dynamic weights, use Fenwick).
//
// The table itself is immutable after construction, so NextWith draws
// from any number of goroutines concurrently as long as each supplies
// its own stream — the sharded-generation kernels freeze one table per
// round and sample it from every shard with seed-derived sub-streams.
type Alias struct {
	prob  []float64
	alias []int
	r     *Rand
}

// NewAliasTable builds an alias table without binding a generator; draws
// must go through NextWith. It is the concurrent façade used by the
// sharded generation kernels, where the table is shared read-only and
// each shard samples with its own split stream.
func NewAliasTable(weights []float64) (*Alias, error) {
	return NewAlias(nil, weights)
}

// NewAlias builds an alias sampler from the given non-negative weights.
// At least one weight must be positive. A nil generator is allowed when
// every draw goes through NextWith.
func NewAlias(r *Rand, weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, errors.New("rng: alias sampler needs at least one weight")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			return nil, errors.New("rng: alias sampler weight is negative")
		}
		total += w
	}
	if total <= 0 {
		return nil, errors.New("rng: alias sampler weights sum to zero")
	}
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	prob := make([]float64, n)
	alias := make([]int, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, p := range scaled {
		if p < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		prob[s] = scaled[s]
		alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		prob[i] = 1
	}
	for _, i := range small { // numerical leftovers
		prob[i] = 1
	}
	return &Alias{prob: prob, alias: alias, r: r}, nil
}

// Next returns an index drawn with probability proportional to its weight.
func (a *Alias) Next() int { return a.NextWith(a.r) }

// NextWith draws an index using the caller's stream instead of the bound
// one. The table is read-only, so concurrent NextWith calls with
// distinct streams are safe.
func (a *Alias) NextWith(r *Rand) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// Len returns the number of indices in the table.
func (a *Alias) Len() int { return len(a.prob) }

// Fenwick is a binary indexed tree over non-negative weights supporting
// O(log n) weight updates and O(log n) weighted sampling. It is the core
// data structure behind every preferential-attachment generator in this
// repository: node weights (degree, user count, fitness) change as the
// network grows, and each attachment event samples proportionally to the
// current weights.
type Fenwick struct {
	tree   []float64 // 1-based partial sums
	weight []float64 // current weight per index, 0-based
	total  float64
	r      *Rand
}

// NewFenwick creates a sampler with capacity for n items, all weights zero.
func NewFenwick(r *Rand, n int) *Fenwick {
	return &Fenwick{
		tree:   make([]float64, n+1),
		weight: make([]float64, n),
		r:      r,
	}
}

// Len returns the current capacity (number of indices).
func (f *Fenwick) Len() int { return len(f.weight) }

// Total returns the sum of all weights.
func (f *Fenwick) Total() float64 { return f.total }

// Weight returns the current weight of index i.
func (f *Fenwick) Weight(i int) float64 { return f.weight[i] }

// Grow extends the capacity to at least n indices, new weights zero.
func (f *Fenwick) Grow(n int) {
	if n <= len(f.weight) {
		return
	}
	old := f.weight
	f.weight = make([]float64, n)
	copy(f.weight, old)
	f.tree = make([]float64, n+1)
	f.total = 0
	for i, w := range f.weight {
		if w != 0 {
			f.addTree(i, w)
			f.total += w
		}
	}
}

func (f *Fenwick) addTree(i int, delta float64) {
	for j := i + 1; j < len(f.tree); j += j & (-j) {
		f.tree[j] += delta
	}
}

// Set assigns weight w (>= 0) to index i.
func (f *Fenwick) Set(i int, w float64) {
	if w < 0 {
		panic("rng: Fenwick weight must be non-negative")
	}
	delta := w - f.weight[i]
	if delta == 0 {
		return
	}
	f.weight[i] = w
	f.total += delta
	f.addTree(i, delta)
}

// Add adds delta to the weight of index i. The resulting weight must stay
// non-negative.
func (f *Fenwick) Add(i int, delta float64) {
	f.Set(i, f.weight[i]+delta)
}

// Sample draws an index with probability proportional to its weight.
// It returns -1 if the total weight is zero.
func (f *Fenwick) Sample() int { return f.SampleWith(f.r) }

// SampleWith draws using the caller's stream instead of the bound one.
// Sampling only reads the tree, so concurrent SampleWith calls with
// distinct streams are safe provided no goroutine mutates weights
// (Set/Add/Grow) at the same time — the frozen-round discipline of the
// sharded kernels.
func (f *Fenwick) SampleWith(r *Rand) int {
	if f.total <= 0 {
		return -1
	}
	target := r.Float64() * f.total
	// Descend the implicit tree: find the smallest prefix whose running
	// sum exceeds target.
	idx := 0
	half := 1
	for half*2 < len(f.tree) {
		half *= 2
	}
	for ; half > 0; half /= 2 {
		next := idx + half
		if next < len(f.tree) && f.tree[next] <= target {
			target -= f.tree[next]
			idx = next
		}
	}
	if idx >= len(f.weight) {
		idx = len(f.weight) - 1
	}
	// Guard against floating-point drift landing on a zero-weight index:
	// walk forward to the next positive weight.
	for idx < len(f.weight) && f.weight[idx] == 0 {
		idx++
	}
	if idx >= len(f.weight) {
		for idx = len(f.weight) - 1; idx >= 0 && f.weight[idx] == 0; idx-- {
		}
	}
	return idx
}

// SampleDistinct draws k distinct indices proportionally to weight by
// temporarily zeroing drawn weights; the weights are restored before
// returning. It returns fewer than k indices if fewer have positive
// weight.
func (f *Fenwick) SampleDistinct(k int) []int {
	out := make([]int, 0, k)
	saved := make([]float64, 0, k)
	for len(out) < k {
		i := f.Sample()
		if i < 0 {
			break
		}
		out = append(out, i)
		saved = append(saved, f.weight[i])
		f.Set(i, 0)
	}
	for j, i := range out {
		f.Set(i, saved[j])
	}
	return out
}
