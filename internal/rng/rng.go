// Package rng provides the deterministic random-number substrate used by
// every generator and simulator in netmodel.
//
// All topology generation in this repository is seeded and reproducible:
// the same seed always yields the same topology, bit for bit, on every
// platform. To guarantee that, the package implements its own generator
// (xoshiro256**, seeded through splitmix64) instead of relying on
// math/rand's unspecified evolution across Go releases, and builds the
// distributions and samplers the modeling literature needs on top of it:
// exponential, Pareto, Zipf, normal and Poisson variates, alias-method
// sampling for static discrete distributions, and a Fenwick-tree sampler
// for dynamic weighted sampling (the inner loop of every preferential-
// attachment generator).
package rng

import (
	"errors"
	"math"
)

// Rand is a deterministic pseudo-random generator (xoshiro256**).
// It is not safe for concurrent use; create one per goroutine.
type Rand struct {
	s [4]uint64
	// cached second normal variate from Box-Muller
	hasGauss bool
	gauss    float64
}

// New returns a generator seeded with seed. Any seed, including zero, is
// valid: the state is expanded through splitmix64 so no all-zero state can
// occur.
func New(seed uint64) *Rand {
	r := &Rand{}
	r.Seed(seed)
	return r
}

// Seed resets the generator to the state derived from seed.
func (r *Rand) Seed(seed uint64) {
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		r.s[i] = mix64(sm)
	}
	r.hasGauss = false
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// mix64 is the splitmix64 finalizer, the avalanche function behind both
// seeding and sub-stream derivation.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split returns a new generator whose stream is derived from r's current
// state and the stream index i. The derivation is a pure function: it
// does not advance r, and calling Split with the same parent state and
// index always yields the same child, on every platform.
//
// Derivation: the parent's four state words are folded through the
// splitmix64 finalizer together with the index (each step keyed by a
// distinct odd constant), producing a 64-bit child seed that is expanded
// through the same splitmix64 seeding as New. Children of distinct
// indices, and children versus the parent, are therefore independently
// seeded xoshiro256** streams — the standard hash-derived splitting
// construction, which is what makes sharded generation deterministic:
// shard i of a run seeded with s always sees stream Split(i) of s,
// regardless of how many workers execute the shards or in which order.
func (r *Rand) Split(i uint64) *Rand {
	c := &Rand{}
	r.SplitInto(c, i)
	return c
}

// SplitInto seeds child exactly as Split(i) would, without allocating.
// It is the hot-loop form: kernels that derive one stream per item can
// reuse a single child generator per worker.
func (r *Rand) SplitInto(child *Rand, i uint64) {
	h := mix64(r.s[0] ^ 0xa0761d6478bd642f)
	h = mix64(h ^ r.s[1])
	h = mix64(h ^ r.s[2])
	h = mix64(h ^ r.s[3])
	h = mix64(h ^ mix64(i^0xe7037ed1a0b428db))
	child.Seed(h)
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0,1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0,n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0,n) using Lemire's unbiased
// multiply-shift rejection method. It panics if n == 0.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Lemire rejection sampling on the high 64 bits of the 128-bit product.
	thresh := -n % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= thresh {
			return hi
		}
	}
}

// mul64 computes the 128-bit product of x and y.
func mul64(x, y uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	x0, x1 := x&mask, x>>32
	y0, y1 := y&mask, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1, w2 := t&mask, t>>32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Perm returns a random permutation of [0,n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle randomizes the order of n elements using the provided swap
// function, via Fisher-Yates.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Exp returns an exponential variate with rate lambda (mean 1/lambda).
// It panics if lambda <= 0.
func (r *Rand) Exp(lambda float64) float64 {
	if lambda <= 0 {
		panic("rng: Exp with non-positive rate")
	}
	u := r.Float64()
	// 1-u is in (0,1], avoiding log(0).
	return -math.Log(1-u) / lambda
}

// Pareto returns a Pareto variate with minimum xm and shape alpha:
// P(X > x) = (xm/x)^alpha for x >= xm. It panics unless xm > 0 and
// alpha > 0.
func (r *Rand) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("rng: Pareto requires xm > 0 and alpha > 0")
	}
	u := r.Float64()
	return xm / math.Pow(1-u, 1/alpha)
}

// Normal returns a normal variate with the given mean and standard
// deviation, using Box-Muller with caching.
func (r *Rand) Normal(mean, stddev float64) float64 {
	if r.hasGauss {
		r.hasGauss = false
		return mean + stddev*r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return mean + stddev*u*f
}

// Poisson returns a Poisson variate with the given mean. For small means
// it uses Knuth's product method; for large means a normal approximation
// with continuity correction, which is accurate to within the needs of
// workload generation.
func (r *Rand) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean < 30 {
		l := math.Exp(-mean)
		k := 0
		p := 1.0
		for {
			p *= r.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	n := r.Normal(mean, math.Sqrt(mean))
	if n < 0 {
		return 0
	}
	return int(n + 0.5)
}

// Zipf samples integers in [1,n] with probability proportional to
// 1/rank^s. It precomputes the CDF once; use NewZipf for repeated
// sampling.
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler over ranks 1..n with exponent s >= 0.
func NewZipf(r *Rand, n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, errors.New("rng: Zipf requires n > 0")
	}
	if s < 0 {
		return nil, errors.New("rng: Zipf requires s >= 0")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), s)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}, nil
}

// Next returns the next Zipf-distributed rank in [1,n].
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo + 1
}
