package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	var allZero = true
	for i := 0; i < 10; i++ {
		if r.Uint64() != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("zero seed produced a degenerate all-zero stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(9)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(11)
	prop := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(13)
	const n = 10
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %v", i, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(19)
	s := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: %v", s)
	}
}

func TestExpMean(t *testing.T) {
	r := New(23)
	const lambda = 2.5
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Exp(lambda)
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-1/lambda) > 0.01 {
		t.Fatalf("Exp mean %v, want %v", mean, 1/lambda)
	}
}

func TestParetoTail(t *testing.T) {
	r := New(29)
	const xm, alpha = 1.0, 2.0
	const n = 200000
	exceed2 := 0
	for i := 0; i < n; i++ {
		v := r.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("Pareto below xm: %v", v)
		}
		if v > 2 {
			exceed2++
		}
	}
	// P(X>2) = (1/2)^2 = 0.25
	frac := float64(exceed2) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("P(X>2) = %v, want 0.25", frac)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(31)
	const mean, sd = 3.0, 2.0
	const n = 300000
	sum, sum2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(mean, sd)
		sum += v
		sum2 += v * v
	}
	m := sum / n
	v := sum2/n - m*m
	if math.Abs(m-mean) > 0.02 {
		t.Fatalf("Normal mean %v, want %v", m, mean)
	}
	if math.Abs(math.Sqrt(v)-sd) > 0.02 {
		t.Fatalf("Normal sd %v, want %v", math.Sqrt(v), sd)
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(37)
	for _, mean := range []float64{0.5, 4, 25, 100} {
		const n = 50000
		sum := 0
		for i := 0; i < n; i++ {
			sum += r.Poisson(mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Fatalf("Poisson(%v) mean %v", mean, got)
		}
	}
}

func TestZipfDistribution(t *testing.T) {
	r := New(41)
	z, err := NewZipf(r, 100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	counts := make([]int, 101)
	for i := 0; i < n; i++ {
		k := z.Next()
		if k < 1 || k > 100 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	// rank 1 should be roughly 2x rank 2.
	ratio := float64(counts[1]) / float64(counts[2])
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("Zipf rank1/rank2 = %v, want ~2", ratio)
	}
}

func TestZipfErrors(t *testing.T) {
	r := New(1)
	if _, err := NewZipf(r, 0, 1); err == nil {
		t.Fatal("NewZipf(0) should fail")
	}
	if _, err := NewZipf(r, 10, -1); err == nil {
		t.Fatal("NewZipf negative exponent should fail")
	}
}
