package aspolicy

import (
	"sort"
	"testing"

	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/rng"
	"netmodel/internal/stats"
)

func TestCustomerConeHierarchy(t *testing.T) {
	a := hierarchy(t)
	cones := a.CustomerCone()
	// Leaves: cone = 1.
	for _, leaf := range []int{5, 6, 7, 8, 9} {
		if cones[leaf] != 1 {
			t.Fatalf("leaf %d cone = %d, want 1", leaf, cones[leaf])
		}
	}
	// Node 2: customers 5,6 -> cone 3. Node 4: customers 8,9 -> cone 3.
	if cones[2] != 3 || cones[4] != 3 {
		t.Fatalf("tier-2 cones = %d,%d, want 3,3", cones[2], cones[4])
	}
	// Node 3: customer 7 -> cone 2.
	if cones[3] != 2 {
		t.Fatalf("cone(3) = %d, want 2", cones[3])
	}
	// Node 0: customers 2,3 -> {0,2,3,5,6,7} = 6. Node 1: customer 4 -> {1,4,8,9} = 4.
	if cones[0] != 6 || cones[1] != 4 {
		t.Fatalf("tier-1 cones = %d,%d, want 6,4", cones[0], cones[1])
	}
}

func TestCustomerConeMultiHoming(t *testing.T) {
	// Diamond: 0 and 1 both provide to 2; 2 provides to 3. Cones must
	// not double count.
	g := newGraphWithEdges(4, [][2]int{{0, 2}, {1, 2}, {2, 3}})
	a := NewAnnotated(g)
	for _, e := range [][2]int{{0, 2}, {1, 2}, {2, 3}} {
		if err := a.SetRel(e[0], e[1], P2C); err != nil {
			t.Fatal(err)
		}
	}
	cones := a.CustomerCone()
	want := []int{3, 3, 2, 1}
	for u := range want {
		if cones[u] != want[u] {
			t.Fatalf("cones = %v, want %v", cones, want)
		}
	}
}

func TestCustomerConeCycleTerminates(t *testing.T) {
	// Pathological provider cycle 0->1->2->0 (p2c each way around).
	g := newGraphWithEdges(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	a := NewAnnotated(g)
	if err := a.SetRel(0, 1, P2C); err != nil {
		t.Fatal(err)
	}
	if err := a.SetRel(1, 2, P2C); err != nil {
		t.Fatal(err)
	}
	if err := a.SetRel(2, 0, P2C); err != nil {
		t.Fatal(err)
	}
	cones := a.CustomerCone()
	for u, c := range cones {
		if c != 3 {
			t.Fatalf("cycle cone[%d] = %d, want 3 (whole cycle)", u, c)
		}
	}
}

func TestConeDistribution(t *testing.T) {
	sizes, counts := ConeDistribution([]int{1, 1, 1, 3, 3, 6})
	if len(sizes) != 3 || sizes[0] != 1 || sizes[1] != 3 || sizes[2] != 6 {
		t.Fatalf("sizes = %v", sizes)
	}
	if counts[0] != 3 || counts[1] != 2 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestHierarchyDepth(t *testing.T) {
	a := hierarchy(t)
	depth, max := a.HierarchyDepth()
	if depth[0] != 0 || depth[1] != 0 {
		t.Fatalf("tier-1 depths = %d,%d, want 0", depth[0], depth[1])
	}
	if depth[2] != 1 || depth[4] != 1 {
		t.Fatalf("tier-2 depths = %d,%d, want 1", depth[2], depth[4])
	}
	if depth[5] != 2 || depth[8] != 2 {
		t.Fatalf("tier-3 depths = %d,%d, want 2", depth[5], depth[8])
	}
	if max != 2 {
		t.Fatalf("max depth = %d, want 2", max)
	}
}

func TestHierarchyDepthCycle(t *testing.T) {
	g := newGraphWithEdges(2, [][2]int{{0, 1}})
	a := NewAnnotated(g)
	// Degenerate: mark the same edge p2c — then each is the other's
	// provider from its own perspective? No: one orientation only. Build
	// a 2-cycle through two parallel relationships is impossible on a
	// simple pair, so use a 3-cycle.
	if err := a.SetRel(0, 1, P2C); err != nil {
		t.Fatal(err)
	}
	if _, max := a.HierarchyDepth(); max != 1 {
		t.Fatalf("max depth = %d, want 1", max)
	}
}

func TestConesOnSyntheticMapHeavyTailed(t *testing.T) {
	top, err := gen.BA{N: 2000, M: 2, A: -1.2}.Generate(rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnnotateByDegree(top.G, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	cones := a.CustomerCone()
	xs := make([]float64, len(cones))
	biggest := 0
	for i, c := range cones {
		xs[i] = float64(c)
		if c > biggest {
			biggest = c
		}
	}
	sort.Float64s(xs)
	med := stats.Quantile(xs, 0.5)
	if med > 2 {
		t.Fatalf("median cone %v — most ASs should be stubs", med)
	}
	if biggest < len(cones)/4 {
		t.Fatalf("largest cone %d of %d — tier-1 should cover a macroscopic share", biggest, len(cones))
	}
}

// newGraphWithEdges is a tiny test helper.
func newGraphWithEdges(n int, edges [][2]int) *graph.Graph {
	g := graph.New(n)
	for _, e := range edges {
		g.MustAddEdge(e[0], e[1])
	}
	return g
}
