package aspolicy

import "sort"

// CustomerCone returns, for every AS, the size of its customer cone:
// the number of ASs reachable by walking provider→customer links only,
// including the AS itself. The cone is the standard measure of an AS's
// market footprint (CAIDA AS-rank): tier-1 cones span most of the
// network while stub cones are singletons.
//
// Each cone is computed by its own provider→customer DFS. Memoizing
// across nodes is unsound because cones overlap under multi-homing
// (union sizes do not compose), so each node pays its own traversal;
// cones are small for the vast majority of ASs, keeping the total cost
// near O(M·depth) in practice. Provider cycles are handled naturally by
// the per-traversal visited marks.
func (a *Annotated) CustomerCone() []int {
	n := a.G.N()
	cone := make([]int, n)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}
	var stack []int
	for u := 0; u < n; u++ {
		size := 0
		stack = stack[:0]
		stack = append(stack, u)
		mark[u] = u
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			a.G.Neighbors(v, func(w, _ int) bool {
				if a.RelOf(v, w) == P2C && mark[w] != u {
					mark[w] = u
					stack = append(stack, w)
				}
				return true
			})
		}
		cone[u] = size
	}
	return cone
}

// ConeDistribution returns the sorted distinct cone sizes with their
// frequencies — heavy-tailed on AS-like hierarchies.
func ConeDistribution(cones []int) (sizes []int, counts []int) {
	freq := make(map[int]int)
	for _, c := range cones {
		freq[c]++
	}
	for s := range freq {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)
	counts = make([]int, len(sizes))
	for i, s := range sizes {
		counts[i] = freq[s]
	}
	return sizes, counts
}

// HierarchyDepth returns the length of the longest provider chain above
// each AS (0 for ASs with no providers) and the maximum over the
// network. Provider cycles are broken at the point of re-entry (the
// re-entered AS counts as a root), so the walk always terminates.
func (a *Annotated) HierarchyDepth() (depth []int, max int) {
	n := a.G.N()
	depth = make([]int, n)
	state := make([]int8, n) // 0 unvisited, 1 in progress, 2 done
	var visit func(u int) int
	visit = func(u int) int {
		if state[u] == 2 {
			return depth[u]
		}
		if state[u] == 1 {
			return 0 // provider cycle: treat as root
		}
		state[u] = 1
		best := 0
		for _, p := range a.Providers(u) {
			if d := visit(p) + 1; d > best {
				best = d
			}
		}
		depth[u] = best
		state[u] = 2
		return best
	}
	for u := 0; u < n; u++ {
		if d := visit(u); d > max {
			max = d
		}
	}
	return depth, max
}
