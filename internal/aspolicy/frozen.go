package aspolicy

import (
	"errors"
	"strconv"

	"netmodel/internal/engine"
	"netmodel/internal/graph"
	"netmodel/internal/metrics"
	"netmodel/internal/rng"
)

// Frozen is the immutable CSR view of an annotated topology: the
// snapshot's arc array paired with a parallel per-arc relationship
// array, so policy traversals (customer cones, valley-free BFS) scan
// flat memory instead of hashing ordered pairs. Being immutable it is
// safe for the parallel sweeps below.
type Frozen struct {
	S *graph.Snapshot
	// rel[a] is the relationship of (u, v) for arc a of node u.
	rel []Rel
	// Workers caps the pool for the parallel sweeps; <= 0 means the
	// bound engine's pool when present, GOMAXPROCS otherwise. Results
	// reproduce bit for bit at a fixed worker count (the reductions are
	// integral, so in practice at any).
	Workers int
	// eng, when set via FreezeWith, memoizes the whole-graph policy
	// metrics (customer cones, exact inflation) in the engine's
	// per-snapshot cache so they are computed once per frozen topology,
	// alongside the topology metrics. Keys carry relKey, a hash of the
	// relationship array, so two annotations of the same graph bound to
	// one engine never serve each other's results.
	eng    *engine.Engine
	relKey string
}

// Freeze builds the frozen view of the annotation. Unannotated edges
// freeze as relationship 0 and surface as "annotation incomplete"
// errors from the traversals, matching the map-based behavior.
func (a *Annotated) Freeze() *Frozen {
	return a.freezeOn(a.G.Freeze(), nil)
}

// FreezeWith builds the frozen view over the snapshot an engine already
// holds, binding the policy metrics into the engine's per-snapshot
// memoization: customer cones and exact valley-free inflation are then
// cached next to clustering, k-cores and the rest, so a pipeline that
// mixes topology and policy metrics freezes once and computes each
// result once. The engine must wrap a snapshot of the annotated graph
// (same node count and arc structure); anything else errors.
func (a *Annotated) FreezeWith(eng *engine.Engine) (*Frozen, error) {
	s := eng.Snapshot()
	if s.N() != a.G.N() || s.M() != a.G.M() {
		return nil, errors.New("aspolicy: engine snapshot does not match the annotated graph")
	}
	return a.freezeOn(s, eng), nil
}

func (a *Annotated) freezeOn(s *graph.Snapshot, eng *engine.Engine) *Frozen {
	// rel spans the snapshot's full arc index space: refreshed
	// snapshots carry slack and relocation gaps, so rows need not tile
	// 2M and rel must be indexed by real arc indices, never densely.
	f := &Frozen{S: s, rel: make([]Rel, s.ArcSpace()), eng: eng}
	n := s.N()
	for u := 0; u < n; u++ {
		lo, _ := s.ArcRange(u)
		for j, v := range s.Neighbors(u) {
			f.rel[int(lo)+j] = a.RelOf(u, int(v))
		}
	}
	if eng != nil {
		// FNV-1a over the live arc relationships in row order, so the
		// key depends on the annotation, not the arena layout: frozen
		// views with equal annotations share memo entries, differing
		// annotations do not.
		h := uint64(0xcbf29ce484222325)
		f.eachArc(func(_ int32, rel Rel) bool {
			h = (h ^ uint64(byte(rel))) * 0x100000001b3
			return true
		})
		f.relKey = strconv.FormatUint(h, 16)
	}
	return f
}

// eachArc calls fn for every live arc index and its relationship, in
// row order, stopping early if fn returns false.
func (f *Frozen) eachArc(fn func(arc int32, rel Rel) bool) {
	n := f.S.N()
	for u := 0; u < n; u++ {
		lo, hi := f.S.ArcRange(u)
		for a := lo; a < hi; a++ {
			if !fn(a, f.rel[a]) {
				return
			}
		}
	}
}

// Complete reports whether every arc carries a relationship.
func (f *Frozen) Complete() bool {
	complete := true
	f.eachArc(func(_ int32, rel Rel) bool {
		if rel == 0 {
			complete = false
		}
		return complete
	})
	return complete
}

// CustomerCone returns the customer-cone size of every AS, computed by
// per-node provider→customer DFS sharded across the worker pool. Each
// worker keeps its own visit-stamp array, so cones are independent and
// the result is identical to the sequential Annotated.CustomerCone.
// When the view is bound to an engine (FreezeWith), the result is
// memoized per snapshot; callers must not modify it.
func (f *Frozen) CustomerCone() []int {
	if f.eng != nil {
		return f.eng.Cached("aspolicy:cone:"+f.relKey, func() any { return f.customerCone() }).([]int)
	}
	return f.customerCone()
}

func (f *Frozen) customerCone() []int {
	s := f.S
	n := s.N()
	cone := make([]int, n)
	type coneScratch struct {
		mark  []int32
		stack []int32
	}
	scratch := make([]*coneScratch, f.workers())
	engine.ParallelFor(n, len(scratch), func(w, u int) {
		sc := scratch[w]
		if sc == nil {
			sc = &coneScratch{mark: make([]int32, n)}
			for i := range sc.mark {
				sc.mark[i] = -1
			}
			scratch[w] = sc
		}
		size := 0
		sc.stack = sc.stack[:0]
		sc.stack = append(sc.stack, int32(u))
		sc.mark[u] = int32(u)
		for len(sc.stack) > 0 {
			v := sc.stack[len(sc.stack)-1]
			sc.stack = sc.stack[:len(sc.stack)-1]
			size++
			lo, _ := s.ArcRange(int(v))
			for j, w2 := range s.Neighbors(int(v)) {
				if f.rel[int(lo)+j] == P2C && sc.mark[w2] != int32(u) {
					sc.mark[w2] = int32(u)
					sc.stack = append(sc.stack, w2)
				}
			}
		}
		cone[u] = size
	})
	return cone
}

// ValleyFreeDistances returns the shortest valley-free distance from
// src to every node over the frozen view, -1 where no policy-compliant
// path exists — the CSR counterpart of Annotated.ValleyFreeDistances.
func (f *Frozen) ValleyFreeDistances(src int) ([]int, error) {
	dist := make([]int32, numPhases*f.S.N())
	queue := make([]int32, 0, f.S.N())
	if err := f.valleyFree(src, dist, queue); err != nil {
		return nil, err
	}
	n := f.S.N()
	out := make([]int, n)
	for v := 0; v < n; v++ {
		du := dist[v*numPhases+phaseUp]
		dd := dist[v*numPhases+phaseDown]
		switch {
		case du < 0:
			out[v] = int(dd)
		case dd < 0:
			out[v] = int(du)
		case du < dd:
			out[v] = int(du)
		default:
			out[v] = int(dd)
		}
	}
	return out, nil
}

// valleyFree runs the two-phase policy BFS from src into dist (length
// numPhases*N, overwritten). queue is scratch.
func (f *Frozen) valleyFree(src int, dist []int32, queue []int32) error {
	s := f.S
	n := s.N()
	if src < 0 || src >= n {
		return errors.New("aspolicy: source out of range")
	}
	for i := range dist {
		dist[i] = -1
	}
	dist[src*numPhases+phaseUp] = 0
	queue = append(queue[:0], int32(src*numPhases+phaseUp))
	for head := 0; head < len(queue); head++ {
		state := queue[head]
		u, phase := int(state)/numPhases, int(state)%numPhases
		d := dist[state]
		lo, _ := s.ArcRange(u)
		for j, v := range s.Neighbors(u) {
			r := f.rel[int(lo)+j]
			if r == 0 {
				return errors.New("aspolicy: annotation incomplete")
			}
			var next int32
			switch {
			case phase == phaseUp && r == C2P:
				next = v*numPhases + phaseUp
			case r == P2C:
				next = v*numPhases + phaseDown
			case phase == phaseUp && r == Peer:
				next = v*numPhases + phaseDown
			default:
				continue // policy forbids this step
			}
			if dist[next] < 0 {
				dist[next] = d + 1
				queue = append(queue, next)
			}
		}
	}
	return nil
}

// MeasureInflation samples `sources` BFS roots (all nodes when <= 0)
// and compares plain shortest paths with valley-free paths from each
// root, sharding roots across the worker pool. All per-root reductions
// are integral, so the result matches Annotated.MeasureInflation
// exactly for the same generator state. Exact (all-sources) runs are
// memoized when the view is bound to an engine; sampled runs are not.
func (f *Frozen) MeasureInflation(r *rng.Rand, sources int) (Inflation, error) {
	if f.eng != nil && (sources <= 0 || sources >= f.S.N()) {
		type result struct {
			inf Inflation
			err error
		}
		res := f.eng.Cached("aspolicy:inflation:"+f.relKey, func() any {
			inf, err := f.measureInflation(r, sources)
			return result{inf, err}
		}).(result)
		return res.inf, res.err
	}
	return f.measureInflation(r, sources)
}

func (f *Frozen) measureInflation(r *rng.Rand, sources int) (Inflation, error) {
	s := f.S
	n := s.N()
	if n < 2 {
		return Inflation{}, errors.New("aspolicy: need at least two nodes")
	}
	var srcs []int
	if sources <= 0 || sources >= n {
		srcs = make([]int, n)
		for i := range srcs {
			srcs[i] = i
		}
	} else {
		if r == nil {
			return Inflation{}, errors.New("aspolicy: sampling requires a generator")
		}
		srcs = r.Perm(n)[:sources]
	}
	type inflScratch struct {
		plain, queue []int32
		policy       []int32
		vfQueue      []int32
		pairs        int
		unreach      int
		both         int
		sumS, sumP   int64
		maxStretch   int
		err          error
	}
	scratch := make([]*inflScratch, f.workers())
	engine.ParallelFor(len(srcs), len(scratch), func(w, i int) {
		sc := scratch[w]
		if sc == nil {
			sc = &inflScratch{
				plain:   make([]int32, n),
				queue:   make([]int32, n),
				policy:  make([]int32, numPhases*n),
				vfQueue: make([]int32, 0, numPhases*n),
			}
			scratch[w] = sc
		}
		if sc.err != nil {
			return
		}
		src := srcs[i]
		metrics.BFSFrozen(f.S, src, sc.plain, sc.queue)
		if err := f.valleyFree(src, sc.policy, sc.vfQueue); err != nil {
			sc.err = err
			return
		}
		for v := 0; v < n; v++ {
			if v == src || sc.plain[v] < 0 {
				continue
			}
			sc.pairs++
			du := sc.policy[v*numPhases+phaseUp]
			dd := sc.policy[v*numPhases+phaseDown]
			pol := du
			if du < 0 || (dd >= 0 && dd < du) {
				pol = dd
			}
			if pol < 0 {
				sc.unreach++
				continue
			}
			sc.both++
			sc.sumS += int64(sc.plain[v])
			sc.sumP += int64(pol)
			if st := int(pol - sc.plain[v]); st > sc.maxStretch {
				sc.maxStretch = st
			}
		}
	})
	var inf Inflation
	var sumS, sumP int64
	var both int
	for _, sc := range scratch {
		if sc == nil {
			continue
		}
		if sc.err != nil {
			return Inflation{}, sc.err
		}
		inf.Pairs += sc.pairs
		inf.Unreachable += sc.unreach
		both += sc.both
		sumS += sc.sumS
		sumP += sc.sumP
		if sc.maxStretch > inf.MaxStretch {
			inf.MaxStretch = sc.maxStretch
		}
	}
	if both > 0 {
		inf.AvgShortest = float64(sumS) / float64(both)
		inf.AvgPolicy = float64(sumP) / float64(both)
		if inf.AvgShortest > 0 {
			inf.Ratio = inf.AvgPolicy / inf.AvgShortest
		}
	}
	return inf, nil
}

// workers returns the configured pool width for policy sweeps: the
// explicit override, then the bound engine's pool, then GOMAXPROCS.
func (f *Frozen) workers() int {
	if f.Workers > 0 {
		return f.Workers
	}
	if f.eng != nil {
		return f.eng.Workers()
	}
	return engine.DefaultWorkers()
}
