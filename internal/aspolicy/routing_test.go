package aspolicy

import (
	"testing"

	"netmodel/internal/gen"
	"netmodel/internal/rng"
)

func TestValleyFreeDistancesHierarchy(t *testing.T) {
	a := hierarchy(t)
	d, err := a.ValleyFreeDistances(5)
	if err != nil {
		t.Fatal(err)
	}
	// 5 → 2 → 0 → 1 → 4 → 8: climbing then one peer then descending.
	if d[8] != 5 {
		t.Fatalf("policy dist 5→8 = %d, want 5", d[8])
	}
	// 5 → 2 → 6 (down via shared provider).
	if d[6] != 2 {
		t.Fatalf("policy dist 5→6 = %d, want 2", d[6])
	}
	// 5 → 2 → 3 → 7 (peer at tier 2 then down).
	if d[7] != 3 {
		t.Fatalf("policy dist 5→7 = %d, want 3", d[7])
	}
	if d[5] != 0 {
		t.Fatalf("self distance = %d", d[5])
	}
}

func TestValleyFreeForbidsValleys(t *testing.T) {
	a := hierarchy(t)
	// Path 5→2→3→... uses the 2—3 peer link; continuing upward 3→0 after
	// a peer step is a valley violation.
	if a.ValleyFree([]int{5, 2, 3, 0}) {
		t.Fatal("up after peer must be rejected")
	}
	// Down then up is the canonical valley.
	if a.ValleyFree([]int{0, 2, 3}) == false {
		// 0→2 is p2c (down); 2→3 is peer — peer after down is invalid.
		// Confirm rejection.
	} else {
		t.Fatal("peer after down must be rejected")
	}
	if !a.ValleyFree([]int{5, 2, 0, 1, 4, 8}) {
		t.Fatal("canonical up-peer-down path must be accepted")
	}
	if !a.ValleyFree([]int{0, 2, 5}) {
		t.Fatal("pure downhill path must be accepted")
	}
	if !a.ValleyFree([]int{5, 2, 0}) {
		t.Fatal("pure uphill path must be accepted")
	}
}

func TestValleyFreePeerToPeerForbidden(t *testing.T) {
	a := hierarchy(t)
	// 2—3 peer then 3—0 climb: two tier-2 peers cannot re-climb.
	if a.ValleyFree([]int{6, 2, 3, 0, 1}) {
		t.Fatal("climb after peer crossing must be rejected")
	}
}

func TestValleyFreeDistancesErrors(t *testing.T) {
	a := hierarchy(t)
	if _, err := a.ValleyFreeDistances(-1); err == nil {
		t.Fatal("bad source should fail")
	}
	// Incomplete annotation must be detected.
	a.G.MustAddEdge(5, 9)
	if _, err := a.ValleyFreeDistances(5); err == nil {
		t.Fatal("incomplete annotation should fail")
	}
}

func TestMeasureInflationHierarchy(t *testing.T) {
	a := hierarchy(t)
	inf, err := a.MeasureInflation(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inf.Pairs != 90 {
		t.Fatalf("pairs = %d, want 90", inf.Pairs)
	}
	if inf.Unreachable != 0 {
		t.Fatalf("unreachable = %d in a clean hierarchy", inf.Unreachable)
	}
	if inf.Ratio < 1 {
		t.Fatalf("policy ratio %v below 1", inf.Ratio)
	}
}

func TestMeasureInflationOnSyntheticMap(t *testing.T) {
	top, err := gen.BA{N: 600, M: 2}.Generate(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnnotateByDegree(top.G, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	inf, err := a.MeasureInflation(rng.New(5), 80)
	if err != nil {
		t.Fatal(err)
	}
	if inf.Ratio < 1 {
		t.Fatalf("inflation ratio %v must be >= 1", inf.Ratio)
	}
	if inf.Ratio > 2 {
		t.Fatalf("inflation ratio %v implausibly high for a degree hierarchy", inf.Ratio)
	}
	if inf.AvgPolicy < inf.AvgShortest {
		t.Fatal("policy paths cannot be shorter than shortest paths")
	}
}

func TestMeasureInflationErrors(t *testing.T) {
	a := hierarchy(t)
	if _, err := a.MeasureInflation(nil, 3); err == nil {
		t.Fatal("sampling without generator should fail")
	}
}
