// Package aspolicy adds the economics of Internet routing to raw
// topologies: every AS-AS link carries a business relationship —
// provider-to-customer, customer-to-provider or settlement-free peering
// — and packets only follow paths that make commercial sense.
//
// The export rule is Gao's: a route learned from a provider or peer is
// only announced to customers. The induced "valley-free" property says a
// valid AS path climbs customer→provider links, crosses at most one peer
// link at the top, then descends provider→customer — it never goes down
// and up again (a valley would mean an AS giving free transit).
//
// The package provides degree-based relationship annotation for
// synthetic maps, Gao-style relationship inference from path sets, and a
// valley-free shortest-path engine used to measure policy path
// inflation, one of the canonical quantities of the routing-policy
// literature.
package aspolicy

import (
	"errors"
	"fmt"
	"sort"

	"netmodel/internal/graph"
)

// Rel is the business relationship of an ordered AS pair (u,v).
type Rel int8

// Relationship values for an ordered pair (u,v).
const (
	// P2C: u is v's provider (u sells transit to v).
	P2C Rel = iota + 1
	// C2P: u is v's customer.
	C2P
	// Peer: settlement-free peering.
	Peer
)

// String implements fmt.Stringer.
func (r Rel) String() string {
	switch r {
	case P2C:
		return "p2c"
	case C2P:
		return "c2p"
	case Peer:
		return "peer"
	default:
		return fmt.Sprintf("rel(%d)", int(r))
	}
}

// Annotated is a topology with a relationship on every simple edge.
type Annotated struct {
	G    *graph.Graph
	rels map[[2]int]Rel // keyed by ordered pair with u < v, value is rel of (u,v)
}

// NewAnnotated wraps a graph with an empty relationship table.
func NewAnnotated(g *graph.Graph) *Annotated {
	return &Annotated{G: g, rels: make(map[[2]int]Rel)}
}

// SetRel records the relationship of the ordered pair (u,v); (v,u) is
// implied symmetric (p2c inverts to c2p, peer stays peer). The edge must
// exist.
func (a *Annotated) SetRel(u, v int, r Rel) error {
	if !a.G.HasEdge(u, v) {
		return fmt.Errorf("aspolicy: no edge (%d,%d)", u, v)
	}
	if u > v {
		u, v = v, u
		r = invert(r)
	}
	a.rels[[2]int{u, v}] = r
	return nil
}

// RelOf returns the relationship of the ordered pair (u,v), or 0 when
// the edge is absent or unannotated.
func (a *Annotated) RelOf(u, v int) Rel {
	if u > v {
		return invert(a.rels[[2]int{v, u}])
	}
	return a.rels[[2]int{u, v}]
}

func invert(r Rel) Rel {
	switch r {
	case P2C:
		return C2P
	case C2P:
		return P2C
	default:
		return r
	}
}

// Complete reports whether every simple edge carries a relationship.
func (a *Annotated) Complete() bool {
	ok := true
	a.G.Edges(func(u, v, w int) bool {
		if a.RelOf(u, v) == 0 {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// Counts returns the number of provider-customer and peering links.
func (a *Annotated) Counts() (p2c, peer int) {
	a.G.Edges(func(u, v, w int) bool {
		switch a.RelOf(u, v) {
		case Peer:
			peer++
		case P2C, C2P:
			p2c++
		}
		return true
	})
	return
}

// AnnotateByDegree assigns relationships from the degree hierarchy, the
// standard heuristic for synthetic maps: for each edge the higher-degree
// endpoint is the provider, unless the two degrees are within PeerRatio
// of each other (ratio in [1,∞)), in which case they peer. Ties peer.
func AnnotateByDegree(g *graph.Graph, peerRatio float64) (*Annotated, error) {
	if peerRatio < 1 {
		return nil, errors.New("aspolicy: peerRatio must be >= 1")
	}
	a := NewAnnotated(g)
	g.Edges(func(u, v, w int) bool {
		du, dv := g.Degree(u), g.Degree(v)
		lo, hi := du, dv
		if lo > hi {
			lo, hi = hi, lo
		}
		var r Rel
		switch {
		case float64(hi) <= peerRatio*float64(lo):
			r = Peer
		case du > dv:
			r = P2C
		default:
			r = C2P
		}
		a.rels[[2]int{u, v}] = r
		return true
	})
	return a, nil
}

// InferGao infers relationships from a set of AS paths following Gao's
// algorithm: in each path the highest-degree AS is taken as the top of
// the hill; links before it are customer→provider, links after it are
// provider→customer. Votes across paths are tallied and conflicting
// majorities within Tie of each other become peering. Edges never seen
// in any path stay unannotated.
func InferGao(g *graph.Graph, paths [][]int, tie float64) (*Annotated, error) {
	if tie < 0 || tie > 1 {
		return nil, errors.New("aspolicy: tie fraction must be in [0,1]")
	}
	up := make(map[[2]int]int)   // votes that (u,v) with u<v is c2p
	down := make(map[[2]int]int) // votes that (u,v) with u<v is p2c
	for _, p := range paths {
		if len(p) < 2 {
			continue
		}
		top := 0
		for i, as := range p {
			if g.Degree(as) > g.Degree(p[top]) {
				top = i
			}
			_ = as
		}
		for i := 0; i+1 < len(p); i++ {
			u, v := p[i], p[i+1]
			if !g.HasEdge(u, v) {
				return nil, fmt.Errorf("aspolicy: path uses non-edge (%d,%d)", u, v)
			}
			// Before the top we climb (u is customer of v), after we
			// descend (u is provider of v).
			climb := i < top
			if u > v {
				u, v = v, u
				climb = !climb
			}
			if climb {
				up[[2]int{u, v}]++
			} else {
				down[[2]int{u, v}]++
			}
		}
	}
	a := NewAnnotated(g)
	for key, u := range up {
		d := down[key]
		a.rels[key] = voteRel(u, d, tie)
	}
	for key, d := range down {
		if _, seen := up[key]; !seen {
			a.rels[key] = voteRel(0, d, tie)
		}
	}
	return a, nil
}

func voteRel(up, down int, tie float64) Rel {
	total := up + down
	if total == 0 {
		return 0
	}
	bal := float64(up-down) / float64(total)
	switch {
	case bal > tie:
		return C2P
	case bal < -tie:
		return P2C
	default:
		return Peer
	}
}

// Providers returns the ASs that u buys transit from, sorted.
func (a *Annotated) Providers(u int) []int {
	var out []int
	a.G.Neighbors(u, func(v, _ int) bool {
		if a.RelOf(u, v) == C2P {
			out = append(out, v)
		}
		return true
	})
	sort.Ints(out)
	return out
}

// Customers returns the ASs that buy transit from u, sorted.
func (a *Annotated) Customers(u int) []int {
	var out []int
	a.G.Neighbors(u, func(v, _ int) bool {
		if a.RelOf(u, v) == P2C {
			out = append(out, v)
		}
		return true
	})
	sort.Ints(out)
	return out
}

// Tier1s returns ASs with customers but no providers — the top of the
// transit hierarchy.
func (a *Annotated) Tier1s() []int {
	var out []int
	for u := 0; u < a.G.N(); u++ {
		if len(a.Providers(u)) == 0 && len(a.Customers(u)) > 0 {
			out = append(out, u)
		}
	}
	return out
}
