package aspolicy

import (
	"testing"

	"netmodel/internal/graph"
)

// hierarchy builds a 3-tier test topology:
//
//	    0 ——— 1        tier 1 (peers)
//	   / \     \
//	  2   3     4      tier 2 (customers of tier 1); 2—3 peer
//	 / \   \   / \
//	5   6   7 8   9    tier 3 (customers of tier 2)
func hierarchy(t *testing.T) *Annotated {
	t.Helper()
	g := graph.New(10)
	edges := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 4}, {2, 3},
		{2, 5}, {2, 6}, {3, 7}, {4, 8}, {4, 9}}
	for _, e := range edges {
		g.MustAddEdge(e[0], e[1])
	}
	a := NewAnnotated(g)
	set := func(u, v int, r Rel) {
		t.Helper()
		if err := a.SetRel(u, v, r); err != nil {
			t.Fatal(err)
		}
	}
	set(0, 1, Peer)
	set(2, 3, Peer)
	set(0, 2, P2C)
	set(0, 3, P2C)
	set(1, 4, P2C)
	set(2, 5, P2C)
	set(2, 6, P2C)
	set(3, 7, P2C)
	set(4, 8, P2C)
	set(4, 9, P2C)
	return a
}

func TestRelSymmetry(t *testing.T) {
	a := hierarchy(t)
	if a.RelOf(0, 2) != P2C {
		t.Fatalf("RelOf(0,2) = %v, want p2c", a.RelOf(0, 2))
	}
	if a.RelOf(2, 0) != C2P {
		t.Fatalf("RelOf(2,0) = %v, want c2p", a.RelOf(2, 0))
	}
	if a.RelOf(0, 1) != Peer || a.RelOf(1, 0) != Peer {
		t.Fatal("peer must be symmetric")
	}
	if a.RelOf(5, 9) != 0 {
		t.Fatal("non-edge must be unannotated")
	}
}

func TestSetRelRequiresEdge(t *testing.T) {
	a := NewAnnotated(graph.New(3))
	if err := a.SetRel(0, 1, Peer); err == nil {
		t.Fatal("SetRel on missing edge should fail")
	}
}

func TestSetRelReversedOrder(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1)
	a := NewAnnotated(g)
	if err := a.SetRel(1, 0, P2C); err != nil { // 1 is provider of 0
		t.Fatal(err)
	}
	if a.RelOf(1, 0) != P2C || a.RelOf(0, 1) != C2P {
		t.Fatal("reversed SetRel stored wrong relationship")
	}
}

func TestCompleteAndCounts(t *testing.T) {
	a := hierarchy(t)
	if !a.Complete() {
		t.Fatal("hierarchy should be completely annotated")
	}
	p2c, peer := a.Counts()
	if p2c != 8 || peer != 2 {
		t.Fatalf("counts = %d p2c, %d peer; want 8, 2", p2c, peer)
	}
	// Remove an annotation.
	g := graph.New(2)
	g.MustAddEdge(0, 1)
	if NewAnnotated(g).Complete() {
		t.Fatal("unannotated edge must make Complete false")
	}
}

func TestProvidersCustomersTier1(t *testing.T) {
	a := hierarchy(t)
	prov := a.Providers(5)
	if len(prov) != 1 || prov[0] != 2 {
		t.Fatalf("Providers(5) = %v, want [2]", prov)
	}
	cust := a.Customers(2)
	if len(cust) != 2 || cust[0] != 5 || cust[1] != 6 {
		t.Fatalf("Customers(2) = %v, want [5 6]", cust)
	}
	t1 := a.Tier1s()
	if len(t1) != 2 || t1[0] != 0 || t1[1] != 1 {
		t.Fatalf("Tier1s = %v, want [0 1]", t1)
	}
}

func TestAnnotateByDegree(t *testing.T) {
	// Star: hub is provider of all leaves.
	g := graph.New(5)
	for i := 1; i < 5; i++ {
		g.MustAddEdge(0, i)
	}
	a, err := AnnotateByDegree(g, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 5; i++ {
		if a.RelOf(0, i) != P2C {
			t.Fatalf("hub must be provider of %d, got %v", i, a.RelOf(0, i))
		}
	}
	if !a.Complete() {
		t.Fatal("degree annotation must be complete")
	}
}

func TestAnnotateByDegreePeersEqualDegrees(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1)
	a, err := AnnotateByDegree(g, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if a.RelOf(0, 1) != Peer {
		t.Fatal("equal degrees must peer")
	}
}

func TestAnnotateByDegreeValidation(t *testing.T) {
	if _, err := AnnotateByDegree(graph.New(2), 0.5); err == nil {
		t.Fatal("peerRatio < 1 should fail")
	}
}

func TestInferGaoRecoversHierarchy(t *testing.T) {
	// Gao's heuristic takes the highest-degree AS on a path as the top of
	// the hill, so it needs a topology where degree tracks tier: two
	// tier-1 peers (degree 5 each) over four tier-2 ASs (degree 4) over
	// eight tier-3 leaves.
	g := graph.New(14)
	a := NewAnnotated(g)
	set := func(u, v int, r Rel) {
		t.Helper()
		g.MustAddEdge(u, v)
		if err := a.SetRel(u, v, r); err != nil {
			t.Fatal(err)
		}
	}
	set(0, 1, Peer)
	for t2 := 2; t2 <= 5; t2++ {
		set(0, t2, P2C)
		set(1, t2, P2C)
	}
	leaf := 6
	for t2 := 2; t2 <= 5; t2++ {
		set(t2, leaf, P2C)
		set(t2, leaf+1, P2C)
		leaf += 2
	}
	paths := [][]int{
		{6, 2, 0, 3, 8},
		{7, 2, 1, 4, 10},
		{9, 3, 0, 5, 12},
		{11, 4, 1, 5, 13},
		{8, 3, 1, 2, 6},
		{13, 5, 0, 4, 11},
		{12, 5, 1, 3, 9},
		{10, 4, 0, 2, 7},
		{6, 2, 0, 1, 4, 10}, // crosses the tier-1 peering
		{13, 5, 1, 0, 2, 6}, // crosses it the other way
	}
	for _, p := range paths {
		if !a.ValleyFree(p) {
			t.Fatalf("test path %v is not valley-free under ground truth", p)
		}
	}
	inferred, err := InferGao(g, paths, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	agree, total := 0, 0
	g.Edges(func(u, v, w int) bool {
		r := inferred.RelOf(u, v)
		if r == 0 {
			return true // not traversed by any path
		}
		total++
		if r == a.RelOf(u, v) {
			agree++
		}
		return true
	})
	if total < 10 {
		t.Fatalf("only %d edges inferred", total)
	}
	if agree != total {
		t.Fatalf("inference agreed on %d of %d traversed edges", agree, total)
	}
}

func TestInferGaoErrors(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	if _, err := InferGao(g, [][]int{{0, 2}}, 0.1); err == nil {
		t.Fatal("path over non-edge should fail")
	}
	if _, err := InferGao(g, nil, -0.1); err == nil {
		t.Fatal("negative tie should fail")
	}
}
