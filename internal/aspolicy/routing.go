package aspolicy

import (
	"errors"

	"netmodel/internal/rng"
)

// Valley-free routing is a BFS over an expanded state space: each AS is
// visited in one of two phases. Phase up ("still climbing"): the path so
// far used only customer→provider links. Phase down ("over the top"):
// the path crossed a peer link or a provider→customer link; from here
// only provider→customer links may follow. This encodes Gao's export
// rule exactly and finds the shortest policy-compliant path.

const (
	phaseUp = iota
	phaseDown
	numPhases
)

// ValleyFreeDistances returns the length of the shortest valley-free
// path from src to every node, -1 where no policy-compliant path
// exists. The annotation must be complete.
func (a *Annotated) ValleyFreeDistances(src int) ([]int, error) {
	n := a.G.N()
	if src < 0 || src >= n {
		return nil, errors.New("aspolicy: source out of range")
	}
	dist := make([]int, numPhases*n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src*numPhases+phaseUp] = 0
	queue := []int{src*numPhases + phaseUp}
	for len(queue) > 0 {
		state := queue[0]
		queue = queue[1:]
		u, phase := state/numPhases, state%numPhases
		d := dist[state]
		var stop bool
		a.G.Neighbors(u, func(v, _ int) bool {
			r := a.RelOf(u, v)
			if r == 0 {
				stop = true
				return false
			}
			var next int
			switch {
			case phase == phaseUp && r == C2P:
				next = v*numPhases + phaseUp
			case r == P2C:
				next = v*numPhases + phaseDown
			case phase == phaseUp && r == Peer:
				next = v*numPhases + phaseDown
			default:
				return true // policy forbids this step
			}
			if dist[next] < 0 {
				dist[next] = d + 1
				queue = append(queue, next)
			}
			return true
		})
		if stop {
			return nil, errors.New("aspolicy: annotation incomplete")
		}
	}
	out := make([]int, n)
	for v := 0; v < n; v++ {
		du := dist[v*numPhases+phaseUp]
		dd := dist[v*numPhases+phaseDown]
		switch {
		case du < 0:
			out[v] = dd
		case dd < 0:
			out[v] = du
		case du < dd:
			out[v] = du
		default:
			out[v] = dd
		}
	}
	return out, nil
}

// ValleyFree reports whether an explicit AS path complies with the
// export rules under the annotation.
func (a *Annotated) ValleyFree(path []int) bool {
	phase := phaseUp
	for i := 0; i+1 < len(path); i++ {
		r := a.RelOf(path[i], path[i+1])
		switch {
		case r == C2P && phase == phaseUp:
			// keep climbing
		case r == Peer && phase == phaseUp:
			phase = phaseDown
		case r == P2C:
			phase = phaseDown
		default:
			return false
		}
	}
	return true
}

// Inflation summarizes policy path stretch relative to shortest paths.
type Inflation struct {
	Pairs       int     // sampled reachable pairs
	Unreachable int     // pairs reachable topologically but not by policy
	AvgShortest float64 // mean hop count ignoring policy
	AvgPolicy   float64 // mean valley-free hop count over policy-reachable pairs
	Ratio       float64 // AvgPolicy / AvgShortest over pairs reachable both ways
	MaxStretch  int     // worst per-pair additive stretch observed
}

// MeasureInflation samples `sources` BFS roots (all nodes when <= 0) and
// compares plain shortest paths with valley-free paths from each root.
func (a *Annotated) MeasureInflation(r *rng.Rand, sources int) (Inflation, error) {
	n := a.G.N()
	if n < 2 {
		return Inflation{}, errors.New("aspolicy: need at least two nodes")
	}
	var srcs []int
	if sources <= 0 || sources >= n {
		srcs = make([]int, n)
		for i := range srcs {
			srcs[i] = i
		}
	} else {
		if r == nil {
			return Inflation{}, errors.New("aspolicy: sampling requires a generator")
		}
		perm := r.Perm(n)
		srcs = perm[:sources]
	}
	var inf Inflation
	var sumS, sumP float64
	var both int
	for _, s := range srcs {
		plain := bfsPlain(a, s)
		policy, err := a.ValleyFreeDistances(s)
		if err != nil {
			return Inflation{}, err
		}
		for v := 0; v < n; v++ {
			if v == s || plain[v] < 0 {
				continue
			}
			inf.Pairs++
			if policy[v] < 0 {
				inf.Unreachable++
				continue
			}
			both++
			sumS += float64(plain[v])
			sumP += float64(policy[v])
			if st := policy[v] - plain[v]; st > inf.MaxStretch {
				inf.MaxStretch = st
			}
		}
	}
	if both > 0 {
		inf.AvgShortest = sumS / float64(both)
		inf.AvgPolicy = sumP / float64(both)
		if inf.AvgShortest > 0 {
			inf.Ratio = inf.AvgPolicy / inf.AvgShortest
		}
	}
	return inf, nil
}

func bfsPlain(a *Annotated, src int) []int {
	n := a.G.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		a.G.Neighbors(u, func(v, _ int) bool {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
			return true
		})
	}
	return dist
}
