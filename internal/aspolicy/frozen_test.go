package aspolicy

import (
	"reflect"
	"testing"

	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// annotatedTestTopology builds a BA-family topology with the standard
// degree-hierarchy annotation, the setup of the routing experiments.
func annotatedTestTopology(t *testing.T, seed uint64, n int) *Annotated {
	t.Helper()
	top, err := (gen.BA{N: n, M: 2, A: -1.6}).Generate(rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnnotateByDegree(top.G, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestFrozenMirrorsAnnotation(t *testing.T) {
	a := annotatedTestTopology(t, 1, 200)
	f := a.Freeze()
	if !f.Complete() {
		t.Fatal("degree annotation must freeze complete")
	}
	s := f.S
	for u := 0; u < s.N(); u++ {
		lo, _ := s.ArcRange(u)
		for j, v := range s.Neighbors(u) {
			if got, want := f.rel[int(lo)+j], a.RelOf(u, int(v)); got != want {
				t.Fatalf("rel(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
	// An unannotated edge must freeze incomplete.
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	partial := NewAnnotated(g)
	if err := partial.SetRel(0, 1, P2C); err != nil {
		t.Fatal(err)
	}
	if partial.Freeze().Complete() {
		t.Fatal("partial annotation must freeze incomplete")
	}
}

func TestFrozenCustomerConeMatchesMap(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		a := annotatedTestTopology(t, seed, 300)
		if got, want := a.Freeze().CustomerCone(), a.CustomerCone(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: customer cones differ", seed)
		}
	}
}

func TestFrozenValleyFreeDistancesMatchesMap(t *testing.T) {
	a := annotatedTestTopology(t, 2, 250)
	f := a.Freeze()
	for src := 0; src < f.S.N(); src += 17 {
		want, err := a.ValleyFreeDistances(src)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.ValleyFreeDistances(src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("src %d: valley-free distances differ", src)
		}
	}
	if _, err := f.ValleyFreeDistances(-1); err == nil {
		t.Fatal("out-of-range source must error")
	}
	// Incomplete annotations must surface the same error.
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	partial := NewAnnotated(g)
	if err := partial.SetRel(0, 1, P2C); err != nil {
		t.Fatal(err)
	}
	if _, err := partial.Freeze().ValleyFreeDistances(0); err == nil {
		t.Fatal("incomplete annotation must error")
	}
}

func TestFrozenInflationMatchesMap(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		a := annotatedTestTopology(t, seed, 250)
		f := a.Freeze()
		for _, sources := range []int{0, 40} {
			want, err := a.MeasureInflation(rng.New(9), sources)
			if err != nil {
				t.Fatal(err)
			}
			got, err := f.MeasureInflation(rng.New(9), sources)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed %d sources %d:\n got %+v\nwant %+v", seed, sources, got, want)
			}
		}
	}
	small := NewAnnotated(graph.New(1))
	if _, err := small.Freeze().MeasureInflation(nil, 0); err == nil {
		t.Fatal("tiny graph must error")
	}
	a := annotatedTestTopology(t, 5, 100)
	if _, err := a.Freeze().MeasureInflation(nil, 10); err == nil {
		t.Fatal("sampling without generator must error")
	}
}
