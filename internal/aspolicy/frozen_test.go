package aspolicy

import (
	"reflect"
	"testing"

	"netmodel/internal/engine"
	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

// annotatedTestTopology builds a BA-family topology with the standard
// degree-hierarchy annotation, the setup of the routing experiments.
func annotatedTestTopology(t *testing.T, seed uint64, n int) *Annotated {
	t.Helper()
	top, err := (gen.BA{N: n, M: 2, A: -1.6}).Generate(rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnnotateByDegree(top.G, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestFrozenMirrorsAnnotation(t *testing.T) {
	a := annotatedTestTopology(t, 1, 200)
	f := a.Freeze()
	if !f.Complete() {
		t.Fatal("degree annotation must freeze complete")
	}
	s := f.S
	for u := 0; u < s.N(); u++ {
		lo, _ := s.ArcRange(u)
		for j, v := range s.Neighbors(u) {
			if got, want := f.rel[int(lo)+j], a.RelOf(u, int(v)); got != want {
				t.Fatalf("rel(%d,%d) = %v, want %v", u, v, got, want)
			}
		}
	}
	// An unannotated edge must freeze incomplete.
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	partial := NewAnnotated(g)
	if err := partial.SetRel(0, 1, P2C); err != nil {
		t.Fatal(err)
	}
	if partial.Freeze().Complete() {
		t.Fatal("partial annotation must freeze incomplete")
	}
}

func TestFrozenCustomerConeMatchesMap(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		a := annotatedTestTopology(t, seed, 300)
		if got, want := a.Freeze().CustomerCone(), a.CustomerCone(); !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: customer cones differ", seed)
		}
	}
}

func TestFrozenValleyFreeDistancesMatchesMap(t *testing.T) {
	a := annotatedTestTopology(t, 2, 250)
	f := a.Freeze()
	for src := 0; src < f.S.N(); src += 17 {
		want, err := a.ValleyFreeDistances(src)
		if err != nil {
			t.Fatal(err)
		}
		got, err := f.ValleyFreeDistances(src)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("src %d: valley-free distances differ", src)
		}
	}
	if _, err := f.ValleyFreeDistances(-1); err == nil {
		t.Fatal("out-of-range source must error")
	}
	// Incomplete annotations must surface the same error.
	g := graph.New(3)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	partial := NewAnnotated(g)
	if err := partial.SetRel(0, 1, P2C); err != nil {
		t.Fatal(err)
	}
	if _, err := partial.Freeze().ValleyFreeDistances(0); err == nil {
		t.Fatal("incomplete annotation must error")
	}
}

func TestFrozenInflationMatchesMap(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		a := annotatedTestTopology(t, seed, 250)
		f := a.Freeze()
		for _, sources := range []int{0, 40} {
			want, err := a.MeasureInflation(rng.New(9), sources)
			if err != nil {
				t.Fatal(err)
			}
			got, err := f.MeasureInflation(rng.New(9), sources)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("seed %d sources %d:\n got %+v\nwant %+v", seed, sources, got, want)
			}
		}
	}
	small := NewAnnotated(graph.New(1))
	if _, err := small.Freeze().MeasureInflation(nil, 0); err == nil {
		t.Fatal("tiny graph must error")
	}
	a := annotatedTestTopology(t, 5, 100)
	if _, err := a.Freeze().MeasureInflation(nil, 10); err == nil {
		t.Fatal("sampling without generator must error")
	}
}

// TestFreezeWithSharesEngineCache: policy metrics bound to an engine
// land in its per-snapshot memo — computed once, shared across repeated
// calls, and identical to the unbound path.
func TestFreezeWithSharesEngineCache(t *testing.T) {
	a := annotatedTestTopology(t, 3, 300)
	eng := engine.New(a.G.Freeze(), engine.WithWorkers(4))
	f, err := a.FreezeWith(eng)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Complete() {
		t.Fatal("degree annotation must freeze complete")
	}
	cones := f.CustomerCone()
	if !reflect.DeepEqual(cones, a.CustomerCone()) {
		t.Fatal("bound cones differ from the sequential reference")
	}
	// Memoized: the second call returns the same backing slice.
	again := f.CustomerCone()
	if &cones[0] != &again[0] {
		t.Fatal("customer cones not memoized through the engine")
	}
	// And a second frozen view over the same engine shares the result.
	f2, err := a.FreezeWith(eng)
	if err != nil {
		t.Fatal(err)
	}
	shared := f2.CustomerCone()
	if &cones[0] != &shared[0] {
		t.Fatal("sibling frozen view recomputed the cones")
	}

	// Exact inflation memoizes too, and matches the unbound sweep.
	inf, err := f.MeasureInflation(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.Freeze().MeasureInflation(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inf != want {
		t.Fatalf("bound inflation %+v, want %+v", inf, want)
	}
	inf2, err := f2.MeasureInflation(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inf2 != inf {
		t.Fatal("memoized inflation differs")
	}
	// Sampled runs stay un-memoized (they depend on the caller's
	// generator state).
	s1, err := f.MeasureInflation(rng.New(5), 50)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := f.MeasureInflation(rng.New(6), 50)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("sampled inflation suspiciously identical across different samples")
	}
}

// TestFreezeWithRejectsForeignEngine: binding to an engine over a
// different topology must fail loudly.
func TestFreezeWithRejectsForeignEngine(t *testing.T) {
	a := annotatedTestTopology(t, 3, 300)
	other := engine.New(graph.New(10).Freeze())
	if _, err := a.FreezeWith(other); err == nil {
		t.Fatal("mismatched engine accepted")
	}
}

// TestFreezeWithDistinctAnnotationsDoNotShareCache: two annotations of
// the same graph bound to one engine must keep separate memo entries.
func TestFreezeWithDistinctAnnotationsDoNotShareCache(t *testing.T) {
	top, err := (gen.BA{N: 300, M: 2, A: -1.6}).Generate(rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	a1, err := AnnotateByDegree(top.G, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := AnnotateByDegree(top.G, 3.0) // much more peering
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(top.G.Freeze(), engine.WithWorkers(4))
	f1, err := a1.FreezeWith(eng)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := a2.FreezeWith(eng)
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := f1.CustomerCone(), f2.CustomerCone()
	if !reflect.DeepEqual(c1, a1.CustomerCone()) {
		t.Fatal("first annotation's cones wrong")
	}
	if !reflect.DeepEqual(c2, a2.CustomerCone()) {
		t.Fatal("second annotation served the first annotation's cached cones")
	}
	i1, err := f1.MeasureInflation(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	i2, err := f2.MeasureInflation(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if i1 == i2 {
		t.Fatal("distinct annotations returned identical memoized inflation")
	}
}

// TestFreezeWithRefreshedSnapshot: the per-arc relationship array must
// be indexed by real arc indices, which in refreshed snapshots do not
// tile 2M (slack rows, relocation gaps). Policy metrics bound to an
// engine that advanced along a trajectory must match the sequential
// reference on the final graph.
func TestFreezeWithRefreshedSnapshot(t *testing.T) {
	top, err := (gen.BA{N: 200, M: 2, A: -1.6}).Generate(rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	// Grow a copy in two stages so the engine ends on a refreshed
	// snapshot with relocated and slack-bearing rows.
	g := graph.New(0)
	edges := top.G.EdgeList()
	half := len(edges) / 2
	add := func(es []graph.Edge) {
		for _, e := range es {
			for g.N() <= e.V || g.N() <= e.U {
				g.AddNode()
			}
			for w := 0; w < e.W; w++ {
				g.MustAddEdge(e.U, e.V)
			}
		}
	}
	add(edges[:half])
	prev := g.Freeze()
	eng := engine.New(prev, engine.WithWorkers(4))
	eng.TrianglesPerNode() // warm the memo across the refresh
	add(edges[half:])
	next, d, err := g.Refreeze(prev)
	if err != nil || d == nil {
		t.Fatalf("refreeze: %v", err)
	}
	if err := eng.Advance(next, d); err != nil {
		t.Fatal(err)
	}

	a, err := AnnotateByDegree(g, 1.3)
	if err != nil {
		t.Fatal(err)
	}
	f, err := a.FreezeWith(eng)
	if err != nil {
		t.Fatal(err)
	}
	if !f.Complete() {
		t.Fatal("degree annotation must freeze complete over a refreshed snapshot")
	}
	if got, want := f.CustomerCone(), a.CustomerCone(); !reflect.DeepEqual(got, want) {
		t.Fatal("cones over a refreshed snapshot differ from the sequential reference")
	}
	got, err := f.MeasureInflation(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := a.Freeze().MeasureInflation(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("inflation over a refreshed snapshot %+v, want %+v", got, want)
	}
}
