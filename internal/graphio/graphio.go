// Package graphio serializes topologies in the formats the measurement
// community exchanges: whitespace-separated edge lists (the RouteViews /
// CAIDA convention, with an optional multiplicity column), JSON for
// programmatic consumers, and Graphviz DOT for small-map visualization.
package graphio

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"netmodel/internal/graph"
)

// WriteEdgeList writes one "u v w" line per simple edge (w omitted when
// 1), sorted, preceded by a comment header with node and edge counts.
// Isolated nodes are preserved through the header count.
func WriteEdgeList(w io.Writer, g *graph.Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# netmodel edge list: nodes=%d edges=%d\n", g.N(), g.M()); err != nil {
		return err
	}
	for _, e := range g.EdgeList() {
		var err error
		if e.W == 1 {
			_, err = fmt.Fprintf(bw, "%d %d\n", e.U, e.V)
		} else {
			_, err = fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, e.W)
		}
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format written by WriteEdgeList. Lines
// starting with '#' are comments; the special header comment, when
// present, pre-sizes the graph so trailing isolated nodes survive a
// round trip. Unknown node ids grow the graph as needed.
func ReadEdgeList(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	g := graph.New(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if n, ok := parseHeaderNodes(line); ok {
				for g.N() < n {
					g.AddNode()
				}
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("graphio: line %d: want 2 or 3 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: %v", lineNo, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graphio: line %d: %v", lineNo, err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graphio: line %d: negative node id", lineNo)
		}
		w := 1
		if len(fields) == 3 {
			w, err = strconv.Atoi(fields[2])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("graphio: line %d: bad multiplicity %q", lineNo, fields[2])
			}
		}
		max := u
		if v > max {
			max = v
		}
		for g.N() <= max {
			g.AddNode()
		}
		for i := 0; i < w; i++ {
			if _, err := g.AddEdge(u, v); err != nil {
				return nil, fmt.Errorf("graphio: line %d: %v", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

func parseHeaderNodes(line string) (int, bool) {
	i := strings.Index(line, "nodes=")
	if i < 0 {
		return 0, false
	}
	rest := line[i+len("nodes="):]
	j := strings.IndexFunc(rest, func(r rune) bool { return r < '0' || r > '9' })
	if j >= 0 {
		rest = rest[:j]
	}
	n, err := strconv.Atoi(rest)
	if err != nil {
		return 0, false
	}
	return n, true
}

// jsonGraph is the JSON wire format.
type jsonGraph struct {
	Nodes int      `json:"nodes"`
	Edges [][3]int `json:"edges"` // [u, v, w]
}

// WriteJSON encodes the graph as {"nodes": N, "edges": [[u,v,w],...]}.
func WriteJSON(w io.Writer, g *graph.Graph) error {
	jg := jsonGraph{Nodes: g.N(), Edges: make([][3]int, 0, g.M())}
	for _, e := range g.EdgeList() {
		jg.Edges = append(jg.Edges, [3]int{e.U, e.V, e.W})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(jg)
}

// ReadJSON decodes the format written by WriteJSON.
func ReadJSON(r io.Reader) (*graph.Graph, error) {
	var jg jsonGraph
	if err := json.NewDecoder(r).Decode(&jg); err != nil {
		return nil, err
	}
	if jg.Nodes < 0 {
		return nil, fmt.Errorf("graphio: negative node count %d", jg.Nodes)
	}
	g := graph.New(jg.Nodes)
	for _, e := range jg.Edges {
		if e[2] < 1 {
			return nil, fmt.Errorf("graphio: bad multiplicity %d", e[2])
		}
		for i := 0; i < e[2]; i++ {
			if _, err := g.AddEdge(e[0], e[1]); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// WriteDOT emits an undirected Graphviz description. Multiplicity is
// rendered as penwidth. Intended for small maps.
func WriteDOT(w io.Writer, g *graph.Graph, name string) error {
	bw := bufio.NewWriter(w)
	if name == "" {
		name = "netmodel"
	}
	if _, err := fmt.Fprintf(bw, "graph %q {\n  node [shape=point];\n", name); err != nil {
		return err
	}
	for _, e := range g.EdgeList() {
		if _, err := fmt.Fprintf(bw, "  %d -- %d [penwidth=%d];\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw, "}"); err != nil {
		return err
	}
	return bw.Flush()
}
