package graphio

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"netmodel/internal/sweep"
	"netmodel/internal/traffic"
)

// errNoWorkload guards the workload emitters: they render the workload
// projection of a sweep summary, which only exists for workload grids.
var errNoWorkload = errors.New("graphio: summary has no workload results")

// workloadHeader is the per-cell column set of the workload CSV: the
// cell coordinates (with the workload axes) followed by the flow
// counters and the folded scalar schema.
func workloadHeader() []string {
	return append([]string{"model", "n", "seed", "load_factor", "tail_index", "failure",
		"arrived", "completed", "undelivered", "residual_flows"},
		traffic.WorkloadMetricNames()...)
}

// WriteWorkloadCSV renders the workload projection of a sweep summary
// as one CSV table: a row per cell with the flow counters and scalar
// metrics, followed by four cross-seed aggregate rows (mean, std, min,
// max) per (model, size, load factor, tail index) group with the
// statistic's name in the seed column. Column order is fixed by
// traffic.WorkloadMetricNames, so the header is stable across grids.
func WriteWorkloadCSV(w io.Writer, s *sweep.Summary) error {
	if len(s.Cells) == 0 || s.Cells[0].Workload == nil {
		return errNoWorkload
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(workloadHeader()); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, c := range s.Cells {
		wl := c.Workload
		if wl == nil {
			return fmt.Errorf("graphio: cell (%s, %d, %d) has no workload report", c.Model, c.N, c.Seed)
		}
		rec := []string{c.Model, strconv.Itoa(c.N), strconv.FormatUint(c.Seed, 10),
			f(c.LoadFactor), f(c.TailIndex), c.Failure,
			strconv.Itoa(wl.Arrived), strconv.Itoa(wl.Completed),
			strconv.Itoa(wl.Undelivered), strconv.Itoa(wl.ResidualFlows)}
		for _, v := range wl.Scalars() {
			rec = append(rec, f(v))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	names := traffic.WorkloadMetricNames()
	for _, a := range s.Aggregates {
		for _, stat := range []struct {
			label string
			pick  func(sweep.MetricAggregate) float64
		}{
			{"mean", func(m sweep.MetricAggregate) float64 { return m.Mean }},
			{"std", func(m sweep.MetricAggregate) float64 { return m.Std }},
			{"min", func(m sweep.MetricAggregate) float64 { return m.Min }},
			{"max", func(m sweep.MetricAggregate) float64 { return m.Max }},
		} {
			rec := []string{a.Model, strconv.Itoa(a.N), stat.label,
				f(a.LoadFactor), f(a.TailIndex), a.Failure, "", "", "", ""}
			for _, name := range names {
				rec = append(rec, f(stat.pick(sweep.FindMetric(a.Metrics, name))))
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	if err := writeCacheRows(cw, s, len(workloadHeader())); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// WriteWorkloadTable renders the workload cells and their per-epoch
// utilization summary as an aligned text table — the topoload default.
func WriteWorkloadTable(w io.Writer, s *sweep.Summary) error {
	if len(s.Cells) == 0 || s.Cells[0].Workload == nil {
		return errNoWorkload
	}
	_, err := io.WriteString(w, s.String())
	return err
}

// WriteWorkloadJSON encodes the full workload summary — grid with its
// workload axes, per-cell reports (epoch rows and utilization CCDFs
// included), aggregates and rankings — as indented JSON. Like the sweep
// encoder, the output is byte-deterministic.
func WriteWorkloadJSON(w io.Writer, s *sweep.Summary) error {
	if len(s.Cells) == 0 || s.Cells[0].Workload == nil {
		return errNoWorkload
	}
	return WriteSweepJSON(w, s)
}
