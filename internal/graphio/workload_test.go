package graphio

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"netmodel/internal/sweep"
	"netmodel/internal/traffic"
)

func workloadSummary(t *testing.T) *sweep.Summary {
	t.Helper()
	s, err := sweep.Run(sweep.Grid{
		Models:      []string{"ba"},
		Sizes:       []int{200},
		Seeds:       []uint64{1, 2},
		PathSources: 20,
		Workload: &sweep.WorkloadAxes{
			Spec:        traffic.WorkloadSpec{Epochs: 4},
			LoadFactors: []float64{0.5, 1.5},
		},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWriteWorkloadCSV(t *testing.T) {
	s := workloadSummary(t)
	var buf bytes.Buffer
	if err := WriteWorkloadCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 4 cells + 2 groups × 4 aggregate rows
	if len(recs) != 1+4+8 {
		t.Fatalf("CSV has %d rows, want 13", len(recs))
	}
	header := recs[0]
	wantCols := 10 + len(traffic.WorkloadMetricNames())
	if len(header) != wantCols || header[3] != "load_factor" || header[5] != "failure" ||
		header[10] != "wl_mean_fct" {
		t.Fatalf("header = %v", header)
	}
	for i, rec := range recs[1:] {
		if len(rec) != wantCols {
			t.Fatalf("row %d has %d columns, want %d", i, len(rec), wantCols)
		}
	}
	// Aggregate rows carry the statistic label in the seed column.
	var labels []string
	for _, rec := range recs[5:] {
		labels = append(labels, rec[2])
	}
	if labels[0] != "mean" || labels[1] != "std" || labels[2] != "min" || labels[3] != "max" {
		t.Fatalf("aggregate labels = %v", labels)
	}
}

func TestWriteWorkloadTableAndJSON(t *testing.T) {
	s := workloadSummary(t)
	var table bytes.Buffer
	if err := WriteWorkloadTable(&table, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "workload sweep") {
		t.Fatalf("table missing workload banner:\n%s", table.String())
	}
	var buf bytes.Buffer
	if err := WriteWorkloadJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	var round sweep.Summary
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatal(err)
	}
	if len(round.Cells) != 4 || round.Cells[0].Workload == nil {
		t.Fatalf("JSON round trip lost workload cells: %+v", round.Cells)
	}
	if round.Grid.Workload == nil || len(round.Grid.Workload.LoadFactors) != 2 {
		t.Fatal("JSON round trip lost the workload axes")
	}
}

func TestWorkloadEmittersRejectPlainSummary(t *testing.T) {
	plain := sweepSummary(t)
	var buf bytes.Buffer
	if err := WriteWorkloadCSV(&buf, plain); err == nil {
		t.Fatal("CSV emitter must reject a summary without workload results")
	}
	if err := WriteWorkloadTable(&buf, plain); err == nil {
		t.Fatal("table emitter must reject a summary without workload results")
	}
	if err := WriteWorkloadJSON(&buf, plain); err == nil {
		t.Fatal("JSON emitter must reject a summary without workload results")
	}
}
