package graphio

import (
	"bytes"
	"strings"
	"testing"

	"netmodel/internal/gen"
	"netmodel/internal/graph"
	"netmodel/internal/rng"
)

func sample(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(0, 1) // multiplicity 2
	g.MustAddEdge(1, 2)
	g.MustAddEdge(3, 4)
	return g
}

func equalGraphs(a, b *graph.Graph) bool {
	if a.N() != b.N() || a.M() != b.M() || a.TotalStrength() != b.TotalStrength() {
		return false
	}
	ea, eb := a.EdgeList(), b.EdgeList()
	for i := range ea {
		if ea[i] != eb[i] {
			return false
		}
	}
	return true
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := sample(t)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalGraphs(g, got) {
		t.Fatalf("round trip changed graph:\n%v", buf.String())
	}
}

func TestEdgeListRoundTripLargeGenerated(t *testing.T) {
	top, err := gen.BA{N: 2000, M: 2}.Generate(rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, top.G); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalGraphs(top.G, got) {
		t.Fatal("large round trip changed graph")
	}
}

func TestEdgeListPreservesIsolatedNodes(t *testing.T) {
	g := graph.New(10)
	g.MustAddEdge(0, 1)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 10 {
		t.Fatalf("isolated nodes lost: N = %d", got.N())
	}
}

func TestReadEdgeListWithoutHeader(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1\n1 2 3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 || g.EdgeWeight(1, 2) != 3 {
		t.Fatalf("parsed N=%d M=%d w(1,2)=%d", g.N(), g.M(), g.EdgeWeight(1, 2))
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0\n",       // too few fields
		"0 1 2 3\n", // too many fields
		"a b\n",     // not numbers
		"0 -1\n",    // negative id
		"0 1 0\n",   // zero multiplicity
		"1 1\n",     // self-loop
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Fatalf("input %q should fail", c)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := sample(t)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalGraphs(g, got) {
		t.Fatalf("JSON round trip changed graph: %s", buf.String())
	}
}

func TestReadJSONErrors(t *testing.T) {
	bad := []string{
		`not json`,
		`{"nodes": -1, "edges": []}`,
		`{"nodes": 2, "edges": [[0,1,0]]}`,
		`{"nodes": 2, "edges": [[0,5,1]]}`,
	}
	for _, c := range bad {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Fatalf("input %q should fail", c)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := sample(t)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, g, "test"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`graph "test"`, "0 -- 1 [penwidth=2]", "3 -- 4 [penwidth=1]", "}"} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q:\n%s", want, out)
		}
	}
}
