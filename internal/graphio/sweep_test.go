package graphio

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"netmodel/internal/sweep"
)

func sweepSummary(t *testing.T) *sweep.Summary {
	t.Helper()
	s, err := sweep.Run(sweep.Grid{
		Models:      []string{"ba", "glp"},
		Sizes:       []int{200},
		Seeds:       []uint64{1, 2},
		PathSources: 20,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWriteSweepCSV(t *testing.T) {
	s := sweepSummary(t)
	var buf bytes.Buffer
	if err := WriteSweepCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// header + 4 cells + 2 groups × 4 aggregate rows
	if len(recs) != 1+4+8 {
		t.Fatalf("CSV has %d rows, want 13", len(recs))
	}
	header := recs[0]
	if header[0] != "model" || header[1] != "n" || header[2] != "seed" || header[3] != "score" {
		t.Fatalf("bad header: %v", header)
	}
	wantCols := 4 + len(s.Cells[0].Report.Rows)
	for i, r := range recs {
		if len(r) != wantCols {
			t.Fatalf("row %d has %d columns, want %d", i, len(r), wantCols)
		}
	}
	// The aggregate block labels its rows in the seed column.
	seen := map[string]bool{}
	for _, r := range recs[5:] {
		seen[r[2]] = true
	}
	for _, label := range []string{"mean", "std", "min", "max"} {
		if !seen[label] {
			t.Fatalf("missing %q aggregate rows:\n%s", label, buf.String())
		}
	}
	if err := WriteSweepCSV(&buf, &sweep.Summary{}); err == nil {
		t.Fatal("empty summary must fail")
	}
}

func TestWriteSweepJSONRoundTrip(t *testing.T) {
	s := sweepSummary(t)
	var buf bytes.Buffer
	if err := WriteSweepJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	var back sweep.Summary
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Target != s.Target || len(back.Cells) != len(s.Cells) ||
		len(back.Aggregates) != len(s.Aggregates) || len(back.Rankings) != len(s.Rankings) {
		t.Fatalf("round trip lost structure: %+v", back)
	}
	if back.Cells[0].Score != s.Cells[0].Score || back.Cells[0].Report == nil {
		t.Fatal("round trip lost cell reports")
	}
}
