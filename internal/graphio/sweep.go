package graphio

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"

	"netmodel/internal/sweep"
)

// WriteSweepCSV renders a sweep summary as one wide CSV table: a row
// per cell with the aggregate score and every measured metric, followed
// by four cross-seed aggregate rows (mean, std, min, max) per
// (model, size) group with the statistic's name in the seed column. The
// column set comes from the comparison report, whose row order is fixed
// by compare.Score, so the header is stable across grids and runs.
func WriteSweepCSV(w io.Writer, s *sweep.Summary) error {
	if len(s.Cells) == 0 {
		return errors.New("graphio: empty sweep summary")
	}
	cw := csv.NewWriter(w)
	header := []string{"model", "n", "seed", "score"}
	for _, row := range s.Cells[0].Report.Rows {
		header = append(header, row.Name)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, c := range s.Cells {
		rec := []string{c.Model, strconv.Itoa(c.N), strconv.FormatUint(c.Seed, 10), f(c.Score)}
		if len(c.Report.Rows) != len(header)-4 {
			return fmt.Errorf("graphio: cell (%s, %d, %d) has %d metric rows, header has %d",
				c.Model, c.N, c.Seed, len(c.Report.Rows), len(header)-4)
		}
		for _, row := range c.Report.Rows {
			rec = append(rec, f(row.Measured))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	for _, a := range s.Aggregates {
		for _, stat := range []struct {
			label string
			pick  func(sweep.MetricAggregate) float64
		}{
			{"mean", func(m sweep.MetricAggregate) float64 { return m.Mean }},
			{"std", func(m sweep.MetricAggregate) float64 { return m.Std }},
			{"min", func(m sweep.MetricAggregate) float64 { return m.Min }},
			{"max", func(m sweep.MetricAggregate) float64 { return m.Max }},
		} {
			rec := []string{a.Model, strconv.Itoa(a.N), stat.label, f(stat.pick(a.Score))}
			for _, m := range a.Metrics {
				rec = append(rec, f(stat.pick(m)))
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	if err := writeCacheRows(cw, s, len(header)); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

// writeCacheRows appends the artifact-cache counters to a summary CSV
// when the sweep recorded them (Summary.Cache, -cache-stats): a
// "cache:total" row carrying budget, bytes used and resident entries,
// then one "cache:<stage>" row per stage carrying hits, misses and
// evictions — all in the three columns after the label, padded to the
// table's width so the record shape stays rectangular.
func writeCacheRows(cw *csv.Writer, s *sweep.Summary, width int) error {
	if s.Cache == nil {
		return nil
	}
	pad := func(rec []string) []string {
		for len(rec) < width {
			rec = append(rec, "")
		}
		return rec
	}
	c := s.Cache
	if err := cw.Write(pad([]string{"cache:total", strconv.FormatInt(c.Budget, 10),
		strconv.FormatInt(c.Used, 10), strconv.Itoa(c.Entries)})); err != nil {
		return err
	}
	for _, st := range c.Stages {
		if err := cw.Write(pad([]string{"cache:" + st.Stage, strconv.FormatUint(st.Hits, 10),
			strconv.FormatUint(st.Misses, 10), strconv.FormatUint(st.Evictions, 10)})); err != nil {
			return err
		}
	}
	return nil
}

// WriteSweepJSON encodes the full summary — grid, per-cell reports and
// trajectories, aggregates, rankings — as indented JSON, the machine
// interchange format of toposweep. The encoding is byte-deterministic:
// slices encode in grid order and struct fields in declaration order.
func WriteSweepJSON(w io.Writer, s *sweep.Summary) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}
