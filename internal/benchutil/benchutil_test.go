package benchutil

import "testing"

func TestMeasureAllocsCountsKnownWork(t *testing.T) {
	var sink [][]byte
	allocs, bytes := MeasureAllocs(func() {
		for i := 0; i < 100; i++ {
			sink = append(sink, make([]byte, 1024))
		}
	})
	if allocs < 100 {
		t.Fatalf("100 explicit makes measured as %d allocs", allocs)
	}
	if bytes < 100*1024 {
		t.Fatalf("100 KiB of explicit makes measured as %d bytes", bytes)
	}
	_ = sink
}

func TestMeasureAllocsZeroOnAllocFreeWork(t *testing.T) {
	buf := make([]int, 1024)
	allocs, _ := MeasureAllocs(func() {
		for i := range buf {
			buf[i] = i * i
		}
	})
	if allocs != 0 {
		t.Fatalf("alloc-free loop measured as %d allocs", allocs)
	}
}

func TestMarginalAllocsCancelsSetup(t *testing.T) {
	// Each run pays a fixed setup slab plus one alloc per op; the
	// differencing must cancel the setup and report exactly one per op.
	allocs, _ := MarginalAllocs(8, 24, func(ops int) {
		setup := make([]byte, 1<<16)
		_ = setup
		var sink [][]byte
		for i := 0; i < ops; i++ {
			sink = append(sink, make([]byte, 16))
		}
		_ = sink
	})
	// append's slab growth adds a fractional surcharge on top of the
	// one-per-op make; it must stay well under one extra alloc per op.
	if allocs < 1 || allocs > 2 {
		t.Fatalf("one make per op measured as %.3f allocs/op", allocs)
	}
}

func TestMarginalAllocsZeroForPureSetup(t *testing.T) {
	allocs, bytes := MarginalAllocs(8, 24, func(ops int) {
		setup := make([]int, 4096)
		for i := 0; i < ops; i++ {
			for j := range setup {
				setup[j] += i
			}
		}
	})
	if allocs != 0 || bytes != 0 {
		t.Fatalf("setup-only workload measured as %.3f allocs/op, %.3f B/op", allocs, bytes)
	}
}
