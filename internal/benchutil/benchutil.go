// Package benchutil carries the allocation-measurement helper the
// BENCH_*.json emitters share: exact heap-allocation counts around a
// measured region, read from the runtime's monotonic malloc counters.
// The emitters record the results as allocs_per_op / bytes_per_op rows
// that cmd/benchcheck gates from above with max_allocs_per_op /
// max_bytes_per_op ceilings — the enforcement half of the zero-alloc
// steady-state contract.
package benchutil

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
)

// MeasureAllocs runs f once and returns the heap allocations (count and
// bytes) it performed, measured by differencing runtime.MemStats before
// and after. The counters are process-wide and monotonic (frees never
// decrease them), so the caller must keep concurrent allocators quiet —
// measured regions should run at workers=1, where the par helpers stay
// inline. A GC runs first so the collector's own bookkeeping settles
// outside the window.
func MeasureAllocs(f func()) (allocs, bytes uint64) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
}

// CountAllocs is MeasureAllocs without the settling GC: it differences
// the malloc counters around f and nothing else, so it can run inside
// a timed loop — accumulating per-epoch windows across a replay —
// without charging a full collection to every window. The trade-off is
// a little background noise (the collector's own bookkeeping is not
// flushed out first), which per-epoch accumulation amortizes away.
func CountAllocs(f func()) (allocs, bytes uint64) {
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f()
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs, after.TotalAlloc - before.TotalAlloc
}

// MarginalAllocs differences two deterministic runs of the same seeded
// workload — short at ops1 operations, long at ops2 > ops1 — and
// attributes the surplus to the extra operations, returning per-op
// allocation counts. Identical seeding makes the long run's first ops1
// operations replay the short run exactly, so one-time setup costs
// cancel and what remains is the steady-state marginal cost: exactly
// zero when every buffer's high-water mark is reached inside the common
// prefix. run must construct all state fresh on each call (sharing
// warmed state across both calls is fine — it cancels too).
func MarginalAllocs(ops1, ops2 int, run func(ops int)) (allocsPerOp, bytesPerOp float64) {
	if ops2 <= ops1 {
		panic("benchutil: MarginalAllocs needs ops2 > ops1")
	}
	a1, b1 := MeasureAllocs(func() { run(ops1) })
	a2, b2 := MeasureAllocs(func() { run(ops2) })
	span := float64(ops2 - ops1)
	// The counters are monotonic but the short run can allocate more
	// than the long run's surplus implies never happens with identical
	// seeding; clamp anyway so a fluke reads 0, not 2^64.
	if a2 < a1 {
		a1 = a2
	}
	if b2 < b1 {
		b1 = b2
	}
	return float64(a2-a1) / span, float64(b2-b1) / span
}

// MergeBenchRows writes freshly measured rows into the JSON array at
// path without clobbering rows other emitters own: existing rows whose
// "name" matches an incoming row are replaced in place, new names
// append, everything else survives untouched. This lets several
// emitters (the sweep scaling rows and the artifact-cache rows, say)
// share one BENCH file while each refreshes only its own entries. A
// missing or empty file starts from an empty array; a file that does
// not parse as a JSON array is an error rather than silently replaced.
func MergeBenchRows(path string, rows any) error {
	raw, err := json.Marshal(rows)
	if err != nil {
		return fmt.Errorf("benchutil: encoding rows: %w", err)
	}
	var fresh []map[string]any
	if err := json.Unmarshal(raw, &fresh); err != nil {
		return fmt.Errorf("benchutil: rows must be a JSON array of objects: %w", err)
	}
	var existing []map[string]any
	if data, err := os.ReadFile(path); err == nil && len(data) > 0 {
		if err := json.Unmarshal(data, &existing); err != nil {
			return fmt.Errorf("benchutil: merging into %s: %w", path, err)
		}
	} else if err != nil && !os.IsNotExist(err) {
		return err
	}
	// Replacement is keyed on (name, n) so one emitter can publish the
	// same row name at several scales (smoke and acceptance) without the
	// scales overwriting each other.
	key := func(m map[string]any) string {
		return fmt.Sprintf("%v|%v", m["name"], m["n"])
	}
	index := make(map[string]int, len(existing))
	for i, row := range existing {
		index[key(row)] = i
	}
	merged := existing
	for _, row := range fresh {
		if i, ok := index[key(row)]; ok {
			merged[i] = row
		} else {
			index[key(row)] = len(merged)
			merged = append(merged, row)
		}
	}
	data, err := json.MarshalIndent(merged, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
